// The shard server daemon: hosts one shard of an N-way partitioned
// topology store and serves wire frames (sub-queries and triple-collect
// scans) over a Unix-domain or TCP socket — the storage-worker half of
// cross-process sharding. A query frontend (ScatterGatherExecutor +
// net::SocketTransport) fans sub-queries out to N of these processes and
// merges the partials; see examples/cross_process_shards.cpp.
//
// The process builds its own replica of the data set and the full sharded
// precompute (deterministic, so TIDs and scores agree with every other
// replica — the property the byte-identity checks rest on), then serves
// its shard's slice until SIGTERM/SIGINT.
//
// Flags:
//   --shard=<i>            shard index served by this process (default 0)
//   --num-shards=<n>       total shards in the partition (default 1)
//   --replica-id=<r>       this process's replica id within its shard's
//                          replica set (default 0); stamped into every
//                          response ("r<id>:e<epoch>") and into log lines
//   --uds=<path>           listen on this Unix-domain socket path
//   --tcp-port=<p>         listen on 127.0.0.1:<p> instead (0 = ephemeral)
//   --max-path-length=<l>  precompute path-length cap (default 3)
//   --prune-threshold=<t>  PruneFrequentTopologies threshold (default 0)
//   --slow-query-ms=<ms>   slow-query log threshold in milliseconds
//                          (default 0 = disabled)
//   --trace-recent=<n>     ring of recent shard-side trace fragments kept
//                          for the admin channel (default 32)
//   --wal-dir=<dir>        enable the durable mutation WAL: batches are
//                          fsync'd to <dir>/shard<i>_r<r>.wal before they
//                          become visible, and the log is replayed on
//                          startup — a SIGKILL'd server recovers every
//                          acknowledged mutation by rebuilding the fixture
//                          and re-applying the log. Without the flag the
//                          mutation channel still works, non-durably.
//   --compaction-min-gens=<n>  background-fold trigger: compact once this
//                          many overlay generations accumulate (default 4)
//
// Observability: the process serves the kAdminRequest admin channel
// (tools/topctl pulls Prometheus metrics, JSON, traces, and the slow-query
// log over the same socket it serves queries on), dumps its full
// metrics/trace snapshot to stderr on SIGUSR1, and again at clean
// SIGTERM/SIGINT shutdown.
//
// Example:  shard_server --shard=1 --num-shards=4 --replica-id=1 \
//               --uds=/tmp/shard1r1.sock

#include <signal.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "biozon/domain.h"
#include "biozon/fig3.h"
#include "core/builder.h"
#include "core/pruner.h"
#include "engine/engine.h"
#include "graph/data_graph.h"
#include "graph/schema_graph.h"
#include "mutation/delta_log.h"
#include "mutation/mutation.h"
#include "mutation/mutation_engine.h"
#include "net/shard_server.h"
#include "obs/admin.h"
#include "obs/registry.h"
#include "obs/slow_log.h"
#include "obs/trace.h"
#include "service/metrics.h"
#include "shard/frame_handler.h"
#include "shard/sharded_store.h"
#include "wire/message.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;
volatile std::sig_atomic_t g_dump = 0;

void HandleSignal(int) { g_stop = 1; }

void HandleDumpSignal(int) { g_dump = 1; }

/// "--name=value" flag lookup; returns `fallback` when absent.
std::string FlagString(int argc, char** argv, const std::string& name,
                       const std::string& fallback) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::string(argv[i] + prefix.size());
    }
  }
  return fallback;
}

long FlagLong(int argc, char** argv, const std::string& name,
              long fallback) {
  const std::string value = FlagString(argc, argv, name, "");
  return value.empty() ? fallback : std::atol(value.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tsb;

  const size_t shard =
      static_cast<size_t>(FlagLong(argc, argv, "shard", 0));
  const size_t num_shards =
      static_cast<size_t>(FlagLong(argc, argv, "num-shards", 1));
  const uint64_t replica_id =
      static_cast<uint64_t>(FlagLong(argc, argv, "replica-id", 0));
  const std::string uds = FlagString(argc, argv, "uds", "");
  const long tcp_port = FlagLong(argc, argv, "tcp-port", -1);
  const size_t max_path_length =
      static_cast<size_t>(FlagLong(argc, argv, "max-path-length", 3));
  const size_t prune_threshold =
      static_cast<size_t>(FlagLong(argc, argv, "prune-threshold", 0));
  const long slow_query_ms = FlagLong(argc, argv, "slow-query-ms", 0);
  const size_t trace_recent =
      static_cast<size_t>(FlagLong(argc, argv, "trace-recent", 32));
  const std::string wal_dir = FlagString(argc, argv, "wal-dir", "");
  const size_t compaction_min_gens = static_cast<size_t>(
      FlagLong(argc, argv, "compaction-min-gens", 4));

  if (shard >= num_shards) {
    std::fprintf(stderr, "shard_server: --shard=%zu out of range (%zu)\n",
                 shard, num_shards);
    return 1;
  }
  if (uds.empty() && tcp_port < 0) {
    std::fprintf(stderr,
                 "shard_server: need --uds=<path> or --tcp-port=<p>\n");
    return 1;
  }

  // This replica's data set and precompute. Build the *complete* shard
  // set (the Figure-3 fixture is small) so catalog interning sees every
  // topology in the canonical first-encounter order — identical TIDs and
  // global frequency maps on every replica — then serve only our slice.
  storage::Catalog db;
  biozon::BiozonSchema ids = biozon::BuildFigure3Database(&db);
  graph::DataGraphView view(db);
  graph::SchemaGraph schema(db);

  auto sharded = std::make_shared<shard::ShardedTopologyStore>(num_shards);
  core::TopologyBuilder builder(&db, &schema, &view);
  core::BuildConfig build;
  build.max_path_length = max_path_length;
  Status built = sharded->Build(&builder, build);
  if (!built.ok()) {
    std::fprintf(stderr, "shard_server: build failed: %s\n",
                 built.ToString().c_str());
    return 1;
  }
  // Prune only the served shard: pruning derives that store's private
  // LeftTops/ExcpTops tables and never touches the other replicas, so
  // the other N-1 slices (built above only for deterministic catalog
  // interning) would be dead work.
  core::PruneConfig prune;
  prune.frequency_threshold = prune_threshold;
  {
    auto snapshot = sharded->Snapshot(shard);
    std::vector<std::pair<storage::EntityTypeId, storage::EntityTypeId>>
        keys;
    for (const auto& [key, pair] : snapshot->pairs()) keys.push_back(key);
    for (const auto& [t1, t2] : keys) {
      auto pruned =
          core::PruneFrequentTopologies(&db, snapshot.get(), t1, t2, prune);
      if (!pruned.ok()) {
        std::fprintf(stderr, "shard_server: prune failed: %s\n",
                     pruned.status().ToString().c_str());
        return 1;
      }
    }
  }

  const std::shared_ptr<core::StoreHandle>& handle = sharded->handle(shard);
  engine::Engine engine(
      &db, handle, &schema, &view,
      core::ScoreModel(&handle->Snapshot()->catalog(),
                       biozon::MakeBiozonDomainKnowledge(ids)));
  shard::ShardFrameHandler handler(
      &db, &engine, [sharded, shard]() { return sharded->Snapshot(shard); },
      [sharded, shard, replica_id]() {
        return wire::MakeServingStamp(replica_id,
                                      sharded->handle(shard)->epoch());
      });

  // The incremental write path: every replica holds all N shard stores
  // (built above for catalog determinism), so the mutation engine applies
  // each batch to the full set with the same SplitStagingForShards routing
  // as the base build — replicas that apply the same batches in the same
  // order stay byte-identical, and this process keeps serving its slice.
  mutation::MutationEngine::Options mutation_options;
  mutation_options.build = build;
  mutation_options.compaction_min_generations = compaction_min_gens;
  std::vector<std::shared_ptr<core::StoreHandle>> handles;
  for (size_t i = 0; i < num_shards; ++i) handles.push_back(sharded->handle(i));
  mutation::MutationEngine mutation_engine(&db, &schema, std::move(handles),
                                           mutation_options);
  mutation::DeltaLog wal;
  if (!wal_dir.empty()) {
    const std::string wal_path = wal_dir + "/shard" + std::to_string(shard) +
                                 "_r" + std::to_string(replica_id) + ".wal";
    std::vector<mutation::MutationBatch> replayed;
    auto opened = wal.Open(wal_path, &replayed);
    if (!opened.ok()) {
      std::fprintf(stderr, "shard_server: WAL open failed: %s\n",
                   opened.status().ToString().c_str());
      return 1;
    }
    Status recovered = mutation_engine.Replay(replayed);
    if (!recovered.ok()) {
      std::fprintf(stderr, "shard_server: WAL replay failed: %s\n",
                   recovered.ToString().c_str());
      return 1;
    }
    mutation_engine.set_delta_log(&wal);
    std::printf("shard_server: WAL %s replayed %zu batches (%zu ops, %zu "
                "bytes truncated)\n",
                wal_path.c_str(), opened.value().batches, opened.value().ops,
                opened.value().truncated_bytes);
  }
  handler.set_mutation_apply(
      [&mutation_engine, &wal](const mutation::MutationBatch& batch) {
        return wal.is_open() ? mutation_engine.ApplyLogged(batch)
                             : mutation_engine.Apply(batch);
      });
  mutation_engine.StartCompaction();

  // Observability: per-frame metrics, shard-side trace fragments, the
  // slow-query log, and the admin channel topctl pulls them through.
  service::ServiceMetrics metrics;
  obs::TracerConfig tracer_config;
  tracer_config.max_recent = trace_recent;
  obs::Tracer tracer(tracer_config);
  obs::SlowQueryConfig slow_config;
  slow_config.threshold_seconds = slow_query_ms / 1000.0;
  obs::SlowQueryLog slow_log(slow_config);
  obs::MetricsRegistry registry;
  registry.Register(&metrics);
  net::ShardServer* server_ptr = nullptr;
  obs::CallbackSource server_source([&server_ptr, shard, replica_id](
                                        obs::MetricsSink* sink) {
    if (server_ptr == nullptr) return;
    const obs::MetricsSink::Labels labels = {
        {"shard", std::to_string(shard)},
        {"replica", std::to_string(replica_id)}};
    sink->Counter("tsb_server_connections_accepted_total",
                  "Connections accepted by the shard server.", labels,
                  static_cast<double>(server_ptr->connections_accepted()));
    sink->Counter("tsb_server_frames_served_total",
                  "Wire frames served by the shard server.", labels,
                  static_cast<double>(server_ptr->frames_served()));
  });
  registry.Register(&server_source);
  registry.Register(&mutation_engine);
  obs::AdminState admin;
  admin.registry = &registry;
  admin.tracer = &tracer;
  admin.slow_log = &slow_log;
  admin.text_renderer = [&metrics]() { return metrics.Snapshot().ToString(); };
  admin.compaction_renderer = [&mutation_engine]() {
    return mutation_engine.StatusString();
  };
  admin.cost_snapshot = [&metrics, &slow_log, &mutation_engine, &wal]() {
    obs::FleetSnapshot snap = service::BuildFleetSnapshot(
        metrics.Snapshot(), /*replicas=*/nullptr, &slow_log);
    snap.mutation_batches = mutation_engine.batches_applied();
    snap.mutation_ops = mutation_engine.ops_applied();
    snap.overlay_generations = mutation_engine.uncompacted_generations();
    snap.compaction_folds = mutation_engine.compaction_rounds();
    snap.wal_records = wal.appended_records();
    snap.wal_bytes = wal.appended_bytes();
    return snap;
  };
  shard::ShardObservability observability;
  observability.metrics = &metrics;
  observability.tracer = &tracer;
  observability.slow_log = &slow_log;
  observability.admin = &admin;
  handler.set_observability(observability);

  const auto dump_snapshot = [&](const char* reason) {
    std::fprintf(stderr,
                 "shard_server: --- observability dump (%s) ---\n%s\n%s%s"
                 "%s\n"
                 "shard_server: --- end dump ---\n",
                 reason, metrics.Snapshot().ToString().c_str(),
                 tracer.RenderRecent().c_str(), slow_log.ToString().c_str(),
                 mutation_engine.StatusString().c_str());
    std::fflush(stderr);
  };

  net::ShardServerConfig server_config;
  server_config.uds_path = uds;
  if (tcp_port >= 0) {
    server_config.tcp_port = static_cast<uint16_t>(tcp_port);
  }
  net::ShardServer server(&handler, server_config);
  server_ptr = &server;
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "shard_server: %s\n",
                 started.ToString().c_str());
    return 1;
  }
  std::printf("shard_server: serving shard %zu/%zu replica %llu on %s "
              "(%zu catalog topologies)\n",
              shard, num_shards,
              static_cast<unsigned long long>(replica_id),
              server.endpoint().c_str(),
              sharded->Snapshot(shard)->catalog().size());
  std::fflush(stdout);

  // Block the shutdown signals, then wait in sigsuspend: the signal can
  // only be delivered inside the atomic unblock-and-wait, so a SIGTERM
  // arriving between the g_stop check and the wait cannot be lost (the
  // classic pause() race).
  sigset_t mask;
  sigemptyset(&mask);
  sigaddset(&mask, SIGINT);
  sigaddset(&mask, SIGTERM);
  sigaddset(&mask, SIGUSR1);
  sigset_t unblocked;
  sigprocmask(SIG_BLOCK, &mask, &unblocked);
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGUSR1, HandleDumpSignal);
  while (!g_stop) {
    sigsuspend(&unblocked);
    if (g_dump) {
      // SIGUSR1: dump the live metrics/trace snapshot without stopping.
      g_dump = 0;
      dump_snapshot("SIGUSR1");
    }
  }
  sigprocmask(SIG_SETMASK, &unblocked, nullptr);

  server.Stop();
  dump_snapshot("shutdown");
  std::printf("shard_server: shard %zu replica %llu stopped (%llu "
              "connections, %llu frames)\n",
              shard, static_cast<unsigned long long>(replica_id),
              static_cast<unsigned long long>(server.connections_accepted()),
              static_cast<unsigned long long>(server.frames_served()));
  return 0;
}
