// The shard server daemon: hosts one shard of an N-way partitioned
// topology store and serves wire frames (sub-queries and triple-collect
// scans) over a Unix-domain or TCP socket — the storage-worker half of
// cross-process sharding. A query frontend (ScatterGatherExecutor +
// net::SocketTransport) fans sub-queries out to N of these processes and
// merges the partials; see examples/cross_process_shards.cpp.
//
// The process builds its own replica of the data set and the full sharded
// precompute (deterministic, so TIDs and scores agree with every other
// replica — the property the byte-identity checks rest on), then serves
// its shard's slice until SIGTERM/SIGINT.
//
// Flags:
//   --shard=<i>            shard index served by this process (default 0)
//   --num-shards=<n>       total shards in the partition (default 1)
//   --replica-id=<r>       this process's replica id within its shard's
//                          replica set (default 0); stamped into every
//                          response ("r<id>:e<epoch>") and into log lines
//   --uds=<path>           listen on this Unix-domain socket path
//   --tcp-port=<p>         listen on 127.0.0.1:<p> instead (0 = ephemeral)
//   --max-path-length=<l>  precompute path-length cap (default 3)
//   --prune-threshold=<t>  PruneFrequentTopologies threshold (default 0)
//
// Example:  shard_server --shard=1 --num-shards=4 --replica-id=1 \
//               --uds=/tmp/shard1r1.sock

#include <signal.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "biozon/domain.h"
#include "biozon/fig3.h"
#include "core/builder.h"
#include "core/pruner.h"
#include "engine/engine.h"
#include "graph/data_graph.h"
#include "graph/schema_graph.h"
#include "net/shard_server.h"
#include "shard/frame_handler.h"
#include "shard/sharded_store.h"
#include "wire/message.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

/// "--name=value" flag lookup; returns `fallback` when absent.
std::string FlagString(int argc, char** argv, const std::string& name,
                       const std::string& fallback) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::string(argv[i] + prefix.size());
    }
  }
  return fallback;
}

long FlagLong(int argc, char** argv, const std::string& name,
              long fallback) {
  const std::string value = FlagString(argc, argv, name, "");
  return value.empty() ? fallback : std::atol(value.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tsb;

  const size_t shard =
      static_cast<size_t>(FlagLong(argc, argv, "shard", 0));
  const size_t num_shards =
      static_cast<size_t>(FlagLong(argc, argv, "num-shards", 1));
  const uint64_t replica_id =
      static_cast<uint64_t>(FlagLong(argc, argv, "replica-id", 0));
  const std::string uds = FlagString(argc, argv, "uds", "");
  const long tcp_port = FlagLong(argc, argv, "tcp-port", -1);
  const size_t max_path_length =
      static_cast<size_t>(FlagLong(argc, argv, "max-path-length", 3));
  const size_t prune_threshold =
      static_cast<size_t>(FlagLong(argc, argv, "prune-threshold", 0));

  if (shard >= num_shards) {
    std::fprintf(stderr, "shard_server: --shard=%zu out of range (%zu)\n",
                 shard, num_shards);
    return 1;
  }
  if (uds.empty() && tcp_port < 0) {
    std::fprintf(stderr,
                 "shard_server: need --uds=<path> or --tcp-port=<p>\n");
    return 1;
  }

  // This replica's data set and precompute. Build the *complete* shard
  // set (the Figure-3 fixture is small) so catalog interning sees every
  // topology in the canonical first-encounter order — identical TIDs and
  // global frequency maps on every replica — then serve only our slice.
  storage::Catalog db;
  biozon::BiozonSchema ids = biozon::BuildFigure3Database(&db);
  graph::DataGraphView view(db);
  graph::SchemaGraph schema(db);

  auto sharded = std::make_shared<shard::ShardedTopologyStore>(num_shards);
  core::TopologyBuilder builder(&db, &schema, &view);
  core::BuildConfig build;
  build.max_path_length = max_path_length;
  Status built = sharded->Build(&builder, build);
  if (!built.ok()) {
    std::fprintf(stderr, "shard_server: build failed: %s\n",
                 built.ToString().c_str());
    return 1;
  }
  // Prune only the served shard: pruning derives that store's private
  // LeftTops/ExcpTops tables and never touches the other replicas, so
  // the other N-1 slices (built above only for deterministic catalog
  // interning) would be dead work.
  core::PruneConfig prune;
  prune.frequency_threshold = prune_threshold;
  {
    auto snapshot = sharded->Snapshot(shard);
    std::vector<std::pair<storage::EntityTypeId, storage::EntityTypeId>>
        keys;
    for (const auto& [key, pair] : snapshot->pairs()) keys.push_back(key);
    for (const auto& [t1, t2] : keys) {
      auto pruned =
          core::PruneFrequentTopologies(&db, snapshot.get(), t1, t2, prune);
      if (!pruned.ok()) {
        std::fprintf(stderr, "shard_server: prune failed: %s\n",
                     pruned.status().ToString().c_str());
        return 1;
      }
    }
  }

  const std::shared_ptr<core::StoreHandle>& handle = sharded->handle(shard);
  engine::Engine engine(
      &db, handle, &schema, &view,
      core::ScoreModel(&handle->Snapshot()->catalog(),
                       biozon::MakeBiozonDomainKnowledge(ids)));
  shard::ShardFrameHandler handler(
      &db, &engine, [sharded, shard]() { return sharded->Snapshot(shard); },
      [sharded, shard, replica_id]() {
        return wire::MakeServingStamp(replica_id,
                                      sharded->handle(shard)->epoch());
      });

  net::ShardServerConfig server_config;
  server_config.uds_path = uds;
  if (tcp_port >= 0) {
    server_config.tcp_port = static_cast<uint16_t>(tcp_port);
  }
  net::ShardServer server(&handler, server_config);
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "shard_server: %s\n",
                 started.ToString().c_str());
    return 1;
  }
  std::printf("shard_server: serving shard %zu/%zu replica %llu on %s "
              "(%zu catalog topologies)\n",
              shard, num_shards,
              static_cast<unsigned long long>(replica_id),
              server.endpoint().c_str(),
              sharded->Snapshot(shard)->catalog().size());
  std::fflush(stdout);

  // Block the shutdown signals, then wait in sigsuspend: the signal can
  // only be delivered inside the atomic unblock-and-wait, so a SIGTERM
  // arriving between the g_stop check and the wait cannot be lost (the
  // classic pause() race).
  sigset_t mask;
  sigemptyset(&mask);
  sigaddset(&mask, SIGINT);
  sigaddset(&mask, SIGTERM);
  sigset_t unblocked;
  sigprocmask(SIG_BLOCK, &mask, &unblocked);
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (!g_stop) sigsuspend(&unblocked);
  sigprocmask(SIG_SETMASK, &unblocked, nullptr);

  server.Stop();
  std::printf("shard_server: shard %zu replica %llu stopped (%llu "
              "connections, %llu frames)\n",
              shard, static_cast<unsigned long long>(replica_id),
              static_cast<unsigned long long>(server.connections_accepted()),
              static_cast<unsigned long long>(server.frames_served()));
  return 0;
}
