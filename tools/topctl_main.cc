// topctl: the observability pull client. Sends kAdminRequest frames to
// live shard_servers (or any process serving the admin channel) and
// prints the response — Prometheus metrics, a JSON dump, the classic
// ToString tables, recent sampled traces, the slow-query log, or the
// merged fleet cost dashboard.
//
// Usage:  topctl [--uds=<path> | --host=<h> --tcp-port=<p> |
//                 --endpoints=<e1,e2,...>] <command>
//
// Commands (wire::AdminCommand names, plus `top`):
//   ping          liveness probe; prints "pong"
//   metrics       Prometheus text exposition
//   metrics-json  the same samples as JSON
//   metrics-text  human-readable metric tables
//   traces        recent sampled traces as span trees
//   slowlog       recent slow-query records
//   compaction    mutation-engine status: generation, pending dirty pairs,
//                 last background fold, WAL counters
//   top           fleet cost dashboard: pulls a cost-snapshot from every
//                 endpoint, merges the histograms and counters exactly,
//                 and renders per-method percentiles, shard skew, cache
//                 efficacy, mutation counters, and the top-cost queries
//
// Flags:
//   --uds=<path>       connect over this Unix-domain socket
//   --host=<h>         TCP host (default 127.0.0.1)
//   --tcp-port=<p>     TCP port
//   --endpoints=<l>    comma-separated endpoint list; an entry containing
//                      '/' is a Unix-domain socket path, `host:port` and
//                      bare `port` are TCP. Overrides --uds/--tcp-port.
//   --interval=<s>     watch mode: re-poll and re-render every <s> seconds
//                      until interrupted (0 or absent = poll once)
//   --timeout-ms=<ms>  round-trip deadline per endpoint (default 5000)
//
// Exit status: 0 on success, 1 on usage/transport errors (any unreachable
// endpoint in one-shot mode), 2 when a server answered with an
// admin-level error. Watch mode keeps polling through endpoint failures.
//
// Examples:  topctl --uds=/tmp/shard0.sock metrics
//            topctl --endpoints=/tmp/s0r0.sock,/tmp/s0r1.sock top

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "net/endpoint_client.h"
#include "obs/fleet.h"
#include "wire/codec.h"
#include "wire/message.h"

namespace {

/// "--name=value" or "--name value" flag lookup; `fallback` when absent.
std::string FlagString(int argc, char** argv, const std::string& name,
                       const std::string& fallback) {
  const std::string prefix = "--" + name + "=";
  const std::string bare = "--" + name;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::string(argv[i] + prefix.size());
    }
    if (bare == argv[i] && i + 1 < argc) {
      return std::string(argv[i + 1]);
    }
  }
  return fallback;
}

long FlagLong(int argc, char** argv, const std::string& name,
              long fallback) {
  const std::string value = FlagString(argc, argv, name, "");
  return value.empty() ? fallback : std::atol(value.c_str());
}

/// The first non-flag argument is the command name (flag values passed in
/// the separated "--name value" form are skipped).
std::string PositionalCommand(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--", 2) == 0) {
      if (std::strchr(argv[i], '=') == nullptr && i + 1 < argc) ++i;
      continue;
    }
    return argv[i];
  }
  return "";
}

/// One entry of --endpoints: '/' means a UDS path; otherwise host:port or
/// a bare port on 127.0.0.1.
bool ParseEndpoint(const std::string& entry, const std::string& default_host,
                   tsb::net::ShardEndpoint* out) {
  if (entry.empty()) return false;
  if (entry.find('/') != std::string::npos) {
    *out = tsb::net::ShardEndpoint::Unix(entry);
    return true;
  }
  const size_t colon = entry.rfind(':');
  const std::string host =
      colon == std::string::npos ? default_host : entry.substr(0, colon);
  const std::string port_text =
      colon == std::string::npos ? entry : entry.substr(colon + 1);
  const long port = std::atol(port_text.c_str());
  if (port <= 0 || port > 65535 || host.empty()) return false;
  *out = tsb::net::ShardEndpoint::Tcp(host, static_cast<uint16_t>(port));
  return true;
}

tsb::net::Deadline MakeDeadline(long timeout_ms) {
  tsb::net::Deadline deadline;
  if (timeout_ms > 0) {
    deadline = std::chrono::steady_clock::now() +
               std::chrono::milliseconds(timeout_ms);
  }
  return deadline;
}

/// One admin round trip. Transport failures print a diagnostic and return
/// 1; server-side admin errors print one and return 2.
int FetchAdmin(const tsb::net::ShardEndpoint& endpoint,
               tsb::wire::AdminCommand command, long timeout_ms,
               std::string* body) {
  using namespace tsb;
  wire::AdminRequest request;
  request.command = command;
  std::string encoded;
  wire::EncodeAdminRequest(request, &encoded);
  net::EndpointClient client(endpoint);
  Result<std::string> frame =
      client.RoundTrip(encoded, MakeDeadline(timeout_ms));
  if (!frame.ok()) {
    std::fprintf(stderr, "topctl: %s: %s\n", endpoint.ToString().c_str(),
                 frame.status().ToString().c_str());
    return 1;
  }
  Result<wire::AdminResponse> response = wire::DecodeAdminResponse(*frame);
  if (!response.ok()) {
    std::fprintf(stderr, "topctl: %s: bad response frame: %s\n",
                 endpoint.ToString().c_str(),
                 response.status().ToString().c_str());
    return 1;
  }
  if (!response->error.ok()) {
    std::fprintf(stderr, "topctl: %s: server error %s: %s\n",
                 endpoint.ToString().c_str(),
                 wire::WireErrorCodeToString(response->error.code),
                 response->error.message.c_str());
    return 2;
  }
  *body = std::move(response->body);
  return 0;
}

/// `topctl top`: pull a cost-snapshot from every endpoint, merge exactly,
/// render the fleet dashboard. Endpoints that fail are reported and
/// skipped; the merged view covers whoever answered.
int RunTop(const std::vector<tsb::net::ShardEndpoint>& endpoints,
           long timeout_ms) {
  using namespace tsb;
  obs::FleetSnapshot merged;
  bool have_any = false;
  int worst = 0;
  for (const net::ShardEndpoint& endpoint : endpoints) {
    std::string body;
    const int rc =
        FetchAdmin(endpoint, wire::AdminCommand::kCostSnapshot, timeout_ms,
                   &body);
    if (rc != 0) {
      worst = std::max(worst, rc);
      continue;
    }
    Result<obs::FleetSnapshot> snapshot = obs::DecodeFleetSnapshot(body);
    if (!snapshot.ok()) {
      std::fprintf(stderr, "topctl: %s: bad cost snapshot: %s\n",
                   endpoint.ToString().c_str(),
                   snapshot.status().ToString().c_str());
      worst = std::max(worst, 1);
      continue;
    }
    if (!have_any) {
      merged = std::move(*snapshot);
      have_any = true;
    } else {
      merged.Merge(*snapshot);
    }
  }
  if (!have_any) {
    std::fprintf(stderr, "topctl: no endpoint answered\n");
    return worst == 0 ? 1 : worst;
  }
  std::fputs(merged.Render().c_str(), stdout);
  std::fflush(stdout);
  return worst;
}

/// Every non-`top` command: print each endpoint's body, with a header per
/// endpoint when polling more than one.
int RunCommand(const std::vector<tsb::net::ShardEndpoint>& endpoints,
               tsb::wire::AdminCommand command, long timeout_ms) {
  int worst = 0;
  for (const tsb::net::ShardEndpoint& endpoint : endpoints) {
    std::string body;
    const int rc = FetchAdmin(endpoint, command, timeout_ms, &body);
    if (rc != 0) {
      worst = std::max(worst, rc);
      continue;
    }
    if (endpoints.size() > 1) {
      std::printf("== %s ==\n", endpoint.ToString().c_str());
    }
    std::fputs(body.c_str(), stdout);
    if (!body.empty() && body.back() != '\n') std::fputc('\n', stdout);
  }
  std::fflush(stdout);
  return worst;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tsb;

  const std::string uds = FlagString(argc, argv, "uds", "");
  const std::string host = FlagString(argc, argv, "host", "127.0.0.1");
  const long tcp_port = FlagLong(argc, argv, "tcp-port", -1);
  const long timeout_ms = FlagLong(argc, argv, "timeout-ms", 5000);
  const long interval_s = FlagLong(argc, argv, "interval", 0);
  const std::string endpoints_flag =
      FlagString(argc, argv, "endpoints", "");
  const std::string command_name = PositionalCommand(argc, argv);

  std::vector<net::ShardEndpoint> endpoints;
  if (!endpoints_flag.empty()) {
    size_t begin = 0;
    while (begin <= endpoints_flag.size()) {
      size_t end = endpoints_flag.find(',', begin);
      if (end == std::string::npos) end = endpoints_flag.size();
      const std::string entry = endpoints_flag.substr(begin, end - begin);
      if (!entry.empty()) {
        net::ShardEndpoint endpoint = net::ShardEndpoint::Unix("");
        if (!ParseEndpoint(entry, host, &endpoint)) {
          std::fprintf(stderr, "topctl: bad endpoint '%s'\n", entry.c_str());
          return 1;
        }
        endpoints.push_back(std::move(endpoint));
      }
      begin = end + 1;
    }
  } else if (!uds.empty()) {
    endpoints.push_back(net::ShardEndpoint::Unix(uds));
  } else if (tcp_port >= 0) {
    endpoints.push_back(
        net::ShardEndpoint::Tcp(host, static_cast<uint16_t>(tcp_port)));
  }

  if (command_name.empty() || endpoints.empty()) {
    std::fprintf(stderr,
                 "usage: topctl [--uds=<path> | --host=<h> --tcp-port=<p> | "
                 "--endpoints=<e1,e2,...>] [--interval=<s>] "
                 "<ping|metrics|metrics-json|metrics-text|traces|slowlog|"
                 "compaction|top>\n");
    return 1;
  }

  const bool is_top = command_name == "top";
  wire::AdminCommand command = wire::AdminCommand::kPing;
  if (!is_top && !wire::ParseAdminCommand(command_name, &command)) {
    std::fprintf(stderr, "topctl: unknown command '%s'\n",
                 command_name.c_str());
    return 1;
  }

  for (;;) {
    const int rc = is_top ? RunTop(endpoints, timeout_ms)
                          : RunCommand(endpoints, command, timeout_ms);
    if (interval_s <= 0) return rc;
    // Watch mode: keep polling through failures (a restarting server
    // reappears in the next round); only a signal stops the loop.
    std::printf("--- every %lds ---\n", interval_s);
    std::fflush(stdout);
    ::sleep(static_cast<unsigned>(interval_s));
  }
}
