// topctl: the observability pull client. Sends one kAdminRequest frame to
// a live shard_server (or any process serving the admin channel) and
// prints the response body — Prometheus metrics, a JSON dump, the classic
// ToString tables, recent sampled traces, or the slow-query log.
//
// Usage:  topctl [--uds=<path> | --host=<h> --tcp-port=<p>] <command>
//
// Commands (wire::AdminCommand names):
//   ping          liveness probe; prints "pong"
//   metrics       Prometheus text exposition
//   metrics-json  the same samples as JSON
//   metrics-text  human-readable metric tables
//   traces        recent sampled traces as span trees
//   slowlog       recent slow-query records
//   compaction    mutation-engine status: generation, pending dirty pairs,
//                 last background fold, WAL counters
//
// Flags:
//   --uds=<path>       connect over this Unix-domain socket
//   --host=<h>         TCP host (default 127.0.0.1)
//   --tcp-port=<p>     TCP port
//   --timeout-ms=<ms>  round-trip deadline (default 5000)
//
// Exit status: 0 on success, 1 on usage/transport errors, 2 when the
// server answered with an admin-level error.
//
// Example:  topctl --uds=/tmp/shard0.sock metrics

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "net/endpoint_client.h"
#include "wire/codec.h"
#include "wire/message.h"

namespace {

std::string FlagString(int argc, char** argv, const std::string& name,
                       const std::string& fallback) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::string(argv[i] + prefix.size());
    }
  }
  return fallback;
}

long FlagLong(int argc, char** argv, const std::string& name,
              long fallback) {
  const std::string value = FlagString(argc, argv, name, "");
  return value.empty() ? fallback : std::atol(value.c_str());
}

/// The first non-flag argument is the command name.
std::string PositionalCommand(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--", 2) != 0) return argv[i];
  }
  return "";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tsb;

  const std::string uds = FlagString(argc, argv, "uds", "");
  const std::string host = FlagString(argc, argv, "host", "127.0.0.1");
  const long tcp_port = FlagLong(argc, argv, "tcp-port", -1);
  const long timeout_ms = FlagLong(argc, argv, "timeout-ms", 5000);
  const std::string command_name = PositionalCommand(argc, argv);

  if (command_name.empty() || (uds.empty() && tcp_port < 0)) {
    std::fprintf(stderr,
                 "usage: topctl [--uds=<path> | --host=<h> --tcp-port=<p>] "
                 "<ping|metrics|metrics-json|metrics-text|traces|slowlog|"
                 "compaction>\n");
    return 1;
  }
  wire::AdminCommand command;
  if (!wire::ParseAdminCommand(command_name, &command)) {
    std::fprintf(stderr, "topctl: unknown command '%s'\n",
                 command_name.c_str());
    return 1;
  }

  net::ShardEndpoint endpoint =
      uds.empty()
          ? net::ShardEndpoint::Tcp(host, static_cast<uint16_t>(tcp_port))
          : net::ShardEndpoint::Unix(uds);
  net::EndpointClient client(endpoint);

  wire::AdminRequest request;
  request.command = command;
  std::string encoded;
  wire::EncodeAdminRequest(request, &encoded);

  net::Deadline deadline;
  if (timeout_ms > 0) {
    deadline = std::chrono::steady_clock::now() +
               std::chrono::milliseconds(timeout_ms);
  }
  Result<std::string> frame = client.RoundTrip(encoded, deadline);
  if (!frame.ok()) {
    std::fprintf(stderr, "topctl: %s: %s\n", endpoint.ToString().c_str(),
                 frame.status().ToString().c_str());
    return 1;
  }
  Result<wire::AdminResponse> response = wire::DecodeAdminResponse(*frame);
  if (!response.ok()) {
    std::fprintf(stderr, "topctl: bad response frame: %s\n",
                 response.status().ToString().c_str());
    return 1;
  }
  if (!response->error.ok()) {
    std::fprintf(stderr, "topctl: server error %s: %s\n",
                 wire::WireErrorCodeToString(response->error.code),
                 response->error.message.c_str());
    return 2;
  }
  std::fputs(response->body.c_str(), stdout);
  if (!response->body.empty() && response->body.back() != '\n') {
    std::fputc('\n', stdout);
  }
  return 0;
}
