// Live store rebuild: the service re-runs the offline Topology
// Computation (with a larger l) behind concurrent query traffic and swaps
// the new epoch in atomically — "rebuild continuously while serving".
//
// Shows the staged pipeline end to end: build an initial l=2 store through
// a StoreHandle, serve queries from client threads, then Rebuild() with
// l=3 — stage steps fan out over the same worker pool the queries run on,
// commits happen in canonical pair order, the handle swap retires the old
// epoch, and its tables drop once the last in-flight snapshot releases.
//
// Build & run:  ./build/examples/live_rebuild

#include <atomic>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "biozon/domain.h"
#include "biozon/fig3.h"
#include "core/builder.h"
#include "core/pruner.h"
#include "engine/engine.h"
#include "graph/data_graph.h"
#include "graph/schema_graph.h"
#include "service/service.h"

int main() {
  using namespace tsb;

  // 1. Database plus an initial shallow (l=2) precompute epoch, owned by a
  //    StoreHandle so it can be swapped later.
  storage::Catalog db;
  biozon::BiozonSchema ids = biozon::BuildFigure3Database(&db);
  graph::DataGraphView view(db);
  graph::SchemaGraph schema(db);

  auto initial = std::make_shared<core::TopologyStore>();
  core::TopologyBuilder builder(&db, &schema, &view);
  core::BuildConfig build;
  build.max_path_length = 2;
  TSB_CHECK(builder.BuildAllPairs(build, initial.get()).ok());
  core::PruneConfig prune;
  prune.frequency_threshold = 0;
  for (const auto& [key, pair] : initial->pairs()) {
    TSB_CHECK(core::PruneFrequentTopologies(&db, initial.get(), key.first,
                                            key.second, prune)
                  .ok());
  }
  auto handle = std::make_shared<core::StoreHandle>(initial);
  std::printf("epoch 0 (l=2): %zu pairs, %zu topologies\n",
              initial->pairs().size(), initial->catalog().size());
  initial.reset();  // The handle owns the epoch from here on.

  // 2. Engine + service over the handle; AttachLiveStore enables Rebuild.
  engine::Engine engine(&db, handle, &schema, &view,
                        core::ScoreModel(
                            &handle->Snapshot()->catalog(),
                            biozon::MakeBiozonDomainKnowledge(ids)));
  service::ServiceConfig config;
  config.num_threads = 4;
  service::TopologyService svc(&engine, &db, config);
  TSB_CHECK(svc.AttachLiveStore(&schema, &view).ok());

  // 3. Client threads hammer the service across the swap.
  const char* line =
      "TOPK k=10 method=full-topk scheme=freq "
      "set1=Protein pred1=DESC.ct('enzyme') set2=DNA pred2=TYPE='mRNA'";
  std::atomic<bool> stop{false};
  std::atomic<size_t> served{0};
  std::atomic<size_t> failed{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 3; ++t) {
    clients.emplace_back([&]() {
      while (!stop.load(std::memory_order_acquire)) {
        service::ServiceResponse r = svc.SubmitLine(line).get();
        if (r.result.ok()) {
          ++served;
        } else {
          ++failed;
        }
      }
    });
  }
  while (served.load() < 32) std::this_thread::yield();

  // 4. Rebuild with a deeper l while the clients keep querying. The
  //    result cache is dropped as part of the swap.
  service::RebuildOptions rebuild;
  rebuild.build.max_path_length = 3;
  rebuild.prune_threshold = 0;
  rebuild.export_topinfo = true;
  auto stats = svc.Rebuild(rebuild);
  TSB_CHECK(stats.ok()) << stats.status();
  std::printf(
      "epoch %llu (l=3) swapped in behind traffic: %zu pairs, %zu "
      "topologies, staged+committed in %.3fs (namespace '%s')\n",
      static_cast<unsigned long long>(stats->epoch), stats->pairs_built,
      stats->catalog_topologies, stats->build_seconds,
      stats->table_namespace.c_str());

  const size_t at_swap = served.load();
  while (served.load() < at_swap + 32) std::this_thread::yield();
  stop.store(true, std::memory_order_release);
  for (std::thread& client : clients) client.join();
  std::printf("served %zu queries across the swap, %zu failed\n",
              served.load(), failed.load());
  TSB_CHECK(failed.load() == 0);

  // 5. The new epoch answers with the deeper topology set; the retired
  //    epoch's tables were dropped when its last snapshot released.
  service::ServiceResponse after = svc.SubmitLine(line).get();
  TSB_CHECK(after.result.ok());
  std::printf("post-swap top-k has %zu entries; old AllTops dropped: %s\n",
              after.result->entries.size(),
              db.FindTable("AllTops_Protein_DNA") == nullptr ? "yes" : "no");
  std::printf("%s", svc.Metrics().ToString().c_str());
  svc.Shutdown();
  return 0;
}
