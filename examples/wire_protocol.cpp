// Wire protocol demo (src/wire/): the versioned request/response frames,
// both codecs (canonical text and length-prefixed binary), the streaming
// priority-aware service surface, and the shard transport seam.
//
// Shows: Format() round-tripping a parsed request to its canonical line,
// a binary frame crossing an encode → decode boundary byte-identically,
// a stream of mixed-priority requests answered through a StreamSink with
// deadline shedding, and a 2-shard scatter whose sub-queries travel as
// encoded wire messages (LoopbackTransport).
//
// Build & run:  ./build/examples/wire_protocol

#include <cstdio>
#include <memory>

#include "biozon/domain.h"
#include "biozon/fig3.h"
#include "core/builder.h"
#include "core/pruner.h"
#include "engine/engine.h"
#include "graph/data_graph.h"
#include "graph/schema_graph.h"
#include "service/service.h"
#include "shard/scatter_gather.h"
#include "shard/sharded_store.h"
#include "wire/codec.h"
#include "wire/message.h"

int main() {
  using namespace tsb;

  // 1. Build the Figure-3 micro-database and its topology artifacts.
  storage::Catalog db;
  biozon::BiozonSchema ids = biozon::BuildFigure3Database(&db);
  graph::DataGraphView view(db);
  graph::SchemaGraph schema(db);
  core::TopologyStore store;
  core::TopologyBuilder builder(&db, &schema, &view);
  core::BuildConfig build;
  build.max_path_length = 3;
  TSB_CHECK(builder.BuildPair(ids.protein, ids.dna, build, &store).ok());
  core::PruneConfig prune;
  prune.frequency_threshold = 0;
  TSB_CHECK(core::PruneFrequentTopologies(&db, &store, ids.protein, ids.dna,
                                          prune)
                .ok());
  engine::Engine engine(&db, &store, &schema, &view,
                        core::ScoreModel(
                            &store.catalog(),
                            biozon::MakeBiozonDomainKnowledge(ids)));

  // 2. The text codec: parse a request line, then Format() it back to its
  //    canonical form — the human-readable encoding of the protocol.
  service::RequestParser parser(&db);
  auto parsed = parser.Parse(
      "TOPK k=5 scheme=domain set2=DNA pred2=TYPE='mRNA' "
      "set1=Protein pred1=DESC.ct('enzyme') method=fast-topk-et");
  TSB_CHECK(parsed.ok()) << parsed.status();
  auto canonical = service::RequestParser::Format(*parsed);
  TSB_CHECK(canonical.ok());
  std::printf("canonical line:\n  %s\n\n", canonical->c_str());

  // Malformed input fails with the field and byte offset:
  auto broken = parser.Parse("TOPK set1=Protein set2=DNA method=warp9");
  std::printf("parse error example:\n  %s\n\n",
              broken.status().message().c_str());

  // 3. The binary codec: the same request as one length-prefixed frame.
  wire::WireRequest request;
  request.id = 1;
  request.priority = wire::Priority::kInteractive;
  request.query = parsed->query;
  request.method = parsed->method;
  std::string frame;
  wire::EncodeQueryRequest(request, &frame);
  auto decoded = wire::DecodeQueryRequest(frame, db);
  TSB_CHECK(decoded.ok());
  std::string reencoded;
  wire::EncodeQueryRequest(*decoded, &reencoded);
  std::printf("binary frame: %zu bytes, re-encode byte-identical: %s\n\n",
              frame.size(), frame == reencoded ? "yes" : "NO");

  // 4. The streaming service surface: a mixed-priority stream through a
  //    StreamSink; frames arrive in completion order, interactive first.
  service::ServiceConfig config;
  config.num_threads = 2;
  service::TopologyService svc(&engine, &db, config);

  class PrintingSink : public wire::StreamSink {
   public:
    void OnFrame(const wire::WireFrame& frame) override {
      if (frame.kind == wire::FrameKind::kStreamEnd) {
        std::printf("  [stream %llu end]\n",
                    static_cast<unsigned long long>(frame.stream_id));
        return;
      }
      const wire::WireResponse& r = frame.response;
      if (r.error.ok()) {
        std::printf("  frame: request %llu -> %zu entries (%.3f ms%s)\n",
                    static_cast<unsigned long long>(r.request_id),
                    r.result.entries.size(), r.service_seconds * 1e3,
                    r.from_cache ? ", cached" : "");
      } else {
        std::printf("  frame: request %llu -> %s: %s\n",
                    static_cast<unsigned long long>(r.request_id),
                    wire::WireErrorCodeToString(r.error.code),
                    r.error.message.c_str());
      }
    }
  } sink;

  std::vector<wire::WireRequest> stream;
  for (uint64_t i = 0; i < 3; ++i) {
    wire::WireRequest r = request;
    r.id = 10 + i;
    r.priority = i == 0 ? wire::Priority::kInteractive
                        : wire::Priority::kBatch;
    r.query.k = 5 + i;  // Distinct fingerprints: everything executes.
    if (i == 2) r.deadline_seconds = 1e-9;  // Expires in the queue.
    stream.push_back(std::move(r));
  }
  std::printf("streaming 3 requests (1 interactive, 2 batch, one with an "
              "expired deadline):\n");
  svc.SubmitStream(std::move(stream), sink);
  svc.Shutdown();  // Drains the stream; every frame above was delivered.

  auto metrics = svc.Metrics();
  std::printf("\nper-class serving metrics:\n%s\n",
              metrics.ToString().c_str());

  // 5. The transport seam: a 2-shard store whose scatter sub-queries cross
  //    the wire (encoded frames over LoopbackTransport, in-process).
  auto sharded = std::make_shared<shard::ShardedTopologyStore>(2);
  core::BuildConfig shard_build = build;
  shard_build.table_namespace = "demo.";
  {
    // Build the same single pair as the unsharded store (identical
    // catalogs are what make per-shard rankings globally comparable).
    std::vector<core::TopologyStore*> raw;
    for (size_t i = 0; i < 2; ++i) raw.push_back(sharded->Snapshot(i).get());
    TSB_CHECK(
        builder.BuildPair(ids.protein, ids.dna, shard_build, raw).ok());
  }
  for (size_t i = 0; i < 2; ++i) {
    TSB_CHECK(core::PruneFrequentTopologies(&db, sharded->Snapshot(i).get(),
                                            ids.protein, ids.dna, prune)
                  .ok());
  }
  shard::ScatterGatherExecutor executor(
      &db, sharded, &schema, &view, biozon::MakeBiozonDomainKnowledge(ids));
  auto scattered = executor.Execute(parsed->query, parsed->method);
  TSB_CHECK(scattered.ok());
  auto direct = engine.Execute(parsed->query, parsed->method);
  TSB_CHECK(direct.ok());
  TSB_CHECK(scattered->entries == direct->entries);
  auto stats = executor.GetScatterStats();
  std::printf("2-shard scatter over the wire: identical to single-store "
              "(%zu entries)\n", scattered->entries.size());
  std::printf("  transport: %llu sub-queries as frames, %llu B sent, "
              "%llu B received, %llu failed\n",
              static_cast<unsigned long long>(stats.transport_subqueries),
              static_cast<unsigned long long>(stats.transport_bytes_sent),
              static_cast<unsigned long long>(stats.transport_bytes_received),
              static_cast<unsigned long long>(stats.failed_subqueries));
  return 0;
}
