// Service demo: the Figure-3 micro-database served as a shared,
// concurrent query service (src/service/) driven by text requests.
//
// Shows the full serving loop: build once, start TopologyService, answer
// Example 2.1 through the text frontend, repeat it to hit the result
// cache, fan out a batch, and print the serving metrics.
//
// Build & run:  ./build/examples/service_demo

#include <cstdio>

#include "biozon/domain.h"
#include "biozon/fig3.h"
#include "core/builder.h"
#include "core/pruner.h"
#include "engine/engine.h"
#include "graph/data_graph.h"
#include "graph/schema_graph.h"
#include "service/service.h"

int main() {
  using namespace tsb;

  // 1. Build the database and the precomputed topology artifacts, exactly
  //    as in examples/quickstart.cpp.
  storage::Catalog db;
  biozon::BiozonSchema ids = biozon::BuildFigure3Database(&db);
  graph::DataGraphView view(db);
  graph::SchemaGraph schema(db);
  core::TopologyStore store;
  core::TopologyBuilder builder(&db, &schema, &view);
  core::BuildConfig build;
  build.max_path_length = 3;
  TSB_CHECK(builder.BuildPair(ids.protein, ids.dna, build, &store).ok());
  core::PruneConfig prune;
  prune.frequency_threshold = 0;
  TSB_CHECK(core::PruneFrequentTopologies(&db, &store, ids.protein, ids.dna,
                                          prune)
                .ok());
  engine::Engine engine(&db, &store, &schema, &view,
                        core::ScoreModel(
                            &store.catalog(),
                            biozon::MakeBiozonDomainKnowledge(ids)));
  engine.PrepareIndexes("Protein", "DNA");

  // 2. Start the service: a worker pool, a sharded result cache, and the
  //    text frontend.
  service::ServiceConfig config;
  config.num_threads = 4;
  service::TopologyService svc(&engine, &db, config);
  std::printf("service up: %zu worker threads, %zuMB cache\n\n",
              svc.num_threads(), config.cache.max_bytes >> 20);

  // 3. Example 2.1 as a text request.
  const char* line =
      "TOPK k=10 method=fast-topk-et scheme=domain "
      "set1=Protein pred1=DESC.ct('enzyme') set2=DNA pred2=TYPE='mRNA'";
  std::printf("> %s\n", line);
  service::ServiceResponse cold = svc.SubmitLine(line).get();
  TSB_CHECK(cold.result.ok()) << cold.result.status();
  for (const auto& entry : cold.result->entries) {
    std::printf("  T%lld  score=%.1f  %s\n",
                static_cast<long long>(entry.tid), entry.score,
                store.catalog().Describe(entry.tid, schema).c_str());
  }
  std::printf("  [cold: %.3f ms, from_cache=%d]\n\n",
              cold.service_seconds * 1e3, cold.from_cache);

  // 4. The same request again: served from the cache, identical entries.
  service::ServiceResponse warm = svc.SubmitLine(line).get();
  TSB_CHECK(warm.result.ok());
  TSB_CHECK(warm.from_cache);
  TSB_CHECK(warm.result->entries == cold.result->entries);
  std::printf("repeat:  [warm: %.3f ms, from_cache=%d, identical entries]\n\n",
              warm.service_seconds * 1e3, warm.from_cache);

  // 5. A batch across methods, with ExecStats totals.
  std::vector<service::ParsedRequest> batch;
  for (const char* batch_line :
       {"TOP method=full-top set1=Protein set2=DNA",
        "TOP method=fast-top set1=Protein pred1=DESC.ct('enzyme') set2=DNA",
        "TOPK k=2 method=fast-topk scheme=freq set1=Protein set2=DNA "
        "pred2=TYPE='mRNA'"}) {
    auto parsed = svc.parser().Parse(batch_line);
    TSB_CHECK(parsed.ok()) << parsed.status();
    batch.push_back(*parsed);
  }
  service::BatchOutcome outcome = svc.ExecuteBatch(batch);
  std::printf("batch: %zu requests, %zu cache hits, %zu failures; "
              "totals: %.3f ms engine time, %llu rows scanned, %llu probes\n\n",
              outcome.responses.size(), outcome.cache_hits, outcome.failures,
              outcome.total.seconds * 1e3,
              static_cast<unsigned long long>(outcome.total.rows_scanned),
              static_cast<unsigned long long>(outcome.total.probes));

  // 6. Invalidation: after any store rebuild the cache must be dropped.
  svc.InvalidateCache();
  std::printf("cache invalidated (entries now %zu)\n\n",
              svc.CacheStats().entries);

  // 7. Serving metrics.
  std::printf("%s", svc.Metrics().ToString().c_str());
  svc.Shutdown();
  return 0;
}
