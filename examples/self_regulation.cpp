// Finds the biologically significant self-regulation topology of Figure 16:
// two proteins encoded by the same DNA sequence that also interact with
// each other. The paper highlights this topology as the kind of discovery
// topology search enables (Section 6.2.1); here the Domain ranking surfaces
// it from a synthetic database and instance retrieval produces the concrete
// biological systems (protein/DNA/interaction ids) behind it.
//
// Build & run:  ./build/examples/self_regulation [--scale=0.5]

#include <cstdio>
#include <cstring>
#include <string>

#include "biozon/domain.h"
#include "biozon/generator.h"
#include "core/builder.h"
#include "core/instance_retrieval.h"
#include "core/pruner.h"
#include "engine/engine.h"
#include "graph/canonical.h"
#include "graph/data_graph.h"
#include "graph/isomorphism.h"
#include "graph/schema_graph.h"

int main(int argc, char** argv) {
  using namespace tsb;

  double scale = 0.5;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--scale=", 8) == 0) {
      scale = std::stod(argv[i] + 8);
    }
  }

  storage::Catalog db;
  biozon::GeneratorConfig gen;
  gen.scale = scale;
  biozon::BiozonSchema ids = biozon::GenerateBiozon(gen, &db);
  graph::DataGraphView view(db);
  graph::SchemaGraph schema(db);
  std::printf("synthetic Biozon: %zu entities, %zu relationships\n",
              view.num_nodes(), view.num_edges());

  core::TopologyStore store;
  core::TopologyBuilder builder(&db, &schema, &view);
  core::BuildConfig build;
  build.max_path_length = 3;
  build.max_class_representatives = 8;
  build.max_union_combinations = 512;
  TSB_CHECK(builder.BuildPair(ids.protein, ids.protein, build, &store).ok());
  const core::PairTopologyData& pair =
      *store.FindPair(ids.protein, ids.protein);
  std::printf("built Protein-Protein 3-topologies: %zu distinct\n",
              pair.freq.size());

  // The Figure-16 motif, as a labeled graph.
  graph::LabeledGraph fig16;
  auto d = fig16.AddNode(ids.dna);
  auto p1 = fig16.AddNode(ids.protein);
  auto p2 = fig16.AddNode(ids.protein);
  auto i = fig16.AddNode(ids.interaction);
  fig16.AddEdge(p1, d, ids.encodes);
  fig16.AddEdge(p2, d, ids.encodes);
  fig16.AddEdge(p1, i, ids.interacts_p);
  fig16.AddEdge(p2, i, ids.interacts_p);

  // Rank all observed topologies by Domain score and report where
  // motif-containing ones land.
  core::ScoreModel scores(&store.catalog(),
                          biozon::MakeBiozonDomainKnowledge(ids));
  auto ranked = scores.RankedTids(core::RankScheme::kDomain, pair);
  std::printf("\ntop 8 Protein-Protein topologies by Domain score:\n");
  core::Tid exact_fig16 = core::kNoTid;
  {
    auto found = store.catalog().FindByCode(graph::CanonicalCode(fig16));
    if (found.has_value()) exact_fig16 = *found;
  }
  for (size_t r = 0; r < ranked.size() && r < 8; ++r) {
    const auto& [tid, score] = ranked[r];
    const core::TopologyInfo& info = store.catalog().Get(tid);
    bool contains = graph::IsSubgraphIsomorphic(fig16, info.graph);
    std::printf("  #%zu score=%5.1f freq=%-6zu %s%s\n", r + 1, score,
                pair.freq.at(tid),
                store.catalog().Describe(tid, schema).c_str(),
                contains ? "   <== contains Figure-16 motif" : "");
  }

  if (exact_fig16 == core::kNoTid) {
    std::printf("\nexact Figure-16 topology not observed at this scale; try "
                "a larger --scale\n");
    return 0;
  }

  // Retrieve concrete instances: the actual protein/DNA/interaction ids.
  core::RetrievalLimits limits;
  limits.max_pairs = 5;
  limits.max_instances_per_pair = 1;
  auto instances =
      core::RetrieveInstances(db, store, schema, view, ids.protein,
                              ids.protein, exact_fig16, limits);
  std::printf("\nconcrete self-regulation systems (first %zu):\n",
              instances.size());
  for (const auto& instance : instances) {
    std::printf("  proteins (%lld, %lld):", static_cast<long long>(instance.a),
                static_cast<long long>(instance.b));
    for (size_t n = 0; n < instance.node_ids.size(); ++n) {
      std::printf(" %s=%lld",
                  schema.entity_name(instance.subgraph.node_label(
                      static_cast<graph::LabeledGraph::NodeId>(n)))
                      .c_str(),
                  static_cast<long long>(instance.node_ids[n]));
    }
    std::printf("\n");
  }
  return 0;
}
