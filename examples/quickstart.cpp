// Quickstart: the paper's running example, end to end.
//
// Loads the Figure-3 micro-database, computes 3-topologies for the
// (Protein, DNA) pair offline, prunes frequent path topologies, and then
// answers the query of Example 2.1 —
//     Q = { (Protein, desc.ct('enzyme')), (DNA, type = 'mRNA') }
// — with Fast-Top, printing the topology results T1..T4 of Figure 5.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "biozon/domain.h"
#include "biozon/fig3.h"
#include "core/builder.h"
#include "core/pruner.h"
#include "engine/engine.h"
#include "graph/data_graph.h"
#include "graph/schema_graph.h"

int main() {
  using namespace tsb;

  // 1. The database: entity and relationship tables (Figure 3).
  storage::Catalog db;
  biozon::BiozonSchema ids = biozon::BuildFigure3Database(&db);
  graph::DataGraphView view(db);
  graph::SchemaGraph schema(db);
  std::printf("database: %zu entities, %zu relationships\n",
              view.num_nodes(), view.num_edges());

  // 2. Offline topology computation (Section 4.1): the AllTops table.
  core::TopologyStore store;
  core::TopologyBuilder builder(&db, &schema, &view);
  core::BuildConfig build;
  build.max_path_length = 3;  // 3-topologies.
  TSB_CHECK(builder.BuildPair(ids.protein, ids.dna, build, &store).ok());
  const core::PairTopologyData& pair =
      *store.FindPair(ids.protein, ids.dna);
  std::printf("offline build: %zu topologies over %zu related pairs\n",
              pair.freq.size(), pair.num_related_pairs);

  // 3. Pruning (Section 4.2): LeftTops + ExcpTops.
  core::PruneConfig prune;
  prune.frequency_threshold = 0;  // Tiny fixture: prune all path shapes.
  TSB_CHECK(core::PruneFrequentTopologies(&db, &store, ids.protein, ids.dna,
                                          prune)
                .ok());
  std::printf("pruned %zu path topologies\n", pair.pruned_tids.size());

  // 4. The query engine.
  engine::Engine engine(&db, &store, &schema, &view,
                        core::ScoreModel(
                            &store.catalog(),
                            biozon::MakeBiozonDomainKnowledge(ids)));
  engine.PrepareIndexes("Protein", "DNA");

  engine::TopologyQuery q;
  q.entity_set1 = "Protein";
  q.pred1 = storage::MakeContainsKeyword(db.GetTable("Protein")->schema(),
                                         "DESC", "enzyme");
  q.entity_set2 = "DNA";
  q.pred2 = storage::MakeEquals(db.GetTable("DNA")->schema(), "TYPE",
                                storage::Value("mRNA"));
  q.scheme = core::RankScheme::kDomain;
  q.k = 10;

  auto result = engine.Execute(q, engine::MethodKind::kFastTop);
  TSB_CHECK(result.ok()) << result.status();

  std::printf("\nQ = { (Protein, desc.ct('enzyme')), (DNA, type='mRNA') }\n");
  std::printf("topology results (%zu, ranked by Domain score):\n",
              result->entries.size());
  for (const auto& entry : result->entries) {
    const core::TopologyInfo& info = store.catalog().Get(entry.tid);
    std::printf("  T%lld  score=%.1f  %zu nodes / %zu edges / %zu classes\n"
                "       %s\n",
                static_cast<long long>(entry.tid), entry.score,
                info.graph.num_nodes(), info.graph.num_edges(),
                info.num_classes,
                store.catalog().Describe(entry.tid, schema).c_str());
  }
  std::printf("\nplan: %s\n", result->stats.plan.c_str());
  return 0;
}
