// Replica sets end to end: spawn an N=2 shards × R=2 replicas grid of
// shard-server processes (tools/shard_server, each stamping its
// --replica-id into responses), point a replica::ReplicaSetTransport at
// the grid, and show the three replica-layer behaviors over real process
// boundaries:
//
//   1. Routing is invisible: all nine query methods return byte-identical
//      results through the replicated grid (vs the single-store engine),
//      with the serving work spread across replicas.
//   2. Failover is invisible: SIGKILL one replica and every answer stays
//      FULL and byte-identical — compare examples/cross_process_shards,
//      where the same kill with R=1 degrades answers to partial=true.
//      The health tracker walks the dead replica suspect → ejected.
//   3. Recovery is automatic: restart the process on the same socket and
//      live traffic probes it back to healthy — no operator action, no
//      out-of-band health checks.
//
// Each server process builds the same deterministic precompute, so
// replicas of a shard agree byte-for-byte (TIDs, scores, ranks) — that is
// what makes any-replica routing and first-answer-wins hedging sound.
//
// Build & run:  ./build/examples/replicated_shards
// (finds the shard_server binary next to itself; override with argv[1])

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "biozon/domain.h"
#include "biozon/fig3.h"
#include "core/builder.h"
#include "core/pruner.h"
#include "engine/engine.h"
#include "graph/data_graph.h"
#include "graph/schema_graph.h"
#include "net/frame_conn.h"
#include "replica/health.h"
#include "replica/replica_set.h"
#include "shard/scatter_gather.h"
#include "shard/sharded_store.h"

namespace {

using namespace tsb;

constexpr size_t kShards = 2;
constexpr size_t kReplicas = 2;

/// Mirror of the spawned server pids for the abort path: TSB_CHECK exits
/// via std::abort (atexit handlers do not run), so a SIGABRT handler is
/// the only hook that keeps a failed run from leaking daemons.
volatile pid_t g_server_pids[kShards * kReplicas] = {0};

void KillServersOnAbort(int) {
  for (size_t i = 0; i < kShards * kReplicas; ++i) {
    const pid_t pid = g_server_pids[i];
    if (pid > 0) ::kill(pid, SIGKILL);  // Async-signal-safe.
  }
  ::signal(SIGABRT, SIG_DFL);
  ::raise(SIGABRT);
}

/// The shard_server binary lives in <exe_dir>/../tools/.
std::string FindServerBinary(const char* argv0_override) {
  if (argv0_override != nullptr) return argv0_override;
  char exe[4096];
  const ssize_t n = ::readlink("/proc/self/exe", exe, sizeof(exe) - 1);
  TSB_CHECK(n > 0) << "cannot resolve /proc/self/exe";
  exe[n] = '\0';
  std::string dir(exe);
  dir.resize(dir.find_last_of('/'));
  return dir + "/../tools/shard_server";
}

pid_t SpawnServer(const std::string& binary, size_t shard, size_t replica,
                  const std::string& uds) {
  const pid_t pid = ::fork();
  TSB_CHECK(pid >= 0) << "fork failed";
  if (pid == 0) {
    const std::string shard_flag = "--shard=" + std::to_string(shard);
    const std::string n_flag = "--num-shards=" + std::to_string(kShards);
    const std::string r_flag = "--replica-id=" + std::to_string(replica);
    const std::string uds_flag = "--uds=" + uds;
    ::execl(binary.c_str(), binary.c_str(), shard_flag.c_str(),
            n_flag.c_str(), r_flag.c_str(), uds_flag.c_str(),
            (char*)nullptr);
    std::perror(("exec " + binary).c_str());
    ::_exit(127);
  }
  g_server_pids[shard * kReplicas + replica] = pid;
  return pid;
}

bool WaitForServer(const std::string& uds, double timeout_seconds) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_seconds);
  while (std::chrono::steady_clock::now() < deadline) {
    auto conn = net::FrameConn::ConnectUnix(uds, net::DeadlineAfter(0.25));
    if (conn.ok()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  // 1. The frontend's own world: database, reference engine, shard set.
  storage::Catalog db;
  biozon::BiozonSchema ids = biozon::BuildFigure3Database(&db);
  graph::DataGraphView view(db);
  graph::SchemaGraph schema(db);

  core::TopologyBuilder builder(&db, &schema, &view);
  core::BuildConfig build;
  build.max_path_length = 3;
  core::TopologyStore reference;
  TSB_CHECK(builder.BuildAllPairs(build, &reference).ok());
  core::PruneConfig prune;
  prune.frequency_threshold = 0;
  for (const auto& [key, pair] : reference.pairs()) {
    TSB_CHECK(core::PruneFrequentTopologies(&db, &reference, key.first,
                                            key.second, prune)
                  .ok());
  }
  engine::Engine single(&db, &reference, &schema, &view,
                        core::ScoreModel(
                            &reference.catalog(),
                            biozon::MakeBiozonDomainKnowledge(ids)));

  auto sharded = std::make_shared<shard::ShardedTopologyStore>(kShards);
  core::BuildConfig sharded_build = build;
  sharded_build.table_namespace = "rx.";
  TSB_CHECK(sharded->Build(&builder, sharded_build).ok());
  for (size_t i = 0; i < kShards; ++i) {
    auto snapshot = sharded->Snapshot(i);
    for (const auto& [key, pair] : snapshot->pairs()) {
      TSB_CHECK(core::PruneFrequentTopologies(&db, snapshot.get(),
                                              key.first, key.second, prune)
                    .ok());
    }
  }
  shard::ScatterGatherExecutor executor(
      &db, sharded, &schema, &view, biozon::MakeBiozonDomainKnowledge(ids));

  // 2. The process grid: R replicas of each of the N shards, every one a
  //    real daemon on its own socket, stamping "r<id>:e<epoch>" into
  //    every response.
  ::signal(SIGABRT, KillServersOnAbort);
  const std::string binary = FindServerBinary(argc > 1 ? argv[1] : nullptr);
  std::printf("spawning a %zu-shard x %zu-replica server grid (%s)\n",
              kShards, kReplicas, binary.c_str());
  std::vector<std::string> uds_paths(kShards * kReplicas);
  std::vector<pid_t> pids(kShards * kReplicas, -1);
  for (size_t s = 0; s < kShards; ++s) {
    for (size_t r = 0; r < kReplicas; ++r) {
      const size_t i = s * kReplicas + r;
      uds_paths[i] = "/tmp/tsb_repl_" + std::to_string(::getpid()) + "_s" +
                     std::to_string(s) + "r" + std::to_string(r) + ".sock";
      pids[i] = SpawnServer(binary, s, r, uds_paths[i]);
    }
  }
  for (size_t i = 0; i < uds_paths.size(); ++i) {
    TSB_CHECK(WaitForServer(uds_paths[i], 30.0))
        << "server " << i << " never came up";
    std::printf("  shard %zu replica %zu ready on unix:%s\n",
                i / kReplicas, i % kReplicas, uds_paths[i].c_str());
  }
  auto kill_all = [&pids]() {
    for (pid_t pid : pids) {
      if (pid > 0) ::kill(pid, SIGTERM);
    }
    for (pid_t pid : pids) {
      if (pid > 0) ::waitpid(pid, nullptr, 0);
    }
  };

  std::vector<std::vector<std::unique_ptr<replica::ReplicaChannel>>>
      channels(kShards);
  for (size_t s = 0; s < kShards; ++s) {
    for (size_t r = 0; r < kReplicas; ++r) {
      net::EndpointClientConfig client_config;
      client_config.backoff_initial_seconds = 0.002;
      client_config.backoff_max_seconds = 0.05;
      channels[s].push_back(std::make_unique<replica::SocketReplicaChannel>(
          net::ShardEndpoint::Unix(uds_paths[s * kReplicas + r]),
          client_config));
    }
  }
  replica::ReplicaSetConfig transport_config;
  transport_config.health.failures_to_eject = 3;
  transport_config.health.probe_interval_seconds = 0.05;
  replica::ReplicaSetTransport transport(std::move(channels),
                                         transport_config,
                                         executor.transport_metrics());
  executor.set_transport(&transport);

  engine::TopologyQuery query;
  query.entity_set1 = "Protein";
  query.entity_set2 = "DNA";
  query.scheme = core::RankScheme::kFreq;
  query.k = 10;

  // 3. Nine-method identity through the replicated grid.
  const std::vector<engine::MethodKind> methods = {
      engine::MethodKind::kSql,         engine::MethodKind::kFullTop,
      engine::MethodKind::kFastTop,     engine::MethodKind::kFullTopK,
      engine::MethodKind::kFastTopK,    engine::MethodKind::kFullTopKEt,
      engine::MethodKind::kFastTopKEt,  engine::MethodKind::kFullTopKOpt,
      engine::MethodKind::kFastTopKOpt,
  };
  std::printf("\nnine-method identity, single-store vs replicated grid:\n");
  for (engine::MethodKind method : methods) {
    auto direct = single.Execute(query, method);
    auto replicated = executor.Execute(query, method);
    TSB_CHECK(direct.ok() && replicated.ok())
        << engine::MethodKindToString(method);
    const bool identical = replicated->entries == direct->entries;
    std::printf("  %-14s %2zu entries  %s\n",
                engine::MethodKindToString(method),
                replicated->entries.size(),
                identical ? "identical" : "<< MISMATCH");
    TSB_CHECK(identical) << "replicated ranking diverged for "
                         << engine::MethodKindToString(method);
    TSB_CHECK(!replicated->partial);
  }
  auto clean = executor.Execute(query, engine::MethodKind::kFullTop);
  TSB_CHECK(clean.ok());

  // 4. SIGKILL one replica of every shard — the one the router currently
  //    favors (lowest RTT EWMA: the same signal PickReplica routes by),
  //    so the next sub-query walks into the dead socket and must fail
  //    over. With R=1 (see cross_process_shards) this kill degrades
  //    answers to partial=true; with a replica set the sibling absorbs
  //    the traffic and every answer stays full and byte-identical, while
  //    the dead replica walks the health ladder suspect → ejected.
  std::vector<size_t> victims(kShards, 0);
  for (size_t s = 0; s < kShards; ++s) {
    for (size_t r = 1; r < kReplicas; ++r) {
      if (transport.replica_metrics().RttEwma(s, r) <
          transport.replica_metrics().RttEwma(s, victims[s])) {
        victims[s] = r;
      }
    }
  }
  std::printf("\nSIGKILL the favored replica of every shard...\n");
  for (size_t s = 0; s < kShards; ++s) {
    const size_t i = s * kReplicas + victims[s];
    std::printf("  shard %zu: killing replica %zu (pid %d)\n", s,
                victims[s], pids[i]);
    ::kill(pids[i], SIGKILL);
    ::waitpid(pids[i], nullptr, 0);
    g_server_pids[i] = 0;
    pids[i] = -1;
  }
  size_t full = 0;
  for (int q = 0; q < 40; ++q) {
    auto result = executor.Execute(query, engine::MethodKind::kFullTop);
    TSB_CHECK(result.ok()) << "query failed instead of failing over";
    TSB_CHECK(!result->partial)
        << "replica failover leaked a partial answer";
    TSB_CHECK(result->entries == clean->entries);
    ++full;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  std::printf("  %zu/40 queries answered FULL and byte-identical through "
              "the kill\n",
              full);
  for (size_t s = 0; s < kShards; ++s) {
    for (size_t r = 0; r < kReplicas; ++r) {
      std::printf("  shard %zu replica %zu: %s\n", s, r,
                  replica::ReplicaHealthToString(transport.health().state(s, r)));
    }
  }

  // 5. Restart the killed replicas on their original sockets: live
  //    traffic probes them back in — reinstatement needs no operator.
  std::printf("\nrestarting the killed replicas...\n");
  for (size_t s = 0; s < kShards; ++s) {
    const size_t i = s * kReplicas + victims[s];
    pids[i] = SpawnServer(binary, s, victims[s], uds_paths[i]);
    TSB_CHECK(WaitForServer(uds_paths[i], 30.0));
  }
  bool healed = false;
  for (int q = 0; q < 400 && !healed; ++q) {
    auto result = executor.Execute(query, engine::MethodKind::kFullTop);
    TSB_CHECK(result.ok() && !result->partial);
    TSB_CHECK(result->entries == clean->entries);
    healed = true;
    for (size_t s = 0; s < kShards; ++s) {
      // Only shards that actually route traffic re-probe; a shard whose
      // sub-queries never cross the transport stays wherever it was.
      if (transport.replica_metrics()
              .Snapshot()
              .shards[s]
              .replicas[victims[s]]
              .attempts == 0) {
        continue;
      }
      if (transport.health().state(s, victims[s]) !=
          replica::ReplicaHealth::kHealthy) {
        healed = false;
      }
    }
    if (!healed) std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  TSB_CHECK(healed) << "killed replicas never probed back in";
  std::printf("  probes reinstated the restarted replicas (health: all "
              "routed replicas healthy)\n");

  std::printf("\nper-replica telemetry:\n%s",
              transport.replica_metrics().Snapshot().ToString().c_str());
  executor.set_transport(nullptr);

  kill_all();
  for (const std::string& path : uds_paths) ::unlink(path.c_str());
  std::printf("\nOK\n");
  return 0;
}
