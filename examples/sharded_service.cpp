// Sharded topology store quickstart: partition the precomputed pair
// topologies across 4 TopologyStore shards by entity-pair hash, serve
// scatter-gather ranked queries through TopologyService, and roll all
// shards to a new epoch behind live traffic.
//
// What to look for in the output:
//   - per-shard slice sizes (the hash partition of the AllTops rows),
//   - identical ranked results from the single store and the shard set,
//   - the scatter plan line (routed shards, designated shard, k-way merge),
//   - a rebuild that swaps every shard with queries still flowing.
//
// Build & run:  ./build/examples/sharded_service

#include <cstdio>
#include <memory>
#include <vector>

#include "biozon/domain.h"
#include "biozon/fig3.h"
#include "core/builder.h"
#include "core/pruner.h"
#include "engine/engine.h"
#include "graph/data_graph.h"
#include "graph/schema_graph.h"
#include "service/service.h"
#include "shard/scatter_gather.h"
#include "shard/sharded_store.h"

int main() {
  using namespace tsb;

  // 1. Database + an unsharded reference store (for the side-by-side).
  storage::Catalog db;
  biozon::BiozonSchema ids = biozon::BuildFigure3Database(&db);
  graph::DataGraphView view(db);
  graph::SchemaGraph schema(db);

  core::TopologyBuilder builder(&db, &schema, &view);
  core::BuildConfig build;
  build.max_path_length = 3;
  core::TopologyStore reference;
  TSB_CHECK(builder.BuildAllPairs(build, &reference).ok());
  core::PruneConfig prune;
  prune.frequency_threshold = 0;
  for (const auto& [key, pair] : reference.pairs()) {
    TSB_CHECK(core::PruneFrequentTopologies(&db, &reference, key.first,
                                            key.second, prune)
                  .ok());
  }
  engine::Engine single(&db, &reference, &schema, &view,
                        core::ScoreModel(
                            &reference.catalog(),
                            biozon::MakeBiozonDomainKnowledge(ids)));

  // 2. The sharded store: 4 shards, each a complete TopologyStore whose
  //    AllTops slice holds the entity pairs hashing to it. Catalogs, freq
  //    maps, and exception tables are replicated, so each shard ranks its
  //    slice with *global* scores.
  const size_t kShards = 4;
  auto sharded = std::make_shared<shard::ShardedTopologyStore>(kShards);
  core::BuildConfig sharded_build = build;
  sharded_build.table_namespace = "e0.";  // -> tables "e0.s<i>.AllTops_..."
  TSB_CHECK(sharded->Build(&builder, sharded_build).ok());
  for (size_t i = 0; i < kShards; ++i) {
    auto snapshot = sharded->Snapshot(i);
    for (const auto& [key, pair] : snapshot->pairs()) {
      TSB_CHECK(core::PruneFrequentTopologies(&db, snapshot.get(), key.first,
                                              key.second, prune)
                    .ok());
    }
  }
  {
    auto pd = sharded->Snapshot(0)->FindPair(ids.protein, ids.dna);
    std::printf("Protein_DNA slice sizes:");
    for (size_t i = 0; i < kShards; ++i) {
      auto snapshot = sharded->Snapshot(i);
      const core::PairTopologyData* pair =
          snapshot->FindPair(ids.protein, ids.dna);
      std::printf(" s%zu=%zu", i,
                  db.GetTable(pair->alltops_table)->num_rows());
    }
    std::printf(" rows (catalog replicated: %zu topologies per shard)\n\n",
                sharded->Snapshot(0)->catalog().size());
    (void)pd;
  }

  // 3. Scatter-gather executor + service frontend.
  shard::ScatterGatherExecutor executor(
      &db, sharded, &schema, &view, biozon::MakeBiozonDomainKnowledge(ids));
  service::ServiceConfig svc_config;
  svc_config.num_threads = 4;
  service::TopologyService service(&executor, &db, svc_config);

  engine::TopologyQuery query;
  query.entity_set1 = "Protein";
  query.pred1 = storage::MakeContainsKeyword(db.GetTable("Protein")->schema(),
                                             "DESC", "enzyme");
  query.entity_set2 = "DNA";
  query.pred2 = storage::MakeEquals(db.GetTable("DNA")->schema(), "TYPE",
                                    storage::Value("mRNA"));
  query.scheme = core::RankScheme::kDomain;
  query.k = 5;

  auto expected = single.Execute(query, engine::MethodKind::kFastTopKEt);
  auto response = service.Execute(query, engine::MethodKind::kFastTopKEt);
  TSB_CHECK(expected.ok() && response.result.ok());
  std::printf("top-%zu 'enzyme' proteins vs mRNA DNAs (Domain scheme):\n",
              query.k);
  for (size_t i = 0; i < response.result->entries.size(); ++i) {
    const engine::ResultEntry& entry = response.result->entries[i];
    std::printf("  #%zu TID=%lld score=%.1f%s\n", i + 1,
                static_cast<long long>(entry.tid), entry.score,
                entry == expected->entries[i] ? "" : "  << MISMATCH");
  }
  TSB_CHECK(expected->entries == response.result->entries)
      << "sharded ranking diverged from the single store";
  std::printf("plan: %s\n\n", response.result->stats.plan.c_str());

  // 4. Roll every shard to a fresh epoch behind the service. The rebuild
  //    stages "e1.s<i>." tables on the worker pool, prunes and warm-indexes
  //    them off the critical path, then swaps shard handles one by one.
  service::RebuildOptions rebuild;
  rebuild.build = build;
  rebuild.prune_threshold = 0;
  auto stats = service.Rebuild(rebuild);
  TSB_CHECK(stats.ok()) << stats.status();
  std::printf(
      "rebuild: %zu shards swapped to epoch %llu (%zu pairs, build %.0fms, "
      "prune %.0fms, warm-index %.0fms)\n",
      stats->shards_swapped, static_cast<unsigned long long>(stats->epoch),
      stats->pairs_built, 1e3 * stats->build_seconds,
      1e3 * stats->prune_seconds, 1e3 * stats->index_seconds);

  auto after = service.Execute(query, engine::MethodKind::kFastTopKEt);
  TSB_CHECK(after.result.ok());
  TSB_CHECK(after.result->entries == expected->entries);
  std::printf(
      "post-swap query served %s with identical ranking (epoch stamp %s)\n",
      after.from_cache ? "warm" : "cold",
      executor.store().EpochStamp().c_str());

  service.Shutdown();
  std::printf("\nOK\n");
  return 0;
}
