// Cross-process sharding end to end: spawn N shard-server processes
// (tools/shard_server) listening on Unix-domain sockets, point a
// connection-pooled net::SocketTransport at them, and run the full
// nine-method byte-identity check through real process boundaries — then
// kill one server to show graceful degradation (partial=true) and
// restart it to show reconnect recovery.
//
// Each server process builds its own replica of the Figure-3 database and
// the complete sharded precompute (deterministic, so TIDs and replicated
// global frequency maps agree across processes), then serves only its
// shard's slice. The frontend keeps its own shard set too: the designated
// shard of every query runs inline (it alone carries the pruned online
// checks), and only the non-designated sub-queries cross the wire.
//
// What to look for in the output:
//   - nine methods, each byte-identical across direct / loopback / socket,
//   - the per-shard transport telemetry (bytes, RTT, reconnects),
//   - SIGKILL of one server answering with a ranked partial result,
//   - the restarted server healing the pool (reconnects > 0).
//
// Build & run:  ./build/examples/cross_process_shards
// (finds the shard_server binary next to itself; override with argv[1])

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "biozon/domain.h"
#include "biozon/fig3.h"
#include "core/builder.h"
#include "core/pruner.h"
#include "engine/engine.h"
#include "graph/data_graph.h"
#include "graph/schema_graph.h"
#include "net/frame_conn.h"
#include "net/socket_transport.h"
#include "shard/scatter_gather.h"
#include "shard/sharded_store.h"

namespace {

using namespace tsb;

constexpr size_t kShards = 4;

/// Mirror of the spawned server pids for the abort path: TSB_CHECK exits
/// via std::abort (atexit handlers do not run), so a SIGABRT handler is
/// the only hook that keeps a failed run from leaking four daemons.
volatile pid_t g_server_pids[kShards] = {0};

void KillServersOnAbort(int) {
  for (size_t i = 0; i < kShards; ++i) {
    const pid_t pid = g_server_pids[i];
    if (pid > 0) ::kill(pid, SIGKILL);  // Async-signal-safe.
  }
  ::signal(SIGABRT, SIG_DFL);
  ::raise(SIGABRT);
}

/// The shard_server binary lives in <exe_dir>/../tools/.
std::string FindServerBinary(const char* argv0_override) {
  if (argv0_override != nullptr) return argv0_override;
  char exe[4096];
  const ssize_t n = ::readlink("/proc/self/exe", exe, sizeof(exe) - 1);
  TSB_CHECK(n > 0) << "cannot resolve /proc/self/exe";
  exe[n] = '\0';
  std::string dir(exe);
  dir.resize(dir.find_last_of('/'));
  return dir + "/../tools/shard_server";
}

pid_t SpawnServer(const std::string& binary, size_t shard,
                  const std::string& uds) {
  const pid_t pid = ::fork();
  TSB_CHECK(pid >= 0) << "fork failed";
  if (pid == 0) {
    const std::string shard_flag = "--shard=" + std::to_string(shard);
    const std::string n_flag = "--num-shards=" + std::to_string(kShards);
    const std::string uds_flag = "--uds=" + uds;
    ::execl(binary.c_str(), binary.c_str(), shard_flag.c_str(),
            n_flag.c_str(), uds_flag.c_str(), (char*)nullptr);
    std::perror(("exec " + binary).c_str());
    ::_exit(127);
  }
  g_server_pids[shard] = pid;
  return pid;
}

/// Polls until the server accepts connections (it builds its precompute
/// first) or the timeout passes.
bool WaitForServer(const std::string& uds, double timeout_seconds) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_seconds);
  while (std::chrono::steady_clock::now() < deadline) {
    auto conn = net::FrameConn::ConnectUnix(uds, net::DeadlineAfter(0.25));
    if (conn.ok()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  // 1. The frontend's own world: database, reference engine, shard set.
  storage::Catalog db;
  biozon::BiozonSchema ids = biozon::BuildFigure3Database(&db);
  graph::DataGraphView view(db);
  graph::SchemaGraph schema(db);

  core::TopologyBuilder builder(&db, &schema, &view);
  core::BuildConfig build;
  build.max_path_length = 3;
  core::TopologyStore reference;
  TSB_CHECK(builder.BuildAllPairs(build, &reference).ok());
  core::PruneConfig prune;
  prune.frequency_threshold = 0;
  for (const auto& [key, pair] : reference.pairs()) {
    TSB_CHECK(core::PruneFrequentTopologies(&db, &reference, key.first,
                                            key.second, prune)
                  .ok());
  }
  engine::Engine single(&db, &reference, &schema, &view,
                        core::ScoreModel(
                            &reference.catalog(),
                            biozon::MakeBiozonDomainKnowledge(ids)));

  auto sharded = std::make_shared<shard::ShardedTopologyStore>(kShards);
  core::BuildConfig sharded_build = build;
  sharded_build.table_namespace = "x.";
  TSB_CHECK(sharded->Build(&builder, sharded_build).ok());
  for (size_t i = 0; i < kShards; ++i) {
    auto snapshot = sharded->Snapshot(i);
    for (const auto& [key, pair] : snapshot->pairs()) {
      TSB_CHECK(core::PruneFrequentTopologies(&db, snapshot.get(),
                                              key.first, key.second, prune)
                    .ok());
    }
  }
  shard::ScatterGatherExecutor executor(
      &db, sharded, &schema, &view, biozon::MakeBiozonDomainKnowledge(ids));

  // 2. Spawn one shard-server process per shard, each on its own UDS.
  ::signal(SIGABRT, KillServersOnAbort);  // No daemon leaks on TSB_CHECK.
  const std::string binary = FindServerBinary(argc > 1 ? argv[1] : nullptr);
  std::printf("spawning %zu shard servers (%s)\n", kShards, binary.c_str());
  std::vector<std::string> uds_paths;
  std::vector<pid_t> pids;
  std::vector<net::ShardEndpoint> endpoints;
  for (size_t i = 0; i < kShards; ++i) {
    uds_paths.push_back("/tmp/tsb_xps_" + std::to_string(::getpid()) + "_" +
                        std::to_string(i) + ".sock");
    pids.push_back(SpawnServer(binary, i, uds_paths.back()));
    endpoints.push_back(net::ShardEndpoint::Unix(uds_paths.back()));
  }
  for (size_t i = 0; i < kShards; ++i) {
    TSB_CHECK(WaitForServer(uds_paths[i], 30.0))
        << "shard server " << i << " never came up";
    std::printf("  shard %zu ready on unix:%s\n", i, uds_paths[i].c_str());
  }

  auto kill_all = [&pids]() {
    for (pid_t pid : pids) {
      if (pid > 0) ::kill(pid, SIGTERM);
    }
    for (pid_t pid : pids) {
      if (pid > 0) ::waitpid(pid, nullptr, 0);
    }
  };

  // 3. The nine-method byte-identity check, through real processes.
  net::SocketTransportConfig transport_config;
  transport_config.backoff_initial_seconds = 0.005;
  transport_config.backoff_max_seconds = 0.1;
  net::SocketTransport transport(endpoints, transport_config,
                                 executor.transport_metrics());

  engine::TopologyQuery query;
  query.entity_set1 = "Protein";
  query.pred1 = storage::MakeContainsKeyword(
      db.GetTable("Protein")->schema(), "DESC", "enzyme");
  query.entity_set2 = "DNA";
  query.scheme = core::RankScheme::kFreq;
  query.k = 10;

  const std::vector<engine::MethodKind> methods = {
      engine::MethodKind::kSql,         engine::MethodKind::kFullTop,
      engine::MethodKind::kFastTop,     engine::MethodKind::kFullTopK,
      engine::MethodKind::kFastTopK,    engine::MethodKind::kFullTopKEt,
      engine::MethodKind::kFastTopKEt,  engine::MethodKind::kFullTopKOpt,
      engine::MethodKind::kFastTopKOpt,
  };
  std::printf("\nnine-method identity, direct vs loopback vs socket:\n");
  for (engine::MethodKind method : methods) {
    auto direct = single.Execute(query, method);
    auto loopback = executor.Execute(query, method);
    executor.set_transport(&transport);
    auto socket = executor.Execute(query, method);
    executor.set_transport(nullptr);
    TSB_CHECK(direct.ok() && loopback.ok() && socket.ok())
        << engine::MethodKindToString(method);
    const bool identical = socket->entries == direct->entries &&
                           socket->entries == loopback->entries;
    std::printf("  %-14s %2zu entries  %s\n",
                engine::MethodKindToString(method), socket->entries.size(),
                identical ? "identical" : "<< MISMATCH");
    TSB_CHECK(identical) << "cross-process ranking diverged for "
                         << engine::MethodKindToString(method);
    TSB_CHECK(!socket->partial);
  }

  // 4. Kill one server: queries degrade to ranked partials, not errors.
  executor.set_transport(&transport);
  auto clean = executor.Execute(query, engine::MethodKind::kFullTop);
  TSB_CHECK(clean.ok());
  size_t victim = SIZE_MAX;
  for (size_t s = 0; s < kShards && victim == SIZE_MAX; ++s) {
    ::kill(pids[s], SIGKILL);
    ::waitpid(pids[s], nullptr, 0);
    pids[s] = -1;
    g_server_pids[s] = 0;
    auto degraded = executor.Execute(query, engine::MethodKind::kFullTop);
    TSB_CHECK(degraded.ok()) << "query failed instead of degrading";
    if (degraded->partial) {
      victim = s;
      std::printf(
          "\nSIGKILL shard %zu: query answered partial=true with %zu/%zu "
          "entries\n  plan: %s\n",
          s, degraded->entries.size(), clean->entries.size(),
          degraded->stats.plan.c_str());
    } else {
      // The killed server was the designated shard (served inline) or
      // unrouted; bring a replacement up and try the next one.
      pids[s] = SpawnServer(binary, s, uds_paths[s]);
      TSB_CHECK(WaitForServer(uds_paths[s], 30.0));
    }
  }
  TSB_CHECK(victim != SIZE_MAX);

  // 5. Restart it: the transport reconnects and full answers resume.
  pids[victim] = SpawnServer(binary, victim, uds_paths[victim]);
  TSB_CHECK(WaitForServer(uds_paths[victim], 30.0));
  Result<engine::QueryResult> healed =
      executor.Execute(query, engine::MethodKind::kFullTop);
  for (int attempt = 0;
       attempt < 200 && healed.ok() && healed->partial; ++attempt) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    healed = executor.Execute(query, engine::MethodKind::kFullTop);
  }
  TSB_CHECK(healed.ok() && !healed->partial) << "shard never recovered";
  TSB_CHECK(healed->entries == clean->entries);
  std::printf("restarted shard %zu: full ranking restored\n", victim);
  executor.set_transport(nullptr);

  std::printf("\ntransport telemetry:\n%s",
              executor.GetTransportMetrics().ToString().c_str());

  kill_all();
  for (const std::string& path : uds_paths) ::unlink(path.c_str());
  std::printf("\nOK\n");
  return 0;
}
