// A command-line topology-search client over a synthetic Biozon: the
// "interactive exploration" interface the paper envisions (researchers
// asking how entity types are related, then drilling into instances).
//
// Usage:
//   ./build/examples/topology_explorer \
//       [--scale=0.5] [--set1=Protein] [--kw1=kinase] \
//       [--set2=DNA] [--kw2=cellular] [--scheme=domain] [--k=5] \
//       [--method=fast-top-k-opt] [--instances=2]
//
// Any registered entity set works for --set1/--set2 (Protein, DNA, Unigene,
// Interaction, Family, Pathway, Structure); --kw* are keyword constraints
// on the DESC column (empty = unconstrained).

#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "biozon/domain.h"
#include "biozon/generator.h"
#include "core/builder.h"
#include "core/instance_retrieval.h"
#include "core/pruner.h"
#include "engine/engine.h"
#include "graph/data_graph.h"
#include "graph/schema_graph.h"

namespace {

std::string FlagString(int argc, char** argv, const std::string& name,
                       const std::string& def) {
  std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
  }
  return def;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tsb;

  const double scale = std::stod(FlagString(argc, argv, "scale", "0.5"));
  const std::string set1 = FlagString(argc, argv, "set1", "Protein");
  const std::string set2 = FlagString(argc, argv, "set2", "DNA");
  const std::string kw1 = FlagString(argc, argv, "kw1", "kinase");
  const std::string kw2 = FlagString(argc, argv, "kw2", "");
  const std::string scheme_name = FlagString(argc, argv, "scheme", "domain");
  const size_t k = std::stoul(FlagString(argc, argv, "k", "5"));
  const std::string method_name =
      FlagString(argc, argv, "method", "fast-top-k-opt");
  const size_t max_instances =
      std::stoul(FlagString(argc, argv, "instances", "2"));

  const std::map<std::string, core::RankScheme> schemes = {
      {"freq", core::RankScheme::kFreq},
      {"rare", core::RankScheme::kRare},
      {"domain", core::RankScheme::kDomain}};
  const std::map<std::string, engine::MethodKind> methods = {
      {"sql", engine::MethodKind::kSql},
      {"full-top", engine::MethodKind::kFullTop},
      {"fast-top", engine::MethodKind::kFastTop},
      {"full-top-k", engine::MethodKind::kFullTopK},
      {"fast-top-k", engine::MethodKind::kFastTopK},
      {"full-top-k-et", engine::MethodKind::kFullTopKEt},
      {"fast-top-k-et", engine::MethodKind::kFastTopKEt},
      {"full-top-k-opt", engine::MethodKind::kFullTopKOpt},
      {"fast-top-k-opt", engine::MethodKind::kFastTopKOpt}};
  if (schemes.count(scheme_name) == 0 || methods.count(method_name) == 0) {
    std::fprintf(stderr, "unknown --scheme or --method\n");
    return 1;
  }

  storage::Catalog db;
  biozon::GeneratorConfig gen;
  gen.scale = scale;
  biozon::BiozonSchema ids = biozon::GenerateBiozon(gen, &db);
  graph::DataGraphView view(db);
  graph::SchemaGraph schema(db);
  const storage::EntitySetDef* es1 = db.FindEntitySet(set1);
  const storage::EntitySetDef* es2 = db.FindEntitySet(set2);
  if (es1 == nullptr || es2 == nullptr) {
    std::fprintf(stderr, "unknown entity set '%s' or '%s'\n", set1.c_str(),
                 set2.c_str());
    return 1;
  }

  std::printf("building 3-topologies for (%s, %s)...\n", set1.c_str(),
              set2.c_str());
  core::TopologyStore store;
  core::TopologyBuilder builder(&db, &schema, &view);
  core::BuildConfig build;
  build.max_path_length = 3;
  build.max_class_representatives = 8;
  build.max_union_combinations = 512;
  TSB_CHECK(builder.BuildPair(es1->id, es2->id, build, &store).ok());
  const core::PairTopologyData& pair = *store.FindPair(es1->id, es2->id);
  core::PruneConfig prune;
  prune.frequency_threshold = pair.num_related_pairs / 50;
  TSB_CHECK(
      core::PruneFrequentTopologies(&db, &store, es1->id, es2->id, prune)
          .ok());

  engine::Engine engine(&db, &store, &schema, &view,
                        core::ScoreModel(
                            &store.catalog(),
                            biozon::MakeBiozonDomainKnowledge(ids)));
  engine.PrepareIndexes(set1, set2);

  engine::TopologyQuery q;
  q.entity_set1 = set1;
  if (!kw1.empty()) {
    q.pred1 = storage::MakeContainsKeyword(db.GetTable(es1->table_name)->schema(),
                                           "DESC", kw1);
  }
  q.entity_set2 = set2;
  if (!kw2.empty()) {
    q.pred2 = storage::MakeContainsKeyword(db.GetTable(es2->table_name)->schema(),
                                           "DESC", kw2);
  }
  q.scheme = schemes.at(scheme_name);
  q.k = k;

  auto result = engine.Execute(q, methods.at(method_name));
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("\nQ = { (%s%s%s), (%s%s%s) }  scheme=%s method=%s\n",
              set1.c_str(), kw1.empty() ? "" : ", desc.ct:",
              kw1.c_str(), set2.c_str(), kw2.empty() ? "" : ", desc.ct:",
              kw2.c_str(), scheme_name.c_str(), method_name.c_str());
  std::printf("%zu topology results in %.1f ms (plan: %s)\n\n",
              result->entries.size(), result->stats.seconds * 1e3,
              result->stats.plan.c_str());

  for (const auto& entry : result->entries) {
    const core::TopologyInfo& info = store.catalog().Get(entry.tid);
    std::printf("T%-5lld score=%-8.2f freq=%-7zu %s\n",
                static_cast<long long>(entry.tid), entry.score,
                pair.freq.count(entry.tid) ? pair.freq.at(entry.tid) : 0,
                store.catalog().Describe(entry.tid, schema).c_str());
    if (max_instances > 0) {
      core::RetrievalLimits limits;
      limits.max_pairs = max_instances;
      limits.max_instances_per_pair = 1;
      // Query-scoped retrieval: only pairs satisfying the predicates.
      auto instances_or = engine.Instances(q, entry.tid, limits);
      if (!instances_or.ok()) continue;
      for (const auto& instance : *instances_or) {
        std::printf("      instance (%lld, %lld):",
                    static_cast<long long>(instance.a),
                    static_cast<long long>(instance.b));
        for (size_t n = 0; n < instance.node_ids.size(); ++n) {
          std::printf(" %s=%lld",
                      schema.entity_name(instance.subgraph.node_label(
                          static_cast<graph::LabeledGraph::NodeId>(n)))
                          .c_str(),
                      static_cast<long long>(instance.node_ids[n]));
        }
        std::printf("\n");
      }
    }
  }
  return 0;
}
