// Explores the weak-relationship problem of Section 6.2.3 / Appendix B:
// with l = 4, paths like P-D-P-U-D connect mostly unrelated endpoints,
// inflate the path sets, and dilute meaningful topologies. This example
// quantifies the dilution on a synthetic database and shows how the Domain
// ranking (which encodes Table 4's weak motifs) demotes the affected
// topologies — the paper's proposed use of domain knowledge.
//
// Build & run:  ./build/examples/weak_relationships [--scale=0.25]

#include <cstdio>
#include <cstring>
#include <string>

#include "biozon/domain.h"
#include "biozon/generator.h"
#include "core/builder.h"
#include "core/pruner.h"
#include "core/scorer.h"
#include "core/weak_filter.h"
#include "graph/data_graph.h"
#include "graph/isomorphism.h"
#include "graph/path_enum.h"
#include "graph/schema_graph.h"

int main(int argc, char** argv) {
  using namespace tsb;

  double scale = 0.25;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--scale=", 8) == 0) {
      scale = std::stod(argv[i] + 8);
    }
  }

  storage::Catalog db;
  biozon::GeneratorConfig gen;
  gen.scale = scale;
  biozon::BiozonSchema ids = biozon::GenerateBiozon(gen, &db);
  graph::DataGraphView view(db);
  graph::SchemaGraph schema(db);

  // 1. Weak relationships have enormous instance counts (the paper's
  //    P-D-P-U-D has ~600M on Biozon).
  std::printf("schema paths P..D and their instance counts (l <= 4):\n");
  auto paths = schema.EnumeratePaths(ids.protein, ids.dna, 4);
  size_t weak_instances = 0;
  size_t direct_instances = 0;
  for (const auto& p : paths) {
    size_t count = graph::CountSchemaPathInstances(view, p);
    std::string rendered = schema.PathToString(p);
    if (p.length() == 1) direct_instances = count;
    if (p.length() == 4 &&
        rendered.find("Encodes") != std::string::npos &&
        rendered.find("Uni_contains") != std::string::npos) {
      weak_instances += count;
    }
    if (p.length() <= 2 || count > 10000) {
      std::printf("  %-70s %zu\n", rendered.c_str(), count);
    }
  }
  std::printf("\nweak 4-step encode/unigene paths: %zu instances vs %zu "
              "direct encodes edges (dilution factor %.0fx)\n\n",
              weak_instances, direct_instances,
              direct_instances == 0
                  ? 0.0
                  : static_cast<double>(weak_instances) /
                        static_cast<double>(direct_instances));

  // 2. Build l=4 topologies and look at how weak motifs infest them.
  core::TopologyStore store;
  core::TopologyBuilder builder(&db, &schema, &view);
  core::BuildConfig build;
  build.max_path_length = 4;
  build.max_class_representatives = 6;
  build.max_union_combinations = 256;
  build.max_paths_per_source = 100000;
  TSB_CHECK(builder.BuildPair(ids.protein, ids.dna, build, &store).ok());
  const core::PairTopologyData& pair = *store.FindPair(ids.protein, ids.dna);
  std::printf("l=4 build: %zu topologies, truncation counters: pairs=%zu "
              "reps=%zu (the intrinsic complexity of Section 6.2.3)\n",
              pair.freq.size(), pair.truncated_pairs,
              pair.truncated_representatives);

  core::DomainKnowledge knowledge = biozon::MakeBiozonDomainKnowledge(ids);
  core::ScoreModel scores(&store.catalog(), knowledge);

  core::WeakFilterStats filter_stats =
      core::AnalyzeWeakTopologies(store.catalog(), pair, knowledge);
  std::printf("%zu of %zu observed topologies contain a weak motif "
              "(Table 4), covering %zu of %zu related pairs\n\n",
              filter_stats.weak_topologies, filter_stats.total_topologies,
              filter_stats.weak_pairs, filter_stats.total_pairs);

  // 3. Domain ranking pushes weak-motif topologies down.
  auto ranked = scores.RankedTids(core::RankScheme::kDomain, pair);
  auto weak_fraction = [&](size_t from, size_t to) {
    size_t weak = 0;
    for (size_t r = from; r < to && r < ranked.size(); ++r) {
      const core::TopologyInfo& info = store.catalog().Get(ranked[r].first);
      for (const graph::LabeledGraph& motif : knowledge.weak_motifs) {
        if (graph::IsSubgraphIsomorphic(motif, info.graph)) {
          ++weak;
          break;
        }
      }
    }
    size_t span = std::min(to, ranked.size()) - std::min(from, ranked.size());
    return span == 0 ? 0.0 : static_cast<double>(weak) / span;
  };
  std::printf("weak-motif fraction among top-20 Domain-ranked: %.0f%%\n",
              100.0 * weak_fraction(0, 20));
  std::printf("weak-motif fraction among bottom-20: %.0f%%\n",
              100.0 * weak_fraction(ranked.size() - 20, ranked.size()));
  std::printf(
      "\nDomain knowledge (Appendix B) filters the dilution: weak motifs "
      "sink to the bottom of the ranking.\n");
  return 0;
}
