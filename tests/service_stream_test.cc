// The streaming, priority-aware service surface (PR 4's API redesign):
// Submit(WireRequest, StreamSink&) / SubmitStream frame delivery —
// completion order, correct request ids, exactly-once kStreamEnd, sinks
// outliving shutdown, mid-batch cancellation — plus per-class admission:
// interactive work drains before batch work, expired-deadline requests are
// shed with the distinct kDeadlineExceeded wire code, and the class
// metrics record it all.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "biozon/domain.h"
#include "biozon/fig3.h"
#include "core/builder.h"
#include "core/pruner.h"
#include "engine/engine.h"
#include "service/service.h"
#include "wire/message.h"

namespace tsb {
namespace {

using engine::MethodKind;
using wire::FrameKind;
using wire::WireErrorCode;

class StreamFig3Test : public ::testing::Test {
 protected:
  void SetUp() override {
    ids_ = biozon::BuildFigure3Database(&db_);
    view_ = std::make_unique<graph::DataGraphView>(db_);
    schema_ = std::make_unique<graph::SchemaGraph>(db_);
    core::TopologyBuilder builder(&db_, schema_.get(), view_.get());
    core::BuildConfig config;
    config.max_path_length = 3;
    ASSERT_TRUE(
        builder.BuildPair(ids_.protein, ids_.dna, config, &store_).ok());
    ASSERT_TRUE(
        builder.BuildPair(ids_.protein, ids_.unigene, config, &store_).ok());
    core::PruneConfig prune;
    prune.frequency_threshold = 0;
    ASSERT_TRUE(core::PruneFrequentTopologies(&db_, &store_, ids_.protein,
                                              ids_.dna, prune)
                    .ok());
    engine_ = std::make_unique<engine::Engine>(
        &db_, &store_, schema_.get(), view_.get(),
        core::ScoreModel(&store_.catalog(),
                         biozon::MakeBiozonDomainKnowledge(ids_)));
  }

  wire::WireRequest Request(uint64_t id, core::RankScheme scheme,
                            MethodKind method = MethodKind::kFullTop,
                            wire::Priority priority =
                                wire::Priority::kInteractive) const {
    wire::WireRequest request;
    request.id = id;
    request.priority = priority;
    request.query.entity_set1 = "Protein";
    request.query.entity_set2 = "DNA";
    request.query.scheme = scheme;
    request.method = method;
    return request;
  }

  service::ServiceConfig Config(size_t threads, bool cache = true) const {
    service::ServiceConfig config;
    config.num_threads = threads;
    config.enable_cache = cache;
    return config;
  }

  storage::Catalog db_;
  biozon::BiozonSchema ids_;
  std::unique_ptr<graph::DataGraphView> view_;
  std::unique_ptr<graph::SchemaGraph> schema_;
  core::TopologyStore store_;
  std::unique_ptr<engine::Engine> engine_;
};

TEST_F(StreamFig3Test, SingleSubmitDeliversExactlyOneTerminalFrame) {
  service::TopologyService svc(engine_.get(), &db_, Config(2));
  wire::CollectingSink sink;
  svc.Submit(Request(99, core::RankScheme::kFreq), sink);
  sink.WaitForFrames(1);

  auto frames = sink.Frames();
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].kind, FrameKind::kResponse);
  EXPECT_EQ(frames[0].stream_id, 0u);
  EXPECT_EQ(frames[0].response.request_id, 99u);
  ASSERT_TRUE(frames[0].response.error.ok())
      << frames[0].response.error.message;
  EXPECT_FALSE(frames[0].response.result.entries.empty());

  auto direct = engine_->Execute(Request(0, core::RankScheme::kFreq).query,
                                 MethodKind::kFullTop);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(frames[0].response.result.entries, direct->entries);
}

TEST_F(StreamFig3Test, StreamDeliversAllFramesThenExactlyOneEnd) {
  service::TopologyService svc(engine_.get(), &db_, Config(4));
  wire::CollectingSink sink;

  std::vector<wire::WireRequest> requests;
  const std::vector<core::RankScheme> schemes = {core::RankScheme::kFreq,
                                                 core::RankScheme::kRare,
                                                 core::RankScheme::kDomain};
  for (size_t i = 0; i < 9; ++i) {
    requests.push_back(Request(100 + i, schemes[i % 3],
                               i % 2 == 0 ? MethodKind::kFullTop
                                          : MethodKind::kFullTopK));
  }
  uint64_t stream_id = svc.SubmitStream(std::move(requests), sink);
  EXPECT_NE(stream_id, 0u);
  sink.WaitForEnd();

  auto frames = sink.Frames();
  ASSERT_EQ(frames.size(), 10u);  // 9 responses + 1 end.
  std::set<uint64_t> seen_ids;
  for (size_t i = 0; i < 9; ++i) {
    EXPECT_EQ(frames[i].kind, FrameKind::kResponse);
    EXPECT_EQ(frames[i].stream_id, stream_id);
    ASSERT_TRUE(frames[i].response.error.ok());
    seen_ids.insert(frames[i].response.request_id);
  }
  // Completion order may differ from submission order, but every request
  // id arrives exactly once.
  EXPECT_EQ(seen_ids.size(), 9u);
  EXPECT_EQ(*seen_ids.begin(), 100u);
  EXPECT_EQ(*seen_ids.rbegin(), 108u);
  // The end frame is last and unique.
  EXPECT_EQ(frames[9].kind, FrameKind::kStreamEnd);
  EXPECT_EQ(frames[9].stream_id, stream_id);
  EXPECT_EQ(sink.EndCount(), 1u);
}

TEST_F(StreamFig3Test, EmptyStreamDeliversJustTheEndFrame) {
  service::TopologyService svc(engine_.get(), &db_, Config(2));
  wire::CollectingSink sink;
  uint64_t stream_id = svc.SubmitStream({}, sink);
  auto frames = sink.Frames();  // Delivered inline, no wait needed.
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].kind, FrameKind::kStreamEnd);
  EXPECT_EQ(frames[0].stream_id, stream_id);
}

TEST_F(StreamFig3Test, SinkOutlivesShutdownAndGetsEveryFrame) {
  auto sink = std::make_unique<wire::CollectingSink>();
  {
    service::TopologyService svc(engine_.get(), &db_, Config(1, false));
    std::vector<wire::WireRequest> requests;
    for (size_t i = 0; i < 6; ++i) {
      requests.push_back(Request(i, core::RankScheme::kFreq));
    }
    svc.SubmitStream(std::move(requests), *sink);
    svc.Shutdown();  // Drains the queue; every frame must be delivered.
  }
  // The service is gone; the sink holds the complete stream.
  auto frames = sink->Frames();
  ASSERT_EQ(frames.size(), 7u);
  EXPECT_EQ(sink->EndCount(), 1u);
  EXPECT_EQ(frames.back().kind, FrameKind::kStreamEnd);
  for (size_t i = 0; i < 6; ++i) {
    EXPECT_TRUE(frames[i].response.error.ok());
  }
}

TEST_F(StreamFig3Test, SubmitAfterShutdownDeliversShuttingDownFrame) {
  service::TopologyService svc(engine_.get(), &db_, Config(1));
  svc.Shutdown();
  wire::CollectingSink sink;
  svc.Submit(Request(5, core::RankScheme::kFreq), sink);
  auto frames = sink.Frames();
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].response.error.code, WireErrorCode::kShuttingDown);

  // Streams still end exactly once even when every slot is bounced.
  wire::CollectingSink stream_sink;
  svc.SubmitStream({Request(1, core::RankScheme::kFreq),
                    Request(2, core::RankScheme::kRare)},
                   stream_sink);
  auto stream_frames = stream_sink.Frames();
  ASSERT_EQ(stream_frames.size(), 3u);
  EXPECT_EQ(stream_frames[2].kind, FrameKind::kStreamEnd);
  EXPECT_EQ(stream_sink.EndCount(), 1u);
}

/// Pins the delivering worker inside OnFrame until released — the
/// deterministic way to keep later submissions queued.
class BlockingSink : public wire::StreamSink {
 public:
  void OnFrame(const wire::WireFrame&) override {
    entered_.store(true, std::memory_order_release);
    gate_.get_future().wait();
  }
  /// Spins until the worker is parked inside OnFrame.
  void AwaitEntered() const {
    while (!entered_.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
  }
  void Release() { gate_.set_value(); }

 private:
  std::promise<void> gate_;
  std::atomic<bool> entered_{false};
};

TEST_F(StreamFig3Test, CancellationShedsQueuedRequestsAndEndsOnce) {
  // One worker, pinned inside the first request's frame delivery, so the
  // whole stream is still queued when we cancel.
  service::TopologyService svc(engine_.get(), &db_, Config(1, false));
  BlockingSink blocker;
  svc.Submit(Request(0, core::RankScheme::kFreq), blocker);
  blocker.AwaitEntered();

  wire::CollectingSink sink;
  std::vector<wire::WireRequest> requests;
  for (size_t i = 1; i <= 5; ++i) {
    requests.push_back(Request(i, core::RankScheme::kRare));
  }
  uint64_t stream_id = svc.SubmitStream(std::move(requests), sink);
  EXPECT_TRUE(svc.CancelStream(stream_id));
  blocker.Release();
  sink.WaitForEnd();

  auto frames = sink.Frames();
  ASSERT_EQ(frames.size(), 6u);
  EXPECT_EQ(sink.EndCount(), 1u);
  // Every request was still queued at cancel time: all shed, none ran.
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(frames[i].response.error.code, WireErrorCode::kCancelled)
        << i;
  }
  EXPECT_EQ(frames[5].kind, FrameKind::kStreamEnd);
  auto metrics = svc.Metrics();
  EXPECT_EQ(metrics.classes[0].cancelled, 5u);

  // A finished stream can no longer be cancelled.
  EXPECT_FALSE(svc.CancelStream(stream_id));
}

TEST_F(StreamFig3Test, InteractiveDrainsBeforeQueuedBatchWork) {
  // One worker, pinned. Fill the queue with batch requests, then submit an
  // interactive one: strict-priority dequeue must complete it before every
  // queued batch request, regardless of arrival order.
  service::TopologyService svc(engine_.get(), &db_, Config(1, false));

  BlockingSink blocker;
  svc.Submit(Request(0, core::RankScheme::kFreq), blocker);
  blocker.AwaitEntered();

  std::mutex mu;
  std::vector<std::string> completion_order;
  class OrderSink : public wire::StreamSink {
   public:
    OrderSink(std::mutex* mu, std::vector<std::string>* order,
              std::string label)
        : mu_(mu), order_(order), label_(std::move(label)) {}
    void OnFrame(const wire::WireFrame& frame) override {
      if (frame.kind != FrameKind::kResponse) return;
      std::lock_guard<std::mutex> lock(*mu_);
      order_->push_back(label_ + std::to_string(frame.response.request_id));
    }
   private:
    std::mutex* mu_;
    std::vector<std::string>* order_;
    std::string label_;
  };

  OrderSink batch_sink(&mu, &completion_order, "b");
  wire::CollectingSink done;

  // Batch arrives first and owns the queue...
  std::vector<wire::WireRequest> batch;
  for (size_t i = 0; i < 4; ++i) {
    wire::WireRequest r = Request(i, core::RankScheme::kFreq,
                                  MethodKind::kFullTop,
                                  wire::Priority::kBatch);
    r.query.k = 3 + i;
    batch.push_back(std::move(r));
  }
  svc.SubmitStream(std::move(batch), batch_sink);
  // ... then the interactive request jumps it.
  class RecordingSink : public wire::StreamSink {
   public:
    RecordingSink(std::mutex* mu, std::vector<std::string>* order,
                  wire::CollectingSink* inner)
        : mu_(mu), order_(order), inner_(inner) {}
    void OnFrame(const wire::WireFrame& frame) override {
      {
        std::lock_guard<std::mutex> lock(*mu_);
        order_->push_back("i" + std::to_string(frame.response.request_id));
      }
      inner_->OnFrame(frame);
    }
   private:
    std::mutex* mu_;
    std::vector<std::string>* order_;
    wire::CollectingSink* inner_;
  } interactive_sink(&mu, &completion_order, &done);
  svc.Submit(Request(9, core::RankScheme::kDomain, MethodKind::kFullTop,
                     wire::Priority::kInteractive),
             interactive_sink);

  blocker.Release();
  done.WaitForFrames(1);
  svc.Shutdown();

  // With the worker pinned until both classes were queued, the
  // interactive request must complete strictly first.
  std::lock_guard<std::mutex> lock(mu);
  ASSERT_FALSE(completion_order.empty());
  EXPECT_EQ(completion_order[0], "i9")
      << "interactive request did not jump the batch queue";
  EXPECT_EQ(completion_order.size(), 5u);

  auto metrics = svc.Metrics();
  EXPECT_EQ(metrics.classes[0].admitted, 2u);  // Blocker + interactive.
  EXPECT_EQ(metrics.classes[1].admitted, 4u);
}

TEST_F(StreamFig3Test, BatchConcurrencyCapKeepsAWorkerFreeForInteractive) {
  service::ServiceConfig config = Config(2, false);
  config.max_concurrent_batch = 1;
  service::TopologyService svc(engine_.get(), &db_, config);

  // Pin worker A inside a batch request's frame delivery: batch_executing_
  // stays 1, so a second batch request must wait even though worker B is
  // idle...
  BlockingSink batch_blocker;
  svc.Submit(Request(1, core::RankScheme::kFreq, MethodKind::kFullTop,
                     wire::Priority::kBatch),
             batch_blocker);
  batch_blocker.AwaitEntered();

  wire::CollectingSink capped_sink;
  svc.Submit(Request(2, core::RankScheme::kRare, MethodKind::kFullTop,
                     wire::Priority::kBatch),
             capped_sink);
  // ... while an interactive request sails through on worker B.
  wire::CollectingSink interactive_sink;
  svc.Submit(Request(3, core::RankScheme::kDomain, MethodKind::kFullTop,
                     wire::Priority::kInteractive),
             interactive_sink);
  interactive_sink.WaitForFrames(1);
  EXPECT_TRUE(interactive_sink.Frames()[0].response.error.ok());
  EXPECT_TRUE(capped_sink.Frames().empty()) << "batch ran over the cap";

  // The finishing batch request funds the capped one's execution.
  batch_blocker.Release();
  capped_sink.WaitForFrames(1);
  EXPECT_TRUE(capped_sink.Frames()[0].response.error.ok());
  svc.Shutdown();
}

TEST_F(StreamFig3Test, ShutdownFlushesBatchWorkStrandedAtTheCap) {
  service::ServiceConfig config = Config(2, false);
  config.max_concurrent_batch = 1;
  service::TopologyService svc(engine_.get(), &db_, config);

  // Pin worker A with a batch request, then queue more batch work: its
  // tokens run on worker B and all retire at the cap. Shutdown must still
  // deliver every frame (via its flush loop).
  BlockingSink blocker;
  svc.Submit(Request(0, core::RankScheme::kFreq, MethodKind::kFullTop,
                     wire::Priority::kBatch),
             blocker);
  blocker.AwaitEntered();

  wire::CollectingSink sink;
  std::vector<wire::WireRequest> stranded;
  for (size_t i = 1; i <= 3; ++i) {
    stranded.push_back(Request(i, core::RankScheme::kRare,
                               MethodKind::kFullTop,
                               wire::Priority::kBatch));
  }
  svc.SubmitStream(std::move(stranded), sink);

  std::thread releaser([&blocker]() { blocker.Release(); });
  svc.Shutdown();
  releaser.join();

  sink.WaitForEnd();
  auto frames = sink.Frames();
  ASSERT_EQ(frames.size(), 4u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(frames[i].response.error.ok())
        << frames[i].response.error.message;
  }
  EXPECT_EQ(sink.EndCount(), 1u);
}

TEST_F(StreamFig3Test, ExpiredDeadlinesAreShedWithTheDistinctCode) {
  // One worker blocked by a slow-ish first request; the second request's
  // deadline expires while it waits and it must be shed, not executed.
  service::TopologyService svc(engine_.get(), &db_, Config(1, false));

  wire::CollectingSink first_sink;
  svc.Submit(Request(1, core::RankScheme::kFreq), first_sink);

  wire::CollectingSink shed_sink;
  wire::WireRequest doomed = Request(2, core::RankScheme::kRare,
                                     MethodKind::kFullTop,
                                     wire::Priority::kBatch);
  doomed.deadline_seconds = 1e-9;  // Expires effectively immediately.
  svc.Submit(doomed, shed_sink);

  shed_sink.WaitForFrames(1);
  auto frames = shed_sink.Frames();
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].response.error.code, WireErrorCode::kDeadlineExceeded);
  EXPECT_NE(frames[0].response.error.message.find("deadline"),
            std::string::npos);

  auto metrics = svc.Metrics();
  EXPECT_EQ(metrics.classes[1].deadline_shed, 1u);
  // Shed ≠ rejected: admission accepted it, the deadline killed it.
  EXPECT_EQ(metrics.classes[1].rejected, 0u);
}

TEST_F(StreamFig3Test, PerClassBoundsRejectIndependently) {
  service::ServiceConfig config = Config(1, false);
  config.max_in_flight = 0;        // Interactive always over the bound.
  config.batch_max_in_flight = 64; // Batch wide open.
  service::TopologyService svc(engine_.get(), &db_, config);

  wire::CollectingSink interactive_sink;
  svc.Submit(Request(1, core::RankScheme::kFreq), interactive_sink);
  auto interactive_frames = interactive_sink.Frames();
  ASSERT_EQ(interactive_frames.size(), 1u);
  EXPECT_EQ(interactive_frames[0].response.error.code,
            WireErrorCode::kOverloaded);

  wire::CollectingSink batch_sink;
  svc.Submit(Request(2, core::RankScheme::kFreq, MethodKind::kFullTop,
                     wire::Priority::kBatch),
             batch_sink);
  batch_sink.WaitForFrames(1);
  auto batch_frames = batch_sink.Frames();
  ASSERT_EQ(batch_frames.size(), 1u);
  EXPECT_TRUE(batch_frames[0].response.error.ok())
      << batch_frames[0].response.error.message;

  auto metrics = svc.Metrics();
  EXPECT_EQ(metrics.classes[0].rejected, 1u);
  EXPECT_EQ(metrics.classes[1].rejected, 0u);
  EXPECT_EQ(metrics.total_rejected, 1u);
}

TEST_F(StreamFig3Test, BatchFloodDoesNotRejectTripleQueries) {
  // Triples are interactive-class citizens: their admission checks the
  // interactive counter, so a large admitted batch backlog (here: pinned
  // worker + queued batch items, all within the batch bound) must not
  // push them over max_in_flight.
  service::ServiceConfig config = Config(2, false);
  config.max_in_flight = 4;  // Small interactive bound.
  config.max_concurrent_batch = 1;
  service::TopologyService svc(engine_.get(), &db_, config);
  svc.EnableTripleQueries(&store_, schema_.get(), view_.get());

  BlockingSink blocker;
  svc.Submit(Request(0, core::RankScheme::kFreq, MethodKind::kFullTop,
                     wire::Priority::kBatch),
             blocker);
  blocker.AwaitEntered();
  wire::CollectingSink batch_sink;
  std::vector<wire::WireRequest> backlog;
  for (size_t i = 1; i <= 6; ++i) {  // 7 batch in flight > max_in_flight.
    backlog.push_back(Request(i, core::RankScheme::kRare,
                              MethodKind::kFullTop,
                              wire::Priority::kBatch));
  }
  svc.SubmitStream(std::move(backlog), batch_sink);

  engine::TripleQuery triple;
  triple.entity_set1 = "Protein";
  triple.entity_set2 = "Unigene";
  triple.entity_set3 = "DNA";
  std::future<service::TripleResponse> future = svc.SubmitTriple(triple);
  blocker.Release();
  service::TripleResponse response = future.get();
  // Whatever the engine says about this triple, admission let it through.
  EXPECT_NE(response.result.status().code(),
            StatusCode::kResourceExhausted)
      << response.result.status().ToString();
  batch_sink.WaitForEnd();
  svc.Shutdown();
}

TEST_F(StreamFig3Test, CacheHitsAnswerOnTheCallingThreadWithoutAdmission) {
  service::TopologyService svc(engine_.get(), &db_, Config(2));
  wire::CollectingSink warmup;
  svc.Submit(Request(1, core::RankScheme::kFreq), warmup);
  warmup.WaitForFrames(1);

  // The repeat is answered inline from the cache — no pool hop, no
  // admission charge (the class admitted count stays at the warmup's 1).
  wire::CollectingSink sink;
  wire::WireRequest repeat = Request(2, core::RankScheme::kFreq);
  svc.Submit(repeat, sink);
  auto frames = sink.Frames();  // Inline delivery: no wait.
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_TRUE(frames[0].response.from_cache);
  EXPECT_EQ(frames[0].response.request_id, 2u);
}

TEST_F(StreamFig3Test, LegacyFutureBecomesReadyWithoutGet) {
  // The adapter future must behave like the pre-wire pool-backed one:
  // pollable with wait_for, transitioning to ready on completion (a
  // deferred future would report future_status::deferred forever).
  service::TopologyService svc(engine_.get(), &db_, Config(2));
  auto future = svc.Submit(Request(1, core::RankScheme::kFreq).query,
                           MethodKind::kFullTop);
  auto status = future.wait_for(std::chrono::seconds(30));
  ASSERT_EQ(status, std::future_status::ready);
  EXPECT_TRUE(future.get().result.ok());
}

TEST_F(StreamFig3Test, LegacyBatchAdaptersMatchTheStreamSurface) {
  service::TopologyService svc(engine_.get(), &db_, Config(4));

  std::vector<service::ParsedRequest> batch(3);
  batch[0].query = Request(0, core::RankScheme::kFreq).query;
  batch[0].method = MethodKind::kFullTop;
  batch[1].query = Request(0, core::RankScheme::kRare).query;
  batch[1].method = MethodKind::kFullTopK;
  batch[2].query = Request(0, core::RankScheme::kDomain).query;
  batch[2].method = MethodKind::kFastTop;

  auto outcome = svc.ExecuteBatch(batch);
  ASSERT_EQ(outcome.responses.size(), 3u);
  EXPECT_EQ(outcome.failures, 0u);
  for (size_t i = 0; i < 3; ++i) {
    auto direct = engine_->Execute(batch[i].query, batch[i].method);
    ASSERT_TRUE(direct.ok());
    ASSERT_TRUE(outcome.responses[i].result.ok());
    EXPECT_EQ(outcome.responses[i].result->entries, direct->entries) << i;
  }
  // Legacy batches ride the batch class.
  auto metrics = svc.Metrics();
  EXPECT_EQ(metrics.classes[1].admitted, 3u);
}

TEST_F(StreamFig3Test, ConcurrentStreamsKeepFramesOnTheirOwnSinks) {
  service::TopologyService svc(engine_.get(), &db_, Config(4, false));
  const size_t kStreams = 6;
  std::vector<std::unique_ptr<wire::CollectingSink>> sinks;
  std::vector<uint64_t> ids;
  for (size_t s = 0; s < kStreams; ++s) {
    sinks.push_back(std::make_unique<wire::CollectingSink>());
    std::vector<wire::WireRequest> requests;
    for (size_t i = 0; i < 4; ++i) {
      requests.push_back(
          Request(s * 10 + i,
                  s % 2 == 0 ? core::RankScheme::kFreq
                             : core::RankScheme::kRare,
                  MethodKind::kFullTop,
                  s % 2 == 0 ? wire::Priority::kInteractive
                             : wire::Priority::kBatch));
    }
    ids.push_back(svc.SubmitStream(std::move(requests), *sinks[s]));
  }
  for (size_t s = 0; s < kStreams; ++s) {
    sinks[s]->WaitForEnd();
    auto frames = sinks[s]->Frames();
    ASSERT_EQ(frames.size(), 5u) << s;
    EXPECT_EQ(sinks[s]->EndCount(), 1u);
    for (const wire::WireFrame& frame : frames) {
      EXPECT_EQ(frame.stream_id, ids[s]);
      if (frame.kind == FrameKind::kResponse) {
        EXPECT_EQ(frame.response.request_id / 10, s);
        EXPECT_TRUE(frame.response.error.ok());
      }
    }
  }
}

}  // namespace
}  // namespace tsb
