// The incremental log-structured store (src/mutation/): the WAL codec and
// its torn-tail recovery, dirty-pair classification, per-pair cache
// eviction, and the tentpole contract that a mutated live store answers
// every one of the nine query methods byte-identically to a from-scratch
// rebuild of the mutated graph — through the single-store engine, the
// sharded executor at N ∈ {1, 4}, after chained batches, after background
// compaction folds, and after a WAL replay into a fresh process image.

#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unistd.h>
#include <vector>

#include "biozon/domain.h"
#include "biozon/fig3.h"
#include "biozon/schema.h"
#include "core/builder.h"
#include "core/pruner.h"
#include "core/store.h"
#include "engine/engine.h"
#include "mutation/delta_log.h"
#include "mutation/dirty_tracker.h"
#include "mutation/mutation.h"
#include "mutation/mutation_engine.h"
#include "service/query_cache.h"
#include "service/service.h"
#include "shard/scatter_gather.h"
#include "shard/sharded_store.h"
#include "storage/predicate.h"
#include "wire/codec.h"
#include "wire/message.h"

namespace tsb {
namespace {

using engine::MethodKind;

const std::vector<MethodKind> kAllMethods = {
    MethodKind::kSql,         MethodKind::kFullTop,
    MethodKind::kFastTop,     MethodKind::kFullTopK,
    MethodKind::kFastTopK,    MethodKind::kFullTopKEt,
    MethodKind::kFastTopKEt,  MethodKind::kFullTopKOpt,
    MethodKind::kFastTopKOpt,
};

std::string TempWalPath(const std::string& tag) {
  return "/tmp/tsb_mutation_test_" + std::to_string(::getpid()) + "_" + tag +
         ".wal";
}

/// The query mix every identity check runs: unpredicated scans of all
/// three built pairs plus one predicated query (attribute bytes matter),
/// each under all nine methods. Predicates bind to a specific catalog's
/// table schemas, hence the builder-per-world shape.
std::vector<engine::TopologyQuery> FixtureQueries(const storage::Catalog& db) {
  std::vector<engine::TopologyQuery> out;
  for (const auto& [a, b] : std::vector<std::pair<std::string, std::string>>{
           {"Protein", "DNA"}, {"Protein", "Unigene"}, {"Unigene", "DNA"}}) {
    engine::TopologyQuery q;
    q.entity_set1 = a;
    q.entity_set2 = b;
    q.scheme = core::RankScheme::kFreq;
    q.k = 10;
    out.push_back(q);
  }
  engine::TopologyQuery pred;
  pred.entity_set1 = "Protein";
  pred.pred1 = storage::MakeContainsKeyword(db.GetTable("Protein")->schema(),
                                            "DESC", "enzyme");
  pred.entity_set2 = "DNA";
  pred.pred2 = storage::MakeEquals(db.GetTable("DNA")->schema(), "TYPE",
                                   storage::Value("mRNA"));
  pred.scheme = core::RankScheme::kFreq;
  pred.k = 10;
  out.push_back(pred);
  return out;
}

void PruneAllPairs(storage::Catalog* db, core::TopologyStore* store) {
  core::PruneConfig prune;
  prune.frequency_threshold = 0;
  std::vector<std::pair<storage::EntityTypeId, storage::EntityTypeId>> keys;
  for (const auto& [key, pair] : store->pairs()) keys.push_back(key);
  for (const auto& [t1, t2] : keys) {
    ASSERT_TRUE(core::PruneFrequentTopologies(db, store, t1, t2, prune).ok());
  }
}

// ---------------------------------------------------------------------------
// Worlds
// ---------------------------------------------------------------------------

/// A live Figure-3 world whose store sits behind a StoreHandle, so the
/// mutation engine can swap overlay epochs in behind the engine.
struct LiveWorld {
  // db must outlive everything below: retired stores drop their tables
  // from it on destruction (members destroy in reverse order).
  storage::Catalog db;
  biozon::BiozonSchema ids;
  std::unique_ptr<graph::DataGraphView> view;
  std::unique_ptr<graph::SchemaGraph> schema;
  std::shared_ptr<core::StoreHandle> handle;
  std::unique_ptr<engine::Engine> engine;
  std::unique_ptr<mutation::MutationEngine> mutator;
};

std::unique_ptr<LiveWorld> MakeLiveWorld() {
  auto w = std::make_unique<LiveWorld>();
  w->ids = biozon::BuildFigure3Database(&w->db);
  w->view = std::make_unique<graph::DataGraphView>(w->db);
  w->schema = std::make_unique<graph::SchemaGraph>(w->db);
  auto store = std::make_shared<core::TopologyStore>();
  core::TopologyBuilder builder(&w->db, w->schema.get(), w->view.get());
  core::BuildConfig config;
  config.max_path_length = 3;
  TSB_CHECK(builder.BuildAllPairs(config, store.get()).ok());
  PruneAllPairs(&w->db, store.get());
  w->handle = std::make_shared<core::StoreHandle>(store);
  w->engine = std::make_unique<engine::Engine>(
      &w->db, w->handle, w->schema.get(), w->view.get(),
      core::ScoreModel(&store->catalog(),
                       biozon::MakeBiozonDomainKnowledge(w->ids)));
  mutation::MutationEngine::Options options;
  options.build.max_path_length = 3;
  w->mutator = std::make_unique<mutation::MutationEngine>(
      &w->db, w->schema.get(),
      std::vector<std::shared_ptr<core::StoreHandle>>{w->handle}, options);
  return w;
}

/// In-memory model of the mutated Figure-3 database, mirroring the COW
/// row order the overlay produces (original order minus removed rows,
/// additions appended) — the ground-truth data the oracle rebuilds from.
class Fig3Model {
 public:
  Fig3Model() {
    ids_ = biozon::BuildFigure3Database(&scratch_);
    for (const storage::EntitySetDef& es : scratch_.entity_sets()) {
      Load(es.table_name);
    }
    for (const storage::RelationshipSetDef& rs :
         scratch_.relationship_sets()) {
      Load(rs.table_name);
    }
  }

  void Apply(const mutation::Mutation& op) {
    switch (op.kind) {
      case mutation::MutationKind::kAddNode: {
        const storage::EntitySetDef* es = scratch_.FindEntitySet(op.set_name);
        TSB_CHECK(es != nullptr) << op.set_name;
        const storage::TableSchema& schema =
            scratch_.GetTable(es->table_name)->schema();
        storage::Tuple row(schema.num_columns());
        for (size_t c = 0; c < schema.num_columns(); ++c) {
          row[c] = schema.column(c).name == es->id_column
                       ? storage::Value(op.id)
                       : ZeroValue(schema.column(c).type);
        }
        for (const auto& [column, value] : op.attributes) {
          row[*schema.FindColumn(column)] = value;
        }
        Rows& t = tables_[es->table_name];
        t.rows.push_back(std::move(row));
        t.dead.push_back(false);
        break;
      }
      case mutation::MutationKind::kRemoveNode: {
        const storage::EntitySetDef* es = scratch_.FindEntitySet(op.set_name);
        TSB_CHECK(es != nullptr) << op.set_name;
        Kill(es->table_name, es->id_column, op.id);
        // The cascade the applier performs: every incident edge goes too.
        for (const storage::RelationshipSetDef& rs :
             scratch_.relationship_sets()) {
          if (rs.from_type == es->id) {
            KillAll(rs.table_name, rs.from_column, op.id);
          }
          if (rs.to_type == es->id) {
            KillAll(rs.table_name, rs.to_column, op.id);
          }
        }
        break;
      }
      case mutation::MutationKind::kAddEdge: {
        const storage::RelationshipSetDef* rs =
            scratch_.FindRelationshipSet(op.set_name);
        TSB_CHECK(rs != nullptr) << op.set_name;
        const storage::TableSchema& schema =
            scratch_.GetTable(rs->table_name)->schema();
        storage::Tuple row(schema.num_columns());
        row[*schema.FindColumn(rs->id_column)] = storage::Value(op.id);
        row[*schema.FindColumn(rs->from_column)] = storage::Value(op.from);
        row[*schema.FindColumn(rs->to_column)] = storage::Value(op.to);
        Rows& t = tables_[rs->table_name];
        t.rows.push_back(std::move(row));
        t.dead.push_back(false);
        break;
      }
      case mutation::MutationKind::kRemoveEdge: {
        const storage::RelationshipSetDef* rs =
            scratch_.FindRelationshipSet(op.set_name);
        TSB_CHECK(rs != nullptr) << op.set_name;
        Kill(rs->table_name, rs->id_column, op.id);
        break;
      }
      case mutation::MutationKind::kUpdateAttribute: {
        const storage::EntitySetDef* es = scratch_.FindEntitySet(op.set_name);
        TSB_CHECK(es != nullptr) << op.set_name;
        const storage::TableSchema& schema =
            scratch_.GetTable(es->table_name)->schema();
        const size_t id_col = *schema.FindColumn(es->id_column);
        Rows& t = tables_[es->table_name];
        for (size_t r = 0; r < t.rows.size(); ++r) {
          if (t.dead[r] || t.rows[r][id_col].AsInt64() != op.id) continue;
          for (const auto& [column, value] : op.attributes) {
            t.rows[r][*schema.FindColumn(column)] = value;
          }
        }
        break;
      }
    }
  }

  void ApplyHistory(const std::vector<mutation::MutationBatch>& history) {
    for (const mutation::MutationBatch& batch : history) {
      for (const mutation::Mutation& op : batch.ops) Apply(op);
    }
  }

  /// Appends the surviving rows into the same-named (empty) tables of
  /// `db`, which must already hold the biozon schema.
  void Materialize(storage::Catalog* db) const {
    for (const auto& [name, t] : tables_) {
      storage::Table* table = db->GetTable(name);
      for (size_t r = 0; r < t.rows.size(); ++r) {
        if (!t.dead[r]) table->AppendRowOrDie(t.rows[r]);
      }
    }
  }

 private:
  struct Rows {
    std::vector<storage::Tuple> rows;
    std::vector<bool> dead;
  };

  static storage::Value ZeroValue(storage::ColumnType type) {
    switch (type) {
      case storage::ColumnType::kInt64:
        return storage::Value(static_cast<int64_t>(0));
      case storage::ColumnType::kDouble:
        return storage::Value(0.0);
      case storage::ColumnType::kString:
        return storage::Value(std::string());
    }
    return storage::Value(static_cast<int64_t>(0));
  }

  void Load(const std::string& table_name) {
    const storage::Table* table = scratch_.GetTable(table_name);
    Rows t;
    for (size_t r = 0; r < table->num_rows(); ++r) {
      t.rows.push_back(table->GetRow(r));
      t.dead.push_back(false);
    }
    tables_.emplace(table_name, std::move(t));
  }

  void Kill(const std::string& table_name, const std::string& id_column,
            int64_t id) {
    const size_t c =
        *scratch_.GetTable(table_name)->schema().FindColumn(id_column);
    Rows& t = tables_[table_name];
    for (size_t r = 0; r < t.rows.size(); ++r) {
      if (!t.dead[r] && t.rows[r][c].AsInt64() == id) t.dead[r] = true;
    }
  }

  void KillAll(const std::string& table_name,
               const std::string& endpoint_column, int64_t id) {
    Kill(table_name, endpoint_column, id);
  }

  storage::Catalog scratch_;
  biozon::BiozonSchema ids_;
  std::map<std::string, Rows> tables_;
};

/// The acceptance oracle: a second catalog holding the final (mutated)
/// data, rebuilt from scratch. Its topology catalog is seeded from the
/// live store's so TIDs line up — the same TID-continuity contract the
/// overlay path maintains via the shared catalog.
struct OracleWorld {
  storage::Catalog db;
  biozon::BiozonSchema ids;
  std::unique_ptr<graph::DataGraphView> view;
  std::unique_ptr<graph::SchemaGraph> schema;
  std::shared_ptr<core::TopologyStore> store;
  std::unique_ptr<engine::Engine> engine;
};

std::unique_ptr<OracleWorld> BuildMutatedOracle(
    const std::vector<mutation::MutationBatch>& history,
    const core::TopologyCatalog& live_catalog) {
  auto w = std::make_unique<OracleWorld>();
  Fig3Model model;
  model.ApplyHistory(history);
  w->ids = biozon::CreateBiozonSchema(&w->db);
  model.Materialize(&w->db);
  w->view = std::make_unique<graph::DataGraphView>(w->db);
  w->schema = std::make_unique<graph::SchemaGraph>(w->db);
  w->store = std::make_shared<core::TopologyStore>();
  auto seeded = std::make_shared<core::TopologyCatalog>();
  for (core::Tid tid = 1; tid <= static_cast<core::Tid>(live_catalog.size());
       ++tid) {
    const core::TopologyInfo& info = live_catalog.Get(tid);
    seeded->InternWithCode(info.graph, info.code, info.num_classes,
                           live_catalog.ClassKeysOf(tid));
  }
  w->store->adopt_catalog(seeded);
  core::TopologyBuilder builder(&w->db, w->schema.get(), w->view.get());
  core::BuildConfig config;
  config.max_path_length = 3;
  TSB_CHECK(builder.BuildAllPairs(config, w->store.get()).ok());
  PruneAllPairs(&w->db, w->store.get());
  w->engine = std::make_unique<engine::Engine>(
      &w->db, w->store.get(), w->schema.get(), w->view.get(),
      core::ScoreModel(&w->store->catalog(),
                       biozon::MakeBiozonDomainKnowledge(w->ids)));
  return w;
}

/// A mixed add/remove/attribute history, split across three batches so
/// the overlay chains generations before any compaction.
std::vector<mutation::MutationBatch> MixedHistory() {
  std::vector<mutation::MutationBatch> history(3);
  history[0].ops = {
      mutation::AddNode(
          "Protein", 500,
          {{"DESC", storage::Value(std::string(
                        "ubiquitin-conjugating enzyme E2 variant X"))}}),
      mutation::AddEdge("Encodes", 600, 500, 742),
      mutation::AddEdge("Uni_encodes", 601, 188, 500),
  };
  history[1].ops = {
      mutation::RemoveEdge("Uni_contains", 93),
      mutation::RemoveNode("Protein", 34),  // Cascades Encodes 44 and
                                            // Uni_encodes 14.
  };
  history[2].ops = {
      mutation::UpdateAttribute("DNA", 215, "TYPE",
                                storage::Value(std::string("rRNA"))),
      mutation::UpdateAttribute(
          "Protein", 78, "DESC",
          storage::Value(std::string("renamed variant MMS2"))),
  };
  return history;
}

// ---------------------------------------------------------------------------
// Batch codec + wire frames
// ---------------------------------------------------------------------------

mutation::MutationBatch ExampleBatch() {
  mutation::MutationBatch batch;
  batch.ops = {
      mutation::AddNode("Protein", 7,
                        {{"DESC", storage::Value(std::string("p7"))}}),
      mutation::RemoveNode("Protein", 34),
      mutation::AddEdge("Encodes", 9, 7, 742),
      mutation::RemoveEdge("Uni_contains", 93),
      mutation::UpdateAttribute("DNA", 215, "TYPE",
                                storage::Value(std::string("rRNA"))),
  };
  return batch;
}

TEST(MutationCodecTest, BatchRoundTripsByteIdentically) {
  const mutation::MutationBatch batch = ExampleBatch();
  std::string encoded;
  mutation::EncodeMutationBatch(batch, &encoded);
  auto decoded = mutation::DecodeMutationBatch(encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(*decoded, batch);
  std::string re;
  mutation::EncodeMutationBatch(*decoded, &re);
  EXPECT_EQ(re, encoded);
}

TEST(MutationCodecTest, EveryTruncatedPrefixIsRejected) {
  std::string encoded;
  mutation::EncodeMutationBatch(ExampleBatch(), &encoded);
  for (size_t len = 0; len < encoded.size(); ++len) {
    auto decoded =
        mutation::DecodeMutationBatch(std::string_view(encoded).substr(0, len));
    EXPECT_FALSE(decoded.ok()) << "prefix of " << len << " bytes decoded";
  }
}

TEST(MutationCodecTest, MutationWireFramesRoundTrip) {
  wire::MutationWireRequest request;
  request.id = 41;
  request.batch = ExampleBatch();
  std::string frame;
  wire::EncodeMutationRequest(request, &frame);
  auto kind = wire::PeekMessageKind(frame);
  ASSERT_TRUE(kind.ok());
  EXPECT_EQ(*kind, wire::MessageKind::kMutationRequest);
  auto decoded = wire::DecodeMutationRequest(frame);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->id, 41u);
  EXPECT_EQ(decoded->batch, request.batch);

  wire::MutationWireResponse response;
  response.request_id = 41;
  response.error = {wire::WireErrorCode::kFailedPrecondition, "read only"};
  response.applied_ops = 5;
  response.dirty_pairs = 3;
  response.apply_seconds = 0.25;
  std::string rframe;
  wire::EncodeMutationResponse(response, &rframe);
  auto rdecoded = wire::DecodeMutationResponse(rframe);
  ASSERT_TRUE(rdecoded.ok()) << rdecoded.status();
  EXPECT_EQ(rdecoded->request_id, 41u);
  EXPECT_EQ(rdecoded->error.code, wire::WireErrorCode::kFailedPrecondition);
  EXPECT_EQ(rdecoded->error.message, "read only");
  EXPECT_EQ(rdecoded->applied_ops, 5u);
  EXPECT_EQ(rdecoded->dirty_pairs, 3u);
  EXPECT_EQ(rdecoded->apply_seconds, 0.25);
}

// ---------------------------------------------------------------------------
// DeltaLog: durability, torn tails, checksum corruption
// ---------------------------------------------------------------------------

TEST(DeltaLogTest, RoundTripsBatchesAcrossReopen) {
  const std::string path = TempWalPath("roundtrip");
  std::remove(path.c_str());
  const std::vector<mutation::MutationBatch> history = MixedHistory();
  {
    mutation::DeltaLog wal;
    std::vector<mutation::MutationBatch> replayed;
    auto stats = wal.Open(path, &replayed);
    ASSERT_TRUE(stats.ok()) << stats.status();
    EXPECT_EQ(replayed.size(), 0u);
    for (const mutation::MutationBatch& batch : history) {
      ASSERT_TRUE(wal.Append(batch).ok());
    }
    EXPECT_EQ(wal.appended_records(), history.size());
  }
  mutation::DeltaLog wal;
  std::vector<mutation::MutationBatch> replayed;
  auto stats = wal.Open(path, &replayed);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->batches, history.size());
  EXPECT_EQ(stats->truncated_bytes, 0u);
  ASSERT_EQ(replayed.size(), history.size());
  for (size_t i = 0; i < history.size(); ++i) {
    EXPECT_EQ(replayed[i], history[i]) << i;
  }
  wal.Close();
  std::remove(path.c_str());
}

TEST(DeltaLogTest, TornTailIsTruncatedAndTheLogStaysAppendable) {
  const std::string path = TempWalPath("torn");
  std::remove(path.c_str());
  const std::vector<mutation::MutationBatch> history = MixedHistory();
  {
    mutation::DeltaLog wal;
    std::vector<mutation::MutationBatch> replayed;
    ASSERT_TRUE(wal.Open(path, &replayed).ok());
    for (const mutation::MutationBatch& batch : history) {
      ASSERT_TRUE(wal.Append(batch).ok());
    }
  }
  {
    // A SIGKILL mid-write leaves a partial record: a length prefix that
    // promises more bytes than the file holds.
    std::FILE* f = std::fopen(path.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    const char torn[] = "\xff\xff\x00\x00garbage";
    std::fwrite(torn, 1, sizeof(torn) - 1, f);
    std::fclose(f);
  }
  mutation::DeltaLog wal;
  std::vector<mutation::MutationBatch> replayed;
  auto stats = wal.Open(path, &replayed);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->batches, history.size());
  EXPECT_GT(stats->truncated_bytes, 0u);
  ASSERT_EQ(replayed.size(), history.size());

  // The tail was truncated back to the last valid boundary, so the log
  // accepts new records and a clean reopen sees all of them.
  ASSERT_TRUE(wal.Append(history[0]).ok());
  wal.Close();
  mutation::DeltaLog again;
  std::vector<mutation::MutationBatch> all;
  auto clean = again.Open(path, &all);
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(clean->truncated_bytes, 0u);
  EXPECT_EQ(all.size(), history.size() + 1);
  again.Close();
  std::remove(path.c_str());
}

TEST(DeltaLogTest, ChecksumCorruptionDropsTheTailRecord) {
  const std::string path = TempWalPath("corrupt");
  std::remove(path.c_str());
  const std::vector<mutation::MutationBatch> history = MixedHistory();
  {
    mutation::DeltaLog wal;
    std::vector<mutation::MutationBatch> replayed;
    ASSERT_TRUE(wal.Open(path, &replayed).ok());
    for (const mutation::MutationBatch& batch : history) {
      ASSERT_TRUE(wal.Append(batch).ok());
    }
  }
  {
    // Flip the last payload byte: the record's length is intact but its
    // checksum no longer matches.
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, -1, SEEK_END);
    int last = std::fgetc(f);
    std::fseek(f, -1, SEEK_END);
    std::fputc(last ^ 0x5a, f);
    std::fclose(f);
  }
  mutation::DeltaLog wal;
  std::vector<mutation::MutationBatch> replayed;
  auto stats = wal.Open(path, &replayed);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->batches, history.size() - 1);
  EXPECT_GT(stats->truncated_bytes, 0u);
  ASSERT_EQ(replayed.size(), history.size() - 1);
  for (size_t i = 0; i + 1 < history.size(); ++i) {
    EXPECT_EQ(replayed[i], history[i]) << i;
  }
  wal.Close();
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Dirty-pair classification
// ---------------------------------------------------------------------------

TEST(DirtyTrackerTest, AttributeUpdatesAreCacheOnlyEdgesAreStructural) {
  storage::Catalog db;
  biozon::BiozonSchema ids = biozon::BuildFigure3Database(&db);
  graph::SchemaGraph schema(db);
  mutation::DirtyPairTracker tracker(&schema, &db);
  // Every canonical pair over the three populated types, as a base build
  // with max_path_length = 3 produces.
  const std::vector<mutation::TypePair> built = {
      {std::min(ids.protein, ids.dna), std::max(ids.protein, ids.dna)},
      {std::min(ids.protein, ids.unigene), std::max(ids.protein, ids.unigene)},
      {std::min(ids.unigene, ids.dna), std::max(ids.unigene, ids.dna)},
  };

  mutation::MutationBatch attr;
  attr.ops = {mutation::UpdateAttribute("Protein", 32, "DESC",
                                        storage::Value(std::string("x")))};
  auto dirty = tracker.Classify(attr, built, 3);
  ASSERT_TRUE(dirty.ok()) << dirty.status();
  EXPECT_TRUE(dirty->structural.empty());
  ASSERT_FALSE(dirty->cache_only.empty());
  for (const mutation::TypePair& pair : dirty->cache_only) {
    EXPECT_TRUE(pair.first == ids.protein || pair.second == ids.protein)
        << "attribute update dirtied a pair that cannot read Protein bytes";
  }

  mutation::MutationBatch edge;
  edge.ops = {mutation::AddEdge("Encodes", 600, 32, 742)};
  auto structural = tracker.Classify(edge, built, 3);
  ASSERT_TRUE(structural.ok()) << structural.status();
  // A Protein-DNA edge sits on short schema walks between all three
  // populated pairs at l = 3: every built pair is structurally dirty.
  EXPECT_EQ(structural->structural.size(), built.size());

  mutation::MutationBatch unknown;
  unknown.ops = {mutation::AddEdge("Nope", 1, 2, 3)};
  EXPECT_FALSE(tracker.Classify(unknown, built, 3).ok());
}

// ---------------------------------------------------------------------------
// Per-pair cache eviction
// ---------------------------------------------------------------------------

TEST(QueryCacheTest, EvictByPrefixDropsOnlyMatchingEntries) {
  service::ShardedLruCache<engine::QueryResult> cache;
  auto value = std::make_shared<const engine::QueryResult>();
  ASSERT_TRUE(cache.Insert("r0|p1_2g0|alpha", value));
  ASSERT_TRUE(cache.Insert("r0|p1_2g0|beta", value));
  ASSERT_TRUE(cache.Insert("r0|p1_3g0|alpha", value));
  EXPECT_EQ(cache.GetStats().entries, 3u);

  EXPECT_EQ(cache.EvictByPrefix("r0|p1_2g0|"), 2u);
  EXPECT_EQ(cache.GetStats().entries, 1u);
  EXPECT_EQ(cache.Lookup("r0|p1_2g0|alpha"), nullptr);
  EXPECT_EQ(cache.Lookup("r0|p1_2g0|beta"), nullptr);
  EXPECT_NE(cache.Lookup("r0|p1_3g0|alpha"), nullptr);
  EXPECT_EQ(cache.EvictByPrefix("r9|"), 0u);
}

// ---------------------------------------------------------------------------
// The tentpole: overlay reads are byte-identical to a from-scratch rebuild
// ---------------------------------------------------------------------------

class MutationFig3Test : public ::testing::Test {
 protected:
  void SetUp() override { live_ = MakeLiveWorld(); }

  /// Runs the full query mix under all nine methods against both engines
  /// and insists on byte-identical entries.
  void ExpectIdenticalToOracle(const engine::Engine& live_engine,
                               const storage::Catalog& live_db,
                               const OracleWorld& oracle,
                               const std::string& what) {
    const std::vector<engine::TopologyQuery> live_queries =
        FixtureQueries(live_db);
    const std::vector<engine::TopologyQuery> oracle_queries =
        FixtureQueries(oracle.db);
    for (size_t q = 0; q < live_queries.size(); ++q) {
      for (MethodKind method : kAllMethods) {
        auto a = live_engine.Execute(live_queries[q], method);
        auto b = oracle.engine->Execute(oracle_queries[q], method);
        ASSERT_EQ(a.ok(), b.ok())
            << what << " query " << q << " "
            << engine::MethodKindToString(method) << " live="
            << (a.ok() ? "ok" : a.status().ToString()) << " oracle="
            << (b.ok() ? "ok" : b.status().ToString());
        if (!a.ok()) continue;
        EXPECT_EQ(a->entries, b->entries)
            << what << " query " << q << " "
            << engine::MethodKindToString(method);
      }
    }
  }

  std::unique_ptr<LiveWorld> live_;
};

TEST_F(MutationFig3Test, AdditionsMatchFromScratchRebuildOnAllNineMethods) {
  const std::vector<mutation::MutationBatch> history = {MixedHistory()[0]};
  auto stats = live_->mutator->Apply(history[0]);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->generation, 1u);
  EXPECT_EQ(stats->applied_ops, 3u);
  EXPECT_GT(stats->structural_pairs, 0u);

  auto oracle =
      BuildMutatedOracle(history, live_->handle->Snapshot()->catalog());
  ExpectIdenticalToOracle(*live_->engine, live_->db, *oracle, "additions");
}

TEST_F(MutationFig3Test, RemovalsCascadeAndMatchFromScratchRebuild) {
  // The base history's removals need nothing from batch 0: run them alone.
  const std::vector<mutation::MutationBatch> history = {MixedHistory()[1]};
  auto stats = live_->mutator->Apply(history[0]);
  ASSERT_TRUE(stats.ok()) << stats.status();

  auto oracle =
      BuildMutatedOracle(history, live_->handle->Snapshot()->catalog());
  ExpectIdenticalToOracle(*live_->engine, live_->db, *oracle, "removals");
}

TEST_F(MutationFig3Test, AttributeUpdatesMatchWithoutRestagingAnyPair) {
  const std::vector<mutation::MutationBatch> history = {MixedHistory()[2]};
  auto stats = live_->mutator->Apply(history[0]);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->structural_pairs, 0u)
      << "attribute-only batches must not re-stage precompute";
  EXPECT_GT(stats->cache_only_pairs, 0u);

  auto oracle =
      BuildMutatedOracle(history, live_->handle->Snapshot()->catalog());
  ExpectIdenticalToOracle(*live_->engine, live_->db, *oracle, "attributes");
}

TEST_F(MutationFig3Test, ChainedBatchesThenCompactionStayIdentical) {
  const std::vector<mutation::MutationBatch> history = MixedHistory();
  for (const mutation::MutationBatch& batch : history) {
    ASSERT_TRUE(live_->mutator->Apply(batch).ok());
  }
  EXPECT_EQ(live_->mutator->generation(), history.size());
  EXPECT_EQ(live_->mutator->uncompacted_generations(), history.size());

  auto oracle =
      BuildMutatedOracle(history, live_->handle->Snapshot()->catalog());
  ExpectIdenticalToOracle(*live_->engine, live_->db, *oracle, "chained");

  auto fold = live_->mutator->CompactNow();
  ASSERT_TRUE(fold.ok()) << fold.status();
  EXPECT_EQ(fold->generations_folded, history.size());
  EXPECT_GT(fold->pairs_folded, 0u);
  EXPECT_EQ(live_->mutator->uncompacted_generations(), 0u);
  ExpectIdenticalToOracle(*live_->engine, live_->db, *oracle, "compacted");

  // A second fold with nothing accumulated is a zero-stat no-op.
  auto idle = live_->mutator->CompactNow();
  ASSERT_TRUE(idle.ok());
  EXPECT_EQ(idle->generations_folded, 0u);

  // Mutations keep landing on the compacted epoch.
  mutation::MutationBatch more;
  more.ops = {mutation::AddEdge("Uni_contains", 700, 150, 742)};
  ASSERT_TRUE(live_->mutator->Apply(more).ok());
  std::vector<mutation::MutationBatch> extended = history;
  extended.push_back(more);
  auto oracle2 =
      BuildMutatedOracle(extended, live_->handle->Snapshot()->catalog());
  ExpectIdenticalToOracle(*live_->engine, live_->db, *oracle2,
                          "post-compaction batch");
}

TEST_F(MutationFig3Test, InvalidBatchesFailAtomicallyWithNoSideEffects) {
  const engine::TopologyQuery probe = FixtureQueries(live_->db)[0];
  auto before = live_->engine->Execute(probe, MethodKind::kFullTop);
  ASSERT_TRUE(before.ok());

  mutation::MutationBatch empty;
  EXPECT_FALSE(live_->mutator->Apply(empty).ok());

  mutation::MutationBatch duplicate;
  duplicate.ops = {mutation::AddNode("Protein", 32)};  // Id already taken.
  EXPECT_FALSE(live_->mutator->Apply(duplicate).ok());

  mutation::MutationBatch dangling;
  dangling.ops = {mutation::AddEdge("Encodes", 800, 9999, 742)};
  EXPECT_FALSE(live_->mutator->Apply(dangling).ok());

  mutation::MutationBatch late_failure;
  late_failure.ops = {
      mutation::AddNode("Protein", 501),
      mutation::RemoveEdge("Encodes", 12345),  // No such edge: op 2 fails.
  };
  EXPECT_FALSE(live_->mutator->Apply(late_failure).ok());

  EXPECT_EQ(live_->mutator->generation(), 0u);
  auto after = live_->engine->Execute(probe, MethodKind::kFullTop);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->entries, before->entries);
}

TEST_F(MutationFig3Test, StatusStringReportsTheApplyAndFoldCounters) {
  ASSERT_TRUE(live_->mutator->Apply(MixedHistory()[0]).ok());
  std::string status = live_->mutator->StatusString();
  EXPECT_NE(status.find("generation: 1"), std::string::npos) << status;
  EXPECT_NE(status.find("uncompacted_generations: 1"), std::string::npos);
  EXPECT_NE(status.find("pending_pairs:"), std::string::npos);
  ASSERT_TRUE(live_->mutator->CompactNow().ok());
  status = live_->mutator->StatusString();
  EXPECT_NE(status.find("uncompacted_generations: 0"), std::string::npos)
      << status;
  EXPECT_NE(status.find("compaction_rounds: 1"), std::string::npos) << status;
}

TEST_F(MutationFig3Test, WalReplayReproducesAcknowledgedBatchesExactly) {
  const std::string path = TempWalPath("replay");
  std::remove(path.c_str());
  const std::vector<mutation::MutationBatch> history = MixedHistory();
  {
    mutation::DeltaLog wal;
    std::vector<mutation::MutationBatch> replayed;
    ASSERT_TRUE(wal.Open(path, &replayed).ok());
    live_->mutator->set_delta_log(&wal);
    for (const mutation::MutationBatch& batch : history) {
      ASSERT_TRUE(live_->mutator->ApplyLogged(batch).ok());
    }
    live_->mutator->set_delta_log(nullptr);
  }

  // A "restarted process": an identical fresh base world that recovers
  // purely from the WAL, as shard_server --wal-dir does on startup.
  std::unique_ptr<LiveWorld> recovered = MakeLiveWorld();
  mutation::DeltaLog wal;
  std::vector<mutation::MutationBatch> replayed;
  auto stats = wal.Open(path, &replayed);
  ASSERT_TRUE(stats.ok()) << stats.status();
  ASSERT_EQ(replayed.size(), history.size());
  ASSERT_TRUE(recovered->mutator->Replay(replayed).ok());
  EXPECT_EQ(recovered->mutator->generation(), history.size());

  const std::vector<engine::TopologyQuery> queries = FixtureQueries(live_->db);
  const std::vector<engine::TopologyQuery> rqueries =
      FixtureQueries(recovered->db);
  for (size_t q = 0; q < queries.size(); ++q) {
    for (MethodKind method : kAllMethods) {
      auto a = live_->engine->Execute(queries[q], method);
      auto b = recovered->engine->Execute(rqueries[q], method);
      ASSERT_EQ(a.ok(), b.ok()) << q << " "
                                << engine::MethodKindToString(method);
      if (a.ok()) {
        EXPECT_EQ(a->entries, b->entries)
            << q << " " << engine::MethodKindToString(method);
      }
    }
  }
  wal.Close();
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Sharded overlays
// ---------------------------------------------------------------------------

class ShardedMutationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ids_ = biozon::BuildFigure3Database(&db_);
    view_ = std::make_unique<graph::DataGraphView>(db_);
    schema_ = std::make_unique<graph::SchemaGraph>(db_);
  }

  std::unique_ptr<shard::ScatterGatherExecutor> MakeSharded(
      size_t n, const std::string& tag) {
    auto sharded = std::make_shared<shard::ShardedTopologyStore>(n);
    core::TopologyBuilder builder(&db_, schema_.get(), view_.get());
    core::BuildConfig build;
    build.max_path_length = 3;
    build.table_namespace = tag + std::to_string(n) + ".";
    TSB_CHECK(sharded->Build(&builder, build).ok());
    core::PruneConfig prune;
    prune.frequency_threshold = 0;
    for (size_t i = 0; i < n; ++i) {
      auto snapshot = sharded->Snapshot(i);
      std::vector<std::pair<storage::EntityTypeId, storage::EntityTypeId>>
          keys;
      for (const auto& [key, pair] : snapshot->pairs()) keys.push_back(key);
      for (const auto& [t1, t2] : keys) {
        TSB_CHECK(core::PruneFrequentTopologies(&db_, snapshot.get(), t1, t2,
                                                prune)
                      .ok());
      }
    }
    return std::make_unique<shard::ScatterGatherExecutor>(
        &db_, sharded, schema_.get(), view_.get(),
        biozon::MakeBiozonDomainKnowledge(ids_),
        engine::SqlBaselineOptions{}, shard::ScatterGatherConfig{});
  }

  storage::Catalog db_;
  biozon::BiozonSchema ids_;
  std::unique_ptr<graph::DataGraphView> view_;
  std::unique_ptr<graph::SchemaGraph> schema_;
};

TEST_F(ShardedMutationTest, OverlayMatchesFromScratchAtOneAndFourShards) {
  const std::vector<mutation::MutationBatch> history = MixedHistory();
  for (size_t n : {1u, 4u}) {
    auto executor = MakeSharded(n, "mm");
    std::vector<std::shared_ptr<core::StoreHandle>> handles;
    for (size_t i = 0; i < n; ++i) {
      handles.push_back(executor->mutable_store()->handle(i));
    }
    mutation::MutationEngine::Options options;
    options.build.max_path_length = 3;
    mutation::MutationEngine mutator(&db_, schema_.get(), handles, options);
    for (const mutation::MutationBatch& batch : history) {
      auto stats = mutator.Apply(batch);
      ASSERT_TRUE(stats.ok()) << n << " shards: " << stats.status();
    }

    auto oracle = BuildMutatedOracle(
        history, executor->mutable_store()->Snapshot(0)->catalog());
    const std::vector<engine::TopologyQuery> queries = FixtureQueries(db_);
    const std::vector<engine::TopologyQuery> oqueries =
        FixtureQueries(oracle->db);
    for (size_t q = 0; q < queries.size(); ++q) {
      for (MethodKind method : kAllMethods) {
        auto a = executor->Execute(queries[q], method);
        auto b = oracle->engine->Execute(oqueries[q], method);
        ASSERT_EQ(a.ok(), b.ok())
            << n << " shards, query " << q << " "
            << engine::MethodKindToString(method);
        if (!a.ok()) continue;
        EXPECT_EQ(a->entries, b->entries)
            << n << " shards, query " << q << " "
            << engine::MethodKindToString(method);
        EXPECT_FALSE(a->partial);
      }
    }

    // Rolling per-shard compaction preserves the identity.
    auto fold = mutator.CompactNow();
    ASSERT_TRUE(fold.ok()) << fold.status();
    for (size_t q = 0; q < queries.size(); ++q) {
      for (MethodKind method : kAllMethods) {
        auto a = executor->Execute(queries[q], method);
        auto b = oracle->engine->Execute(oqueries[q], method);
        ASSERT_EQ(a.ok(), b.ok());
        if (a.ok()) {
          EXPECT_EQ(a->entries, b->entries)
              << "post-fold " << n << " shards, query " << q << " "
              << engine::MethodKindToString(method);
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Service integration: ApplyMutations + per-pair cache retention
// ---------------------------------------------------------------------------

class ServiceMutationTest : public ::testing::Test {
 protected:
  void SetUp() override { live_ = MakeLiveWorld(); }

  engine::TopologyQuery ProteinUnigene() const {
    engine::TopologyQuery q;
    q.entity_set1 = "Protein";
    q.entity_set2 = "Unigene";
    q.scheme = core::RankScheme::kFreq;
    q.k = 10;
    return q;
  }

  engine::TopologyQuery ProteinDnaTyped() const {
    engine::TopologyQuery q;
    q.entity_set1 = "Protein";
    q.entity_set2 = "DNA";
    q.pred2 = storage::MakeEquals(live_->db.GetTable("DNA")->schema(), "TYPE",
                                  storage::Value("mRNA"));
    q.scheme = core::RankScheme::kFreq;
    q.k = 10;
    return q;
  }

  std::unique_ptr<LiveWorld> live_;
};

TEST_F(ServiceMutationTest, ApplyMutationsEvictsDirtyPairsAndKeepsCleanOnes) {
  service::TopologyService svc(live_->engine.get(), &live_->db,
                               service::ServiceConfig{});
  ASSERT_TRUE(svc.AttachLiveStore(live_->schema.get(), live_->view.get()).ok());
  mutation::MutationEngine::Options options;
  options.build.max_path_length = 3;
  ASSERT_TRUE(svc.EnableMutations(options).ok());
  ASSERT_NE(svc.mutation_engine(), nullptr);
  // Double enable is rejected.
  EXPECT_FALSE(svc.EnableMutations(options).ok());

  // Warm both pairs.
  auto pu_cold = svc.Execute(ProteinUnigene(), MethodKind::kFullTop);
  ASSERT_TRUE(pu_cold.result.ok());
  EXPECT_FALSE(pu_cold.from_cache);
  auto pd_cold = svc.Execute(ProteinDnaTyped(), MethodKind::kFullTop);
  ASSERT_TRUE(pd_cold.result.ok());
  EXPECT_FALSE(pd_cold.from_cache);
  EXPECT_TRUE(svc.Execute(ProteinUnigene(), MethodKind::kFullTop).from_cache);
  EXPECT_TRUE(svc.Execute(ProteinDnaTyped(), MethodKind::kFullTop).from_cache);

  // A DNA attribute flip invalidates only pairs that can read DNA bytes:
  // Protein-DNA is evicted, Protein-Unigene survives in cache.
  mutation::MutationBatch batch;
  batch.ops = {mutation::UpdateAttribute("DNA", 215, "TYPE",
                                         storage::Value(std::string("rRNA")))};
  auto stats = svc.ApplyMutations(batch);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->structural_pairs, 0u);
  EXPECT_GT(stats->cache_only_pairs, 0u);

  auto pu_warm = svc.Execute(ProteinUnigene(), MethodKind::kFullTop);
  ASSERT_TRUE(pu_warm.result.ok());
  EXPECT_TRUE(pu_warm.from_cache)
      << "clean-pair cache entries must survive a mutation";
  EXPECT_EQ(pu_warm.result->entries, pu_cold.result->entries);

  auto pd_fresh = svc.Execute(ProteinDnaTyped(), MethodKind::kFullTop);
  ASSERT_TRUE(pd_fresh.result.ok());
  EXPECT_FALSE(pd_fresh.from_cache)
      << "dirty-pair cache entries must be evicted";
  // DNA 215 no longer matches TYPE = mRNA; the live engine agrees.
  auto direct = live_->engine->Execute(ProteinDnaTyped(), MethodKind::kFullTop);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(pd_fresh.result->entries, direct->entries);
  EXPECT_NE(pd_fresh.result->entries, pd_cold.result->entries)
      << "the attribute flip must be observable through the predicate";

  // The re-computed result is cached under the pair's new generation.
  EXPECT_TRUE(svc.Execute(ProteinDnaTyped(), MethodKind::kFullTop).from_cache);
}

TEST_F(ServiceMutationTest, ApplyMutationsRequiresEnableMutations) {
  service::TopologyService svc(live_->engine.get(), &live_->db,
                               service::ServiceConfig{});
  mutation::MutationBatch batch;
  batch.ops = {mutation::RemoveEdge("Uni_contains", 93)};
  auto stats = svc.ApplyMutations(batch);
  EXPECT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace tsb
