// Reproduces the paper's worked examples (Sections 1-4) on the literal
// Figure-3 database: path sets, equivalence classes, the topologies T1-T4 of
// Figure 5, the AllTops/LeftTops/ExcpTops contents of Figures 9 and 13, and
// instance retrieval.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "biozon/fig3.h"
#include "core/builder.h"
#include "core/instance_retrieval.h"
#include "core/pair_topologies.h"
#include "core/pruner.h"
#include "core/store.h"
#include "core/topology.h"
#include "graph/canonical.h"
#include "graph/data_graph.h"
#include "graph/schema_graph.h"

namespace tsb {
namespace {

using biozon::BiozonSchema;
using graph::LabeledGraph;

class Fig3CoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ids_ = biozon::BuildFigure3Database(&db_);
    view_ = std::make_unique<graph::DataGraphView>(db_);
    schema_ = std::make_unique<graph::SchemaGraph>(db_);
  }

  /// Builds the (Protein, DNA) pair with generous limits.
  void Build() {
    core::TopologyBuilder builder(&db_, schema_.get(), view_.get());
    core::BuildConfig config;
    config.max_path_length = 3;
    ASSERT_TRUE(
        builder.BuildPair(ids_.protein, ids_.dna, config, &store_).ok());
    pair_ = store_.FindPair(ids_.protein, ids_.dna);
    ASSERT_NE(pair_, nullptr);
  }

  // --- Expected topology graphs (Figure 5) -------------------------------
  LabeledGraph T1() const {  // Protein -encodes- DNA.
    LabeledGraph g;
    auto p = g.AddNode(ids_.protein);
    auto d = g.AddNode(ids_.dna);
    g.AddEdge(p, d, ids_.encodes);
    return g;
  }
  LabeledGraph T2() const {  // P -uni_encodes- U -uni_contains- D.
    LabeledGraph g;
    auto p = g.AddNode(ids_.protein);
    auto u = g.AddNode(ids_.unigene);
    auto d = g.AddNode(ids_.dna);
    g.AddEdge(u, p, ids_.uni_encodes);
    g.AddEdge(u, d, ids_.uni_contains);
    return g;
  }
  LabeledGraph T3() const {  // l2 and l6 sharing the Unigene.
    LabeledGraph g;
    auto p1 = g.AddNode(ids_.protein);
    auto u = g.AddNode(ids_.unigene);
    auto d = g.AddNode(ids_.dna);
    auto p2 = g.AddNode(ids_.protein);
    g.AddEdge(u, p1, ids_.uni_encodes);
    g.AddEdge(u, d, ids_.uni_contains);
    g.AddEdge(u, p2, ids_.uni_encodes);
    g.AddEdge(p2, d, ids_.encodes);
    return g;
  }
  LabeledGraph T4() const {  // l3 and l6, disjoint intermediates.
    LabeledGraph g;
    auto p1 = g.AddNode(ids_.protein);
    auto u1 = g.AddNode(ids_.unigene);
    auto d = g.AddNode(ids_.dna);
    auto u2 = g.AddNode(ids_.unigene);
    auto p2 = g.AddNode(ids_.protein);
    g.AddEdge(u1, p1, ids_.uni_encodes);
    g.AddEdge(u1, d, ids_.uni_contains);
    g.AddEdge(u2, p1, ids_.uni_encodes);
    g.AddEdge(u2, p2, ids_.uni_encodes);
    g.AddEdge(p2, d, ids_.encodes);
    return g;
  }
  /// Pair (34, 215): direct encodes edge plus the Unigene route — the
  /// triangle topology that exists in AllTops but not in the query result.
  LabeledGraph Triangle34() const {
    LabeledGraph g;
    auto p = g.AddNode(ids_.protein);
    auto u = g.AddNode(ids_.unigene);
    auto d = g.AddNode(ids_.dna);
    g.AddEdge(p, d, ids_.encodes);
    g.AddEdge(u, p, ids_.uni_encodes);
    g.AddEdge(u, d, ids_.uni_contains);
    return g;
  }

  core::Tid TidOf(const LabeledGraph& g) const {
    auto tid = store_.catalog().FindByCode(graph::CanonicalCode(g));
    return tid.has_value() ? *tid : core::kNoTid;
  }

  storage::Catalog db_;
  BiozonSchema ids_;
  std::unique_ptr<graph::DataGraphView> view_;
  std::unique_ptr<graph::SchemaGraph> schema_;
  core::TopologyStore store_;
  const core::PairTopologyData* pair_ = nullptr;
};

// --- Definitions 1-2 via ComputePairTopologies ------------------------------

TEST_F(Fig3CoreTest, PathEquivalenceClassesOfPair78_215) {
  core::PairComputeLimits limits;
  core::PairComputation computed =
      core::ComputePairTopologies(*view_, *schema_, 78, 215, limits);
  // Two equivalence classes: {l2, l3} and {l6} (Definition 1 example).
  ASSERT_EQ(computed.classes.size(), 2u);
  std::multiset<size_t> class_sizes;
  for (const auto& [key, reps] : computed.classes) {
    class_sizes.insert(reps.size());
  }
  EXPECT_EQ(class_sizes, (std::multiset<size_t>{1, 2}));
  EXPECT_FALSE(computed.truncated);
}

TEST_F(Fig3CoreTest, TopologiesOfPair78_215AreT3AndT4) {
  core::PairComputeLimits limits;
  core::PairComputation computed =
      core::ComputePairTopologies(*view_, *schema_, 78, 215, limits);
  ASSERT_EQ(computed.topologies.size(), 2u);
  std::set<std::string> codes;
  for (const auto& topo : computed.topologies) {
    codes.insert(topo.code);
    EXPECT_EQ(topo.num_classes, 2u);
  }
  EXPECT_TRUE(codes.count(graph::CanonicalCode(T3())));
  EXPECT_TRUE(codes.count(graph::CanonicalCode(T4())));
  // T2 is *not* in 3-Top(78, 215): the pair is related by the more complex
  // topologies (the subtlety Section 4.2.2 is built around).
  EXPECT_FALSE(codes.count(graph::CanonicalCode(T2())));
}

TEST_F(Fig3CoreTest, SingleClassPairsYieldPathTopologies) {
  core::PairComputeLimits limits;
  auto c32 = core::ComputePairTopologies(*view_, *schema_, 32, 214, limits);
  ASSERT_EQ(c32.topologies.size(), 1u);
  EXPECT_EQ(c32.topologies[0].code, graph::CanonicalCode(T1()));

  auto c44 = core::ComputePairTopologies(*view_, *schema_, 44, 742, limits);
  ASSERT_EQ(c44.topologies.size(), 1u);
  EXPECT_EQ(c44.topologies[0].code, graph::CanonicalCode(T2()));
  // Two isomorphic paths (l4, l5) collapse into one class.
  ASSERT_EQ(c44.classes.size(), 1u);
  EXPECT_EQ(c44.classes.begin()->second.size(), 2u);
}

TEST_F(Fig3CoreTest, UnrelatedPairHasNoTopologies) {
  core::PairComputeLimits limits;
  auto c = core::ComputePairTopologies(*view_, *schema_, 32, 742, limits);
  EXPECT_TRUE(c.topologies.empty());
  EXPECT_TRUE(c.classes.empty());
}

// --- The offline build (Section 4.1) -----------------------------------------

TEST_F(Fig3CoreTest, BuildProducesExactlyFiveTopologies) {
  Build();
  // T1-T4 of the paper plus the (34, 215) triangle.
  EXPECT_EQ(store_.catalog().size(), 5u);
  EXPECT_NE(TidOf(T1()), core::kNoTid);
  EXPECT_NE(TidOf(T2()), core::kNoTid);
  EXPECT_NE(TidOf(T3()), core::kNoTid);
  EXPECT_NE(TidOf(T4()), core::kNoTid);
  EXPECT_NE(TidOf(Triangle34()), core::kNoTid);
}

TEST_F(Fig3CoreTest, AllTopsRowsMatchFigure9) {
  Build();
  const storage::Table& alltops = *db_.GetTable(pair_->alltops_table);
  std::set<std::tuple<int64_t, int64_t, core::Tid>> rows;
  for (size_t i = 0; i < alltops.num_rows(); ++i) {
    rows.insert({alltops.GetInt64(i, 0), alltops.GetInt64(i, 1),
                 alltops.GetInt64(i, 2)});
  }
  std::set<std::tuple<int64_t, int64_t, core::Tid>> expected = {
      {32, 214, TidOf(T1())},       {78, 215, TidOf(T3())},
      {78, 215, TidOf(T4())},       {34, 215, TidOf(Triangle34())},
      {44, 742, TidOf(T2())},
  };
  EXPECT_EQ(rows, expected);
}

TEST_F(Fig3CoreTest, FrequenciesCountRelatedPairs) {
  Build();
  EXPECT_EQ(pair_->freq.at(TidOf(T1())), 1u);
  EXPECT_EQ(pair_->freq.at(TidOf(T2())), 1u);
  EXPECT_EQ(pair_->freq.at(TidOf(T3())), 1u);
  EXPECT_EQ(pair_->freq.at(TidOf(T4())), 1u);
  EXPECT_EQ(pair_->num_related_pairs, 4u);  // Four connected pairs.
}

TEST_F(Fig3CoreTest, PairClassesRecordsMultiClassPairsOnly) {
  Build();
  const storage::Table& pc = *db_.GetTable(pair_->pairclasses_table);
  std::set<std::pair<int64_t, int64_t>> pairs;
  for (size_t i = 0; i < pc.num_rows(); ++i) {
    pairs.insert({pc.GetInt64(i, 0), pc.GetInt64(i, 1)});
  }
  // (78, 215) and (34, 215) have two classes each; single-class pairs are
  // not recorded.
  EXPECT_EQ(pc.num_rows(), 4u);
  EXPECT_EQ(pairs,
            (std::set<std::pair<int64_t, int64_t>>{{78, 215}, {34, 215}}));
}

TEST_F(Fig3CoreTest, PathShapeClassification) {
  Build();
  const core::TopologyCatalog& catalog = store_.catalog();
  EXPECT_TRUE(catalog.Get(TidOf(T1())).is_path);
  EXPECT_TRUE(catalog.Get(TidOf(T2())).is_path);
  EXPECT_FALSE(catalog.Get(TidOf(T3())).is_path);
  EXPECT_FALSE(catalog.Get(TidOf(T4())).is_path);
  EXPECT_FALSE(catalog.Get(TidOf(Triangle34())).is_path);
}

TEST_F(Fig3CoreTest, ExtractSchemaPathRecoversT2) {
  Build();
  const core::TopologyInfo& info = store_.catalog().Get(TidOf(T2()));
  auto sp = core::ExtractSchemaPath(info.graph, *schema_);
  ASSERT_TRUE(sp.has_value());
  EXPECT_EQ(sp->length(), 2u);
  // Direction-invariant identity via the class key.
  graph::SchemaPath expected;
  expected.node_types = {ids_.protein, ids_.unigene, ids_.dna};
  expected.steps = {{ids_.uni_encodes, false}, {ids_.uni_contains, true}};
  EXPECT_EQ(schema_->PathClassKey(*sp), schema_->PathClassKey(expected));
}

TEST_F(Fig3CoreTest, BuilderRejectsDuplicatePair) {
  Build();
  core::TopologyBuilder builder(&db_, schema_.get(), view_.get());
  core::BuildConfig config;
  EXPECT_EQ(builder.BuildPair(ids_.protein, ids_.dna, config, &store_)
                .code(),
            StatusCode::kAlreadyExists);
}

// --- Pruning (Section 4.2.2, Figure 13) --------------------------------------

TEST_F(Fig3CoreTest, PruningSplitsLeftAndExceptionTables) {
  Build();
  core::PruneConfig config;
  config.frequency_threshold = 0;  // Prune every path-shaped topology.
  auto stats =
      core::PruneFrequentTopologies(&db_, &store_, ids_.protein, ids_.dna,
                                    config);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->pruned_topologies, 2u);  // T1 and T2.
  EXPECT_EQ(stats->alltops_rows, 5u);
  EXPECT_EQ(stats->lefttops_rows, 3u);  // T3, T4, triangle rows.

  // Figure 13: (78, 215) satisfies T2's path condition but is related by
  // the more complex T3/T4, so it must appear in ExcpTops; (44, 742) is
  // genuinely related by T2 and must not.
  const storage::Table& excp = *db_.GetTable(pair_->excptops_table);
  std::set<std::tuple<int64_t, int64_t, core::Tid>> rows;
  for (size_t i = 0; i < excp.num_rows(); ++i) {
    rows.insert({excp.GetInt64(i, 0), excp.GetInt64(i, 1),
                 excp.GetInt64(i, 2)});
  }
  EXPECT_TRUE(rows.count({78, 215, TidOf(T2())}));
  EXPECT_FALSE(rows.count({44, 742, TidOf(T2())}));
  // The (34, 215) pair also satisfies both pruned path conditions.
  EXPECT_TRUE(rows.count({34, 215, TidOf(T1())}));
  EXPECT_TRUE(rows.count({34, 215, TidOf(T2())}));
  EXPECT_EQ(rows.size(), 3u);
}

TEST_F(Fig3CoreTest, PruningIsIdempotentGuard) {
  Build();
  core::PruneConfig config;
  ASSERT_TRUE(core::PruneFrequentTopologies(&db_, &store_, ids_.protein,
                                            ids_.dna, config)
                  .ok());
  EXPECT_EQ(core::PruneFrequentTopologies(&db_, &store_, ids_.protein,
                                          ids_.dna, config)
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(Fig3CoreTest, HighThresholdPrunesNothing) {
  Build();
  core::PruneConfig config;
  config.frequency_threshold = 1000;
  auto stats = core::PruneFrequentTopologies(&db_, &store_, ids_.protein,
                                             ids_.dna, config);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->pruned_topologies, 0u);
  EXPECT_EQ(stats->lefttops_rows, stats->alltops_rows);
  EXPECT_EQ(stats->excptops_rows, 0u);
}

// --- Instance retrieval (Section 6.2.4) ---------------------------------------

TEST_F(Fig3CoreTest, RetrieveInstancesOfT3) {
  Build();
  auto instances = core::RetrieveInstances(db_, store_, *schema_, *view_,
                                           ids_.protein, ids_.dna,
                                           TidOf(T3()));
  ASSERT_EQ(instances.size(), 1u);
  EXPECT_EQ(instances[0].a, 78);
  EXPECT_EQ(instances[0].b, 215);
  std::set<graph::EntityId> nodes(instances[0].node_ids.begin(),
                                  instances[0].node_ids.end());
  EXPECT_EQ(nodes, (std::set<graph::EntityId>{78, 103, 34, 215}));
}

TEST_F(Fig3CoreTest, RetrieveInstancesOfPathTopology) {
  Build();
  auto instances = core::RetrieveInstances(db_, store_, *schema_, *view_,
                                           ids_.protein, ids_.dna,
                                           TidOf(T2()));
  // Only pair (44, 742) adheres to T2; it has two witnesses (via unigene
  // 188 and via 194), each a choice of representative.
  ASSERT_GE(instances.size(), 1u);
  for (const auto& instance : instances) {
    EXPECT_EQ(instance.a, 44);
    EXPECT_EQ(instance.b, 742);
  }
}

TEST_F(Fig3CoreTest, CatalogDescribeMentionsRelationshipNames) {
  Build();
  std::string desc = store_.catalog().Describe(TidOf(T3()), *schema_);
  EXPECT_NE(desc.find("Uni_encodes"), std::string::npos);
  EXPECT_NE(desc.find("Encodes"), std::string::npos);
}

TEST_F(Fig3CoreTest, ExportTopInfoTable) {
  Build();
  store_.ExportTopInfoTable(&db_, *schema_);
  const storage::Table* info = db_.FindTable("TopInfo");
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->num_rows(), 5u);
  // Path flags match the catalog.
  size_t path_count = 0;
  for (size_t i = 0; i < info->num_rows(); ++i) {
    if (info->GetInt64(i, 4) == 1) ++path_count;
  }
  EXPECT_EQ(path_count, 2u);  // T1 and T2.
}

}  // namespace
}  // namespace tsb
