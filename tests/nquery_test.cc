// Tests for the 3-query (multi-endpoint) extension: the paper's Section-8
// future-work item, generalized as documented in engine/nquery.h.

#include <gtest/gtest.h>

#include <set>

#include "biozon/fig3.h"
#include "biozon/generator.h"
#include "core/builder.h"
#include "engine/nquery.h"
#include "graph/data_graph.h"
#include "graph/schema_graph.h"

namespace tsb {
namespace {

class TripleQueryFig3Test : public ::testing::Test {
 protected:
  void SetUp() override {
    ids_ = biozon::BuildFigure3Database(&db_);
    view_ = std::make_unique<graph::DataGraphView>(db_);
    schema_ = std::make_unique<graph::SchemaGraph>(db_);
    core::TopologyBuilder builder(&db_, schema_.get(), view_.get());
    core::BuildConfig build;
    build.max_path_length = 3;
    for (auto [a, b] : {std::make_pair(ids_.protein, ids_.dna),
                        std::make_pair(ids_.protein, ids_.unigene),
                        std::make_pair(ids_.unigene, ids_.dna)}) {
      ASSERT_TRUE(builder.BuildPair(a, b, build, &store_).ok());
    }
  }

  engine::TripleQuery Query() {
    engine::TripleQuery q;
    q.entity_set1 = "Protein";
    q.entity_set2 = "Unigene";
    q.entity_set3 = "DNA";
    return q;
  }

  storage::Catalog db_;
  biozon::BiozonSchema ids_;
  std::unique_ptr<graph::DataGraphView> view_;
  std::unique_ptr<graph::SchemaGraph> schema_;
  core::TopologyStore store_;
};

TEST_F(TripleQueryFig3Test, FindsConnectedTriples) {
  auto result = engine::ExecuteTripleQuery(&db_, &store_, *schema_, *view_,
                                           Query());
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GT(result->triples_examined, 0u);
  ASSERT_FALSE(result->entries.empty());
  // Every triple topology is connected and spans all three queried types.
  for (const auto& entry : result->entries) {
    const core::TopologyInfo& info = store_.catalog().Get(entry.tid);
    EXPECT_TRUE(info.graph.IsConnected());
    std::set<uint32_t> types(info.graph.node_labels().begin(),
                             info.graph.node_labels().end());
    EXPECT_TRUE(types.count(ids_.protein));
    EXPECT_TRUE(types.count(ids_.unigene));
    EXPECT_TRUE(types.count(ids_.dna));
    EXPECT_GT(entry.frequency, 0u);
  }
}

TEST_F(TripleQueryFig3Test, PredicatesRestrictTriples) {
  engine::TripleQuery constrained = Query();
  constrained.pred1 = storage::MakeContainsKeyword(
      db_.GetTable("Protein")->schema(), "DESC", "enzyme");
  auto all = engine::ExecuteTripleQuery(&db_, &store_, *schema_, *view_,
                                        Query());
  auto some = engine::ExecuteTripleQuery(&db_, &store_, *schema_, *view_,
                                         constrained);
  ASSERT_TRUE(all.ok());
  ASSERT_TRUE(some.ok());
  EXPECT_LE(some->triples_examined, all->triples_examined);

  engine::TripleQuery impossible = Query();
  impossible.pred1 = storage::MakeContainsKeyword(
      db_.GetTable("Protein")->schema(), "DESC", "absentkeyword");
  auto none = engine::ExecuteTripleQuery(&db_, &store_, *schema_, *view_,
                                         impossible);
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->entries.empty());
  EXPECT_EQ(none->triples_examined, 0u);
}

TEST_F(TripleQueryFig3Test, Triple_44_188_742_AllThreePairsRelated) {
  // (44, 188) via uni_encodes, (44, 742) via the Unigene route, (188, 742)
  // via uni_contains: the merged witness must contain the four entities
  // 44, 188, 194, 742 in at least one triple topology's instance (the
  // second P-U path 44-194-742-188 drags 194 in).
  engine::TripleQuery q = Query();
  q.pred1 = storage::MakeEquals(db_.GetTable("Protein")->schema(), "ID",
                                storage::Value(int64_t{44}));
  q.pred2 = storage::MakeEquals(db_.GetTable("Unigene")->schema(), "ID",
                                storage::Value(int64_t{188}));
  q.pred3 = storage::MakeEquals(db_.GetTable("DNA")->schema(), "ID",
                                storage::Value(int64_t{742}));
  auto result = engine::ExecuteTripleQuery(&db_, &store_, *schema_, *view_,
                                           q);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->triples_examined, 1u);
  ASSERT_FALSE(result->entries.empty());
  for (const auto& entry : result->entries) {
    const core::TopologyInfo& info = store_.catalog().Get(entry.tid);
    EXPECT_GE(info.graph.num_nodes(), 3u);
  }
}

TEST_F(TripleQueryFig3Test, RejectsDuplicateEntityTypes) {
  engine::TripleQuery q = Query();
  q.entity_set2 = "Protein";
  auto result =
      engine::ExecuteTripleQuery(&db_, &store_, *schema_, *view_, q);
  EXPECT_EQ(result.status().code(), StatusCode::kUnimplemented);
}

TEST_F(TripleQueryFig3Test, RejectsUnknownEntitySet) {
  engine::TripleQuery q = Query();
  q.entity_set3 = "Nope";
  auto result =
      engine::ExecuteTripleQuery(&db_, &store_, *schema_, *view_, q);
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(TripleQuerySyntheticTest, InvariantsOnGeneratedDatabase) {
  storage::Catalog db;
  biozon::GeneratorConfig config;
  config.seed = 55;
  config.scale = 0.04;
  biozon::BiozonSchema ids = biozon::GenerateBiozon(config, &db);
  graph::DataGraphView view(db);
  graph::SchemaGraph schema(db);
  core::TopologyStore store;
  core::TopologyBuilder builder(&db, &schema, &view);
  core::BuildConfig build;
  build.max_path_length = 2;
  for (auto [a, b] : {std::make_pair(ids.protein, ids.dna),
                      std::make_pair(ids.protein, ids.interaction),
                      std::make_pair(ids.dna, ids.interaction)}) {
    ASSERT_TRUE(builder.BuildPair(a, b, build, &store).ok());
  }
  engine::TripleQuery q;
  q.entity_set1 = "Protein";
  q.entity_set2 = "DNA";
  q.entity_set3 = "Interaction";
  q.max_triples = 2000;
  auto result = engine::ExecuteTripleQuery(&db, &store, schema, view, q);
  ASSERT_TRUE(result.ok());
  // Frequencies sum to at least the number of entries and no entry exceeds
  // the number of triples examined.
  size_t freq_sum = 0;
  for (const auto& entry : result->entries) {
    EXPECT_LE(entry.frequency, result->triples_examined);
    freq_sum += entry.frequency;
  }
  EXPECT_GE(freq_sum, result->entries.size());
  // Entries sorted by frequency desc, tid asc.
  for (size_t i = 1; i < result->entries.size(); ++i) {
    bool ordered =
        result->entries[i - 1].frequency > result->entries[i].frequency ||
        (result->entries[i - 1].frequency == result->entries[i].frequency &&
         result->entries[i - 1].tid < result->entries[i].tid);
    EXPECT_TRUE(ordered);
  }
}

}  // namespace
}  // namespace tsb
