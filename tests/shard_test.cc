// The sharded topology store (src/shard/): hash partitioning, the shard
// router, scatter-gather ranked execution, and the service integration —
// including the tentpole contract that sharded execution returns
// byte-identical ranked results to the single-store engine for every
// method at N ∈ {1, 2, 4, 7} shards, and that a sharded rebuild rolls
// shards behind live traffic with zero failed queries.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "biozon/domain.h"
#include "biozon/fig3.h"
#include "biozon/generator.h"
#include "core/builder.h"
#include "core/pruner.h"
#include "engine/engine.h"
#include "engine/nquery.h"
#include "service/service.h"
#include "shard/router.h"
#include "shard/scatter_gather.h"
#include "shard/sharded_store.h"

namespace tsb {
namespace {

using engine::MethodKind;
using engine::ResultEntry;

const std::vector<MethodKind> kAllMethods = {
    MethodKind::kSql,         MethodKind::kFullTop,
    MethodKind::kFastTop,     MethodKind::kFullTopK,
    MethodKind::kFastTopK,    MethodKind::kFullTopKEt,
    MethodKind::kFastTopKEt,  MethodKind::kFullTopKOpt,
    MethodKind::kFastTopKOpt,
};

const std::vector<core::RankScheme> kAllSchemes = {
    core::RankScheme::kFreq, core::RankScheme::kRare,
    core::RankScheme::kDomain};

// ---------------------------------------------------------------------------
// Partitioning function
// ---------------------------------------------------------------------------

TEST(ShardOfEntityPairTest, OrientationInsensitiveAndStable) {
  EXPECT_EQ(core::ShardOfEntityPair(32, 214, 4),
            core::ShardOfEntityPair(214, 32, 4));
  EXPECT_EQ(core::ShardOfEntityPair(7, 7, 5), core::ShardOfEntityPair(7, 7, 5));
  // Single shard owns everything.
  for (int64_t e = 0; e < 50; ++e) {
    EXPECT_EQ(core::ShardOfEntityPair(e, e + 1, 1), 0u);
  }
  // Deterministic across calls, and within range.
  for (size_t n : {2u, 4u, 7u}) {
    for (int64_t e = 0; e < 100; ++e) {
      size_t owner = core::ShardOfEntityPair(e, 1000 - e, n);
      EXPECT_LT(owner, n);
      EXPECT_EQ(owner, core::ShardOfEntityPair(e, 1000 - e, n));
    }
  }
}

TEST(ShardOfEntityPairTest, SpreadsAcrossShards) {
  // 500 distinct pairs over 7 shards must touch every shard.
  std::set<size_t> touched;
  for (int64_t e = 0; e < 500; ++e) {
    touched.insert(core::ShardOfEntityPair(e, e * 31 + 7, 7));
  }
  EXPECT_EQ(touched.size(), 7u);
}

// ---------------------------------------------------------------------------
// MergeRankedPartials
// ---------------------------------------------------------------------------

TEST(MergeRankedPartialsTest, InterleavesByScoreThenTid) {
  std::vector<std::vector<ResultEntry>> partials = {
      {{1, 9.0}, {4, 5.0}, {6, 1.0}},
      {{2, 8.0}, {3, 5.0}, {5, 5.0}},
  };
  std::vector<ResultEntry> merged =
      shard::MergeRankedPartials(partials, SIZE_MAX);
  std::vector<ResultEntry> expected = {{1, 9.0}, {2, 8.0}, {3, 5.0},
                                       {4, 5.0}, {5, 5.0}, {6, 1.0}};
  EXPECT_EQ(merged, expected);
}

TEST(MergeRankedPartialsTest, CollapsesDuplicates) {
  // The same topology witnessed on three shards appears once.
  std::vector<std::vector<ResultEntry>> partials = {
      {{1, 4.0}, {2, 2.0}},
      {{1, 4.0}, {3, 3.0}},
      {{1, 4.0}, {2, 2.0}},
  };
  std::vector<ResultEntry> merged =
      shard::MergeRankedPartials(partials, SIZE_MAX);
  std::vector<ResultEntry> expected = {{1, 4.0}, {3, 3.0}, {2, 2.0}};
  EXPECT_EQ(merged, expected);
}

TEST(MergeRankedPartialsTest, HonorsLimitAfterDedup) {
  std::vector<std::vector<ResultEntry>> partials = {
      {{1, 4.0}, {2, 3.0}, {3, 2.0}},
      {{1, 4.0}, {4, 1.0}},
  };
  std::vector<ResultEntry> merged = shard::MergeRankedPartials(partials, 2);
  std::vector<ResultEntry> expected = {{1, 4.0}, {2, 3.0}};
  EXPECT_EQ(merged, expected);
}

TEST(MergeRankedPartialsTest, EmptyPartialsYieldEmpty) {
  EXPECT_TRUE(shard::MergeRankedPartials({}, 10).empty());
  EXPECT_TRUE(shard::MergeRankedPartials({{}, {}}, 10).empty());
}

// ---------------------------------------------------------------------------
// Staging split
// ---------------------------------------------------------------------------

class ShardFig3Test : public ::testing::Test {
 protected:
  void SetUp() override {
    ids_ = biozon::BuildFigure3Database(&db_);
    view_ = std::make_unique<graph::DataGraphView>(db_);
    schema_ = std::make_unique<graph::SchemaGraph>(db_);

    // Unsharded ground truth: all pairs, all pruned (threshold 0), so the
    // Fast methods work everywhere.
    core::TopologyBuilder builder(&db_, schema_.get(), view_.get());
    ASSERT_TRUE(builder.BuildAllPairs(BuildCfg(), &store_).ok());
    PruneAll(&store_);
    engine_ = std::make_unique<engine::Engine>(
        &db_, &store_, schema_.get(), view_.get(),
        core::ScoreModel(&store_.catalog(),
                         biozon::MakeBiozonDomainKnowledge(ids_)));
  }

  static core::BuildConfig BuildCfg(std::string table_namespace = "") {
    core::BuildConfig config;
    config.max_path_length = 3;
    config.table_namespace = std::move(table_namespace);
    return config;
  }

  void PruneAll(core::TopologyStore* store) {
    core::PruneConfig prune;
    prune.frequency_threshold = 0;
    std::vector<std::pair<storage::EntityTypeId, storage::EntityTypeId>> keys;
    for (const auto& [key, pair] : store->pairs()) keys.push_back(key);
    for (const auto& [t1, t2] : keys) {
      ASSERT_TRUE(
          core::PruneFrequentTopologies(&db_, store, t1, t2, prune).ok());
    }
  }

  /// A sharded replica of the ground-truth store under its own namespace
  /// ("n<N>."), pruned identically.
  std::unique_ptr<shard::ScatterGatherExecutor> MakeSharded(size_t n) {
    auto sharded = std::make_shared<shard::ShardedTopologyStore>(n);
    core::TopologyBuilder builder(&db_, schema_.get(), view_.get());
    core::BuildConfig config = BuildCfg("n" + std::to_string(n) + ".");
    EXPECT_TRUE(sharded->Build(&builder, config).ok());
    for (size_t i = 0; i < n; ++i) {
      PruneAll(sharded->Snapshot(i).get());
    }
    return std::make_unique<shard::ScatterGatherExecutor>(
        &db_, sharded, schema_.get(), view_.get(),
        biozon::MakeBiozonDomainKnowledge(ids_));
  }

  engine::TopologyQuery Query(const std::string& set1,
                              const std::string& set2,
                              core::RankScheme scheme, size_t k = 10,
                              bool with_predicates = false) const {
    engine::TopologyQuery q;
    q.entity_set1 = set1;
    q.entity_set2 = set2;
    if (with_predicates) {
      q.pred1 = storage::MakeContainsKeyword(db_.GetTable(set1)->schema(),
                                             "DESC", "enzyme");
      q.pred2 = storage::MakeEquals(db_.GetTable(set2)->schema(), "TYPE",
                                    storage::Value("mRNA"));
    }
    q.scheme = scheme;
    q.k = k;
    return q;
  }

  storage::Catalog db_;
  biozon::BiozonSchema ids_;
  std::unique_ptr<graph::DataGraphView> view_;
  std::unique_ptr<graph::SchemaGraph> schema_;
  core::TopologyStore store_;
  std::unique_ptr<engine::Engine> engine_;
};

TEST_F(ShardFig3Test, SplitStagingPartitionsRowsAndReplicatesMetadata) {
  core::TopologyBuilder builder(&db_, schema_.get(), view_.get());
  auto staged = builder.StagePair(ids_.protein, ids_.dna, BuildCfg("x."));
  ASSERT_TRUE(staged.ok());

  const size_t n = 4;
  std::vector<core::PairBuildStaging> slices =
      core::SplitStagingForShards(*staged, n);
  ASSERT_EQ(slices.size(), n);

  size_t total_rows = 0;
  for (size_t i = 0; i < n; ++i) {
    const core::PairBuildStaging& slice = slices[i];
    // Tables re-namespaced per shard, inside the base namespace.
    EXPECT_EQ(slice.data.table_namespace, "x.s" + std::to_string(i) + ".");
    EXPECT_EQ(slice.data.alltops_table,
              slice.data.table_namespace + "AllTops_" +
                  staged->data.pair_name);
    // Rows on their owning shard only.
    for (const core::PairBuildStaging::Row& row : slice.alltops_rows) {
      EXPECT_EQ(core::ShardOfEntityPair(row.e1, row.e2, n), i);
    }
    total_rows += slice.alltops_rows.size();
    // Replicated: topology list (with global frequencies), class registry,
    // exception bookkeeping.
    ASSERT_EQ(slice.topologies.size(), staged->topologies.size());
    for (size_t t = 0; t < slice.topologies.size(); ++t) {
      EXPECT_EQ(slice.topologies[t].code, staged->topologies[t].code);
      EXPECT_EQ(slice.topologies[t].frequency,
                staged->topologies[t].frequency);
    }
    EXPECT_EQ(slice.data.classes.size(), staged->data.classes.size());
    EXPECT_EQ(slice.data.num_related_pairs, staged->data.num_related_pairs);
    EXPECT_EQ(slice.pairclasses_rows.size(),
              staged->pairclasses_rows.size());
  }
  EXPECT_EQ(total_rows, staged->alltops_rows.size());
}

TEST_F(ShardFig3Test, ShardedBuildReplicatesCatalogAndPartitionsTables) {
  for (size_t n : {1u, 2u, 4u, 7u}) {
    auto executor = MakeSharded(n);
    const shard::ShardedTopologyStore& sharded = executor->store();

    size_t rows_across_shards = 0;
    for (size_t i = 0; i < n; ++i) {
      std::shared_ptr<core::TopologyStore> snapshot = sharded.Snapshot(i);
      // Catalog replica: identical to the unsharded build's catalog.
      ASSERT_EQ(snapshot->catalog().size(), store_.catalog().size());
      for (core::Tid tid = 1;
           tid <= static_cast<core::Tid>(store_.catalog().size()); ++tid) {
        EXPECT_EQ(snapshot->catalog().Get(tid).code,
                  store_.catalog().Get(tid).code);
      }
      // Every pair registered on every shard, with global freq maps.
      ASSERT_EQ(snapshot->pairs().size(), store_.pairs().size());
      for (const auto& [key, pair] : store_.pairs()) {
        const core::PairTopologyData* replica =
            snapshot->FindPair(key.first, key.second);
        ASSERT_NE(replica, nullptr);
        EXPECT_EQ(replica->freq, pair.freq);
        EXPECT_EQ(replica->pruned_tids, pair.pruned_tids);
        rows_across_shards +=
            db_.GetTable(replica->alltops_table)->num_rows();
        // Rows hash to this shard.
        const storage::Table& alltops =
            *db_.GetTable(replica->alltops_table);
        for (size_t r = 0; r < alltops.num_rows(); ++r) {
          EXPECT_EQ(
              core::ShardOfEntityPair(alltops.GetInt64(r, 0),
                                      alltops.GetInt64(r, 1), n),
              i);
        }
      }
    }
    // The slices are a partition: row counts add up to the whole store.
    size_t unsharded_rows = 0;
    for (const auto& [key, pair] : store_.pairs()) {
      unsharded_rows += db_.GetTable(pair.alltops_table)->num_rows();
    }
    EXPECT_EQ(rows_across_shards, unsharded_rows) << n << " shards";
  }
}

// ---------------------------------------------------------------------------
// The tentpole: sharded == unsharded, every method × N ∈ {1, 2, 4, 7}
// ---------------------------------------------------------------------------

TEST_F(ShardFig3Test, EveryMethodByteIdenticalAcrossShardCounts) {
  struct Case {
    engine::TopologyQuery query;
    const char* label;
  };
  std::vector<Case> cases;
  for (core::RankScheme scheme : kAllSchemes) {
    cases.push_back({Query("Protein", "DNA", scheme, 10, true),
                     "Protein/DNA predicated"});
    cases.push_back({Query("Protein", "DNA", scheme, 2, true),
                     "Protein/DNA k=2"});
    cases.push_back(
        {Query("Protein", "Unigene", scheme, 10), "Protein/Unigene"});
    cases.push_back({Query("DNA", "Unigene", scheme, 1), "DNA/Unigene k=1"});
  }
  {
    engine::TopologyQuery weak = Query("Protein", "DNA",
                                       core::RankScheme::kDomain, 10, true);
    weak.exclude_weak = true;
    cases.push_back({weak, "Protein/DNA exclude_weak"});
  }

  for (size_t n : {1u, 2u, 4u, 7u}) {
    auto executor = MakeSharded(n);
    for (const Case& c : cases) {
      for (MethodKind method : kAllMethods) {
        auto expected = engine_->Execute(c.query, method);
        auto actual = executor->Execute(c.query, method);
        ASSERT_EQ(expected.ok(), actual.ok())
            << c.label << " " << engine::MethodKindToString(method)
            << " @" << n << " shards: " << expected.status().ToString()
            << " vs " << actual.status().ToString();
        if (!expected.ok()) continue;
        EXPECT_EQ(expected->entries, actual->entries)
            << c.label << " " << engine::MethodKindToString(method) << " @"
            << n << " shards";
      }
    }
  }
}

TEST_F(ShardFig3Test, ReversedOrientationMatchesToo) {
  // The merge must stay byte-identical when the query names the pair in
  // non-storage order (rq.swapped paths).
  auto executor = MakeSharded(4);
  for (MethodKind method : kAllMethods) {
    engine::TopologyQuery q = Query("DNA", "Protein",
                                    core::RankScheme::kFreq, 10);
    auto expected = engine_->Execute(q, method);
    auto actual = executor->Execute(q, method);
    ASSERT_TRUE(expected.ok() && actual.ok());
    EXPECT_EQ(expected->entries, actual->entries)
        << engine::MethodKindToString(method);
  }
}

TEST_F(ShardFig3Test, UnknownEntitySetSurfacesNotFound) {
  auto executor = MakeSharded(2);
  auto result = executor->Execute(
      Query("Protein", "Nope", core::RankScheme::kFreq),
      MethodKind::kFullTop);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST_F(ShardFig3Test, TripleQueriesMatchSingleStore) {
  engine::TripleQuery triple;
  triple.entity_set1 = "Protein";
  triple.entity_set2 = "Unigene";
  triple.entity_set3 = "DNA";

  auto expected = engine::ExecuteTripleQuery(&db_, &store_, *schema_, *view_,
                                             triple);
  ASSERT_TRUE(expected.ok());
  ASSERT_FALSE(expected->entries.empty());

  for (size_t n : {1u, 2u, 4u, 7u}) {
    auto executor = MakeSharded(n);
    auto actual = executor->ExecuteTriple(triple);
    ASSERT_TRUE(actual.ok()) << n << " shards";
    ASSERT_EQ(actual->entries.size(), expected->entries.size());
    for (size_t i = 0; i < expected->entries.size(); ++i) {
      EXPECT_EQ(actual->entries[i].tid, expected->entries[i].tid);
      EXPECT_EQ(actual->entries[i].frequency,
                expected->entries[i].frequency);
    }
    EXPECT_EQ(actual->triples_examined, expected->triples_examined);
  }
}

// ---------------------------------------------------------------------------
// Router
// ---------------------------------------------------------------------------

class ShardRouterTest : public ::testing::Test {
 protected:
  /// A hand-built shard set for one pair (types 0, 1): shard i holds
  /// `rows_per_shard[i]` AllTops rows.
  void BuildShards(const std::vector<size_t>& rows_per_shard) {
    storage::TableSchema row_schema(
        {{"E1", storage::ColumnType::kInt64},
         {"E2", storage::ColumnType::kInt64},
         {"TID", storage::ColumnType::kInt64}});
    int64_t next_entity = 0;
    for (size_t i = 0; i < rows_per_shard.size(); ++i) {
      auto store = std::make_shared<core::TopologyStore>();
      core::PairTopologyData data;
      data.t1 = 0;
      data.t2 = 1;
      data.pair_name = "T";
      data.alltops_table = "rt.s" + std::to_string(i) + ".AllTops_T";
      data.pairclasses_table = "rt.s" + std::to_string(i) + ".PairClasses_T";
      auto table = db_.CreateTable(data.alltops_table, row_schema);
      ASSERT_TRUE(table.ok());
      for (size_t r = 0; r < rows_per_shard[i]; ++r) {
        table.value()->AppendRowOrDie({storage::Value(next_entity++),
                                       storage::Value(next_entity++),
                                       storage::Value(int64_t{1})});
      }
      ASSERT_TRUE(store->AddPair(std::move(data)).ok());
      snapshots_.push_back(std::move(store));
    }
  }

  storage::Catalog db_;
  std::vector<std::shared_ptr<core::TopologyStore>> snapshots_;
  shard::ShardRouter router_;
};

TEST_F(ShardRouterTest, SkipsEmptyShards) {
  BuildShards({3, 0, 2, 0});
  shard::ShardRoute route =
      router_.Route(db_, snapshots_, 0, 1, MethodKind::kFullTop);
  EXPECT_EQ(route.shards, (std::vector<size_t>{0, 2}));
  EXPECT_EQ(route.designated, 0u);
  EXPECT_FALSE(route.single_shard());
}

TEST_F(ShardRouterTest, AllRowsOnOneShardDegeneratesToSingleShard) {
  BuildShards({0, 0, 5, 0});
  shard::ShardRoute route =
      router_.Route(db_, snapshots_, 0, 1, MethodKind::kFastTopK);
  EXPECT_EQ(route.shards, (std::vector<size_t>{2}));
  EXPECT_EQ(route.designated, 2u);
  EXPECT_TRUE(route.single_shard());
}

TEST_F(ShardRouterTest, NoRowsAnywhereRoutesToShardZero) {
  BuildShards({0, 0, 0});
  shard::ShardRoute route =
      router_.Route(db_, snapshots_, 0, 1, MethodKind::kFullTop);
  EXPECT_EQ(route.shards, (std::vector<size_t>{0}));
  EXPECT_TRUE(route.single_shard());
}

TEST_F(ShardRouterTest, SqlBaselineNeverScatters) {
  BuildShards({3, 4, 5});
  shard::ShardRoute route =
      router_.Route(db_, snapshots_, 0, 1, MethodKind::kSql);
  EXPECT_EQ(route.shards, (std::vector<size_t>{0}));
  EXPECT_TRUE(route.single_shard());
}

// ---------------------------------------------------------------------------
// Sharded service: cache, rebuild behind live traffic, async batches
// ---------------------------------------------------------------------------

class ShardedServiceTest : public ShardFig3Test {
 protected:
  void SetUp() override {
    ShardFig3Test::SetUp();
    executor_ = MakeSharded(4);
  }

  service::ServiceConfig SvcConfig(size_t threads = 4) const {
    service::ServiceConfig config;
    config.num_threads = threads;
    return config;
  }

  std::unique_ptr<shard::ScatterGatherExecutor> executor_;
};

TEST_F(ShardedServiceTest, ServesIdenticalResultsAndCaches) {
  service::TopologyService svc(executor_.get(), &db_, SvcConfig());
  EXPECT_TRUE(svc.sharded());
  engine::TopologyQuery q =
      Query("Protein", "DNA", core::RankScheme::kFreq, 10, true);

  auto expected = engine_->Execute(q, MethodKind::kFastTopKEt);
  ASSERT_TRUE(expected.ok());

  auto cold = svc.Execute(q, MethodKind::kFastTopKEt);
  ASSERT_TRUE(cold.result.ok());
  EXPECT_FALSE(cold.from_cache);
  EXPECT_EQ(cold.result->entries, expected->entries);

  auto warm = svc.Execute(q, MethodKind::kFastTopKEt);
  ASSERT_TRUE(warm.result.ok());
  EXPECT_TRUE(warm.from_cache);
  EXPECT_EQ(warm.result->entries, expected->entries);
}

TEST_F(ShardedServiceTest, RebuildRollsShardsAndInvalidatesCache) {
  service::TopologyService svc(executor_.get(), &db_, SvcConfig());
  engine::TopologyQuery q =
      Query("Protein", "DNA", core::RankScheme::kDomain, 10, true);
  auto before = svc.Execute(q, MethodKind::kFullTopK);
  ASSERT_TRUE(before.result.ok());
  ASSERT_TRUE(svc.Execute(q, MethodKind::kFullTopK).from_cache);

  const std::string stamp_before = executor_->store().EpochStamp();
  service::RebuildOptions rebuild;
  rebuild.build = BuildCfg();  // Namespace overridden with "e<N>."
  rebuild.prune_threshold = 0;
  auto stats = svc.Rebuild(rebuild);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->shards_swapped, 4u);
  EXPECT_EQ(stats->pairs_built, store_.pairs().size());
  EXPECT_NE(executor_->store().EpochStamp(), stamp_before);

  // Same data, new epoch: identical results, served cold (the shard-aware
  // fingerprint changed), then cached again.
  auto after = svc.Execute(q, MethodKind::kFullTopK);
  ASSERT_TRUE(after.result.ok());
  EXPECT_FALSE(after.from_cache);
  EXPECT_EQ(after.result->entries, before.result->entries);
  EXPECT_TRUE(svc.Execute(q, MethodKind::kFullTopK).from_cache);
}

TEST_F(ShardedServiceTest, RebuildBehindLiveTrafficLosesNoQueries) {
  service::TopologyService svc(executor_.get(), &db_, SvcConfig(4));

  std::vector<engine::TopologyQuery> queries = {
      Query("Protein", "DNA", core::RankScheme::kFreq, 10, true),
      Query("Protein", "Unigene", core::RankScheme::kRare, 10),
      Query("DNA", "Unigene", core::RankScheme::kDomain, 5),
  };
  const std::vector<MethodKind> methods = {
      MethodKind::kFullTop, MethodKind::kFastTopK, MethodKind::kFullTopKEt};
  std::vector<std::vector<ResultEntry>> expected;
  for (const engine::TopologyQuery& q : queries) {
    for (MethodKind m : methods) {
      auto r = engine_->Execute(q, m);
      ASSERT_TRUE(r.ok());
      expected.push_back(r->entries);
    }
  }

  std::atomic<bool> stop{false};
  std::atomic<size_t> failures{0};
  std::atomic<size_t> mismatches{0};
  std::atomic<size_t> served{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 3; ++t) {
    clients.emplace_back([&]() {
      while (!stop.load(std::memory_order_acquire)) {
        size_t index = 0;
        for (const engine::TopologyQuery& q : queries) {
          for (MethodKind m : methods) {
            auto response = svc.Submit(q, m).get();
            if (!response.result.ok()) {
              ++failures;
            } else if (response.result->entries != expected[index]) {
              ++mismatches;
            }
            ++served;
            ++index;
          }
        }
      }
    });
  }

  // Two back-to-back rebuilds while the clients hammer.
  service::RebuildOptions rebuild;
  rebuild.build = BuildCfg();
  rebuild.prune_threshold = 0;
  for (int round = 0; round < 2; ++round) {
    auto stats = svc.Rebuild(rebuild);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_EQ(stats->shards_swapped, 4u);
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& client : clients) client.join();

  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_GT(served.load(), 0u);
}

TEST_F(ShardedServiceTest, TripleQueriesFlowThroughShardSet) {
  service::TopologyService svc(executor_.get(), &db_, SvcConfig());
  engine::TripleQuery triple;
  triple.entity_set1 = "Protein";
  triple.entity_set2 = "Unigene";
  triple.entity_set3 = "DNA";
  auto expected = engine::ExecuteTripleQuery(&db_, &store_, *schema_, *view_,
                                             triple);
  ASSERT_TRUE(expected.ok());

  auto response = svc.SubmitTriple(triple).get();
  ASSERT_TRUE(response.result.ok());
  ASSERT_EQ(response.result->entries.size(), expected->entries.size());
  for (size_t i = 0; i < expected->entries.size(); ++i) {
    EXPECT_EQ(response.result->entries[i].tid, expected->entries[i].tid);
    EXPECT_EQ(response.result->entries[i].frequency,
              expected->entries[i].frequency);
  }
}

// ---------------------------------------------------------------------------
// Async batch
// ---------------------------------------------------------------------------

TEST_F(ShardedServiceTest, AsyncBatchDeliversOrderedOutcomeOnce) {
  service::TopologyService svc(executor_.get(), &db_, SvcConfig());

  std::vector<service::ParsedRequest> requests;
  std::vector<std::vector<ResultEntry>> expected;
  for (core::RankScheme scheme : kAllSchemes) {
    service::ParsedRequest req;
    req.query = Query("Protein", "DNA", scheme, 10, true);
    req.method = MethodKind::kFullTopK;
    requests.push_back(req);
    auto r = engine_->Execute(req.query, req.method);
    ASSERT_TRUE(r.ok());
    expected.push_back(r->entries);
  }

  std::promise<service::BatchOutcome> done;
  std::atomic<int> calls{0};
  svc.ExecuteBatchAsync(requests,
                        [&](service::BatchOutcome outcome) {
                          ++calls;
                          done.set_value(std::move(outcome));
                        });
  service::BatchOutcome outcome = done.get_future().get();
  EXPECT_EQ(calls.load(), 1);
  ASSERT_EQ(outcome.responses.size(), requests.size());
  EXPECT_EQ(outcome.failures, 0u);
  for (size_t i = 0; i < requests.size(); ++i) {
    ASSERT_TRUE(outcome.responses[i].result.ok());
    EXPECT_EQ(outcome.responses[i].result->entries, expected[i]);
  }
}

TEST_F(ShardedServiceTest, BlockingBatchDelegatesToAsync) {
  service::TopologyService svc(executor_.get(), &db_, SvcConfig());
  std::vector<service::ParsedRequest> requests(3);
  for (size_t i = 0; i < requests.size(); ++i) {
    requests[i].query =
        Query("Protein", "DNA", core::RankScheme::kFreq, 10, true);
    requests[i].method = MethodKind::kFullTop;
  }
  service::BatchOutcome outcome = svc.ExecuteBatch(requests);
  ASSERT_EQ(outcome.responses.size(), 3u);
  EXPECT_EQ(outcome.failures, 0u);
  // Identical requests: the later two hit the cache filled by the first
  // (or race it; either way every response is correct).
  auto expected = engine_->Execute(requests[0].query, requests[0].method);
  ASSERT_TRUE(expected.ok());
  for (const service::ServiceResponse& response : outcome.responses) {
    ASSERT_TRUE(response.result.ok());
    EXPECT_EQ(response.result->entries, expected->entries);
  }
}

TEST(AsyncBatchShutdownTest, EmptyBatchAndShutdownStillFireCallback) {
  // Minimal world: Figure-3 store, unsharded service.
  storage::Catalog db;
  biozon::BiozonSchema ids = biozon::BuildFigure3Database(&db);
  graph::DataGraphView view(db);
  graph::SchemaGraph schema(db);
  core::TopologyStore store;
  core::TopologyBuilder builder(&db, &schema, &view);
  core::BuildConfig config;
  config.max_path_length = 2;
  ASSERT_TRUE(builder.BuildPair(ids.protein, ids.dna, config, &store).ok());
  engine::Engine eng(&db, &store, &schema, &view,
                     core::ScoreModel(&store.catalog(),
                                      biozon::MakeBiozonDomainKnowledge(ids)));
  service::TopologyService svc(&eng, &db, service::ServiceConfig{});

  int empty_calls = 0;
  svc.ExecuteBatchAsync({}, [&](service::BatchOutcome outcome) {
    ++empty_calls;
    EXPECT_TRUE(outcome.responses.empty());
  });
  EXPECT_EQ(empty_calls, 1);

  svc.Shutdown();
  std::vector<service::ParsedRequest> requests(2);
  for (service::ParsedRequest& req : requests) {
    req.query.entity_set1 = "Protein";
    req.query.entity_set2 = "DNA";
    req.method = MethodKind::kFullTop;
  }
  std::promise<service::BatchOutcome> done;
  svc.ExecuteBatchAsync(requests, [&](service::BatchOutcome outcome) {
    done.set_value(std::move(outcome));
  });
  service::BatchOutcome outcome = done.get_future().get();
  EXPECT_EQ(outcome.responses.size(), 2u);
  EXPECT_EQ(outcome.failures, 2u);  // Shut down: every slot errors.
}

// ---------------------------------------------------------------------------
// Generator-backed equivalence (non-trivial row distribution)
// ---------------------------------------------------------------------------

TEST(ShardGeneratorTest, ShardedMatchesUnshardedOnSyntheticBiozon) {
  storage::Catalog db;
  biozon::GeneratorConfig gen;
  gen.scale = 0.05;
  biozon::BiozonSchema ids = biozon::GenerateBiozon(gen, &db);
  graph::DataGraphView view(db);
  graph::SchemaGraph schema(db);

  core::BuildConfig config;
  config.max_path_length = 2;
  config.max_class_representatives = 8;
  config.max_union_combinations = 256;

  core::TopologyStore store;
  core::TopologyBuilder builder(&db, &schema, &view);
  ASSERT_TRUE(builder.BuildAllPairs(config, &store).ok());
  core::PruneConfig prune;
  prune.frequency_threshold = 4;
  std::vector<std::pair<storage::EntityTypeId, storage::EntityTypeId>> keys;
  for (const auto& [key, pair] : store.pairs()) keys.push_back(key);
  for (const auto& [t1, t2] : keys) {
    ASSERT_TRUE(
        core::PruneFrequentTopologies(&db, &store, t1, t2, prune).ok());
  }
  engine::Engine eng(&db, &store, &schema, &view,
                     core::ScoreModel(&store.catalog(),
                                      biozon::MakeBiozonDomainKnowledge(ids)));

  auto sharded = std::make_shared<shard::ShardedTopologyStore>(3);
  core::BuildConfig sharded_config = config;
  sharded_config.table_namespace = "g.";
  ASSERT_TRUE(sharded->Build(&builder, sharded_config).ok());
  for (size_t i = 0; i < 3; ++i) {
    for (const auto& [key, pair] : store.pairs()) {
      ASSERT_TRUE(core::PruneFrequentTopologies(&db,
                                                sharded->Snapshot(i).get(),
                                                key.first, key.second, prune)
                      .ok());
    }
  }
  shard::ScatterGatherExecutor executor(
      &db, sharded, &schema, &view, biozon::MakeBiozonDomainKnowledge(ids));

  const std::vector<MethodKind> methods = {
      MethodKind::kFullTop, MethodKind::kFastTop, MethodKind::kFullTopK,
      MethodKind::kFastTopK, MethodKind::kFullTopKEt,
      MethodKind::kFastTopKEt};
  for (const char* set2 : {"DNA", "Unigene"}) {
    engine::TopologyQuery q;
    q.entity_set1 = "Protein";
    q.pred1 = biozon::SelectivityPredicate(db, "Protein", "medium");
    q.entity_set2 = set2;
    q.scheme = core::RankScheme::kFreq;
    q.k = 5;
    for (MethodKind method : methods) {
      auto expected = eng.Execute(q, method);
      auto actual = executor.Execute(q, method);
      ASSERT_EQ(expected.ok(), actual.ok());
      if (!expected.ok()) continue;
      EXPECT_EQ(expected->entries, actual->entries)
          << set2 << " " << engine::MethodKindToString(method);
    }
  }
}

}  // namespace
}  // namespace tsb
