// The concurrent query service (src/service/): thread pool, canonical
// fingerprints, the sharded LRU result cache, the text request parser,
// metrics, and the TopologyService frontend — including the contract that
// N concurrent clients observe results identical to sequential
// Engine::Execute.

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "biozon/domain.h"
#include "biozon/fig3.h"
#include "core/builder.h"
#include "core/pruner.h"
#include "engine/engine.h"
#include "service/metrics.h"
#include "service/query_cache.h"
#include "service/request_parser.h"
#include "service/service.h"
#include "service/thread_pool.h"

namespace tsb {
namespace {

using engine::MethodKind;

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

TEST(ThreadPoolTest, RunsTasksAndDeliversResults) {
  service::ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.Submit([i]() { return i * i; }));
  }
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(futures[i].valid());
    EXPECT_EQ(futures[i].get(), i * i);
  }
}

TEST(ThreadPoolTest, ShutdownDrainsQueuedTasks) {
  std::atomic<int> executed{0};
  {
    service::ThreadPool pool(2);
    for (int i = 0; i < 32; ++i) {
      pool.Submit([&executed]() { ++executed; });
    }
    pool.Shutdown();
  }
  EXPECT_EQ(executed.load(), 32);
}

TEST(ThreadPoolTest, SubmitAfterShutdownReturnsInvalidFuture) {
  service::ThreadPool pool(1);
  pool.Shutdown();
  std::future<int> future = pool.Submit([]() { return 1; });
  EXPECT_FALSE(future.valid());
}

TEST(ThreadPoolTest, TasksRunConcurrently) {
  service::ThreadPool pool(2);
  // Two tasks that can only finish if both run at once.
  std::promise<void> gate1, gate2;
  auto f1 = pool.Submit([&]() {
    gate1.set_value();
    gate2.get_future().wait();
  });
  auto f2 = pool.Submit([&]() {
    gate1.get_future().wait();
    gate2.set_value();
  });
  f1.get();
  f2.get();
}

// ---------------------------------------------------------------------------
// LatencyReservoir
// ---------------------------------------------------------------------------

TEST(LatencyReservoirTest, ExactStatsBelowCapacity) {
  service::LatencyReservoir reservoir;
  for (int i = 1; i <= 100; ++i) {
    reservoir.Record(static_cast<double>(i));
  }
  auto s = reservoir.Summarize();
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_NEAR(s.mean, 50.5, 1e-9);
  EXPECT_NEAR(s.p50, 50.0, 2.0);
  EXPECT_NEAR(s.p95, 95.0, 2.0);
}

TEST(LatencyReservoirTest, CountStaysExactPastCapacity) {
  service::LatencyReservoir reservoir;
  for (int i = 0; i < 5000; ++i) reservoir.Record(1.0);
  auto s = reservoir.Summarize();
  EXPECT_EQ(s.count, 5000u);
  EXPECT_DOUBLE_EQ(s.p50, 1.0);
  EXPECT_DOUBLE_EQ(s.p95, 1.0);
}

// ---------------------------------------------------------------------------
// Fingerprints + cache (no database needed)
// ---------------------------------------------------------------------------

engine::QueryResult MakeResult(size_t num_entries, const std::string& plan) {
  engine::QueryResult result;
  for (size_t i = 0; i < num_entries; ++i) {
    result.entries.push_back(
        {static_cast<core::Tid>(i), static_cast<double>(i)});
  }
  result.stats.plan = plan;
  return result;
}

size_t EntryCost(const std::string& key, const engine::QueryResult& value) {
  return key.size() + service::CachedCost(value) +
         service::QueryCache::kEntryOverhead;
}

TEST(StableHasherTest, DeterministicAndLengthPrefixed) {
  Hash128 a = StableHasher().Add("ab").Add("c").Digest();
  Hash128 b = StableHasher().Add("ab").Add("c").Digest();
  EXPECT_EQ(a, b);
  // Length prefixing: ("ab","c") must differ from ("a","bc") and ("abc").
  EXPECT_NE(a, StableHasher().Add("a").Add("bc").Digest());
  EXPECT_NE(a, StableHasher().Add("abc").Digest());
  EXPECT_NE(StableHasher().AddU64(1).Digest(),
            StableHasher().AddU64(2).Digest());
  // Both lanes carry entropy (the digest is not lane-duplicated).
  EXPECT_NE(a.lo, a.hi);
}

TEST(StableHasherTest, DigestSpreadsAcrossShardCounts) {
  // Low bits must not collapse (regression for an even hi multiplier):
  // 256 distinct keys over 8 buckets should touch every bucket.
  std::set<uint64_t> buckets;
  for (int i = 0; i < 256; ++i) {
    buckets.insert(
        service::FingerprintDigest("key" + std::to_string(i)).lo % 8);
  }
  EXPECT_EQ(buckets.size(), 8u);
}

TEST(FingerprintTest, SideOrderIsNormalized) {
  engine::TopologyQuery q1;
  q1.entity_set1 = "Protein";
  q1.entity_set2 = "DNA";
  engine::TopologyQuery q2;
  q2.entity_set1 = "DNA";
  q2.entity_set2 = "Protein";
  engine::ExecOptions opts;
  EXPECT_EQ(service::FingerprintQuery(q1, MethodKind::kFullTop, opts),
            service::FingerprintQuery(q2, MethodKind::kFullTop, opts));
}

TEST(FingerprintTest, MethodSchemeAndKParticipate) {
  engine::TopologyQuery q;
  q.entity_set1 = "Protein";
  q.entity_set2 = "DNA";
  engine::ExecOptions opts;
  std::string base = service::FingerprintQuery(q, MethodKind::kFullTopK, opts);
  EXPECT_NE(base, service::FingerprintQuery(q, MethodKind::kFastTopK, opts));

  engine::TopologyQuery k5 = q;
  k5.k = 5;
  EXPECT_NE(base, service::FingerprintQuery(k5, MethodKind::kFullTopK, opts));
  // Non-top-k methods ignore k entirely: normalized to the same key.
  EXPECT_EQ(service::FingerprintQuery(q, MethodKind::kFullTop, opts),
            service::FingerprintQuery(k5, MethodKind::kFullTop, opts));

  engine::TopologyQuery rare = q;
  rare.scheme = core::RankScheme::kRare;
  EXPECT_NE(base,
            service::FingerprintQuery(rare, MethodKind::kFullTopK, opts));
}

TEST(FingerprintTest, TripleSidePermutationsCollide) {
  engine::TripleQuery a;
  a.entity_set1 = "Protein";
  a.entity_set2 = "Unigene";
  a.entity_set3 = "DNA";
  engine::TripleQuery b;
  b.entity_set1 = "DNA";
  b.entity_set2 = "Protein";
  b.entity_set3 = "Unigene";
  EXPECT_EQ(service::FingerprintTripleQuery(a),
            service::FingerprintTripleQuery(b));
  b.max_triples = 7;
  EXPECT_NE(service::FingerprintTripleQuery(a),
            service::FingerprintTripleQuery(b));
}

TEST(QueryCacheTest, LookupHitRefreshesRecencyAndEvictionIsLru) {
  engine::QueryResult value = MakeResult(4, "plan");
  const size_t cost = EntryCost("A", value);
  service::QueryCacheConfig config;
  config.num_shards = 1;
  config.max_bytes = 2 * cost;  // Fits exactly two (equal-cost) entries.
  service::QueryCache cache(config);

  auto insert = [&cache, &value](const std::string& key) {
    return cache.Insert(key,
                        std::make_shared<engine::QueryResult>(value));
  };
  EXPECT_TRUE(insert("A"));
  EXPECT_TRUE(insert("B"));
  EXPECT_EQ(cache.GetStats().entries, 2u);

  // Touch A so B becomes least-recently-used, then insert C.
  EXPECT_NE(cache.Lookup("A"), nullptr);
  EXPECT_TRUE(insert("C"));

  EXPECT_NE(cache.Lookup("A"), nullptr);
  EXPECT_EQ(cache.Lookup("B"), nullptr);  // Evicted.
  EXPECT_NE(cache.Lookup("C"), nullptr);

  auto stats = cache.GetStats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_LE(stats.bytes, config.max_bytes);
}

TEST(QueryCacheTest, ByteBudgetIsRespected) {
  service::QueryCacheConfig config;
  config.num_shards = 1;
  config.max_bytes = 4096;
  service::QueryCache cache(config);
  for (int i = 0; i < 100; ++i) {
    cache.Insert("key" + std::to_string(i),
                 std::make_shared<engine::QueryResult>(MakeResult(8, "p")));
    EXPECT_LE(cache.GetStats().bytes, config.max_bytes);
  }
  EXPECT_GT(cache.GetStats().evictions, 0u);
}

TEST(QueryCacheTest, OversizedValueIsNotAdmitted) {
  service::QueryCacheConfig config;
  config.num_shards = 1;
  config.max_bytes = 256;
  service::QueryCache cache(config);
  EXPECT_FALSE(cache.Insert(
      "big", std::make_shared<engine::QueryResult>(MakeResult(1000, "p"))));
  EXPECT_EQ(cache.GetStats().entries, 0u);
}

TEST(QueryCacheTest, ClearDropsEverything) {
  service::QueryCache cache;
  cache.Insert("A", std::make_shared<engine::QueryResult>(MakeResult(2, "")));
  ASSERT_NE(cache.Lookup("A"), nullptr);
  cache.Clear();
  EXPECT_EQ(cache.Lookup("A"), nullptr);
  auto stats = cache.GetStats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.bytes, 0u);
  EXPECT_EQ(stats.clears, 1u);
}

TEST(QueryCacheTest, EvictionNeverInvalidatesHeldResults) {
  service::QueryCacheConfig config;
  config.num_shards = 1;
  config.max_bytes = 2048;
  service::QueryCache cache(config);
  cache.Insert("A", std::make_shared<engine::QueryResult>(MakeResult(4, "x")));
  std::shared_ptr<const engine::QueryResult> held = cache.Lookup("A");
  ASSERT_NE(held, nullptr);
  for (int i = 0; i < 50; ++i) {  // Force A out.
    cache.Insert("k" + std::to_string(i),
                 std::make_shared<engine::QueryResult>(MakeResult(4, "x")));
  }
  EXPECT_EQ(cache.Lookup("A"), nullptr);
  EXPECT_EQ(held->entries.size(), 4u);  // Still alive and intact.
  EXPECT_EQ(held->stats.plan, "x");
}

// ---------------------------------------------------------------------------
// Service on the Figure-3 fixture
// ---------------------------------------------------------------------------

class ServiceFig3Test : public ::testing::Test {
 protected:
  void SetUp() override {
    ids_ = biozon::BuildFigure3Database(&db_);
    view_ = std::make_unique<graph::DataGraphView>(db_);
    schema_ = std::make_unique<graph::SchemaGraph>(db_);
    core::TopologyBuilder builder(&db_, schema_.get(), view_.get());
    core::BuildConfig config;
    config.max_path_length = 3;
    ASSERT_TRUE(
        builder.BuildPair(ids_.protein, ids_.dna, config, &store_).ok());
    ASSERT_TRUE(builder.BuildPair(ids_.protein, ids_.unigene, config, &store_)
                    .ok());
    ASSERT_TRUE(
        builder.BuildPair(ids_.unigene, ids_.dna, config, &store_).ok());
    core::PruneConfig prune;
    prune.frequency_threshold = 0;
    ASSERT_TRUE(core::PruneFrequentTopologies(&db_, &store_, ids_.protein,
                                              ids_.dna, prune)
                    .ok());
    engine_ = std::make_unique<engine::Engine>(
        &db_, &store_, schema_.get(), view_.get(),
        core::ScoreModel(&store_.catalog(),
                         biozon::MakeBiozonDomainKnowledge(ids_)));
    engine_->PrepareIndexes("Protein", "DNA");
  }

  engine::TopologyQuery ExampleQuery(core::RankScheme scheme,
                                     size_t k = 10) const {
    engine::TopologyQuery q;
    q.entity_set1 = "Protein";
    q.pred1 = storage::MakeContainsKeyword(db_.GetTable("Protein")->schema(),
                                           "DESC", "enzyme");
    q.entity_set2 = "DNA";
    q.pred2 = storage::MakeEquals(db_.GetTable("DNA")->schema(), "TYPE",
                                  storage::Value("mRNA"));
    q.scheme = scheme;
    q.k = k;
    return q;
  }

  storage::Catalog db_;
  biozon::BiozonSchema ids_;
  std::unique_ptr<graph::DataGraphView> view_;
  std::unique_ptr<graph::SchemaGraph> schema_;
  core::TopologyStore store_;
  std::unique_ptr<engine::Engine> engine_;
};

TEST_F(ServiceFig3Test, ConcurrentClientsMatchSequentialExecution) {
  // The tentpole contract: N threads × M repeated queries through the
  // service produce results identical to sequential Engine::Execute.
  const std::vector<MethodKind> methods = {
      MethodKind::kFullTop,    MethodKind::kFastTop,
      MethodKind::kFullTopK,   MethodKind::kFastTopK,
      MethodKind::kFullTopKEt, MethodKind::kFastTopKEt,
  };
  const std::vector<core::RankScheme> schemes = {
      core::RankScheme::kFreq, core::RankScheme::kRare,
      core::RankScheme::kDomain};

  // Sequential ground truth, one per (method, scheme).
  std::vector<std::vector<engine::ResultEntry>> expected;
  for (MethodKind method : methods) {
    for (core::RankScheme scheme : schemes) {
      auto result = engine_->Execute(ExampleQuery(scheme), method);
      ASSERT_TRUE(result.ok());
      expected.push_back(result->entries);
    }
  }

  service::ServiceConfig config;
  config.num_threads = 8;
  service::TopologyService svc(engine_.get(), &db_, config);

  const size_t kThreads = 8;
  const size_t kRepeats = 6;
  std::atomic<size_t> mismatches{0};
  std::atomic<size_t> failures{0};
  std::vector<std::thread> clients;
  for (size_t t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t]() {
      for (size_t rep = 0; rep < kRepeats; ++rep) {
        size_t case_index = 0;
        for (MethodKind method : methods) {
          for (core::RankScheme scheme : schemes) {
            auto response =
                svc.Submit(ExampleQuery(scheme), method).get();
            if (!response.result.ok()) {
              ++failures;
            } else if (response.result->entries !=
                       expected[case_index]) {
              ++mismatches;
            }
            ++case_index;
            (void)t;
          }
        }
      }
    });
  }
  for (std::thread& client : clients) client.join();

  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(mismatches.load(), 0u);

  auto metrics = svc.Metrics();
  EXPECT_EQ(metrics.total_requests,
            kThreads * kRepeats * methods.size() * schemes.size());
  EXPECT_EQ(metrics.total_errors, 0u);
  // Every (method, scheme) repeats 48×; almost all must be cache hits.
  EXPECT_GT(metrics.total_cache_hits, metrics.total_requests / 2);
}

TEST_F(ServiceFig3Test, CachedResultsAreIdenticalToUncached) {
  service::TopologyService svc(engine_.get(), &db_, service::ServiceConfig{});
  auto cold = svc.Execute(ExampleQuery(core::RankScheme::kDomain),
                          MethodKind::kFastTopKEt);
  ASSERT_TRUE(cold.result.ok());
  EXPECT_FALSE(cold.from_cache);

  auto warm = svc.Execute(ExampleQuery(core::RankScheme::kDomain),
                          MethodKind::kFastTopKEt);
  ASSERT_TRUE(warm.result.ok());
  EXPECT_TRUE(warm.from_cache);
  EXPECT_EQ(warm.result->entries, cold.result->entries);
  EXPECT_EQ(warm.result->stats.plan, cold.result->stats.plan);

  auto stats = svc.CacheStats();
  EXPECT_GE(stats.hits, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST_F(ServiceFig3Test, SwappedQueryOrderHitsTheSameCacheEntry) {
  service::TopologyService svc(engine_.get(), &db_, service::ServiceConfig{});
  auto cold = svc.Execute(ExampleQuery(core::RankScheme::kFreq),
                          MethodKind::kFullTop);
  ASSERT_TRUE(cold.result.ok());

  engine::TopologyQuery swapped;
  swapped.entity_set1 = "DNA";
  swapped.pred1 = storage::MakeEquals(db_.GetTable("DNA")->schema(), "TYPE",
                                      storage::Value("mRNA"));
  swapped.entity_set2 = "Protein";
  swapped.pred2 = storage::MakeContainsKeyword(
      db_.GetTable("Protein")->schema(), "DESC", "enzyme");
  swapped.scheme = core::RankScheme::kFreq;
  auto warm = svc.Execute(swapped, MethodKind::kFullTop);
  ASSERT_TRUE(warm.result.ok());
  EXPECT_TRUE(warm.from_cache);
  EXPECT_EQ(warm.result->entries, cold.result->entries);
}

TEST_F(ServiceFig3Test, InvalidationOnRebuildClearsTheCache) {
  service::TopologyService svc(engine_.get(), &db_, service::ServiceConfig{});
  auto first = svc.Execute(ExampleQuery(core::RankScheme::kFreq),
                           MethodKind::kFullTop);
  ASSERT_TRUE(first.result.ok());
  EXPECT_EQ(svc.CacheStats().entries, 1u);

  // A store rebuild must be followed by InvalidateCache(); afterwards the
  // same request is served cold (and correct) again.
  svc.InvalidateCache();
  EXPECT_EQ(svc.CacheStats().entries, 0u);
  auto second = svc.Execute(ExampleQuery(core::RankScheme::kFreq),
                            MethodKind::kFullTop);
  ASSERT_TRUE(second.result.ok());
  EXPECT_FALSE(second.from_cache);
  EXPECT_EQ(second.result->entries, first.result->entries);
}

TEST_F(ServiceFig3Test, AdmissionControlRejectsOverload) {
  service::ServiceConfig config;
  config.num_threads = 1;
  config.max_in_flight = 0;  // Everything cold is over the bound.
  config.enable_cache = false;
  service::TopologyService svc(engine_.get(), &db_, config);
  auto response = svc.Execute(ExampleQuery(core::RankScheme::kFreq),
                              MethodKind::kFullTop);
  EXPECT_FALSE(response.result.ok());
  EXPECT_EQ(response.result.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(svc.Metrics().total_rejected, 1u);
}

TEST_F(ServiceFig3Test, SubmitAfterShutdownFailsCleanly) {
  service::TopologyService svc(engine_.get(), &db_, service::ServiceConfig{});
  svc.Shutdown();
  auto response = svc.Execute(ExampleQuery(core::RankScheme::kFreq),
                              MethodKind::kFullTop);
  EXPECT_FALSE(response.result.ok());
  EXPECT_EQ(response.result.status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(ServiceFig3Test, EngineErrorsSurfaceThroughTheService) {
  service::TopologyService svc(engine_.get(), &db_, service::ServiceConfig{});
  engine::TopologyQuery bad;
  bad.entity_set1 = "Nope";
  bad.entity_set2 = "DNA";
  auto response = svc.Execute(bad, MethodKind::kFullTop);
  EXPECT_FALSE(response.result.ok());
  EXPECT_EQ(response.result.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(svc.Metrics().total_errors, 1u);
  // Errors are not cached.
  EXPECT_EQ(svc.CacheStats().entries, 0u);
}

TEST_F(ServiceFig3Test, BatchAccumulatesStatsWithOperatorPlusEquals) {
  service::ServiceConfig config;
  config.enable_cache = false;
  service::TopologyService svc(engine_.get(), &db_, config);

  std::vector<service::ParsedRequest> batch(3);
  batch[0].query = ExampleQuery(core::RankScheme::kFreq);
  batch[0].method = MethodKind::kFullTop;
  batch[1].query = ExampleQuery(core::RankScheme::kRare);
  batch[1].method = MethodKind::kFullTopK;
  batch[2].query = ExampleQuery(core::RankScheme::kDomain);
  batch[2].method = MethodKind::kFastTop;

  auto outcome = svc.ExecuteBatch(batch);
  ASSERT_EQ(outcome.responses.size(), 3u);
  EXPECT_EQ(outcome.failures, 0u);

  engine::ExecStats expected;
  for (const auto& response : outcome.responses) {
    ASSERT_TRUE(response.result.ok());
    expected += response.result->stats;
  }
  EXPECT_EQ(outcome.total.rows_scanned, expected.rows_scanned);
  EXPECT_EQ(outcome.total.probes, expected.probes);
  EXPECT_EQ(outcome.total.subqueries, expected.subqueries);
  EXPECT_DOUBLE_EQ(outcome.total.seconds, expected.seconds);
}

TEST_F(ServiceFig3Test, RepeatedBatchIsServedFromCache) {
  service::TopologyService svc(engine_.get(), &db_, service::ServiceConfig{});
  std::vector<service::ParsedRequest> batch(2);
  batch[0].query = ExampleQuery(core::RankScheme::kFreq);
  batch[0].method = MethodKind::kFullTop;
  batch[1].query = ExampleQuery(core::RankScheme::kDomain);
  batch[1].method = MethodKind::kFastTopKEt;

  auto cold = svc.ExecuteBatch(batch);
  ASSERT_EQ(cold.failures, 0u);
  auto warm = svc.ExecuteBatch(batch);
  ASSERT_EQ(warm.failures, 0u);
  EXPECT_EQ(warm.cache_hits, 2u);
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(warm.responses[i].result->entries,
              cold.responses[i].result->entries);
  }
}

TEST_F(ServiceFig3Test, TextFrontendMatchesHandBuiltQuery) {
  service::TopologyService svc(engine_.get(), &db_, service::ServiceConfig{});
  auto parsed = svc.SubmitLine(
                       "TOPK k=10 method=fast-topk-et scheme=domain "
                       "set1=Protein pred1=DESC.ct('enzyme') "
                       "set2=DNA pred2=TYPE='mRNA'")
                    .get();
  ASSERT_TRUE(parsed.result.ok()) << parsed.result.status();

  auto direct = engine_->Execute(ExampleQuery(core::RankScheme::kDomain),
                                 MethodKind::kFastTopKEt);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(parsed.result->entries, direct->entries);
}

TEST_F(ServiceFig3Test, TripleQueriesAreServedAndCached) {
  service::TopologyService svc(engine_.get(), &db_, service::ServiceConfig{});
  svc.EnableTripleQueries(&store_, schema_.get(), view_.get());

  engine::TripleQuery q;
  q.entity_set1 = "Protein";
  q.entity_set2 = "Unigene";
  q.entity_set3 = "DNA";
  auto cold = svc.SubmitTriple(q).get();
  ASSERT_TRUE(cold.result.ok()) << cold.result.status();
  EXPECT_FALSE(cold.from_cache);
  EXPECT_FALSE(cold.result->entries.empty());

  auto warm = svc.SubmitTriple(q).get();
  ASSERT_TRUE(warm.result.ok());
  EXPECT_TRUE(warm.from_cache);
  ASSERT_EQ(warm.result->entries.size(), cold.result->entries.size());
  for (size_t i = 0; i < warm.result->entries.size(); ++i) {
    EXPECT_EQ(warm.result->entries[i].tid, cold.result->entries[i].tid);
    EXPECT_EQ(warm.result->entries[i].frequency,
              cold.result->entries[i].frequency);
  }
}

TEST_F(ServiceFig3Test, TriplesAndTwoQueriesRunConcurrently) {
  // 3-queries intern into the shared catalog that 2-queries read; with
  // thread-safe interning they run fully concurrently — no writer lock
  // serializes them (this is the TSAN target for that path). Cache off so
  // everything executes.
  service::ServiceConfig config;
  config.num_threads = 4;
  config.enable_cache = false;
  service::TopologyService svc(engine_.get(), &db_, config);
  svc.EnableTripleQueries(&store_, schema_.get(), view_.get());

  std::atomic<size_t> failures{0};
  std::vector<std::thread> clients;
  for (size_t t = 0; t < 4; ++t) {
    clients.emplace_back([&]() {
      for (int i = 0; i < 8; ++i) {
        auto r = svc.Submit(ExampleQuery(core::RankScheme::kDomain),
                            MethodKind::kFullTop)
                     .get();
        if (!r.result.ok()) ++failures;
      }
    });
  }
  for (size_t t = 0; t < 2; ++t) {
    clients.emplace_back([&]() {
      engine::TripleQuery q;
      q.entity_set1 = "Protein";
      q.entity_set2 = "Unigene";
      q.entity_set3 = "DNA";
      for (int i = 0; i < 4; ++i) {
        auto r = svc.SubmitTriple(q).get();
        if (!r.result.ok()) ++failures;
      }
    });
  }
  for (std::thread& client : clients) client.join();
  EXPECT_EQ(failures.load(), 0u);
}

TEST_F(ServiceFig3Test, AttachLiveStoreRejectsLegacyEngines) {
  // The raw-pointer Engine constructor wraps a caller-owned store; a live
  // rebuild could never retire it safely, so attaching must fail (and
  // Rebuild stays unavailable).
  service::TopologyService svc(engine_.get(), &db_, service::ServiceConfig{});
  Status attached = svc.AttachLiveStore(schema_.get(), view_.get());
  EXPECT_EQ(attached.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(svc.Rebuild(service::RebuildOptions{}).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(ServiceFig3Test, TripleQueriesWithoutBackendFail) {
  service::TopologyService svc(engine_.get(), &db_, service::ServiceConfig{});
  engine::TripleQuery q;
  q.entity_set1 = "Protein";
  q.entity_set2 = "Unigene";
  q.entity_set3 = "DNA";
  auto response = svc.SubmitTriple(q).get();
  EXPECT_FALSE(response.result.ok());
  EXPECT_EQ(response.result.status().code(),
            StatusCode::kFailedPrecondition);
}

// ---------------------------------------------------------------------------
// Live store rebuild (epoch swap behind traffic)
// ---------------------------------------------------------------------------

class LiveRebuildTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ids_ = biozon::BuildFigure3Database(&db_);
    view_ = std::make_unique<graph::DataGraphView>(db_);
    schema_ = std::make_unique<graph::SchemaGraph>(db_);
    // The initial store lives only in the handle: once a rebuild retires
    // it and the last snapshot drops, its destructor cleans its tables up.
    auto store = std::make_shared<core::TopologyStore>();
    core::TopologyBuilder builder(&db_, schema_.get(), view_.get());
    core::BuildConfig config;
    config.max_path_length = 2;
    ASSERT_TRUE(builder.BuildAllPairs(config, store.get()).ok());
    core::PruneConfig prune;
    prune.frequency_threshold = 0;
    for (const auto& [key, pair] : store->pairs()) {
      ASSERT_TRUE(core::PruneFrequentTopologies(&db_, store.get(),
                                                key.first, key.second, prune)
                      .ok());
    }
    handle_ = std::make_shared<core::StoreHandle>(store);
    engine_ = std::make_unique<engine::Engine>(
        &db_, handle_, schema_.get(), view_.get(),
        core::ScoreModel(&store->catalog(),
                         biozon::MakeBiozonDomainKnowledge(ids_)));
  }

  engine::TopologyQuery ProteinDnaQuery() const {
    engine::TopologyQuery q;
    q.entity_set1 = "Protein";
    q.pred1 = storage::MakeContainsKeyword(db_.GetTable("Protein")->schema(),
                                           "DESC", "enzyme");
    q.entity_set2 = "DNA";
    q.scheme = core::RankScheme::kFreq;
    q.k = 20;
    return q;
  }

  /// Ground truth for max_path_length = l on an identical fresh database.
  std::vector<engine::ResultEntry> GroundTruth(size_t l,
                                               MethodKind method) const {
    storage::Catalog db;
    biozon::BiozonSchema ids = biozon::BuildFigure3Database(&db);
    graph::DataGraphView view(db);
    graph::SchemaGraph schema(db);
    core::TopologyStore store;
    core::TopologyBuilder builder(&db, &schema, &view);
    core::BuildConfig config;
    config.max_path_length = l;
    TSB_CHECK(builder.BuildAllPairs(config, &store).ok());
    core::PruneConfig prune;
    prune.frequency_threshold = 0;
    std::vector<std::pair<storage::EntityTypeId, storage::EntityTypeId>>
        keys;
    for (const auto& [key, pair] : store.pairs()) keys.push_back(key);
    for (const auto& [t1, t2] : keys) {
      TSB_CHECK(
          core::PruneFrequentTopologies(&db, &store, t1, t2, prune).ok());
    }
    engine::Engine engine(&db, &store, &schema, &view,
                          core::ScoreModel(
                              &store.catalog(),
                              biozon::MakeBiozonDomainKnowledge(ids)));
    engine::TopologyQuery q;
    q.entity_set1 = "Protein";
    q.pred1 = storage::MakeContainsKeyword(db.GetTable("Protein")->schema(),
                                           "DESC", "enzyme");
    q.entity_set2 = "DNA";
    q.scheme = core::RankScheme::kFreq;
    q.k = 20;
    auto result = engine.Execute(q, method);
    TSB_CHECK(result.ok()) << result.status();
    return result->entries;
  }

  // Declaration order matters for teardown: retired stores drop their
  // tables from db_ when destroyed, so db_ must outlive engine_ (which
  // holds the last snapshot) — members are destroyed in reverse order.
  storage::Catalog db_;
  biozon::BiozonSchema ids_;
  std::unique_ptr<graph::DataGraphView> view_;
  std::unique_ptr<graph::SchemaGraph> schema_;
  std::shared_ptr<core::StoreHandle> handle_;
  std::unique_ptr<engine::Engine> engine_;
};

TEST_F(LiveRebuildTest, RebuildRequiresAttachedLiveStore) {
  service::TopologyService svc(engine_.get(), &db_, service::ServiceConfig{});
  service::RebuildOptions options;
  auto result = svc.Rebuild(options);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(LiveRebuildTest, RebuildSwapsEpochBehindLiveTrafficZeroFailures) {
  const std::vector<engine::ResultEntry> pre =
      GroundTruth(2, MethodKind::kFullTop);
  const std::vector<engine::ResultEntry> post =
      GroundTruth(3, MethodKind::kFullTop);
  ASSERT_NE(pre, post) << "the rebuild must be observable";

  service::ServiceConfig config;
  config.num_threads = 4;
  service::TopologyService svc(engine_.get(), &db_, config);
  ASSERT_TRUE(svc.AttachLiveStore(schema_.get(), view_.get()).ok());

  // Sustained concurrent load across the swap: every response must be
  // pre- or post-epoch consistent, never an error, never a mixture.
  std::atomic<bool> stop{false};
  std::atomic<size_t> failures{0};
  std::atomic<size_t> inconsistent{0};
  std::atomic<size_t> served{0};
  std::vector<std::thread> clients;
  for (size_t t = 0; t < 4; ++t) {
    clients.emplace_back([&]() {
      while (!stop.load(std::memory_order_acquire)) {
        auto response =
            svc.Submit(ProteinDnaQuery(), MethodKind::kFullTop).get();
        if (!response.result.ok()) {
          ++failures;
        } else if (response.result->entries != pre &&
                   response.result->entries != post) {
          ++inconsistent;
        }
        ++served;
      }
    });
  }

  // Ensure the swap really happens behind traffic: clients must be
  // serving before the rebuild starts and keep serving after the swap.
  while (served.load() < 8) std::this_thread::yield();

  service::RebuildOptions options;
  options.build.max_path_length = 3;
  options.prune_threshold = 0;
  options.export_topinfo = true;
  auto stats = svc.Rebuild(options);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->epoch, 1u);
  EXPECT_EQ(stats->table_namespace, "e1.");
  EXPECT_GT(stats->pairs_built, 3u);

  const size_t at_swap = served.load();
  while (served.load() < at_swap + 8) std::this_thread::yield();
  stop.store(true, std::memory_order_release);
  for (std::thread& client : clients) client.join();
  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(inconsistent.load(), 0u);

  // Post-swap requests serve the new epoch (cache was folded into the
  // swap, so no stale entry survives).
  auto after = svc.Execute(ProteinDnaQuery(), MethodKind::kFullTop);
  ASSERT_TRUE(after.result.ok());
  EXPECT_EQ(after.result->entries, post);

  // Fast-Top paths work on the rebuilt epoch (it was pruned).
  auto fast = svc.Execute(ProteinDnaQuery(), MethodKind::kFastTopKEt);
  ASSERT_TRUE(fast.result.ok()) << fast.result.status();

  // New-epoch tables are namespaced; the retired epoch's tables were
  // dropped once its last snapshot was released.
  EXPECT_NE(db_.FindTable("e1.AllTops_Protein_DNA"), nullptr);
  EXPECT_EQ(db_.FindTable("AllTops_Protein_DNA"), nullptr);
  EXPECT_NE(db_.FindTable("TopInfo"), nullptr);
  EXPECT_EQ(svc.Metrics().total_errors, 0u);
}

TEST_F(LiveRebuildTest, TriplesFollowTheLiveEpoch) {
  service::ServiceConfig config;
  config.num_threads = 2;
  service::TopologyService svc(engine_.get(), &db_, config);
  ASSERT_TRUE(svc.AttachLiveStore(schema_.get(), view_.get()).ok());

  engine::TripleQuery q;
  q.entity_set1 = "Protein";
  q.entity_set2 = "Unigene";
  q.entity_set3 = "DNA";
  auto before = svc.SubmitTriple(q).get();
  ASSERT_TRUE(before.result.ok()) << before.result.status();

  service::RebuildOptions options;
  options.build.max_path_length = 3;
  auto stats = svc.Rebuild(options);
  ASSERT_TRUE(stats.ok()) << stats.status();

  // The triple cache was invalidated with the swap; the re-run executes
  // against the new epoch and interns into the new catalog.
  auto after = svc.SubmitTriple(q).get();
  ASSERT_TRUE(after.result.ok()) << after.result.status();
  EXPECT_FALSE(after.from_cache);
  for (const auto& entry : after.result->entries) {
    EXPECT_LE(entry.tid,
              static_cast<core::Tid>(
                  handle_->Snapshot()->catalog().size()));
  }
}

TEST_F(LiveRebuildTest, BackToBackRebuildsAdvanceEpochsAndDropOldTables) {
  service::TopologyService svc(engine_.get(), &db_, service::ServiceConfig{});
  ASSERT_TRUE(svc.AttachLiveStore(schema_.get(), view_.get()).ok());

  for (uint64_t round = 1; round <= 3; ++round) {
    service::RebuildOptions options;
    options.build.max_path_length = 2 + (round % 2);
    auto stats = svc.Rebuild(options);
    ASSERT_TRUE(stats.ok()) << stats.status();
    EXPECT_EQ(stats->epoch, round);
    // A query both validates the epoch and releases the previous snapshot.
    auto response = svc.Execute(ProteinDnaQuery(), MethodKind::kFullTop);
    ASSERT_TRUE(response.result.ok());
  }
  // Only the newest epoch's tables remain.
  EXPECT_EQ(db_.FindTable("AllTops_Protein_DNA"), nullptr);
  EXPECT_EQ(db_.FindTable("e1.AllTops_Protein_DNA"), nullptr);
  EXPECT_EQ(db_.FindTable("e2.AllTops_Protein_DNA"), nullptr);
  EXPECT_NE(db_.FindTable("e3.AllTops_Protein_DNA"), nullptr);
}

// ---------------------------------------------------------------------------
// Request parser
// ---------------------------------------------------------------------------

class ParserFig3Test : public ServiceFig3Test {};

TEST_F(ParserFig3Test, ParsesMethodsSchemesAndPredicates) {
  service::RequestParser parser(&db_);
  auto req = parser.Parse(
      "TOPK k=3 method=full-topk-opt scheme=rare set1=Protein "
      "pred1=DESC.ct('enzyme')&&ID.between(30,40) set2=DNA "
      "pred2=TYPE='mRNA' exclude_weak=1");
  ASSERT_TRUE(req.ok()) << req.status();
  EXPECT_EQ(req->method, MethodKind::kFullTopKOpt);
  EXPECT_EQ(req->query.scheme, core::RankScheme::kRare);
  EXPECT_EQ(req->query.k, 3u);
  EXPECT_TRUE(req->query.exclude_weak);
  EXPECT_EQ(req->query.entity_set1, "Protein");
  EXPECT_EQ(req->query.entity_set2, "DNA");
  ASSERT_NE(req->query.pred1, nullptr);
  ASSERT_NE(req->query.pred2, nullptr);

  // The conjunction really is AND: it must filter like the hand-built one.
  auto hand = storage::MakeAnd(
      storage::MakeContainsKeyword(db_.GetTable("Protein")->schema(), "DESC",
                                   "enzyme"),
      storage::MakeInt64Between(db_.GetTable("Protein")->schema(), "ID", 30,
                                40));
  EXPECT_EQ(storage::FilterRows(*db_.GetTable("Protein"), *req->query.pred1),
            storage::FilterRows(*db_.GetTable("Protein"), *hand));
}

TEST_F(ParserFig3Test, TopVerbDefaultsToFullResultMethod) {
  service::RequestParser parser(&db_);
  auto req = parser.Parse("TOP set1=Protein set2=DNA");
  ASSERT_TRUE(req.ok());
  EXPECT_FALSE(engine::MethodIsTopK(req->method));
  EXPECT_EQ(req->query.pred1, nullptr);
  EXPECT_EQ(req->query.pred2, nullptr);
}

TEST_F(ParserFig3Test, QuotedValuesMayContainSpaces) {
  service::RequestParser parser(&db_);
  auto req = parser.Parse(
      "TOPK set1=Protein pred1=DESC.ct('binding protein') set2=DNA");
  ASSERT_TRUE(req.ok()) << req.status();
  ASSERT_NE(req->query.pred1, nullptr);
}

TEST_F(ParserFig3Test, RejectsMalformedRequests) {
  service::RequestParser parser(&db_);
  EXPECT_FALSE(parser.Parse("").ok());
  EXPECT_FALSE(parser.Parse("FROBNICATE set1=Protein set2=DNA").ok());
  EXPECT_FALSE(parser.Parse("TOPK set1=Protein").ok());  // Missing set2.
  EXPECT_FALSE(parser.Parse("TOPK set1=Protein set2=DNA bogus_key=1").ok());
  EXPECT_FALSE(
      parser.Parse("TOPK set1=Protein set2=DNA method=warp-speed").ok());
  EXPECT_FALSE(
      parser.Parse("TOPK set1=Protein pred1=NOCOL.ct('x') set2=DNA").ok());
  EXPECT_FALSE(
      parser.Parse("TOPK set1=Martian set2=DNA pred1=DESC.ct('x')").ok());
  // Verb/method mismatches.
  EXPECT_FALSE(
      parser.Parse("TOP method=fast-topk set1=Protein set2=DNA").ok());
  EXPECT_FALSE(
      parser.Parse("TOPK method=full-top set1=Protein set2=DNA").ok());
  // A '==' typo must error, not silently match the literal "='...'".
  EXPECT_FALSE(
      parser.Parse("TOPK set1=Protein set2=DNA pred2=TYPE=='mRNA'").ok());
}

TEST_F(ParserFig3Test, ParseErrorsComeBackThroughSubmitLine) {
  service::TopologyService svc(engine_.get(), &db_, service::ServiceConfig{});
  auto response = svc.SubmitLine("TOPK set1=Protein").get();
  EXPECT_FALSE(response.result.ok());
  EXPECT_EQ(response.result.status().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

TEST_F(ServiceFig3Test, MetricsTrackPerMethodTraffic) {
  service::TopologyService svc(engine_.get(), &db_, service::ServiceConfig{});
  for (int i = 0; i < 3; ++i) {
    auto r = svc.Execute(ExampleQuery(core::RankScheme::kFreq),
                         MethodKind::kFullTop);
    ASSERT_TRUE(r.result.ok());
  }
  auto r = svc.Execute(ExampleQuery(core::RankScheme::kFreq),
                       MethodKind::kFastTop);
  ASSERT_TRUE(r.result.ok());

  auto snap = svc.Metrics();
  EXPECT_EQ(snap.total_requests, 4u);
  EXPECT_EQ(snap.total_cache_hits, 2u);  // Runs 2 and 3 of Full-Top.
  ASSERT_EQ(snap.methods.size(), 2u);
  for (const auto& row : snap.methods) {
    if (row.method == "Full-Top") {
      EXPECT_EQ(row.requests, 3u);
      EXPECT_EQ(row.cache_hits, 2u);
    } else {
      EXPECT_EQ(row.method, "Fast-Top");
      EXPECT_EQ(row.requests, 1u);
    }
    EXPECT_GE(row.latency.p95, row.latency.p50);
  }
  EXPECT_FALSE(snap.ToString().empty());
}

}  // namespace
}  // namespace tsb
