#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "graph/canonical.h"
#include "graph/isomorphism.h"
#include "graph/labeled_graph.h"

namespace tsb {
namespace graph {
namespace {

using NodeId = LabeledGraph::NodeId;

LabeledGraph Triangle(uint32_t la, uint32_t lb, uint32_t lc, uint32_t e) {
  LabeledGraph g;
  NodeId a = g.AddNode(la);
  NodeId b = g.AddNode(lb);
  NodeId c = g.AddNode(lc);
  g.AddEdge(a, b, e);
  g.AddEdge(b, c, e);
  g.AddEdge(c, a, e);
  return g;
}

/// Applies a random relabeling of node ids to `g` (preserving structure).
LabeledGraph Permuted(const LabeledGraph& g, Rng* rng) {
  std::vector<NodeId> perm(g.num_nodes());
  for (size_t i = 0; i < perm.size(); ++i) perm[i] = static_cast<NodeId>(i);
  rng->Shuffle(&perm);
  std::vector<uint32_t> labels(g.num_nodes());
  for (size_t i = 0; i < g.num_nodes(); ++i) {
    labels[perm[i]] = g.node_label(static_cast<NodeId>(i));
  }
  LabeledGraph out;
  for (uint32_t l : labels) out.AddNode(l);
  std::vector<LabeledGraph::Edge> edges(g.edges());
  rng->Shuffle(&edges);
  for (const auto& e : edges) out.AddEdge(perm[e.u], perm[e.v], e.label);
  return out;
}

LabeledGraph RandomGraph(Rng* rng, size_t n, size_t m, uint32_t node_labels,
                         uint32_t edge_labels) {
  LabeledGraph g;
  for (size_t i = 0; i < n; ++i) {
    g.AddNode(static_cast<uint32_t>(rng->NextBounded(node_labels)));
  }
  for (size_t i = 0; i < m; ++i) {
    NodeId u = static_cast<NodeId>(rng->NextBounded(n));
    NodeId v = static_cast<NodeId>(rng->NextBounded(n));
    if (u == v) continue;
    g.AddEdge(u, v, static_cast<uint32_t>(rng->NextBounded(edge_labels)));
  }
  return g;
}

// --- LabeledGraph ------------------------------------------------------------

TEST(LabeledGraphTest, BasicConstruction) {
  LabeledGraph g;
  NodeId a = g.AddNode(1);
  NodeId b = g.AddNode(2);
  g.AddEdge(a, b, 9);
  EXPECT_EQ(g.num_nodes(), 2u);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.node_label(b), 2u);
  EXPECT_TRUE(g.HasEdge(a, b, 9));
  EXPECT_TRUE(g.HasEdge(b, a, 9));  // Undirected.
  EXPECT_FALSE(g.HasEdge(a, b, 8));
}

TEST(LabeledGraphTest, DegreeAndNeighbors) {
  LabeledGraph g = Triangle(1, 1, 1, 5);
  EXPECT_EQ(g.Degree(0), 2u);
  EXPECT_EQ(g.Neighbors(0).size(), 2u);
}

TEST(LabeledGraphTest, DedupeParallelEdges) {
  LabeledGraph g;
  NodeId a = g.AddNode(1);
  NodeId b = g.AddNode(2);
  g.AddEdge(a, b, 7);
  g.AddEdge(b, a, 7);  // Same undirected edge.
  g.AddEdge(a, b, 8);  // Different label: kept.
  g.DedupeParallelEdges();
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(LabeledGraphTest, MergeNodesRepointsEdges) {
  LabeledGraph g;
  NodeId a = g.AddNode(1);
  NodeId b = g.AddNode(2);
  NodeId c = g.AddNode(2);
  g.AddEdge(a, b, 3);
  g.AddEdge(a, c, 4);
  g.MergeNodes(b, c);
  EXPECT_EQ(g.num_nodes(), 2u);
  EXPECT_TRUE(g.HasEdge(a, b, 3));
  EXPECT_TRUE(g.HasEdge(a, b, 4));
}

TEST(LabeledGraphTest, Connectivity) {
  LabeledGraph g;
  g.AddNode(1);
  g.AddNode(1);
  EXPECT_FALSE(g.IsConnected());
  g.AddEdge(0, 1, 0);
  EXPECT_TRUE(g.IsConnected());
  EXPECT_TRUE(LabeledGraph().IsConnected());
}

TEST(LabeledGraphTest, AppendDisjoint) {
  LabeledGraph g = Triangle(1, 2, 3, 0);
  LabeledGraph h = Triangle(4, 5, 6, 1);
  NodeId offset = g.AppendDisjoint(h);
  EXPECT_EQ(offset, 3u);
  EXPECT_EQ(g.num_nodes(), 6u);
  EXPECT_EQ(g.num_edges(), 6u);
  EXPECT_FALSE(g.IsConnected());
}

TEST(LabeledGraphTest, MakePathGraph) {
  LabeledGraph g = MakePathGraph({1, 2, 3}, {7, 8});
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_TRUE(g.HasEdge(0, 1, 7));
  EXPECT_TRUE(g.HasEdge(1, 2, 8));
}

// --- Canonical codes -----------------------------------------------------------

TEST(CanonicalTest, IsomorphicGraphsShareCode) {
  Rng rng(17);
  LabeledGraph g = Triangle(1, 2, 3, 5);
  for (int trial = 0; trial < 20; ++trial) {
    LabeledGraph h = Permuted(g, &rng);
    EXPECT_EQ(CanonicalCode(g), CanonicalCode(h));
  }
}

TEST(CanonicalTest, DifferentNodeLabelsDiffer) {
  EXPECT_NE(CanonicalCode(Triangle(1, 2, 3, 5)),
            CanonicalCode(Triangle(1, 2, 4, 5)));
}

TEST(CanonicalTest, DifferentEdgeLabelsDiffer) {
  EXPECT_NE(CanonicalCode(Triangle(1, 2, 3, 5)),
            CanonicalCode(Triangle(1, 2, 3, 6)));
}

TEST(CanonicalTest, PathVsStarDiffer) {
  // Same label multiset, different structure.
  LabeledGraph path = MakePathGraph({1, 1, 1, 1}, {0, 0, 0});
  LabeledGraph star;
  NodeId hub = star.AddNode(1);
  for (int i = 0; i < 3; ++i) {
    NodeId leaf = star.AddNode(1);
    star.AddEdge(hub, leaf, 0);
  }
  EXPECT_NE(CanonicalCode(path), CanonicalCode(star));
}

TEST(CanonicalTest, PathDirectionInvariant) {
  LabeledGraph fwd = MakePathGraph({1, 2, 3}, {7, 8});
  LabeledGraph bwd = MakePathGraph({3, 2, 1}, {8, 7});
  EXPECT_EQ(CanonicalCode(fwd), CanonicalCode(bwd));
}

TEST(CanonicalTest, EmptyAndSingletonGraphs) {
  LabeledGraph empty;
  LabeledGraph single;
  single.AddNode(4);
  EXPECT_NE(CanonicalCode(empty), CanonicalCode(single));
  EXPECT_EQ(CanonicalCode(empty), CanonicalCode(LabeledGraph()));
}

TEST(CanonicalTest, CanonicalFormIsIdempotent) {
  Rng rng(3);
  LabeledGraph g = RandomGraph(&rng, 6, 9, 2, 2);
  LabeledGraph c1 = CanonicalForm(g);
  LabeledGraph c2 = CanonicalForm(c1);
  EXPECT_EQ(CanonicalCode(c1), CanonicalCode(c2));
  EXPECT_EQ(c1.node_labels(), c2.node_labels());
}

TEST(CanonicalTest, ParallelEdgeMultisetPreserved) {
  // Two parallel edges with different labels vs a single edge.
  LabeledGraph two;
  NodeId a = two.AddNode(1);
  NodeId b = two.AddNode(2);
  two.AddEdge(a, b, 0);
  two.AddEdge(a, b, 1);
  LabeledGraph one;
  a = one.AddNode(1);
  b = one.AddNode(2);
  one.AddEdge(a, b, 0);
  EXPECT_NE(CanonicalCode(two), CanonicalCode(one));
}

TEST(CanonicalTest, AgreesWithVf2OnRandomGraphs) {
  Rng rng(29);
  for (int trial = 0; trial < 120; ++trial) {
    LabeledGraph g = RandomGraph(&rng, 2 + rng.NextBounded(5),
                                 rng.NextBounded(8), 2, 2);
    LabeledGraph h = RandomGraph(&rng, 2 + rng.NextBounded(5),
                                 rng.NextBounded(8), 2, 2);
    g.DedupeParallelEdges();
    h.DedupeParallelEdges();
    bool same_code = CanonicalCode(g) == CanonicalCode(h);
    bool iso = IsIsomorphic(g, h);
    EXPECT_EQ(same_code, iso)
        << "disagreement: g=" << g.ToString() << " h=" << h.ToString();
  }
}

TEST(CanonicalTest, SymmetricGraphWithinBudget) {
  // A 8-node cycle of identical labels: highly symmetric but fine.
  LabeledGraph g;
  for (int i = 0; i < 8; ++i) g.AddNode(1);
  for (int i = 0; i < 8; ++i) {
    g.AddEdge(static_cast<NodeId>(i), static_cast<NodeId>((i + 1) % 8), 0);
  }
  Rng rng(5);
  LabeledGraph h = Permuted(g, &rng);
  EXPECT_EQ(CanonicalCode(g), CanonicalCode(h));
}

TEST(CanonicalTest, CodeDigestIsShortHex) {
  std::string digest = CodeDigest(CanonicalCode(Triangle(1, 2, 3, 0)));
  EXPECT_EQ(digest.size(), 16u);
}

// --- VF2 ----------------------------------------------------------------------

TEST(IsomorphismTest, SubgraphInTriangle) {
  LabeledGraph tri = Triangle(1, 2, 3, 5);
  LabeledGraph edge;
  NodeId a = edge.AddNode(1);
  NodeId b = edge.AddNode(2);
  edge.AddEdge(a, b, 5);
  EXPECT_TRUE(IsSubgraphIsomorphic(edge, tri));
  EXPECT_FALSE(IsSubgraphIsomorphic(tri, edge));
}

TEST(IsomorphismTest, LabelMismatchFails) {
  LabeledGraph tri = Triangle(1, 2, 3, 5);
  LabeledGraph edge;
  NodeId a = edge.AddNode(1);
  NodeId b = edge.AddNode(2);
  edge.AddEdge(a, b, 6);  // Wrong edge label.
  EXPECT_FALSE(IsSubgraphIsomorphic(edge, tri));
}

TEST(IsomorphismTest, FindsWitnessMapping) {
  LabeledGraph tri = Triangle(1, 2, 3, 5);
  LabeledGraph edge;
  NodeId a = edge.AddNode(3);
  NodeId b = edge.AddNode(2);
  edge.AddEdge(a, b, 5);
  auto mapping = FindSubgraphIsomorphism(edge, tri);
  ASSERT_TRUE(mapping.has_value());
  EXPECT_EQ(tri.node_label((*mapping)[0]), 3u);
  EXPECT_EQ(tri.node_label((*mapping)[1]), 2u);
}

TEST(IsomorphismTest, DisconnectedPatternSupported) {
  LabeledGraph target = Triangle(1, 1, 1, 0);
  LabeledGraph pattern;
  pattern.AddNode(1);
  pattern.AddNode(1);
  EXPECT_TRUE(IsSubgraphIsomorphic(pattern, target));
  pattern.AddNode(1);
  pattern.AddNode(1);  // Four nodes cannot inject into three.
  EXPECT_FALSE(IsSubgraphIsomorphic(pattern, target));
}

TEST(IsomorphismTest, IsIsomorphicRequiresEqualSize) {
  LabeledGraph a = Triangle(1, 1, 1, 0);
  LabeledGraph b = Triangle(1, 1, 1, 0);
  EXPECT_TRUE(IsIsomorphic(a, b));
  b.AddNode(1);
  EXPECT_FALSE(IsIsomorphic(a, b));
}

}  // namespace
}  // namespace graph
}  // namespace tsb
