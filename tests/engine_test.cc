// The nine query-evaluation methods on the Figure-3 fixture: Example 2.1's
// query must return {T1, T2, T3, T4} under every strategy.

#include <gtest/gtest.h>

#include <set>

#include "biozon/domain.h"
#include "biozon/fig3.h"
#include "core/builder.h"
#include "core/pruner.h"
#include "engine/engine.h"
#include "graph/canonical.h"

namespace tsb {
namespace {

using engine::MethodKind;

class EngineFig3Test : public ::testing::Test {
 protected:
  void SetUp() override {
    ids_ = biozon::BuildFigure3Database(&db_);
    view_ = std::make_unique<graph::DataGraphView>(db_);
    schema_ = std::make_unique<graph::SchemaGraph>(db_);
    core::TopologyBuilder builder(&db_, schema_.get(), view_.get());
    core::BuildConfig config;
    config.max_path_length = 3;
    ASSERT_TRUE(
        builder.BuildPair(ids_.protein, ids_.dna, config, &store_).ok());
    ASSERT_TRUE(
        builder.BuildPair(ids_.protein, ids_.protein, config, &store_).ok());
    core::PruneConfig prune;
    prune.frequency_threshold = 0;  // Prune all path topologies.
    ASSERT_TRUE(core::PruneFrequentTopologies(&db_, &store_, ids_.protein,
                                              ids_.dna, prune)
                    .ok());
    ASSERT_TRUE(core::PruneFrequentTopologies(&db_, &store_, ids_.protein,
                                              ids_.protein, prune)
                    .ok());
    engine_ = std::make_unique<engine::Engine>(
        &db_, &store_, schema_.get(), view_.get(),
        core::ScoreModel(&store_.catalog(),
                         biozon::MakeBiozonDomainKnowledge(ids_)));
    engine_->PrepareIndexes("Protein", "DNA");
  }

  /// Example 2.1: { (Protein, desc.ct('enzyme')), (DNA, type = 'mRNA') }.
  engine::TopologyQuery ExampleQuery(core::RankScheme scheme,
                                     size_t k = 10) const {
    engine::TopologyQuery q;
    q.entity_set1 = "Protein";
    q.pred1 = storage::MakeContainsKeyword(db_.GetTable("Protein")->schema(),
                                           "DESC", "enzyme");
    q.entity_set2 = "DNA";
    q.pred2 = storage::MakeEquals(db_.GetTable("DNA")->schema(), "TYPE",
                                  storage::Value("mRNA"));
    q.scheme = scheme;
    q.k = k;
    return q;
  }

  std::set<core::Tid> TidSet(const engine::QueryResult& result) const {
    std::set<core::Tid> tids;
    for (const auto& entry : result.entries) tids.insert(entry.tid);
    return tids;
  }

  /// The four expected topologies of Figure 5, identified by structure.
  std::set<core::Tid> ExpectedT1toT4() const {
    std::set<core::Tid> expected;
    for (const core::TopologyInfo& info : store_.catalog().infos()) {
      // T1: single encodes edge; T2: the P-U-D path; T3/T4: the two-class
      // unions. Exclude only the (34, 215) triangle: 3 nodes, 3 edges.
      bool is_triangle =
          info.graph.num_nodes() == 3 && info.graph.num_edges() == 3;
      if (!is_triangle &&
          store_.FindPair(ids_.protein, ids_.dna)->freq.count(info.tid)) {
        expected.insert(info.tid);
      }
    }
    return expected;
  }

  storage::Catalog db_;
  biozon::BiozonSchema ids_;
  std::unique_ptr<graph::DataGraphView> view_;
  std::unique_ptr<graph::SchemaGraph> schema_;
  core::TopologyStore store_;
  std::unique_ptr<engine::Engine> engine_;
};

TEST_F(EngineFig3Test, FullTopReturnsT1toT4) {
  auto result =
      engine_->Execute(ExampleQuery(core::RankScheme::kFreq),
                       MethodKind::kFullTop);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->entries.size(), 4u);
  EXPECT_EQ(TidSet(*result), ExpectedT1toT4());
}

TEST_F(EngineFig3Test, AllNineMethodsAgreeOnTheResultSet) {
  const std::set<core::Tid> expected = ExpectedT1toT4();
  for (MethodKind method :
       {MethodKind::kSql, MethodKind::kFullTop, MethodKind::kFastTop,
        MethodKind::kFullTopK, MethodKind::kFastTopK, MethodKind::kFullTopKEt,
        MethodKind::kFastTopKEt, MethodKind::kFullTopKOpt,
        MethodKind::kFastTopKOpt}) {
    for (core::RankScheme scheme :
         {core::RankScheme::kFreq, core::RankScheme::kRare,
          core::RankScheme::kDomain}) {
      auto result = engine_->Execute(ExampleQuery(scheme), method);
      ASSERT_TRUE(result.ok()) << engine::MethodKindToString(method);
      EXPECT_EQ(TidSet(*result), expected)
          << engine::MethodKindToString(method) << " / "
          << core::RankSchemeToString(scheme);
    }
  }
}

TEST_F(EngineFig3Test, ResultsAreScoreOrdered) {
  for (core::RankScheme scheme :
       {core::RankScheme::kFreq, core::RankScheme::kRare,
        core::RankScheme::kDomain}) {
    auto result =
        engine_->Execute(ExampleQuery(scheme), MethodKind::kFullTop);
    ASSERT_TRUE(result.ok());
    for (size_t i = 1; i < result->entries.size(); ++i) {
      bool ordered =
          result->entries[i - 1].score > result->entries[i].score ||
          (result->entries[i - 1].score == result->entries[i].score &&
           result->entries[i - 1].tid < result->entries[i].tid);
      EXPECT_TRUE(ordered);
    }
  }
}

TEST_F(EngineFig3Test, TopKIsPrefixOfFullRanking) {
  auto full = engine_->Execute(ExampleQuery(core::RankScheme::kDomain),
                               MethodKind::kFullTop);
  ASSERT_TRUE(full.ok());
  for (size_t k = 1; k <= 4; ++k) {
    for (MethodKind method :
         {MethodKind::kFullTopK, MethodKind::kFastTopK,
          MethodKind::kFullTopKEt, MethodKind::kFastTopKEt,
          MethodKind::kFullTopKOpt, MethodKind::kFastTopKOpt}) {
      auto topk = engine_->Execute(
          ExampleQuery(core::RankScheme::kDomain, k), method);
      ASSERT_TRUE(topk.ok());
      ASSERT_EQ(topk->entries.size(), std::min(k, full->entries.size()))
          << engine::MethodKindToString(method) << " k=" << k;
      for (size_t i = 0; i < topk->entries.size(); ++i) {
        EXPECT_EQ(topk->entries[i].tid, full->entries[i].tid)
            << engine::MethodKindToString(method) << " k=" << k;
      }
    }
  }
}

TEST_F(EngineFig3Test, HdgjPlanMatchesIdgjPlan) {
  engine::ExecOptions idgj;
  engine::ExecOptions hdgj;
  hdgj.dgj_algs = {engine::DgjAlg::kHdgj, engine::DgjAlg::kHdgj};
  auto r1 = engine_->Execute(ExampleQuery(core::RankScheme::kFreq),
                             MethodKind::kFastTopKEt, idgj);
  auto r2 = engine_->Execute(ExampleQuery(core::RankScheme::kFreq),
                             MethodKind::kFastTopKEt, hdgj);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  ASSERT_EQ(r1->entries.size(), r2->entries.size());
  for (size_t i = 0; i < r1->entries.size(); ++i) {
    EXPECT_EQ(r1->entries[i].tid, r2->entries[i].tid);
  }
  // HDGJ pays per-group rebuilds.
  EXPECT_GT(r2->stats.builds, 0u);
}

TEST_F(EngineFig3Test, EmptyPredicateSideYieldsEmptyResult) {
  engine::TopologyQuery q = ExampleQuery(core::RankScheme::kFreq);
  q.pred1 = storage::MakeContainsKeyword(db_.GetTable("Protein")->schema(),
                                         "DESC", "nonexistentkeyword");
  for (MethodKind method :
       {MethodKind::kSql, MethodKind::kFullTop, MethodKind::kFastTop,
        MethodKind::kFastTopKEt}) {
    auto result = engine_->Execute(q, method);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result->entries.empty())
        << engine::MethodKindToString(method);
  }
}

TEST_F(EngineFig3Test, UnconstrainedQueryIncludesTriangle) {
  engine::TopologyQuery q;
  q.entity_set1 = "Protein";
  q.entity_set2 = "DNA";
  q.scheme = core::RankScheme::kFreq;
  q.k = 10;
  auto result = engine_->Execute(q, MethodKind::kFullTop);
  ASSERT_TRUE(result.ok());
  // All five observed topologies, including the (34, 215) triangle.
  EXPECT_EQ(result->entries.size(), 5u);
}

TEST_F(EngineFig3Test, SelfPairQueryConsistentAcrossMethods) {
  engine::TopologyQuery q;
  q.entity_set1 = "Protein";
  q.pred1 = storage::MakeContainsKeyword(db_.GetTable("Protein")->schema(),
                                         "DESC", "enzyme");
  q.entity_set2 = "Protein";
  q.scheme = core::RankScheme::kFreq;
  q.k = 10;
  auto full = engine_->Execute(q, MethodKind::kFullTop);
  ASSERT_TRUE(full.ok());
  for (MethodKind method :
       {MethodKind::kSql, MethodKind::kFastTop, MethodKind::kFullTopK,
        MethodKind::kFastTopK, MethodKind::kFullTopKEt,
        MethodKind::kFastTopKEt}) {
    auto result = engine_->Execute(q, method);
    ASSERT_TRUE(result.ok()) << engine::MethodKindToString(method);
    EXPECT_EQ(TidSet(*result), TidSet(*full))
        << engine::MethodKindToString(method);
  }
}

TEST_F(EngineFig3Test, UnknownEntitySetFails) {
  engine::TopologyQuery q;
  q.entity_set1 = "Nope";
  q.entity_set2 = "DNA";
  auto result = engine_->Execute(q, MethodKind::kFullTop);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST_F(EngineFig3Test, UnbuiltPairFails) {
  engine::TopologyQuery q;
  q.entity_set1 = "Unigene";
  q.entity_set2 = "Interaction";
  auto result = engine_->Execute(q, MethodKind::kFullTop);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(EngineFig3Test, StatsArePopulated) {
  auto result = engine_->Execute(ExampleQuery(core::RankScheme::kFreq),
                                 MethodKind::kFullTop);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->stats.seconds, 0.0);
  EXPECT_GT(result->stats.rows_scanned, 0u);
  EXPECT_FALSE(result->stats.plan.empty());
}

TEST_F(EngineFig3Test, FastTopCountsOnlineSubqueries) {
  auto result = engine_->Execute(ExampleQuery(core::RankScheme::kFreq),
                                 MethodKind::kFastTop);
  ASSERT_TRUE(result.ok());
  // Two pruned topologies (T1, T2) -> two online checks.
  EXPECT_EQ(result->stats.subqueries, 2u);
}

TEST_F(EngineFig3Test, ExcludeWeakDropsPupTopologies) {
  // T3 and T4 contain the P-U-P homolog motif (two proteins under one
  // Unigene); with exclude_weak the Example-2.1 result shrinks to the
  // plain path topologies T1 and T2.
  engine::TopologyQuery q = ExampleQuery(core::RankScheme::kFreq);
  q.exclude_weak = true;
  auto filtered = engine_->Execute(q, MethodKind::kFullTop);
  ASSERT_TRUE(filtered.ok());
  EXPECT_EQ(filtered->entries.size(), 2u);
  for (const auto& entry : filtered->entries) {
    EXPECT_TRUE(store_.catalog().Get(entry.tid).is_path);
  }
  // Fast-Top agrees under exclusion.
  auto fast = engine_->Execute(q, MethodKind::kFastTop);
  ASSERT_TRUE(fast.ok());
  EXPECT_EQ(TidSet(*fast), TidSet(*filtered));
}

TEST_F(EngineFig3Test, InstancesRespectQueryPredicates) {
  // The (34, 215) triangle topology exists in AllTops, but protein 34 does
  // not satisfy the 'enzyme' predicate: the query-scoped instance API must
  // return nothing for it, while the pair-level core retrieval finds it.
  core::Tid triangle = core::kNoTid;
  for (const core::TopologyInfo& info : store_.catalog().infos()) {
    if (info.graph.num_nodes() == 3 && info.graph.num_edges() == 3) {
      triangle = info.tid;
    }
  }
  ASSERT_NE(triangle, core::kNoTid);
  auto scoped = engine_->Instances(ExampleQuery(core::RankScheme::kFreq),
                                   triangle);
  ASSERT_TRUE(scoped.ok());
  EXPECT_TRUE(scoped->empty());
  auto unscoped = core::RetrieveInstances(db_, store_, *schema_, *view_,
                                          ids_.protein, ids_.dna, triangle);
  EXPECT_EQ(unscoped.size(), 1u);
}

TEST_F(EngineFig3Test, InstancesOfQualifyingTopology) {
  // T1 = Protein-Encodes-DNA, witnessed by the qualifying pair (32, 214).
  core::Tid t1 = core::kNoTid;
  for (const core::TopologyInfo& info : store_.catalog().infos()) {
    if (info.graph.num_nodes() == 2) t1 = info.tid;
  }
  ASSERT_NE(t1, core::kNoTid);
  auto instances =
      engine_->Instances(ExampleQuery(core::RankScheme::kFreq), t1);
  ASSERT_TRUE(instances.ok());
  ASSERT_EQ(instances->size(), 1u);
  EXPECT_EQ((*instances)[0].a, 32);
  EXPECT_EQ((*instances)[0].b, 214);
  EXPECT_EQ((*instances)[0].subgraph.num_edges(), 1u);
}

TEST_F(EngineFig3Test, MethodKindPredicates) {
  EXPECT_FALSE(engine::MethodIsTopK(MethodKind::kSql));
  EXPECT_FALSE(engine::MethodIsTopK(MethodKind::kFullTop));
  EXPECT_FALSE(engine::MethodIsTopK(MethodKind::kFastTop));
  EXPECT_TRUE(engine::MethodIsTopK(MethodKind::kFullTopK));
  EXPECT_TRUE(engine::MethodIsTopK(MethodKind::kFastTopKEt));
  EXPECT_STREQ(engine::MethodKindToString(MethodKind::kFastTopKOpt),
               "Fast-Top-k-Opt");
}

TEST_F(EngineFig3Test, KZeroReturnsNothingFromTopKMethods) {
  engine::TopologyQuery q = ExampleQuery(core::RankScheme::kFreq, 0);
  for (MethodKind method :
       {MethodKind::kFullTopK, MethodKind::kFastTopK,
        MethodKind::kFullTopKEt, MethodKind::kFastTopKEt}) {
    auto result = engine_->Execute(q, method);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result->entries.empty())
        << engine::MethodKindToString(method);
  }
}

TEST_F(EngineFig3Test, QuerySwappedEntityOrderGivesSameSet) {
  engine::TopologyQuery q;
  q.entity_set1 = "DNA";
  q.pred1 = storage::MakeEquals(db_.GetTable("DNA")->schema(), "TYPE",
                                storage::Value("mRNA"));
  q.entity_set2 = "Protein";
  q.pred2 = storage::MakeContainsKeyword(db_.GetTable("Protein")->schema(),
                                         "DESC", "enzyme");
  q.scheme = core::RankScheme::kFreq;
  q.k = 10;
  auto swapped = engine_->Execute(q, MethodKind::kFullTop);
  auto normal = engine_->Execute(ExampleQuery(core::RankScheme::kFreq),
                                 MethodKind::kFullTop);
  ASSERT_TRUE(swapped.ok());
  ASSERT_TRUE(normal.ok());
  EXPECT_EQ(TidSet(*swapped), TidSet(*normal));
  // Also through the ET path, which maps sides onto E1/E2 explicitly.
  auto swapped_et = engine_->Execute(q, MethodKind::kFastTopKEt);
  ASSERT_TRUE(swapped_et.ok());
  EXPECT_EQ(TidSet(*swapped_et), TidSet(*normal));
}

}  // namespace
}  // namespace tsb
