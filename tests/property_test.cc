// Property-based sweeps: the deep cross-implementation invariants, run over
// several generator seeds with TEST_P.
//
//  * Offline build vs. online recompute: every AllTops row is reproducible
//    by ComputePairTopologies, and vice versa.
//  * Method equivalence: all nine strategies return identical result sets
//    on random databases, predicates, and ranking schemes.
//  * Pruning soundness: a pruned topology's path condition minus exceptions
//    recovers exactly its AllTops rows.
//  * Canonical codes vs. VF2 on random relabelings.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "biozon/domain.h"
#include "biozon/generator.h"
#include "common/rng.h"
#include "core/builder.h"
#include "core/pair_topologies.h"
#include "core/pruner.h"
#include "engine/engine.h"
#include "graph/canonical.h"
#include "graph/isomorphism.h"
#include "graph/path_enum.h"

namespace tsb {
namespace {

using engine::MethodKind;

std::set<core::Tid> TidSetOf(const engine::QueryResult& r) {
  std::set<core::Tid> tids;
  for (const auto& e : r.entries) tids.insert(e.tid);
  return tids;
}

class SeededWorld : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    biozon::GeneratorConfig config;
    config.seed = GetParam();
    config.scale = 0.06;  // ~180 proteins; keeps the SQL baseline affordable.
    ids_ = biozon::GenerateBiozon(config, &db_);
    view_ = std::make_unique<graph::DataGraphView>(db_);
    schema_ = std::make_unique<graph::SchemaGraph>(db_);
    core::TopologyBuilder builder(&db_, schema_.get(), view_.get());
    core::BuildConfig build;
    build.max_path_length = 3;
    ASSERT_TRUE(
        builder.BuildPair(ids_.protein, ids_.dna, build, &store_).ok());
    pair_ = store_.FindPair(ids_.protein, ids_.dna);

    // Median-frequency threshold: prunes the frequent simple topologies.
    std::vector<size_t> freqs;
    for (const auto& [tid, f] : pair_->freq) freqs.push_back(f);
    std::sort(freqs.begin(), freqs.end());
    core::PruneConfig prune;
    prune.frequency_threshold =
        freqs.empty() ? 0 : freqs[freqs.size() * 3 / 4];
    ASSERT_TRUE(core::PruneFrequentTopologies(&db_, &store_, ids_.protein,
                                              ids_.dna, prune)
                    .ok());
    engine_ = std::make_unique<engine::Engine>(
        &db_, &store_, schema_.get(), view_.get(),
        core::ScoreModel(&store_.catalog(),
                         biozon::MakeBiozonDomainKnowledge(ids_)));
    engine_->PrepareIndexes("Protein", "DNA");
  }

  engine::TopologyQuery Query(const std::string& tier_a,
                              const std::string& tier_b,
                              core::RankScheme scheme, size_t k = 10) {
    engine::TopologyQuery q;
    q.entity_set1 = "Protein";
    q.pred1 = biozon::SelectivityPredicate(db_, "Protein", tier_a);
    q.entity_set2 = "DNA";
    q.pred2 = biozon::SelectivityPredicate(db_, "DNA", tier_b);
    q.scheme = scheme;
    q.k = k;
    return q;
  }

  static std::set<core::Tid> TidSet(const engine::QueryResult& r) {
    std::set<core::Tid> tids;
    for (const auto& e : r.entries) tids.insert(e.tid);
    return tids;
  }

  storage::Catalog db_;
  biozon::BiozonSchema ids_;
  std::unique_ptr<graph::DataGraphView> view_;
  std::unique_ptr<graph::SchemaGraph> schema_;
  core::TopologyStore store_;
  const core::PairTopologyData* pair_ = nullptr;
  std::unique_ptr<engine::Engine> engine_;
};

TEST_P(SeededWorld, OfflineBuildMatchesOnlineRecompute) {
  // Group AllTops rows by pair.
  const storage::Table& alltops = *db_.GetTable(pair_->alltops_table);
  std::map<std::pair<int64_t, int64_t>, std::set<std::string>> built;
  for (size_t i = 0; i < alltops.num_rows(); ++i) {
    core::Tid tid = alltops.GetInt64(i, 2);
    built[{alltops.GetInt64(i, 0), alltops.GetInt64(i, 1)}].insert(
        store_.catalog().Get(tid).code);
  }
  ASSERT_FALSE(built.empty());
  // Recompute a sample of pairs (every 7th) from scratch.
  size_t index = 0;
  core::PairComputeLimits limits;
  limits.max_path_length = pair_->max_path_length;
  limits.union_limits.max_class_representatives =
      pair_->build_max_class_representatives;
  limits.union_limits.max_union_combinations =
      pair_->build_max_union_combinations;
  for (const auto& [pair_key, codes] : built) {
    if (index++ % 7 != 0) continue;
    core::PairComputation computed = core::ComputePairTopologies(
        *view_, *schema_, pair_key.first, pair_key.second, limits);
    std::set<std::string> recomputed;
    for (const auto& topo : computed.topologies) recomputed.insert(topo.code);
    EXPECT_EQ(recomputed, codes)
        << "pair (" << pair_key.first << ", " << pair_key.second << ")";
  }
}

TEST_P(SeededWorld, AllMethodsAgreeAcrossSelectivitiesAndSchemes) {
  for (const char* tier_a : {"selective", "unselective"}) {
    for (const char* tier_b : {"medium"}) {
      engine::TopologyQuery q =
          Query(tier_a, tier_b, core::RankScheme::kFreq, 1000);
      auto baseline = engine_->Execute(q, MethodKind::kFullTop);
      ASSERT_TRUE(baseline.ok());
      const std::set<core::Tid> expected = TidSet(*baseline);
      for (MethodKind method :
           {MethodKind::kSql, MethodKind::kFastTop, MethodKind::kFullTopK,
            MethodKind::kFastTopK, MethodKind::kFullTopKEt,
            MethodKind::kFastTopKEt, MethodKind::kFullTopKOpt,
            MethodKind::kFastTopKOpt}) {
        auto result = engine_->Execute(q, method);
        ASSERT_TRUE(result.ok()) << engine::MethodKindToString(method);
        EXPECT_EQ(TidSet(*result), expected)
            << engine::MethodKindToString(method) << " " << tier_a << "/"
            << tier_b;
      }
    }
  }
}

TEST_P(SeededWorld, TopKMethodsReturnExactPrefix) {
  for (core::RankScheme scheme :
       {core::RankScheme::kFreq, core::RankScheme::kRare,
        core::RankScheme::kDomain}) {
    engine::TopologyQuery q = Query("medium", "medium", scheme, 1000);
    auto full = engine_->Execute(q, MethodKind::kFullTopK);
    ASSERT_TRUE(full.ok());
    for (size_t k : {1, 3, 10}) {
      engine::TopologyQuery qk = Query("medium", "medium", scheme, k);
      for (MethodKind method :
           {MethodKind::kFastTopK, MethodKind::kFullTopKEt,
            MethodKind::kFastTopKEt, MethodKind::kFullTopKOpt,
            MethodKind::kFastTopKOpt}) {
        auto topk = engine_->Execute(qk, method);
        ASSERT_TRUE(topk.ok());
        size_t expected_size = std::min(k, full->entries.size());
        ASSERT_EQ(topk->entries.size(), expected_size)
            << engine::MethodKindToString(method) << " k=" << k;
        for (size_t i = 0; i < expected_size; ++i) {
          EXPECT_EQ(topk->entries[i].tid, full->entries[i].tid)
              << engine::MethodKindToString(method) << " k=" << k
              << " scheme=" << core::RankSchemeToString(scheme);
        }
      }
    }
  }
}

TEST_P(SeededWorld, PrunedPathConditionMinusExceptionsEqualsAllTopsRows) {
  const storage::Table& alltops = *db_.GetTable(pair_->alltops_table);
  const storage::Table& excp = *db_.GetTable(pair_->excptops_table);
  for (core::Tid tid : pair_->pruned_tids) {
    // Rows of AllTops carrying this topology.
    std::set<std::pair<int64_t, int64_t>> expected;
    for (size_t i = 0; i < alltops.num_rows(); ++i) {
      if (alltops.GetInt64(i, 2) == tid) {
        expected.insert({alltops.GetInt64(i, 0), alltops.GetInt64(i, 1)});
      }
    }
    // Exceptions recorded for this topology.
    std::set<std::pair<int64_t, int64_t>> exceptions;
    for (size_t i = 0; i < excp.num_rows(); ++i) {
      if (excp.GetInt64(i, 2) == tid) {
        exceptions.insert({excp.GetInt64(i, 0), excp.GetInt64(i, 1)});
      }
    }
    // Pairs satisfying the path condition, found by instance enumeration.
    const core::ClassInfo& cls =
        pair_->classes[pair_->pruned_class_of_tid.at(tid)];
    graph::SchemaPath sp = cls.path;
    if (sp.start() != pair_->t1) sp = sp.Reversed();
    std::set<std::pair<int64_t, int64_t>> condition;
    graph::ForEachSchemaPathInstance(
        *view_, sp, [&condition](const graph::PathInstance& p) {
          condition.insert({p.a(), p.b()});
        });
    // Path condition = true topology rows ∪ exceptions (disjointly).
    std::set<std::pair<int64_t, int64_t>> reconstructed = expected;
    for (const auto& e : exceptions) {
      EXPECT_EQ(expected.count(e), 0u) << "exception overlaps true rows";
      reconstructed.insert(e);
    }
    EXPECT_EQ(reconstructed, condition) << "tid " << tid;
  }
}

TEST_P(SeededWorld, EveryTopologyHasVerifiableWitness) {
  // For a sample of AllTops rows, the stored topology is subgraph-
  // isomorphic to a recomputed witness (checked with the independent VF2
  // matcher rather than canonical codes).
  const storage::Table& alltops = *db_.GetTable(pair_->alltops_table);
  core::PairComputeLimits limits;
  limits.max_path_length = pair_->max_path_length;
  size_t checked = 0;
  for (size_t i = 0; i < alltops.num_rows() && checked < 10; i += 11) {
    ++checked;
    core::Tid tid = alltops.GetInt64(i, 2);
    core::PairComputation computed = core::ComputePairTopologies(
        *view_, *schema_, alltops.GetInt64(i, 0), alltops.GetInt64(i, 1),
        limits);
    const graph::LabeledGraph& expected = store_.catalog().Get(tid).graph;
    bool matched = false;
    for (const auto& topo : computed.topologies) {
      if (graph::IsIsomorphic(topo.witness, expected)) {
        matched = true;
        break;
      }
    }
    EXPECT_TRUE(matched) << "row " << i;
  }
}

TEST_P(SeededWorld, FrequencyDistributionIsHeavyTailed) {
  // The property Section 4.2.1 measures: a few topologies cover most pairs.
  std::vector<size_t> freqs;
  for (const auto& [tid, f] : pair_->freq) freqs.push_back(f);
  ASSERT_GT(freqs.size(), 3u);
  std::sort(freqs.rbegin(), freqs.rend());
  size_t total = 0;
  for (size_t f : freqs) total += f;
  size_t head = 0;
  size_t head_count = std::max<size_t>(1, freqs.size() / 5);
  for (size_t i = 0; i < head_count; ++i) head += freqs[i];
  // Top 20% of topologies cover more than half of all related pairs.
  EXPECT_GT(head * 2, total);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededWorld,
                         ::testing::Values(101, 202, 303));

// --- Canonical-code invariance sweep ------------------------------------------

class CanonicalSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CanonicalSweep, CodesInvariantUnderRelabeling) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 60; ++trial) {
    size_t n = 2 + rng.NextBounded(7);
    graph::LabeledGraph g;
    for (size_t i = 0; i < n; ++i) {
      g.AddNode(static_cast<uint32_t>(rng.NextBounded(3)));
    }
    size_t m = rng.NextBounded(2 * n);
    for (size_t i = 0; i < m; ++i) {
      auto u = static_cast<graph::LabeledGraph::NodeId>(rng.NextBounded(n));
      auto v = static_cast<graph::LabeledGraph::NodeId>(rng.NextBounded(n));
      if (u == v) continue;
      g.AddEdge(u, v, static_cast<uint32_t>(rng.NextBounded(3)));
    }
    g.DedupeParallelEdges();
    // Random relabeling.
    std::vector<graph::LabeledGraph::NodeId> perm(n);
    for (size_t i = 0; i < n; ++i) {
      perm[i] = static_cast<graph::LabeledGraph::NodeId>(i);
    }
    rng.Shuffle(&perm);
    graph::LabeledGraph h;
    std::vector<uint32_t> labels(n);
    for (size_t i = 0; i < n; ++i) {
      labels[perm[i]] = g.node_label(static_cast<graph::LabeledGraph::NodeId>(i));
    }
    for (uint32_t l : labels) h.AddNode(l);
    for (const auto& e : g.edges()) h.AddEdge(perm[e.u], perm[e.v], e.label);
    EXPECT_EQ(graph::CanonicalCode(g), graph::CanonicalCode(h));
    EXPECT_TRUE(graph::IsIsomorphic(g, h));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CanonicalSweep,
                         ::testing::Values(11, 22, 33, 44));

// --- Path-length sweep: invariants hold for every l --------------------------

class LengthSweep : public ::testing::TestWithParam<size_t> {
 protected:
  void SetUp() override {
    biozon::GeneratorConfig config;
    config.seed = 404;
    config.scale = 0.05;
    ids_ = biozon::GenerateBiozon(config, &db_);
    view_ = std::make_unique<graph::DataGraphView>(db_);
    schema_ = std::make_unique<graph::SchemaGraph>(db_);
    core::TopologyBuilder builder(&db_, schema_.get(), view_.get());
    core::BuildConfig build;
    build.max_path_length = GetParam();
    ASSERT_TRUE(
        builder.BuildPair(ids_.protein, ids_.dna, build, &store_).ok());
    pair_ = store_.FindPair(ids_.protein, ids_.dna);
    core::PruneConfig prune;
    prune.frequency_threshold = pair_->num_related_pairs / 20;
    ASSERT_TRUE(core::PruneFrequentTopologies(&db_, &store_, ids_.protein,
                                              ids_.dna, prune)
                    .ok());
    engine_ = std::make_unique<engine::Engine>(
        &db_, &store_, schema_.get(), view_.get(),
        core::ScoreModel(&store_.catalog(),
                         biozon::MakeBiozonDomainKnowledge(ids_)));
  }

  storage::Catalog db_;
  biozon::BiozonSchema ids_;
  std::unique_ptr<graph::DataGraphView> view_;
  std::unique_ptr<graph::SchemaGraph> schema_;
  core::TopologyStore store_;
  const core::PairTopologyData* pair_ = nullptr;
  std::unique_ptr<engine::Engine> engine_;
};

TEST_P(LengthSweep, TopologySizesRespectLengthBound) {
  // A topology is a union of paths of length <= l between two terminals, so
  // it has at most ... nodes bounded by classes * (l - 1) + 2; the cheap
  // and universally valid bound is on every constituent path: no node is
  // farther than l hops from both terminals. We check the simple invariant
  // that every observed topology has at least 2 nodes and its edge count
  // is bounded by num_classes * l.
  const size_t l = GetParam();
  for (core::Tid tid : pair_->ObservedTids()) {
    const core::TopologyInfo& info = store_.catalog().Get(tid);
    EXPECT_GE(info.graph.num_nodes(), 2u);
    EXPECT_LE(info.graph.num_edges(), info.num_classes * l);
    EXPECT_TRUE(info.graph.IsConnected());
  }
}

TEST_P(LengthSweep, MethodsAgreeAtThisLength) {
  engine::TopologyQuery q;
  q.entity_set1 = "Protein";
  q.pred1 = biozon::SelectivityPredicate(db_, "Protein", "medium");
  q.entity_set2 = "DNA";
  q.pred2 = biozon::SelectivityPredicate(db_, "DNA", "medium");
  q.scheme = core::RankScheme::kFreq;
  q.k = 10000;
  auto baseline = engine_->Execute(q, MethodKind::kFullTop);
  ASSERT_TRUE(baseline.ok());
  std::vector<MethodKind> methods = {MethodKind::kFastTop,
                                     MethodKind::kFastTopK,
                                     MethodKind::kFastTopKEt};
  // The SQL baseline at l=4 checks thousands of candidates (the paper's
  // point); keep it to the short lengths here — l=3 equivalence is covered
  // by the SeededWorld suite.
  if (GetParam() <= 2) methods.push_back(MethodKind::kSql);
  for (MethodKind method : methods) {
    auto result = engine_->Execute(q, method);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(TidSetOf(*result), TidSetOf(*baseline))
        << engine::MethodKindToString(method) << " at l=" << GetParam();
  }
}

TEST_P(LengthSweep, LongerLObservesAtLeastAsManyRelatedPairs) {
  // Monotonicity across the sweep instance: compare against a fresh l=1
  // build. Every pair related within l=1 is related within l=GetParam().
  storage::Catalog db1;
  biozon::GeneratorConfig config;
  config.seed = 404;
  config.scale = 0.05;
  biozon::BiozonSchema ids = biozon::GenerateBiozon(config, &db1);
  graph::DataGraphView view(db1);
  graph::SchemaGraph schema(db1);
  core::TopologyStore store1;
  core::TopologyBuilder builder(&db1, &schema, &view);
  core::BuildConfig build;
  build.max_path_length = 1;
  ASSERT_TRUE(builder.BuildPair(ids.protein, ids.dna, build, &store1).ok());
  const core::PairTopologyData* base = store1.FindPair(ids.protein, ids.dna);
  EXPECT_GE(pair_->num_related_pairs, base->num_related_pairs);
}

INSTANTIATE_TEST_SUITE_P(Lengths, LengthSweep, ::testing::Values(1, 2, 4));

}  // namespace
}  // namespace tsb
