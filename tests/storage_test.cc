#include <gtest/gtest.h>

#include "storage/catalog.h"
#include "storage/column.h"
#include "storage/index.h"
#include "storage/predicate.h"
#include "storage/table.h"
#include "storage/value.h"

namespace tsb {
namespace storage {
namespace {

TableSchema ProteinSchema() {
  return TableSchema(
      {{"ID", ColumnType::kInt64}, {"DESC", ColumnType::kString}});
}

// --- Value -----------------------------------------------------------------

TEST(ValueTest, TypePredicates) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_TRUE(Value(int64_t{3}).is_int64());
  EXPECT_TRUE(Value(2.5).is_double());
  EXPECT_TRUE(Value("x").is_string());
}

TEST(ValueTest, AccessorsRoundTrip) {
  EXPECT_EQ(Value(int64_t{-7}).AsInt64(), -7);
  EXPECT_DOUBLE_EQ(Value(1.25).AsDouble(), 1.25);
  EXPECT_EQ(Value("abc").AsString(), "abc");
}

TEST(ValueTest, EqualityAndOrdering) {
  EXPECT_EQ(Value(int64_t{1}), Value(int64_t{1}));
  EXPECT_FALSE(Value(int64_t{1}) == Value(int64_t{2}));
  EXPECT_TRUE(Value(int64_t{1}) < Value(int64_t{2}));
  EXPECT_TRUE(Value("a") < Value("b"));
  // Null sorts before everything.
  EXPECT_TRUE(Value() < Value(int64_t{0}));
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value("abc").Hash(), Value("abc").Hash());
  EXPECT_NE(Value("abc").Hash(), Value("abd").Hash());
  EXPECT_NE(Value(int64_t{1}).Hash(), Value(1.0).Hash());
}

TEST(ValueTest, ToStringRenders) {
  EXPECT_EQ(Value(int64_t{42}).ToString(), "42");
  EXPECT_EQ(Value("hi").ToString(), "hi");
  EXPECT_EQ(Value().ToString(), "NULL");
}

// --- Column ------------------------------------------------------------------

TEST(ColumnTest, TypedAppendAndGet) {
  Column c(ColumnType::kInt64);
  c.AppendInt64(10);
  c.AppendInt64(20);
  EXPECT_EQ(c.size(), 2u);
  EXPECT_EQ(c.GetInt64(1), 20);
  EXPECT_EQ(c.GetValue(0).AsInt64(), 10);
}

TEST(ColumnTest, StringStorage) {
  Column c(ColumnType::kString);
  c.AppendString("a");
  c.AppendValue(Value("b"));
  EXPECT_EQ(c.GetString(1), "b");
  EXPECT_GT(c.MemoryBytes(), 0u);
}

// --- Table ------------------------------------------------------------------

TEST(TableTest, AppendAndRead) {
  Table t("Protein", ProteinSchema());
  ASSERT_TRUE(t.AppendRow({Value(int64_t{1}), Value("alpha")}).ok());
  ASSERT_TRUE(t.AppendRow({Value(int64_t{2}), Value("beta")}).ok());
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.GetInt64(0, 0), 1);
  EXPECT_EQ(t.GetString(1, 1), "beta");
  Tuple row = t.GetRow(1);
  EXPECT_EQ(row[0].AsInt64(), 2);
}

TEST(TableTest, RejectsWrongArity) {
  Table t("Protein", ProteinSchema());
  EXPECT_EQ(t.AppendRow({Value(int64_t{1})}).code(),
            StatusCode::kInvalidArgument);
}

TEST(TableTest, RejectsWrongType) {
  Table t("Protein", ProteinSchema());
  EXPECT_EQ(t.AppendRow({Value("oops"), Value("alpha")}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(t.num_rows(), 0u);
}

TEST(TableSchemaTest, FindColumn) {
  TableSchema s = ProteinSchema();
  EXPECT_EQ(s.FindColumn("DESC").value(), 1u);
  EXPECT_FALSE(s.FindColumn("nope").has_value());
  EXPECT_EQ(s.ColumnIndexOrDie("ID"), 0u);
}

// --- Predicates ---------------------------------------------------------------

class PredicateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    table_ = std::make_unique<Table>("Protein", ProteinSchema());
    table_->AppendRowOrDie({Value(int64_t{1}), Value("alpha enzyme")});
    table_->AppendRowOrDie({Value(int64_t{2}), Value("beta kinase")});
    table_->AppendRowOrDie({Value(int64_t{3}), Value("gamma enzyme kinase")});
  }
  std::unique_ptr<Table> table_;
};

TEST_F(PredicateTest, TrueMatchesAll) {
  EXPECT_EQ(CountRows(*table_, *MakeTrue()), 3u);
}

TEST_F(PredicateTest, EqualsInt64) {
  auto p = MakeEquals(table_->schema(), "ID", Value(int64_t{2}));
  auto rows = FilterRows(*table_, *p);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], 1u);
}

TEST_F(PredicateTest, ContainsKeyword) {
  auto p = MakeContainsKeyword(table_->schema(), "DESC", "enzyme");
  EXPECT_EQ(CountRows(*table_, *p), 2u);
}

TEST_F(PredicateTest, BooleanCombinators) {
  auto enzyme = MakeContainsKeyword(table_->schema(), "DESC", "enzyme");
  auto kinase = MakeContainsKeyword(table_->schema(), "DESC", "kinase");
  EXPECT_EQ(CountRows(*table_, *MakeAnd(enzyme, kinase)), 1u);
  EXPECT_EQ(CountRows(*table_, *MakeOr(enzyme, kinase)), 3u);
  EXPECT_EQ(CountRows(*table_, *MakeNot(enzyme)), 1u);
}

TEST_F(PredicateTest, Int64Between) {
  auto p = MakeInt64Between(table_->schema(), "ID", 2, 3);
  EXPECT_EQ(CountRows(*table_, *p), 2u);
}

TEST_F(PredicateTest, SelectivityRatio) {
  auto p = MakeContainsKeyword(table_->schema(), "DESC", "kinase");
  EXPECT_NEAR(Selectivity(*table_, *p), 2.0 / 3.0, 1e-12);
}

TEST_F(PredicateTest, ToStringDescribes) {
  auto p = MakeAnd(MakeContainsKeyword(table_->schema(), "DESC", "enzyme"),
                   MakeEquals(table_->schema(), "ID", Value(int64_t{1})));
  EXPECT_NE(p->ToString().find("enzyme"), std::string::npos);
  EXPECT_NE(p->ToString().find("AND"), std::string::npos);
}

// --- Indexes -------------------------------------------------------------------

TEST(HashIndexTest, LookupByKey) {
  Table t("Edge", TableSchema({{"ID", ColumnType::kInt64},
                               {"FK", ColumnType::kInt64}}));
  t.AppendRowOrDie({Value(int64_t{1}), Value(int64_t{10})});
  t.AppendRowOrDie({Value(int64_t{2}), Value(int64_t{10})});
  t.AppendRowOrDie({Value(int64_t{3}), Value(int64_t{20})});
  HashIndex idx(t, "FK");
  EXPECT_EQ(idx.Lookup(10).size(), 2u);
  EXPECT_EQ(idx.Lookup(20).size(), 1u);
  EXPECT_TRUE(idx.Lookup(99).empty());
  EXPECT_EQ(idx.DistinctKeys(), 2u);
}

TEST(KeywordIndexTest, LookupByToken) {
  Table t("Protein", ProteinSchema());
  t.AppendRowOrDie({Value(int64_t{1}), Value("alpha enzyme")});
  t.AppendRowOrDie({Value(int64_t{2}), Value("Enzyme enzyme beta")});
  KeywordIndex idx(t, "DESC");
  // Duplicate tokens within a row are deduplicated.
  EXPECT_EQ(idx.Lookup("enzyme").size(), 2u);
  EXPECT_EQ(idx.Lookup("ENZYME").size(), 2u);
  EXPECT_TRUE(idx.Lookup("gamma").empty());
}

// --- Catalog ------------------------------------------------------------------

TEST(CatalogTest, CreateAndDropTables) {
  Catalog db;
  ASSERT_TRUE(db.CreateTable("T", ProteinSchema()).ok());
  EXPECT_FALSE(db.CreateTable("T", ProteinSchema()).ok());  // Duplicate.
  EXPECT_NE(db.FindTable("T"), nullptr);
  ASSERT_TRUE(db.DropTable("T").ok());
  EXPECT_EQ(db.FindTable("T"), nullptr);
  EXPECT_FALSE(db.DropTable("T").ok());
}

TEST(CatalogTest, RegisterEntityAndRelationshipSets) {
  Catalog db;
  ASSERT_TRUE(db.CreateTable("Protein", ProteinSchema()).ok());
  ASSERT_TRUE(db.CreateTable("DNA", ProteinSchema()).ok());
  ASSERT_TRUE(db.CreateTable("Encodes",
                             TableSchema({{"ID", ColumnType::kInt64},
                                          {"PID", ColumnType::kInt64},
                                          {"DID", ColumnType::kInt64}}))
                  .ok());
  auto p = db.RegisterEntitySet("Protein", "Protein", "ID");
  auto d = db.RegisterEntitySet("DNA", "DNA", "ID");
  ASSERT_TRUE(p.ok());
  ASSERT_TRUE(d.ok());
  auto rel = db.RegisterRelationshipSet("Encodes", "Encodes", "ID", "PID",
                                        p.value(), "DID", d.value());
  ASSERT_TRUE(rel.ok());
  EXPECT_EQ(db.entity_sets().size(), 2u);
  EXPECT_EQ(db.relationship_sets().size(), 1u);
  EXPECT_EQ(db.FindEntitySet("DNA")->id, d.value());
  EXPECT_EQ(db.FindRelationshipSet("Encodes")->from_type, p.value());
}

TEST(CatalogTest, RejectsBadRegistrations) {
  Catalog db;
  EXPECT_FALSE(db.RegisterEntitySet("X", "NoTable", "ID").ok());
  ASSERT_TRUE(db.CreateTable("T", ProteinSchema()).ok());
  EXPECT_FALSE(db.RegisterEntitySet("X", "T", "NOPE").ok());
}

TEST(CatalogTest, IndexCachingAndInvalidation) {
  Catalog db;
  Table* t = db.CreateTable("T", ProteinSchema()).value();
  t->AppendRowOrDie({Value(int64_t{1}), Value("x")});
  const HashIndex& i1 = db.GetOrBuildHashIndex("T", "ID");
  const HashIndex& i2 = db.GetOrBuildHashIndex("T", "ID");
  EXPECT_EQ(&i1, &i2);  // Cached.
  db.InvalidateIndexes("T");
  const HashIndex& i3 = db.GetOrBuildHashIndex("T", "ID");
  EXPECT_EQ(i3.num_keys(), 1u);
}

TEST(CatalogTest, MemoryAccounting) {
  Catalog db;
  Table* t = db.CreateTable("AllTops_X", ProteinSchema()).value();
  t->AppendRowOrDie({Value(int64_t{1}), Value("some description")});
  EXPECT_GT(db.MemoryBytesWithPrefix("AllTops_"), 0u);
  EXPECT_EQ(db.MemoryBytesWithPrefix("LeftTops_"), 0u);
}

}  // namespace
}  // namespace storage
}  // namespace tsb
