// Fleet-wide cost accounting over a live grid (the PR's acceptance
// surface): four in-process net::ShardServer "processes" over UDS, each
// with its own ServiceMetrics / SlowQueryLog / admin channel, driven with
// real query frames and scraped with real kAdminRequest cost-snapshot
// frames — the exact decode+merge path `topctl top` runs. Asserts that
// the wire-scraped histograms carry exact bucket counts (requests in ==
// bucket counts out), that merging the per-process snapshots is
// independent of polling order down to the canonical encoding bytes, and
// that the merged per-method quantiles equal the quantiles of the union
// histogram (merging per-process buckets IS recording the union stream —
// the elementwise-sum property LatencyHistogramTest proves in isolation,
// exercised here end to end through servers, codecs, and sockets).

#include <gtest/gtest.h>

#include <unistd.h>

#include <memory>
#include <string>
#include <vector>

#include "biozon/domain.h"
#include "biozon/fig3.h"
#include "core/builder.h"
#include "core/pruner.h"
#include "engine/engine.h"
#include "net/endpoint_client.h"
#include "net/shard_server.h"
#include "obs/admin.h"
#include "obs/cost.h"
#include "obs/fleet.h"
#include "obs/slow_log.h"
#include "service/metrics.h"
#include "shard/frame_handler.h"
#include "wire/codec.h"
#include "wire/message.h"

namespace tsb {
namespace {

using engine::MethodKind;

std::string UdsPath(size_t i) {
  return "/tmp/tsb_fleet_test_" + std::to_string(::getpid()) + "_" +
         std::to_string(i) + ".sock";
}

/// One "process" of the grid: its own metrics, slow log, admin surface,
/// frame handler, and socket server — sharing only the catalog, store,
/// and engine, exactly as replica processes share a base image on disk.
struct GridProcess {
  service::ServiceMetrics metrics;
  obs::SlowQueryLog slow_log{obs::SlowQueryConfig{1e-9, 16}};
  obs::AdminState admin;
  std::unique_ptr<shard::ShardFrameHandler> handler;
  std::unique_ptr<net::ShardServer> server;
  net::ShardEndpoint endpoint;
  uint64_t requests_driven = 0;
  uint64_t request_bytes_driven = 0;
};

class FleetGridTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ids_ = biozon::BuildFigure3Database(&db_);
    view_ = std::make_unique<graph::DataGraphView>(db_);
    schema_ = std::make_unique<graph::SchemaGraph>(db_);
    core::TopologyBuilder builder(&db_, schema_.get(), view_.get());
    core::BuildConfig config;
    config.max_path_length = 3;
    ASSERT_TRUE(builder.BuildAllPairs(config, &store_).ok());
    core::PruneConfig prune;
    prune.frequency_threshold = 0;
    std::vector<std::pair<storage::EntityTypeId, storage::EntityTypeId>>
        keys;
    for (const auto& [key, pair] : store_.pairs()) keys.push_back(key);
    for (const auto& [t1, t2] : keys) {
      ASSERT_TRUE(
          core::PruneFrequentTopologies(&db_, &store_, t1, t2, prune).ok());
    }
    engine_ = std::make_unique<engine::Engine>(
        &db_, &store_, schema_.get(), view_.get(),
        core::ScoreModel(&store_.catalog(),
                         biozon::MakeBiozonDomainKnowledge(ids_)));
  }

  /// Starts one grid process on its own UDS endpoint, wired the way
  /// tools/shard_server_main.cc wires a real daemon: metrics + slow log
  /// observability, and an admin cost_snapshot built from them.
  void StartProcess(GridProcess* p, size_t index) {
    p->admin.slow_log = &p->slow_log;
    p->admin.cost_snapshot = [p]() {
      return service::BuildFleetSnapshot(p->metrics.Snapshot(),
                                         /*replicas=*/nullptr, &p->slow_log);
    };
    p->handler = std::make_unique<shard::ShardFrameHandler>(
        &db_, engine_.get(),
        [this]() {
          return std::shared_ptr<core::TopologyStore>(
              &store_, [](core::TopologyStore*) {});
        });
    shard::ShardObservability observability;
    observability.metrics = &p->metrics;
    observability.slow_log = &p->slow_log;
    observability.admin = &p->admin;
    p->handler->set_observability(observability);
    net::ShardServerConfig config;
    config.uds_path = UdsPath(index);
    p->server =
        std::make_unique<net::ShardServer>(p->handler.get(), config);
    ASSERT_TRUE(p->server->Start().ok());
    p->endpoint = net::ShardEndpoint::Unix(config.uds_path);
  }

  /// One live query round-trip against an endpoint; returns the encoded
  /// request frame size (what the shard bills as deserialized wire bytes).
  void DriveQuery(GridProcess* p, MethodKind method, uint32_t k) {
    wire::WireRequest request;
    request.id = ++next_request_id_;
    request.query.entity_set1 = "Protein";
    request.query.entity_set2 = "DNA";
    request.query.k = k;
    request.query.scheme = core::RankScheme::kFreq;
    request.method = method;
    request.options.skip_pruned_checks = true;
    std::string frame;
    wire::EncodeQueryRequest(request, &frame);

    net::EndpointClient client(p->endpoint);
    Result<std::string> response =
        client.RoundTrip(frame, net::DeadlineAfter(10.0));
    ASSERT_TRUE(response.ok()) << response.status();
    auto decoded = wire::DecodeQueryResponse(*response);
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    ASSERT_TRUE(decoded->error.ok()) << decoded->error.message;
    p->requests_driven++;
    p->request_bytes_driven += frame.size();
  }

  /// The topctl scrape: one kAdminRequest(cost-snapshot) round trip,
  /// decoded into a FleetSnapshot.
  obs::FleetSnapshot Scrape(const GridProcess& p) {
    wire::AdminRequest request;
    request.command = wire::AdminCommand::kCostSnapshot;
    std::string frame;
    wire::EncodeAdminRequest(request, &frame);
    net::EndpointClient client(p.endpoint);
    Result<std::string> raw =
        client.RoundTrip(frame, net::DeadlineAfter(10.0));
    EXPECT_TRUE(raw.ok()) << raw.status();
    auto response = wire::DecodeAdminResponse(*raw);
    EXPECT_TRUE(response.ok());
    EXPECT_TRUE(response->error.ok()) << response->error.message;
    auto snapshot = obs::DecodeFleetSnapshot(response->body);
    EXPECT_TRUE(snapshot.ok()) << snapshot.status();
    return *snapshot;
  }

  storage::Catalog db_;
  biozon::BiozonSchema ids_;
  std::unique_ptr<graph::DataGraphView> view_;
  std::unique_ptr<graph::SchemaGraph> schema_;
  core::TopologyStore store_;
  std::unique_ptr<engine::Engine> engine_;
  uint64_t next_request_id_ = 0;
};

TEST_F(FleetGridTest, MergedScrapeOfALiveGridIsExactAndOrderIndependent) {
  constexpr size_t kGrid = 4;  // 2 shards × 2 replicas' worth of processes.
  std::vector<std::unique_ptr<GridProcess>> grid;
  for (size_t i = 0; i < kGrid; ++i) {
    grid.push_back(std::make_unique<GridProcess>());
    StartProcess(grid[i].get(), i);
  }

  // Uneven, deterministic traffic: process i serves i+1 full-top and
  // 2*(i+1) fast-topk queries — 30 requests total across the grid.
  for (size_t i = 0; i < kGrid; ++i) {
    for (size_t r = 0; r < i + 1; ++r) {
      DriveQuery(grid[i].get(), MethodKind::kFullTop, 5);
    }
    for (size_t r = 0; r < 2 * (i + 1); ++r) {
      DriveQuery(grid[i].get(), MethodKind::kFastTopK, 3);
    }
  }

  // Scrape every process over the wire. Each per-process snapshot must
  // account for exactly the traffic that process served: the histograms
  // are exact counters, not samples.
  std::vector<obs::FleetSnapshot> scrapes;
  uint64_t total_driven = 0;
  for (size_t i = 0; i < kGrid; ++i) {
    obs::FleetSnapshot snap = Scrape(*grid[i]);
    EXPECT_EQ(snap.processes, 1u) << i;
    EXPECT_EQ(snap.total_requests, grid[i]->requests_driven) << i;
    uint64_t hist_total = 0;
    for (const obs::FleetMethodStats& m : snap.methods) {
      EXPECT_EQ(m.latency.count(), m.requests) << i << " " << m.method;
      hist_total += m.latency.count();
      // Every executed query carried a real bill: CPU was measured and
      // the request frame itself was charged as deserialized bytes.
      EXPECT_GT(m.cost.cpu_ns, 0u) << i << " " << m.method;
    }
    EXPECT_EQ(hist_total, grid[i]->requests_driven) << i;
    uint64_t deserialized = 0;
    for (const obs::FleetMethodStats& m : snap.methods) {
      deserialized += m.cost.bytes_deserialized;
    }
    EXPECT_GE(deserialized, grid[i]->request_bytes_driven) << i;
    // The slow-log threshold is ~0, so the scrape carries top-cost rows.
    EXPECT_FALSE(snap.top_queries.empty()) << i;
    total_driven += grid[i]->requests_driven;
    scrapes.push_back(std::move(snap));
  }
  EXPECT_EQ(total_driven, 30u);

  // The union view: per-method histograms merged across the whole grid in
  // index order. Merging buckets is exactly recording the union stream,
  // so these are the single-scrape histograms a lone process serving all
  // 30 requests would have produced.
  obs::LatencyHistogram union_full, union_fast;
  uint64_t union_full_requests = 0;
  for (const obs::FleetSnapshot& snap : scrapes) {
    for (const obs::FleetMethodStats& m : snap.methods) {
      if (m.method == "Full-Top") {
        union_full.Merge(m.latency);
        union_full_requests += m.requests;
      } else if (m.method == "Fast-Top-k") {
        union_fast.Merge(m.latency);
      }
    }
  }
  EXPECT_EQ(union_full_requests, 1u + 2u + 3u + 4u);
  EXPECT_EQ(union_full.count(), union_full_requests);
  EXPECT_EQ(union_fast.count(), 2u * (1u + 2u + 3u + 4u));

  // Merge the snapshots the way topctl does, in three different polling
  // orders. Everything integer — bucket counts, request totals, cost
  // bills — must be identical whatever the order (only the f64 latency
  // sums may differ in the last bit, floating addition not being
  // associative), so the merged per-method histograms equal the union
  // histograms bucket for bucket, the percentiles match exactly, and the
  // rendered dashboard comes out character-identical.
  const std::vector<std::vector<size_t>> orders = {
      {0, 1, 2, 3}, {3, 2, 1, 0}, {2, 0, 3, 1}};
  std::string first_rendering;
  for (const std::vector<size_t>& order : orders) {
    obs::FleetSnapshot merged = scrapes[order[0]];
    for (size_t i = 1; i < order.size(); ++i) {
      merged.Merge(scrapes[order[i]]);
    }
    EXPECT_EQ(merged.processes, kGrid);
    EXPECT_EQ(merged.total_requests, total_driven);

    if (first_rendering.empty()) {
      first_rendering = merged.Render();
    } else {
      EXPECT_EQ(merged.Render(), first_rendering);
    }

    for (const obs::FleetMethodStats& m : merged.methods) {
      const obs::LatencyHistogram& union_hist =
          m.method == "Full-Top" ? union_full : union_fast;
      EXPECT_TRUE(m.latency == union_hist) << m.method;
      for (const double q : {0.5, 0.95, 0.99, 1.0}) {
        EXPECT_EQ(m.latency.Quantile(q), union_hist.Quantile(q))
            << m.method << " q=" << q;
      }
    }

    // The dashboard renders the merged truth.
    const std::string text = merged.Render();
    EXPECT_NE(text.find("fleet cost snapshot (4 processes)"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("Full-Top"), std::string::npos);
    EXPECT_NE(text.find("Fast-Top-k"), std::string::npos);
    EXPECT_NE(text.find("top-cost queries"), std::string::npos) << text;
  }

  for (auto& p : grid) p->server->Stop();
}

TEST_F(FleetGridTest, CostAccountingToggleKeepsServedBytesIdentical) {
  // The byte-identity oracle at the wire level: the same query frame
  // served with accounting on and off must differ only in the bill it
  // carries — decoded entries are equal element for element.
  auto p = std::make_unique<GridProcess>();
  StartProcess(p.get(), 9);

  wire::WireRequest request;
  request.id = 1;
  request.query.entity_set1 = "Protein";
  request.query.entity_set2 = "DNA";
  request.query.k = 10;
  request.query.scheme = core::RankScheme::kFreq;
  request.options.skip_pruned_checks = true;

  const std::vector<MethodKind> methods = {
      MethodKind::kSql,         MethodKind::kFullTop,
      MethodKind::kFastTop,     MethodKind::kFullTopK,
      MethodKind::kFastTopK,    MethodKind::kFullTopKEt,
      MethodKind::kFastTopKEt,  MethodKind::kFullTopKOpt,
      MethodKind::kFastTopKOpt,
  };
  net::EndpointClient client(p->endpoint);
  for (MethodKind method : methods) {
    request.method = method;
    std::string frame;
    wire::EncodeQueryRequest(request, &frame);

    ASSERT_TRUE(obs::CostTracker::enabled());
    Result<std::string> on = client.RoundTrip(frame, net::DeadlineAfter(10.0));
    obs::CostTracker::set_enabled(false);
    Result<std::string> off =
        client.RoundTrip(frame, net::DeadlineAfter(10.0));
    obs::CostTracker::set_enabled(true);

    ASSERT_TRUE(on.ok()) << engine::MethodKindToString(method);
    ASSERT_TRUE(off.ok()) << engine::MethodKindToString(method);
    auto on_decoded = wire::DecodeQueryResponse(*on);
    auto off_decoded = wire::DecodeQueryResponse(*off);
    ASSERT_TRUE(on_decoded.ok() && off_decoded.ok());
    ASSERT_EQ(on_decoded->error.ok(), off_decoded->error.ok())
        << engine::MethodKindToString(method);
    if (!on_decoded->error.ok()) continue;
    EXPECT_EQ(on_decoded->result.entries, off_decoded->result.entries)
        << engine::MethodKindToString(method);
    // Accounting off means a zero bill — the counters must never invent
    // work that was not measured.
    EXPECT_EQ(off_decoded->result.stats.cpu_ns, 0u);
    EXPECT_EQ(off_decoded->result.stats.bytes_deserialized, 0u);
    EXPECT_GT(on_decoded->result.stats.cpu_ns, 0u)
        << engine::MethodKindToString(method);
  }

  p->server->Stop();
}

}  // namespace
}  // namespace tsb
