#include <gtest/gtest.h>

#include <memory>

#include "exec/dgj.h"
#include "exec/joins.h"
#include "exec/operator.h"
#include "exec/scans.h"
#include "exec/shaping.h"
#include "storage/catalog.h"

namespace tsb {
namespace exec {
namespace {

using storage::ColumnType;
using storage::TableSchema;
using storage::Value;

/// Fixture: an entity table and a grouped "Tops" table mirroring the
/// topology plans' shapes.
class ExecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    storage::Table* ent =
        db_.CreateTable("Ent", TableSchema({{"ID", ColumnType::kInt64},
                                            {"DESC", ColumnType::kString}}))
            .value();
    ent->AppendRowOrDie({Value(int64_t{1}), Value("alpha enzyme")});
    ent->AppendRowOrDie({Value(int64_t{2}), Value("beta")});
    ent->AppendRowOrDie({Value(int64_t{3}), Value("gamma enzyme")});
    ent->AppendRowOrDie({Value(int64_t{4}), Value("delta")});

    storage::Table* tops =
        db_.CreateTable("Tops", TableSchema({{"E1", ColumnType::kInt64},
                                             {"E2", ColumnType::kInt64},
                                             {"TID", ColumnType::kInt64}}))
            .value();
    // Groups by TID: 10 -> two rows, 20 -> one row, 30 -> two rows.
    tops->AppendRowOrDie(
        {Value(int64_t{1}), Value(int64_t{2}), Value(int64_t{10})});
    tops->AppendRowOrDie(
        {Value(int64_t{3}), Value(int64_t{4}), Value(int64_t{10})});
    tops->AppendRowOrDie(
        {Value(int64_t{2}), Value(int64_t{4}), Value(int64_t{20})});
    tops->AppendRowOrDie(
        {Value(int64_t{1}), Value(int64_t{4}), Value(int64_t{30})});
    tops->AppendRowOrDie(
        {Value(int64_t{3}), Value(int64_t{2}), Value(int64_t{30})});
  }

  std::unique_ptr<Operator> ScanEnt(storage::PredicateRef pred = nullptr) {
    return std::make_unique<SeqScanOp>(db_.GetTable("Ent"), "E", pred);
  }
  std::unique_ptr<Operator> ScanTops() {
    return std::make_unique<SeqScanOp>(db_.GetTable("Tops"), "T", nullptr);
  }
  std::unique_ptr<GroupSourceOp> TidSource() {
    // Three groups in "score order" 30, 20, 10.
    std::vector<Tuple> groups = {
        {Value(int64_t{30}), Value(3.0)},
        {Value(int64_t{20}), Value(2.0)},
        {Value(int64_t{10}), Value(1.0)},
    };
    return std::make_unique<GroupSourceOp>(
        std::move(groups), OutputSchema({"TI.TID", "TI.SCORE"}));
  }

  storage::Catalog db_;
};

TEST_F(ExecTest, SeqScanEmitsAllRows) {
  auto scan = ScanEnt();
  auto rows = RunToVector(scan.get());
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0][0].AsInt64(), 1);
  EXPECT_EQ(scan->schema().name(1), "E.DESC");
}

TEST_F(ExecTest, SeqScanAppliesPredicate) {
  auto pred = storage::MakeContainsKeyword(db_.GetTable("Ent")->schema(),
                                           "DESC", "enzyme");
  auto scan = ScanEnt(pred);
  auto rows = RunToVector(scan.get());
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1][0].AsInt64(), 3);
  EXPECT_EQ(scan->counters().rows_scanned, 4u);
}

TEST_F(ExecTest, OperatorsAreReopenable) {
  auto scan = ScanEnt();
  EXPECT_EQ(RunToVector(scan.get()).size(), 4u);
  EXPECT_EQ(RunToVector(scan.get()).size(), 4u);  // Open() resets.
}

TEST_F(ExecTest, FilterOpCallback) {
  auto filter = std::make_unique<FilterOp>(
      ScanEnt(), [](const Tuple& t) { return t[0].AsInt64() % 2 == 1; });
  EXPECT_EQ(RunToVector(filter.get()).size(), 2u);
}

TEST_F(ExecTest, VectorSourceRoundTrip) {
  std::vector<Tuple> tuples = {{Value(int64_t{5})}, {Value(int64_t{6})}};
  VectorSourceOp source(std::move(tuples), OutputSchema({"X"}));
  auto rows = RunToVector(&source);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1][0].AsInt64(), 6);
}

TEST_F(ExecTest, HashJoinMatchesKeys) {
  auto join = std::make_unique<HashJoinOp>(ScanTops(), ScanEnt(), "T.E1",
                                           "E.ID");
  auto rows = RunToVector(join.get());
  EXPECT_EQ(rows.size(), 5u);  // Every E1 value exists in Ent.
  // Output schema concatenates probe then build.
  EXPECT_EQ(join->schema().IndexOf("T.TID"), 2u);
  EXPECT_EQ(join->schema().IndexOf("E.ID"), 3u);
  for (const Tuple& row : rows) {
    EXPECT_EQ(row[0].AsInt64(), row[3].AsInt64());  // Join key matches.
  }
}

TEST_F(ExecTest, HashJoinWithFilteredBuildSide) {
  auto pred = storage::MakeContainsKeyword(db_.GetTable("Ent")->schema(),
                                           "DESC", "enzyme");
  auto join = std::make_unique<HashJoinOp>(ScanTops(), ScanEnt(pred), "T.E1",
                                           "E.ID");
  auto rows = RunToVector(join.get());
  // E1 in {1, 3} only: rows 1, 2, 4, 5.
  EXPECT_EQ(rows.size(), 4u);
}

TEST_F(ExecTest, IndexNLJoinProbesIndex) {
  const storage::HashIndex& index = db_.GetOrBuildHashIndex("Ent", "ID");
  auto join = std::make_unique<IndexNLJoinOp>(
      ScanTops(), db_.GetTable("Ent"), &index, "E", "T.E2", nullptr);
  auto rows = RunToVector(join.get());
  EXPECT_EQ(rows.size(), 5u);
  EXPECT_EQ(join->counters().probes, 5u);
}

TEST_F(ExecTest, IndexNLJoinInnerPredicate) {
  const storage::HashIndex& index = db_.GetOrBuildHashIndex("Ent", "ID");
  auto pred = storage::MakeContainsKeyword(db_.GetTable("Ent")->schema(),
                                           "DESC", "enzyme");
  auto join = std::make_unique<IndexNLJoinOp>(
      ScanTops(), db_.GetTable("Ent"), &index, "E", "T.E2", pred);
  // E2 values: 2,4,4,4,2 -> none contain 'enzyme' (ids 2 and 4).
  EXPECT_TRUE(RunToVector(join.get()).empty());
}

TEST_F(ExecTest, ProjectSelectsColumns) {
  auto proj = std::make_unique<ProjectOp>(
      ScanTops(), std::vector<std::string>{"T.TID", "T.E1"});
  auto rows = RunToVector(proj.get());
  ASSERT_EQ(rows.size(), 5u);
  EXPECT_EQ(rows[0].size(), 2u);
  EXPECT_EQ(rows[0][0].AsInt64(), 10);
  EXPECT_EQ(rows[0][1].AsInt64(), 1);
}

TEST_F(ExecTest, DistinctDeduplicates) {
  auto dist = std::make_unique<DistinctOp>(
      std::make_unique<ProjectOp>(ScanTops(),
                                  std::vector<std::string>{"T.TID"}),
      std::vector<std::string>{"T.TID"});
  EXPECT_EQ(RunToVector(dist.get()).size(), 3u);
}

TEST_F(ExecTest, SortOrdersDescendingWithTieBreak) {
  auto sort = std::make_unique<SortOp>(ScanTops(), "T.TID", true, "T.E1");
  auto rows = RunToVector(sort.get());
  ASSERT_EQ(rows.size(), 5u);
  EXPECT_EQ(rows[0][2].AsInt64(), 30);
  EXPECT_EQ(rows[0][0].AsInt64(), 1);  // Tie break by E1 ascending.
  EXPECT_EQ(rows[1][2].AsInt64(), 30);
  EXPECT_EQ(rows[1][0].AsInt64(), 3);
  EXPECT_EQ(rows[4][2].AsInt64(), 10);
}

TEST_F(ExecTest, LimitStopsEarly) {
  auto limit = std::make_unique<LimitOp>(ScanTops(), 2);
  EXPECT_EQ(RunToVector(limit.get()).size(), 2u);
  auto zero = std::make_unique<LimitOp>(ScanTops(), 0);
  EXPECT_TRUE(RunToVector(zero.get()).empty());
}

TEST_F(ExecTest, UnionAllConcatenates) {
  std::vector<std::unique_ptr<Operator>> children;
  children.push_back(
      std::make_unique<ProjectOp>(ScanEnt(), std::vector<std::string>{"E.ID"}));
  children.push_back(std::make_unique<ProjectOp>(
      ScanTops(), std::vector<std::string>{"T.TID"}));
  auto u = std::make_unique<UnionAllOp>(std::move(children));
  EXPECT_EQ(RunToVector(u.get()).size(), 9u);
}

// --- DGJ operators -------------------------------------------------------------

TEST_F(ExecTest, GroupSourceOneTuplePerGroup) {
  auto source = TidSource();
  source->Open();
  Tuple t;
  ASSERT_TRUE(source->Next(&t));
  EXPECT_EQ(t[0].AsInt64(), 30);
  source->AdvanceToNextGroup();  // No-op for single-tuple groups.
  ASSERT_TRUE(source->Next(&t));
  EXPECT_EQ(t[0].AsInt64(), 20);
}

TEST_F(ExecTest, IdgjExpandsGroupsInOrder) {
  const storage::HashIndex& tid_index = db_.GetOrBuildHashIndex("Tops", "TID");
  auto idgj = std::make_unique<IdgjOp>(TidSource(), db_.GetTable("Tops"),
                                       &tid_index, "T", "TI.TID", nullptr);
  auto rows = RunToVector(idgj.get());
  ASSERT_EQ(rows.size(), 5u);
  // Group order preserved: TID 30 rows, then 20, then 10.
  size_t tid_col = idgj->schema().IndexOf("T.TID");
  EXPECT_EQ(rows[0][tid_col].AsInt64(), 30);
  EXPECT_EQ(rows[1][tid_col].AsInt64(), 30);
  EXPECT_EQ(rows[2][tid_col].AsInt64(), 20);
  EXPECT_EQ(rows[3][tid_col].AsInt64(), 10);
}

TEST_F(ExecTest, IdgjAdvanceSkipsRestOfGroup) {
  const storage::HashIndex& tid_index = db_.GetOrBuildHashIndex("Tops", "TID");
  auto idgj = std::make_unique<IdgjOp>(TidSource(), db_.GetTable("Tops"),
                                       &tid_index, "T", "TI.TID", nullptr);
  idgj->Open();
  Tuple t;
  ASSERT_TRUE(idgj->Next(&t));
  EXPECT_EQ(t[idgj->schema().IndexOf("T.TID")].AsInt64(), 30);
  idgj->AdvanceToNextGroup();
  ASSERT_TRUE(idgj->Next(&t));
  EXPECT_EQ(t[idgj->schema().IndexOf("T.TID")].AsInt64(), 20);
}

TEST_F(ExecTest, StackedIdgjWithPredicate) {
  const storage::HashIndex& tid_index = db_.GetOrBuildHashIndex("Tops", "TID");
  const storage::HashIndex& id_index = db_.GetOrBuildHashIndex("Ent", "ID");
  auto pred = storage::MakeContainsKeyword(db_.GetTable("Ent")->schema(),
                                           "DESC", "enzyme");
  std::unique_ptr<GroupedOperator> plan = std::make_unique<IdgjOp>(
      TidSource(), db_.GetTable("Tops"), &tid_index, "T", "TI.TID", nullptr);
  plan = std::make_unique<IdgjOp>(std::move(plan), db_.GetTable("Ent"),
                                  &id_index, "R1", "T.E1", pred);
  auto rows = RunToVector(plan.get());
  // Qualifying rows: E1 in {1, 3}: (1,4,30), (3,2,30), (1,2,10), (3,4,10).
  EXPECT_EQ(rows.size(), 4u);
}

TEST_F(ExecTest, FirstTuplePerGroupStopsAtK) {
  const storage::HashIndex& tid_index = db_.GetOrBuildHashIndex("Tops", "TID");
  auto plan = std::make_unique<IdgjOp>(TidSource(), db_.GetTable("Tops"),
                                       &tid_index, "T", "TI.TID", nullptr);
  auto firsts = FirstTuplePerGroup(plan.get(), "TI.TID", 2);
  ASSERT_EQ(firsts.size(), 2u);
  EXPECT_EQ(firsts[0][0].AsInt64(), 30);
  EXPECT_EQ(firsts[1][0].AsInt64(), 20);
  // Early termination: group 10 was never expanded.
  EXPECT_LT(plan->counters().probes, 3u);
}

TEST_F(ExecTest, HdgjMatchesIdgjResults) {
  const storage::HashIndex& tid_index = db_.GetOrBuildHashIndex("Tops", "TID");
  auto pred = storage::MakeContainsKeyword(db_.GetTable("Ent")->schema(),
                                           "DESC", "enzyme");
  auto make_plan = [&](bool hdgj) -> std::unique_ptr<GroupedOperator> {
    std::unique_ptr<GroupedOperator> plan = std::make_unique<IdgjOp>(
        TidSource(), db_.GetTable("Tops"), &tid_index, "T", "TI.TID",
        nullptr);
    if (hdgj) {
      return std::make_unique<HdgjOp>(std::move(plan), db_.GetTable("Ent"),
                                      "R1", "ID", "T.E1", "TI.TID", pred);
    }
    const storage::HashIndex& id_index = db_.GetOrBuildHashIndex("Ent", "ID");
    return std::make_unique<IdgjOp>(std::move(plan), db_.GetTable("Ent"),
                                    &id_index, "R1", "T.E1", pred);
  };
  auto idgj_plan = make_plan(false);
  auto hdgj_plan = make_plan(true);
  auto idgj_rows = RunToVector(idgj_plan.get());
  auto hdgj_rows = RunToVector(hdgj_plan.get());
  ASSERT_EQ(idgj_rows.size(), hdgj_rows.size());
  for (size_t i = 0; i < idgj_rows.size(); ++i) {
    EXPECT_EQ(idgj_rows[i][0].AsInt64(), hdgj_rows[i][0].AsInt64());
  }
}

TEST_F(ExecTest, HdgjRebuildsPerGroup) {
  const storage::HashIndex& tid_index = db_.GetOrBuildHashIndex("Tops", "TID");
  auto inner_plan = std::make_unique<IdgjOp>(
      TidSource(), db_.GetTable("Tops"), &tid_index, "T", "TI.TID", nullptr);
  auto hdgj = std::make_unique<HdgjOp>(std::move(inner_plan),
                                       db_.GetTable("Ent"), "R1", "ID",
                                       "T.E1", "TI.TID", nullptr);
  RunToVector(hdgj.get());
  // Three groups -> three hash builds over the inner relation (the
  // signature overhead the Section-5.4 cost model charges HDGJ for).
  EXPECT_EQ(hdgj->counters().builds, 3u);
  EXPECT_EQ(hdgj->counters().rows_scanned, 12u);  // 3 rebuilds x 4 rows.
}

TEST_F(ExecTest, TreeCountersAggregate) {
  auto join = std::make_unique<HashJoinOp>(ScanTops(), ScanEnt(), "T.E1",
                                           "E.ID");
  RunToVector(join.get());
  OpCounters total = join->TreeCounters();
  EXPECT_GE(total.rows_scanned, 9u);  // Both scans.
  EXPECT_EQ(total.builds, 1u);
}

// --- Edge cases ---------------------------------------------------------------

TEST_F(ExecTest, EmptyTableScan) {
  storage::Table* empty =
      db_.CreateTable("Empty", storage::TableSchema(
                                   {{"ID", ColumnType::kInt64}}))
          .value();
  auto scan = std::make_unique<SeqScanOp>(empty, "X", nullptr);
  EXPECT_TRUE(RunToVector(scan.get()).empty());
}

TEST_F(ExecTest, HashJoinWithEmptyBuildSide) {
  auto pred = storage::MakeContainsKeyword(db_.GetTable("Ent")->schema(),
                                           "DESC", "nothingmatches");
  auto join = std::make_unique<HashJoinOp>(ScanTops(), ScanEnt(pred), "T.E1",
                                           "E.ID");
  EXPECT_TRUE(RunToVector(join.get()).empty());
}

TEST_F(ExecTest, IdgjWithNoIndexMatches) {
  // Groups whose TIDs do not exist in the Tops table produce nothing.
  std::vector<Tuple> groups = {{Value(int64_t{999}), Value(1.0)}};
  auto source = std::make_unique<GroupSourceOp>(
      std::move(groups), OutputSchema({"TI.TID", "TI.SCORE"}));
  const storage::HashIndex& tid_index = db_.GetOrBuildHashIndex("Tops", "TID");
  auto idgj = std::make_unique<IdgjOp>(std::move(source),
                                       db_.GetTable("Tops"), &tid_index, "T",
                                       "TI.TID", nullptr);
  EXPECT_TRUE(RunToVector(idgj.get()).empty());
  EXPECT_EQ(idgj->counters().probes, 1u);
}

TEST_F(ExecTest, FirstTuplePerGroupWithKBeyondGroups) {
  const storage::HashIndex& tid_index = db_.GetOrBuildHashIndex("Tops", "TID");
  auto plan = std::make_unique<IdgjOp>(TidSource(), db_.GetTable("Tops"),
                                       &tid_index, "T", "TI.TID", nullptr);
  auto firsts = FirstTuplePerGroup(plan.get(), "TI.TID", 100);
  EXPECT_EQ(firsts.size(), 3u);  // Only three groups exist.
}

TEST_F(ExecTest, HdgjAdvanceAfterFirstTuple) {
  const storage::HashIndex& tid_index = db_.GetOrBuildHashIndex("Tops", "TID");
  auto inner = std::make_unique<IdgjOp>(TidSource(), db_.GetTable("Tops"),
                                        &tid_index, "T", "TI.TID", nullptr);
  auto hdgj = std::make_unique<HdgjOp>(std::move(inner),
                                       db_.GetTable("Ent"), "R1", "ID",
                                       "T.E1", "TI.TID", nullptr);
  hdgj->Open();
  Tuple t;
  ASSERT_TRUE(hdgj->Next(&t));
  size_t tid_col = hdgj->schema().IndexOf("T.TID");
  EXPECT_EQ(t[tid_col].AsInt64(), 30);
  hdgj->AdvanceToNextGroup();
  ASSERT_TRUE(hdgj->Next(&t));
  EXPECT_EQ(t[tid_col].AsInt64(), 20);
}

TEST_F(ExecTest, SortOnEmptyInput) {
  auto pred = storage::MakeContainsKeyword(db_.GetTable("Ent")->schema(),
                                           "DESC", "nothing");
  auto sort = std::make_unique<SortOp>(ScanEnt(pred), "E.ID", false);
  EXPECT_TRUE(RunToVector(sort.get()).empty());
}

TEST_F(ExecTest, SortMergeJoinMatchesHashJoin) {
  auto hash = std::make_unique<HashJoinOp>(ScanTops(), ScanEnt(), "T.E1",
                                           "E.ID");
  auto merge = std::make_unique<SortMergeJoinOp>(ScanTops(), ScanEnt(),
                                                 "T.E1", "E.ID");
  auto hash_rows = RunToVector(hash.get());
  auto merge_rows = RunToVector(merge.get());
  ASSERT_EQ(hash_rows.size(), merge_rows.size());
  // Compare as multisets of (E1, TID, joined ID).
  auto key_of = [](const Tuple& t) {
    return std::make_tuple(t[0].AsInt64(), t[2].AsInt64(), t[3].AsInt64());
  };
  std::multiset<std::tuple<int64_t, int64_t, int64_t>> a;
  std::multiset<std::tuple<int64_t, int64_t, int64_t>> b;
  for (const Tuple& t : hash_rows) a.insert(key_of(t));
  for (const Tuple& t : merge_rows) b.insert(key_of(t));
  EXPECT_EQ(a, b);
}

TEST_F(ExecTest, SortMergeJoinCrossProductOnDuplicateKeys) {
  // Two rows on each side with the same key -> 4 outputs.
  storage::Table* l =
      db_.CreateTable("L", storage::TableSchema({{"K", ColumnType::kInt64},
                                                 {"V", ColumnType::kInt64}}))
          .value();
  storage::Table* r =
      db_.CreateTable("R", storage::TableSchema({{"K", ColumnType::kInt64},
                                                 {"W", ColumnType::kInt64}}))
          .value();
  l->AppendRowOrDie({Value(int64_t{5}), Value(int64_t{1})});
  l->AppendRowOrDie({Value(int64_t{5}), Value(int64_t{2})});
  l->AppendRowOrDie({Value(int64_t{7}), Value(int64_t{3})});
  r->AppendRowOrDie({Value(int64_t{5}), Value(int64_t{10})});
  r->AppendRowOrDie({Value(int64_t{5}), Value(int64_t{20})});
  r->AppendRowOrDie({Value(int64_t{6}), Value(int64_t{30})});
  auto join = std::make_unique<SortMergeJoinOp>(
      std::make_unique<SeqScanOp>(l, "L", nullptr),
      std::make_unique<SeqScanOp>(r, "R", nullptr), "L.K", "R.K");
  auto rows = RunToVector(join.get());
  EXPECT_EQ(rows.size(), 4u);  // 2x2 for key 5; keys 6 and 7 unmatched.
  for (const Tuple& row : rows) {
    EXPECT_EQ(row[0].AsInt64(), 5);
    EXPECT_EQ(row[2].AsInt64(), 5);
  }
}

TEST_F(ExecTest, SortMergeJoinEmptySide) {
  auto pred = storage::MakeContainsKeyword(db_.GetTable("Ent")->schema(),
                                           "DESC", "absent");
  auto join = std::make_unique<SortMergeJoinOp>(ScanTops(), ScanEnt(pred),
                                                "T.E1", "E.ID");
  EXPECT_TRUE(RunToVector(join.get()).empty());
}

TEST_F(ExecTest, DistinctOnMultipleKeys) {
  auto dist = std::make_unique<DistinctOp>(
      ScanTops(), std::vector<std::string>{"T.E1", "T.TID"});
  // All five (E1, TID) combinations are distinct in the fixture.
  EXPECT_EQ(RunToVector(dist.get()).size(), 5u);
}

}  // namespace
}  // namespace exec
}  // namespace tsb
