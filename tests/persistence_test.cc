// Round-trip tests for the offline-artifact persistence: build + prune,
// save, reload into a fresh process-like state, and verify the query engine
// behaves identically.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <set>

#include "biozon/domain.h"
#include "biozon/generator.h"
#include "core/builder.h"
#include "core/persistence.h"
#include "core/pruner.h"
#include "engine/engine.h"

namespace tsb {
namespace {

namespace fs = std::filesystem;
using engine::MethodKind;

class PersistenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("tsb_persist_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);

    config_.seed = 321;
    config_.scale = 0.05;
    ids_ = biozon::GenerateBiozon(config_, &db_);
    view_ = std::make_unique<graph::DataGraphView>(db_);
    schema_ = std::make_unique<graph::SchemaGraph>(db_);
    core::TopologyBuilder builder(&db_, schema_.get(), view_.get());
    core::BuildConfig build;
    build.max_path_length = 3;
    ASSERT_TRUE(
        builder.BuildPair(ids_.protein, ids_.dna, build, &store_).ok());
    ASSERT_TRUE(builder
                    .BuildPair(ids_.protein, ids_.interaction, build,
                               &store_)
                    .ok());
    core::PruneConfig prune;
    prune.frequency_threshold =
        store_.FindPair(ids_.protein, ids_.dna)->num_related_pairs / 50;
    ASSERT_TRUE(core::PruneFrequentTopologies(&db_, &store_, ids_.protein,
                                              ids_.dna, prune)
                    .ok());
    // Protein-Interaction left unpruned: exercises the pruned flag.
  }

  void TearDown() override { fs::remove_all(dir_); }

  /// A fresh catalog holding only the base data (simulates a new process).
  void RebuildBaseCatalog(storage::Catalog* fresh) {
    biozon::BiozonSchema ids = biozon::GenerateBiozon(config_, fresh);
    ASSERT_EQ(ids.protein, ids_.protein);
  }

  fs::path dir_;
  biozon::GeneratorConfig config_;
  storage::Catalog db_;
  biozon::BiozonSchema ids_;
  std::unique_ptr<graph::DataGraphView> view_;
  std::unique_ptr<graph::SchemaGraph> schema_;
  core::TopologyStore store_;
};

TEST_F(PersistenceTest, SaveCreatesExpectedFiles) {
  ASSERT_TRUE(
      core::SaveTopologyArtifacts(db_, store_, dir_.string()).ok());
  EXPECT_TRUE(fs::exists(dir_ / "topologies.csv"));
  EXPECT_TRUE(fs::exists(dir_ / "pairs.csv"));
  EXPECT_TRUE(fs::exists(dir_ / "classes_Protein_DNA.csv"));
  EXPECT_TRUE(fs::exists(dir_ / "freq_Protein_DNA.csv"));
  EXPECT_TRUE(fs::exists(dir_ / "table_AllTops_Protein_DNA.csv"));
  EXPECT_TRUE(fs::exists(dir_ / "table_LeftTops_Protein_DNA.csv"));
  EXPECT_TRUE(fs::exists(dir_ / "table_ExcpTops_Protein_DNA.csv"));
  // Unpruned pair has no LeftTops file.
  EXPECT_TRUE(fs::exists(dir_ / "table_AllTops_Protein_Interaction.csv"));
  EXPECT_FALSE(
      fs::exists(dir_ / "table_LeftTops_Protein_Interaction.csv"));
}

TEST_F(PersistenceTest, RoundTripPreservesCatalogAndPairData) {
  ASSERT_TRUE(
      core::SaveTopologyArtifacts(db_, store_, dir_.string()).ok());

  storage::Catalog fresh;
  RebuildBaseCatalog(&fresh);
  core::TopologyStore loaded;
  ASSERT_TRUE(
      core::LoadTopologyArtifacts(&fresh, &loaded, dir_.string()).ok());

  // Catalog identical: same size, same codes per TID, same shape flags.
  ASSERT_EQ(loaded.catalog().size(), store_.catalog().size());
  for (const core::TopologyInfo& info : store_.catalog().infos()) {
    const core::TopologyInfo& got = loaded.catalog().Get(info.tid);
    EXPECT_EQ(got.code, info.code);
    EXPECT_EQ(got.num_classes, info.num_classes);
    EXPECT_EQ(got.is_path, info.is_path);
    std::set<std::string> keys_a(info.class_keys.begin(),
                                 info.class_keys.end());
    std::set<std::string> keys_b(got.class_keys.begin(),
                                 got.class_keys.end());
    EXPECT_EQ(keys_a, keys_b);
  }

  // Pair registry identical.
  const core::PairTopologyData* orig =
      store_.FindPair(ids_.protein, ids_.dna);
  const core::PairTopologyData* got =
      loaded.FindPair(ids_.protein, ids_.dna);
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->pair_name, orig->pair_name);
  EXPECT_EQ(got->max_path_length, orig->max_path_length);
  EXPECT_EQ(got->freq, orig->freq);
  EXPECT_EQ(got->pruned_tids, orig->pruned_tids);
  EXPECT_EQ(got->prune_threshold, orig->prune_threshold);
  ASSERT_EQ(got->classes.size(), orig->classes.size());
  for (size_t i = 0; i < orig->classes.size(); ++i) {
    EXPECT_EQ(got->classes[i].key, orig->classes[i].key);
    EXPECT_TRUE(got->classes[i].path == orig->classes[i].path);
    EXPECT_EQ(got->classes[i].path_tid, orig->classes[i].path_tid);
  }

  // Tables identical row by row.
  for (const std::string& name :
       {orig->alltops_table, orig->pairclasses_table, orig->lefttops_table,
        orig->excptops_table}) {
    const storage::Table* a = db_.GetTable(name);
    const storage::Table* b = fresh.GetTable(name);
    ASSERT_EQ(a->num_rows(), b->num_rows()) << name;
    for (size_t r = 0; r < a->num_rows(); ++r) {
      EXPECT_EQ(a->GetRow(r), b->GetRow(r)) << name << " row " << r;
    }
  }
}

TEST_F(PersistenceTest, QueriesAgreeAfterReload) {
  ASSERT_TRUE(
      core::SaveTopologyArtifacts(db_, store_, dir_.string()).ok());

  storage::Catalog fresh;
  RebuildBaseCatalog(&fresh);
  core::TopologyStore loaded;
  ASSERT_TRUE(
      core::LoadTopologyArtifacts(&fresh, &loaded, dir_.string()).ok());
  graph::DataGraphView fresh_view(fresh);
  graph::SchemaGraph fresh_schema(fresh);

  engine::Engine original(&db_, &store_, schema_.get(), view_.get(),
                          core::ScoreModel(
                              &store_.catalog(),
                              biozon::MakeBiozonDomainKnowledge(ids_)));
  engine::Engine reloaded(&fresh, &loaded, &fresh_schema, &fresh_view,
                          core::ScoreModel(
                              &loaded.catalog(),
                              biozon::MakeBiozonDomainKnowledge(ids_)));

  engine::TopologyQuery q;
  q.entity_set1 = "Protein";
  q.pred1 = biozon::SelectivityPredicate(db_, "Protein", "medium");
  q.entity_set2 = "DNA";
  q.pred2 = biozon::SelectivityPredicate(db_, "DNA", "medium");
  q.scheme = core::RankScheme::kDomain;
  q.k = 10;

  for (MethodKind method : {MethodKind::kFullTop, MethodKind::kFastTop,
                            MethodKind::kFastTopK, MethodKind::kFastTopKEt}) {
    auto r1 = original.Execute(q, method);
    auto r2 = reloaded.Execute(q, method);
    ASSERT_TRUE(r1.ok());
    ASSERT_TRUE(r2.ok());
    ASSERT_EQ(r1->entries.size(), r2->entries.size())
        << engine::MethodKindToString(method);
    for (size_t i = 0; i < r1->entries.size(); ++i) {
      EXPECT_EQ(r1->entries[i].tid, r2->entries[i].tid);
      EXPECT_EQ(r1->entries[i].score, r2->entries[i].score);
    }
  }
}

TEST_F(PersistenceTest, LoadRejectsNonEmptyStore) {
  ASSERT_TRUE(
      core::SaveTopologyArtifacts(db_, store_, dir_.string()).ok());
  storage::Catalog fresh;
  RebuildBaseCatalog(&fresh);
  EXPECT_EQ(core::LoadTopologyArtifacts(&fresh, &store_, dir_.string())
                .code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(PersistenceTest, LoadFailsOnMissingDirectory) {
  storage::Catalog fresh;
  core::TopologyStore loaded;
  EXPECT_FALSE(core::LoadTopologyArtifacts(&fresh, &loaded,
                                           (dir_ / "nope").string())
                   .ok());
}

}  // namespace
}  // namespace tsb
