// The columnar block mirrors (src/columnar/) and the engine's block-scan
// cursor: slice construction and validation, corruption fallback, the
// byte-identity contract against the row engine for all nine methods
// (unsharded and at N ∈ {1, 2, 4} shards), the per-epoch ET offset cache,
// and the blocks_total / blocks_skipped ExecStats plumbing.

#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "biozon/domain.h"
#include "biozon/fig3.h"
#include "columnar/blocks.h"
#include "common/logging.h"
#include "core/builder.h"
#include "core/pruner.h"
#include "engine/engine.h"
#include "engine/result_io.h"
#include "shard/scatter_gather.h"
#include "shard/sharded_store.h"

namespace tsb {
namespace {

using engine::MethodKind;
using engine::ResultEntry;

const std::vector<MethodKind> kAllMethods = {
    MethodKind::kSql,         MethodKind::kFullTop,
    MethodKind::kFastTop,     MethodKind::kFullTopK,
    MethodKind::kFastTopK,    MethodKind::kFullTopKEt,
    MethodKind::kFastTopKEt,  MethodKind::kFullTopKOpt,
    MethodKind::kFastTopKOpt,
};

const std::vector<core::RankScheme> kAllSchemes = {
    core::RankScheme::kFreq, core::RankScheme::kRare,
    core::RankScheme::kDomain};

class ColumnarFig3Test : public ::testing::Test {
 protected:
  void SetUp() override {
    ids_ = biozon::BuildFigure3Database(&db_);
    view_ = std::make_unique<graph::DataGraphView>(db_);
    schema_ = std::make_unique<graph::SchemaGraph>(db_);
    core::TopologyBuilder builder(&db_, schema_.get(), view_.get());
    ASSERT_TRUE(builder.BuildAllPairs(BuildCfg(), &store_).ok());
    PruneAll(&store_);
    engine_ = std::make_unique<engine::Engine>(
        &db_, &store_, schema_.get(), view_.get(),
        core::ScoreModel(&store_.catalog(),
                         biozon::MakeBiozonDomainKnowledge(ids_)));
  }

  static core::BuildConfig BuildCfg(std::string table_namespace = "") {
    core::BuildConfig config;
    config.max_path_length = 3;
    config.table_namespace = std::move(table_namespace);
    return config;
  }

  void PruneAll(core::TopologyStore* store) {
    core::PruneConfig prune;
    prune.frequency_threshold = 0;
    std::vector<std::pair<storage::EntityTypeId, storage::EntityTypeId>> keys;
    for (const auto& [key, pair] : store->pairs()) keys.push_back(key);
    for (const auto& [t1, t2] : keys) {
      ASSERT_TRUE(
          core::PruneFrequentTopologies(&db_, store, t1, t2, prune).ok());
    }
  }

  std::unique_ptr<shard::ScatterGatherExecutor> MakeSharded(size_t n) {
    auto sharded = std::make_shared<shard::ShardedTopologyStore>(n);
    core::TopologyBuilder builder(&db_, schema_.get(), view_.get());
    core::BuildConfig config = BuildCfg("n" + std::to_string(n) + ".");
    EXPECT_TRUE(sharded->Build(&builder, config).ok());
    for (size_t i = 0; i < n; ++i) {
      PruneAll(sharded->Snapshot(i).get());
    }
    return std::make_unique<shard::ScatterGatherExecutor>(
        &db_, sharded, schema_.get(), view_.get(),
        biozon::MakeBiozonDomainKnowledge(ids_));
  }

  core::PairTopologyData* ProteinDnaPair() {
    core::PairTopologyData* pair = store_.FindPair(ids_.protein, ids_.dna);
    EXPECT_NE(pair, nullptr);
    return pair;
  }

  /// Execute with the columnar gate set and all other options default.
  engine::QueryResult Run(const engine::TopologyQuery& q, MethodKind method,
                          bool use_columnar) const {
    engine::ExecOptions options;
    options.use_columnar = use_columnar;
    auto result = engine_->Execute(q, method, options);
    EXPECT_TRUE(result.ok()) << result.status();
    return std::move(result.value());
  }

  storage::Catalog db_;
  biozon::BiozonSchema ids_;
  std::unique_ptr<graph::DataGraphView> view_;
  std::unique_ptr<graph::SchemaGraph> schema_;
  core::TopologyStore store_;
  std::unique_ptr<engine::Engine> engine_;
};

engine::TopologyQuery ExampleQuery(const storage::Catalog& db,
                                   core::RankScheme scheme, size_t k = 10) {
  engine::TopologyQuery q;
  q.entity_set1 = "Protein";
  q.pred1 = storage::MakeContainsKeyword(db.GetTable("Protein")->schema(),
                                         "DESC", "enzyme");
  q.entity_set2 = "DNA";
  q.pred2 = storage::MakeEquals(db.GetTable("DNA")->schema(), "TYPE",
                                storage::Value("mRNA"));
  q.scheme = scheme;
  q.k = k;
  return q;
}

// ---------------------------------------------------------------------------
// Slice construction and validation
// ---------------------------------------------------------------------------

TEST_F(ColumnarFig3Test, SlicesAttachedAtBuildAndPrune) {
  core::PairTopologyData* pair = ProteinDnaPair();
  ASSERT_NE(pair->alltops_blocks, nullptr);
  ASSERT_NE(pair->lefttops_blocks, nullptr);  // Pair was pruned in SetUp.

  const columnar::ColumnarSlice& all = *pair->alltops_blocks;
  EXPECT_EQ(all.source_table, pair->alltops_table);
  EXPECT_TRUE(columnar::CheckSliceShape(all));
  EXPECT_TRUE(columnar::ValidateSlice(all));
  EXPECT_EQ(all.num_rows(),
            db_.GetTable(pair->alltops_table)->num_rows());
  EXPECT_GT(all.num_rows(), 0u);
  EXPECT_GT(all.MemoryBytes(), 0u);
  // One group per distinct TID in the pair's frequency map.
  EXPECT_EQ(all.groups.size(), pair->freq.size());

  const columnar::ColumnarSlice& left = *pair->lefttops_blocks;
  EXPECT_EQ(left.source_table, pair->lefttops_table);
  EXPECT_TRUE(columnar::ValidateSlice(left));
  EXPECT_EQ(left.num_rows(),
            db_.GetTable(pair->lefttops_table)->num_rows());
}

TEST_F(ColumnarFig3Test, AttachIsIdempotent) {
  core::PairTopologyData* pair = ProteinDnaPair();
  const columnar::ColumnarSlice* before = pair->alltops_blocks.get();
  columnar::AttachSlices(db_, store_.catalog(), pair);
  EXPECT_EQ(pair->alltops_blocks.get(), before);  // Not rebuilt.
}

TEST_F(ColumnarFig3Test, EmptySliceIsValidAndScansToNothing) {
  // What BuildSlice yields for an existing-but-empty tops table: named,
  // zero rows, zero blocks, empty dictionaries.
  auto slice = std::make_shared<columnar::ColumnarSlice>();
  slice->source_table = "EmptyTops";
  slice->e1_table = "Protein";
  slice->e2_table = "DNA";
  EXPECT_TRUE(columnar::CheckSliceShape(*slice));
  EXPECT_TRUE(columnar::ValidateSlice(*slice));

  columnar::BlockScanCursor cursor(slice, columnar::BlockScanCursor::Masks{});
  std::vector<uint8_t> qualified;
  cursor.QualifyAllGroups(&qualified);
  EXPECT_TRUE(qualified.empty());
  EXPECT_EQ(cursor.Counters().blocks_total, 0u);
}

TEST_F(ColumnarFig3Test, MalformedSlicesFailValidation) {
  const columnar::ColumnarSlice& good = *ProteinDnaPair()->alltops_blocks;
  ASSERT_TRUE(columnar::ValidateSlice(good));

  // Each mutation breaks exactly one invariant; every one must be caught.
  struct Case {
    const char* name;
    void (*corrupt)(columnar::ColumnarSlice*);
    bool shape_detects;  // Caught by the cheap per-query screen too?
  };
  const std::vector<Case> cases = {
      {"truncated score array",
       [](columnar::ColumnarSlice* s) { s->score.pop_back(); }, true},
      {"missing zone",
       [](columnar::ColumnarSlice* s) { s->zones.pop_back(); }, true},
      {"group overshoots rows",
       [](columnar::ColumnarSlice* s) { s->groups.back().count += 1; }, true},
      {"class_keys size mismatch",
       [](columnar::ColumnarSlice* s) { s->class_keys.pop_back(); }, true},
      {"dict id/row length mismatch",
       [](columnar::ColumnarSlice* s) { s->e1_dict_row.pop_back(); }, true},
      {"non-monotone class_id",
       [](columnar::ColumnarSlice* s) {
         s->class_id.front() = static_cast<uint32_t>(s->groups.size() - 1);
       },
       false},
      {"score out of sort order",
       [](columnar::ColumnarSlice* s) { s->score.front() = -1.0; }, false},
      {"zone max_score stale",
       [](columnar::ColumnarSlice* s) { s->zones.front().max_score += 1.0; },
       false},
      {"dict code out of bounds",
       [](columnar::ColumnarSlice* s) {
         s->e1_code.front() = static_cast<uint32_t>(s->e1_dict_id.size());
       },
       false},
  };
  for (const Case& c : cases) {
    columnar::ColumnarSlice bad = good;
    c.corrupt(&bad);
    EXPECT_FALSE(columnar::ValidateSlice(bad)) << c.name;
    if (c.shape_detects) {
      EXPECT_FALSE(columnar::CheckSliceShape(bad)) << c.name;
    }
  }
}

// ---------------------------------------------------------------------------
// Row fallback
// ---------------------------------------------------------------------------

TEST_F(ColumnarFig3Test, DisablingColumnarMatchesAndSkipsBlockCounters) {
  engine::TopologyQuery q = ExampleQuery(db_, core::RankScheme::kFreq);
  engine::QueryResult on = Run(q, MethodKind::kFullTop, true);
  engine::QueryResult off = Run(q, MethodKind::kFullTop, false);
  EXPECT_EQ(on.entries, off.entries);
  EXPECT_GT(on.stats.blocks_total, 0u);
  EXPECT_EQ(off.stats.blocks_total, 0u);
  EXPECT_NE(on.stats.plan.find("[columnar]"), std::string::npos);
  EXPECT_EQ(off.stats.plan.find("[columnar]"), std::string::npos);
}

TEST_F(ColumnarFig3Test, MalformedAttachedSliceFallsBackToRowPath) {
  core::PairTopologyData* pair = ProteinDnaPair();
  engine::TopologyQuery q = ExampleQuery(db_, core::RankScheme::kFreq);
  const engine::QueryResult oracle = Run(q, MethodKind::kFullTop, false);

  // Shape-level corruption: the per-query CheckSliceShape screen must
  // decline the slice and the query must silently take the row path.
  auto bad = std::make_shared<columnar::ColumnarSlice>(*pair->alltops_blocks);
  bad->zones.pop_back();
  std::shared_ptr<const columnar::ColumnarSlice> saved = pair->alltops_blocks;
  pair->alltops_blocks = bad;
  engine::QueryResult degraded = Run(q, MethodKind::kFullTop, true);
  pair->alltops_blocks = saved;

  EXPECT_EQ(degraded.entries, oracle.entries);
  EXPECT_EQ(degraded.stats.blocks_total, 0u);
  EXPECT_EQ(degraded.stats.plan.find("[columnar]"), std::string::npos);
}

TEST_F(ColumnarFig3Test, DetachedSliceFallsBackToRowPath) {
  core::PairTopologyData* pair = ProteinDnaPair();
  engine::TopologyQuery q = ExampleQuery(db_, core::RankScheme::kFreq);
  const engine::QueryResult oracle = Run(q, MethodKind::kFastTopK, false);

  std::shared_ptr<const columnar::ColumnarSlice> saved =
      pair->lefttops_blocks;
  pair->lefttops_blocks = nullptr;
  engine::QueryResult degraded = Run(q, MethodKind::kFastTopK, true);
  pair->lefttops_blocks = saved;

  EXPECT_EQ(degraded.entries, oracle.entries);
}

// ---------------------------------------------------------------------------
// Byte-identity property sweep
// ---------------------------------------------------------------------------

/// Deterministic random predicate over one side's entity table.
storage::PredicateRef RandomPredicate(std::mt19937* rng,
                                      const storage::Catalog& db,
                                      const std::string& entity_set,
                                      int depth = 0) {
  const storage::TableSchema& schema = db.GetTable(entity_set)->schema();
  const bool is_protein = entity_set == "Protein";
  static const char* kKeywords[] = {"enzyme", "mrna", "protein", "ubiquitin",
                                    "sapiens", "absentword"};
  // IDs present in either table plus misses.
  static const int64_t kIds[] = {32, 78, 34, 44, 214, 215, 742, 999};

  std::uniform_int_distribution<int> pick(0, depth >= 2 ? 4 : 6);
  switch (pick(*rng)) {
    case 0:
      return storage::MakeTrue();
    case 1: {
      std::uniform_int_distribution<size_t> kw(0, 5);
      return storage::MakeContainsKeyword(schema, "DESC",
                                          kKeywords[kw(*rng)]);
    }
    case 2: {
      std::uniform_int_distribution<size_t> id(0, 7);
      return storage::MakeEquals(schema, "ID", storage::Value(kIds[id(*rng)]));
    }
    case 3: {
      if (!is_protein) {
        // DNA has TYPE; exercise string equality (and a guaranteed miss).
        std::uniform_int_distribution<int> t(0, 2);
        const char* type = t(*rng) == 0 ? "gene" : "mRNA";
        return storage::MakeEquals(schema, "TYPE", storage::Value(type));
      }
      std::uniform_int_distribution<int64_t> lo(0, 100);
      const int64_t l = lo(*rng);
      return storage::MakeInt64Between(schema, "ID", l, l + 50);
    }
    case 4: {
      std::uniform_int_distribution<int64_t> lo(0, 800);
      const int64_t l = lo(*rng);
      return storage::MakeInt64Between(schema, "ID", l, l + 200);
    }
    case 5:
      return storage::MakeNot(RandomPredicate(rng, db, entity_set, depth + 1));
    default: {
      storage::PredicateRef a =
          RandomPredicate(rng, db, entity_set, depth + 1);
      storage::PredicateRef b =
          RandomPredicate(rng, db, entity_set, depth + 1);
      std::uniform_int_distribution<int> c(0, 1);
      return c(*rng) == 0 ? storage::MakeAnd(std::move(a), std::move(b))
                          : storage::MakeOr(std::move(a), std::move(b));
    }
  }
}

TEST_F(ColumnarFig3Test, RandomPredicatesMatchRowPathForAllNineMethods) {
  std::mt19937 rng(20260808);
  const std::vector<std::pair<std::string, std::string>> orientations = {
      {"Protein", "DNA"}, {"DNA", "Protein"}, {"Protein", "Protein"}};
  const std::vector<size_t> ks = {1, 2, 3, 5, 10};

  for (int trial = 0; trial < 40; ++trial) {
    const auto& [set1, set2] = orientations[trial % orientations.size()];
    engine::TopologyQuery q;
    q.entity_set1 = set1;
    q.pred1 = RandomPredicate(&rng, db_, set1);
    q.entity_set2 = set2;
    q.pred2 = RandomPredicate(&rng, db_, set2);
    q.scheme = kAllSchemes[trial % kAllSchemes.size()];
    q.k = ks[trial % ks.size()];
    q.exclude_weak = trial % 4 == 0;

    for (MethodKind method : kAllMethods) {
      engine::QueryResult on = Run(q, method, true);
      engine::QueryResult off = Run(q, method, false);
      ASSERT_EQ(on.entries, off.entries)
          << "trial " << trial << " " << engine::MethodKindToString(method)
          << " " << set1 << "/" << set2 << " k=" << q.k;
    }
  }
}

TEST_F(ColumnarFig3Test, ShardedColumnarMatchesShardedRowPath) {
  std::mt19937 rng(4096);
  for (size_t n : {1u, 2u, 4u}) {
    std::unique_ptr<shard::ScatterGatherExecutor> sharded = MakeSharded(n);
    sharded->PrepareIndexes("Protein", "DNA");
    for (int trial = 0; trial < 8; ++trial) {
      engine::TopologyQuery q;
      q.entity_set1 = "Protein";
      q.pred1 = RandomPredicate(&rng, db_, "Protein");
      q.entity_set2 = "DNA";
      q.pred2 = RandomPredicate(&rng, db_, "DNA");
      q.scheme = kAllSchemes[trial % kAllSchemes.size()];
      q.k = trial % 2 == 0 ? 3 : 10;

      for (MethodKind method : kAllMethods) {
        engine::ExecOptions on;
        on.use_columnar = true;
        engine::ExecOptions off;
        off.use_columnar = false;
        auto col = sharded->Execute(q, method, on);
        auto row = sharded->Execute(q, method, off);
        ASSERT_TRUE(col.ok()) << col.status();
        ASSERT_TRUE(row.ok()) << row.status();
        ASSERT_EQ(col->entries, row->entries)
            << "N=" << n << " trial " << trial << " "
            << engine::MethodKindToString(method);
        // The sharded answer must also equal the unsharded engine's.
        engine::QueryResult direct = Run(q, method, true);
        ASSERT_EQ(col->entries, direct.entries)
            << "N=" << n << " trial " << trial << " "
            << engine::MethodKindToString(method);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Per-epoch ET offset cache (the hoisted schema().IndexOf lookups)
// ---------------------------------------------------------------------------

TEST(ColumnarEpochTest, EtOffsetsSurviveEpochSwap) {
  storage::Catalog db;
  biozon::BiozonSchema ids = biozon::BuildFigure3Database(&db);
  graph::DataGraphView view(db);
  graph::SchemaGraph schema(db);

  auto build_store = [&](const std::string& ns) {
    auto store = std::make_shared<core::TopologyStore>();
    core::TopologyBuilder builder(&db, &schema, &view);
    core::BuildConfig config;
    config.max_path_length = 3;
    config.table_namespace = ns;
    TSB_CHECK(builder.BuildAllPairs(config, store.get()).ok());
    core::PruneConfig prune;
    prune.frequency_threshold = 0;
    std::vector<std::pair<storage::EntityTypeId, storage::EntityTypeId>> keys;
    for (const auto& [key, pair] : store->pairs()) keys.push_back(key);
    for (const auto& [t1, t2] : keys) {
      TSB_CHECK(
          core::PruneFrequentTopologies(&db, store.get(), t1, t2, prune).ok());
    }
    return store;
  };

  auto handle = std::make_shared<core::StoreHandle>(build_store(""));
  engine::Engine engine(&db, handle, &schema, &view,
                        core::ScoreModel(&handle->Snapshot()->catalog(),
                                         biozon::MakeBiozonDomainKnowledge(
                                             ids)));

  engine::TopologyQuery q = ExampleQuery(db, core::RankScheme::kFreq);
  // Row path so the ET driver actually runs and resolves offsets.
  engine::ExecOptions row;
  row.use_columnar = false;

  ASSERT_FALSE(engine.CachedEtOffsetsForTest().has_value());
  auto before = engine.Execute(q, MethodKind::kFullTopKEt, row);
  ASSERT_TRUE(before.ok());
  auto cached0 = engine.CachedEtOffsetsForTest();
  ASSERT_TRUE(cached0.has_value());
  EXPECT_EQ(cached0->first, 0u);

  // Swap in a freshly built epoch; the cached offsets must be re-resolved
  // against the new epoch's plan schema, not reused blindly.
  handle->Swap(build_store("e1."));
  auto after = engine.Execute(q, MethodKind::kFullTopKEt, row);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(before->entries, after->entries);
  auto cached1 = engine.CachedEtOffsetsForTest();
  ASSERT_TRUE(cached1.has_value());
  EXPECT_EQ(cached1->first, 1u);

  // Offsets are valid column indices either way (the ET group source
  // always lays out TI.TID / TI.SCORE).
  auto swapped_et = engine.Execute(q, MethodKind::kFastTopKEt, row);
  ASSERT_TRUE(swapped_et.ok());
  EXPECT_EQ(before->entries, swapped_et->entries);
}

// ---------------------------------------------------------------------------
// ExecStats block counters on the wire
// ---------------------------------------------------------------------------

TEST_F(ColumnarFig3Test, BlockCountersSurviveStatsRoundTrip) {
  engine::TopologyQuery q = ExampleQuery(db_, core::RankScheme::kFreq);
  engine::QueryResult result = Run(q, MethodKind::kFullTopK, true);
  EXPECT_GT(result.stats.blocks_total, 0u);
  EXPECT_LE(result.stats.blocks_skipped, result.stats.blocks_total);

  std::string buf;
  engine::EncodeQueryResult(result, &buf);
  BinaryReader reader(buf);
  auto decoded = engine::DecodeQueryResult(&reader);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->entries, result.entries);
  EXPECT_EQ(decoded->stats.blocks_total, result.stats.blocks_total);
  EXPECT_EQ(decoded->stats.blocks_skipped, result.stats.blocks_skipped);
  EXPECT_EQ(decoded->stats.rows_scanned, result.stats.rows_scanned);
}

TEST_F(ColumnarFig3Test, ZoneMapsSkipBlocksOnEarlyStop) {
  // k = 1 over the ranked cursor: the top group answers immediately, so
  // later blocks are never touched and count as skipped.
  engine::TopologyQuery q = ExampleQuery(db_, core::RankScheme::kFreq, 1);
  engine::QueryResult result = Run(q, MethodKind::kFullTopK, true);
  ASSERT_EQ(result.entries.size(), 1u);
  EXPECT_GT(result.stats.blocks_total, 0u);
}

}  // namespace
}  // namespace tsb
