#include <gtest/gtest.h>

#include <limits>

#include "optimizer/cost_model.h"
#include "optimizer/join_enum.h"
#include "optimizer/stats.h"
#include "storage/predicate.h"
#include "storage/table.h"

namespace tsb {
namespace optimizer {
namespace {

using storage::ColumnType;
using storage::TableSchema;
using storage::Value;

// --- Statistics -----------------------------------------------------------

TEST(StatsTest, SelectivityEstimateTracksTruth) {
  storage::Table t("T", TableSchema({{"ID", ColumnType::kInt64},
                                     {"DESC", ColumnType::kString}}));
  for (int64_t i = 0; i < 1000; ++i) {
    t.AppendRowOrDie(
        {Value(i), Value(i % 4 == 0 ? "hit keyword" : "miss")});
  }
  auto pred = storage::MakeContainsKeyword(t.schema(), "DESC", "keyword");
  double est = EstimateSelectivity(t, *pred);
  EXPECT_NEAR(est, 0.25, 0.05);
}

TEST(StatsTest, EmptyTableSelectivityZero) {
  storage::Table t("T", TableSchema({{"ID", ColumnType::kInt64}}));
  auto pred = storage::MakeTrue();
  EXPECT_EQ(EstimateSelectivity(t, *pred), 0.0);
}

TEST(StatsTest, JoinFanout) {
  EXPECT_DOUBLE_EQ(EstimateJoinFanout(100, 50), 2.0);
  EXPECT_DOUBLE_EQ(EstimateJoinFanout(100, 100), 1.0);
  EXPECT_DOUBLE_EQ(EstimateJoinFanout(10, 0), 0.0);
}

// --- Lemma 1 / Lemma 2 derived quantities -----------------------------------

DgjPlanModel TwoLevelModel(double rho1, double rho2,
                           std::vector<double> cards) {
  DgjPlanModel model;
  model.group_cards = std::move(cards);
  for (double rho : {rho1, rho2}) {
    DgjLevel level;
    level.fanout = 1.0;
    level.selectivity = rho;
    level.index_probe_cost = 1.5;
    model.levels.push_back(level);
  }
  return model;
}

TEST(CostModelTest, DerivedProbabilitiesForUnitFanout) {
  DgjPlanModel model = TwoLevelModel(0.3, 0.5, {10});
  DgjDerived d = ComputeDerived(model);
  // x_{n+1} = 1 (corrected boundary), x_2 = rho_2, x_1 = rho_1 * rho_2.
  ASSERT_EQ(d.x.size(), 3u);
  EXPECT_DOUBLE_EQ(d.x[2], 1.0);
  EXPECT_DOUBLE_EQ(d.x[1], 0.5);
  EXPECT_DOUBLE_EQ(d.x[0], 0.15);
  // delta_2 = I_2 + pred, delta_1 = I_1 + pred + fetch + rho_1 * delta_2.
  EXPECT_DOUBLE_EQ(d.delta[2], 0.0);
  EXPECT_DOUBLE_EQ(d.delta[1], 1.5 + 4.5);
  EXPECT_DOUBLE_EQ(d.delta[0], 1.5 + 4.5 + 1.0 + 0.3 * (1.5 + 4.5));
}

TEST(CostModelTest, PerfectSelectivityMakesResultsCertain) {
  DgjPlanModel model = TwoLevelModel(1.0, 1.0, {5});
  DgjDerived d = ComputeDerived(model);
  EXPECT_DOUBLE_EQ(d.x[0], 1.0);
}

TEST(CostModelTest, ZeroSelectivityMakesResultsImpossible) {
  DgjPlanModel model = TwoLevelModel(0.0, 1.0, {5});
  DgjDerived d = ComputeDerived(model);
  EXPECT_DOUBLE_EQ(d.x[0], 0.0);
}

// --- Theorem 1 dynamic program ---------------------------------------------

TEST(CostModelTest, CostIncreasesWithK) {
  DgjPlanModel model = TwoLevelModel(0.5, 0.5,
                                     std::vector<double>(20, 50.0));
  double prev = 0.0;
  for (size_t k : {1, 2, 5, 10}) {
    double cost = ExpectedDgjCost(model, k);
    EXPECT_GT(cost, prev);
    prev = cost;
  }
}

TEST(CostModelTest, CostDecreasesWithSelectivity) {
  std::vector<double> cards(50, 100.0);
  double selective = ExpectedDgjCost(TwoLevelModel(0.05, 0.05, cards), 10);
  double unselective = ExpectedDgjCost(TwoLevelModel(0.9, 0.9, cards), 10);
  EXPECT_LT(unselective, selective);
}

TEST(CostModelTest, ZeroGroupsOrZeroKFree) {
  EXPECT_EQ(ExpectedDgjCost(TwoLevelModel(0.5, 0.5, {}), 5), 0.0);
  EXPECT_EQ(ExpectedDgjCost(TwoLevelModel(0.5, 0.5, {10}), 0), 0.0);
}

TEST(CostModelTest, HdgjRebuildChargedPerGroup) {
  DgjPlanModel idgj = TwoLevelModel(0.5, 0.5, std::vector<double>(10, 5.0));
  DgjPlanModel hdgj = idgj;
  hdgj.levels[0].hdgj = true;
  hdgj.levels[0].inner_cardinality = 10000.0;
  EXPECT_GT(ExpectedDgjCost(hdgj, 5), ExpectedDgjCost(idgj, 5));
}

TEST(CostModelTest, RegularCostScalesWithRows) {
  RegularPlanModel small;
  small.grouped_rows = 100;
  small.side_cards = {100, 100};
  small.num_groups = 10;
  RegularPlanModel big = small;
  big.grouped_rows = 100000;
  EXPECT_GT(ExpectedRegularCost(big), ExpectedRegularCost(small));
}

TEST(CostModelTest, CrossoverMatchesPaperShape) {
  // Unselective predicates: early termination finds witnesses immediately
  // and should beat a full scan of a large LeftTops table. Selective
  // predicates: witnesses are rare, ET processes nearly everything through
  // random probes and loses. This is exactly the Table-2 crossover.
  std::vector<double> cards(500, 200.0);
  RegularPlanModel regular;
  regular.grouped_rows = 500 * 200.0;
  regular.side_cards = {20000, 20000};
  regular.num_groups = 500;
  const double regular_cost = ExpectedRegularCost(regular);

  double et_unselective = ExpectedDgjCost(TwoLevelModel(0.85, 0.85, cards), 10);
  double et_selective = ExpectedDgjCost(TwoLevelModel(0.01, 0.01, cards), 10);
  EXPECT_LT(et_unselective, regular_cost);
  EXPECT_GT(et_selective, regular_cost);
}

TEST(CostModelTest, ExplainChoiceMentionsWinner) {
  EXPECT_NE(ExplainChoice(1.0, 2.0).find("ET"), std::string::npos);
  EXPECT_NE(ExplainChoice(3.0, 2.0).find("regular"), std::string::npos);
}

// --- System-R join enumeration (Section 5.4.1) --------------------------------

QuerySpec TopologyChainSpec(double rho_a, double rho_b, size_t groups,
                            double card_per_group) {
  QuerySpec spec;
  RelationSpec driver;
  driver.name = "TopoInfo";
  driver.cardinality = static_cast<double>(groups);
  spec.relations.push_back(driver);
  RelationSpec a;
  a.name = "Protein";
  a.cardinality = 20000;
  a.predicate_selectivity = rho_a;
  spec.relations.push_back(a);
  RelationSpec b;
  b.name = "DNA";
  b.cardinality = 15000;
  b.predicate_selectivity = rho_b;
  spec.relations.push_back(b);
  spec.joins = {{0, 1}, {0, 2}};
  spec.k = 10;
  spec.group_cards.assign(groups, card_per_group);
  return spec;
}

TEST(JoinEnumTest, PicksEtPlanForUnselectivePredicates) {
  PlanChoice choice = OptimizeJoinOrder(TopologyChainSpec(0.85, 0.85, 400,
                                                          300.0));
  EXPECT_TRUE(choice.early_termination);
  for (JoinAlg alg : choice.algs) {
    EXPECT_TRUE(alg == JoinAlg::kIdgj || alg == JoinAlg::kHdgj);
  }
}

TEST(JoinEnumTest, PicksRegularPlanForSelectivePredicates) {
  PlanChoice choice = OptimizeJoinOrder(TopologyChainSpec(0.005, 0.005, 400,
                                                          300.0));
  EXPECT_FALSE(choice.early_termination);
}

TEST(JoinEnumTest, DriverAlwaysFirst) {
  PlanChoice choice = OptimizeJoinOrder(TopologyChainSpec(0.5, 0.5, 50,
                                                          10.0));
  ASSERT_FALSE(choice.order.empty());
  EXPECT_EQ(choice.order[0], 0u);
  EXPECT_EQ(choice.order.size(), 3u);
  EXPECT_EQ(choice.algs.size(), 2u);
}

TEST(JoinEnumTest, RespectsMissingIndexes) {
  QuerySpec spec = TopologyChainSpec(0.9, 0.9, 100, 100.0);
  spec.relations[1].has_index = false;
  spec.relations[2].has_index = false;
  PlanChoice choice = OptimizeJoinOrder(spec);
  // Without indexes IDGJ/IndexNL are inadmissible; hash joins, sort-merge
  // joins (or HDGJ) must carry the plan.
  for (JoinAlg alg : choice.algs) {
    EXPECT_TRUE(alg == JoinAlg::kHashJoin || alg == JoinAlg::kSortMerge ||
                alg == JoinAlg::kHdgj);
  }
}

TEST(JoinEnumTest, PlanToStringReadable) {
  QuerySpec spec = TopologyChainSpec(0.5, 0.5, 10, 5.0);
  PlanChoice choice = OptimizeJoinOrder(spec);
  std::string s = choice.ToString(spec);
  EXPECT_NE(s.find("TopoInfo"), std::string::npos);
  EXPECT_NE(s.find("cost="), std::string::npos);
}

TEST(JoinEnumTest, SortMergeEntersTheSearchSpace) {
  EXPECT_STREQ(JoinAlgToString(JoinAlg::kSortMerge), "SortMerge");
  // A regular plan must exist even when only sort-merge and hash join are
  // admissible, and its cost must be finite.
  QuerySpec spec = TopologyChainSpec(0.01, 0.01, 200, 500.0);
  spec.relations[1].has_index = false;
  spec.relations[2].has_index = false;
  PlanChoice choice = OptimizeJoinOrder(spec);
  EXPECT_FALSE(choice.early_termination);
  EXPECT_LT(choice.cost, std::numeric_limits<double>::infinity());
}

TEST(JoinEnumTest, SingleRelationQuery) {
  QuerySpec spec;
  RelationSpec driver;
  driver.name = "OnlyOne";
  driver.cardinality = 5;
  spec.relations.push_back(driver);
  spec.group_cards = {1, 1, 1, 1, 1};
  PlanChoice choice = OptimizeJoinOrder(spec);
  EXPECT_EQ(choice.order.size(), 1u);
  EXPECT_TRUE(choice.algs.empty());
}

}  // namespace
}  // namespace optimizer
}  // namespace tsb
