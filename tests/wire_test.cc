// The versioned wire protocol (src/wire/): binary frame round-trips for
// every method's requests and results (byte-identical re-encodings), the
// canonical text Format round-trip, parser error offsets, and the
// ShardTransport seam — including the tentpole contract that
// scatter-gather over LoopbackTransport returns results identical to the
// direct per-shard-engine path, and that a failed or timed-out shard
// degrades the answer with partial=true instead of failing the query.

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "biozon/domain.h"
#include "biozon/fig3.h"
#include "common/binary_io.h"
#include "core/builder.h"
#include "core/pruner.h"
#include "engine/engine.h"
#include "engine/nquery.h"
#include "engine/result_io.h"
#include "service/request_parser.h"
#include "service/service.h"
#include "shard/loopback_transport.h"
#include "shard/scatter_gather.h"
#include "shard/sharded_store.h"
#include "wire/codec.h"
#include "wire/message.h"
#include "wire/transport.h"

namespace tsb {
namespace {

using engine::MethodKind;

const std::vector<MethodKind> kAllMethods = {
    MethodKind::kSql,         MethodKind::kFullTop,
    MethodKind::kFastTop,     MethodKind::kFullTopK,
    MethodKind::kFastTopK,    MethodKind::kFullTopKEt,
    MethodKind::kFastTopKEt,  MethodKind::kFullTopKOpt,
    MethodKind::kFastTopKOpt,
};

// ---------------------------------------------------------------------------
// binary_io primitives
// ---------------------------------------------------------------------------

TEST(BinaryIoTest, RoundTripsEveryPrimitive) {
  std::string buf;
  PutU8(&buf, 0xab);
  PutU16(&buf, 0xbeef);
  PutU32(&buf, 0xdeadbeefu);
  PutU64(&buf, 0x0123456789abcdefull);
  PutI64(&buf, -42);
  PutF64(&buf, 3.14159265358979);
  PutBool(&buf, true);
  PutString(&buf, "hello wire");

  BinaryReader in(buf);
  EXPECT_EQ(in.U8(), 0xab);
  EXPECT_EQ(in.U16(), 0xbeef);
  EXPECT_EQ(in.U32(), 0xdeadbeefu);
  EXPECT_EQ(in.U64(), 0x0123456789abcdefull);
  EXPECT_EQ(in.I64(), -42);
  EXPECT_DOUBLE_EQ(in.F64(), 3.14159265358979);
  EXPECT_TRUE(in.Bool());
  EXPECT_EQ(in.String(), "hello wire");
  EXPECT_TRUE(in.AtEnd());
}

TEST(BinaryIoTest, TruncationSticksAndYieldsZeros) {
  std::string buf;
  PutU32(&buf, 7);
  BinaryReader in(buf);
  EXPECT_EQ(in.U32(), 7u);
  EXPECT_EQ(in.U64(), 0u);  // Past the end.
  EXPECT_FALSE(in.ok());
  EXPECT_EQ(in.String(), "");  // Still failed, still harmless.
  EXPECT_FALSE(in.AtEnd());
  EXPECT_FALSE(in.status("test").ok());
}

TEST(BinaryIoTest, StringLengthBeyondBufferFails) {
  std::string buf;
  PutU32(&buf, 1000);  // Claims 1000 bytes; none follow.
  BinaryReader in(buf);
  EXPECT_EQ(in.String(), "");
  EXPECT_FALSE(in.ok());
}

TEST(BinaryIoTest, DoubleBitPatternsSurviveExactly) {
  for (double v : {0.0, -0.0, 1.0 / 3.0, 2.2250738585072014e-308,
                   1.7976931348623157e308}) {
    std::string buf;
    PutF64(&buf, v);
    std::string again;
    BinaryReader in(buf);
    PutF64(&again, in.F64());
    EXPECT_EQ(buf, again);
  }
}

// ---------------------------------------------------------------------------
// Result payload round-trips (no database needed)
// ---------------------------------------------------------------------------

TEST(ResultIoTest, QueryResultRoundTripsByteIdentically) {
  engine::QueryResult result;
  result.entries = {{7, 3.25}, {2, 1.0 / 3.0}, {9, 0.0}};
  result.stats.seconds = 0.001234;
  result.stats.rows_scanned = 111;
  result.stats.probes = 22;
  result.stats.rows_out = 3;
  result.stats.builds = 4;
  result.stats.subqueries = 5;
  result.stats.plan = "scan | probe | merge";
  result.partial = true;

  std::string bytes;
  engine::EncodeQueryResult(result, &bytes);
  BinaryReader in(bytes);
  auto decoded = engine::DecodeQueryResult(&in);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_TRUE(in.AtEnd());

  EXPECT_EQ(decoded->entries, result.entries);
  EXPECT_EQ(decoded->stats.plan, result.stats.plan);
  EXPECT_EQ(decoded->stats.rows_scanned, result.stats.rows_scanned);
  EXPECT_TRUE(decoded->partial);

  std::string again;
  engine::EncodeQueryResult(*decoded, &again);
  EXPECT_EQ(bytes, again);
}

TEST(ResultIoTest, TripleQueryResultRoundTripsByteIdentically) {
  engine::TripleQueryResult result;
  result.entries = {{12, 5}, {3, 2}};
  result.triples_examined = 77;
  result.truncated = true;
  std::string bytes;
  engine::EncodeTripleQueryResult(result, &bytes);
  BinaryReader in(bytes);
  auto decoded = engine::DecodeTripleQueryResult(&in);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->entries.size(), 2u);
  EXPECT_EQ(decoded->entries[0].tid, 12);
  EXPECT_EQ(decoded->entries[0].frequency, 5u);
  EXPECT_EQ(decoded->triples_examined, 77u);
  EXPECT_TRUE(decoded->truncated);
  EXPECT_FALSE(decoded->partial);
  std::string again;
  engine::EncodeTripleQueryResult(*decoded, &again);
  EXPECT_EQ(bytes, again);
}

// ---------------------------------------------------------------------------
// Codec on the Figure-3 fixture
// ---------------------------------------------------------------------------

class WireFig3Test : public ::testing::Test {
 protected:
  void SetUp() override {
    ids_ = biozon::BuildFigure3Database(&db_);
    view_ = std::make_unique<graph::DataGraphView>(db_);
    schema_ = std::make_unique<graph::SchemaGraph>(db_);
    core::TopologyBuilder builder(&db_, schema_.get(), view_.get());
    core::BuildConfig config;
    config.max_path_length = 3;
    ASSERT_TRUE(builder.BuildAllPairs(config, &store_).ok());
    core::PruneConfig prune;
    prune.frequency_threshold = 0;
    std::vector<std::pair<storage::EntityTypeId, storage::EntityTypeId>> keys;
    for (const auto& [key, pair] : store_.pairs()) keys.push_back(key);
    for (const auto& [t1, t2] : keys) {
      ASSERT_TRUE(
          core::PruneFrequentTopologies(&db_, &store_, t1, t2, prune).ok());
    }
    engine_ = std::make_unique<engine::Engine>(
        &db_, &store_, schema_.get(), view_.get(),
        core::ScoreModel(&store_.catalog(),
                         biozon::MakeBiozonDomainKnowledge(ids_)));
  }

  wire::WireRequest ExampleRequest(MethodKind method) const {
    wire::WireRequest request;
    request.id = 42;
    request.priority = wire::Priority::kBatch;
    request.deadline_seconds = 1.5;
    request.query.entity_set1 = "Protein";
    request.query.pred1 = storage::MakeContainsKeyword(
        db_.GetTable("Protein")->schema(), "DESC", "enzyme");
    request.query.entity_set2 = "DNA";
    request.query.pred2 = storage::MakeEquals(
        db_.GetTable("DNA")->schema(), "TYPE", storage::Value("mRNA"));
    request.query.scheme = core::RankScheme::kDomain;
    request.query.k = 7;
    request.query.exclude_weak = true;
    request.method = method;
    return request;
  }

  storage::Catalog db_;
  biozon::BiozonSchema ids_;
  std::unique_ptr<graph::DataGraphView> view_;
  std::unique_ptr<graph::SchemaGraph> schema_;
  core::TopologyStore store_;
  std::unique_ptr<engine::Engine> engine_;
};

TEST_F(WireFig3Test, QueryRequestRoundTripsForEveryMethod) {
  for (MethodKind method : kAllMethods) {
    wire::WireRequest request = ExampleRequest(method);
    std::string frame;
    wire::EncodeQueryRequest(request, &frame);

    auto kind = wire::PeekMessageKind(frame);
    ASSERT_TRUE(kind.ok());
    EXPECT_EQ(*kind, wire::MessageKind::kQueryRequest);

    auto decoded = wire::DecodeQueryRequest(frame, db_);
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    EXPECT_EQ(decoded->id, 42u);
    EXPECT_EQ(decoded->priority, wire::Priority::kBatch);
    EXPECT_DOUBLE_EQ(decoded->deadline_seconds, 1.5);
    EXPECT_EQ(decoded->method, method);
    EXPECT_EQ(decoded->query.entity_set1, "Protein");
    EXPECT_EQ(decoded->query.k, 7u);
    EXPECT_TRUE(decoded->query.exclude_weak);
    ASSERT_NE(decoded->query.pred1, nullptr);
    EXPECT_EQ(decoded->query.pred1->ToString(),
              request.query.pred1->ToString());

    // Encode → decode → encode is byte-identical.
    std::string again;
    wire::EncodeQueryRequest(*decoded, &again);
    EXPECT_EQ(frame, again) << engine::MethodKindToString(method);
  }
}

TEST_F(WireFig3Test, RequestsWithExecOptionsAndNoPredicatesRoundTrip) {
  wire::WireRequest request;
  request.query.entity_set1 = "Protein";
  request.query.entity_set2 = "Unigene";
  request.method = MethodKind::kFullTopKEt;
  request.options.dgj_algs = {engine::DgjAlg::kHdgj, engine::DgjAlg::kIdgj};
  request.options.et_side_order = {1, 0};
  request.options.skip_pruned_checks = true;

  std::string frame;
  wire::EncodeQueryRequest(request, &frame);
  auto decoded = wire::DecodeQueryRequest(frame, db_);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->query.pred1, nullptr);
  EXPECT_EQ(decoded->options.dgj_algs, request.options.dgj_algs);
  EXPECT_EQ(decoded->options.et_side_order, request.options.et_side_order);
  EXPECT_TRUE(decoded->options.skip_pruned_checks);
  std::string again;
  wire::EncodeQueryRequest(*decoded, &again);
  EXPECT_EQ(frame, again);
}

TEST_F(WireFig3Test, BooleanCombinatorPredicatesSurviveTheBinaryCodec) {
  // OR / NOT are outside the text grammar; the structural tree carries
  // them.
  const storage::TableSchema& schema = db_.GetTable("Protein")->schema();
  wire::WireRequest request;
  request.query.entity_set1 = "Protein";
  request.query.entity_set2 = "DNA";
  request.query.pred1 = storage::MakeOr(
      storage::MakeContainsKeyword(schema, "DESC", "enzyme"),
      storage::MakeNot(storage::MakeEquals(schema, "DESC",
                                           storage::Value("x"))));
  std::string frame;
  wire::EncodeQueryRequest(request, &frame);
  auto decoded = wire::DecodeQueryRequest(frame, db_);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->query.pred1->ToString(),
            request.query.pred1->ToString());
  std::string again;
  wire::EncodeQueryRequest(*decoded, &again);
  EXPECT_EQ(frame, again);
}

TEST_F(WireFig3Test, QueryResponseRoundTripsRealResultsForEveryMethod) {
  engine::TopologyQuery query;
  query.entity_set1 = "Protein";
  query.entity_set2 = "DNA";
  query.scheme = core::RankScheme::kFreq;
  query.k = 10;
  for (MethodKind method : kAllMethods) {
    auto result = engine_->Execute(query, method);
    ASSERT_TRUE(result.ok()) << engine::MethodKindToString(method);
    ASSERT_FALSE(result->entries.empty());

    wire::WireResponse response;
    response.request_id = 7;
    response.result = *result;
    response.service_seconds = 0.25;
    std::string frame;
    wire::EncodeQueryResponse(response, &frame);
    auto decoded = wire::DecodeQueryResponse(frame);
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    EXPECT_TRUE(decoded->error.ok());
    // Scores decode to the exact same doubles (operator== on entries).
    EXPECT_EQ(decoded->result.entries, result->entries);
    EXPECT_EQ(decoded->result.stats.plan, result->stats.plan);

    std::string again;
    wire::EncodeQueryResponse(*decoded, &again);
    EXPECT_EQ(frame, again) << engine::MethodKindToString(method);
  }
}

TEST_F(WireFig3Test, ErrorResponsesCarryTheWireCode) {
  wire::WireResponse response;
  response.request_id = 3;
  response.error = wire::WireError{wire::WireErrorCode::kDeadlineExceeded,
                                   "expired after 2.5s"};
  std::string frame;
  wire::EncodeQueryResponse(response, &frame);
  auto decoded = wire::DecodeQueryResponse(frame);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->error.code, wire::WireErrorCode::kDeadlineExceeded);
  EXPECT_EQ(decoded->error.message, "expired after 2.5s");
  EXPECT_EQ(wire::StatusFromWireError(decoded->error).code(),
            StatusCode::kResourceExhausted);
}

TEST_F(WireFig3Test, TripleCollectRoundTripsSelectionAndRelatedSets) {
  engine::TripleQuery triple;
  triple.entity_set1 = "Protein";
  triple.entity_set2 = "Unigene";
  triple.entity_set3 = "DNA";
  auto selection = engine::ResolveTripleSelection(&db_, triple);
  ASSERT_TRUE(selection.ok());

  std::string frame;
  wire::EncodeTripleCollectRequest(*selection, &frame);
  auto decoded = wire::DecodeTripleCollectRequest(frame, db_);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  for (int s = 0; s < 3; ++s) {
    EXPECT_EQ(decoded->slots[s].def->name, selection->slots[s].def->name);
    EXPECT_EQ(decoded->slots[s].selected, selection->slots[s].selected);
  }
  for (int p = 0; p < 3; ++p) {
    EXPECT_EQ(decoded->slot_pairs[p].lo, selection->slot_pairs[p].lo);
    EXPECT_EQ(decoded->slot_pairs[p].hi, selection->slot_pairs[p].hi);
  }
  std::string again;
  wire::EncodeTripleCollectRequest(*decoded, &again);
  EXPECT_EQ(frame, again);

  // The response payload: the real related sets of this store.
  engine::TripleRelatedSets related =
      engine::CollectTripleRelated(db_, store_, *selection);
  std::string response_frame;
  wire::EncodeTripleCollectResponse(related, &response_frame);
  auto decoded_sets = wire::DecodeTripleCollectResponse(response_frame);
  ASSERT_TRUE(decoded_sets.ok());
  for (int p = 0; p < 3; ++p) {
    EXPECT_EQ((*decoded_sets)[p], related[p]);
  }
  std::string response_again;
  wire::EncodeTripleCollectResponse(*decoded_sets, &response_again);
  EXPECT_EQ(response_frame, response_again);
}

TEST_F(WireFig3Test, FramesEncodeBackToBackIntoOneBuffer) {
  // A transport may concatenate frames into one send buffer; each frame's
  // length field must be patched relative to its own start.
  wire::WireRequest a = ExampleRequest(MethodKind::kFullTop);
  wire::WireRequest b = ExampleRequest(MethodKind::kSql);
  b.id = 43;
  std::string lone_a, lone_b, buffer;
  wire::EncodeQueryRequest(a, &lone_a);
  wire::EncodeQueryRequest(b, &lone_b);
  wire::EncodeQueryRequest(a, &buffer);
  const size_t split = buffer.size();
  wire::EncodeQueryRequest(b, &buffer);
  EXPECT_EQ(buffer.substr(0, split), lone_a);
  EXPECT_EQ(buffer.substr(split), lone_b);
  auto second = wire::DecodeQueryRequest(
      std::string_view(buffer).substr(split), db_);
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ(second->id, 43u);
}

TEST_F(WireFig3Test, EqualsPredicateTypeMismatchIsRejectedAtDecode) {
  // The text parser types equality values by the column; the binary
  // decoder must enforce the same agreement (a mismatch would match no
  // row and silently empty a shard's partial).
  wire::WireRequest request = ExampleRequest(MethodKind::kFullTop);
  request.query.pred2 = storage::MakeEquals(
      db_.GetTable("DNA")->schema(), "ID", storage::Value(int64_t{7}));
  std::string ok_frame;
  wire::EncodeQueryRequest(request, &ok_frame);
  ASSERT_TRUE(wire::DecodeQueryRequest(ok_frame, db_).ok());

  // Same column, string-typed value: constructed via MakeEquals directly
  // (the parser would never produce it).
  request.query.pred2 = storage::MakeEquals(
      db_.GetTable("DNA")->schema(), "ID", storage::Value("seven"));
  std::string bad_frame;
  wire::EncodeQueryRequest(request, &bad_frame);
  auto decoded = wire::DecodeQueryRequest(bad_frame, db_);
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("does not match"),
            std::string::npos);
}

TEST_F(WireFig3Test, MalformedFramesAreRejected) {
  wire::WireRequest request = ExampleRequest(MethodKind::kFastTopKEt);
  std::string frame;
  wire::EncodeQueryRequest(request, &frame);

  // Bad magic.
  std::string bad = frame;
  bad[0] = 'X';
  EXPECT_FALSE(wire::PeekMessageKind(bad).ok());
  EXPECT_FALSE(wire::DecodeQueryRequest(bad, db_).ok());

  // Unsupported version.
  bad = frame;
  bad[2] = 99;
  EXPECT_FALSE(wire::DecodeQueryRequest(bad, db_).ok());

  // Wrong kind for the decoder.
  EXPECT_FALSE(wire::DecodeQueryResponse(frame).ok());

  // Truncated payload (header length no longer matches).
  bad = frame.substr(0, frame.size() - 3);
  EXPECT_FALSE(wire::DecodeQueryRequest(bad, db_).ok());

  // Trailing garbage.
  bad = frame + "xyz";
  EXPECT_FALSE(wire::DecodeQueryRequest(bad, db_).ok());

  // Too short for a header at all.
  EXPECT_FALSE(wire::PeekMessageKind("TW").ok());
}

TEST_F(WireFig3Test, InspectFrameClassifiesPrefixesAndCorruption) {
  wire::WireRequest request = ExampleRequest(MethodKind::kFastTopKEt);
  std::string frame;
  wire::EncodeQueryRequest(request, &frame);

  // Every strict prefix of a valid frame is kIncomplete — a stream
  // reader keeps waiting, a whole-message decoder rejects it — and once
  // the header is present its fields are available for sizing the read.
  for (size_t len = 0; len < frame.size(); ++len) {
    wire::FrameHeader header;
    const wire::FrameError error = wire::InspectFrame(
        std::string_view(frame).substr(0, len),
        wire::kDefaultMaxFramePayload, &header);
    EXPECT_EQ(error, wire::FrameError::kIncomplete) << "prefix " << len;
    if (len >= wire::kFrameHeaderBytes) {
      EXPECT_EQ(header.frame_bytes, frame.size()) << "prefix " << len;
      EXPECT_EQ(header.kind, wire::MessageKind::kQueryRequest);
    }
  }
  EXPECT_EQ(wire::InspectFrame(frame, wire::kDefaultMaxFramePayload,
                               nullptr),
            wire::FrameError::kOk);

  // Bad magic in either position: malformed at the first offending byte.
  for (size_t pos : {0u, 1u}) {
    std::string bad = frame;
    bad[pos] = 'X';
    EXPECT_EQ(wire::InspectFrame(bad, wire::kDefaultMaxFramePayload,
                                 nullptr),
              wire::FrameError::kMalformedFrame);
    // Even a 1-2 byte glimpse of bad magic is already hopeless.
    EXPECT_EQ(wire::InspectFrame(std::string_view(bad).substr(0, pos + 1),
                                 wire::kDefaultMaxFramePayload, nullptr),
              wire::FrameError::kMalformedFrame);
  }

  // Unknown versions — future or outdated (v1 predates serving stamps) —
  // are typed distinctly from garbage, and the Status rendering keeps the
  // distinction (kUnimplemented).
  for (uint8_t version : {0, 1, 7, 255}) {
    std::string bad = frame;
    bad[2] = static_cast<char>(version);
    EXPECT_EQ(wire::InspectFrame(bad, wire::kDefaultMaxFramePayload,
                                 nullptr),
              wire::FrameError::kUnsupportedVersion)
        << static_cast<int>(version);
    auto decoded = wire::DecodeQueryRequest(bad, db_);
    ASSERT_FALSE(decoded.ok());
    EXPECT_EQ(decoded.status().code(), StatusCode::kUnimplemented);
  }
  EXPECT_EQ(wire::FrameErrorToStatus(wire::FrameError::kUnsupportedVersion)
                .code(),
            StatusCode::kUnimplemented);
  EXPECT_EQ(
      wire::FrameErrorToStatus(wire::FrameError::kMalformedFrame).code(),
      StatusCode::kInvalidArgument);

  // Unknown kind byte.
  std::string bad_kind = frame;
  bad_kind[3] = 17;
  EXPECT_EQ(wire::InspectFrame(bad_kind, wire::kDefaultMaxFramePayload,
                               nullptr),
            wire::FrameError::kMalformedFrame);

  // An oversized length field is malformed under the cap — the receiver
  // rejects before allocating, instead of buffering toward 4 GiB.
  std::string huge = frame.substr(0, wire::kFrameHeaderBytes);
  for (int i = 0; i < 4; ++i) huge[4 + i] = static_cast<char>(0xff);
  EXPECT_EQ(wire::InspectFrame(huge, wire::kDefaultMaxFramePayload,
                               nullptr),
            wire::FrameError::kMalformedFrame);
}

// ---------------------------------------------------------------------------
// Wire v3 -> v4 compatibility (trace context and span piggyback)
// ---------------------------------------------------------------------------

namespace {

/// Rewrites a current-version frame into an older twin: drops
/// `tail_bytes` from the end of the payload (the newer trailing fields),
/// patches the version byte to `version` and the little-endian payload
/// length.
std::string StripToVersion(const std::string& frame, size_t tail_bytes,
                           uint8_t version) {
  std::string old = frame.substr(0, frame.size() - tail_bytes);
  old[2] = static_cast<char>(version);
  uint32_t len = static_cast<uint8_t>(old[4]) |
                 (static_cast<uint8_t>(old[5]) << 8) |
                 (static_cast<uint8_t>(old[6]) << 16) |
                 (static_cast<uint32_t>(static_cast<uint8_t>(old[7])) << 24);
  len -= static_cast<uint32_t>(tail_bytes);
  old[4] = static_cast<char>(len & 0xff);
  old[5] = static_cast<char>((len >> 8) & 0xff);
  old[6] = static_cast<char>((len >> 16) & 0xff);
  old[7] = static_cast<char>((len >> 24) & 0xff);
  return old;
}

std::string StripToV3(const std::string& frame, size_t tail_bytes) {
  return StripToVersion(frame, tail_bytes, 3);
}

// v4 request tail: trace_id u64 + parent_span_id u64 + sampled bool.
constexpr size_t kRequestTraceTailBytes = 8 + 8 + 1;
// v4 response tail when no spans piggyback: the u32 span count alone.
constexpr size_t kEmptySpanListBytes = 4;
// v6 response cost tail: cpu_ns + bytes_deserialized + catalog_interns +
// heap_bytes, one u64 each, written after the span list.
constexpr size_t kCostTailBytes = 4 * 8;

}  // namespace

TEST_F(WireFig3Test, V3RequestFramesDecodeWithEmptyTraceContext) {
  wire::WireRequest request = ExampleRequest(MethodKind::kFastTopKEt);
  request.trace.trace_id = 0xabcdef0123456789ULL;
  request.trace.parent_span_id = 42;
  request.trace.sampled = true;
  std::string v4_frame;
  wire::EncodeQueryRequest(request, &v4_frame);

  // The v4 decode sees the context...
  auto v4_decoded = wire::DecodeQueryRequest(v4_frame, db_);
  ASSERT_TRUE(v4_decoded.ok());
  EXPECT_TRUE(v4_decoded->trace.active());
  EXPECT_EQ(v4_decoded->trace.trace_id, request.trace.trace_id);
  EXPECT_EQ(v4_decoded->trace.parent_span_id, 42u);

  // ... while the same payload reframed as v3 decodes cleanly with an
  // empty context — an old peer's frames keep working.
  const std::string v3_frame = StripToV3(v4_frame, kRequestTraceTailBytes);
  EXPECT_EQ(wire::InspectFrame(v3_frame, wire::kDefaultMaxFramePayload,
                               nullptr),
            wire::FrameError::kOk);
  auto v3_decoded = wire::DecodeQueryRequest(v3_frame, db_);
  ASSERT_TRUE(v3_decoded.ok()) << v3_decoded.status();
  EXPECT_FALSE(v3_decoded->trace.active());
  EXPECT_EQ(v3_decoded->trace.trace_id, 0u);
  EXPECT_EQ(v3_decoded->trace.parent_span_id, 0u);
  // Everything before the tail survives untouched.
  EXPECT_EQ(v3_decoded->id, request.id);
  EXPECT_EQ(v3_decoded->method, request.method);
  EXPECT_EQ(v3_decoded->query.pred1->ToString(),
            request.query.pred1->ToString());
}

TEST_F(WireFig3Test, V3ResponseFramesDecodeWithNoSpans) {
  wire::WireResponse response;
  response.request_id = 9;
  response.serving_stamp = "r1:e2";
  response.result.entries = {{3, 2.5}, {1, 1.0}};
  response.result.stats.plan = "scan";
  response.service_seconds = 0.125;
  std::string v4_frame;
  wire::EncodeQueryResponse(response, &v4_frame);

  const std::string v3_frame =
      StripToV3(v4_frame, kEmptySpanListBytes + kCostTailBytes);
  auto decoded = wire::DecodeQueryResponse(v3_frame);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_TRUE(decoded->spans.empty());
  EXPECT_EQ(decoded->result.entries, response.result.entries);
  EXPECT_EQ(decoded->serving_stamp, "r1:e2");
  EXPECT_DOUBLE_EQ(decoded->service_seconds, 0.125);
}

TEST_F(WireFig3Test, V5ResponseFramesDecodeWithoutCostFields) {
  // A v5 peer's response is a strict prefix of the v6 layout: span records
  // without the per-span cpu_ns, no cost tail. Stripping the v6 tail off
  // an empty-span response and re-versioning it as v5 must decode clean,
  // with every cost field zero.
  wire::WireResponse response;
  response.request_id = 21;
  response.serving_stamp = "r0:e1";
  response.result.entries = {{5, 9.0}};
  response.result.stats.plan = "scan";
  response.result.stats.cpu_ns = 123456;
  response.result.stats.bytes_deserialized = 789;
  response.result.stats.heap_bytes = 1024;
  std::string v6_frame;
  wire::EncodeQueryResponse(response, &v6_frame);

  const std::string v5_frame =
      StripToVersion(v6_frame, kCostTailBytes, 5);
  auto decoded = wire::DecodeQueryResponse(v5_frame);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_TRUE(decoded->spans.empty());
  EXPECT_EQ(decoded->result.entries, response.result.entries);
  EXPECT_EQ(decoded->result.stats.cpu_ns, 0u);
  EXPECT_EQ(decoded->result.stats.bytes_deserialized, 0u);
  EXPECT_EQ(decoded->result.stats.catalog_interns, 0u);
  EXPECT_EQ(decoded->result.stats.heap_bytes, 0u);

  // A v6 frame truncated anywhere inside the cost tail is a typed decode
  // error, never a silent zero.
  for (size_t strip = 1; strip < kCostTailBytes; ++strip) {
    const std::string bad = StripToVersion(v6_frame, strip, 6);
    EXPECT_FALSE(wire::DecodeQueryResponse(bad).ok()) << strip;
  }
}

TEST_F(WireFig3Test, ResponseCostFieldsAndSpanCpuRoundTrip) {
  wire::WireResponse response;
  response.request_id = 33;
  response.result.entries = {{2, 4.0}, {7, 1.5}};
  response.result.stats.plan = "columnar";
  response.result.stats.cpu_ns = 0xdeadbeefULL;
  response.result.stats.bytes_deserialized = 55555;
  response.result.stats.catalog_interns = 17;
  response.result.stats.heap_bytes = 1 << 20;
  obs::Span span;
  span.span_id = obs::NewSpanId();
  span.parent_span_id = obs::NewSpanId();
  span.name = "shard.exec";
  span.cpu_ns = 424242;
  response.spans.push_back(span);
  std::string frame;
  wire::EncodeQueryResponse(response, &frame);

  auto decoded = wire::DecodeQueryResponse(frame);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->result.stats.cpu_ns, response.result.stats.cpu_ns);
  EXPECT_EQ(decoded->result.stats.bytes_deserialized,
            response.result.stats.bytes_deserialized);
  EXPECT_EQ(decoded->result.stats.catalog_interns,
            response.result.stats.catalog_interns);
  EXPECT_EQ(decoded->result.stats.heap_bytes,
            response.result.stats.heap_bytes);
  ASSERT_EQ(decoded->spans.size(), 1u);
  EXPECT_EQ(decoded->spans[0].cpu_ns, 424242u);

  std::string again;
  wire::EncodeQueryResponse(*decoded, &again);
  EXPECT_EQ(frame, again);
}

TEST_F(WireFig3Test, CorruptedTraceFieldsErrorWithoutOverread) {
  wire::WireRequest request = ExampleRequest(MethodKind::kFullTop);
  request.trace.trace_id = 7;
  request.trace.sampled = true;
  std::string frame;
  wire::EncodeQueryRequest(request, &frame);

  // A v4 frame whose payload ends mid-trace-tail (length field patched to
  // match) is a truncation error, not a silent empty context.
  for (size_t strip = 1; strip < kRequestTraceTailBytes; ++strip) {
    std::string bad = StripToV3(frame, strip);
    bad[2] = 4;  // Keep claiming v4: the tail is then mandatory.
    EXPECT_FALSE(wire::DecodeQueryRequest(bad, db_).ok()) << strip;
  }

  // A response whose span count claims more spans than the payload holds
  // fails before any allocation.
  wire::WireResponse response;
  response.request_id = 1;
  std::string resp_frame;
  wire::EncodeQueryResponse(response, &resp_frame);
  // The empty span list (count=0) sits just before the 32-byte cost tail.
  const size_t count_at = resp_frame.size() - kCostTailBytes - 4;
  for (size_t i = count_at; i < count_at + 4; ++i) {
    resp_frame[i] = static_cast<char>(0xff);
  }
  EXPECT_FALSE(wire::DecodeQueryResponse(resp_frame).ok());
}

TEST_F(WireFig3Test, MalformedSweepOverSpanCarryingFrames) {
  // The byte-corruption sweep of MalformedBytesSweepNeverCrashesTheDecoders,
  // pointed at a response that actually piggybacks spans — the v4 surface.
  wire::WireResponse response;
  response.request_id = 11;
  response.result.entries = {{3, 2.5}};
  obs::Span span;
  span.span_id = obs::NewSpanId();
  span.parent_span_id = obs::NewSpanId();
  span.name = "shard.exec";
  span.tags = "method=Full-Top,rows=5";
  span.duration_seconds = 0.004;
  response.spans.push_back(span);
  response.spans.push_back(obs::Span{});
  std::string frame;
  wire::EncodeQueryResponse(response, &frame);

  auto round = wire::DecodeQueryResponse(frame);
  ASSERT_TRUE(round.ok());
  ASSERT_EQ(round->spans.size(), 2u);
  EXPECT_EQ(round->spans[0].name, "shard.exec");
  std::string again;
  wire::EncodeQueryResponse(*round, &again);
  EXPECT_EQ(frame, again);

  for (size_t len = 0; len < frame.size(); ++len) {
    EXPECT_FALSE(wire::DecodeQueryResponse(frame.substr(0, len)).ok())
        << len;
  }
  for (size_t pos = 0; pos < frame.size(); ++pos) {
    std::string bad = frame;
    bad[pos] = static_cast<char>(bad[pos] ^ (0x80 | (pos % 0x7f)));
    auto decoded = wire::DecodeQueryResponse(bad);
    if (decoded.ok()) {
      std::string reencoded;
      wire::EncodeQueryResponse(*decoded, &reencoded);
    }
  }
}

TEST_F(WireFig3Test, InspectFrameAcceptsBothLiveVersions) {
  wire::WireRequest request = ExampleRequest(MethodKind::kFullTop);
  std::string frame;
  wire::EncodeQueryRequest(request, &frame);
  EXPECT_EQ(static_cast<uint8_t>(frame[2]), wire::kWireVersion);

  // Version 3 headers pass inspection (the payload length is not v3-sized
  // here, but InspectFrame only validates the header); 2 and 7 sit
  // outside [kMinWireVersion, kWireVersion].
  std::string v3 = frame;
  v3[2] = 3;
  EXPECT_EQ(wire::InspectFrame(v3, wire::kDefaultMaxFramePayload, nullptr),
            wire::FrameError::kOk);
  for (uint8_t version : {2, 7}) {
    std::string bad = frame;
    bad[2] = static_cast<char>(version);
    EXPECT_EQ(wire::InspectFrame(bad, wire::kDefaultMaxFramePayload,
                                 nullptr),
              wire::FrameError::kUnsupportedVersion)
        << static_cast<int>(version);
  }
}

TEST_F(WireFig3Test, MalformedBytesSweepNeverCrashesTheDecoders) {
  // Decoders must return a typed error — never read past the buffer or
  // abort — for truncations and byte corruptions of valid frames.
  wire::WireRequest request = ExampleRequest(MethodKind::kFastTopKEt);
  std::string req_frame;
  wire::EncodeQueryRequest(request, &req_frame);

  wire::WireResponse response;
  response.request_id = 5;
  response.result.entries = {{3, 2.5}, {1, 1.0}};
  response.result.stats.plan = "scan";
  std::string resp_frame;
  wire::EncodeQueryResponse(response, &resp_frame);

  // Every truncation of either frame fails decode (prefixes are never
  // valid: the length field no longer matches).
  for (size_t len = 0; len < req_frame.size(); ++len) {
    EXPECT_FALSE(
        wire::DecodeQueryRequest(req_frame.substr(0, len), db_).ok())
        << len;
  }
  for (size_t len = 0; len < resp_frame.size(); ++len) {
    EXPECT_FALSE(wire::DecodeQueryResponse(resp_frame.substr(0, len)).ok())
        << len;
  }

  // Every single-byte corruption decodes to *something* (an error, or a
  // harmlessly different message) without crashing or overreading. A
  // deterministic xor pattern keeps the sweep reproducible.
  for (size_t pos = 0; pos < req_frame.size(); ++pos) {
    std::string bad = req_frame;
    bad[pos] = static_cast<char>(bad[pos] ^ (0x80 | (pos % 0x7f)));
    auto decoded = wire::DecodeQueryRequest(bad, db_);
    if (decoded.ok()) {
      // Re-encoding whatever survived must stay within bounds too.
      std::string again;
      wire::EncodeQueryRequest(*decoded, &again);
    }
  }
  for (size_t pos = 0; pos < resp_frame.size(); ++pos) {
    std::string bad = resp_frame;
    bad[pos] = static_cast<char>(bad[pos] ^ (0x80 | (pos % 0x7f)));
    auto decoded = wire::DecodeQueryResponse(bad);
    if (decoded.ok()) {
      std::string again;
      wire::EncodeQueryResponse(*decoded, &again);
    }
  }
}

TEST_F(WireFig3Test, InvalidEtSideOrderIsRejectedAtDecode) {
  // The engine CHECK-fails on anything but two sides valued 0/1; the
  // decoder must turn such frames into InvalidArgument, never an abort.
  wire::WireRequest request = ExampleRequest(MethodKind::kFastTopKEt);
  request.options.et_side_order = {5, 0};
  std::string frame;
  wire::EncodeQueryRequest(request, &frame);
  EXPECT_FALSE(wire::DecodeQueryRequest(frame, db_).ok());

  request.options.et_side_order = {0};
  frame.clear();
  wire::EncodeQueryRequest(request, &frame);
  EXPECT_FALSE(wire::DecodeQueryRequest(frame, db_).ok());
}

TEST_F(WireFig3Test, DecodeResolvesAgainstTheCatalogAndRejectsUnknowns) {
  wire::WireRequest request = ExampleRequest(MethodKind::kFullTop);
  request.query.entity_set1 = "Nope";
  std::string frame;
  wire::EncodeQueryRequest(request, &frame);
  auto decoded = wire::DecodeQueryRequest(frame, db_);
  EXPECT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kNotFound);
}

// ---------------------------------------------------------------------------
// Canonical text format (RequestParser::Format)
// ---------------------------------------------------------------------------

class WireTextTest : public WireFig3Test {
 protected:
  service::RequestParser Parser() const {
    return service::RequestParser(&db_);
  }
};

TEST_F(WireTextTest, FormatIsACanonicalFixedPoint) {
  service::RequestParser parser = Parser();
  const std::string line =
      "TOPK k=10 method=fast-topk-et scheme=domain set1=Protein "
      "pred1=DESC.ct('enzyme') set2=DNA pred2=TYPE='mRNA'";
  auto parsed = parser.Parse(line);
  ASSERT_TRUE(parsed.ok()) << parsed.status();

  auto formatted = service::RequestParser::Format(*parsed);
  ASSERT_TRUE(formatted.ok()) << formatted.status();
  EXPECT_EQ(*formatted,
            "TOPK method=fast-topk-et k=10 scheme=domain set1=Protein "
            "pred1=DESC.ct('enzyme') set2=DNA pred2=TYPE='mRNA'");

  // Parse(Format(x)) reproduces x; Format is then a fixed point.
  auto reparsed = parser.Parse(*formatted);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  auto reformatted = service::RequestParser::Format(*reparsed);
  ASSERT_TRUE(reformatted.ok());
  EXPECT_EQ(*formatted, *reformatted);
}

TEST_F(WireTextTest, EveryMethodRoundTripsThroughTheTextGrammar) {
  service::RequestParser parser = Parser();
  for (MethodKind method : kAllMethods) {
    service::ParsedRequest request;
    request.method = method;
    request.query.entity_set1 = "Protein";
    request.query.pred1 = storage::MakeContainsKeyword(
        db_.GetTable("Protein")->schema(), "DESC", "enzyme");
    request.query.entity_set2 = "DNA";
    request.query.pred2 = storage::MakeAnd(
        storage::MakeEquals(db_.GetTable("DNA")->schema(), "TYPE",
                            storage::Value("mRNA")),
        storage::MakeInt64Between(db_.GetTable("DNA")->schema(), "ID", 0,
                                  1000000));
    request.query.scheme = core::RankScheme::kRare;
    request.query.k = 5;
    request.query.exclude_weak = true;

    auto line = service::RequestParser::Format(request);
    ASSERT_TRUE(line.ok()) << line.status();
    auto reparsed = parser.Parse(*line);
    ASSERT_TRUE(reparsed.ok())
        << *line << " -> " << reparsed.status().ToString();
    EXPECT_EQ(reparsed->method, method);
    EXPECT_EQ(reparsed->query.scheme, core::RankScheme::kRare);
    EXPECT_TRUE(reparsed->query.exclude_weak);
    EXPECT_EQ(reparsed->query.pred1->ToString(),
              request.query.pred1->ToString());
    EXPECT_EQ(reparsed->query.pred2->ToString(),
              request.query.pred2->ToString());
    auto again = service::RequestParser::Format(*reparsed);
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(*line, *again) << engine::MethodKindToString(method);
  }
}

TEST_F(WireTextTest, FormatRejectsGrammarlessPredicates) {
  service::ParsedRequest request;
  request.query.entity_set1 = "Protein";
  request.query.entity_set2 = "DNA";
  const storage::TableSchema& schema = db_.GetTable("Protein")->schema();
  request.query.pred1 = storage::MakeOr(
      storage::MakeContainsKeyword(schema, "DESC", "enzyme"),
      storage::MakeContainsKeyword(schema, "DESC", "kinase"));
  auto line = service::RequestParser::Format(request);
  EXPECT_FALSE(line.ok());
  EXPECT_NE(line.status().message().find("pred1"), std::string::npos);
}

TEST_F(WireTextTest, ParseErrorsNameTheFieldAndByteOffset) {
  service::RequestParser parser = Parser();

  // Unterminated quote.
  auto r1 = parser.Parse("TOPK set1=Protein pred1=DESC.ct('enzyme");
  ASSERT_FALSE(r1.ok());
  EXPECT_NE(r1.status().message().find("unterminated quote"),
            std::string::npos);
  EXPECT_NE(r1.status().message().find("byte 32"), std::string::npos)
      << r1.status().message();

  // Unknown method, with field name and offset of the value.
  const std::string line2 = "TOPK set1=Protein set2=DNA method=warp9";
  auto r2 = parser.Parse(line2);
  ASSERT_FALSE(r2.ok());
  EXPECT_NE(r2.status().message().find("unknown method"), std::string::npos);
  EXPECT_NE(r2.status().message().find("field 'method'"), std::string::npos);
  EXPECT_NE(r2.status().message().find(
                "byte " + std::to_string(line2.find("warp9"))),
            std::string::npos)
      << r2.status().message();

  // between() arity.
  const std::string line3 =
      "TOPK set1=Protein set2=DNA pred2=ID.between(1,2,3)";
  auto r3 = parser.Parse(line3);
  ASSERT_FALSE(r3.ok());
  EXPECT_NE(r3.status().message().find("exactly 2 bounds"),
            std::string::npos);
  EXPECT_NE(r3.status().message().find("field 'pred2'"), std::string::npos);

  // Unknown field with its offset.
  const std::string line4 = "TOPK set1=Protein set2=DNA turbo=1";
  auto r4 = parser.Parse(line4);
  ASSERT_FALSE(r4.ok());
  EXPECT_NE(r4.status().message().find("unknown field 'turbo'"),
            std::string::npos);
  EXPECT_NE(r4.status().message().find(
                "byte " + std::to_string(line4.find("turbo"))),
            std::string::npos);

  // Unknown column inside a predicate names the pred field.
  auto r5 = parser.Parse("TOPK set1=Protein set2=DNA pred1=NOPE.ct('x')");
  ASSERT_FALSE(r5.ok());
  EXPECT_NE(r5.status().message().find("no column 'NOPE'"),
            std::string::npos);
  EXPECT_NE(r5.status().message().find("field 'pred1'"), std::string::npos);

  // Bad k.
  auto r6 = parser.Parse("TOPK set1=Protein set2=DNA k=lots");
  ASSERT_FALSE(r6.ok());
  EXPECT_NE(r6.status().message().find("field 'k'"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Transport seam: loopback identity, failure tolerance, timeouts
// ---------------------------------------------------------------------------

class WireTransportTest : public WireFig3Test {
 protected:
  std::unique_ptr<shard::ScatterGatherExecutor> MakeSharded(
      size_t n, shard::ScatterGatherConfig config =
                    shard::ScatterGatherConfig{}) {
    auto sharded = std::make_shared<shard::ShardedTopologyStore>(n);
    core::TopologyBuilder builder(&db_, schema_.get(), view_.get());
    core::BuildConfig build;
    build.max_path_length = 3;
    build.table_namespace = "w" + std::to_string(n) + ".";
    EXPECT_TRUE(sharded->Build(&builder, build).ok());
    core::PruneConfig prune;
    prune.frequency_threshold = 0;
    for (size_t i = 0; i < n; ++i) {
      auto snapshot = sharded->Snapshot(i);
      std::vector<std::pair<storage::EntityTypeId, storage::EntityTypeId>>
          keys;
      for (const auto& [key, pair] : snapshot->pairs()) keys.push_back(key);
      for (const auto& [t1, t2] : keys) {
        EXPECT_TRUE(core::PruneFrequentTopologies(&db_, snapshot.get(), t1,
                                                  t2, prune)
                        .ok());
      }
    }
    return std::make_unique<shard::ScatterGatherExecutor>(
        &db_, sharded, schema_.get(), view_.get(),
        biozon::MakeBiozonDomainKnowledge(ids_),
        engine::SqlBaselineOptions{}, config);
  }

  engine::TopologyQuery ScatteringQuery() const {
    engine::TopologyQuery q;
    q.entity_set1 = "Protein";
    q.entity_set2 = "DNA";
    q.scheme = core::RankScheme::kFreq;
    q.k = 10;
    return q;
  }
};

TEST_F(WireTransportTest, LoopbackHandleMatchesDirectEngineExecution) {
  auto executor = MakeSharded(4);
  wire::WireRequest sub;
  sub.query = ScatteringQuery();
  sub.method = MethodKind::kFullTop;
  sub.options.skip_pruned_checks = true;
  std::string frame;
  wire::EncodeQueryRequest(sub, &frame);

  for (size_t shard = 0; shard < 4; ++shard) {
    auto response_frame = executor->loopback().Handle(shard, frame);
    ASSERT_TRUE(response_frame.ok()) << response_frame.status();
    auto response = wire::DecodeQueryResponse(*response_frame);
    ASSERT_TRUE(response.ok());
    ASSERT_TRUE(response->error.ok());

    auto direct = executor->shard_engine(shard).Execute(
        sub.query, sub.method, sub.options);
    ASSERT_TRUE(direct.ok());
    EXPECT_EQ(response->result.entries, direct->entries) << shard;
  }
}

TEST_F(WireTransportTest,
       ScatterOverLoopbackIsByteIdenticalToSingleStoreAtEveryShardCount) {
  // The acceptance contract: the wire-encoded scatter path returns
  // results identical to the direct single-store engine for every method
  // at N ∈ {1, 2, 4, 7}.
  for (size_t n : {1u, 2u, 4u, 7u}) {
    auto executor = MakeSharded(n);
    for (MethodKind method : kAllMethods) {
      auto expected = engine_->Execute(ScatteringQuery(), method);
      auto actual = executor->Execute(ScatteringQuery(), method);
      ASSERT_EQ(expected.ok(), actual.ok())
          << engine::MethodKindToString(method) << " @" << n;
      if (!expected.ok()) continue;
      EXPECT_EQ(expected->entries, actual->entries)
          << engine::MethodKindToString(method) << " @" << n << " shards";
      EXPECT_FALSE(actual->partial);
    }
    if (n > 1) {
      auto stats = executor->GetScatterStats();
      EXPECT_GT(stats.transport_subqueries, 0u) << n;
      EXPECT_GT(stats.transport_bytes_sent, 0u);
      EXPECT_GT(stats.transport_bytes_received, 0u);
      EXPECT_EQ(stats.failed_subqueries, 0u);
      EXPECT_EQ(stats.degraded_queries, 0u);
    }
  }
}

/// Delegates to the real transport except for one shard, which fails.
class FailingTransport : public wire::ShardTransport {
 public:
  FailingTransport(wire::ShardTransport* inner, size_t failing_shard)
      : inner_(inner), failing_shard_(failing_shard) {}

  size_t num_shards() const override { return inner_->num_shards(); }

  std::future<Result<std::string>> Send(size_t shard,
                                        std::string request) override {
    if (shard == failing_shard_) {
      std::promise<Result<std::string>> broken;
      broken.set_value(Status::Internal("shard process crashed"));
      return broken.get_future();
    }
    return inner_->Send(shard, std::move(request));
  }

 private:
  wire::ShardTransport* inner_;
  size_t failing_shard_;
};

TEST_F(WireTransportTest, FailedShardDegradesToPartialInsteadOfFailing) {
  auto executor = MakeSharded(4);

  // Find a shard the query actually scatters to (not the designated one):
  // run once cleanly to learn the fan-out, then fail each non-designated
  // shard in turn.
  auto clean = executor->Execute(ScatteringQuery(), MethodKind::kFullTop);
  ASSERT_TRUE(clean.ok());
  ASSERT_GT(executor->GetScatterStats().transport_subqueries, 0u)
      << "fixture must scatter for this test to bite";

  bool saw_degraded = false;
  for (size_t failing = 0; failing < 4; ++failing) {
    FailingTransport failing_transport(executor->mutable_loopback(),
                                       failing);
    executor->set_transport(&failing_transport);
    auto result = executor->Execute(ScatteringQuery(), MethodKind::kFullTop);
    executor->set_transport(nullptr);

    ASSERT_TRUE(result.ok()) << "failing shard " << failing << ": "
                             << result.status().ToString();
    if (result->partial) {
      saw_degraded = true;
      // The degraded answer is a subset of the clean one, still ranked.
      EXPECT_LE(result->entries.size(), clean->entries.size());
      for (size_t i = 1; i < result->entries.size(); ++i) {
        EXPECT_GE(result->entries[i - 1].score, result->entries[i].score);
      }
      EXPECT_NE(result->stats.plan.find("PARTIAL"), std::string::npos);
    } else {
      // The failing shard was the designated one (runs inline, never
      // crosses the transport) or not routed; the answer stays complete.
      EXPECT_EQ(result->entries, clean->entries);
    }
  }
  EXPECT_TRUE(saw_degraded);
  EXPECT_GT(executor->GetScatterStats().failed_subqueries, 0u);
  EXPECT_GT(executor->GetScatterStats().degraded_queries, 0u);
}

TEST_F(WireTransportTest, StrictModePropagatesShardFailures) {
  shard::ScatterGatherConfig config;
  config.tolerate_shard_failures = false;
  auto executor = MakeSharded(4, config);

  // Fail every shard; whichever non-designated shard is routed first
  // surfaces its error.
  class AllFail : public wire::ShardTransport {
   public:
    explicit AllFail(size_t n) : n_(n) {}
    size_t num_shards() const override { return n_; }
    std::future<Result<std::string>> Send(size_t, std::string) override {
      std::promise<Result<std::string>> broken;
      broken.set_value(Status::Internal("shard down"));
      return broken.get_future();
    }
   private:
    size_t n_;
  } all_fail(4);
  executor->set_transport(&all_fail);
  auto result = executor->Execute(ScatteringQuery(), MethodKind::kFullTop);
  executor->set_transport(nullptr);
  EXPECT_FALSE(result.ok());
}

/// Answers correctly but slower than the configured deadline.
class SlowTransport : public wire::ShardTransport {
 public:
  SlowTransport(wire::ShardTransport* inner, double delay_seconds)
      : inner_(inner), delay_seconds_(delay_seconds) {}

  size_t num_shards() const override { return inner_->num_shards(); }

  std::future<Result<std::string>> Send(size_t shard,
                                        std::string request) override {
    wire::ShardTransport* inner = inner_;
    const double delay = delay_seconds_;
    return std::async(std::launch::async,
                      [inner, shard, request = std::move(request),
                       delay]() -> Result<std::string> {
                        std::this_thread::sleep_for(
                            std::chrono::duration<double>(delay));
                        return inner->Send(shard, std::move(request)).get();
                      });
  }

 private:
  wire::ShardTransport* inner_;
  double delay_seconds_;
};

TEST_F(WireTransportTest, TimedOutShardsAreSkippedUnderTheDeadline) {
  shard::ScatterGatherConfig config;
  config.subquery_timeout_seconds = 0.05;
  auto executor = MakeSharded(4, config);

  SlowTransport slow(executor->mutable_loopback(), 0.5);
  executor->set_transport(&slow);
  auto result = executor->Execute(ScatteringQuery(), MethodKind::kFullTop);
  executor->set_transport(nullptr);

  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->partial);
  auto stats = executor->GetScatterStats();
  EXPECT_GT(stats.timed_out_subqueries, 0u);
  EXPECT_GT(stats.degraded_queries, 0u);
}

TEST_F(WireTransportTest, PartialResultsAreNeverCached) {
  auto executor = MakeSharded(4);

  // Find a shard whose failure actually degrades this query.
  size_t failing = SIZE_MAX;
  for (size_t s = 0; s < 4 && failing == SIZE_MAX; ++s) {
    FailingTransport probe(executor->mutable_loopback(), s);
    executor->set_transport(&probe);
    auto r = executor->Execute(ScatteringQuery(), MethodKind::kFullTop);
    executor->set_transport(nullptr);
    if (r.ok() && r->partial) failing = s;
  }
  ASSERT_NE(failing, SIZE_MAX) << "fixture never degraded";

  FailingTransport broken(executor->mutable_loopback(), failing);
  service::ServiceConfig config;
  config.num_threads = 2;
  service::TopologyService svc(executor.get(), &db_, config);

  executor->set_transport(&broken);
  auto first = svc.Execute(ScatteringQuery(), MethodKind::kFullTop);
  ASSERT_TRUE(first.result.ok());
  EXPECT_TRUE(first.result->partial);
  // The degraded answer must not have been cached...
  auto second = svc.Execute(ScatteringQuery(), MethodKind::kFullTop);
  ASSERT_TRUE(second.result.ok());
  EXPECT_FALSE(second.from_cache);

  // ... so the moment the shard recovers, the full ranking is served and
  // (only then) cached.
  executor->set_transport(nullptr);
  auto healed = svc.Execute(ScatteringQuery(), MethodKind::kFullTop);
  ASSERT_TRUE(healed.result.ok());
  EXPECT_FALSE(healed.from_cache);
  EXPECT_FALSE(healed.result->partial);
  auto cached = svc.Execute(ScatteringQuery(), MethodKind::kFullTop);
  ASSERT_TRUE(cached.result.ok());
  EXPECT_TRUE(cached.from_cache);
  EXPECT_FALSE(cached.result->partial);
  svc.Shutdown();
}

TEST_F(WireTransportTest, TripleCollectOverLoopbackMatchesSingleStore) {
  engine::TripleQuery triple;
  triple.entity_set1 = "Protein";
  triple.entity_set2 = "Unigene";
  triple.entity_set3 = "DNA";
  auto expected =
      engine::ExecuteTripleQuery(&db_, &store_, *schema_, *view_, triple);
  ASSERT_TRUE(expected.ok());

  for (size_t n : {2u, 4u}) {
    auto executor = MakeSharded(n);
    auto actual = executor->ExecuteTriple(triple);
    ASSERT_TRUE(actual.ok()) << n;
    EXPECT_FALSE(actual->partial);
    ASSERT_EQ(actual->entries.size(), expected->entries.size());
    for (size_t i = 0; i < expected->entries.size(); ++i) {
      EXPECT_EQ(actual->entries[i].tid, expected->entries[i].tid);
      EXPECT_EQ(actual->entries[i].frequency, expected->entries[i].frequency);
    }
  }
}

}  // namespace
}  // namespace tsb
