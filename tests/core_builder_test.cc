// Builder, store, and scorer behaviour on synthetic databases (beyond the
// Figure-3 worked example covered in core_fig3_test.cc).

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "biozon/domain.h"
#include "biozon/generator.h"
#include "core/builder.h"
#include "core/pruner.h"
#include "core/scorer.h"
#include "core/store.h"
#include "core/topology.h"
#include "graph/canonical.h"
#include "graph/data_graph.h"
#include "graph/schema_graph.h"
#include "service/thread_pool.h"

namespace tsb {
namespace {

biozon::GeneratorConfig SmallConfig(uint64_t seed) {
  biozon::GeneratorConfig config;
  config.seed = seed;
  config.scale = 0.03;  // ~90 proteins, ~70 DNAs, ...
  return config;
}

struct BuiltDb {
  storage::Catalog db;
  biozon::BiozonSchema ids;
  std::unique_ptr<graph::DataGraphView> view;
  std::unique_ptr<graph::SchemaGraph> schema;
  core::TopologyStore store;
  const core::PairTopologyData* pair = nullptr;
};

std::unique_ptr<BuiltDb> BuildSmall(uint64_t seed, size_t l = 3) {
  auto built = std::make_unique<BuiltDb>();
  built->ids = biozon::GenerateBiozon(SmallConfig(seed), &built->db);
  built->view = std::make_unique<graph::DataGraphView>(built->db);
  built->schema = std::make_unique<graph::SchemaGraph>(built->db);
  core::TopologyBuilder builder(&built->db, built->schema.get(),
                                built->view.get());
  core::BuildConfig config;
  config.max_path_length = l;
  TSB_CHECK(builder
                .BuildPair(built->ids.protein, built->ids.dna, config,
                           &built->store)
                .ok());
  built->pair = built->store.FindPair(built->ids.protein, built->ids.dna);
  return built;
}

TEST(GeneratorTest, DeterministicForSeed) {
  storage::Catalog db1;
  storage::Catalog db2;
  biozon::GenerateBiozon(SmallConfig(7), &db1);
  biozon::GenerateBiozon(SmallConfig(7), &db2);
  for (const char* table : {"Protein", "DNA", "Encodes", "Uni_contains"}) {
    const storage::Table* t1 = db1.GetTable(table);
    const storage::Table* t2 = db2.GetTable(table);
    ASSERT_EQ(t1->num_rows(), t2->num_rows()) << table;
    for (size_t i = 0; i < t1->num_rows(); ++i) {
      EXPECT_EQ(t1->GetRow(i), t2->GetRow(i));
    }
  }
}

TEST(GeneratorTest, KeywordSelectivitiesCalibrated) {
  storage::Catalog db;
  biozon::GeneratorConfig config;
  config.seed = 3;
  config.scale = 0.5;
  biozon::GenerateBiozon(config, &db);
  const storage::Table& proteins = *db.GetTable("Protein");
  auto check = [&](const char* tier, double expected, double tolerance) {
    auto pred = biozon::SelectivityPredicate(db, "Protein", tier);
    EXPECT_NEAR(storage::Selectivity(proteins, *pred), expected, tolerance)
        << tier;
  };
  check("selective", config.selective_fraction, 0.01);
  check("medium", config.medium_fraction, 0.04);
  check("unselective", config.unselective_fraction, 0.04);
}

TEST(GeneratorTest, ReferentialIntegrityHolds) {
  storage::Catalog db;
  biozon::GenerateBiozon(SmallConfig(11), &db);
  // DataGraphView aborts on dangling references; constructing it is the
  // integrity check.
  graph::DataGraphView view(db);
  EXPECT_GT(view.num_nodes(), 0u);
  EXPECT_GT(view.num_edges(), 0u);
}

TEST(GeneratorTest, StatsReportTotals) {
  storage::Catalog db;
  biozon::GeneratorStats stats;
  biozon::GenerateBiozon(SmallConfig(5), &db, &stats);
  EXPECT_GT(stats.total_entities, 0u);
  EXPECT_GT(stats.total_relationships, 0u);
  EXPECT_EQ(stats.total_entities, graph::DataGraphView(db).num_nodes());
}

TEST(BuilderTest, FrequencySumsMatchAllTopsRows) {
  auto built = BuildSmall(21);
  const storage::Table& alltops =
      *built->db.GetTable(built->pair->alltops_table);
  size_t freq_total = 0;
  for (const auto& [tid, freq] : built->pair->freq) freq_total += freq;
  EXPECT_EQ(freq_total, alltops.num_rows());
  EXPECT_GT(alltops.num_rows(), 0u);
}

TEST(BuilderTest, ObservedTidsSortedAndValid) {
  auto built = BuildSmall(22);
  std::vector<core::Tid> tids = built->pair->ObservedTids();
  EXPECT_TRUE(std::is_sorted(tids.begin(), tids.end()));
  for (core::Tid tid : tids) {
    const core::TopologyInfo& info = built->store.catalog().Get(tid);
    EXPECT_EQ(info.tid, tid);
    EXPECT_TRUE(info.graph.IsConnected());
    EXPECT_GE(info.graph.num_nodes(), 2u);
  }
}

TEST(BuilderTest, DeterministicAcrossRuns) {
  auto b1 = BuildSmall(23);
  auto b2 = BuildSmall(23);
  const storage::Table& t1 = *b1->db.GetTable(b1->pair->alltops_table);
  const storage::Table& t2 = *b2->db.GetTable(b2->pair->alltops_table);
  ASSERT_EQ(t1.num_rows(), t2.num_rows());
  for (size_t i = 0; i < t1.num_rows(); ++i) {
    EXPECT_EQ(t1.GetRow(i), t2.GetRow(i));
  }
}

TEST(BuilderTest, CapsTriggerTruncationCounters) {
  auto built = std::make_unique<BuiltDb>();
  built->ids = biozon::GenerateBiozon(SmallConfig(29), &built->db);
  built->view = std::make_unique<graph::DataGraphView>(built->db);
  built->schema = std::make_unique<graph::SchemaGraph>(built->db);
  core::TopologyBuilder builder(&built->db, built->schema.get(),
                                built->view.get());
  core::BuildConfig config;
  config.max_path_length = 3;
  config.max_class_representatives = 1;
  config.max_paths_per_source = 5;
  ASSERT_TRUE(builder
                  .BuildPair(built->ids.protein, built->ids.dna, config,
                             &built->store)
                  .ok());
  const core::PairTopologyData* pair =
      built->store.FindPair(built->ids.protein, built->ids.dna);
  EXPECT_GT(pair->truncated_pairs + pair->truncated_representatives, 0u);
}

TEST(BuilderTest, BuildAllPairsCoversConnectedTypePairs) {
  auto built = std::make_unique<BuiltDb>();
  built->ids = biozon::GenerateBiozon(SmallConfig(31), &built->db);
  built->view = std::make_unique<graph::DataGraphView>(built->db);
  built->schema = std::make_unique<graph::SchemaGraph>(built->db);
  core::TopologyBuilder builder(&built->db, built->schema.get(),
                                built->view.get());
  core::BuildConfig config;
  config.max_path_length = 2;
  ASSERT_TRUE(builder.BuildAllPairs(config, &built->store).ok());
  // Protein-DNA, Protein-Interaction, Protein-Unigene, DNA-Unigene,
  // DNA-Interaction, ... every schema-connected unordered type pair.
  EXPECT_TRUE(
      built->store.FindPair(built->ids.protein, built->ids.dna) != nullptr);
  EXPECT_TRUE(built->store.FindPair(built->ids.protein,
                                    built->ids.interaction) != nullptr);
  EXPECT_TRUE(built->store.FindPair(built->ids.dna, built->ids.unigene) !=
              nullptr);
  EXPECT_TRUE(built->store.FindPair(built->ids.protein, built->ids.protein) !=
              nullptr);
  EXPECT_GT(built->store.pairs().size(), 5u);
}

// --- Config validation ------------------------------------------------------

TEST(BuilderTest, RejectsDegenerateConfigs) {
  auto built = std::make_unique<BuiltDb>();
  built->ids = biozon::GenerateBiozon(SmallConfig(61), &built->db);
  built->view = std::make_unique<graph::DataGraphView>(built->db);
  built->schema = std::make_unique<graph::SchemaGraph>(built->db);
  core::TopologyBuilder builder(&built->db, built->schema.get(),
                                built->view.get());

  auto expect_invalid = [&](core::BuildConfig config) {
    Status pair_status = builder.BuildPair(built->ids.protein,
                                           built->ids.dna, config,
                                           &built->store);
    EXPECT_EQ(pair_status.code(), StatusCode::kInvalidArgument)
        << pair_status;
    Status all_status = builder.BuildAllPairs(config, &built->store);
    EXPECT_EQ(all_status.code(), StatusCode::kInvalidArgument) << all_status;
    EXPECT_TRUE(built->store.pairs().empty());
  };

  core::BuildConfig zero_length;
  zero_length.max_path_length = 0;
  expect_invalid(zero_length);

  core::BuildConfig zero_reps;
  zero_reps.max_class_representatives = 0;
  expect_invalid(zero_reps);

  core::BuildConfig zero_combos;
  zero_combos.max_union_combinations = 0;
  expect_invalid(zero_combos);

  core::BuildConfig zero_paths;
  zero_paths.max_paths_per_source = 0;
  expect_invalid(zero_paths);
}

TEST(BuilderTest, DuplicateBuildReturnsAlreadyExists) {
  auto built = BuildSmall(67);
  core::TopologyBuilder builder(&built->db, built->schema.get(),
                                built->view.get());
  core::BuildConfig config;
  Status dup = builder.BuildPair(built->ids.protein, built->ids.dna, config,
                                 &built->store);
  EXPECT_EQ(dup.code(), StatusCode::kAlreadyExists);
}

// --- Staged build determinism ----------------------------------------------

/// Asserts b's store/catalog/tables are byte-identical to a's.
void ExpectIdenticalStores(const BuiltDb& a, const BuiltDb& b) {
  // Catalog: same TIDs, codes, structure facts, and class keys.
  ASSERT_EQ(a.store.catalog().size(), b.store.catalog().size());
  for (core::Tid tid = 1;
       tid <= static_cast<core::Tid>(a.store.catalog().size()); ++tid) {
    const core::TopologyInfo& ia = a.store.catalog().Get(tid);
    const core::TopologyInfo& ib = b.store.catalog().Get(tid);
    EXPECT_EQ(ia.code, ib.code) << "TID " << tid;
    EXPECT_EQ(ia.num_classes, ib.num_classes) << "TID " << tid;
    EXPECT_EQ(ia.is_path, ib.is_path) << "TID " << tid;
    EXPECT_EQ(a.store.catalog().ClassKeysOf(tid),
              b.store.catalog().ClassKeysOf(tid))
        << "TID " << tid;
  }

  // Pair registry: same pairs, frequencies, classes, and table contents.
  ASSERT_EQ(a.store.pairs().size(), b.store.pairs().size());
  auto ita = a.store.pairs().begin();
  auto itb = b.store.pairs().begin();
  for (; ita != a.store.pairs().end(); ++ita, ++itb) {
    ASSERT_EQ(ita->first, itb->first);
    const core::PairTopologyData& pa = ita->second;
    const core::PairTopologyData& pb = itb->second;
    EXPECT_EQ(pa.pair_name, pb.pair_name);
    EXPECT_EQ(pa.freq, pb.freq) << pa.pair_name;
    EXPECT_EQ(pa.num_related_pairs, pb.num_related_pairs) << pa.pair_name;
    ASSERT_EQ(pa.classes.size(), pb.classes.size()) << pa.pair_name;
    for (size_t c = 0; c < pa.classes.size(); ++c) {
      EXPECT_EQ(pa.classes[c].key, pb.classes[c].key);
      EXPECT_EQ(pa.classes[c].path_tid, pb.classes[c].path_tid);
      EXPECT_EQ(pa.classes[c].instance_pairs, pb.classes[c].instance_pairs);
    }
    for (const std::string* name :
         {&pa.alltops_table, &pa.pairclasses_table}) {
      const storage::Table& ta = *a.db.GetTable(*name);
      const storage::Table& tb = *b.db.GetTable(*name);
      ASSERT_EQ(ta.num_rows(), tb.num_rows()) << *name;
      for (size_t i = 0; i < ta.num_rows(); ++i) {
        ASSERT_EQ(ta.GetRow(i), tb.GetRow(i)) << *name << " row " << i;
      }
    }
  }
}

TEST(BuilderTest, ParallelBuildAllPairsMatchesSequentialByteForByte) {
  // The tentpole contract: fanning stage steps over N workers and
  // committing in canonical pair order yields the exact store (TIDs, class
  // ids, table rows, freq maps) of the sequential build.
  core::BuildConfig config;
  config.max_path_length = 2;

  auto sequential = std::make_unique<BuiltDb>();
  sequential->ids = biozon::GenerateBiozon(SmallConfig(71), &sequential->db);
  sequential->view = std::make_unique<graph::DataGraphView>(sequential->db);
  sequential->schema = std::make_unique<graph::SchemaGraph>(sequential->db);
  core::TopologyBuilder seq_builder(&sequential->db, sequential->schema.get(),
                                    sequential->view.get());
  ASSERT_TRUE(seq_builder.BuildAllPairs(config, &sequential->store).ok());
  ASSERT_GT(sequential->store.pairs().size(), 3u);

  for (size_t threads : {1u, 4u, 8u}) {
    auto parallel = std::make_unique<BuiltDb>();
    parallel->ids = biozon::GenerateBiozon(SmallConfig(71), &parallel->db);
    parallel->view = std::make_unique<graph::DataGraphView>(parallel->db);
    parallel->schema = std::make_unique<graph::SchemaGraph>(parallel->db);
    core::TopologyBuilder par_builder(&parallel->db, parallel->schema.get(),
                                      parallel->view.get());
    service::ThreadPool pool(threads);
    ASSERT_TRUE(
        par_builder.BuildAllPairs(config, &parallel->store, &pool).ok())
        << threads << " threads";
    ExpectIdenticalStores(*sequential, *parallel);
  }
}

TEST(BuilderTest, StagePlusCommitEqualsBuildPair) {
  auto direct = BuildSmall(73);

  auto staged = std::make_unique<BuiltDb>();
  staged->ids = biozon::GenerateBiozon(SmallConfig(73), &staged->db);
  staged->view = std::make_unique<graph::DataGraphView>(staged->db);
  staged->schema = std::make_unique<graph::SchemaGraph>(staged->db);
  core::TopologyBuilder builder(&staged->db, staged->schema.get(),
                                staged->view.get());
  core::BuildConfig config;
  auto staging =
      builder.StagePair(staged->ids.protein, staged->ids.dna, config);
  ASSERT_TRUE(staging.ok()) << staging.status();
  ASSERT_TRUE(
      builder.CommitStaged(std::move(*staging), &staged->store).ok());
  ExpectIdenticalStores(*direct, *staged);
}

TEST(BuilderTest, TableNamespacePrefixesAllPrecomputeTables) {
  auto built = std::make_unique<BuiltDb>();
  built->ids = biozon::GenerateBiozon(SmallConfig(79), &built->db);
  built->view = std::make_unique<graph::DataGraphView>(built->db);
  built->schema = std::make_unique<graph::SchemaGraph>(built->db);
  core::TopologyBuilder builder(&built->db, built->schema.get(),
                                built->view.get());
  core::BuildConfig config;
  config.table_namespace = "e1.";
  ASSERT_TRUE(builder
                  .BuildPair(built->ids.protein, built->ids.dna, config,
                             &built->store)
                  .ok());
  const core::PairTopologyData* pair =
      built->store.FindPair(built->ids.protein, built->ids.dna);
  ASSERT_NE(pair, nullptr);
  EXPECT_EQ(pair->table_namespace, "e1.");
  EXPECT_EQ(pair->alltops_table.rfind("e1.AllTops_", 0), 0u);
  EXPECT_NE(built->db.FindTable(pair->alltops_table), nullptr);

  core::PruneConfig prune;
  prune.frequency_threshold = 0;
  ASSERT_TRUE(core::PruneFrequentTopologies(&built->db, &built->store,
                                            built->ids.protein,
                                            built->ids.dna, prune)
                  .ok());
  EXPECT_EQ(pair->lefttops_table.rfind("e1.LeftTops_", 0), 0u);
  EXPECT_EQ(pair->excptops_table.rfind("e1.ExcpTops_", 0), 0u);
  EXPECT_NE(built->db.FindTable(pair->lefttops_table), nullptr);

  EXPECT_EQ(built->store.PrecomputeTableNames().size(), 4u);
}

TEST(StoreTest, AddPairReportsDuplicatesAndBadOrderAsStatus) {
  core::TopologyStore store;
  core::PairTopologyData wrong_order;
  wrong_order.t1 = 5;
  wrong_order.t2 = 2;
  EXPECT_EQ(store.AddPair(std::move(wrong_order)).status().code(),
            StatusCode::kInvalidArgument);

  core::PairTopologyData first;
  first.t1 = 2;
  first.t2 = 5;
  first.pair_name = "A_B";
  ASSERT_TRUE(store.AddPair(std::move(first)).ok());

  core::PairTopologyData duplicate;
  duplicate.t1 = 2;
  duplicate.t2 = 5;
  duplicate.pair_name = "A_B";
  EXPECT_EQ(store.AddPair(std::move(duplicate)).status().code(),
            StatusCode::kAlreadyExists);
  // The store is still usable after the failed registration.
  EXPECT_NE(store.FindPair(2, 5), nullptr);
}

TEST(StoreTest, PairLookupIsOrderInsensitive) {
  auto built = BuildSmall(37);
  EXPECT_EQ(built->store.FindPair(built->ids.protein, built->ids.dna),
            built->store.FindPair(built->ids.dna, built->ids.protein));
}

TEST(StoreTest, NormalizePairOrdersTypes) {
  auto p = core::TopologyStore::NormalizePair(5, 2);
  EXPECT_EQ(p.first, 2u);
  EXPECT_EQ(p.second, 5u);
}

// --- Pruning invariants ---------------------------------------------------------

TEST(PrunerTest, LeftTopsPlusPrunedRowsEqualsAllTops) {
  auto built = BuildSmall(41);
  // Median-frequency threshold prunes something but not everything.
  std::vector<size_t> freqs;
  for (const auto& [tid, f] : built->pair->freq) freqs.push_back(f);
  std::sort(freqs.begin(), freqs.end());
  core::PruneConfig config;
  config.frequency_threshold = freqs[freqs.size() / 2];
  auto stats = core::PruneFrequentTopologies(
      &built->db, &built->store, built->ids.protein, built->ids.dna, config);
  ASSERT_TRUE(stats.ok());

  const storage::Table& alltops =
      *built->db.GetTable(built->pair->alltops_table);
  const storage::Table& lefttops =
      *built->db.GetTable(built->pair->lefttops_table);
  std::set<core::Tid> pruned(built->pair->pruned_tids.begin(),
                             built->pair->pruned_tids.end());
  size_t pruned_rows = 0;
  for (size_t i = 0; i < alltops.num_rows(); ++i) {
    if (pruned.count(alltops.GetInt64(i, 2)) > 0) ++pruned_rows;
  }
  EXPECT_EQ(lefttops.num_rows() + pruned_rows, alltops.num_rows());
}

TEST(PrunerTest, OnlyPathTopologiesArePruned) {
  auto built = BuildSmall(43);
  core::PruneConfig config;
  config.frequency_threshold = 0;
  ASSERT_TRUE(core::PruneFrequentTopologies(&built->db, &built->store,
                                            built->ids.protein,
                                            built->ids.dna, config)
                  .ok());
  for (core::Tid tid : built->pair->pruned_tids) {
    EXPECT_TRUE(built->store.catalog().Get(tid).is_path);
  }
  EXPECT_GT(built->pair->pruned_tids.size(), 0u);
}

TEST(PrunerTest, ExceptionRowsReferencePrunedTids) {
  auto built = BuildSmall(47);
  core::PruneConfig config;
  config.frequency_threshold = 0;
  ASSERT_TRUE(core::PruneFrequentTopologies(&built->db, &built->store,
                                            built->ids.protein,
                                            built->ids.dna, config)
                  .ok());
  std::set<core::Tid> pruned(built->pair->pruned_tids.begin(),
                             built->pair->pruned_tids.end());
  const storage::Table& excp =
      *built->db.GetTable(built->pair->excptops_table);
  for (size_t i = 0; i < excp.num_rows(); ++i) {
    EXPECT_TRUE(pruned.count(excp.GetInt64(i, 2)) > 0);
  }
}

// --- Scoring ---------------------------------------------------------------------

TEST(ScorerTest, FreqAndRareAreInverseOrderings) {
  auto built = BuildSmall(53);
  core::ScoreModel model(&built->store.catalog(),
                         biozon::MakeBiozonDomainKnowledge(built->ids));
  auto by_freq =
      model.RankedTids(core::RankScheme::kFreq, *built->pair);
  auto by_rare =
      model.RankedTids(core::RankScheme::kRare, *built->pair);
  ASSERT_GT(by_freq.size(), 2u);
  // The most frequent topology scores lowest under Rare.
  core::Tid most_frequent = by_freq.front().first;
  double rare_score_of_most_frequent = 0;
  for (const auto& [tid, score] : by_rare) {
    if (tid == most_frequent) rare_score_of_most_frequent = score;
  }
  EXPECT_LE(rare_score_of_most_frequent, by_rare.front().second);
}

TEST(ScorerTest, RankedTidsSortedDescendingWithTidTieBreak) {
  auto built = BuildSmall(59);
  core::ScoreModel model(&built->store.catalog(),
                         biozon::MakeBiozonDomainKnowledge(built->ids));
  for (core::RankScheme scheme :
       {core::RankScheme::kFreq, core::RankScheme::kRare,
        core::RankScheme::kDomain}) {
    auto ranked = model.RankedTids(scheme, *built->pair);
    for (size_t i = 1; i < ranked.size(); ++i) {
      bool ok = ranked[i - 1].second > ranked[i].second ||
                (ranked[i - 1].second == ranked[i].second &&
                 ranked[i - 1].first < ranked[i].first);
      EXPECT_TRUE(ok) << "at " << i;
    }
  }
}

TEST(ScorerTest, DomainRewardsInteractionsAndPenalizesWeakMotifs) {
  // Construct the Figure-16 topology (two proteins encoded by one DNA,
  // interacting through an Interaction node) and a weak P-D-P chain; the
  // domain scorer must prefer the former.
  storage::Catalog db;
  biozon::BiozonSchema ids = biozon::CreateBiozonSchema(&db);
  core::TopologyCatalog catalog;

  graph::LabeledGraph fig16;
  auto d = fig16.AddNode(ids.dna);
  auto p1 = fig16.AddNode(ids.protein);
  auto p2 = fig16.AddNode(ids.protein);
  auto i = fig16.AddNode(ids.interaction);
  fig16.AddEdge(p1, d, ids.encodes);
  fig16.AddEdge(p2, d, ids.encodes);
  fig16.AddEdge(p1, i, ids.interacts_p);
  fig16.AddEdge(p2, i, ids.interacts_p);
  core::Tid fig16_tid = catalog.Intern(fig16, 2);

  graph::LabeledGraph pdp;
  auto a = pdp.AddNode(ids.protein);
  auto b = pdp.AddNode(ids.dna);
  auto c = pdp.AddNode(ids.protein);
  pdp.AddEdge(a, b, ids.encodes);
  pdp.AddEdge(b, c, ids.encodes);
  core::Tid pdp_tid = catalog.Intern(pdp, 1);

  core::ScoreModel model(&catalog, biozon::MakeBiozonDomainKnowledge(ids));
  core::PairTopologyData dummy;
  double fig16_score =
      model.Score(core::RankScheme::kDomain, fig16_tid, dummy);
  double pdp_score = model.Score(core::RankScheme::kDomain, pdp_tid, dummy);
  EXPECT_GT(fig16_score, pdp_score);
  // P-D-P is a weak motif: penalized below the neutral baseline of 1.0.
  EXPECT_LT(pdp_score, 1.0);
}

TEST(ScorerTest, SchemeNamesStable) {
  EXPECT_STREQ(core::RankSchemeToString(core::RankScheme::kFreq), "Freq");
  EXPECT_STREQ(core::RankSchemeToString(core::RankScheme::kRare), "Rare");
  EXPECT_STREQ(core::RankSchemeToString(core::RankScheme::kDomain),
               "Domain");
}

// --- Topology shape classification ----------------------------------------------

TEST(TopologyShapeTest, PathShapes) {
  // Single edge: a path.
  graph::LabeledGraph edge;
  auto a = edge.AddNode(0);
  auto b = edge.AddNode(1);
  edge.AddEdge(a, b, 0);
  EXPECT_TRUE(core::IsPathShaped(edge));

  // Triangle: not a path (cycle).
  graph::LabeledGraph tri = edge;
  auto c = tri.AddNode(2);
  tri.AddEdge(b, c, 0);
  tri.AddEdge(c, a, 0);
  EXPECT_FALSE(core::IsPathShaped(tri));

  // Star with three leaves: not a path (degree-3 hub).
  graph::LabeledGraph star;
  auto hub = star.AddNode(0);
  for (int i = 0; i < 3; ++i) {
    auto leaf = star.AddNode(1);
    star.AddEdge(hub, leaf, 0);
  }
  EXPECT_FALSE(core::IsPathShaped(star));

  // Singleton and empty: not paths.
  graph::LabeledGraph single;
  single.AddNode(0);
  EXPECT_FALSE(core::IsPathShaped(single));
  EXPECT_FALSE(core::IsPathShaped(graph::LabeledGraph()));

  // Disconnected two edges: not a path.
  graph::LabeledGraph two;
  auto p = two.AddNode(0);
  auto q = two.AddNode(1);
  two.AddEdge(p, q, 0);
  auto r = two.AddNode(0);
  auto s = two.AddNode(1);
  two.AddEdge(r, s, 0);
  EXPECT_FALSE(core::IsPathShaped(two));
}

TEST(TopologyShapeTest, ExtractSchemaPathRejectsNonPaths) {
  storage::Catalog db;
  biozon::BiozonSchema ids = biozon::CreateBiozonSchema(&db);
  graph::SchemaGraph schema(db);
  graph::LabeledGraph tri;
  auto p = tri.AddNode(ids.protein);
  auto u = tri.AddNode(ids.unigene);
  auto d = tri.AddNode(ids.dna);
  tri.AddEdge(u, p, ids.uni_encodes);
  tri.AddEdge(u, d, ids.uni_contains);
  tri.AddEdge(p, d, ids.encodes);
  EXPECT_FALSE(core::ExtractSchemaPath(tri, schema).has_value());
}

TEST(TopologyShapeTest, ExtractSchemaPathRejectsInconsistentLabels) {
  storage::Catalog db;
  biozon::BiozonSchema ids = biozon::CreateBiozonSchema(&db);
  graph::SchemaGraph schema(db);
  // 'encodes' connects Protein and DNA, not Protein and Unigene.
  graph::LabeledGraph bad;
  auto p = bad.AddNode(ids.protein);
  auto u = bad.AddNode(ids.unigene);
  bad.AddEdge(p, u, ids.encodes);
  EXPECT_FALSE(core::ExtractSchemaPath(bad, schema).has_value());
}

// --- TopologyCatalog ---------------------------------------------------------------

TEST(TopologyCatalogTest, InternDeduplicatesByCanonicalCode) {
  core::TopologyCatalog catalog;
  graph::LabeledGraph g1 = graph::MakePathGraph({0, 1, 2}, {5, 6});
  graph::LabeledGraph g2 = graph::MakePathGraph({2, 1, 0}, {6, 5});  // Reversed.
  core::Tid t1 = catalog.Intern(g1, 1);
  core::Tid t2 = catalog.Intern(g2, 1);
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(catalog.size(), 1u);
}

TEST(TopologyCatalogTest, TidsAreDenseFromOne) {
  core::TopologyCatalog catalog;
  core::Tid t1 = catalog.Intern(graph::MakePathGraph({0, 1}, {0}), 1);
  core::Tid t2 = catalog.Intern(graph::MakePathGraph({0, 2}, {0}), 1);
  EXPECT_EQ(t1, 1);
  EXPECT_EQ(t2, 2);
  EXPECT_EQ(catalog.Get(t1).tid, t1);
}

TEST(TopologyCatalogTest, ClassKeysMergeAcrossObservations) {
  core::TopologyCatalog catalog;
  graph::LabeledGraph g = graph::MakePathGraph({0, 1}, {0});
  std::string code = graph::CanonicalCode(g);
  core::Tid tid = catalog.InternWithCode(g, code, 1, {"keyA"});
  catalog.InternWithCode(g, code, 1, {"keyB", "keyA"});
  const core::TopologyInfo& info = catalog.Get(tid);
  ASSERT_EQ(info.class_keys.size(), 2u);
  EXPECT_EQ(info.class_keys[0], "keyA");
  EXPECT_EQ(info.class_keys[1], "keyB");
  // num_classes keeps the first observation.
  EXPECT_EQ(info.num_classes, 1u);
}

TEST(TopologyCatalogTest, ConcurrentInternAssignsConsistentTids) {
  // N threads intern the same graph universe in rotated orders while also
  // reading published entries; every thread must observe the same
  // code->TID mapping (this is the TSan target for catalog interning).
  const size_t kThreads = 8;
  const size_t kGraphs = 64;
  std::vector<graph::LabeledGraph> graphs;
  std::vector<std::string> codes;
  for (size_t i = 0; i < kGraphs; ++i) {
    graphs.push_back(graph::MakePathGraph(
        {static_cast<uint32_t>(i % 7), static_cast<uint32_t>(i % 5) + 7,
         static_cast<uint32_t>(i % 3) + 13},
        {static_cast<uint32_t>(i % 4), static_cast<uint32_t>(i % 6)}));
    codes.push_back(graph::CanonicalCode(graphs.back()));
  }
  size_t distinct = std::set<std::string>(codes.begin(), codes.end()).size();

  core::TopologyCatalog catalog;
  std::vector<std::vector<core::Tid>> seen(kThreads,
                                           std::vector<core::Tid>(kGraphs));
  std::vector<std::thread> workers;
  for (size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t]() {
      for (size_t i = 0; i < kGraphs; ++i) {
        size_t g = (i + t * 11) % kGraphs;  // Rotated interleaving.
        core::Tid tid = catalog.InternWithCode(
            graphs[g], codes[g], 1, {"key" + std::to_string(t % 3)});
        seen[t][g] = tid;
        // Concurrent reads of published entries.
        EXPECT_EQ(catalog.Get(tid).code, codes[g]);
        EXPECT_FALSE(catalog.ClassKeysOf(tid).empty());
      }
    });
  }
  for (std::thread& worker : workers) worker.join();

  EXPECT_EQ(catalog.size(), distinct);
  for (size_t g = 0; g < kGraphs; ++g) {
    auto found = catalog.FindByCode(codes[g]);
    ASSERT_TRUE(found.has_value());
    for (size_t t = 0; t < kThreads; ++t) {
      EXPECT_EQ(seen[t][g], *found) << "thread " << t << " graph " << g;
    }
  }
  // Every thread's key tag got merged exactly once.
  for (core::Tid tid = 1; tid <= static_cast<core::Tid>(catalog.size());
       ++tid) {
    std::vector<std::string> keys = catalog.ClassKeysOf(tid);
    std::set<std::string> unique(keys.begin(), keys.end());
    EXPECT_EQ(unique.size(), keys.size()) << "TID " << tid;
  }
}

TEST(TopologyCatalogTest, FindByCodeRoundTrips) {
  core::TopologyCatalog catalog;
  graph::LabeledGraph g = graph::MakePathGraph({3, 4, 5}, {1, 2});
  core::Tid tid = catalog.Intern(g, 1);
  auto found = catalog.FindByCode(graph::CanonicalCode(g));
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(*found, tid);
  EXPECT_FALSE(catalog.FindByCode("nonsense").has_value());
}

}  // namespace
}  // namespace tsb
