// The replica-set subsystem (src/replica/): serving-stamp codec, the
// health tracker's failure ladder and epoch quarantine, replica-dimension
// metrics, and the ReplicaSetTransport contract — N×R scatter stays
// byte-identical to a single-store engine, a killed replica fails over to
// a sibling with zero partial answers, dead replicas are probed back in
// by live traffic, hedged reads cut the tail, and a live sharded rebuild
// rolls epochs under replica failover without losing a query.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "biozon/domain.h"
#include "biozon/fig3.h"
#include "core/builder.h"
#include "core/pruner.h"
#include "engine/engine.h"
#include "net/shard_server.h"
#include "replica/health.h"
#include "replica/replica_set.h"
#include "service/service.h"
#include "shard/frame_handler.h"
#include "shard/replica_loopback.h"
#include "shard/scatter_gather.h"
#include "shard/sharded_store.h"
#include "wire/codec.h"
#include "wire/message.h"

namespace tsb {
namespace {

using engine::MethodKind;

const std::vector<MethodKind> kAllMethods = {
    MethodKind::kSql,         MethodKind::kFullTop,
    MethodKind::kFastTop,     MethodKind::kFullTopK,
    MethodKind::kFastTopK,    MethodKind::kFullTopKEt,
    MethodKind::kFastTopKEt,  MethodKind::kFullTopKOpt,
    MethodKind::kFastTopKOpt,
};

std::string UdsPath(const std::string& tag, size_t i) {
  return "/tmp/tsb_replica_test_" + std::to_string(::getpid()) + "_" + tag +
         "_" + std::to_string(i) + ".sock";
}

// ---------------------------------------------------------------------------
// Serving stamp codec
// ---------------------------------------------------------------------------

TEST(ServingStampTest, RoundTripsAndRejectsGarbage) {
  const std::string stamp = wire::MakeServingStamp(3, 17);
  EXPECT_EQ(stamp, "r3:e17");
  uint64_t replica = 0;
  uint64_t epoch = 0;
  ASSERT_TRUE(wire::ParseServingStamp(stamp, &replica, &epoch));
  EXPECT_EQ(replica, 3u);
  EXPECT_EQ(epoch, 17u);

  for (const std::string& bad :
       {"", "r", "r3", "r3:e", "3:e17", "r3e17", "r3:e17x", "rx:e17"}) {
    EXPECT_FALSE(wire::ParseServingStamp(bad, &replica, &epoch)) << bad;
  }
}

TEST(ServingStampTest, ResponsesCarryAPeekableStamp) {
  wire::WireResponse response;
  response.request_id = 42;
  response.serving_stamp = wire::MakeServingStamp(1, 9);
  response.result.entries.push_back({7, 3.5});
  std::string frame;
  wire::EncodeQueryResponse(response, &frame);

  // The cheap prefix peek — no payload decode.
  auto stamp = wire::PeekResponseStamp(frame);
  ASSERT_TRUE(stamp.ok());
  EXPECT_EQ(*stamp, "r1:e9");

  // And the full decode preserves it.
  auto decoded = wire::DecodeQueryResponse(frame);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->serving_stamp, "r1:e9");
  EXPECT_EQ(decoded->result.entries, response.result.entries);
}

// ---------------------------------------------------------------------------
// Health tracker
// ---------------------------------------------------------------------------

TEST(ReplicaHealthTest, WalksTheFailureLadderAndReinstates) {
  replica::HealthConfig config;
  config.failures_to_eject = 3;
  config.probe_interval_seconds = 10.0;  // Manual clock below.
  replica::ReplicaHealthTracker tracker({2}, config);
  const auto t0 = std::chrono::steady_clock::now();

  EXPECT_EQ(tracker.state(0, 0), replica::ReplicaHealth::kHealthy);
  tracker.OnFailure(0, 0, t0);
  EXPECT_EQ(tracker.state(0, 0), replica::ReplicaHealth::kSuspect);
  EXPECT_EQ(tracker.Rank(0, 0, t0), replica::kTierSuspect);
  // A success clears the ladder.
  tracker.OnSuccess(0, 0, 0, t0);
  EXPECT_EQ(tracker.state(0, 0), replica::ReplicaHealth::kHealthy);
  EXPECT_EQ(tracker.consecutive_failures(0, 0), 0u);

  // Three consecutive failures eject.
  for (int i = 0; i < 3; ++i) tracker.OnFailure(0, 0, t0);
  EXPECT_EQ(tracker.state(0, 0), replica::ReplicaHealth::kEjected);
  // Not probe-due until the interval passes; siblings rank better.
  EXPECT_EQ(tracker.Rank(0, 0, t0), replica::kTierEjected);
  EXPECT_EQ(tracker.Rank(0, 1, t0), replica::kTierHealthy);
  EXPECT_FALSE(tracker.StartProbe(0, 0, t0));

  // Past the interval the probe is claimable exactly once.
  const auto t1 = t0 + std::chrono::seconds(11);
  EXPECT_EQ(tracker.Rank(0, 0, t1), replica::kTierEjectedProbeDue);
  EXPECT_TRUE(tracker.StartProbe(0, 0, t1));
  EXPECT_FALSE(tracker.StartProbe(0, 0, t1));  // Claimed; next interval.

  // The probe answering reinstates.
  tracker.OnSuccess(0, 0, 0, t1);
  EXPECT_EQ(tracker.state(0, 0), replica::ReplicaHealth::kHealthy);
}

TEST(ReplicaHealthTest, QuarantinesStaleEpochsUntilTheyCatchUp) {
  replica::ReplicaHealthTracker tracker({2});
  const auto now = std::chrono::steady_clock::now();

  // Replica 0 serves epoch 2: the shard's high-water mark.
  tracker.OnSuccess(0, 0, 2, now);
  EXPECT_EQ(tracker.shard_epoch(0), 2u);
  EXPECT_EQ(tracker.state(0, 0), replica::ReplicaHealth::kHealthy);

  // Replica 1 still serves epoch 1: stale → quarantined, ranked after
  // healthy and suspect but before a not-probe-due ejection.
  tracker.OnSuccess(0, 1, 1, now);
  EXPECT_EQ(tracker.state(0, 1), replica::ReplicaHealth::kQuarantined);
  EXPECT_EQ(tracker.Rank(0, 1, now), replica::kTierQuarantined);
  EXPECT_EQ(tracker.replica_epoch(0, 1), 1u);

  // Catching up self-heals.
  tracker.OnSuccess(0, 1, 2, now);
  EXPECT_EQ(tracker.state(0, 1), replica::ReplicaHealth::kHealthy);

  // And a replica rolling *forward* moves the mark, quarantining laggards
  // on their next answer.
  tracker.OnSuccess(0, 1, 3, now);
  EXPECT_EQ(tracker.shard_epoch(0), 3u);
  tracker.OnSuccess(0, 0, 2, now);
  EXPECT_EQ(tracker.state(0, 0), replica::ReplicaHealth::kQuarantined);
}

// ---------------------------------------------------------------------------
// Replica metrics
// ---------------------------------------------------------------------------

TEST(ReplicaMetricsTest, TracksOutstandingAndGatesTheP95Warmup) {
  service::ReplicaMetrics metrics({2, 3});
  EXPECT_EQ(metrics.num_shards(), 2u);
  EXPECT_EQ(metrics.num_replicas(1), 3u);

  metrics.RecordAttempt(0, 1, /*is_probe=*/false, /*is_hedge=*/true);
  EXPECT_EQ(metrics.Outstanding(0, 1), 1u);
  metrics.RecordOutcome(0, 1, 0.010, /*ok=*/true);
  EXPECT_EQ(metrics.Outstanding(0, 1), 0u);
  EXPECT_GT(metrics.RttEwma(0, 1), 0.0);

  // The hedge base stays 0 until min_samples attempts completed.
  EXPECT_EQ(metrics.ShardRttP95(0, /*min_samples=*/32), 0.0);
  for (int i = 0; i < 40; ++i) {
    metrics.RecordAttempt(0, 0, false, false);
    metrics.RecordOutcome(0, 0, 0.005, true);
  }
  EXPECT_GT(metrics.ShardRttP95(0, 32), 0.0);

  auto snap = metrics.Snapshot();
  EXPECT_EQ(snap.shards[0].replicas[1].hedge_attempts, 1u);
  EXPECT_EQ(snap.shards[0].replicas[0].attempts, 40u);
  EXPECT_FALSE(snap.ToString().empty());
}

// ---------------------------------------------------------------------------
// ReplicaSetTransport over the loopback grid
// ---------------------------------------------------------------------------

/// The Figure-3 world plus a single-store reference engine (ground truth
/// for every identity check), mirroring the net_test fixture.
class ReplicaFig3Test : public ::testing::Test {
 protected:
  void SetUp() override {
    ids_ = biozon::BuildFigure3Database(&db_);
    view_ = std::make_unique<graph::DataGraphView>(db_);
    schema_ = std::make_unique<graph::SchemaGraph>(db_);
    core::TopologyBuilder builder(&db_, schema_.get(), view_.get());
    core::BuildConfig config;
    config.max_path_length = 3;
    ASSERT_TRUE(builder.BuildAllPairs(config, &store_).ok());
    core::PruneConfig prune;
    prune.frequency_threshold = 0;
    std::vector<std::pair<storage::EntityTypeId, storage::EntityTypeId>>
        keys;
    for (const auto& [key, pair] : store_.pairs()) keys.push_back(key);
    for (const auto& [t1, t2] : keys) {
      ASSERT_TRUE(
          core::PruneFrequentTopologies(&db_, &store_, t1, t2, prune).ok());
    }
    engine_ = std::make_unique<engine::Engine>(
        &db_, &store_, schema_.get(), view_.get(),
        core::ScoreModel(&store_.catalog(),
                         biozon::MakeBiozonDomainKnowledge(ids_)));
  }

  std::unique_ptr<shard::ScatterGatherExecutor> MakeSharded(
      size_t n, const std::string& tag) {
    auto sharded = std::make_shared<shard::ShardedTopologyStore>(n);
    core::TopologyBuilder builder(&db_, schema_.get(), view_.get());
    core::BuildConfig build;
    build.max_path_length = 3;
    build.table_namespace = tag + std::to_string(n) + ".";
    EXPECT_TRUE(sharded->Build(&builder, build).ok());
    core::PruneConfig prune;
    prune.frequency_threshold = 0;
    for (size_t i = 0; i < n; ++i) {
      auto snapshot = sharded->Snapshot(i);
      std::vector<std::pair<storage::EntityTypeId, storage::EntityTypeId>>
          keys;
      for (const auto& [key, pair] : snapshot->pairs()) keys.push_back(key);
      for (const auto& [t1, t2] : keys) {
        EXPECT_TRUE(core::PruneFrequentTopologies(&db_, snapshot.get(), t1,
                                                  t2, prune)
                        .ok());
      }
    }
    return std::make_unique<shard::ScatterGatherExecutor>(
        &db_, sharded, schema_.get(), view_.get(),
        biozon::MakeBiozonDomainKnowledge(ids_),
        engine::SqlBaselineOptions{}, shard::ScatterGatherConfig{});
  }

  /// An executor wired through a ReplicaSetTransport over an N×R loopback
  /// grid, with the per-channel fault injectors kept reachable.
  struct ReplicaRig {
    std::unique_ptr<shard::ScatterGatherExecutor> executor;
    std::vector<std::vector<shard::LoopbackReplicaChannel*>> raw;
    std::unique_ptr<replica::ReplicaSetTransport> transport;

    ReplicaRig() = default;
    ReplicaRig(ReplicaRig&&) = default;
    ReplicaRig& operator=(ReplicaRig&&) = default;
    ~ReplicaRig() {
      if (executor != nullptr) executor->set_transport(nullptr);
    }
  };

  ReplicaRig MakeRig(size_t n, size_t r, const std::string& tag,
                     replica::ReplicaSetConfig config =
                         replica::ReplicaSetConfig{}) {
    ReplicaRig rig;
    rig.executor = MakeSharded(n, tag);
    std::vector<const engine::Engine*> engines;
    for (size_t i = 0; i < n; ++i) {
      engines.push_back(&rig.executor->shard_engine(i));
    }
    shard::LoopbackReplicaGrid grid = shard::MakeLoopbackReplicaGrid(
        &db_, &rig.executor->store(), engines, r);
    rig.raw = std::move(grid.raw);
    rig.transport = std::make_unique<replica::ReplicaSetTransport>(
        std::move(grid.channels), config,
        rig.executor->transport_metrics());
    rig.executor->set_transport(rig.transport.get());
    return rig;
  }

  engine::TopologyQuery ScatteringQuery() const {
    engine::TopologyQuery q;
    q.entity_set1 = "Protein";
    q.entity_set2 = "DNA";
    q.scheme = core::RankScheme::kFreq;
    q.k = 10;
    return q;
  }

  storage::Catalog db_;
  biozon::BiozonSchema ids_;
  std::unique_ptr<graph::DataGraphView> view_;
  std::unique_ptr<graph::SchemaGraph> schema_;
  core::TopologyStore store_;
  std::unique_ptr<engine::Engine> engine_;
};

TEST_F(ReplicaFig3Test, ReplicaScatterIsByteIdenticalToDirect) {
  // The identity contract across grid shapes: replication must be
  // invisible in results, for every method.
  struct Shape {
    size_t shards;
    size_t replicas;
  };
  for (const Shape shape : {Shape{2, 2}, Shape{4, 3}}) {
    ReplicaRig rig = MakeRig(shape.shards, shape.replicas, "ri");
    for (MethodKind method : kAllMethods) {
      auto direct = engine_->Execute(ScatteringQuery(), method);
      auto replicated = rig.executor->Execute(ScatteringQuery(), method);
      ASSERT_EQ(direct.ok(), replicated.ok())
          << engine::MethodKindToString(method);
      if (!direct.ok()) continue;
      EXPECT_EQ(replicated->entries, direct->entries)
          << engine::MethodKindToString(method) << " @" << shape.shards
          << "x" << shape.replicas;
      EXPECT_FALSE(replicated->partial);
    }
    // The transport actually carried traffic, and stamps flowed back
    // (every attempt lands a health verdict keyed by the stamp's epoch).
    auto snap = rig.transport->replica_metrics().Snapshot();
    uint64_t attempts = 0;
    for (const auto& shard : snap.shards) {
      for (const auto& rep : shard.replicas) attempts += rep.attempts;
    }
    EXPECT_GT(attempts, 0u);
  }
}

TEST_F(ReplicaFig3Test, KilledReplicaFailsOverWithZeroPartials) {
  replica::ReplicaSetConfig config;
  config.health.failures_to_eject = 3;
  config.health.probe_interval_seconds = 0.001;
  ReplicaRig rig = MakeRig(4, 2, "rk", config);
  auto expected = engine_->Execute(ScatteringQuery(), MethodKind::kFullTop);
  ASSERT_TRUE(expected.ok());

  // Kill replica 0 of every shard (SIGKILL analogue): every sub-query's
  // likely primary dies, and every one must fail over to replica 1
  // without a single partial answer. The pacing lets probe intervals
  // elapse, so the dead replica walks suspect → ejected under the flood.
  for (auto& shard : rig.raw) shard[0]->SetDown(true);
  for (int i = 0; i < 30; ++i) {
    auto result = rig.executor->Execute(ScatteringQuery(),
                                        MethodKind::kFullTop);
    ASSERT_TRUE(result.ok()) << i;
    EXPECT_FALSE(result->partial) << i;
    EXPECT_EQ(result->entries, expected->entries) << i;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  auto snap = rig.transport->replica_metrics().Snapshot();
  uint64_t failovers = 0;
  uint64_t ejections = 0;
  uint64_t exhausted = 0;
  uint64_t surviving_attempts = 0;
  for (const auto& shard : snap.shards) {
    failovers += shard.failovers;
    exhausted += shard.exhausted;
    ejections += shard.replicas[0].ejections;
    surviving_attempts += shard.replicas[1].attempts;
  }
  EXPECT_GT(failovers, 0u);
  EXPECT_GT(ejections, 0u);
  EXPECT_GT(surviving_attempts, 0u);
  EXPECT_EQ(exhausted, 0u);
}

TEST_F(ReplicaFig3Test, DeadReplicaIsProbedBackInByLiveTraffic) {
  replica::ReplicaSetConfig config;
  config.health.failures_to_eject = 2;
  config.health.probe_interval_seconds = 0.002;
  ReplicaRig rig = MakeRig(2, 2, "rp", config);

  // Eject replica 0 everywhere under traffic (paced so probe intervals
  // elapse and the suspect replica keeps getting probed toward ejection).
  for (auto& shard : rig.raw) shard[0]->SetDown(true);
  for (int i = 0; i < 20; ++i) {
    auto result = rig.executor->Execute(ScatteringQuery(),
                                        MethodKind::kFullTop);
    ASSERT_TRUE(result.ok());
    EXPECT_FALSE(result->partial);
    std::this_thread::sleep_for(std::chrono::milliseconds(3));
  }
  // Some shard actually carried transport traffic and ejected its r0.
  size_t victim = SIZE_MAX;
  for (size_t s = 0; s < 2; ++s) {
    if (rig.transport->health().state(s, 0) ==
        replica::ReplicaHealth::kEjected) {
      victim = s;
    }
  }
  ASSERT_NE(victim, SIZE_MAX) << "no shard ejected its dead replica";

  // Revive it. Live traffic carries the probes: within the probe
  // interval the tracker reinstates the replica — no oob machinery.
  for (auto& shard : rig.raw) shard[0]->SetDown(false);
  bool reinstated = false;
  for (int i = 0; i < 200 && !reinstated; ++i) {
    auto result = rig.executor->Execute(ScatteringQuery(),
                                        MethodKind::kFullTop);
    ASSERT_TRUE(result.ok());
    reinstated = rig.transport->health().state(victim, 0) ==
                 replica::ReplicaHealth::kHealthy;
    if (!reinstated) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  EXPECT_TRUE(reinstated) << "ejected replica never probed back in";
  auto snap = rig.transport->replica_metrics().Snapshot();
  uint64_t probes = 0;
  uint64_t reinstatements = 0;
  for (const auto& shard : snap.shards) {
    for (const auto& rep : shard.replicas) {
      probes += rep.probes;
      reinstatements += rep.reinstatements;
    }
  }
  EXPECT_GT(probes, 0u);
  EXPECT_GT(reinstatements, 0u);
}

TEST_F(ReplicaFig3Test, AllReplicasDeadDegradesToPartialNotFailure) {
  ReplicaRig rig = MakeRig(4, 2, "ra");
  // The whole replica set of every shard down: now (and only now) the
  // executor's partial degradation kicks in, exactly as with R=1.
  for (auto& shard : rig.raw) {
    for (auto* channel : shard) channel->SetDown(true);
  }
  auto result =
      rig.executor->Execute(ScatteringQuery(), MethodKind::kFullTop);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->partial);
  EXPECT_NE(result->stats.plan.find("PARTIAL"), std::string::npos);

  auto snap = rig.transport->replica_metrics().Snapshot();
  uint64_t exhausted = 0;
  for (const auto& shard : snap.shards) exhausted += shard.exhausted;
  EXPECT_GT(exhausted, 0u);
}

TEST_F(ReplicaFig3Test, HedgedReadsCutTheTailOfASlowReplica) {
  auto expected = engine_->Execute(ScatteringQuery(), MethodKind::kFullTop);
  ASSERT_TRUE(expected.ok());

  // Replica 0 of every shard stalls 300ms; the hedge fires at ~30ms and
  // replica 1 answers. The loser completes late and is discarded.
  replica::ReplicaSetConfig hedged;
  hedged.hedge_delay_default_seconds = 0.03;
  {
    ReplicaRig rig = MakeRig(2, 2, "rhon", hedged);
    for (auto& shard : rig.raw) shard[0]->SetDelay(0.3);
    const auto start = std::chrono::steady_clock::now();
    auto result =
        rig.executor->Execute(ScatteringQuery(), MethodKind::kFullTop);
    const double elapsed = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start)
                               .count();
    ASSERT_TRUE(result.ok());
    EXPECT_FALSE(result->partial);
    EXPECT_EQ(result->entries, expected->entries);
    auto snap = rig.transport->replica_metrics().Snapshot();
    uint64_t launched = 0;
    uint64_t wins = 0;
    uint64_t attempts = 0;
    for (const auto& shard : snap.shards) {
      launched += shard.hedges_launched;
      for (const auto& rep : shard.replicas) {
        wins += rep.hedge_wins;
        attempts += rep.attempts;
      }
    }
    ASSERT_GT(attempts, 0u) << "query never crossed the transport";
    EXPECT_GT(launched, 0u);
    EXPECT_GT(wins, 0u);
    EXPECT_LT(elapsed, 0.25) << "hedge did not rescue the query";
  }

  // Hedging off, same stall: the scatter waits out the full 300ms.
  replica::ReplicaSetConfig unhedged;
  unhedged.hedge_enabled = false;
  {
    ReplicaRig rig = MakeRig(2, 2, "rhoff", unhedged);
    for (auto& shard : rig.raw) shard[0]->SetDelay(0.3);
    const auto start = std::chrono::steady_clock::now();
    auto result =
        rig.executor->Execute(ScatteringQuery(), MethodKind::kFullTop);
    const double elapsed = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start)
                               .count();
    ASSERT_TRUE(result.ok());
    EXPECT_FALSE(result->partial);
    EXPECT_GE(elapsed, 0.25);
    auto snap = rig.transport->replica_metrics().Snapshot();
    for (const auto& shard : snap.shards) {
      EXPECT_EQ(shard.hedges_launched, 0u);
    }
  }
}

TEST_F(ReplicaFig3Test, ReplicaSetDeadlineBindsWhenEveryReplicaStalls) {
  replica::ReplicaSetConfig config;
  config.request_timeout_seconds = 0.05;
  config.hedge_delay_default_seconds = 0.01;
  ReplicaRig rig = MakeRig(2, 2, "rd", config);
  for (auto& shard : rig.raw) {
    for (auto* channel : shard) channel->SetDelay(1.0);
  }
  const auto start = std::chrono::steady_clock::now();
  auto result =
      rig.executor->Execute(ScatteringQuery(), MethodKind::kFullTop);
  const double elapsed = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->partial);
  EXPECT_LT(elapsed, 0.8) << "deadline did not bind";
}

TEST_F(ReplicaFig3Test, QuarantinedReplicaStillServesAsLastResort) {
  // Hand-built channels so the two replicas can disagree on epoch: r0
  // serves epoch 1, r1 lags at epoch 0 (a daemon mid-rebuild).
  auto executor = MakeSharded(2, "rq");
  const shard::ShardedTopologyStore* store = &executor->store();
  std::vector<std::shared_ptr<std::atomic<uint64_t>>> epochs;
  std::vector<std::vector<shard::LoopbackReplicaChannel*>> raw(2);
  std::vector<std::vector<std::unique_ptr<replica::ReplicaChannel>>>
      channels(2);
  for (size_t s = 0; s < 2; ++s) {
    for (size_t r = 0; r < 2; ++r) {
      auto epoch = std::make_shared<std::atomic<uint64_t>>(r == 0 ? 1 : 0);
      epochs.push_back(epoch);
      shard::ShardFrameHandler handler(
          &db_, &executor->shard_engine(s),
          [store, s]() { return store->Snapshot(s); },
          [epoch, r]() {
            return wire::MakeServingStamp(r, epoch->load());
          });
      auto channel = std::make_unique<shard::LoopbackReplicaChannel>(
          std::move(handler),
          "s" + std::to_string(s) + "r" + std::to_string(r));
      raw[s].push_back(channel.get());
      channels[s].push_back(std::move(channel));
    }
  }
  replica::ReplicaSetTransport transport(std::move(channels));
  executor->set_transport(&transport);
  auto expected = engine_->Execute(ScatteringQuery(), MethodKind::kFullTop);
  ASSERT_TRUE(expected.ok());

  // Warm: r0 serves everywhere, the mark moves to epoch 1.
  for (int i = 0; i < 3; ++i) {
    auto result =
        executor->Execute(ScatteringQuery(), MethodKind::kFullTop);
    ASSERT_TRUE(result.ok());
    EXPECT_FALSE(result->partial);
  }

  // Kill r0: the only sibling lags an epoch. It must still serve —
  // quarantine orders it last, it never makes a shard unreachable.
  for (auto& shard : raw) shard[0]->SetDown(true);
  size_t quarantined_shard = SIZE_MAX;
  for (int i = 0; i < 10; ++i) {
    auto result =
        executor->Execute(ScatteringQuery(), MethodKind::kFullTop);
    ASSERT_TRUE(result.ok());
    EXPECT_FALSE(result->partial) << "quarantined replica was not routed";
    EXPECT_EQ(result->entries, expected->entries);
    for (size_t s = 0; s < 2; ++s) {
      if (transport.health().state(s, 1) ==
          replica::ReplicaHealth::kQuarantined) {
        quarantined_shard = s;
      }
    }
  }
  ASSERT_NE(quarantined_shard, SIZE_MAX)
      << "stale sibling never entered quarantine";

  // The laggard finishes its rebuild (stamps epoch 1): self-heals.
  for (auto& epoch : epochs) epoch->store(1);
  bool healed = false;
  for (int i = 0; i < 20 && !healed; ++i) {
    auto result =
        executor->Execute(ScatteringQuery(), MethodKind::kFullTop);
    ASSERT_TRUE(result.ok());
    healed = transport.health().state(quarantined_shard, 1) ==
             replica::ReplicaHealth::kHealthy;
  }
  EXPECT_TRUE(healed);
  executor->set_transport(nullptr);
}

// ---------------------------------------------------------------------------
// Failover × live rebuild (the satellite): kill a replica during the
// epoch roll — zero failures, zero partials, byte-identical afterwards.
// ---------------------------------------------------------------------------

TEST_F(ReplicaFig3Test, RebuildRollsEpochsUnderReplicaFailover) {
  replica::ReplicaSetConfig config;
  config.health.failures_to_eject = 2;
  config.health.probe_interval_seconds = 0.02;
  ReplicaRig rig = MakeRig(4, 2, "rr", config);

  service::ServiceConfig svc_config;
  svc_config.num_threads = 4;
  service::TopologyService svc(rig.executor.get(), &db_, svc_config);

  engine::TopologyQuery q = ScatteringQuery();
  auto expected = engine_->Execute(q, MethodKind::kFullTop);
  ASSERT_TRUE(expected.ok());

  std::atomic<bool> stop{false};
  std::atomic<size_t> failures{0};
  std::atomic<size_t> partials{0};
  std::atomic<size_t> mismatches{0};
  std::atomic<size_t> served{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 3; ++t) {
    clients.emplace_back([&]() {
      while (!stop.load(std::memory_order_acquire)) {
        auto response = svc.Submit(q, MethodKind::kFullTop).get();
        if (!response.result.ok()) {
          ++failures;
        } else {
          if (response.result->partial) ++partials;
          if (response.result->entries != expected->entries) ++mismatches;
        }
        ++served;
      }
    });
  }

  // Kill one replica, then roll every shard's epoch behind the flood —
  // the rebuild's per-shard swaps and the replica failover must compose:
  // nothing fails, nothing degrades, stamps follow the new epochs.
  rig.raw[1][0]->SetDown(true);
  service::RebuildOptions rebuild;
  rebuild.build.max_path_length = 3;
  rebuild.prune_threshold = 0;
  const std::string stamp_before = rig.executor->store().EpochStamp();
  for (int round = 0; round < 2; ++round) {
    auto stats = svc.Rebuild(rebuild);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_EQ(stats->shards_swapped, 4u);
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& client : clients) client.join();

  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(partials.load(), 0u);
  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_GT(served.load(), 0u);
  EXPECT_NE(rig.executor->store().EpochStamp(), stamp_before);

  // Post-roll, post-revive: byte-identical and eventually fully healthy.
  rig.raw[1][0]->SetDown(false);
  svc.InvalidateCache();
  auto after = svc.Execute(q, MethodKind::kFullTop);
  ASSERT_TRUE(after.result.ok());
  EXPECT_FALSE(after.result->partial);
  EXPECT_EQ(after.result->entries, expected->entries);
  // The tracker's epoch high-water mark followed the swaps.
  uint64_t mark = 0;
  for (size_t s = 0; s < 4; ++s) {
    mark = std::max(mark, rig.transport->health().shard_epoch(s));
  }
  EXPECT_GE(mark, 2u);
  svc.Shutdown();
}

// ---------------------------------------------------------------------------
// Socket-backed replica grid: kill -9 a server process's stand-in
// ---------------------------------------------------------------------------

TEST_F(ReplicaFig3Test, SocketReplicaGridSurvivesServerStopAndRestart) {
  auto executor = MakeSharded(2, "rs");
  const shard::ShardedTopologyStore* store = &executor->store();

  // 2 shards × 2 replicas: four servers, each with its own serving stamp
  // (same epoch source — identical replicas of the same shard).
  std::vector<std::unique_ptr<shard::ShardFrameHandler>> handlers;
  std::vector<std::unique_ptr<net::ShardServer>> servers;
  std::vector<net::ShardServerConfig> configs;
  std::vector<std::vector<std::unique_ptr<replica::ReplicaChannel>>>
      channels(2);
  for (size_t s = 0; s < 2; ++s) {
    for (size_t r = 0; r < 2; ++r) {
      auto handle = store->handle(s);
      handlers.push_back(std::make_unique<shard::ShardFrameHandler>(
          &db_, &executor->shard_engine(s),
          [store, s]() { return store->Snapshot(s); },
          [handle, r]() {
            return wire::MakeServingStamp(r, handle->epoch());
          }));
      net::ShardServerConfig server_config;
      server_config.uds_path = UdsPath("grid", s * 2 + r);
      configs.push_back(server_config);
      servers.push_back(std::make_unique<net::ShardServer>(
          handlers.back().get(), server_config));
      ASSERT_TRUE(servers.back()->Start().ok());
      net::EndpointClientConfig client_config;
      client_config.backoff_initial_seconds = 0.002;
      client_config.backoff_max_seconds = 0.02;
      channels[s].push_back(
          std::make_unique<replica::SocketReplicaChannel>(
              net::ShardEndpoint::Unix(server_config.uds_path),
              client_config));
    }
  }
  replica::ReplicaSetConfig config;
  config.health.failures_to_eject = 2;
  config.health.probe_interval_seconds = 0.01;
  replica::ReplicaSetTransport transport(std::move(channels), config,
                                         executor->transport_metrics());
  executor->set_transport(&transport);
  auto expected = engine_->Execute(ScatteringQuery(), MethodKind::kFullTop);
  ASSERT_TRUE(expected.ok());

  auto warm = executor->Execute(ScatteringQuery(), MethodKind::kFullTop);
  ASSERT_TRUE(warm.ok());
  EXPECT_FALSE(warm->partial);
  EXPECT_EQ(warm->entries, expected->entries);

  // Stop replica 0 of every shard: the answer must stay full and
  // byte-identical through failover, query after query.
  servers[0]->Stop();
  servers[2]->Stop();
  for (int i = 0; i < 20; ++i) {
    auto result =
        executor->Execute(ScatteringQuery(), MethodKind::kFullTop);
    ASSERT_TRUE(result.ok()) << i;
    EXPECT_FALSE(result->partial) << i;
    EXPECT_EQ(result->entries, expected->entries) << i;
  }

  // Restart both on their original endpoints; live traffic probes them
  // back to healthy.
  servers[0] = std::make_unique<net::ShardServer>(handlers[0].get(),
                                                  configs[0]);
  servers[2] = std::make_unique<net::ShardServer>(handlers[2].get(),
                                                  configs[2]);
  ASSERT_TRUE(servers[0]->Start().ok());
  ASSERT_TRUE(servers[2]->Start().ok());
  bool healed = false;
  for (int i = 0; i < 300 && !healed; ++i) {
    auto result =
        executor->Execute(ScatteringQuery(), MethodKind::kFullTop);
    ASSERT_TRUE(result.ok());
    EXPECT_FALSE(result->partial);
    healed = true;
    for (size_t s = 0; s < 2; ++s) {
      if (transport.health().state(s, 0) !=
          replica::ReplicaHealth::kHealthy) {
        healed = false;
      }
    }
    if (!healed) std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(healed) << "stopped servers never reinstated";

  executor->set_transport(nullptr);
  for (auto& server : servers) server->Stop();
}

}  // namespace
}  // namespace tsb
