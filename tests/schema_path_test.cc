#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "biozon/fig3.h"
#include "biozon/schema.h"
#include "graph/data_graph.h"
#include "graph/path_enum.h"
#include "graph/schema_graph.h"
#include "graph/schema_topology_enum.h"
#include "storage/catalog.h"

namespace tsb {
namespace {

using biozon::BiozonSchema;

class BiozonSchemaTest : public ::testing::Test {
 protected:
  void SetUp() override { schema_ids_ = biozon::CreateBiozonSchema(&db_); }
  storage::Catalog db_;
  BiozonSchema schema_ids_;
};

TEST_F(BiozonSchemaTest, SevenEntitySetsEightRelationshipSets) {
  EXPECT_EQ(db_.entity_sets().size(), 7u);
  EXPECT_EQ(db_.relationship_sets().size(), 8u);
}

TEST_F(BiozonSchemaTest, ExactlyTenProteinDnaPathsUpToLengthThree) {
  // Section 3.1: "the ten schema paths of length three or less that connect
  // proteins and DNAs". Reproducing this count validates the Figure-1
  // schema reconstruction.
  graph::SchemaGraph schema(db_);
  auto paths =
      schema.EnumeratePaths(schema_ids_.protein, schema_ids_.dna, 3);
  EXPECT_EQ(paths.size(), 10u);
  // Spot-check the endpoints and a few shapes.
  std::set<std::string> rendered;
  for (const auto& p : paths) rendered.insert(schema.PathToString(p));
  EXPECT_TRUE(rendered.count("Protein-Encodes-DNA"));
  EXPECT_TRUE(rendered.count(
      "Protein-Uni_encodes-Unigene-Uni_contains-DNA"));
  EXPECT_TRUE(rendered.count(
      "Protein-Interacts_p-Interaction-Interacts_d-DNA"));
}

TEST_F(BiozonSchemaTest, LengthBoundsRespected) {
  graph::SchemaGraph schema(db_);
  auto paths1 =
      schema.EnumeratePaths(schema_ids_.protein, schema_ids_.dna, 1);
  EXPECT_EQ(paths1.size(), 1u);  // Only Protein-Encodes-DNA.
  auto paths2 =
      schema.EnumeratePaths(schema_ids_.protein, schema_ids_.dna, 2);
  EXPECT_EQ(paths2.size(), 3u);  // + via Unigene and via Interaction.
}

TEST_F(BiozonSchemaTest, SelfPairPathsDeduplicateDirections) {
  graph::SchemaGraph schema(db_);
  auto paths =
      schema.EnumeratePaths(schema_ids_.protein, schema_ids_.protein, 2);
  // P-D-P (encodes twice), P-U-P, P-I-P, P-F-P, P-S-P: five undirected
  // walks, each listed once.
  EXPECT_EQ(paths.size(), 5u);
  std::set<std::string> keys;
  for (const auto& p : paths) keys.insert(schema.PathClassKey(p));
  EXPECT_EQ(keys.size(), paths.size());
}

TEST_F(BiozonSchemaTest, PathClassKeyDirectionInvariant) {
  graph::SchemaGraph schema(db_);
  auto paths =
      schema.EnumeratePaths(schema_ids_.protein, schema_ids_.dna, 3);
  for (const auto& p : paths) {
    EXPECT_EQ(schema.PathClassKey(p), schema.PathClassKey(p.Reversed()));
  }
}

TEST_F(BiozonSchemaTest, ReversedPathRoundTrips) {
  graph::SchemaGraph schema(db_);
  auto paths =
      schema.EnumeratePaths(schema_ids_.protein, schema_ids_.dna, 3);
  for (const auto& p : paths) {
    graph::SchemaPath rr = p.Reversed().Reversed();
    EXPECT_TRUE(rr == p);
  }
}

TEST_F(BiozonSchemaTest, SchemaPathToGraphShape) {
  graph::SchemaGraph schema(db_);
  auto paths =
      schema.EnumeratePaths(schema_ids_.protein, schema_ids_.dna, 2);
  for (const auto& p : paths) {
    graph::LabeledGraph g = p.ToGraph();
    EXPECT_EQ(g.num_nodes(), p.length() + 1);
    EXPECT_EQ(g.num_edges(), p.length());
  }
}

// --- Data graph over the Figure-3 fixture -----------------------------------

class Fig3GraphTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ids_ = biozon::BuildFigure3Database(&db_);
    view_ = std::make_unique<graph::DataGraphView>(db_);
    schema_ = std::make_unique<graph::SchemaGraph>(db_);
  }
  storage::Catalog db_;
  BiozonSchema ids_;
  std::unique_ptr<graph::DataGraphView> view_;
  std::unique_ptr<graph::SchemaGraph> schema_;
};

TEST_F(Fig3GraphTest, NodeAndEdgeCounts) {
  EXPECT_EQ(view_->num_nodes(), 11u);  // 4 proteins + 4 unigenes + 3 DNAs.
  EXPECT_EQ(view_->num_edges(), 11u);
  EXPECT_EQ(view_->EntitiesOfType(ids_.protein).size(), 4u);
  EXPECT_EQ(view_->EntitiesOfType(ids_.pathway).size(), 0u);
}

TEST_F(Fig3GraphTest, NodeTypesResolve) {
  EXPECT_EQ(view_->NodeType(78), ids_.protein);
  EXPECT_EQ(view_->NodeType(215), ids_.dna);
  EXPECT_EQ(view_->NodeType(103), ids_.unigene);
  EXPECT_TRUE(view_->HasNode(44));
  EXPECT_FALSE(view_->HasNode(9999));
}

TEST_F(Fig3GraphTest, AdjacencyIsBidirectional) {
  // Protein 78 has uni_encodes edges from unigenes 103 and 150.
  auto nbrs = view_->Neighbors(78);
  ASSERT_EQ(nbrs.size(), 2u);
  std::set<int64_t> ids;
  for (const auto& adj : nbrs) ids.insert(adj.neighbor);
  EXPECT_TRUE(ids.count(103));
  EXPECT_TRUE(ids.count(150));
  // From protein 78's perspective the uni_encodes edge runs backward.
  for (const auto& adj : nbrs) EXPECT_FALSE(adj.forward);
}

TEST_F(Fig3GraphTest, PathSetOfPaperExample) {
  // PS(78, 215, 3) = {l2, l3, l6} (Example 2.2).
  auto paths = graph::EnumeratePathsBetween(*view_, 78, 215, 3);
  ASSERT_EQ(paths.size(), 3u);
  std::set<std::vector<int64_t>> node_seqs;
  for (const auto& p : paths) {
    node_seqs.insert(p.nodes);
  }
  EXPECT_TRUE(node_seqs.count({78, 103, 215}));        // l2
  EXPECT_TRUE(node_seqs.count({78, 150, 215}));        // l3
  EXPECT_TRUE(node_seqs.count({78, 103, 34, 215}));    // l6
}

TEST_F(Fig3GraphTest, PathSetRespectsLengthLimit) {
  auto paths = graph::EnumeratePathsBetween(*view_, 78, 215, 2);
  EXPECT_EQ(paths.size(), 2u);  // l6 has length 3.
}

TEST_F(Fig3GraphTest, PathCapTruncates) {
  bool truncated = false;
  auto paths = graph::EnumeratePathsBetween(*view_, 78, 215, 3, 1,
                                            &truncated);
  EXPECT_EQ(paths.size(), 1u);
  EXPECT_TRUE(truncated);
}

TEST_F(Fig3GraphTest, SchemaPathInstanceEnumeration) {
  // Instances of Protein-Uni_encodes-Unigene-Uni_contains-DNA.
  graph::SchemaPath pud;
  pud.node_types = {ids_.protein, ids_.unigene, ids_.dna};
  pud.steps = {{ids_.uni_encodes, false}, {ids_.uni_contains, true}};
  size_t count = graph::CountSchemaPathInstances(*view_, pud);
  // 78-103-215, 78-150-215, 34-103-215, 44-188-742, 44-194-742.
  EXPECT_EQ(count, 5u);
}

TEST_F(Fig3GraphTest, SchemaPathInstancesFromAnchor) {
  graph::SchemaPath pud;
  pud.node_types = {ids_.protein, ids_.unigene, ids_.dna};
  pud.steps = {{ids_.uni_encodes, false}, {ids_.uni_contains, true}};
  auto from78 = graph::EnumerateSchemaPathInstancesFrom(*view_, pud, 78);
  EXPECT_EQ(from78.size(), 2u);
  auto from32 = graph::EnumerateSchemaPathInstancesFrom(*view_, pud, 32);
  EXPECT_TRUE(from32.empty());
  // Early-out streaming.
  size_t seen = 0;
  graph::ForEachSchemaPathInstanceFrom(*view_, pud, 78,
                                       [&seen](const graph::PathInstance&) {
                                         ++seen;
                                         return false;  // Stop immediately.
                                       });
  EXPECT_EQ(seen, 1u);
}

TEST_F(Fig3GraphTest, InstanceSchemaPathRoundTrip) {
  auto paths = graph::EnumeratePathsBetween(*view_, 78, 215, 3);
  for (const auto& p : paths) {
    graph::SchemaPath sp = p.ToSchemaPath(*view_);
    EXPECT_EQ(sp.start(), ids_.protein);
    EXPECT_EQ(sp.end(), ids_.dna);
    EXPECT_EQ(sp.length(), p.length());
  }
}

// --- Candidate (schema-level) topology enumeration ---------------------------

TEST_F(BiozonSchemaTest, TwoTopologyCandidatesForProteinDna) {
  // Figure 8: all possible 2-topologies relating Proteins and DNAs. With
  // three schema paths of length <= 2 and no same-type intermediates to
  // intermix, candidates are the seven non-empty path subsets.
  graph::SchemaGraph schema(db_);
  auto paths = schema.EnumeratePaths(schema_ids_.protein, schema_ids_.dna, 2);
  auto candidates = graph::EnumerateCandidateTopologies(schema, paths);
  EXPECT_EQ(candidates.size(), 7u);
}

TEST_F(BiozonSchemaTest, ThreeTopologyCandidatesExplode) {
  // Section 3.1 reports 88453 for every combination and intermixing of the
  // ten l<=3 paths; our enumeration must reach the same order of magnitude.
  graph::SchemaGraph schema(db_);
  auto paths = schema.EnumeratePaths(schema_ids_.protein, schema_ids_.dna, 3);
  ASSERT_EQ(paths.size(), 10u);
  graph::EnumerateOptions options;
  options.max_paths_per_topology = 3;  // Keep the test fast.
  auto candidates =
      graph::EnumerateCandidateTopologies(schema, paths, options);
  EXPECT_GT(candidates.size(), 200u);
  // All candidates are connected and contain the terminals.
  for (const auto& cand : candidates) {
    EXPECT_TRUE(cand.graph.IsConnected());
    EXPECT_GE(cand.graph.num_nodes(), 2u);
  }
}

TEST_F(BiozonSchemaTest, CandidateCodesAreUnique) {
  graph::SchemaGraph schema(db_);
  auto paths = schema.EnumeratePaths(schema_ids_.protein, schema_ids_.dna, 2);
  auto candidates = graph::EnumerateCandidateTopologies(schema, paths);
  std::set<std::string> codes;
  for (const auto& cand : candidates) codes.insert(cand.code);
  EXPECT_EQ(codes.size(), candidates.size());
}

TEST_F(BiozonSchemaTest, CandidateCapTruncates) {
  graph::SchemaGraph schema(db_);
  auto paths = schema.EnumeratePaths(schema_ids_.protein, schema_ids_.dna, 3);
  graph::EnumerateOptions options;
  options.max_candidates = 5;
  bool truncated = false;
  auto candidates =
      graph::EnumerateCandidateTopologies(schema, paths, options, &truncated);
  EXPECT_EQ(candidates.size(), 5u);
  EXPECT_TRUE(truncated);
}

}  // namespace
}  // namespace tsb
