#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>
#include <sstream>

#include "common/hash.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/str_util.h"
#include "common/table_printer.h"
#include "common/zipf.h"

namespace tsb {
namespace {

// --- Status / Result -------------------------------------------------------

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing table");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing table");
  EXPECT_EQ(s.ToString(), "NOT_FOUND: missing table");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kOutOfRange,
        StatusCode::kFailedPrecondition, StatusCode::kResourceExhausted,
        StatusCode::kInternal, StatusCode::kUnimplemented}) {
    EXPECT_STRNE(StatusCodeToString(code), "UNKNOWN");
  }
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto fails = []() -> Status { return Status::Internal("boom"); };
  auto wrapper = [&]() -> Status {
    TSB_RETURN_IF_ERROR(fails());
    return Status::OK();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::InvalidArgument("bad"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto provider = [](bool ok) -> Result<int> {
    if (ok) return 7;
    return Status::NotFound("no");
  };
  auto consumer = [&](bool ok) -> Status {
    TSB_ASSIGN_OR_RETURN(int v, provider(ok));
    EXPECT_EQ(v, 7);
    return Status::OK();
  };
  EXPECT_TRUE(consumer(true).ok());
  EXPECT_EQ(consumer(false).code(), StatusCode::kNotFound);
}

// --- Rng ---------------------------------------------------------------

TEST(RngTest, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next64(), b.Next64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next64() == b.Next64()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // All values hit.
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliRoughlyCalibrated) {
  Rng rng(5);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.NextBool(0.3)) ++hits;
  }
  double rate = static_cast<double>(hits) / n;
  EXPECT_NEAR(rate, 0.3, 0.02);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(11);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

// --- Zipf ----------------------------------------------------------------

TEST(ZipfTest, UniformWhenSkewZero) {
  ZipfSampler z(10, 0.0);
  for (uint64_t k = 0; k < 10; ++k) {
    EXPECT_NEAR(z.Pmf(k), 0.1, 1e-9);
  }
}

TEST(ZipfTest, PmfSumsToOne) {
  ZipfSampler z(100, 1.2);
  double total = 0;
  for (uint64_t k = 0; k < 100; ++k) total += z.Pmf(k);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfTest, HeadHeavierThanTail) {
  ZipfSampler z(1000, 1.0);
  EXPECT_GT(z.Pmf(0), z.Pmf(10));
  EXPECT_GT(z.Pmf(10), z.Pmf(500));
}

TEST(ZipfTest, EmpiricalMatchesPmf) {
  ZipfSampler z(50, 0.9);
  Rng rng(3);
  std::vector<int> counts(50, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[z.Sample(&rng)];
  // The head rank should match its mass within a few percent.
  double head_rate = static_cast<double>(counts[0]) / n;
  EXPECT_NEAR(head_rate, z.Pmf(0), 0.02);
}

// --- String utilities -------------------------------------------------------

TEST(StrUtilTest, SplitKeepsEmptyPieces) {
  std::vector<std::string> parts = StrSplit("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "");
}

TEST(StrUtilTest, JoinRoundTrips) {
  EXPECT_EQ(StrJoin({"a", "b", "c"}, "-"), "a-b-c");
  EXPECT_EQ(StrJoin({}, "-"), "");
}

TEST(StrUtilTest, TokenizeLowercasesAndSplitsOnPunctuation) {
  auto tokens = TokenizeKeywords("Homo sapiens MMS2 (MMS2) mRNA, complete!");
  std::vector<std::string> expected = {"homo",  "sapiens", "mms2",    "mms2",
                                       "mrna", "complete"};
  EXPECT_EQ(tokens, expected);
}

TEST(StrUtilTest, ContainsKeywordWholeTokenOnly) {
  EXPECT_TRUE(ContainsKeyword("ubiquitin-conjugating enzyme UBCi", "enzyme"));
  EXPECT_TRUE(ContainsKeyword("ubiquitin-conjugating enzyme", "ENZYME"));
  // Substrings of tokens do not match.
  EXPECT_FALSE(ContainsKeyword("polymerase", "polymer"));
  EXPECT_FALSE(ContainsKeyword("", "enzyme"));
}

TEST(StrUtilTest, StrFormatFormats) {
  EXPECT_EQ(StrFormat("%d-%s", 5, "x"), "5-x");
  EXPECT_EQ(StrFormat("%.2f", 1.5), "1.50");
}

TEST(StrUtilTest, HexEncodeDecodeRoundTrip) {
  // Binary-safe: embedded NULs and high bytes survive.
  std::string bytes("\x00\x01\xff\x7f""abc", 7);
  std::string hex = HexEncode(bytes);
  EXPECT_EQ(hex, "0001ff7f616263");
  std::string back;
  ASSERT_TRUE(HexDecode(hex, &back));
  EXPECT_EQ(back, bytes);
}

TEST(StrUtilTest, HexDecodeRejectsMalformedInput) {
  std::string out;
  EXPECT_FALSE(HexDecode("abc", &out));   // Odd length.
  EXPECT_FALSE(HexDecode("zz", &out));    // Non-hex digit.
  EXPECT_TRUE(HexDecode("", &out));       // Empty is valid.
  EXPECT_TRUE(out.empty());
  EXPECT_TRUE(HexDecode("ABCDEF", &out));  // Uppercase accepted.
  EXPECT_EQ(out, "\xab\xcd\xef");
}

// --- Hashing ----------------------------------------------------------------

TEST(HashTest, Fnv1aStable) {
  EXPECT_EQ(Fnv1a("abc"), Fnv1a("abc"));
  EXPECT_NE(Fnv1a("abc"), Fnv1a("abd"));
  EXPECT_NE(Fnv1a(""), Fnv1a("a"));
}

TEST(HashTest, CombineOrderMatters) {
  EXPECT_NE(HashCombine(HashCombine(0, 1), 2),
            HashCombine(HashCombine(0, 2), 1));
}

TEST(HashTest, PairHashDistinguishesOrder) {
  PairHash h;
  EXPECT_NE(h(std::make_pair(int64_t{1}, int64_t{2})),
            h(std::make_pair(int64_t{2}, int64_t{1})));
}

// --- TablePrinter -------------------------------------------------------------

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter tp({"name", "value"});
  tp.AddRow({"x", "1"});
  tp.AddRow({"longer", "2"});
  std::ostringstream os;
  tp.Print(os);
  std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(TablePrinterTest, NumFormatsPrecision) {
  EXPECT_EQ(TablePrinter::Num(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Num(2.0, 0), "2");
}

TEST(StopwatchTest, MeasuresNonNegativeTime) {
  Stopwatch w;
  EXPECT_GE(w.ElapsedSeconds(), 0.0);
  EXPECT_GE(w.ElapsedNanos(), 0);
}

}  // namespace
}  // namespace tsb
