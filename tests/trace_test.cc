// Distributed-trace assembly across router, shards, and replicas: a
// sampled query over a 2-shard × 2-replica loopback grid produces ONE
// trace whose span tree covers the admission queue, the cache lookup, the
// scatter fan-out, every physical replica attempt (failovers and hedges
// tagged), the shard-side executions piggybacked across the wire, and the
// k-way merge — with consistent parent/child span ids throughout. Plus
// the acceptance identity: all nine methods stay byte-identical through
// the traced wire path at N ∈ {1, 4}, and the slow-query log captures the
// structured record.

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "biozon/domain.h"
#include "biozon/fig3.h"
#include "core/builder.h"
#include "core/pruner.h"
#include "engine/engine.h"
#include "obs/trace.h"
#include "replica/replica_set.h"
#include "service/service.h"
#include "shard/replica_loopback.h"
#include "shard/scatter_gather.h"
#include "shard/sharded_store.h"
#include "wire/message.h"

namespace tsb {
namespace {

using engine::MethodKind;

const std::vector<MethodKind> kAllMethods = {
    MethodKind::kSql,         MethodKind::kFullTop,
    MethodKind::kFastTop,     MethodKind::kFullTopK,
    MethodKind::kFastTopK,    MethodKind::kFullTopKEt,
    MethodKind::kFastTopKEt,  MethodKind::kFullTopKOpt,
    MethodKind::kFastTopKOpt,
};

size_t CountByName(const std::vector<obs::Span>& spans,
                   const std::string& name) {
  size_t count = 0;
  for (const obs::Span& span : spans) {
    if (span.name == name) ++count;
  }
  return count;
}

bool HasSpanWithTag(const std::vector<obs::Span>& spans,
                    const std::string& name, const std::string& tag) {
  for (const obs::Span& span : spans) {
    if (span.name == name && span.tags.find(tag) != std::string::npos) {
      return true;
    }
  }
  return false;
}

/// Every span's parent must be resolvable within the one trace: zero (a
/// root) or the id of another span in the list — the property that makes
/// the assembled tree render without orphans.
void ExpectParentIdsConsistent(const std::vector<obs::Span>& spans) {
  std::set<uint64_t> ids;
  for (const obs::Span& span : spans) {
    EXPECT_NE(span.span_id, 0u) << span.name;
    ids.insert(span.span_id);
  }
  EXPECT_EQ(ids.size(), spans.size()) << "duplicate span ids";
  for (const obs::Span& span : spans) {
    EXPECT_TRUE(span.parent_span_id == 0 || ids.count(span.parent_span_id))
        << span.name << " parents unknown span "
        << span.parent_span_id;
  }
}

class TraceFig3Test : public ::testing::Test {
 protected:
  void SetUp() override {
    ids_ = biozon::BuildFigure3Database(&db_);
    view_ = std::make_unique<graph::DataGraphView>(db_);
    schema_ = std::make_unique<graph::SchemaGraph>(db_);
    core::TopologyBuilder builder(&db_, schema_.get(), view_.get());
    core::BuildConfig config;
    config.max_path_length = 3;
    ASSERT_TRUE(builder.BuildAllPairs(config, &store_).ok());
    core::PruneConfig prune;
    prune.frequency_threshold = 0;
    std::vector<std::pair<storage::EntityTypeId, storage::EntityTypeId>>
        keys;
    for (const auto& [key, pair] : store_.pairs()) keys.push_back(key);
    for (const auto& [t1, t2] : keys) {
      ASSERT_TRUE(
          core::PruneFrequentTopologies(&db_, &store_, t1, t2, prune).ok());
    }
    engine_ = std::make_unique<engine::Engine>(
        &db_, &store_, schema_.get(), view_.get(),
        core::ScoreModel(&store_.catalog(),
                         biozon::MakeBiozonDomainKnowledge(ids_)));
  }

  std::unique_ptr<shard::ScatterGatherExecutor> MakeSharded(
      size_t n, const std::string& tag) {
    auto sharded = std::make_shared<shard::ShardedTopologyStore>(n);
    core::TopologyBuilder builder(&db_, schema_.get(), view_.get());
    core::BuildConfig build;
    build.max_path_length = 3;
    build.table_namespace = tag + std::to_string(n) + ".";
    EXPECT_TRUE(sharded->Build(&builder, build).ok());
    core::PruneConfig prune;
    prune.frequency_threshold = 0;
    for (size_t i = 0; i < n; ++i) {
      auto snapshot = sharded->Snapshot(i);
      std::vector<std::pair<storage::EntityTypeId, storage::EntityTypeId>>
          keys;
      for (const auto& [key, pair] : snapshot->pairs()) keys.push_back(key);
      for (const auto& [t1, t2] : keys) {
        EXPECT_TRUE(core::PruneFrequentTopologies(&db_, snapshot.get(), t1,
                                                  t2, prune)
                        .ok());
      }
    }
    return std::make_unique<shard::ScatterGatherExecutor>(
        &db_, sharded, schema_.get(), view_.get(),
        biozon::MakeBiozonDomainKnowledge(ids_),
        engine::SqlBaselineOptions{}, shard::ScatterGatherConfig{});
  }

  /// Executor wired through a ReplicaSetTransport over an N×R loopback
  /// grid (fault injectors kept reachable in `raw`).
  struct ReplicaRig {
    std::unique_ptr<shard::ScatterGatherExecutor> executor;
    std::vector<std::vector<shard::LoopbackReplicaChannel*>> raw;
    std::unique_ptr<replica::ReplicaSetTransport> transport;

    ReplicaRig() = default;
    ReplicaRig(ReplicaRig&&) = default;
    ReplicaRig& operator=(ReplicaRig&&) = default;
    ~ReplicaRig() {
      if (executor != nullptr) executor->set_transport(nullptr);
    }
  };

  ReplicaRig MakeRig(size_t n, size_t r, const std::string& tag,
                     replica::ReplicaSetConfig config =
                         replica::ReplicaSetConfig{}) {
    ReplicaRig rig;
    rig.executor = MakeSharded(n, tag);
    std::vector<const engine::Engine*> engines;
    for (size_t i = 0; i < n; ++i) {
      engines.push_back(&rig.executor->shard_engine(i));
    }
    shard::LoopbackReplicaGrid grid = shard::MakeLoopbackReplicaGrid(
        &db_, &rig.executor->store(), engines, r);
    rig.raw = std::move(grid.raw);
    rig.transport = std::make_unique<replica::ReplicaSetTransport>(
        std::move(grid.channels), config,
        rig.executor->transport_metrics());
    rig.executor->set_transport(rig.transport.get());
    return rig;
  }

  engine::TopologyQuery ScatteringQuery() const {
    engine::TopologyQuery q;
    q.entity_set1 = "Protein";
    q.entity_set2 = "DNA";
    q.scheme = core::RankScheme::kFreq;
    q.k = 10;
    return q;
  }

  storage::Catalog db_;
  biozon::BiozonSchema ids_;
  std::unique_ptr<graph::DataGraphView> view_;
  std::unique_ptr<graph::SchemaGraph> schema_;
  core::TopologyStore store_;
  std::unique_ptr<engine::Engine> engine_;
};

TEST_F(TraceFig3Test, FailoverQueryAssemblesOneCrossProcessTrace) {
  // Hedging off so the only second attempt is the injected failover. On a
  // fresh rig the router deterministically picks replica 0 primary (all
  // ranking inputs tie); one injected transient failure there forces a
  // failover to replica 1. The designated shard never crosses the
  // transport, so injecting on both shards' replica 0 arms exactly the
  // remote one.
  replica::ReplicaSetConfig transport_config;
  transport_config.hedge_enabled = false;
  ReplicaRig rig = MakeRig(2, 2, "tfo", transport_config);
  for (size_t shard = 0; shard < 2; ++shard) {
    rig.raw[shard][0]->InjectFailures(1);
  }

  service::ServiceConfig svc_config;
  svc_config.num_threads = 2;
  svc_config.trace.sample_every = 1;  // Trace everything.
  service::TopologyService svc(rig.executor.get(), &db_, svc_config);

  auto expected = engine_->Execute(ScatteringQuery(), MethodKind::kFullTop);
  ASSERT_TRUE(expected.ok());
  auto response = svc.Execute(ScatteringQuery(), MethodKind::kFullTop);
  ASSERT_TRUE(response.result.ok()) << response.result.status();
  // The failover is invisible in results: byte-identical, not partial.
  EXPECT_EQ(response.result->entries, expected->entries);
  EXPECT_FALSE(response.result->partial);

  // Exactly one trace was assembled for the one sampled query.
  auto recent = svc.tracer().Recent();
  ASSERT_EQ(recent.size(), 1u);
  const auto& trace = recent.front();
  const std::vector<obs::Span> spans = trace->Spans();
  ExpectParentIdsConsistent(spans);

  // The tree covers every stage of the query's journey.
  EXPECT_EQ(spans[0].name, "service.query");
  EXPECT_EQ(spans[0].span_id, trace->root_span_id());
  EXPECT_EQ(CountByName(spans, "queue.wait"), 1u);
  EXPECT_EQ(CountByName(spans, "cache.lookup"), 1u);
  EXPECT_EQ(CountByName(spans, "execute"), 1u);
  EXPECT_EQ(CountByName(spans, "scatter"), 1u);
  EXPECT_EQ(CountByName(spans, "designated.exec"), 1u);
  EXPECT_EQ(CountByName(spans, "merge"), 1u);
  ASSERT_GE(CountByName(spans, "rpc"), 1u);
  // The shard-side execution span crossed the wire (piggybacked on the
  // response and absorbed at gather).
  EXPECT_GE(CountByName(spans, "shard.exec"), 1u);

  // Both physical attempts are named: the failed primary and the
  // failover that served the answer.
  EXPECT_EQ(CountByName(spans, "replica.attempt"), 2u);
  EXPECT_TRUE(HasSpanWithTag(spans, "replica.attempt", "ok=0"));
  EXPECT_TRUE(HasSpanWithTag(spans, "replica.attempt", "failover=1"));
  EXPECT_TRUE(HasSpanWithTag(spans, "replica.attempt", "replica=1"));
  // The shard.exec that answered names the serving replica's stamp.
  EXPECT_TRUE(HasSpanWithTag(spans, "shard.exec", "stamp=r1"));

  svc.Shutdown();
}

TEST_F(TraceFig3Test, HedgedQueryTracesBothAttempts) {
  // Replica 0 of every shard stalls well past the hedge delay: the
  // primary attempt dawdles, the hedge fires at replica 1 and wins. The
  // loser still completes (cancellation-safe tracing), so its span lands
  // in the same — already recorded — trace shortly after.
  replica::ReplicaSetConfig transport_config;
  transport_config.hedge_delay_default_seconds = 0.01;
  ReplicaRig rig = MakeRig(2, 2, "thg", transport_config);
  const double stall_seconds = 0.15;
  for (size_t shard = 0; shard < 2; ++shard) {
    rig.raw[shard][0]->SetDelay(stall_seconds);
  }

  service::ServiceConfig svc_config;
  svc_config.num_threads = 2;
  svc_config.trace.sample_every = 1;
  service::TopologyService svc(rig.executor.get(), &db_, svc_config);

  auto expected = engine_->Execute(ScatteringQuery(), MethodKind::kFullTop);
  ASSERT_TRUE(expected.ok());
  auto response = svc.Execute(ScatteringQuery(), MethodKind::kFullTop);
  ASSERT_TRUE(response.result.ok()) << response.result.status();
  EXPECT_EQ(response.result->entries, expected->entries);

  auto recent = svc.tracer().Recent();
  ASSERT_EQ(recent.size(), 1u);
  const auto& trace = recent.front();

  // Wait for the stalled loser to finish and record its span.
  std::vector<obs::Span> spans;
  for (int i = 0; i < 200; ++i) {
    spans = trace->Spans();
    if (CountByName(spans, "replica.attempt") >= 2) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ExpectParentIdsConsistent(spans);
  ASSERT_EQ(CountByName(spans, "replica.attempt"), 2u);
  EXPECT_TRUE(HasSpanWithTag(spans, "replica.attempt", "hedge=1"));
  // Both the winner and the (slow but successful) loser report ok=1.
  EXPECT_FALSE(HasSpanWithTag(spans, "replica.attempt", "ok=0"));

  svc.Shutdown();
}

TEST_F(TraceFig3Test,
       TracedWirePathStaysByteIdenticalForEveryMethodAtOneAndFourShards) {
  // The acceptance identity: with every query sampled, tracing must not
  // perturb a single byte of any method's results, with and without
  // fan-out.
  for (size_t n : {1u, 4u}) {
    ReplicaRig rig = MakeRig(n, 2, "tid");
    service::ServiceConfig svc_config;
    svc_config.num_threads = 2;
    svc_config.trace.sample_every = 1;
    svc_config.trace.max_recent = 64;
    service::TopologyService svc(rig.executor.get(), &db_, svc_config);

    for (MethodKind method : kAllMethods) {
      auto expected = engine_->Execute(ScatteringQuery(), method);
      auto response = svc.Execute(ScatteringQuery(), method);
      ASSERT_EQ(expected.ok(), response.result.ok())
          << engine::MethodKindToString(method) << " @" << n;
      if (!expected.ok()) continue;
      EXPECT_EQ(expected->entries, response.result->entries)
          << engine::MethodKindToString(method) << " @" << n << " shards";
      EXPECT_FALSE(response.result->partial);
    }
    // Every executed query yielded a recorded trace with a consistent
    // tree.
    auto recent = svc.tracer().Recent();
    EXPECT_GE(recent.size(), kAllMethods.size() - 1)
        << n;  // kSql may fail on fixtures without a SQL baseline.
    for (const auto& trace : recent) {
      ExpectParentIdsConsistent(trace->Spans());
    }
    svc.Shutdown();
  }
}

TEST_F(TraceFig3Test, SlowQueryLogCapturesStructuredRecordWithSpanTree) {
  ReplicaRig rig = MakeRig(2, 2, "tsl");
  service::ServiceConfig svc_config;
  svc_config.num_threads = 2;
  svc_config.trace.sample_every = 1;
  svc_config.slow_query.threshold_seconds = 1e-9;  // Everything is slow.
  service::TopologyService svc(rig.executor.get(), &db_, svc_config);

  auto response = svc.Execute(ScatteringQuery(), MethodKind::kFullTopK);
  ASSERT_TRUE(response.result.ok());

  auto records = svc.slow_query_log().Recent();
  ASSERT_EQ(records.size(), 1u);
  const obs::SlowQueryRecord& record = records.front();
  EXPECT_TRUE(record.ok);
  EXPECT_GT(record.service_seconds, 0.0);
  // The canonical request line and the method are reconstructible.
  EXPECT_NE(record.request.find("set1=Protein"), std::string::npos)
      << record.request;
  EXPECT_NE(record.request.find("set2=DNA"), std::string::npos);
  EXPECT_EQ(record.method, "Full-Top-k");
  EXPECT_FALSE(record.plan.empty());
  // Sampled query: the record carries the trace id and the rendered tree.
  EXPECT_NE(record.trace_id, 0u);
  EXPECT_NE(record.span_tree.find("service.query"), std::string::npos);
  EXPECT_NE(record.span_tree.find("scatter"), std::string::npos);

  // A cache hit is also recorded (threshold is epsilon) and flagged so.
  auto hit = svc.Execute(ScatteringQuery(), MethodKind::kFullTopK);
  ASSERT_TRUE(hit.result.ok());
  EXPECT_TRUE(hit.from_cache);
  records = svc.slow_query_log().Recent();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_TRUE(records.back().from_cache);

  svc.Shutdown();
}

}  // namespace
}  // namespace tsb
