// Tests for the extension features beyond the paper's core evaluation:
// weak-topology filtering (Section 6.2.3's proposed solution), cross-query
// topology comparison (Section 8 future work), and CSV interchange.

#include <gtest/gtest.h>

#include <sstream>

#include "biozon/domain.h"
#include "biozon/generator.h"
#include "core/builder.h"
#include "core/pruner.h"
#include "core/weak_filter.h"
#include "engine/compare.h"
#include "engine/engine.h"
#include "graph/isomorphism.h"
#include "storage/csv.h"

namespace tsb {
namespace {

using engine::MethodKind;

// --- Weak-topology filtering ---------------------------------------------------

class WeakFilterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    biozon::GeneratorConfig config;
    config.seed = 77;
    config.scale = 0.08;
    config.zipf_skew = 0.6;  // Hubs guarantee weak motifs appear.
    ids_ = biozon::GenerateBiozon(config, &db_);
    view_ = std::make_unique<graph::DataGraphView>(db_);
    schema_ = std::make_unique<graph::SchemaGraph>(db_);
    core::TopologyBuilder builder(&db_, schema_.get(), view_.get());
    core::BuildConfig build;
    build.max_path_length = 3;
    ASSERT_TRUE(
        builder.BuildPair(ids_.protein, ids_.dna, build, &store_).ok());
    pair_ = store_.FindPair(ids_.protein, ids_.dna);
    core::PruneConfig prune;
    prune.frequency_threshold = pair_->num_related_pairs / 100;
    ASSERT_TRUE(core::PruneFrequentTopologies(&db_, &store_, ids_.protein,
                                              ids_.dna, prune)
                    .ok());
    knowledge_ = biozon::MakeBiozonDomainKnowledge(ids_);
    engine_ = std::make_unique<engine::Engine>(
        &db_, &store_, schema_.get(), view_.get(),
        core::ScoreModel(&store_.catalog(), knowledge_));
  }

  engine::TopologyQuery Query(bool exclude_weak) {
    engine::TopologyQuery q;
    q.entity_set1 = "Protein";
    q.entity_set2 = "DNA";
    q.scheme = core::RankScheme::kFreq;
    q.k = 1000;
    q.exclude_weak = exclude_weak;
    return q;
  }

  storage::Catalog db_;
  biozon::BiozonSchema ids_;
  std::unique_ptr<graph::DataGraphView> view_;
  std::unique_ptr<graph::SchemaGraph> schema_;
  core::TopologyStore store_;
  const core::PairTopologyData* pair_ = nullptr;
  core::DomainKnowledge knowledge_;
  std::unique_ptr<engine::Engine> engine_;
};

TEST_F(WeakFilterTest, FindsWeakTopologies) {
  auto weak =
      core::FindWeakTopologies(store_.catalog(), *pair_, knowledge_);
  EXPECT_GT(weak.size(), 0u);
  EXPECT_LT(weak.size(), pair_->freq.size());
  // Every reported TID really contains a motif.
  for (core::Tid tid : weak) {
    bool contains = false;
    for (const graph::LabeledGraph& motif : knowledge_.weak_motifs) {
      if (graph::IsSubgraphIsomorphic(motif,
                                      store_.catalog().Get(tid).graph)) {
        contains = true;
        break;
      }
    }
    EXPECT_TRUE(contains);
  }
}

TEST_F(WeakFilterTest, AnalyzeReportsConsistentTotals) {
  auto stats =
      core::AnalyzeWeakTopologies(store_.catalog(), *pair_, knowledge_);
  EXPECT_EQ(stats.total_topologies, pair_->freq.size());
  EXPECT_LE(stats.weak_topologies, stats.total_topologies);
  EXPECT_LE(stats.weak_pairs, stats.total_pairs);
  size_t freq_total = 0;
  for (const auto& [tid, f] : pair_->freq) freq_total += f;
  EXPECT_EQ(stats.total_pairs, freq_total);
}

TEST_F(WeakFilterTest, ExcludeWeakRemovesExactlyTheWeakSet) {
  auto all = engine_->Execute(Query(false), MethodKind::kFullTop);
  auto filtered = engine_->Execute(Query(true), MethodKind::kFullTop);
  ASSERT_TRUE(all.ok());
  ASSERT_TRUE(filtered.ok());
  auto weak = core::FindWeakTopologies(store_.catalog(), *pair_, knowledge_);
  std::set<core::Tid> expected;
  for (const auto& e : all->entries) {
    if (weak.count(e.tid) == 0) expected.insert(e.tid);
  }
  std::set<core::Tid> got;
  for (const auto& e : filtered->entries) got.insert(e.tid);
  EXPECT_EQ(got, expected);
  EXPECT_LT(filtered->entries.size(), all->entries.size());
}

TEST_F(WeakFilterTest, MethodsAgreeUnderExclusion) {
  auto baseline = engine_->Execute(Query(true), MethodKind::kFullTop);
  ASSERT_TRUE(baseline.ok());
  std::set<core::Tid> expected;
  for (const auto& e : baseline->entries) expected.insert(e.tid);
  for (MethodKind method :
       {MethodKind::kSql, MethodKind::kFastTop, MethodKind::kFastTopK,
        MethodKind::kFastTopKEt, MethodKind::kFastTopKOpt}) {
    auto result = engine_->Execute(Query(true), method);
    ASSERT_TRUE(result.ok()) << engine::MethodKindToString(method);
    std::set<core::Tid> got;
    for (const auto& e : result->entries) got.insert(e.tid);
    EXPECT_EQ(got, expected) << engine::MethodKindToString(method);
  }
}

TEST_F(WeakFilterTest, TopKExclusionIsPrefixOfFilteredRanking) {
  auto full = engine_->Execute(Query(true), MethodKind::kFullTop);
  ASSERT_TRUE(full.ok());
  engine::TopologyQuery q = Query(true);
  q.k = 3;
  auto topk = engine_->Execute(q, MethodKind::kFastTopKEt);
  ASSERT_TRUE(topk.ok());
  ASSERT_LE(topk->entries.size(), 3u);
  for (size_t i = 0; i < topk->entries.size(); ++i) {
    EXPECT_EQ(topk->entries[i].tid, full->entries[i].tid);
  }
}

// --- Cross-query comparison ------------------------------------------------------

TEST_F(WeakFilterTest, CompareResultsPartitionsTids) {
  engine::TopologyQuery qa = Query(false);
  qa.pred1 = biozon::SelectivityPredicate(db_, "Protein", "selective");
  engine::TopologyQuery qb = Query(false);
  qb.pred1 = biozon::SelectivityPredicate(db_, "Protein", "unselective");
  auto ra = engine_->Execute(qa, MethodKind::kFullTop);
  auto rb = engine_->Execute(qb, MethodKind::kFullTop);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  auto comparison = engine::CompareResults(store_.catalog(), *ra, *rb);
  EXPECT_EQ(comparison.in_both.size() + comparison.only_in_a.size(),
            ra->entries.size());
  EXPECT_EQ(comparison.in_both.size() + comparison.only_in_b.size(),
            rb->entries.size());
  // Refinement pairs actually embed.
  for (const auto& [coarse, fine] : comparison.refinements) {
    EXPECT_TRUE(graph::IsSubgraphIsomorphic(
        store_.catalog().Get(coarse).graph,
        store_.catalog().Get(fine).graph));
  }
  std::string report =
      engine::DescribeComparison(comparison, store_.catalog(), *schema_);
  EXPECT_NE(report.find("shared:"), std::string::npos);
}

TEST_F(WeakFilterTest, CompareIdenticalResultsIsAllShared) {
  auto r = engine_->Execute(Query(false), MethodKind::kFullTop);
  ASSERT_TRUE(r.ok());
  auto comparison = engine::CompareResults(store_.catalog(), *r, *r);
  EXPECT_TRUE(comparison.only_in_a.empty());
  EXPECT_TRUE(comparison.only_in_b.empty());
  EXPECT_TRUE(comparison.refinements.empty());
  EXPECT_EQ(comparison.in_both.size(), r->entries.size());
}

// --- CSV interchange ---------------------------------------------------------------

TEST(CsvTest, EscapeRules) {
  EXPECT_EQ(storage::CsvEscape("plain"), "plain");
  EXPECT_EQ(storage::CsvEscape("a,b"), "\"a,b\"");
  EXPECT_EQ(storage::CsvEscape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(storage::CsvEscape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvTest, WriteProducesHeaderAndRows) {
  storage::Table t("T",
                   storage::TableSchema({{"ID", storage::ColumnType::kInt64},
                                         {"DESC",
                                          storage::ColumnType::kString}}));
  t.AppendRowOrDie({storage::Value(int64_t{1}), storage::Value("alpha")});
  t.AppendRowOrDie({storage::Value(int64_t{2}), storage::Value("b,eta")});
  std::ostringstream os;
  storage::WriteTableCsv(t, os);
  EXPECT_EQ(os.str(), "ID,DESC\n1,alpha\n2,\"b,eta\"\n");
}

TEST(CsvTest, RoundTripsThroughReadBack) {
  storage::TableSchema schema({{"ID", storage::ColumnType::kInt64},
                               {"SCORE", storage::ColumnType::kDouble},
                               {"DESC", storage::ColumnType::kString}});
  storage::Table t("T", schema);
  t.AppendRowOrDie({storage::Value(int64_t{-5}), storage::Value(1.5),
                    storage::Value("quote \" and, comma")});
  t.AppendRowOrDie({storage::Value(int64_t{7}), storage::Value(0.25),
                    storage::Value("")});
  std::ostringstream os;
  storage::WriteTableCsv(t, os);

  storage::Catalog db;
  std::istringstream is(os.str());
  auto loaded = storage::ReadTableCsv(&db, "Loaded", schema, is);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ((*loaded)->num_rows(), 2u);
  EXPECT_EQ((*loaded)->GetInt64(0, 0), -5);
  EXPECT_EQ((*loaded)->GetValue(0, 1).AsDouble(), 1.5);
  EXPECT_EQ((*loaded)->GetString(0, 2), "quote \" and, comma");
  EXPECT_EQ((*loaded)->GetString(1, 2), "");
}

TEST(CsvTest, RejectsBadInput) {
  storage::TableSchema schema({{"ID", storage::ColumnType::kInt64}});
  storage::Catalog db;
  {
    std::istringstream is("");
    EXPECT_FALSE(storage::ReadTableCsv(&db, "X", schema, is).ok());
  }
  {
    std::istringstream is("WRONG\n1\n");
    EXPECT_FALSE(storage::ReadTableCsv(&db, "X", schema, is).ok());
  }
  {
    std::istringstream is("ID\nnotanumber\n");
    EXPECT_FALSE(storage::ReadTableCsv(&db, "X", schema, is).ok());
  }
  {
    std::istringstream is("ID\n1,2\n");
    EXPECT_FALSE(storage::ReadTableCsv(&db, "X", schema, is).ok());
  }
}

TEST(CsvTest, ExportsBuiltTopologyTables) {
  // End-to-end: build Figure-3-sized world, export AllTops, read it back.
  storage::Catalog db;
  biozon::GeneratorConfig config;
  config.seed = 9;
  config.scale = 0.02;
  biozon::BiozonSchema ids = biozon::GenerateBiozon(config, &db);
  graph::DataGraphView view(db);
  graph::SchemaGraph schema(db);
  core::TopologyStore store;
  core::TopologyBuilder builder(&db, &schema, &view);
  core::BuildConfig build;
  build.max_path_length = 2;
  ASSERT_TRUE(builder.BuildPair(ids.protein, ids.dna, build, &store).ok());
  const core::PairTopologyData& pair = *store.FindPair(ids.protein, ids.dna);
  const storage::Table& alltops = *db.GetTable(pair.alltops_table);

  std::ostringstream os;
  storage::WriteTableCsv(alltops, os);
  std::istringstream is(os.str());
  auto loaded =
      storage::ReadTableCsv(&db, "AllTops_copy", alltops.schema(), is);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ((*loaded)->num_rows(), alltops.num_rows());
  for (size_t i = 0; i < alltops.num_rows(); ++i) {
    EXPECT_EQ((*loaded)->GetRow(i), alltops.GetRow(i));
  }
}

}  // namespace
}  // namespace tsb
