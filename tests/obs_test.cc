// The observability subsystem (src/obs/): trace ids and span trees, the
// sampling tracer, the span-list wire codec and its corruption handling,
// the unified MetricsRegistry renderings (Prometheus text exposition and
// JSON), the slow-query ring, and the admin channel both at the struct
// level (HandleAdmin) and the frame level (HandleAdminFrame + codecs).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/binary_io.h"
#include "obs/admin.h"
#include "obs/cost.h"
#include "obs/fleet.h"
#include "obs/histogram.h"
#include "obs/registry.h"
#include "obs/slow_log.h"
#include "obs/trace.h"
#include "wire/codec.h"
#include "wire/message.h"

namespace tsb {
namespace {

// ---------------------------------------------------------------------------
// Ids and QueryTrace
// ---------------------------------------------------------------------------

TEST(TraceIdTest, IdsAreNonZeroAndDistinct) {
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t trace_id = obs::NewTraceId();
    const uint64_t span_id = obs::NewSpanId();
    EXPECT_NE(trace_id, 0u);
    EXPECT_NE(span_id, 0u);
    seen.insert(trace_id);
    seen.insert(span_id);
  }
  EXPECT_EQ(seen.size(), 2000u);
}

TEST(QueryTraceTest, RootFirstSpansAndFinishSetsRootDuration) {
  obs::QueryTrace trace(obs::NewTraceId(), "service.query");
  EXPECT_EQ(trace.size(), 1u);

  const uint64_t child =
      trace.AddSpan("execute", trace.root_span_id(), 1.0, 0.5, "ok=1");
  EXPECT_NE(child, 0u);
  trace.Finish(2.5);

  std::vector<obs::Span> spans = trace.Spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].span_id, trace.root_span_id());
  EXPECT_EQ(spans[0].name, "service.query");
  EXPECT_DOUBLE_EQ(spans[0].duration_seconds, 2.5);
  EXPECT_EQ(spans[1].span_id, child);
  EXPECT_EQ(spans[1].parent_span_id, trace.root_span_id());
  EXPECT_EQ(spans[1].tags, "ok=1");
}

TEST(QueryTraceTest, ContextUnderCarriesTraceIdAndParent) {
  obs::QueryTrace trace(42, "root");
  const uint64_t rpc_span = obs::NewSpanId();
  obs::TraceContext context = trace.ContextUnder(rpc_span);
  EXPECT_TRUE(context.active());
  EXPECT_EQ(context.trace_id, 42u);
  EXPECT_EQ(context.parent_span_id, rpc_span);
}

TEST(QueryTraceTest, AbsorbAndPreAllocatedIdsLinkCrossProcessSpans) {
  // The scatter pattern: the rpc span id is drawn before the sub-request
  // ships, the shard parents its spans under that id, and the rpc span
  // itself is recorded after the response returns.
  obs::QueryTrace trace(obs::NewTraceId(), "root");
  const uint64_t rpc_span_id = obs::NewSpanId();

  obs::Span shard_span;
  shard_span.span_id = obs::NewSpanId();
  shard_span.parent_span_id = rpc_span_id;
  shard_span.name = "shard.exec";
  trace.Absorb({shard_span});

  obs::Span rpc;
  rpc.span_id = rpc_span_id;
  rpc.parent_span_id = trace.root_span_id();
  rpc.name = "rpc";
  trace.AddSpanWithId(rpc);

  // The tree renders the shard span under the rpc span even though the
  // parent arrived after the child: root (depth 0) -> rpc (depth 1) ->
  // shard.exec (depth 2).
  const std::string tree = obs::FormatSpanTree(trace.Spans());
  EXPECT_NE(tree.find("\n  rpc"), std::string::npos) << tree;
  EXPECT_NE(tree.find("\n    shard.exec"), std::string::npos) << tree;
}

TEST(FormatSpanTreeTest, NestsChildrenAndKeepsOrphansVisible) {
  std::vector<obs::Span> spans;
  obs::Span root;
  root.span_id = 1;
  root.name = "root";
  spans.push_back(root);
  obs::Span child;
  child.span_id = 2;
  child.parent_span_id = 1;
  child.name = "child";
  child.tags = "k=v";
  spans.push_back(child);
  obs::Span grandchild;
  grandchild.span_id = 3;
  grandchild.parent_span_id = 2;
  grandchild.name = "grandchild";
  spans.push_back(grandchild);
  obs::Span orphan;
  orphan.span_id = 4;
  orphan.parent_span_id = 999;  // Unknown parent: renders at root level.
  orphan.name = "orphan";
  spans.push_back(orphan);

  const std::string tree = obs::FormatSpanTree(spans);
  EXPECT_NE(tree.find("root"), std::string::npos);
  EXPECT_NE(tree.find("  child"), std::string::npos) << tree;
  EXPECT_NE(tree.find("    grandchild"), std::string::npos) << tree;
  EXPECT_NE(tree.find("[k=v]"), std::string::npos) << tree;
  EXPECT_NE(tree.find("\norphan"), std::string::npos) << tree;
  // Every span printed exactly once.
  EXPECT_EQ(std::count(tree.begin(), tree.end(), '\n'), 4);
}

// ---------------------------------------------------------------------------
// Tracer sampling
// ---------------------------------------------------------------------------

TEST(TracerTest, SampleEveryZeroDisablesLocalSampling) {
  obs::Tracer tracer;  // Default sample_every = 0.
  EXPECT_EQ(tracer.StartTrace("q"), nullptr);
  EXPECT_EQ(tracer.traces_started(), 0u);
}

TEST(TracerTest, SampleEveryOneTracesEverything) {
  obs::TracerConfig config;
  config.sample_every = 1;
  obs::Tracer tracer(config);
  for (int i = 0; i < 10; ++i) {
    EXPECT_NE(tracer.StartTrace("q"), nullptr);
  }
  EXPECT_EQ(tracer.traces_started(), 10u);
}

TEST(TracerTest, SampleEveryNTracesOneInN) {
  obs::TracerConfig config;
  config.sample_every = 4;
  obs::Tracer tracer(config);
  size_t sampled = 0;
  for (int i = 0; i < 40; ++i) {
    if (tracer.StartTrace("q") != nullptr) ++sampled;
  }
  EXPECT_EQ(sampled, 10u);
}

TEST(TracerTest, InheritedContextBypassesSamplingAndAdoptsIds) {
  // A shard receiving a sampled sub-request must trace it even with local
  // sampling off — the decision was made upstream.
  obs::Tracer tracer;  // sample_every = 0.
  obs::TraceContext inherited;
  inherited.trace_id = 77;
  inherited.parent_span_id = 123;
  inherited.sampled = true;
  auto trace = tracer.StartTrace("shard.handle", inherited);
  ASSERT_NE(trace, nullptr);
  EXPECT_EQ(trace->trace_id(), 77u);
  EXPECT_EQ(trace->Spans()[0].parent_span_id, 123u);

  // An inactive context falls back to the local sampling decision.
  EXPECT_EQ(tracer.StartTrace("shard.handle", obs::TraceContext{}), nullptr);
}

TEST(TracerTest, RecentRingEvictsOldestAndRenders) {
  obs::TracerConfig config;
  config.sample_every = 1;
  config.max_recent = 2;
  obs::Tracer tracer(config);
  auto a = tracer.StartTrace("a");
  auto b = tracer.StartTrace("b");
  auto c = tracer.StartTrace("c");
  tracer.Record(a);
  tracer.Record(b);
  tracer.Record(c);
  tracer.Record(nullptr);  // No-op.

  auto recent = tracer.Recent();
  ASSERT_EQ(recent.size(), 2u);
  EXPECT_EQ(recent[0]->Spans()[0].name, "b");
  EXPECT_EQ(recent[1]->Spans()[0].name, "c");
  EXPECT_EQ(tracer.traces_recorded(), 3u);

  const std::string rendered = tracer.RenderRecent();
  EXPECT_NE(rendered.find("trace "), std::string::npos);
  EXPECT_NE(rendered.find("c  "), std::string::npos);
}

// ---------------------------------------------------------------------------
// Span-list codec
// ---------------------------------------------------------------------------

TEST(SpanCodecTest, RoundTripsByteIdentically) {
  std::vector<obs::Span> spans;
  obs::Span span;
  span.span_id = 0xdeadbeefcafef00dULL;
  span.parent_span_id = 7;
  span.name = "replica.attempt";
  span.tags = "shard=1,replica=0,hedge=1";
  span.start_unix_seconds = 1723100000.125;
  span.duration_seconds = 0.0625;
  spans.push_back(span);
  spans.push_back(obs::Span{});  // All-defaults span survives too.

  std::string bytes;
  obs::EncodeSpans(spans, &bytes);
  BinaryReader in(bytes);
  std::vector<obs::Span> decoded;
  ASSERT_TRUE(obs::DecodeSpans(&in, &decoded).ok());
  EXPECT_TRUE(in.AtEnd());
  ASSERT_EQ(decoded.size(), 2u);
  EXPECT_EQ(decoded[0].span_id, span.span_id);
  EXPECT_EQ(decoded[0].name, span.name);
  EXPECT_EQ(decoded[0].tags, span.tags);

  std::string again;
  obs::EncodeSpans(decoded, &again);
  EXPECT_EQ(bytes, again);
}

TEST(SpanCodecTest, CorruptedCountFailsBeforeAllocation) {
  // A count claiming more spans than the payload can hold must be
  // rejected up front, not discovered after reserving gigabytes.
  std::string bytes;
  PutU32(&bytes, 0xffffffffu);
  BinaryReader in(bytes);
  std::vector<obs::Span> decoded;
  EXPECT_FALSE(obs::DecodeSpans(&in, &decoded).ok());
  EXPECT_TRUE(decoded.empty());
}

TEST(SpanCodecTest, TruncatedSpanBodyFails) {
  std::vector<obs::Span> spans(2);
  spans[0].name = "a";
  spans[1].name = "b";
  std::string bytes;
  obs::EncodeSpans(spans, &bytes);
  for (size_t len = 4; len < bytes.size(); ++len) {
    const std::string truncated = bytes.substr(0, len);
    BinaryReader in(truncated);
    std::vector<obs::Span> decoded;
    EXPECT_FALSE(obs::DecodeSpans(&in, &decoded).ok()) << len;
  }
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

TEST(MetricsRegistryTest, RendersPrometheusFamiliesWithHeaders) {
  obs::CallbackSource source([](obs::MetricsSink* sink) {
    sink->Counter("tsb_requests_total", "Requests served.",
                  {{"method", "full-topk"}}, 12);
    sink->Counter("tsb_requests_total", "Requests served.",
                  {{"method", "fast-topk"}}, 3);
    sink->Gauge("tsb_queue_depth", "Queued requests.", {}, 5);
    obs::SummaryValue latency;
    latency.count = 100;
    latency.mean = 0.002;
    latency.p50 = 0.001;
    latency.p95 = 0.004;
    latency.p99 = 0.009;
    latency.max = 0.05;
    sink->Summary("tsb_latency_seconds", "Service latency.", {}, latency);
  });
  obs::MetricsRegistry registry;
  registry.Register(&source);
  EXPECT_EQ(registry.num_sources(), 1u);

  const std::string text = registry.RenderPrometheus();
  // One HELP/TYPE header per family, both samples under it.
  EXPECT_EQ(text.find("# HELP tsb_requests_total Requests served."),
            text.rfind("# HELP tsb_requests_total"));
  EXPECT_NE(text.find("# TYPE tsb_requests_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("tsb_requests_total{method=\"full-topk\"} 12"),
            std::string::npos);
  EXPECT_NE(text.find("tsb_requests_total{method=\"fast-topk\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE tsb_queue_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("tsb_queue_depth 5"), std::string::npos);
  // Summaries expand to quantile-labelled samples plus _count and _sum.
  EXPECT_NE(text.find("tsb_latency_seconds{quantile=\"0.5\"} 0.001"),
            std::string::npos);
  EXPECT_NE(text.find("tsb_latency_seconds{quantile=\"0.99\"} 0.009"),
            std::string::npos);
  EXPECT_NE(text.find("tsb_latency_seconds_count 100"), std::string::npos);
  EXPECT_NE(text.find("tsb_latency_seconds_sum 0.2"), std::string::npos);

  registry.Unregister(&source);
  EXPECT_EQ(registry.num_sources(), 0u);
  EXPECT_EQ(registry.RenderPrometheus(), "");
}

TEST(MetricsRegistryTest, EscapesLabelValues) {
  obs::CallbackSource source([](obs::MetricsSink* sink) {
    sink->Gauge("tsb_gauge", "h", {{"path", "a\"b\\c\nd"}}, 1);
  });
  obs::MetricsRegistry registry;
  registry.Register(&source);
  const std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("path=\"a\\\"b\\\\c\\nd\""), std::string::npos)
      << text;
}

TEST(MetricsRegistryTest, DoubleRegisterIsIdempotent) {
  obs::CallbackSource source([](obs::MetricsSink* sink) {
    sink->Counter("tsb_once_total", "h", {}, 1);
  });
  obs::MetricsRegistry registry;
  registry.Register(&source);
  registry.Register(&source);
  EXPECT_EQ(registry.num_sources(), 1u);
  const std::string text = registry.RenderPrometheus();
  // The sample appears once, not twice.
  EXPECT_EQ(text.find("tsb_once_total 1"), text.rfind("tsb_once_total 1"));
  registry.Register(nullptr);  // No-op.
  EXPECT_EQ(registry.num_sources(), 1u);
}

TEST(MetricsRegistryTest, RendersJsonWithSummaryObjects) {
  obs::CallbackSource source([](obs::MetricsSink* sink) {
    sink->Counter("tsb_c", "h", {{"k", "v"}}, 2);
    obs::SummaryValue latency;
    latency.count = 4;
    latency.p99 = 0.5;
    sink->Summary("tsb_s", "h", {}, latency);
  });
  obs::MetricsRegistry registry;
  registry.Register(&source);
  const std::string json = registry.RenderJson();
  EXPECT_NE(json.find("{\"name\":\"tsb_c\",\"type\":\"counter\","
                      "\"labels\":{\"k\":\"v\"},\"value\":2}"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"p99\":0.5"), std::string::npos);
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json[json.size() - 2], ']');
}

// ---------------------------------------------------------------------------
// SlowQueryLog
// ---------------------------------------------------------------------------

TEST(SlowQueryLogTest, DisabledAtZeroThreshold) {
  obs::SlowQueryLog log;
  EXPECT_FALSE(log.enabled());
  EXPECT_DOUBLE_EQ(log.threshold_seconds(), 0.0);
}

TEST(SlowQueryLogTest, RingEvictsOldestFirst) {
  obs::SlowQueryConfig config;
  config.threshold_seconds = 0.001;
  config.capacity = 2;
  obs::SlowQueryLog log(config);
  EXPECT_TRUE(log.enabled());
  for (int i = 0; i < 3; ++i) {
    obs::SlowQueryRecord record;
    record.request = "TOPK set1=Protein set2=DNA k=" + std::to_string(i);
    record.service_seconds = 0.01 * (i + 1);
    log.Record(std::move(record));
  }
  auto recent = log.Recent();
  ASSERT_EQ(recent.size(), 2u);
  EXPECT_NE(recent[0].request.find("k=1"), std::string::npos);
  EXPECT_NE(recent[1].request.find("k=2"), std::string::npos);
  EXPECT_EQ(log.total_recorded(), 3u);
}

TEST(SlowQueryLogTest, ToStringCarriesTheStructuredFields) {
  obs::SlowQueryLog log(obs::SlowQueryConfig{0.001, 8});
  obs::SlowQueryRecord record;
  record.service_seconds = 0.25;
  record.queue_seconds = 0.01;
  record.request = "TOPK set1=Protein set2=DNA";
  record.method = "full-topk";
  record.plan = "scan | merge";
  record.rows_scanned = 1000;
  record.trace_id = 0xabcdef;
  record.span_tree = "root  250.000ms\n";
  log.Record(record);
  const std::string text = log.ToString();
  EXPECT_NE(text.find("TOPK set1=Protein set2=DNA"), std::string::npos);
  EXPECT_NE(text.find("full-topk"), std::string::npos);
  EXPECT_NE(text.find("scan | merge"), std::string::npos);
  EXPECT_NE(text.find("root  250.000ms"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Admin channel: codecs and handler
// ---------------------------------------------------------------------------

TEST(AdminCodecTest, RequestRoundTripsEveryCommand) {
  for (uint8_t c = 0; c <= wire::kMaxAdminCommand; ++c) {
    wire::AdminRequest request;
    request.command = static_cast<wire::AdminCommand>(c);
    std::string frame;
    wire::EncodeAdminRequest(request, &frame);
    auto kind = wire::PeekMessageKind(frame);
    ASSERT_TRUE(kind.ok());
    EXPECT_EQ(*kind, wire::MessageKind::kAdminRequest);
    auto decoded = wire::DecodeAdminRequest(frame);
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    EXPECT_EQ(decoded->command, request.command);
    std::string again;
    wire::EncodeAdminRequest(*decoded, &again);
    EXPECT_EQ(frame, again);
  }
}

TEST(AdminCodecTest, ResponseRoundTripsBodyAndError) {
  wire::AdminResponse response;
  response.body = "# HELP tsb_x h\ntsb_x 1\n";
  std::string frame;
  wire::EncodeAdminResponse(response, &frame);
  auto decoded = wire::DecodeAdminResponse(frame);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->error.ok());
  EXPECT_EQ(decoded->body, response.body);

  wire::AdminResponse failed;
  failed.error = wire::WireError{wire::WireErrorCode::kInvalidRequest,
                                 "unknown admin command"};
  frame.clear();
  wire::EncodeAdminResponse(failed, &frame);
  decoded = wire::DecodeAdminResponse(frame);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->error.code, wire::WireErrorCode::kInvalidRequest);
  EXPECT_EQ(decoded->error.message, "unknown admin command");
}

TEST(AdminCodecTest, CommandNamesRoundTrip) {
  for (uint8_t c = 0; c <= wire::kMaxAdminCommand; ++c) {
    const auto command = static_cast<wire::AdminCommand>(c);
    wire::AdminCommand parsed;
    ASSERT_TRUE(
        wire::ParseAdminCommand(wire::AdminCommandToString(command), &parsed))
        << wire::AdminCommandToString(command);
    EXPECT_EQ(parsed, command);
  }
  wire::AdminCommand ignored;
  EXPECT_FALSE(wire::ParseAdminCommand("warp9", &ignored));
  EXPECT_FALSE(wire::ParseAdminCommand("", &ignored));
}

TEST(AdminHandlerTest, PingAnswersEvenWithNoSurfaces) {
  obs::AdminState state;  // All members null.
  wire::AdminRequest request;
  request.command = wire::AdminCommand::kPing;
  wire::AdminResponse response = obs::HandleAdmin(state, request);
  EXPECT_TRUE(response.error.ok());
  EXPECT_EQ(response.body, "pong");

  // Absent surfaces answer with an empty body, never an error.
  for (uint8_t c = 1; c <= wire::kMaxAdminCommand; ++c) {
    request.command = static_cast<wire::AdminCommand>(c);
    response = obs::HandleAdmin(state, request);
    EXPECT_TRUE(response.error.ok()) << static_cast<int>(c);
    EXPECT_EQ(response.body, "") << static_cast<int>(c);
  }
}

TEST(AdminHandlerTest, ServesMetricsTracesAndSlowLog) {
  obs::CallbackSource source([](obs::MetricsSink* sink) {
    sink->Counter("tsb_admin_test_total", "h", {}, 9);
  });
  obs::MetricsRegistry registry;
  registry.Register(&source);

  obs::TracerConfig tracer_config;
  tracer_config.sample_every = 1;
  obs::Tracer tracer(tracer_config);
  auto trace = tracer.StartTrace("q");
  trace->Finish(0.001);
  tracer.Record(trace);

  obs::SlowQueryLog slow_log(obs::SlowQueryConfig{0.001, 8});
  obs::SlowQueryRecord record;
  record.request = "TOPK set1=Protein set2=DNA";
  slow_log.Record(record);

  obs::AdminState state;
  state.registry = &registry;
  state.tracer = &tracer;
  state.slow_log = &slow_log;
  state.text_renderer = []() { return "human tables"; };

  wire::AdminRequest request;
  request.command = wire::AdminCommand::kMetricsPrometheus;
  EXPECT_NE(obs::HandleAdmin(state, request).body.find(
                "tsb_admin_test_total 9"),
            std::string::npos);
  request.command = wire::AdminCommand::kMetricsJson;
  EXPECT_NE(obs::HandleAdmin(state, request).body.find(
                "\"tsb_admin_test_total\""),
            std::string::npos);
  request.command = wire::AdminCommand::kMetricsText;
  EXPECT_EQ(obs::HandleAdmin(state, request).body, "human tables");
  request.command = wire::AdminCommand::kTraces;
  EXPECT_NE(obs::HandleAdmin(state, request).body.find("trace "),
            std::string::npos);
  request.command = wire::AdminCommand::kSlowQueries;
  EXPECT_NE(obs::HandleAdmin(state, request).body.find(
                "TOPK set1=Protein set2=DNA"),
            std::string::npos);
}

TEST(AdminHandlerTest, FrameEntryPointAnswersInBandOnGarbage) {
  obs::AdminState state;
  // A valid round-trip.
  wire::AdminRequest request;
  request.command = wire::AdminCommand::kPing;
  std::string frame;
  wire::EncodeAdminRequest(request, &frame);
  auto response = wire::DecodeAdminResponse(obs::HandleAdminFrame(state, frame));
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->body, "pong");

  // Garbage still yields a decodable error response — the server can
  // always answer in-band instead of dropping the connection.
  response = wire::DecodeAdminResponse(obs::HandleAdminFrame(state, "junk"));
  ASSERT_TRUE(response.ok());
  EXPECT_FALSE(response->error.ok());
}

// ---------------------------------------------------------------------------
// CostTracker
// ---------------------------------------------------------------------------

TEST(CostTrackerTest, SectionDrainsOnlyItsOwnCharges) {
  ASSERT_TRUE(obs::CostTracker::enabled());

  obs::CostTracker::Section outer;
  obs::CostTracker::ChargeBytesDeserialized(100);
  obs::CostTracker::ChargeCatalogInterns(2);

  {
    obs::CostTracker::Section inner;
    obs::CostTracker::ChargeBytesDeserialized(30);
    obs::CostTracker::ChargeHeapBytes(64);
    obs::CostCounters bill = inner.Drain();
    EXPECT_EQ(bill.bytes_deserialized, 30u);
    EXPECT_EQ(bill.heap_bytes, 64u);
    EXPECT_EQ(bill.catalog_interns, 0u);
  }

  // The outer section bills only what was charged outside the inner one —
  // the inner Drain rewound its charges off the thread counters.
  obs::CostCounters bill = outer.Drain();
  EXPECT_EQ(bill.bytes_deserialized, 100u);
  EXPECT_EQ(bill.catalog_interns, 2u);
  EXPECT_EQ(bill.heap_bytes, 0u);

  // Drain is idempotent: a second call returns only post-drain charges.
  obs::CostCounters again = outer.Drain();
  EXPECT_EQ(again.bytes_deserialized, 0u);
  EXPECT_EQ(again.catalog_interns, 0u);
}

TEST(CostTrackerTest, DisabledTrackerDropsChargesAndDrainsZero) {
  obs::CostTracker::set_enabled(false);
  obs::CostTracker::Section section;
  obs::CostTracker::ChargeBytesDeserialized(1000);
  obs::CostTracker::ChargeCatalogInterns(5);
  obs::CostTracker::ChargeHeapBytes(4096);
  const obs::CostCounters bill = section.Drain();
  obs::CostTracker::set_enabled(true);
  EXPECT_TRUE(bill.IsZero());
}

// ---------------------------------------------------------------------------
// LatencyHistogram
// ---------------------------------------------------------------------------

// Deterministic stream generator (SplitMix64): tests must not depend on
// random_device, and the same stream must be reproducible on failure.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Latencies spread over ~6 decades (0.1µs .. 0.1s) so the stream exercises
// many distinct buckets including sub-first-bound values.
double LatencyAt(uint64_t* state) {
  const double u =
      static_cast<double>(SplitMix64(state) >> 11) / 9007199254740992.0;
  return 1e-7 * std::pow(10.0, 6.0 * u);
}

TEST(LatencyHistogramTest, CountsSumsAndBucketResolutionQuantiles) {
  obs::LatencyHistogram hist;
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_DOUBLE_EQ(hist.Quantile(0.5), 0.0);  // Empty: 0, not NaN.

  hist.Record(0.0005);
  hist.Record(0.0005);
  hist.Record(0.0005);
  hist.Record(0.010);
  EXPECT_EQ(hist.count(), 4u);
  EXPECT_DOUBLE_EQ(hist.sum(), 0.0115);
  EXPECT_DOUBLE_EQ(hist.max(), 0.010);

  // Quantiles are the upper bound of the bucket holding the rank: p50 sits
  // in the 0.5ms bucket, p99 in the 10ms bucket, never below the sample.
  EXPECT_GE(hist.Quantile(0.5), 0.0005);
  EXPECT_LT(hist.Quantile(0.5), 0.0007);
  EXPECT_GE(hist.Quantile(0.99), 0.010);
  EXPECT_LT(hist.Quantile(0.99), 0.013);
}

TEST(LatencyHistogramTest, OverflowBucketResolvesToExactMax) {
  obs::LatencyHistogram hist;
  hist.Record(1e-3);
  hist.Record(1e7);  // Far past the last finite bound (~4295s).
  EXPECT_EQ(hist.buckets()[obs::LatencyHistogram::kNumBuckets], 1u);
  EXPECT_DOUBLE_EQ(hist.Quantile(1.0), 1e7);
}

TEST(LatencyHistogramTest, MergeEqualsRecordingTheUnionStream) {
  // The tentpole's correctness claim: per-process histograms merged at the
  // topctl side must be bucket-for-bucket identical to one histogram that
  // saw the union stream — which makes every derived quantile identical
  // too. Exercise it over a deterministic 1000-sample stream split 4 ways.
  uint64_t state = 0x1234abcdULL;
  std::vector<double> stream;
  for (int i = 0; i < 1000; ++i) stream.push_back(LatencyAt(&state));

  obs::LatencyHistogram union_hist;
  obs::LatencyHistogram parts[4];
  for (size_t i = 0; i < stream.size(); ++i) {
    union_hist.Record(stream[i]);
    parts[i % 4].Record(stream[i]);
  }

  // Merge in two different orders; both must equal the union histogram.
  obs::LatencyHistogram forward;
  for (const auto& part : parts) forward.Merge(part);
  obs::LatencyHistogram backward;
  for (int i = 3; i >= 0; --i) backward.Merge(parts[i]);

  EXPECT_TRUE(forward == union_hist);
  EXPECT_TRUE(backward == union_hist);
  EXPECT_EQ(forward.count(), union_hist.count());
  for (const double q : {0.0, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0}) {
    EXPECT_EQ(forward.Quantile(q), union_hist.Quantile(q)) << q;
    EXPECT_EQ(backward.Quantile(q), union_hist.Quantile(q)) << q;
  }
}

TEST(LatencyHistogramTest, MergeIsAssociative) {
  uint64_t state = 0xfeedULL;
  obs::LatencyHistogram a, b, c;
  for (int i = 0; i < 200; ++i) a.Record(LatencyAt(&state));
  for (int i = 0; i < 150; ++i) b.Record(LatencyAt(&state));
  for (int i = 0; i < 250; ++i) c.Record(LatencyAt(&state));

  obs::LatencyHistogram left = a;   // (a + b) + c
  left.Merge(b);
  left.Merge(c);
  obs::LatencyHistogram bc = b;     // a + (b + c)
  bc.Merge(c);
  obs::LatencyHistogram right = a;
  right.Merge(bc);

  EXPECT_TRUE(left == right);
  EXPECT_EQ(left.count(), 600u);
  EXPECT_EQ(left.buckets(), right.buckets());
}

TEST(LatencyHistogramTest, CumulativeBucketsEndAtInfinityWithTotalCount) {
  obs::LatencyHistogram hist;
  hist.Record(2e-6);
  hist.Record(3e-3);
  hist.Record(3e-3);
  const auto cumulative = hist.CumulativeBuckets();
  ASSERT_GE(cumulative.size(), 2u);
  // Running counts are nondecreasing and the +Inf entry closes at count.
  for (size_t i = 1; i < cumulative.size(); ++i) {
    EXPECT_LE(cumulative[i - 1].second, cumulative[i].second);
    EXPECT_LT(cumulative[i - 1].first, cumulative[i].first);
  }
  EXPECT_TRUE(std::isinf(cumulative.back().first));
  EXPECT_EQ(cumulative.back().second, 3u);
}

TEST(LatencyHistogramTest, CodecRoundTripsAndRejectsEveryTruncation) {
  uint64_t state = 0xc0ffeeULL;
  obs::LatencyHistogram hist;
  for (int i = 0; i < 300; ++i) hist.Record(LatencyAt(&state));
  hist.Record(1e7);  // Populate the overflow bucket too.

  std::string bytes;
  hist.EncodeTo(&bytes);
  BinaryReader in(bytes);
  auto decoded = obs::LatencyHistogram::DecodeFrom(&in);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_TRUE(in.AtEnd());
  EXPECT_TRUE(*decoded == hist);
  EXPECT_DOUBLE_EQ(decoded->sum(), hist.sum());
  EXPECT_DOUBLE_EQ(decoded->max(), hist.max());

  // Re-encode is byte-identical (the sparse layout is canonical).
  std::string again;
  decoded->EncodeTo(&again);
  EXPECT_EQ(bytes, again);

  for (size_t len = 0; len < bytes.size(); ++len) {
    BinaryReader truncated(std::string_view(bytes).substr(0, len));
    EXPECT_FALSE(obs::LatencyHistogram::DecodeFrom(&truncated).ok()) << len;
  }
}

TEST(LatencyHistogramTest, DecodeRejectsMalformedBucketLists) {
  // Bucket counts that do not sum to the header count.
  std::string bytes;
  PutU64(&bytes, 10);  // count claims 10...
  PutF64(&bytes, 1.0);
  PutF64(&bytes, 0.5);
  PutU32(&bytes, 1);
  PutU16(&bytes, 3);
  PutU64(&bytes, 7);  // ...but the only bucket holds 7.
  BinaryReader in(bytes);
  EXPECT_FALSE(obs::LatencyHistogram::DecodeFrom(&in).ok());

  // Out-of-order bucket indexes.
  bytes.clear();
  PutU64(&bytes, 4);
  PutF64(&bytes, 1.0);
  PutF64(&bytes, 0.5);
  PutU32(&bytes, 2);
  PutU16(&bytes, 9);
  PutU64(&bytes, 2);
  PutU16(&bytes, 4);  // Decreasing index: invalid.
  PutU64(&bytes, 2);
  BinaryReader in2(bytes);
  EXPECT_FALSE(obs::LatencyHistogram::DecodeFrom(&in2).ok());

  // Index beyond the overflow bucket.
  bytes.clear();
  PutU64(&bytes, 1);
  PutF64(&bytes, 1.0);
  PutF64(&bytes, 0.5);
  PutU32(&bytes, 1);
  PutU16(&bytes, obs::LatencyHistogram::kNumBuckets + 1);
  PutU64(&bytes, 1);
  BinaryReader in3(bytes);
  EXPECT_FALSE(obs::LatencyHistogram::DecodeFrom(&in3).ok());
}

// ---------------------------------------------------------------------------
// Span cpu attribution (wire v6 piggyback, v5 downgrade)
// ---------------------------------------------------------------------------

TEST(SpanCodecTest, CpuFieldRoundTripsThroughTheSpanCodec) {
  std::vector<obs::Span> spans(1);
  spans[0].name = "shard.exec";
  spans[0].cpu_ns = 1234567890ULL;
  std::string bytes;
  obs::EncodeSpans(spans, &bytes);
  BinaryReader in(bytes);
  std::vector<obs::Span> decoded;
  ASSERT_TRUE(obs::DecodeSpans(&in, &decoded).ok());
  ASSERT_EQ(decoded.size(), 1u);
  EXPECT_EQ(decoded[0].cpu_ns, 1234567890ULL);
}

TEST(SpanCodecTest, WithCpuFalseDecodesPreV6SpanRecords) {
  // A v4/v5 frame's span record ends at the duration; the decoder must
  // consume exactly that and report cpu_ns = 0.
  std::string bytes;
  PutU32(&bytes, 1);
  PutU64(&bytes, 11);   // span_id
  PutU64(&bytes, 0);    // parent
  PutString(&bytes, "execute");
  PutString(&bytes, "ok=1");
  PutF64(&bytes, 1723100000.0);
  PutF64(&bytes, 0.125);
  BinaryReader in(bytes);
  std::vector<obs::Span> decoded;
  ASSERT_TRUE(obs::DecodeSpans(&in, &decoded, /*with_cpu=*/false).ok());
  EXPECT_TRUE(in.AtEnd());
  ASSERT_EQ(decoded.size(), 1u);
  EXPECT_EQ(decoded[0].name, "execute");
  EXPECT_EQ(decoded[0].cpu_ns, 0u);

  // The same body at v6 framing is short by the cpu field and must fail.
  BinaryReader in_v6(bytes);
  std::vector<obs::Span> rejected;
  EXPECT_FALSE(obs::DecodeSpans(&in_v6, &rejected, /*with_cpu=*/true).ok());
}

TEST(FormatSpanTreeTest, CpuAttributionRendersWhenPresent) {
  std::vector<obs::Span> spans(1);
  spans[0].span_id = 1;
  spans[0].name = "execute";
  spans[0].duration_seconds = 0.010;
  spans[0].cpu_ns = 4250000;  // 4.25ms of CPU inside 10ms of wall.
  const std::string tree = obs::FormatSpanTree(spans);
  EXPECT_NE(tree.find("cpu 4.250ms"), std::string::npos) << tree;
}

// ---------------------------------------------------------------------------
// FleetSnapshot: codec, merge semantics, rendering
// ---------------------------------------------------------------------------

obs::FleetSnapshot MakeSnapshot(uint64_t seed, uint64_t shard0_rows) {
  uint64_t state = seed;
  obs::FleetSnapshot snap;
  obs::FleetMethodStats method;
  method.method = "full-topk";
  method.requests = 100 + seed;
  method.cache_hits = 40;
  method.errors = 1;
  for (int i = 0; i < 50; ++i) method.latency.Record(LatencyAt(&state));
  method.cost.cpu_ns = 5000000 * (seed + 1);
  method.cost.bytes_deserialized = 1 << 20;
  method.cost.catalog_interns = 12;
  method.cost.heap_bytes = 1 << 16;
  snap.methods.push_back(std::move(method));
  snap.total_requests = 100 + seed;
  snap.total_cache_hits = 40;
  snap.total_errors = 1;
  snap.total_rejected = 2;
  snap.scan_rows = 5000;
  snap.scan_blocks_total = 80;
  snap.scan_blocks_skipped = 30;
  snap.shard_rows = {shard0_rows, 900};
  snap.mutation_batches = 3;
  snap.mutation_ops = 17;
  snap.wal_records = 3;
  snap.wal_bytes = 4096;
  obs::FleetTopQuery query;
  query.request = "TOPK set1=Protein set2=DNA k=10";
  query.method = "full-topk";
  query.service_seconds = 0.25;
  query.cpu_ns = 1000000 * (seed + 1);
  query.bytes = 65536;
  snap.top_queries.push_back(std::move(query));
  return snap;
}

TEST(FleetSnapshotTest, CodecRoundTripsEveryField) {
  obs::FleetSnapshot snap = MakeSnapshot(/*seed=*/1, /*shard0_rows=*/1000);
  snap.hedges_launched = 4;
  snap.failovers = 2;
  snap.exhausted = 1;
  snap.overlay_generations = 2;
  snap.compaction_folds = 1;

  std::string bytes;
  obs::EncodeFleetSnapshot(snap, &bytes);
  auto decoded = obs::DecodeFleetSnapshot(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status();

  EXPECT_EQ(decoded->processes, 1u);
  ASSERT_EQ(decoded->methods.size(), 1u);
  EXPECT_EQ(decoded->methods[0].method, "full-topk");
  EXPECT_EQ(decoded->methods[0].requests, snap.methods[0].requests);
  EXPECT_TRUE(decoded->methods[0].latency == snap.methods[0].latency);
  EXPECT_EQ(decoded->methods[0].cost.cpu_ns, snap.methods[0].cost.cpu_ns);
  EXPECT_EQ(decoded->methods[0].cost.heap_bytes,
            snap.methods[0].cost.heap_bytes);
  EXPECT_EQ(decoded->total_requests, snap.total_requests);
  EXPECT_EQ(decoded->total_rejected, snap.total_rejected);
  EXPECT_EQ(decoded->scan_blocks_skipped, snap.scan_blocks_skipped);
  EXPECT_EQ(decoded->shard_rows, snap.shard_rows);
  EXPECT_EQ(decoded->hedges_launched, 4u);
  EXPECT_EQ(decoded->failovers, 2u);
  EXPECT_EQ(decoded->exhausted, 1u);
  EXPECT_EQ(decoded->mutation_batches, snap.mutation_batches);
  EXPECT_EQ(decoded->mutation_ops, snap.mutation_ops);
  EXPECT_EQ(decoded->overlay_generations, 2u);
  EXPECT_EQ(decoded->compaction_folds, 1u);
  EXPECT_EQ(decoded->wal_records, snap.wal_records);
  EXPECT_EQ(decoded->wal_bytes, snap.wal_bytes);
  ASSERT_EQ(decoded->top_queries.size(), 1u);
  EXPECT_EQ(decoded->top_queries[0].request, snap.top_queries[0].request);
  EXPECT_EQ(decoded->top_queries[0].cpu_ns, snap.top_queries[0].cpu_ns);

  // Re-encode of the decoded snapshot is byte-identical: the encoding is
  // canonical, so snapshots can be compared as strings.
  std::string again;
  obs::EncodeFleetSnapshot(*decoded, &again);
  EXPECT_EQ(bytes, again);
}

TEST(FleetSnapshotTest, DecodeRejectsTruncationAndTrailingGarbage) {
  obs::FleetSnapshot snap = MakeSnapshot(/*seed=*/2, /*shard0_rows=*/10);
  std::string bytes;
  obs::EncodeFleetSnapshot(snap, &bytes);

  for (size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_FALSE(
        obs::DecodeFleetSnapshot(std::string_view(bytes).substr(0, len)).ok())
        << len;
  }
  EXPECT_FALSE(obs::DecodeFleetSnapshot(bytes + "x").ok());
}

TEST(FleetSnapshotTest, MergeSumsCountersAndMaxesShardRows) {
  obs::FleetSnapshot a = MakeSnapshot(/*seed=*/0, /*shard0_rows=*/1000);
  obs::FleetSnapshot b = MakeSnapshot(/*seed=*/5, /*shard0_rows=*/800);
  b.shard_rows.push_back(300);  // b knows one more shard than a.

  obs::LatencyHistogram union_latency = a.methods[0].latency;
  union_latency.Merge(b.methods[0].latency);

  obs::FleetSnapshot merged = a;
  merged.Merge(b);

  EXPECT_EQ(merged.processes, 2u);
  ASSERT_EQ(merged.methods.size(), 1u);  // Same method name: one row.
  EXPECT_EQ(merged.methods[0].requests,
            a.methods[0].requests + b.methods[0].requests);
  EXPECT_EQ(merged.methods[0].cost.cpu_ns,
            a.methods[0].cost.cpu_ns + b.methods[0].cost.cpu_ns);
  EXPECT_TRUE(merged.methods[0].latency == union_latency);
  EXPECT_EQ(merged.total_requests, a.total_requests + b.total_requests);
  // Replicas of the same shard: elementwise max, never a double count.
  ASSERT_EQ(merged.shard_rows.size(), 3u);
  EXPECT_EQ(merged.shard_rows[0], 1000u);
  EXPECT_EQ(merged.shard_rows[1], 900u);
  EXPECT_EQ(merged.shard_rows[2], 300u);
  EXPECT_EQ(merged.mutation_ops, a.mutation_ops + b.mutation_ops);
  EXPECT_EQ(merged.wal_bytes, a.wal_bytes + b.wal_bytes);
}

TEST(FleetSnapshotTest, NormalizeRanksTopQueriesByScoreAndCaps) {
  obs::FleetSnapshot snap;
  for (uint64_t i = 0; i < obs::FleetSnapshot::kMaxTopQueries + 4; ++i) {
    obs::FleetTopQuery query;
    query.request = "q" + std::to_string(i);
    query.method = "full-topk";
    query.cpu_ns = 1000 * (i + 1);  // Score grows with i.
    query.bytes = 10;
    snap.top_queries.push_back(std::move(query));
  }
  snap.Normalize();
  ASSERT_EQ(snap.top_queries.size(), obs::FleetSnapshot::kMaxTopQueries);
  for (size_t i = 1; i < snap.top_queries.size(); ++i) {
    EXPECT_GE(snap.top_queries[i - 1].Score(), snap.top_queries[i].Score());
  }
  // The cheapest entries fell off the back.
  EXPECT_EQ(snap.top_queries.front().request, "q11");
  EXPECT_EQ(snap.top_queries.back().request, "q4");
}

TEST(FleetSnapshotTest, MergeIsOrderIndependentAfterEncoding) {
  // topctl polls endpoints in whatever order the flag listed them; the
  // rendered dashboard must not depend on it. Canonical encodings of the
  // two merge orders must be byte-identical.
  obs::FleetSnapshot a = MakeSnapshot(/*seed=*/3, /*shard0_rows=*/500);
  obs::FleetSnapshot b = MakeSnapshot(/*seed=*/8, /*shard0_rows=*/700);
  obs::FleetMethodStats fast;
  fast.method = "fast-topk";
  fast.requests = 9;
  fast.latency.Record(1e-3);
  b.methods.push_back(std::move(fast));

  obs::FleetSnapshot ab = a;
  ab.Merge(b);
  obs::FleetSnapshot ba = b;
  ba.Merge(a);

  std::string ab_bytes, ba_bytes;
  obs::EncodeFleetSnapshot(ab, &ab_bytes);
  obs::EncodeFleetSnapshot(ba, &ba_bytes);
  EXPECT_EQ(ab_bytes, ba_bytes);
  EXPECT_EQ(ab.Render(), ba.Render());
}

TEST(FleetSnapshotTest, RenderShowsTheDashboardSections) {
  obs::FleetSnapshot a = MakeSnapshot(/*seed=*/1, /*shard0_rows=*/1200);
  obs::FleetSnapshot merged = a;
  merged.Merge(MakeSnapshot(/*seed=*/2, /*shard0_rows=*/1100));
  const std::string text = merged.Render();
  EXPECT_NE(text.find("fleet cost snapshot (2 processes)"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("full-topk"), std::string::npos);
  EXPECT_NE(text.find("zone-skipped"), std::string::npos);
  EXPECT_NE(text.find("s0=1200"), std::string::npos) << text;
  EXPECT_NE(text.find("mutation: batches 6"), std::string::npos) << text;
  EXPECT_NE(text.find("top-cost queries"), std::string::npos);
}

// ---------------------------------------------------------------------------
// MetricsRegistry: histogram families
// ---------------------------------------------------------------------------

TEST(MetricsRegistryTest, RendersHistogramBucketFamilies) {
  obs::CallbackSource source([](obs::MetricsSink* sink) {
    obs::HistogramValue value;
    value.count = 7;
    value.sum = 0.042;
    value.buckets = {{0.001, 3}, {0.004, 6},
                     {std::numeric_limits<double>::infinity(), 7}};
    sink->Histogram("tsb_latency_hist_seconds", "Latency histogram.",
                    {{"method", "full-topk"}}, value);
  });
  obs::MetricsRegistry registry;
  registry.Register(&source);

  const std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("# TYPE tsb_latency_hist_seconds histogram"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("tsb_latency_hist_seconds_bucket{method=\"full-topk\","
                      "le=\"0.001\"} 3"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("tsb_latency_hist_seconds_bucket{method=\"full-topk\","
                      "le=\"+Inf\"} 7"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("tsb_latency_hist_seconds_count{method=\"full-topk\"}"
                      " 7"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("tsb_latency_hist_seconds_sum{method=\"full-topk\"} "
                      "0.042"),
            std::string::npos)
      << text;

  const std::string json = registry.RenderJson();
  EXPECT_NE(json.find("\"type\":\"histogram\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"buckets\":[[\"0.001\",3],[\"0.004\",6],"
                      "[\"+Inf\",7]]"),
            std::string::npos)
      << json;
}

// ---------------------------------------------------------------------------
// Admin channel: cost snapshot
// ---------------------------------------------------------------------------

TEST(AdminHandlerTest, CostSnapshotStreamsADecodableFleetSnapshot) {
  obs::AdminState state;
  state.cost_snapshot = []() {
    return MakeSnapshot(/*seed=*/4, /*shard0_rows=*/4242);
  };
  wire::AdminRequest request;
  request.command = wire::AdminCommand::kCostSnapshot;
  wire::AdminResponse response = obs::HandleAdmin(state, request);
  ASSERT_TRUE(response.error.ok());
  auto decoded = obs::DecodeFleetSnapshot(response.body);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->shard_rows[0], 4242u);
  ASSERT_EQ(decoded->methods.size(), 1u);
  EXPECT_EQ(decoded->methods[0].method, "full-topk");
  EXPECT_EQ(decoded->total_requests, 104u);

  // The full frame path works too: encode the request, hand the raw frame
  // to HandleAdminFrame, decode the response envelope and then the body.
  std::string frame;
  wire::EncodeAdminRequest(request, &frame);
  auto envelope =
      wire::DecodeAdminResponse(obs::HandleAdminFrame(state, frame));
  ASSERT_TRUE(envelope.ok());
  ASSERT_TRUE(envelope->error.ok());
  EXPECT_EQ(envelope->body, response.body);
}

}  // namespace
}  // namespace tsb
