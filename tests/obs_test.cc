// The observability subsystem (src/obs/): trace ids and span trees, the
// sampling tracer, the span-list wire codec and its corruption handling,
// the unified MetricsRegistry renderings (Prometheus text exposition and
// JSON), the slow-query ring, and the admin channel both at the struct
// level (HandleAdmin) and the frame level (HandleAdminFrame + codecs).

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/binary_io.h"
#include "obs/admin.h"
#include "obs/registry.h"
#include "obs/slow_log.h"
#include "obs/trace.h"
#include "wire/codec.h"
#include "wire/message.h"

namespace tsb {
namespace {

// ---------------------------------------------------------------------------
// Ids and QueryTrace
// ---------------------------------------------------------------------------

TEST(TraceIdTest, IdsAreNonZeroAndDistinct) {
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t trace_id = obs::NewTraceId();
    const uint64_t span_id = obs::NewSpanId();
    EXPECT_NE(trace_id, 0u);
    EXPECT_NE(span_id, 0u);
    seen.insert(trace_id);
    seen.insert(span_id);
  }
  EXPECT_EQ(seen.size(), 2000u);
}

TEST(QueryTraceTest, RootFirstSpansAndFinishSetsRootDuration) {
  obs::QueryTrace trace(obs::NewTraceId(), "service.query");
  EXPECT_EQ(trace.size(), 1u);

  const uint64_t child =
      trace.AddSpan("execute", trace.root_span_id(), 1.0, 0.5, "ok=1");
  EXPECT_NE(child, 0u);
  trace.Finish(2.5);

  std::vector<obs::Span> spans = trace.Spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].span_id, trace.root_span_id());
  EXPECT_EQ(spans[0].name, "service.query");
  EXPECT_DOUBLE_EQ(spans[0].duration_seconds, 2.5);
  EXPECT_EQ(spans[1].span_id, child);
  EXPECT_EQ(spans[1].parent_span_id, trace.root_span_id());
  EXPECT_EQ(spans[1].tags, "ok=1");
}

TEST(QueryTraceTest, ContextUnderCarriesTraceIdAndParent) {
  obs::QueryTrace trace(42, "root");
  const uint64_t rpc_span = obs::NewSpanId();
  obs::TraceContext context = trace.ContextUnder(rpc_span);
  EXPECT_TRUE(context.active());
  EXPECT_EQ(context.trace_id, 42u);
  EXPECT_EQ(context.parent_span_id, rpc_span);
}

TEST(QueryTraceTest, AbsorbAndPreAllocatedIdsLinkCrossProcessSpans) {
  // The scatter pattern: the rpc span id is drawn before the sub-request
  // ships, the shard parents its spans under that id, and the rpc span
  // itself is recorded after the response returns.
  obs::QueryTrace trace(obs::NewTraceId(), "root");
  const uint64_t rpc_span_id = obs::NewSpanId();

  obs::Span shard_span;
  shard_span.span_id = obs::NewSpanId();
  shard_span.parent_span_id = rpc_span_id;
  shard_span.name = "shard.exec";
  trace.Absorb({shard_span});

  obs::Span rpc;
  rpc.span_id = rpc_span_id;
  rpc.parent_span_id = trace.root_span_id();
  rpc.name = "rpc";
  trace.AddSpanWithId(rpc);

  // The tree renders the shard span under the rpc span even though the
  // parent arrived after the child: root (depth 0) -> rpc (depth 1) ->
  // shard.exec (depth 2).
  const std::string tree = obs::FormatSpanTree(trace.Spans());
  EXPECT_NE(tree.find("\n  rpc"), std::string::npos) << tree;
  EXPECT_NE(tree.find("\n    shard.exec"), std::string::npos) << tree;
}

TEST(FormatSpanTreeTest, NestsChildrenAndKeepsOrphansVisible) {
  std::vector<obs::Span> spans;
  obs::Span root;
  root.span_id = 1;
  root.name = "root";
  spans.push_back(root);
  obs::Span child;
  child.span_id = 2;
  child.parent_span_id = 1;
  child.name = "child";
  child.tags = "k=v";
  spans.push_back(child);
  obs::Span grandchild;
  grandchild.span_id = 3;
  grandchild.parent_span_id = 2;
  grandchild.name = "grandchild";
  spans.push_back(grandchild);
  obs::Span orphan;
  orphan.span_id = 4;
  orphan.parent_span_id = 999;  // Unknown parent: renders at root level.
  orphan.name = "orphan";
  spans.push_back(orphan);

  const std::string tree = obs::FormatSpanTree(spans);
  EXPECT_NE(tree.find("root"), std::string::npos);
  EXPECT_NE(tree.find("  child"), std::string::npos) << tree;
  EXPECT_NE(tree.find("    grandchild"), std::string::npos) << tree;
  EXPECT_NE(tree.find("[k=v]"), std::string::npos) << tree;
  EXPECT_NE(tree.find("\norphan"), std::string::npos) << tree;
  // Every span printed exactly once.
  EXPECT_EQ(std::count(tree.begin(), tree.end(), '\n'), 4);
}

// ---------------------------------------------------------------------------
// Tracer sampling
// ---------------------------------------------------------------------------

TEST(TracerTest, SampleEveryZeroDisablesLocalSampling) {
  obs::Tracer tracer;  // Default sample_every = 0.
  EXPECT_EQ(tracer.StartTrace("q"), nullptr);
  EXPECT_EQ(tracer.traces_started(), 0u);
}

TEST(TracerTest, SampleEveryOneTracesEverything) {
  obs::TracerConfig config;
  config.sample_every = 1;
  obs::Tracer tracer(config);
  for (int i = 0; i < 10; ++i) {
    EXPECT_NE(tracer.StartTrace("q"), nullptr);
  }
  EXPECT_EQ(tracer.traces_started(), 10u);
}

TEST(TracerTest, SampleEveryNTracesOneInN) {
  obs::TracerConfig config;
  config.sample_every = 4;
  obs::Tracer tracer(config);
  size_t sampled = 0;
  for (int i = 0; i < 40; ++i) {
    if (tracer.StartTrace("q") != nullptr) ++sampled;
  }
  EXPECT_EQ(sampled, 10u);
}

TEST(TracerTest, InheritedContextBypassesSamplingAndAdoptsIds) {
  // A shard receiving a sampled sub-request must trace it even with local
  // sampling off — the decision was made upstream.
  obs::Tracer tracer;  // sample_every = 0.
  obs::TraceContext inherited;
  inherited.trace_id = 77;
  inherited.parent_span_id = 123;
  inherited.sampled = true;
  auto trace = tracer.StartTrace("shard.handle", inherited);
  ASSERT_NE(trace, nullptr);
  EXPECT_EQ(trace->trace_id(), 77u);
  EXPECT_EQ(trace->Spans()[0].parent_span_id, 123u);

  // An inactive context falls back to the local sampling decision.
  EXPECT_EQ(tracer.StartTrace("shard.handle", obs::TraceContext{}), nullptr);
}

TEST(TracerTest, RecentRingEvictsOldestAndRenders) {
  obs::TracerConfig config;
  config.sample_every = 1;
  config.max_recent = 2;
  obs::Tracer tracer(config);
  auto a = tracer.StartTrace("a");
  auto b = tracer.StartTrace("b");
  auto c = tracer.StartTrace("c");
  tracer.Record(a);
  tracer.Record(b);
  tracer.Record(c);
  tracer.Record(nullptr);  // No-op.

  auto recent = tracer.Recent();
  ASSERT_EQ(recent.size(), 2u);
  EXPECT_EQ(recent[0]->Spans()[0].name, "b");
  EXPECT_EQ(recent[1]->Spans()[0].name, "c");
  EXPECT_EQ(tracer.traces_recorded(), 3u);

  const std::string rendered = tracer.RenderRecent();
  EXPECT_NE(rendered.find("trace "), std::string::npos);
  EXPECT_NE(rendered.find("c  "), std::string::npos);
}

// ---------------------------------------------------------------------------
// Span-list codec
// ---------------------------------------------------------------------------

TEST(SpanCodecTest, RoundTripsByteIdentically) {
  std::vector<obs::Span> spans;
  obs::Span span;
  span.span_id = 0xdeadbeefcafef00dULL;
  span.parent_span_id = 7;
  span.name = "replica.attempt";
  span.tags = "shard=1,replica=0,hedge=1";
  span.start_unix_seconds = 1723100000.125;
  span.duration_seconds = 0.0625;
  spans.push_back(span);
  spans.push_back(obs::Span{});  // All-defaults span survives too.

  std::string bytes;
  obs::EncodeSpans(spans, &bytes);
  BinaryReader in(bytes);
  std::vector<obs::Span> decoded;
  ASSERT_TRUE(obs::DecodeSpans(&in, &decoded).ok());
  EXPECT_TRUE(in.AtEnd());
  ASSERT_EQ(decoded.size(), 2u);
  EXPECT_EQ(decoded[0].span_id, span.span_id);
  EXPECT_EQ(decoded[0].name, span.name);
  EXPECT_EQ(decoded[0].tags, span.tags);

  std::string again;
  obs::EncodeSpans(decoded, &again);
  EXPECT_EQ(bytes, again);
}

TEST(SpanCodecTest, CorruptedCountFailsBeforeAllocation) {
  // A count claiming more spans than the payload can hold must be
  // rejected up front, not discovered after reserving gigabytes.
  std::string bytes;
  PutU32(&bytes, 0xffffffffu);
  BinaryReader in(bytes);
  std::vector<obs::Span> decoded;
  EXPECT_FALSE(obs::DecodeSpans(&in, &decoded).ok());
  EXPECT_TRUE(decoded.empty());
}

TEST(SpanCodecTest, TruncatedSpanBodyFails) {
  std::vector<obs::Span> spans(2);
  spans[0].name = "a";
  spans[1].name = "b";
  std::string bytes;
  obs::EncodeSpans(spans, &bytes);
  for (size_t len = 4; len < bytes.size(); ++len) {
    const std::string truncated = bytes.substr(0, len);
    BinaryReader in(truncated);
    std::vector<obs::Span> decoded;
    EXPECT_FALSE(obs::DecodeSpans(&in, &decoded).ok()) << len;
  }
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

TEST(MetricsRegistryTest, RendersPrometheusFamiliesWithHeaders) {
  obs::CallbackSource source([](obs::MetricsSink* sink) {
    sink->Counter("tsb_requests_total", "Requests served.",
                  {{"method", "full-topk"}}, 12);
    sink->Counter("tsb_requests_total", "Requests served.",
                  {{"method", "fast-topk"}}, 3);
    sink->Gauge("tsb_queue_depth", "Queued requests.", {}, 5);
    obs::SummaryValue latency;
    latency.count = 100;
    latency.mean = 0.002;
    latency.p50 = 0.001;
    latency.p95 = 0.004;
    latency.p99 = 0.009;
    latency.max = 0.05;
    sink->Summary("tsb_latency_seconds", "Service latency.", {}, latency);
  });
  obs::MetricsRegistry registry;
  registry.Register(&source);
  EXPECT_EQ(registry.num_sources(), 1u);

  const std::string text = registry.RenderPrometheus();
  // One HELP/TYPE header per family, both samples under it.
  EXPECT_EQ(text.find("# HELP tsb_requests_total Requests served."),
            text.rfind("# HELP tsb_requests_total"));
  EXPECT_NE(text.find("# TYPE tsb_requests_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("tsb_requests_total{method=\"full-topk\"} 12"),
            std::string::npos);
  EXPECT_NE(text.find("tsb_requests_total{method=\"fast-topk\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE tsb_queue_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("tsb_queue_depth 5"), std::string::npos);
  // Summaries expand to quantile-labelled samples plus _count and _sum.
  EXPECT_NE(text.find("tsb_latency_seconds{quantile=\"0.5\"} 0.001"),
            std::string::npos);
  EXPECT_NE(text.find("tsb_latency_seconds{quantile=\"0.99\"} 0.009"),
            std::string::npos);
  EXPECT_NE(text.find("tsb_latency_seconds_count 100"), std::string::npos);
  EXPECT_NE(text.find("tsb_latency_seconds_sum 0.2"), std::string::npos);

  registry.Unregister(&source);
  EXPECT_EQ(registry.num_sources(), 0u);
  EXPECT_EQ(registry.RenderPrometheus(), "");
}

TEST(MetricsRegistryTest, EscapesLabelValues) {
  obs::CallbackSource source([](obs::MetricsSink* sink) {
    sink->Gauge("tsb_gauge", "h", {{"path", "a\"b\\c\nd"}}, 1);
  });
  obs::MetricsRegistry registry;
  registry.Register(&source);
  const std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("path=\"a\\\"b\\\\c\\nd\""), std::string::npos)
      << text;
}

TEST(MetricsRegistryTest, DoubleRegisterIsIdempotent) {
  obs::CallbackSource source([](obs::MetricsSink* sink) {
    sink->Counter("tsb_once_total", "h", {}, 1);
  });
  obs::MetricsRegistry registry;
  registry.Register(&source);
  registry.Register(&source);
  EXPECT_EQ(registry.num_sources(), 1u);
  const std::string text = registry.RenderPrometheus();
  // The sample appears once, not twice.
  EXPECT_EQ(text.find("tsb_once_total 1"), text.rfind("tsb_once_total 1"));
  registry.Register(nullptr);  // No-op.
  EXPECT_EQ(registry.num_sources(), 1u);
}

TEST(MetricsRegistryTest, RendersJsonWithSummaryObjects) {
  obs::CallbackSource source([](obs::MetricsSink* sink) {
    sink->Counter("tsb_c", "h", {{"k", "v"}}, 2);
    obs::SummaryValue latency;
    latency.count = 4;
    latency.p99 = 0.5;
    sink->Summary("tsb_s", "h", {}, latency);
  });
  obs::MetricsRegistry registry;
  registry.Register(&source);
  const std::string json = registry.RenderJson();
  EXPECT_NE(json.find("{\"name\":\"tsb_c\",\"type\":\"counter\","
                      "\"labels\":{\"k\":\"v\"},\"value\":2}"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"p99\":0.5"), std::string::npos);
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json[json.size() - 2], ']');
}

// ---------------------------------------------------------------------------
// SlowQueryLog
// ---------------------------------------------------------------------------

TEST(SlowQueryLogTest, DisabledAtZeroThreshold) {
  obs::SlowQueryLog log;
  EXPECT_FALSE(log.enabled());
  EXPECT_DOUBLE_EQ(log.threshold_seconds(), 0.0);
}

TEST(SlowQueryLogTest, RingEvictsOldestFirst) {
  obs::SlowQueryConfig config;
  config.threshold_seconds = 0.001;
  config.capacity = 2;
  obs::SlowQueryLog log(config);
  EXPECT_TRUE(log.enabled());
  for (int i = 0; i < 3; ++i) {
    obs::SlowQueryRecord record;
    record.request = "TOPK set1=Protein set2=DNA k=" + std::to_string(i);
    record.service_seconds = 0.01 * (i + 1);
    log.Record(std::move(record));
  }
  auto recent = log.Recent();
  ASSERT_EQ(recent.size(), 2u);
  EXPECT_NE(recent[0].request.find("k=1"), std::string::npos);
  EXPECT_NE(recent[1].request.find("k=2"), std::string::npos);
  EXPECT_EQ(log.total_recorded(), 3u);
}

TEST(SlowQueryLogTest, ToStringCarriesTheStructuredFields) {
  obs::SlowQueryLog log(obs::SlowQueryConfig{0.001, 8});
  obs::SlowQueryRecord record;
  record.service_seconds = 0.25;
  record.queue_seconds = 0.01;
  record.request = "TOPK set1=Protein set2=DNA";
  record.method = "full-topk";
  record.plan = "scan | merge";
  record.rows_scanned = 1000;
  record.trace_id = 0xabcdef;
  record.span_tree = "root  250.000ms\n";
  log.Record(record);
  const std::string text = log.ToString();
  EXPECT_NE(text.find("TOPK set1=Protein set2=DNA"), std::string::npos);
  EXPECT_NE(text.find("full-topk"), std::string::npos);
  EXPECT_NE(text.find("scan | merge"), std::string::npos);
  EXPECT_NE(text.find("root  250.000ms"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Admin channel: codecs and handler
// ---------------------------------------------------------------------------

TEST(AdminCodecTest, RequestRoundTripsEveryCommand) {
  for (uint8_t c = 0; c <= wire::kMaxAdminCommand; ++c) {
    wire::AdminRequest request;
    request.command = static_cast<wire::AdminCommand>(c);
    std::string frame;
    wire::EncodeAdminRequest(request, &frame);
    auto kind = wire::PeekMessageKind(frame);
    ASSERT_TRUE(kind.ok());
    EXPECT_EQ(*kind, wire::MessageKind::kAdminRequest);
    auto decoded = wire::DecodeAdminRequest(frame);
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    EXPECT_EQ(decoded->command, request.command);
    std::string again;
    wire::EncodeAdminRequest(*decoded, &again);
    EXPECT_EQ(frame, again);
  }
}

TEST(AdminCodecTest, ResponseRoundTripsBodyAndError) {
  wire::AdminResponse response;
  response.body = "# HELP tsb_x h\ntsb_x 1\n";
  std::string frame;
  wire::EncodeAdminResponse(response, &frame);
  auto decoded = wire::DecodeAdminResponse(frame);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->error.ok());
  EXPECT_EQ(decoded->body, response.body);

  wire::AdminResponse failed;
  failed.error = wire::WireError{wire::WireErrorCode::kInvalidRequest,
                                 "unknown admin command"};
  frame.clear();
  wire::EncodeAdminResponse(failed, &frame);
  decoded = wire::DecodeAdminResponse(frame);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->error.code, wire::WireErrorCode::kInvalidRequest);
  EXPECT_EQ(decoded->error.message, "unknown admin command");
}

TEST(AdminCodecTest, CommandNamesRoundTrip) {
  for (uint8_t c = 0; c <= wire::kMaxAdminCommand; ++c) {
    const auto command = static_cast<wire::AdminCommand>(c);
    wire::AdminCommand parsed;
    ASSERT_TRUE(
        wire::ParseAdminCommand(wire::AdminCommandToString(command), &parsed))
        << wire::AdminCommandToString(command);
    EXPECT_EQ(parsed, command);
  }
  wire::AdminCommand ignored;
  EXPECT_FALSE(wire::ParseAdminCommand("warp9", &ignored));
  EXPECT_FALSE(wire::ParseAdminCommand("", &ignored));
}

TEST(AdminHandlerTest, PingAnswersEvenWithNoSurfaces) {
  obs::AdminState state;  // All members null.
  wire::AdminRequest request;
  request.command = wire::AdminCommand::kPing;
  wire::AdminResponse response = obs::HandleAdmin(state, request);
  EXPECT_TRUE(response.error.ok());
  EXPECT_EQ(response.body, "pong");

  // Absent surfaces answer with an empty body, never an error.
  for (uint8_t c = 1; c <= wire::kMaxAdminCommand; ++c) {
    request.command = static_cast<wire::AdminCommand>(c);
    response = obs::HandleAdmin(state, request);
    EXPECT_TRUE(response.error.ok()) << static_cast<int>(c);
    EXPECT_EQ(response.body, "") << static_cast<int>(c);
  }
}

TEST(AdminHandlerTest, ServesMetricsTracesAndSlowLog) {
  obs::CallbackSource source([](obs::MetricsSink* sink) {
    sink->Counter("tsb_admin_test_total", "h", {}, 9);
  });
  obs::MetricsRegistry registry;
  registry.Register(&source);

  obs::TracerConfig tracer_config;
  tracer_config.sample_every = 1;
  obs::Tracer tracer(tracer_config);
  auto trace = tracer.StartTrace("q");
  trace->Finish(0.001);
  tracer.Record(trace);

  obs::SlowQueryLog slow_log(obs::SlowQueryConfig{0.001, 8});
  obs::SlowQueryRecord record;
  record.request = "TOPK set1=Protein set2=DNA";
  slow_log.Record(record);

  obs::AdminState state;
  state.registry = &registry;
  state.tracer = &tracer;
  state.slow_log = &slow_log;
  state.text_renderer = []() { return "human tables"; };

  wire::AdminRequest request;
  request.command = wire::AdminCommand::kMetricsPrometheus;
  EXPECT_NE(obs::HandleAdmin(state, request).body.find(
                "tsb_admin_test_total 9"),
            std::string::npos);
  request.command = wire::AdminCommand::kMetricsJson;
  EXPECT_NE(obs::HandleAdmin(state, request).body.find(
                "\"tsb_admin_test_total\""),
            std::string::npos);
  request.command = wire::AdminCommand::kMetricsText;
  EXPECT_EQ(obs::HandleAdmin(state, request).body, "human tables");
  request.command = wire::AdminCommand::kTraces;
  EXPECT_NE(obs::HandleAdmin(state, request).body.find("trace "),
            std::string::npos);
  request.command = wire::AdminCommand::kSlowQueries;
  EXPECT_NE(obs::HandleAdmin(state, request).body.find(
                "TOPK set1=Protein set2=DNA"),
            std::string::npos);
}

TEST(AdminHandlerTest, FrameEntryPointAnswersInBandOnGarbage) {
  obs::AdminState state;
  // A valid round-trip.
  wire::AdminRequest request;
  request.command = wire::AdminCommand::kPing;
  std::string frame;
  wire::EncodeAdminRequest(request, &frame);
  auto response = wire::DecodeAdminResponse(obs::HandleAdminFrame(state, frame));
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->body, "pong");

  // Garbage still yields a decodable error response — the server can
  // always answer in-band instead of dropping the connection.
  response = wire::DecodeAdminResponse(obs::HandleAdminFrame(state, "junk"));
  ASSERT_TRUE(response.ok());
  EXPECT_FALSE(response->error.ok());
}

}  // namespace
}  // namespace tsb
