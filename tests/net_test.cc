// The cross-process sharding subsystem (src/net/): FrameConn partial-I/O
// framing over real sockets, the shard server's frame loop, and the
// connection-pooled SocketTransport — including the tentpole contract
// that all nine query methods return byte-identical results through
// direct, loopback, and UDS-socket execution at N ∈ {1, 2, 4} shards,
// and the fault-injection contract that a killed or hung shard server
// degrades the answer to partial=true (PARTIAL plan tag, no cache
// insert) with full recovery once the server restarts.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "biozon/domain.h"
#include "biozon/fig3.h"
#include "core/builder.h"
#include "core/pruner.h"
#include "engine/engine.h"
#include "mutation/delta_log.h"
#include "mutation/mutation.h"
#include "mutation/mutation_engine.h"
#include "net/endpoint_client.h"
#include "net/frame_conn.h"
#include "net/shard_server.h"
#include "net/socket_transport.h"
#include "service/service.h"
#include "shard/frame_handler.h"
#include "shard/scatter_gather.h"
#include "shard/sharded_store.h"
#include "wire/codec.h"
#include "wire/message.h"

namespace tsb {
namespace {

using engine::MethodKind;

const std::vector<MethodKind> kAllMethods = {
    MethodKind::kSql,         MethodKind::kFullTop,
    MethodKind::kFastTop,     MethodKind::kFullTopK,
    MethodKind::kFastTopK,    MethodKind::kFullTopKEt,
    MethodKind::kFastTopKEt,  MethodKind::kFullTopKOpt,
    MethodKind::kFastTopKOpt,
};

std::string UdsPath(const std::string& tag, size_t i) {
  return "/tmp/tsb_net_test_" + std::to_string(::getpid()) + "_" + tag +
         "_" + std::to_string(i) + ".sock";
}

/// An encoded query-request frame usable against any Figure-3 shard.
std::string ExampleFrame() {
  wire::WireRequest request;
  request.id = 99;
  request.query.entity_set1 = "Protein";
  request.query.entity_set2 = "DNA";
  request.query.k = 5;
  request.method = MethodKind::kFullTop;
  request.options.skip_pruned_checks = true;
  std::string frame;
  wire::EncodeQueryRequest(request, &frame);
  return frame;
}

// ---------------------------------------------------------------------------
// FrameConn: framing over a socketpair
// ---------------------------------------------------------------------------

class FrameConnTest : public ::testing::Test {
 protected:
  void SetUp() override {
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    a_ = std::make_unique<net::FrameConn>(fds[0]);
    b_ = std::make_unique<net::FrameConn>(fds[1]);
  }

  std::unique_ptr<net::FrameConn> a_;
  std::unique_ptr<net::FrameConn> b_;
};

TEST_F(FrameConnTest, RoundTripsFramesByteIdentically) {
  const std::string frame = ExampleFrame();
  ASSERT_TRUE(a_->WriteFrame(frame).ok());
  std::string received;
  ASSERT_TRUE(b_->ReadFrame(&received, wire::kDefaultMaxFramePayload).ok());
  EXPECT_EQ(received, frame);
}

TEST_F(FrameConnTest, ReadsBackToBackFramesOneAtATime) {
  const std::string frame = ExampleFrame();
  std::string both = frame + frame;
  ASSERT_TRUE(a_->WriteFrame(both).ok());  // One send, two frames.
  for (int i = 0; i < 2; ++i) {
    std::string received;
    ASSERT_TRUE(
        b_->ReadFrame(&received, wire::kDefaultMaxFramePayload).ok())
        << i;
    EXPECT_EQ(received, frame) << i;
  }
}

TEST_F(FrameConnTest, ReassemblesFromPartialDelivery) {
  // Dribble the frame through the raw fd a few bytes at a time; ReadFrame
  // must reassemble across however many partial reads that causes.
  const std::string frame = ExampleFrame();
  std::thread writer([this, &frame]() {
    for (size_t off = 0; off < frame.size(); off += 3) {
      const size_t n = std::min<size_t>(3, frame.size() - off);
      ASSERT_EQ(::send(a_->fd(), frame.data() + off, n, 0),
                static_cast<ssize_t>(n));
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  std::string received;
  EXPECT_TRUE(b_->ReadFrame(&received, wire::kDefaultMaxFramePayload).ok());
  EXPECT_EQ(received, frame);
  writer.join();
}

TEST_F(FrameConnTest, LargeFramesSurviveShortWrites) {
  // A frame far beyond the socket buffers forces the writer through the
  // short-write path while the reader drains concurrently.
  wire::WireResponse response;
  response.request_id = 1;
  for (int i = 0; i < 200000; ++i) {
    response.result.entries.push_back({i, static_cast<double>(i) * 0.5});
  }
  std::string frame;
  wire::EncodeQueryResponse(response, &frame);
  ASSERT_GT(frame.size(), 1u << 20);

  std::thread writer([this, &frame]() {
    EXPECT_TRUE(a_->WriteFrame(frame).ok());
  });
  std::string received;
  EXPECT_TRUE(b_->ReadFrame(&received, wire::kDefaultMaxFramePayload).ok());
  writer.join();
  EXPECT_EQ(received, frame);
}

TEST_F(FrameConnTest, RejectsGarbageMagicWithoutBuffering) {
  const std::string garbage = "GET / HTTP/1.1\r\n\r\n";
  ASSERT_TRUE(a_->WriteFrame(garbage).ok());  // Raw bytes, not a frame.
  std::string received;
  const Status status =
      b_->ReadFrame(&received, wire::kDefaultMaxFramePayload);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST_F(FrameConnTest, RejectsUnsupportedVersionAsTyped) {
  std::string frame = ExampleFrame();
  frame[2] = 99;  // Future wire version.
  ASSERT_TRUE(a_->WriteFrame(frame).ok());
  std::string received;
  const Status status =
      b_->ReadFrame(&received, wire::kDefaultMaxFramePayload);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kUnimplemented);
}

TEST_F(FrameConnTest, EnforcesThePayloadCap) {
  const std::string frame = ExampleFrame();
  ASSERT_TRUE(a_->WriteFrame(frame).ok());
  std::string received;
  // Cap below this frame's payload: must reject, not allocate-and-wait.
  const Status status = b_->ReadFrame(&received, /*max_payload_bytes=*/4);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST_F(FrameConnTest, CleanEofAtFrameBoundaryIsOutOfRange) {
  a_->Close();
  std::string received;
  const Status status =
      b_->ReadFrame(&received, wire::kDefaultMaxFramePayload);
  EXPECT_EQ(status.code(), StatusCode::kOutOfRange);
}

TEST_F(FrameConnTest, EofMidFrameIsMalformed) {
  const std::string frame = ExampleFrame();
  ASSERT_EQ(::send(a_->fd(), frame.data(), frame.size() / 2, 0),
            static_cast<ssize_t>(frame.size() / 2));
  a_->Close();
  std::string received;
  const Status status =
      b_->ReadFrame(&received, wire::kDefaultMaxFramePayload);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST_F(FrameConnTest, ReadDeadlineExpires) {
  std::string received;
  const auto start = std::chrono::steady_clock::now();
  const Status status = b_->ReadFrame(&received,
                                      wire::kDefaultMaxFramePayload,
                                      net::DeadlineAfter(0.05));
  const double waited =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  EXPECT_LT(waited, 5.0);
}

// ---------------------------------------------------------------------------
// Shard servers over UDS/TCP: identity, faults, pooling
// ---------------------------------------------------------------------------

/// The Figure-3 world plus a single-store reference engine (ground truth
/// for every identity check), mirroring the wire_test fixture.
class NetFig3Test : public ::testing::Test {
 protected:
  void SetUp() override {
    ids_ = biozon::BuildFigure3Database(&db_);
    view_ = std::make_unique<graph::DataGraphView>(db_);
    schema_ = std::make_unique<graph::SchemaGraph>(db_);
    core::TopologyBuilder builder(&db_, schema_.get(), view_.get());
    core::BuildConfig config;
    config.max_path_length = 3;
    ASSERT_TRUE(builder.BuildAllPairs(config, &store_).ok());
    core::PruneConfig prune;
    prune.frequency_threshold = 0;
    std::vector<std::pair<storage::EntityTypeId, storage::EntityTypeId>>
        keys;
    for (const auto& [key, pair] : store_.pairs()) keys.push_back(key);
    for (const auto& [t1, t2] : keys) {
      ASSERT_TRUE(
          core::PruneFrequentTopologies(&db_, &store_, t1, t2, prune).ok());
    }
    engine_ = std::make_unique<engine::Engine>(
        &db_, &store_, schema_.get(), view_.get(),
        core::ScoreModel(&store_.catalog(),
                         biozon::MakeBiozonDomainKnowledge(ids_)));
  }

  std::unique_ptr<shard::ScatterGatherExecutor> MakeSharded(
      size_t n, const std::string& tag,
      shard::ScatterGatherConfig config = shard::ScatterGatherConfig{}) {
    auto sharded = std::make_shared<shard::ShardedTopologyStore>(n);
    core::TopologyBuilder builder(&db_, schema_.get(), view_.get());
    core::BuildConfig build;
    build.max_path_length = 3;
    build.table_namespace = tag + std::to_string(n) + ".";
    EXPECT_TRUE(sharded->Build(&builder, build).ok());
    core::PruneConfig prune;
    prune.frequency_threshold = 0;
    for (size_t i = 0; i < n; ++i) {
      auto snapshot = sharded->Snapshot(i);
      std::vector<std::pair<storage::EntityTypeId, storage::EntityTypeId>>
          keys;
      for (const auto& [key, pair] : snapshot->pairs()) keys.push_back(key);
      for (const auto& [t1, t2] : keys) {
        EXPECT_TRUE(core::PruneFrequentTopologies(&db_, snapshot.get(), t1,
                                                  t2, prune)
                        .ok());
      }
    }
    return std::make_unique<shard::ScatterGatherExecutor>(
        &db_, sharded, schema_.get(), view_.get(),
        biozon::MakeBiozonDomainKnowledge(ids_),
        engine::SqlBaselineOptions{}, config);
  }

  engine::TopologyQuery ScatteringQuery() const {
    engine::TopologyQuery q;
    q.entity_set1 = "Protein";
    q.entity_set2 = "DNA";
    q.scheme = core::RankScheme::kFreq;
    q.k = 10;
    return q;
  }

  /// N in-process shard servers over an executor's own engines — the
  /// same handler objects the loopback path uses, behind real sockets,
  /// so the only difference under test is the byte shipping. UDS by
  /// default; `use_tcp` listens on ephemeral 127.0.0.1 ports instead.
  struct ServerSet {
    std::vector<std::unique_ptr<shard::ShardFrameHandler>> handlers;
    std::vector<std::unique_ptr<net::ShardServer>> servers;
    std::vector<net::ShardEndpoint> endpoints;

    void StopAll() {
      for (auto& server : servers) server->Stop();
    }

    /// Restarts server i on its original endpoint (the recovery path).
    void Restart(size_t i) {
      servers[i] = std::make_unique<net::ShardServer>(
          handlers[i].get(), configs[i]);
      ASSERT_TRUE(servers[i]->Start().ok());
    }

    std::vector<net::ShardServerConfig> configs;
  };

  ServerSet StartServers(shard::ScatterGatherExecutor* executor,
                         const std::string& tag, bool use_tcp = false) {
    ServerSet set;
    const size_t n = executor->num_shards();
    const shard::ShardedTopologyStore* store = &executor->store();
    for (size_t i = 0; i < n; ++i) {
      set.handlers.push_back(std::make_unique<shard::ShardFrameHandler>(
          &db_, &executor->shard_engine(i),
          [store, i]() { return store->Snapshot(i); }));
      net::ShardServerConfig config;
      if (!use_tcp) config.uds_path = UdsPath(tag, i);
      set.configs.push_back(config);
      set.servers.push_back(std::make_unique<net::ShardServer>(
          set.handlers.back().get(), config));
      EXPECT_TRUE(set.servers.back()->Start().ok());
      set.endpoints.push_back(
          use_tcp ? net::ShardEndpoint::Tcp("127.0.0.1",
                                            set.servers.back()->port())
                  : net::ShardEndpoint::Unix(config.uds_path));
    }
    return set;
  }

  storage::Catalog db_;
  biozon::BiozonSchema ids_;
  std::unique_ptr<graph::DataGraphView> view_;
  std::unique_ptr<graph::SchemaGraph> schema_;
  core::TopologyStore store_;
  std::unique_ptr<engine::Engine> engine_;
};

TEST_F(NetFig3Test,
       SocketScatterIsByteIdenticalToDirectAndLoopbackAtEveryShardCount) {
  // The acceptance contract: all nine methods byte-identical across
  // direct, loopback, and UDS-socket execution at N ∈ {1, 2, 4}.
  for (size_t n : {1u, 2u, 4u}) {
    auto executor = MakeSharded(n, "ni");
    ServerSet servers =
        StartServers(executor.get(), "id" + std::to_string(n));
    net::SocketTransport transport(servers.endpoints,
                                   net::SocketTransportConfig{},
                                   executor->transport_metrics());

    for (MethodKind method : kAllMethods) {
      auto direct = engine_->Execute(ScatteringQuery(), method);
      auto loopback = executor->Execute(ScatteringQuery(), method);
      executor->set_transport(&transport);
      auto socket = executor->Execute(ScatteringQuery(), method);
      executor->set_transport(nullptr);
      ASSERT_EQ(direct.ok(), socket.ok())
          << engine::MethodKindToString(method) << " @" << n;
      if (!direct.ok()) continue;
      ASSERT_TRUE(loopback.ok());
      EXPECT_EQ(socket->entries, direct->entries)
          << engine::MethodKindToString(method) << " @" << n << " shards";
      EXPECT_EQ(socket->entries, loopback->entries)
          << engine::MethodKindToString(method) << " @" << n << " shards";
      EXPECT_FALSE(socket->partial);
    }
    servers.StopAll();
  }
}

TEST_F(NetFig3Test, TripleQueriesScatterTheirScanPhaseOverSockets) {
  engine::TripleQuery triple;
  triple.entity_set1 = "Protein";
  triple.entity_set2 = "Unigene";
  triple.entity_set3 = "DNA";
  auto expected =
      engine::ExecuteTripleQuery(&db_, &store_, *schema_, *view_, triple);
  ASSERT_TRUE(expected.ok());

  for (size_t n : {2u, 4u}) {
    auto executor = MakeSharded(n, "nt");
    ServerSet servers =
        StartServers(executor.get(), "tr" + std::to_string(n));
    net::SocketTransport transport(servers.endpoints);
    executor->set_transport(&transport);
    auto actual = executor->ExecuteTriple(triple);
    executor->set_transport(nullptr);
    servers.StopAll();

    ASSERT_TRUE(actual.ok()) << n;
    EXPECT_FALSE(actual->partial);
    ASSERT_EQ(actual->entries.size(), expected->entries.size()) << n;
    for (size_t i = 0; i < expected->entries.size(); ++i) {
      EXPECT_EQ(actual->entries[i].tid, expected->entries[i].tid);
      EXPECT_EQ(actual->entries[i].frequency,
                expected->entries[i].frequency);
    }
    uint64_t served = 0;
    for (auto& server : servers.servers) served += server->frames_served();
    EXPECT_GT(served, 0u) << n;
  }
}

TEST_F(NetFig3Test, TcpTransportServesTheSameResults) {
  auto executor = MakeSharded(2, "ntcp");
  ServerSet servers = StartServers(executor.get(), "tcp", /*use_tcp=*/true);
  net::SocketTransport transport(servers.endpoints);
  executor->set_transport(&transport);
  for (MethodKind method :
       {MethodKind::kFullTop, MethodKind::kFastTopKEt}) {
    auto expected = engine_->Execute(ScatteringQuery(), method);
    auto actual = executor->Execute(ScatteringQuery(), method);
    ASSERT_EQ(expected.ok(), actual.ok());
    if (expected.ok()) {
      EXPECT_EQ(expected->entries, actual->entries);
      EXPECT_FALSE(actual->partial);
    }
  }
  executor->set_transport(nullptr);
  servers.StopAll();
}

TEST_F(NetFig3Test, KilledShardServerDegradesToPartialAndRecovers) {
  auto executor = MakeSharded(4, "nk");
  ServerSet servers = StartServers(executor.get(), "kill");
  net::SocketTransportConfig config;
  config.backoff_initial_seconds = 0.005;
  config.backoff_max_seconds = 0.05;
  net::SocketTransport transport(servers.endpoints, config,
                                 executor->transport_metrics());
  executor->set_transport(&transport);

  service::ServiceConfig svc_config;
  svc_config.num_threads = 2;
  service::TopologyService svc(executor.get(), &db_, svc_config);

  // Warm pass: full answer over sockets (and find, by probing, a server
  // whose death actually degrades this query — the designated shard runs
  // inline and never crosses the transport).
  auto clean = svc.Execute(ScatteringQuery(), MethodKind::kFullTop);
  ASSERT_TRUE(clean.result.ok());
  EXPECT_FALSE(clean.result->partial);

  size_t victim = SIZE_MAX;
  for (size_t s = 0; s < 4 && victim == SIZE_MAX; ++s) {
    servers.servers[s]->Stop();
    svc.InvalidateCache();
    auto probe = svc.Execute(ScatteringQuery(), MethodKind::kFullTop);
    ASSERT_TRUE(probe.result.ok())
        << "server " << s << " down: " << probe.result.status().ToString();
    if (probe.result->partial) {
      victim = s;
      // The degraded answer: PARTIAL plan tag, ranked subset.
      EXPECT_NE(probe.result->stats.plan.find("PARTIAL"),
                std::string::npos);
      EXPECT_LE(probe.result->entries.size(),
                clean.result->entries.size());
    } else {
      servers.Restart(s);
    }
  }
  ASSERT_NE(victim, SIZE_MAX) << "no server's death degraded the query";

  // The partial answer must not have been cached: an immediate repeat is
  // a cache miss (and still partial while the server stays dead).
  auto repeat = svc.Execute(ScatteringQuery(), MethodKind::kFullTop);
  ASSERT_TRUE(repeat.result.ok());
  EXPECT_FALSE(repeat.from_cache);
  EXPECT_TRUE(repeat.result->partial);

  // Restart the server on the same endpoint: the transport reconnects
  // (stale pooled conns retried on fresh dials) and the full ranking is
  // back — then, and only then, it caches.
  servers.Restart(victim);
  service::ServiceResponse healed = svc.Execute(ScatteringQuery(),
                                                MethodKind::kFullTop);
  for (int attempt = 0; attempt < 100 && healed.result.ok() &&
                        healed.result->partial;
       ++attempt) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    healed = svc.Execute(ScatteringQuery(), MethodKind::kFullTop);
  }
  ASSERT_TRUE(healed.result.ok());
  EXPECT_FALSE(healed.result->partial) << "shard never recovered";
  EXPECT_EQ(healed.result->entries, clean.result->entries);
  auto cached = svc.Execute(ScatteringQuery(), MethodKind::kFullTop);
  ASSERT_TRUE(cached.result.ok());
  EXPECT_TRUE(cached.from_cache);
  EXPECT_FALSE(cached.result->partial);

  auto metrics = executor->GetTransportMetrics();
  EXPECT_GT(metrics.total.failures, 0u);
  EXPECT_GT(metrics.total.reconnects, 0u);

  svc.Shutdown();
  executor->set_transport(nullptr);
  servers.StopAll();
}

TEST_F(NetFig3Test, AcknowledgedMutationsSurviveServerKillViaWalReplay) {
  // The v5 write path end to end: kMutationRequest frames over sockets,
  // WAL-before-visible application, then a kill (no shutdown handshake —
  // only the fsync'd log survives) and a restart that rebuilds the base
  // precompute and replays the WAL, exactly as shard_server --wal-dir
  // does. Acknowledged batches must be visible after recovery.
  const std::string wal_path = "/tmp/tsb_net_test_" +
                               std::to_string(::getpid()) + "_mut.wal";
  std::remove(wal_path.c_str());

  mutation::MutationBatch first;
  first.ops = {
      mutation::AddNode(
          "Protein", 500,
          {{"DESC", storage::Value(std::string(
                        "ubiquitin-conjugating enzyme variant X"))}}),
      mutation::AddEdge("Encodes", 600, 500, 742),
  };
  mutation::MutationBatch second;
  second.ops = {mutation::RemoveEdge("Uni_contains", 93)};

  std::vector<engine::ResultEntry> mutated_truth;
  {
    auto executor = MakeSharded(2, "mw");
    ServerSet servers = StartServers(executor.get(), "mw");

    // Before the hook is wired, every server is read-only: the frame is
    // understood but answered with a typed refusal.
    {
      wire::MutationWireRequest request;
      request.id = 1;
      request.batch = first;
      std::string frame;
      wire::EncodeMutationRequest(request, &frame);
      net::EndpointClient client(servers.endpoints[0]);
      auto reply = client.RoundTrip(frame, net::DeadlineAfter(5.0));
      ASSERT_TRUE(reply.ok()) << reply.status();
      auto decoded = wire::DecodeMutationResponse(*reply);
      ASSERT_TRUE(decoded.ok()) << decoded.status();
      EXPECT_EQ(decoded->error.code,
                wire::WireErrorCode::kFailedPrecondition);
    }

    // Wire the WAL'd mutation engine into every handler, shard_server
    // style: one engine over all shard handles, ApplyLogged per frame.
    mutation::DeltaLog wal;
    std::vector<mutation::MutationBatch> replayed;
    ASSERT_TRUE(wal.Open(wal_path, &replayed).ok());
    EXPECT_TRUE(replayed.empty());
    std::vector<std::shared_ptr<core::StoreHandle>> handles;
    for (size_t i = 0; i < 2; ++i) {
      handles.push_back(executor->mutable_store()->handle(i));
    }
    mutation::MutationEngine::Options options;
    options.build.max_path_length = 3;
    mutation::MutationEngine mutator(&db_, schema_.get(), handles, options);
    mutator.set_delta_log(&wal);
    for (auto& handler : servers.handlers) {
      handler->set_mutation_apply(
          [&mutator](const mutation::MutationBatch& batch) {
            return mutator.ApplyLogged(batch);
          });
    }

    // One batch to each server: any shard server accepts mutations.
    for (size_t s = 0; s < 2; ++s) {
      wire::MutationWireRequest request;
      request.id = 10 + s;
      request.batch = s == 0 ? first : second;
      std::string frame;
      wire::EncodeMutationRequest(request, &frame);
      net::EndpointClient client(servers.endpoints[s]);
      auto reply = client.RoundTrip(frame, net::DeadlineAfter(5.0));
      ASSERT_TRUE(reply.ok()) << s << ": " << reply.status();
      auto decoded = wire::DecodeMutationResponse(*reply);
      ASSERT_TRUE(decoded.ok()) << decoded.status();
      ASSERT_TRUE(decoded->error.ok()) << decoded->error.message;
      EXPECT_EQ(decoded->request_id, 10 + s);
      EXPECT_EQ(decoded->applied_ops, request.batch.ops.size());
      EXPECT_GT(decoded->dirty_pairs, 0u);
    }
    EXPECT_EQ(wal.appended_records(), 2u);

    auto result = executor->Execute(ScatteringQuery(), MethodKind::kFullTop);
    ASSERT_TRUE(result.ok()) << result.status();
    mutated_truth = result->entries;

    servers.StopAll();
  }

  // Restart: fresh base build plus WAL replay.
  auto executor = MakeSharded(2, "mw2");
  mutation::DeltaLog wal;
  std::vector<mutation::MutationBatch> replayed;
  auto stats = wal.Open(wal_path, &replayed);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->truncated_bytes, 0u);
  ASSERT_EQ(replayed.size(), 2u);
  EXPECT_EQ(replayed[0], first);
  EXPECT_EQ(replayed[1], second);
  std::vector<std::shared_ptr<core::StoreHandle>> handles;
  for (size_t i = 0; i < 2; ++i) {
    handles.push_back(executor->mutable_store()->handle(i));
  }
  mutation::MutationEngine::Options options;
  options.build.max_path_length = 3;
  mutation::MutationEngine mutator(&db_, schema_.get(), handles, options);
  ASSERT_TRUE(mutator.Replay(replayed).ok());
  EXPECT_EQ(mutator.generation(), 2u);

  // Served over sockets again: the acknowledged state survived the kill.
  ServerSet servers = StartServers(executor.get(), "mw3");
  net::SocketTransport transport(servers.endpoints);
  executor->set_transport(&transport);
  auto recovered = executor->Execute(ScatteringQuery(), MethodKind::kFullTop);
  executor->set_transport(nullptr);
  servers.StopAll();
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_FALSE(recovered->partial);
  EXPECT_EQ(recovered->entries, mutated_truth);
  wal.Close();
  std::remove(wal_path.c_str());
}

TEST_F(NetFig3Test, HungShardServerTimesOutUnderTheRequestDeadline) {
  auto executor = MakeSharded(4, "nh");
  ServerSet servers = StartServers(executor.get(), "hang");

  // Replace each endpoint in turn with a black hole that accepts and then
  // never answers; the transport's per-request deadline must fire so the
  // query completes degraded instead of hanging.
  auto hole = net::Listener::ListenUnix(UdsPath("hole", 0));
  ASSERT_TRUE(hole.ok());
  std::vector<std::unique_ptr<net::FrameConn>> swallowed;
  std::thread acceptor([&]() {
    for (;;) {
      auto conn = hole->Accept();
      if (!conn.ok()) return;  // Listener closed.
      swallowed.push_back(std::move(*conn));  // Hold open, never reply.
    }
  });

  net::SocketTransportConfig config;
  config.request_timeout_seconds = 0.1;
  bool saw_degraded = false;
  for (size_t s = 0; s < 4 && !saw_degraded; ++s) {
    std::vector<net::ShardEndpoint> endpoints = servers.endpoints;
    endpoints[s] = net::ShardEndpoint::Unix(hole->uds_path());
    net::SocketTransport transport(endpoints, config);
    executor->set_transport(&transport);
    auto result = executor->Execute(ScatteringQuery(), MethodKind::kFullTop);
    executor->set_transport(nullptr);
    ASSERT_TRUE(result.ok()) << s;
    if (result->partial) {
      saw_degraded = true;
      EXPECT_NE(result->stats.plan.find("PARTIAL"), std::string::npos);
    }
  }
  EXPECT_TRUE(saw_degraded);

  hole->Close();
  acceptor.join();
  servers.StopAll();
}

TEST_F(NetFig3Test, ConnectionPoolReusesConnectionsAcrossQueries) {
  auto executor = MakeSharded(4, "np");
  ServerSet servers = StartServers(executor.get(), "pool");
  net::SocketTransport transport(servers.endpoints, {},
                                 executor->transport_metrics());
  executor->set_transport(&transport);

  const int kQueries = 20;
  for (int i = 0; i < kQueries; ++i) {
    auto result = executor->Execute(ScatteringQuery(), MethodKind::kFullTop);
    ASSERT_TRUE(result.ok());
    EXPECT_FALSE(result->partial);
  }
  executor->set_transport(nullptr);

  uint64_t accepted = 0;
  uint64_t served = 0;
  for (auto& server : servers.servers) {
    accepted += server->connections_accepted();
    served += server->frames_served();
  }
  servers.StopAll();
  ASSERT_GT(served, 0u);
  // Pooling: many frames per connection, not one.
  EXPECT_LT(accepted, served / 2)
      << accepted << " conns for " << served << " frames";

  auto metrics = executor->GetTransportMetrics();
  EXPECT_EQ(metrics.total.requests, served);
  EXPECT_GT(metrics.total.bytes_sent, 0u);
  EXPECT_GT(metrics.total.bytes_received, 0u);
  EXPECT_EQ(metrics.total.failures, 0u);
  EXPECT_EQ(metrics.total.reconnects, 0u);
  bool rtt_seen = false;
  for (const auto& row : metrics.shards) {
    if (row.rtt.count > 0 && row.rtt.p95 > 0.0) rtt_seen = true;
  }
  EXPECT_TRUE(rtt_seen);
  EXPECT_FALSE(metrics.ToString().empty());
}

TEST_F(NetFig3Test, ExpiredDeadlineNeverTouchesTheWire) {
  // Regression: Attempt used to start its write even when the request
  // deadline had already expired — a healthy pooled connection's fd polls
  // ready at poll(0), so the frame reached the wire and a fast server
  // answered it late. The entry check must fail the attempt before any
  // dial or write.
  auto executor = MakeSharded(1, "nx");
  ServerSet servers = StartServers(executor.get(), "exp");
  net::EndpointClient client(servers.endpoints[0]);
  const std::string frame = ExampleFrame();

  // Warm the pool so the expired-deadline call has a healthy, writable
  // connection at hand — the exact case the entry check must catch.
  ASSERT_TRUE(client.RoundTrip(frame, net::Deadline{}, nullptr).ok());
  const uint64_t served_before = servers.servers[0]->frames_served();

  const net::Deadline expired = std::chrono::steady_clock::now() -
                                std::chrono::milliseconds(1);
  const auto start = std::chrono::steady_clock::now();
  auto late = client.RoundTrip(frame, expired, nullptr);
  const double waited =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_FALSE(late.ok());
  EXPECT_EQ(late.status().code(), StatusCode::kResourceExhausted);
  EXPECT_LT(waited, 0.1);
  // The discriminating observable: nothing crossed the wire.
  EXPECT_EQ(servers.servers[0]->frames_served(), served_before);

  // The pooled connection survived untouched: the next round-trip reuses
  // it (no redial) and serves exactly one more frame.
  const uint64_t conns = servers.servers[0]->connections_accepted();
  auto fresh = client.RoundTrip(frame, net::DeadlineAfter(5.0), nullptr);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(servers.servers[0]->frames_served(), served_before + 1);
  EXPECT_EQ(servers.servers[0]->connections_accepted(), conns);
  servers.StopAll();
}

TEST_F(NetFig3Test, NearExpiredDeadlineBoundsBackoffAndRetry) {
  // The companion regression: connect backoff sleeps and the
  // fresh-dial retry are charged against the per-request deadline, so a
  // request with almost no budget left fails in milliseconds instead of
  // serving out a multi-second backoff window.
  std::vector<net::ShardEndpoint> endpoints = {
      net::ShardEndpoint::Unix(UdsPath("nobody-dl", 0))};
  net::EndpointClientConfig config;
  config.connect_timeout_seconds = 5.0;
  config.backoff_initial_seconds = 10.0;
  net::EndpointClient client(endpoints[0], config);

  const std::string frame = ExampleFrame();
  const auto start = std::chrono::steady_clock::now();
  auto result = client.RoundTrip(
      frame, net::DeadlineAfter(0.05), nullptr);
  const double waited =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_FALSE(result.ok());
  EXPECT_LT(waited, 1.0) << "deadline did not bound the dial/backoff path";
}

TEST_F(NetFig3Test, UnreachableShardFailsFastUnderBackoff) {
  // Nothing listens on this endpoint (and never will).
  std::vector<net::ShardEndpoint> endpoints = {
      net::ShardEndpoint::Unix(UdsPath("nobody", 0))};
  net::SocketTransportConfig config;
  config.connect_timeout_seconds = 0.5;
  config.backoff_initial_seconds = 10.0;  // Window outlasts the test.
  net::SocketTransport transport(endpoints, config);

  const std::string frame = ExampleFrame();
  auto first = transport.Send(0, frame).get();
  EXPECT_FALSE(first.ok());

  const auto start = std::chrono::steady_clock::now();
  auto second = transport.Send(0, frame).get();
  const double waited =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_FALSE(second.ok());
  // Inside the backoff window the transport fails fast instead of
  // burning another connect attempt.
  EXPECT_EQ(second.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_LT(waited, 0.4);
}

TEST_F(NetFig3Test, ServerRejectsMalformedFramesButAnswersErrorsInBand) {
  auto executor = MakeSharded(2, "nm");
  ServerSet servers = StartServers(executor.get(), "mal");

  // A valid frame whose *content* cannot be served (unknown entity set)
  // comes back as an in-band error response on a healthy connection.
  {
    auto conn = net::FrameConn::ConnectUnix(servers.endpoints[0].uds_path);
    ASSERT_TRUE(conn.ok());
    wire::WireRequest request;
    request.query.entity_set1 = "NoSuchSet";
    request.query.entity_set2 = "DNA";
    std::string frame;
    wire::EncodeQueryRequest(request, &frame);
    ASSERT_TRUE((*conn)->WriteFrame(frame).ok());
    std::string response;
    ASSERT_TRUE(
        (*conn)->ReadFrame(&response, wire::kDefaultMaxFramePayload).ok());
    auto decoded = wire::DecodeQueryResponse(response);
    ASSERT_TRUE(decoded.ok());
    EXPECT_FALSE(decoded->error.ok());
    EXPECT_EQ(decoded->error.code, wire::WireErrorCode::kNotFound);
  }

  // Garbage bytes poison the stream: the server closes the connection
  // (clean EOF, or a reset when our unread garbage was still in its
  // buffer) instead of guessing at resynchronization.
  {
    auto conn = net::FrameConn::ConnectUnix(servers.endpoints[0].uds_path);
    ASSERT_TRUE(conn.ok());
    ASSERT_TRUE((*conn)->WriteFrame("not a wire frame at all").ok());
    std::string response;
    const Status read = (*conn)->ReadFrame(&response,
                                           wire::kDefaultMaxFramePayload,
                                           net::DeadlineAfter(5.0));
    EXPECT_FALSE(read.ok());
    EXPECT_NE(read.code(), StatusCode::kResourceExhausted)
        << "server hung instead of closing: " << read.ToString();
  }
  servers.StopAll();
}

}  // namespace
}  // namespace tsb
