#include "mutation/mutation.h"

#include "common/binary_io.h"

namespace tsb {
namespace mutation {

namespace {

constexpr uint8_t kNullTag = 0xff;
constexpr uint8_t kMaxKind = static_cast<uint8_t>(MutationKind::kUpdateAttribute);

void PutValue(std::string* out, const storage::Value& v) {
  if (v.is_null()) {
    PutU8(out, kNullTag);
  } else if (v.is_int64()) {
    PutU8(out, static_cast<uint8_t>(storage::ColumnType::kInt64));
    PutI64(out, v.AsInt64());
  } else if (v.is_double()) {
    PutU8(out, static_cast<uint8_t>(storage::ColumnType::kDouble));
    PutF64(out, v.AsDouble());
  } else {
    PutU8(out, static_cast<uint8_t>(storage::ColumnType::kString));
    PutString(out, v.AsString());
  }
}

storage::Value ReadValue(BinaryReader* r) {
  const uint8_t tag = r->U8();
  if (tag == kNullTag) return storage::Value();
  switch (static_cast<storage::ColumnType>(tag)) {
    case storage::ColumnType::kInt64:
      return storage::Value(r->I64());
    case storage::ColumnType::kDouble:
      return storage::Value(r->F64());
    case storage::ColumnType::kString:
      return storage::Value(r->String());
  }
  r->Fail();
  return storage::Value();
}

}  // namespace

const char* MutationKindToString(MutationKind kind) {
  switch (kind) {
    case MutationKind::kAddNode:
      return "add_node";
    case MutationKind::kRemoveNode:
      return "remove_node";
    case MutationKind::kAddEdge:
      return "add_edge";
    case MutationKind::kRemoveEdge:
      return "remove_edge";
    case MutationKind::kUpdateAttribute:
      return "update_attribute";
  }
  return "unknown";
}

Mutation AddNode(std::string set_name, int64_t id,
                 std::vector<std::pair<std::string, storage::Value>>
                     attributes) {
  Mutation m;
  m.kind = MutationKind::kAddNode;
  m.set_name = std::move(set_name);
  m.id = id;
  m.attributes = std::move(attributes);
  return m;
}

Mutation RemoveNode(std::string set_name, int64_t id) {
  Mutation m;
  m.kind = MutationKind::kRemoveNode;
  m.set_name = std::move(set_name);
  m.id = id;
  return m;
}

Mutation AddEdge(std::string set_name, int64_t id, int64_t from, int64_t to) {
  Mutation m;
  m.kind = MutationKind::kAddEdge;
  m.set_name = std::move(set_name);
  m.id = id;
  m.from = from;
  m.to = to;
  return m;
}

Mutation RemoveEdge(std::string set_name, int64_t id) {
  Mutation m;
  m.kind = MutationKind::kRemoveEdge;
  m.set_name = std::move(set_name);
  m.id = id;
  return m;
}

Mutation UpdateAttribute(std::string set_name, int64_t id, std::string column,
                         storage::Value value) {
  Mutation m;
  m.kind = MutationKind::kUpdateAttribute;
  m.set_name = std::move(set_name);
  m.id = id;
  m.attributes.emplace_back(std::move(column), std::move(value));
  return m;
}

void EncodeMutationBatch(const MutationBatch& batch, std::string* out) {
  PutU32(out, static_cast<uint32_t>(batch.ops.size()));
  for (const Mutation& m : batch.ops) {
    PutU8(out, static_cast<uint8_t>(m.kind));
    PutString(out, m.set_name);
    PutI64(out, m.id);
    PutI64(out, m.from);
    PutI64(out, m.to);
    PutU32(out, static_cast<uint32_t>(m.attributes.size()));
    for (const auto& [column, value] : m.attributes) {
      PutString(out, column);
      PutValue(out, value);
    }
  }
}

Result<MutationBatch> DecodeMutationBatch(std::string_view bytes) {
  BinaryReader r(bytes);
  MutationBatch batch;
  const uint32_t num_ops = r.U32();
  // Each op needs at least kind + 3 ids + two u32 lengths.
  if (num_ops > bytes.size()) r.Fail();
  for (uint32_t i = 0; r.ok() && i < num_ops; ++i) {
    Mutation m;
    const uint8_t kind = r.U8();
    if (kind > kMaxKind) {
      r.Fail();
      break;
    }
    m.kind = static_cast<MutationKind>(kind);
    m.set_name = r.String();
    m.id = r.I64();
    m.from = r.I64();
    m.to = r.I64();
    const uint32_t num_attrs = r.U32();
    if (num_attrs > bytes.size()) r.Fail();
    for (uint32_t a = 0; r.ok() && a < num_attrs; ++a) {
      std::string column = r.String();
      storage::Value value = ReadValue(&r);
      m.attributes.emplace_back(std::move(column), std::move(value));
    }
    batch.ops.push_back(std::move(m));
  }
  if (!r.AtEnd()) r.Fail();
  TSB_RETURN_IF_ERROR(r.status("mutation batch"));
  return batch;
}

}  // namespace mutation
}  // namespace tsb
