#ifndef TSB_MUTATION_DELTA_LOG_H_
#define TSB_MUTATION_DELTA_LOG_H_

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "mutation/mutation.h"

namespace tsb {
namespace mutation {

/// Replay outcome of DeltaLog::Open.
struct ReplayStats {
  size_t batches = 0;        // Well-formed records recovered.
  size_t ops = 0;            // Mutations across those batches.
  size_t truncated_bytes = 0;  // Torn/corrupt tail dropped (0 = clean log).
};

/// Append-only write-ahead log of mutation batches — the durability half
/// of the incremental store. Record format (little-endian, one record per
/// batch):
///
///   [u32 payload_len][u32 checksum][payload]
///
/// where payload = EncodeMutationBatch bytes and checksum is the low 32
/// bits of StableHash128(payload). Append() writes and fsyncs one record
/// (the batch is the atomic durability unit); Open() replays every valid
/// record, stops at the first truncated or checksum-failing record, and
/// truncates the file back to the last valid boundary — a torn tail from
/// a SIGKILL mid-write loses only the unacknowledged batch.
///
/// Thread safety: Append is internally serialized; Open/Close are
/// single-threaded (startup/shutdown).
class DeltaLog {
 public:
  DeltaLog() = default;
  ~DeltaLog();

  DeltaLog(const DeltaLog&) = delete;
  DeltaLog& operator=(const DeltaLog&) = delete;

  /// Opens (creating if absent) the log at `path`, replaying existing
  /// records into `replayed` (appended in log order). Returns replay
  /// stats; fails only on I/O errors, never on a corrupt tail.
  Result<ReplayStats> Open(const std::string& path,
                           std::vector<MutationBatch>* replayed);

  /// Appends one batch as a single record and fsyncs it. The batch is
  /// durable when this returns OK.
  Status Append(const MutationBatch& batch);

  void Close();

  bool is_open() const { return file_ != nullptr; }
  const std::string& path() const { return path_; }
  /// Records appended since Open (not counting replayed ones).
  uint64_t appended_records() const { return appended_records_; }
  uint64_t appended_bytes() const { return appended_bytes_; }

  /// Checksum used by the record format, exposed so tests can forge valid
  /// and corrupt records byte-for-byte.
  static uint32_t Checksum(std::string_view payload);

 private:
  std::mutex mu_;
  std::FILE* file_ = nullptr;
  std::string path_;
  uint64_t appended_records_ = 0;
  uint64_t appended_bytes_ = 0;
};

}  // namespace mutation
}  // namespace tsb

#endif  // TSB_MUTATION_DELTA_LOG_H_
