#include "mutation/delta_log.h"

#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/binary_io.h"
#include "common/hash.h"

namespace tsb {
namespace mutation {

namespace {
constexpr size_t kRecordHeaderBytes = 8;  // u32 len + u32 checksum.
// A record claiming a payload bigger than this is treated as corruption,
// not allocation guidance (a torn header can decode as any length).
constexpr uint32_t kMaxRecordPayload = 64u << 20;
}  // namespace

DeltaLog::~DeltaLog() { Close(); }

uint32_t DeltaLog::Checksum(std::string_view payload) {
  return static_cast<uint32_t>(StableHasher().Add(payload).Digest().lo);
}

Result<ReplayStats> DeltaLog::Open(const std::string& path,
                                   std::vector<MutationBatch>* replayed) {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) {
    return Status::FailedPrecondition("delta log already open: " + path_);
  }

  ReplayStats stats;
  std::string contents;
  if (std::FILE* existing = std::fopen(path.c_str(), "rb")) {
    char buf[1 << 16];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), existing)) > 0) {
      contents.append(buf, n);
    }
    std::fclose(existing);
  }

  // Replay: accept records until the first truncated or corrupt one, then
  // drop everything from that point (a torn tail must not shadow later
  // appends, so the file is cut back to the last valid boundary).
  size_t valid_end = 0;
  while (contents.size() - valid_end >= kRecordHeaderBytes) {
    BinaryReader header(
        std::string_view(contents).substr(valid_end, kRecordHeaderBytes));
    const uint32_t len = header.U32();
    const uint32_t checksum = header.U32();
    if (len > kMaxRecordPayload ||
        contents.size() - valid_end - kRecordHeaderBytes < len) {
      break;  // Torn record.
    }
    std::string_view payload =
        std::string_view(contents).substr(valid_end + kRecordHeaderBytes, len);
    if (Checksum(payload) != checksum) break;  // Corrupt payload.
    Result<MutationBatch> batch = DecodeMutationBatch(payload);
    if (!batch.ok()) break;  // Checksum matched but the body is malformed.
    ++stats.batches;
    stats.ops += batch.value().ops.size();
    if (replayed != nullptr) replayed->push_back(std::move(batch).value());
    valid_end += kRecordHeaderBytes + len;
  }
  stats.truncated_bytes = contents.size() - valid_end;

  if (stats.truncated_bytes > 0) {
    if (truncate(path.c_str(), static_cast<off_t>(valid_end)) != 0) {
      return Status::Internal("failed to truncate corrupt WAL tail of " +
                              path + ": " + std::strerror(errno));
    }
  }

  file_ = std::fopen(path.c_str(), "ab");
  if (file_ == nullptr) {
    return Status::Internal("failed to open WAL " + path + ": " +
                            std::strerror(errno));
  }
  path_ = path;
  return stats;
}

Status DeltaLog::Append(const MutationBatch& batch) {
  std::string payload;
  EncodeMutationBatch(batch, &payload);
  std::string record;
  record.reserve(kRecordHeaderBytes + payload.size());
  PutU32(&record, static_cast<uint32_t>(payload.size()));
  PutU32(&record, Checksum(payload));
  record += payload;

  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) {
    return Status::FailedPrecondition("delta log not open");
  }
  if (std::fwrite(record.data(), 1, record.size(), file_) != record.size()) {
    return Status::Internal("WAL write failed: " +
                            std::string(std::strerror(errno)));
  }
  if (std::fflush(file_) != 0 || fsync(fileno(file_)) != 0) {
    return Status::Internal("WAL fsync failed: " +
                            std::string(std::strerror(errno)));
  }
  ++appended_records_;
  appended_bytes_ += record.size();
  return Status::OK();
}

void DeltaLog::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

}  // namespace mutation
}  // namespace tsb
