#ifndef TSB_MUTATION_DIRTY_TRACKER_H_
#define TSB_MUTATION_DIRTY_TRACKER_H_

#include <set>
#include <utility>
#include <vector>

#include "common/result.h"
#include "graph/schema_graph.h"
#include "mutation/mutation.h"
#include "storage/catalog.h"

namespace tsb {
namespace mutation {

/// Canonical (t1 <= t2) entity-type pair.
using TypePair = std::pair<storage::EntityTypeId, storage::EntityTypeId>;

/// The pairs a mutation batch invalidates, split by what must happen:
///  - structural: AllTops/LeftTops rows can change — these pairs get
///    re-staged into the overlay and their cache entries evicted.
///  - cache_only: precompute rows are unaffected but entity attribute
///    bytes changed (predicates may now match differently), so cached
///    query results for these pairs are evicted without re-staging.
struct DirtyPairs {
  std::vector<TypePair> structural;
  std::vector<TypePair> cache_only;

  size_t total() const { return structural.size() + cache_only.size(); }
};

/// Maps mutations to the entity pairs whose precompute they invalidate.
///
/// Soundness rule: a built pair (X, Y) is structurally dirty when some
/// touched entity type T sits on a schema walk of length <= max_path_length
/// between X and Y, i.e. dist(X, T) + dist(T, Y) <= l over the schema graph
/// (dist(T, T) = 0). Touched types are the mutated node's type for node
/// mutations, and BOTH endpoint types of the relationship for edge
/// mutations — sound because any instance path using the edge passes
/// through nodes of both endpoint types. Attribute updates touch no
/// structure; they only dirty caches of pairs that can see the mutated
/// entity's table.
class DirtyPairTracker {
 public:
  /// `schema` and `db` must outlive the tracker. Distances are computed
  /// once (the schema is immutable for the process lifetime).
  DirtyPairTracker(const graph::SchemaGraph* schema,
                   const storage::Catalog* db);

  /// Classifies every built pair in `built_pairs` (canonical order) against
  /// `batch`. Unknown set names fail with NotFound — callers validate
  /// batches before logging them.
  Result<DirtyPairs> Classify(const MutationBatch& batch,
                              const std::vector<TypePair>& built_pairs,
                              size_t max_path_length) const;

 private:
  /// Hop distance between entity types over the schema graph's
  /// relationship edges; SIZE_MAX when disconnected.
  size_t Distance(storage::EntityTypeId a, storage::EntityTypeId b) const {
    return dist_[a][b];
  }

  const graph::SchemaGraph* schema_;
  const storage::Catalog* db_;
  std::vector<std::vector<size_t>> dist_;  // [type][type] hop counts.
};

}  // namespace mutation
}  // namespace tsb

#endif  // TSB_MUTATION_DIRTY_TRACKER_H_
