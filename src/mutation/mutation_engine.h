#ifndef TSB_MUTATION_MUTATION_ENGINE_H_
#define TSB_MUTATION_MUTATION_ENGINE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "core/builder.h"
#include "core/store.h"
#include "graph/schema_graph.h"
#include "mutation/delta_log.h"
#include "mutation/dirty_tracker.h"
#include "mutation/mutation.h"
#include "obs/registry.h"
#include "storage/catalog.h"

namespace tsb {
namespace mutation {

/// Outcome of one applied batch.
struct ApplyStats {
  uint64_t generation = 0;     // Monotonic batch counter (1-based).
  size_t applied_ops = 0;      // Ops in the batch (cascades not counted).
  size_t structural_pairs = 0; // Pairs re-staged into the overlay epoch.
  size_t cache_only_pairs = 0; // Pairs needing only cache eviction.
  double apply_seconds = 0.0;
  DirtyPairs dirty;            // For the caller's cache invalidation.
};

/// Outcome of one compaction fold.
struct CompactionStats {
  uint64_t round = 0;
  uint64_t generations_folded = 0;
  size_t pairs_folded = 0;   // Pair table sets copied (summed over shards).
  size_t tables_copied = 0;
  double fold_seconds = 0.0;
};

/// The incremental write path: applies mutation batches to the live store
/// WITHOUT a full rebuild, keeping every query method byte-identical to a
/// from-scratch rebuild of the mutated graph.
///
/// LSM shape over precomputed topology data:
///  - WAL (DeltaLog, optional): ApplyLogged fsyncs the batch before
///    acknowledging; Replay() re-applies recovered batches on startup.
///  - Overlay: Apply composes a NEW TopologyStore per shard — clean pairs'
///    PairTopologyData copied verbatim (their tables stay owned by the
///    previous epoch, which the new store keeps alive via its cleanup
///    chain), dirty pairs re-staged from the mutated graph under an
///    "m<generation>." namespace — and publishes it through the existing
///    StoreHandle swap. Data tables are never edited in place: a touched
///    entity/relationship table is copy-on-write versioned and reached
///    through TopologyStore::ResolveDataTable, so retired snapshots keep
///    reading their own bytes.
///  - Compaction: CompactNow (or the background lane) folds the live
///    overlay chain into a self-contained "c<round>." epoch per shard, so
///    retired generations and their tables can unwind.
///
/// Sharding: construct with one StoreHandle for the single-store engine or
/// N handles for the sharded store; dirty pairs are re-staged once and
/// split with the same SplitStagingForShards routing as the base build.
///
/// Thread safety: Apply/ApplyLogged/Replay/CompactNow serialize on an
/// internal mutex; queries are never blocked (they read snapshots). The
/// engine must be the only writer swapping these handles (a concurrent
/// full Rebuild must be externally serialized against it).
class MutationEngine : public obs::MetricsSource {
 public:
  struct Options {
    /// Must match the config the base store was built with; the per-pair
    /// recorded caps (l, representatives, unions) take precedence when
    /// re-staging each pair.
    core::BuildConfig build;
    /// Fold automatically once this many generations accumulate (checked
    /// every `compaction_poll` by the background lane).
    size_t compaction_min_generations = 4;
    std::chrono::milliseconds compaction_poll{100};
    /// Pause between per-pair folds — the low-priority throttle that keeps
    /// compaction from starving interactive traffic.
    std::chrono::microseconds compaction_pair_pause{500};
  };

  MutationEngine(storage::Catalog* db, const graph::SchemaGraph* schema,
                 std::vector<std::shared_ptr<core::StoreHandle>> handles,
                 Options options);
  ~MutationEngine() override;

  MutationEngine(const MutationEngine&) = delete;
  MutationEngine& operator=(const MutationEngine&) = delete;

  /// Attaches the WAL used by ApplyLogged (not owned; may be null).
  void set_delta_log(DeltaLog* log) { log_ = log; }

  /// Called after each successful apply with the batch's dirty pairs, on
  /// the applying thread — the service hooks per-pair cache eviction here.
  using InvalidationCallback = std::function<void(const DirtyPairs&)>;
  void set_invalidation_callback(InvalidationCallback cb) {
    invalidate_ = std::move(cb);
  }

  /// Validates and applies one batch, swapping the overlay epoch in. No
  /// side effects on failure. Does not touch the WAL.
  Result<ApplyStats> Apply(const MutationBatch& batch);

  /// Apply + WAL append: the batch is durable when this returns OK (a
  /// crash before the append loses only the unacknowledged batch).
  Result<ApplyStats> ApplyLogged(const MutationBatch& batch);

  /// Re-applies batches recovered by DeltaLog::Open, in order, without
  /// re-logging them.
  Status Replay(const std::vector<MutationBatch>& batches);

  /// Folds the live overlay chain into a fresh self-contained epoch.
  /// No-op (zero stats) when nothing accumulated. Serialized against
  /// Apply; queries keep flowing off snapshots throughout.
  Result<CompactionStats> CompactNow();

  /// Background compaction lane (idempotent start/stop).
  void StartCompaction();
  void StopCompaction();

  size_t num_shards() const { return handles_.size(); }
  uint64_t generation() const {
    return generation_.load(std::memory_order_relaxed);
  }
  uint64_t uncompacted_generations() const {
    return uncompacted_generations_.load(std::memory_order_relaxed);
  }
  bool compaction_running() const {
    return compacting_.load(std::memory_order_relaxed);
  }
  uint64_t batches_applied() const {
    return batches_applied_.load(std::memory_order_relaxed);
  }
  uint64_t ops_applied() const {
    return ops_applied_.load(std::memory_order_relaxed);
  }
  uint64_t compaction_rounds() const {
    return compaction_round_.load(std::memory_order_relaxed);
  }

  /// Human-readable status block for `topctl compaction`.
  std::string StatusString() const;

  /// obs::MetricsSource: delta/overlay/compaction counters.
  void Collect(obs::MetricsSink* sink) const override;

 private:
  Result<ApplyStats> ApplyLocked(const MutationBatch& batch);
  Result<CompactionStats> CompactLocked();
  void CompactionLoop();

  storage::Catalog* db_;
  const graph::SchemaGraph* schema_;
  std::vector<std::shared_ptr<core::StoreHandle>> handles_;
  Options options_;
  DirtyPairTracker tracker_;
  DeltaLog* log_ = nullptr;
  InvalidationCallback invalidate_;

  /// Serializes writers (apply, compaction). Never held by query threads.
  mutable std::mutex apply_mu_;

  std::atomic<uint64_t> generation_{0};
  std::atomic<uint64_t> compaction_round_{0};
  std::atomic<uint64_t> uncompacted_generations_{0};
  std::atomic<uint64_t> batches_applied_{0};
  std::atomic<uint64_t> ops_applied_{0};
  std::atomic<uint64_t> pairs_restaged_total_{0};
  std::atomic<uint64_t> cache_only_pairs_total_{0};
  std::atomic<uint64_t> pairs_folded_total_{0};
  std::atomic<bool> compacting_{false};

  /// Pending-pair set and last-fold/apply snapshots for the admin view.
  mutable std::mutex status_mu_;
  std::set<TypePair> pending_pairs_;
  CompactionStats last_fold_;
  double last_apply_seconds_ = 0.0;

  std::thread compactor_;
  std::mutex cv_mu_;
  std::condition_variable cv_;
  bool stop_compactor_ = true;  // True while no thread is running.
};

}  // namespace mutation
}  // namespace tsb

#endif  // TSB_MUTATION_MUTATION_ENGINE_H_
