#include "mutation/dirty_tracker.h"

#include <algorithm>
#include <deque>
#include <limits>
#include <set>

namespace tsb {
namespace mutation {

DirtyPairTracker::DirtyPairTracker(const graph::SchemaGraph* schema,
                                   const storage::Catalog* db)
    : schema_(schema), db_(db) {
  const size_t n = schema_->num_entity_types();
  std::vector<std::vector<storage::EntityTypeId>> adj(n);
  for (storage::RelTypeId r = 0; r < schema_->num_rel_types(); ++r) {
    const storage::EntityTypeId a = schema_->rel_from(r);
    const storage::EntityTypeId b = schema_->rel_to(r);
    adj[a].push_back(b);
    if (a != b) adj[b].push_back(a);
  }
  const size_t unreachable = std::numeric_limits<size_t>::max();
  dist_.assign(n, std::vector<size_t>(n, unreachable));
  for (storage::EntityTypeId start = 0; start < n; ++start) {
    std::deque<storage::EntityTypeId> frontier{start};
    dist_[start][start] = 0;
    while (!frontier.empty()) {
      const storage::EntityTypeId u = frontier.front();
      frontier.pop_front();
      for (storage::EntityTypeId v : adj[u]) {
        if (dist_[start][v] != unreachable) continue;
        dist_[start][v] = dist_[start][u] + 1;
        frontier.push_back(v);
      }
    }
  }
}

Result<DirtyPairs> DirtyPairTracker::Classify(
    const MutationBatch& batch, const std::vector<TypePair>& built_pairs,
    size_t max_path_length) const {
  // Touched types, split by whether the mutation changes graph structure
  // (node/edge add/remove) or only attribute bytes.
  std::set<storage::EntityTypeId> structural_types;
  std::set<storage::EntityTypeId> attr_types;
  for (const Mutation& op : batch.ops) {
    switch (op.kind) {
      case MutationKind::kAddNode:
      case MutationKind::kRemoveNode:
      case MutationKind::kUpdateAttribute: {
        const storage::EntitySetDef* es = db_->FindEntitySet(op.set_name);
        if (es == nullptr) {
          return Status::NotFound("unknown entity set '" + op.set_name + "'");
        }
        if (op.kind == MutationKind::kUpdateAttribute) {
          attr_types.insert(es->id);
        } else {
          structural_types.insert(es->id);
        }
        break;
      }
      case MutationKind::kAddEdge:
      case MutationKind::kRemoveEdge: {
        const storage::RelationshipSetDef* rs =
            db_->FindRelationshipSet(op.set_name);
        if (rs == nullptr) {
          return Status::NotFound("unknown relationship set '" + op.set_name +
                                  "'");
        }
        // Any path using the edge passes nodes of both endpoint types, so
        // the node rule with both types covers every affected pair.
        structural_types.insert(rs->from_type);
        structural_types.insert(rs->to_type);
        break;
      }
    }
  }

  const size_t unreachable = std::numeric_limits<size_t>::max();
  DirtyPairs out;
  for (const TypePair& pair : built_pairs) {
    bool structural = false;
    for (storage::EntityTypeId t : structural_types) {
      const size_t da = Distance(pair.first, t);
      const size_t db = Distance(t, pair.second);
      if (da != unreachable && db != unreachable &&
          da + db <= max_path_length) {
        structural = true;
        break;
      }
    }
    if (structural) {
      out.structural.push_back(pair);
      continue;
    }
    // Attribute-only reach: predicates evaluate over the pair's endpoint
    // entity tables, so a pair is cache-dirty iff a mutated type is one of
    // its endpoints. (Structural types also rewrite their entity table;
    // a pair endpointed on one that escaped the distance rule still reads
    // the versioned table, so it must drop cached results too.)
    bool endpoint_touched =
        attr_types.count(pair.first) > 0 || attr_types.count(pair.second) > 0 ||
        structural_types.count(pair.first) > 0 ||
        structural_types.count(pair.second) > 0;
    if (endpoint_touched) out.cache_only.push_back(pair);
  }
  return out;
}

}  // namespace mutation
}  // namespace tsb
