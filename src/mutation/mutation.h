#ifndef TSB_MUTATION_MUTATION_H_
#define TSB_MUTATION_MUTATION_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"
#include "storage/value.h"

namespace tsb {
namespace mutation {

/// The five data-graph mutations of the incremental write path. The
/// numeric values are the on-disk WAL / on-wire encoding and must never be
/// reordered.
enum class MutationKind : uint8_t {
  kAddNode = 0,
  kRemoveNode = 1,
  kAddEdge = 2,
  kRemoveEdge = 3,
  kUpdateAttribute = 4,
};

const char* MutationKindToString(MutationKind kind);

/// One data-graph mutation. Field use by kind:
///  - kAddNode: set_name = entity set, id = new entity id, attributes =
///    non-id column values (unnamed columns default to null).
///  - kRemoveNode: set_name = entity set, id = entity id. Incident edges
///    are removed as an automatic cascade (referential integrity is a
///    DataGraphView invariant).
///  - kAddEdge: set_name = relationship set, id = new edge row id,
///    from/to = endpoint entity ids.
///  - kRemoveEdge: set_name = relationship set, id = edge row id.
///  - kUpdateAttribute: set_name = entity set, id = entity id,
///    attributes = column -> new value (non-structural: never touches the
///    id column).
struct Mutation {
  MutationKind kind = MutationKind::kAddNode;
  std::string set_name;
  int64_t id = 0;
  int64_t from = 0;
  int64_t to = 0;
  std::vector<std::pair<std::string, storage::Value>> attributes;

  bool operator==(const Mutation& other) const {
    return kind == other.kind && set_name == other.set_name &&
           id == other.id && from == other.from && to == other.to &&
           attributes == other.attributes;
  }
  bool operator!=(const Mutation& other) const { return !(*this == other); }
};

/// A batch is the atomic unit of logging, application, and replay: it is
/// fsync'd as one WAL record and becomes visible through one store swap.
struct MutationBatch {
  std::vector<Mutation> ops;

  bool operator==(const MutationBatch& other) const {
    return ops == other.ops;
  }
  bool operator!=(const MutationBatch& other) const {
    return !(*this == other);
  }
};

// Construction helpers (tests, demos, tools).
Mutation AddNode(std::string set_name, int64_t id,
                 std::vector<std::pair<std::string, storage::Value>>
                     attributes = {});
Mutation RemoveNode(std::string set_name, int64_t id);
Mutation AddEdge(std::string set_name, int64_t id, int64_t from, int64_t to);
Mutation RemoveEdge(std::string set_name, int64_t id);
Mutation UpdateAttribute(std::string set_name, int64_t id, std::string column,
                         storage::Value value);

/// Binary codec over common/binary_io.h. Values carry a one-byte type tag
/// (0xff = null, else storage::ColumnType) followed by the typed payload,
/// so encode -> decode -> encode is byte-identical. Shared by the WAL
/// record format and the kMutationRequest wire frame.
void EncodeMutationBatch(const MutationBatch& batch, std::string* out);
Result<MutationBatch> DecodeMutationBatch(std::string_view bytes);

}  // namespace mutation
}  // namespace tsb

#endif  // TSB_MUTATION_MUTATION_H_
