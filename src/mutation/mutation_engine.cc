#include "mutation/mutation_engine.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "columnar/blocks.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "core/pruner.h"
#include "graph/data_graph.h"
#include "storage/table.h"

namespace tsb {
namespace mutation {

namespace {

bool TypeMatches(const storage::Value& v, storage::ColumnType type) {
  switch (type) {
    case storage::ColumnType::kInt64:
      return v.is_int64();
    case storage::ColumnType::kDouble:
      return v.is_double();
    case storage::ColumnType::kString:
      return v.is_string();
  }
  return false;
}

storage::Value DefaultValue(storage::ColumnType type) {
  switch (type) {
    case storage::ColumnType::kInt64:
      return storage::Value(int64_t{0});
    case storage::ColumnType::kDouble:
      return storage::Value(0.0);
    case storage::ColumnType::kString:
      return storage::Value(std::string());
  }
  return storage::Value(int64_t{0});
}

/// In-memory copy of one data table with the batch's ops applied — the
/// validation half of Apply. Rows keep their original order (removals are
/// tombstoned, additions append), matching what a from-scratch fixture
/// with the same edits would contain. Nothing touches the storage catalog
/// until the whole batch validates.
struct TableModel {
  std::string base_name;  // ORIGINAL def.table_name — the override map key.
  storage::TableSchema schema;
  std::vector<storage::Tuple> rows;
  std::vector<bool> dead;
  std::unordered_map<int64_t, size_t> row_by_id;
  size_t id_col = 0;
  size_t from_col = 0;  // Relationship tables only.
  size_t to_col = 0;
  bool touched = false;
};

/// Applies a batch sequentially against lazily loaded table models, so op k
/// validates against the state ops 1..k-1 produced (add-after-remove of the
/// same id is legal, an edge to a node removed earlier in the batch is not).
class BatchApplier {
 public:
  BatchApplier(storage::Catalog* db, const core::TopologyStore& live)
      : db_(db), live_(live) {}

  Status Apply(const MutationBatch& batch) {
    for (const Mutation& op : batch.ops) {
      TSB_RETURN_IF_ERROR(ApplyOp(op));
    }
    return Status::OK();
  }

  /// Models that actually changed, in first-touch order (deterministic
  /// table-creation order for the COW materialization).
  std::vector<const TableModel*> touched() const {
    std::vector<const TableModel*> out;
    for (const std::string& name : load_order_) {
      const TableModel& m = models_.at(name);
      if (m.touched) out.push_back(&m);
    }
    return out;
  }

 private:
  Status ApplyOp(const Mutation& op) {
    switch (op.kind) {
      case MutationKind::kAddNode:
        return AddNodeOp(op);
      case MutationKind::kRemoveNode:
        return RemoveNodeOp(op);
      case MutationKind::kAddEdge:
        return AddEdgeOp(op);
      case MutationKind::kRemoveEdge:
        return RemoveEdgeOp(op);
      case MutationKind::kUpdateAttribute:
        return UpdateAttributeOp(op);
    }
    return Status::InvalidArgument("unknown mutation kind");
  }

  Status AddNodeOp(const Mutation& op) {
    const storage::EntitySetDef* es = db_->FindEntitySet(op.set_name);
    if (es == nullptr) {
      return Status::NotFound("unknown entity set '" + op.set_name + "'");
    }
    TSB_RETURN_IF_ERROR(EnsureNodeIds());
    if (all_node_ids_.count(op.id) > 0) {
      return Status::AlreadyExists("entity id " + std::to_string(op.id) +
                                   " already exists (ids are global)");
    }
    TableModel* m = EntityModel(*es);
    storage::Tuple row(m->schema.num_columns());
    for (size_t c = 0; c < m->schema.num_columns(); ++c) {
      row[c] = c == m->id_col ? storage::Value(op.id)
                              : DefaultValue(m->schema.column(c).type);
    }
    for (const auto& [column, value] : op.attributes) {
      std::optional<size_t> c = m->schema.FindColumn(column);
      if (!c.has_value()) {
        return Status::InvalidArgument("no column '" + column + "' in " +
                                       m->base_name);
      }
      if (*c == m->id_col) {
        return Status::InvalidArgument("attribute must not name the id column");
      }
      if (value.is_null() || !TypeMatches(value, m->schema.column(*c).type)) {
        return Status::InvalidArgument("type mismatch for column '" + column +
                                       "' of " + m->base_name);
      }
      row[*c] = value;
    }
    m->row_by_id.emplace(op.id, m->rows.size());
    m->rows.push_back(std::move(row));
    m->dead.push_back(false);
    m->touched = true;
    all_node_ids_.insert(op.id);
    return Status::OK();
  }

  Status RemoveNodeOp(const Mutation& op) {
    const storage::EntitySetDef* es = db_->FindEntitySet(op.set_name);
    if (es == nullptr) {
      return Status::NotFound("unknown entity set '" + op.set_name + "'");
    }
    TableModel* m = EntityModel(*es);
    auto it = m->row_by_id.find(op.id);
    if (it == m->row_by_id.end()) {
      return Status::NotFound("no entity " + std::to_string(op.id) + " in " +
                              op.set_name);
    }
    m->dead[it->second] = true;
    m->row_by_id.erase(it);
    m->touched = true;
    TSB_RETURN_IF_ERROR(EnsureNodeIds());
    all_node_ids_.erase(op.id);
    // Cascade: drop every incident edge (referential integrity is a
    // DataGraphView invariant, so a from-scratch rebuild of the mutated
    // fixture could not carry a dangling edge either).
    for (const storage::RelationshipSetDef& rs : db_->relationship_sets()) {
      if (rs.from_type != es->id && rs.to_type != es->id) continue;
      TableModel* rm = RelModel(rs);
      for (size_t r = 0; r < rm->rows.size(); ++r) {
        if (rm->dead[r]) continue;
        if ((rs.from_type == es->id &&
             rm->rows[r][rm->from_col].AsInt64() == op.id) ||
            (rs.to_type == es->id &&
             rm->rows[r][rm->to_col].AsInt64() == op.id)) {
          rm->row_by_id.erase(rm->rows[r][rm->id_col].AsInt64());
          rm->dead[r] = true;
          rm->touched = true;
        }
      }
    }
    return Status::OK();
  }

  Status AddEdgeOp(const Mutation& op) {
    const storage::RelationshipSetDef* rs =
        db_->FindRelationshipSet(op.set_name);
    if (rs == nullptr) {
      return Status::NotFound("unknown relationship set '" + op.set_name +
                              "'");
    }
    TableModel* m = RelModel(*rs);
    if (m->row_by_id.count(op.id) > 0) {
      return Status::AlreadyExists("edge id " + std::to_string(op.id) +
                                   " already exists in " + op.set_name);
    }
    TableModel* from_m = EntityModel(db_->entity_set(rs->from_type));
    if (from_m->row_by_id.count(op.from) == 0) {
      return Status::NotFound("edge endpoint " + std::to_string(op.from) +
                              " not in " + db_->entity_set(rs->from_type).name);
    }
    TableModel* to_m = EntityModel(db_->entity_set(rs->to_type));
    if (to_m->row_by_id.count(op.to) == 0) {
      return Status::NotFound("edge endpoint " + std::to_string(op.to) +
                              " not in " + db_->entity_set(rs->to_type).name);
    }
    storage::Tuple row(m->schema.num_columns());
    for (size_t c = 0; c < m->schema.num_columns(); ++c) {
      row[c] = DefaultValue(m->schema.column(c).type);
    }
    row[m->id_col] = storage::Value(op.id);
    row[m->from_col] = storage::Value(op.from);
    row[m->to_col] = storage::Value(op.to);
    m->row_by_id.emplace(op.id, m->rows.size());
    m->rows.push_back(std::move(row));
    m->dead.push_back(false);
    m->touched = true;
    return Status::OK();
  }

  Status RemoveEdgeOp(const Mutation& op) {
    const storage::RelationshipSetDef* rs =
        db_->FindRelationshipSet(op.set_name);
    if (rs == nullptr) {
      return Status::NotFound("unknown relationship set '" + op.set_name +
                              "'");
    }
    TableModel* m = RelModel(*rs);
    auto it = m->row_by_id.find(op.id);
    if (it == m->row_by_id.end()) {
      return Status::NotFound("no edge " + std::to_string(op.id) + " in " +
                              op.set_name);
    }
    m->dead[it->second] = true;
    m->row_by_id.erase(it);
    m->touched = true;
    return Status::OK();
  }

  Status UpdateAttributeOp(const Mutation& op) {
    const storage::EntitySetDef* es = db_->FindEntitySet(op.set_name);
    if (es == nullptr) {
      return Status::NotFound("unknown entity set '" + op.set_name + "'");
    }
    TableModel* m = EntityModel(*es);
    auto it = m->row_by_id.find(op.id);
    if (it == m->row_by_id.end()) {
      return Status::NotFound("no entity " + std::to_string(op.id) + " in " +
                              op.set_name);
    }
    if (op.attributes.empty()) {
      return Status::InvalidArgument("attribute update carries no columns");
    }
    for (const auto& [column, value] : op.attributes) {
      std::optional<size_t> c = m->schema.FindColumn(column);
      if (!c.has_value()) {
        return Status::InvalidArgument("no column '" + column + "' in " +
                                       m->base_name);
      }
      if (*c == m->id_col) {
        return Status::InvalidArgument(
            "attribute update must not touch the id column");
      }
      if (value.is_null() || !TypeMatches(value, m->schema.column(*c).type)) {
        return Status::InvalidArgument("type mismatch for column '" + column +
                                       "' of " + m->base_name);
      }
      m->rows[it->second][*c] = value;
    }
    m->touched = true;
    return Status::OK();
  }

  /// Loads (once) the model of a set's backing table, reading through the
  /// live store's copy-on-write override so chained generations stack.
  TableModel* LoadModel(const std::string& base_name, const std::string& id_column,
                        const std::string& from_column,
                        const std::string& to_column) {
    auto it = models_.find(base_name);
    if (it != models_.end()) return &it->second;
    const storage::Table& src =
        *db_->GetTable(live_.ResolveDataTable(base_name));
    TableModel m;
    m.base_name = base_name;
    m.schema = src.schema();
    m.id_col = m.schema.ColumnIndexOrDie(id_column);
    if (!from_column.empty()) {
      m.from_col = m.schema.ColumnIndexOrDie(from_column);
      m.to_col = m.schema.ColumnIndexOrDie(to_column);
    }
    m.rows.reserve(src.num_rows());
    m.dead.assign(src.num_rows(), false);
    for (size_t r = 0; r < src.num_rows(); ++r) {
      m.row_by_id.emplace(src.GetInt64(r, m.id_col), r);
      m.rows.push_back(src.GetRow(static_cast<storage::RowIdx>(r)));
    }
    load_order_.push_back(base_name);
    return &models_.emplace(base_name, std::move(m)).first->second;
  }

  TableModel* EntityModel(const storage::EntitySetDef& es) {
    return LoadModel(es.table_name, es.id_column, "", "");
  }
  TableModel* RelModel(const storage::RelationshipSetDef& rs) {
    return LoadModel(rs.table_name, rs.id_column, rs.from_column,
                     rs.to_column);
  }

  /// Entity ids are globally unique (DataGraphView keys nodes by bare id),
  /// so uniqueness of an added node is checked across every entity set.
  Status EnsureNodeIds() {
    if (node_ids_loaded_) return Status::OK();
    for (const storage::EntitySetDef& es : db_->entity_sets()) {
      const TableModel* m = EntityModel(es);
      for (const auto& [id, row] : m->row_by_id) all_node_ids_.insert(id);
    }
    node_ids_loaded_ = true;
    return Status::OK();
  }

  storage::Catalog* db_;
  const core::TopologyStore& live_;
  std::unordered_map<std::string, TableModel> models_;
  std::vector<std::string> load_order_;
  std::unordered_set<int64_t> all_node_ids_;
  bool node_ids_loaded_ = false;
};

/// Copies a table's rows under a new name (compaction fold).
Result<storage::Table*> CopyTable(storage::Catalog* db,
                                  const std::string& src_name,
                                  const std::string& dst_name) {
  const storage::Table* src = db->FindTable(src_name);
  if (src == nullptr) {
    return Status::NotFound("fold source table missing: " + src_name);
  }
  auto created = db->CreateTable(dst_name, src->schema());
  TSB_RETURN_IF_ERROR(created.status());
  storage::Table* dst = created.value();
  for (size_t r = 0; r < src->num_rows(); ++r) {
    dst->AppendRowOrDie(src->GetRow(static_cast<storage::RowIdx>(r)));
  }
  return dst;
}

void CollectPairTables(const core::PairTopologyData& pair,
                       std::vector<std::string>* out) {
  for (const std::string* t :
       {&pair.alltops_table, &pair.pairclasses_table, &pair.lefttops_table,
        &pair.excptops_table}) {
    if (!t->empty()) out->push_back(*t);
  }
}

}  // namespace

MutationEngine::MutationEngine(
    storage::Catalog* db, const graph::SchemaGraph* schema,
    std::vector<std::shared_ptr<core::StoreHandle>> handles, Options options)
    : db_(db),
      schema_(schema),
      handles_(std::move(handles)),
      options_(std::move(options)),
      tracker_(schema, db) {
  TSB_CHECK(!handles_.empty()) << "MutationEngine needs at least one handle";
}

MutationEngine::~MutationEngine() { StopCompaction(); }

Result<ApplyStats> MutationEngine::Apply(const MutationBatch& batch) {
  std::lock_guard<std::mutex> lock(apply_mu_);
  return ApplyLocked(batch);
}

Result<ApplyStats> MutationEngine::ApplyLogged(const MutationBatch& batch) {
  std::lock_guard<std::mutex> lock(apply_mu_);
  if (log_ == nullptr || !log_->is_open()) {
    return Status::FailedPrecondition("no delta log attached");
  }
  // Validate WITHOUT side effects first so invalid batches never reach the
  // log, then make the batch durable, then make it visible — a crash
  // between the two loses nothing (replay re-applies the logged batch).
  {
    BatchApplier probe(db_, *handles_[0]->Snapshot());
    TSB_RETURN_IF_ERROR(probe.Apply(batch));
  }
  TSB_RETURN_IF_ERROR(log_->Append(batch));
  return ApplyLocked(batch);
}

Status MutationEngine::Replay(const std::vector<MutationBatch>& batches) {
  std::lock_guard<std::mutex> lock(apply_mu_);
  for (const MutationBatch& batch : batches) {
    auto applied = ApplyLocked(batch);
    TSB_RETURN_IF_ERROR(applied.status());
  }
  return Status::OK();
}

Result<ApplyStats> MutationEngine::ApplyLocked(const MutationBatch& batch) {
  Stopwatch watch;
  if (batch.ops.empty()) {
    return Status::InvalidArgument("empty mutation batch");
  }
  const size_t nshards = handles_.size();
  std::vector<std::shared_ptr<core::TopologyStore>> prev(nshards);
  for (size_t s = 0; s < nshards; ++s) prev[s] = handles_[s]->Snapshot();

  // Phase 1 — validate and model the batch entirely in memory. Any failure
  // returns here, before a single catalog write.
  BatchApplier applier(db_, *prev[0]);
  TSB_RETURN_IF_ERROR(applier.Apply(batch));

  std::vector<TypePair> built;
  size_t max_l = options_.build.max_path_length;
  for (const auto& [key, data] : prev[0]->pairs()) {
    built.push_back(key);
    max_l = std::max(max_l, data.max_path_length);
  }
  DirtyPairs dirty;
  TSB_ASSIGN_OR_RETURN(dirty, tracker_.Classify(batch, built, max_l));

  // Phase 2 — materialize copy-on-write data tables under this
  // generation's namespace. Overrides chain: start from the live store's
  // map so an untouched table keeps resolving to its latest version.
  const uint64_t gen = generation_.load(std::memory_order_relaxed) + 1;
  const std::string data_ns = "m" + std::to_string(gen) + ".";
  std::unordered_map<std::string, std::string> overrides =
      prev[0]->data_table_overrides();
  std::vector<std::string> created_data_tables;
  for (const TableModel* model : applier.touched()) {
    const std::string versioned = data_ns + model->base_name;
    auto created = db_->CreateTable(versioned, model->schema);
    if (!created.ok()) {
      for (const std::string& t : created_data_tables) (void)db_->DropTable(t);
      return created.status();
    }
    storage::Table* table = created.value();
    for (size_t r = 0; r < model->rows.size(); ++r) {
      if (!model->dead[r]) table->AppendRowOrDie(model->rows[r]);
    }
    overrides[model->base_name] = versioned;
    created_data_tables.push_back(versioned);
  }
  auto new_view =
      std::make_shared<const graph::DataGraphView>(*db_, overrides);
  // One dropper token shared by every shard store of this generation: the
  // COW tables disappear when the LAST composed store referencing them
  // unwinds (compaction breaks the chain; snapshots drain it).
  std::shared_ptr<void> dropper(
      nullptr, [db = db_, tables = created_data_tables](void*) {
        for (const std::string& t : tables) (void)db->DropTable(t);
      });

  // Phase 3 — compose the overlay store per shard: adopt the base catalog
  // (TID continuity), copy clean pairs verbatim, restage dirty pairs from
  // the mutated graph under the generation namespace.
  std::set<TypePair> structural(dirty.structural.begin(),
                                dirty.structural.end());
  std::vector<std::shared_ptr<core::TopologyStore>> next(nshards);
  for (size_t s = 0; s < nshards; ++s) {
    next[s] = std::make_shared<core::TopologyStore>();
    next[s]->adopt_catalog(prev[s]->shared_catalog());
    for (const auto& [base, versioned] : overrides) {
      next[s]->set_data_table_override(base, versioned);
    }
    next[s]->set_data_view(new_view);
    for (const auto& [key, data] : prev[s]->pairs()) {
      if (structural.count(key) > 0) continue;  // Restaged below.
      core::PairTopologyData copy = data;
      const std::string& e1_base = db_->entity_set(copy.t1).table_name;
      const std::string& e2_base = db_->entity_set(copy.t2).table_name;
      const bool endpoints_changed =
          next[s]->ResolveDataTable(e1_base) !=
              prev[s]->ResolveDataTable(e1_base) ||
          next[s]->ResolveDataTable(e2_base) !=
              prev[s]->ResolveDataTable(e2_base);
      if (endpoints_changed) {
        // The columnar mirrors dictionary-encode endpoint rows; rebuild
        // them against the versioned tables so the scan stays hot (a stale
        // slice would silently fall back to the row path).
        copy.alltops_blocks = nullptr;
        copy.lefttops_blocks = nullptr;
      }
      auto added = next[s]->AddPair(std::move(copy));
      TSB_RETURN_IF_ERROR(added.status());
      if (endpoints_changed) {
        columnar::AttachSlices(*db_, next[s]->catalog(), added.value(),
                               next[s]->ResolveDataTable(e1_base),
                               next[s]->ResolveDataTable(e2_base));
      }
    }
  }

  core::TopologyBuilder builder(db_, schema_, new_view.get());
  for (const TypePair& key : dirty.structural) {
    const core::PairTopologyData* prev_pair =
        prev[0]->FindPair(key.first, key.second);
    core::BuildConfig cfg = options_.build;
    cfg.table_namespace = data_ns;
    if (prev_pair != nullptr) {
      // Re-stage with the caps the pair was originally built with, so the
      // overlay is byte-identical to rebuilding the mutated graph under
      // the base configuration.
      if (prev_pair->max_path_length > 0) {
        cfg.max_path_length = prev_pair->max_path_length;
      }
      if (prev_pair->build_max_class_representatives > 0) {
        cfg.max_class_representatives =
            prev_pair->build_max_class_representatives;
      }
      if (prev_pair->build_max_union_combinations > 0) {
        cfg.max_union_combinations = prev_pair->build_max_union_combinations;
      }
    }
    core::PairBuildStaging staging;
    TSB_ASSIGN_OR_RETURN(staging,
                         builder.StagePair(key.first, key.second, cfg));
    if (nshards == 1) {
      TSB_RETURN_IF_ERROR(builder.CommitStaged(std::move(staging),
                                               next[0].get()));
    } else {
      std::vector<core::PairBuildStaging> slices =
          core::SplitStagingForShards(staging, nshards);
      for (size_t s = 0; s < nshards; ++s) {
        TSB_RETURN_IF_ERROR(
            builder.CommitStaged(std::move(slices[s]), next[s].get()));
      }
    }
    if (prev_pair != nullptr && prev_pair->pruned) {
      core::PruneConfig prune;
      prune.frequency_threshold = prev_pair->prune_threshold;
      for (size_t s = 0; s < nshards; ++s) {
        auto pruned = core::PruneFrequentTopologies(db_, next[s].get(),
                                                    key.first, key.second,
                                                    prune);
        TSB_RETURN_IF_ERROR(pruned.status());
      }
    }
  }

  // Phase 4 — wire lifetimes and publish. Each overlay store's cleanup
  // drops its own restaged tables and pins (a) the store it overlaid — the
  // parent chain keeps every table a copied clean pair still references
  // alive — and (b) the generation's shared COW-table dropper.
  for (size_t s = 0; s < nshards; ++s) {
    std::vector<std::string> own_tables;
    for (const TypePair& key : dirty.structural) {
      const core::PairTopologyData* p =
          next[s]->FindPair(key.first, key.second);
      if (p != nullptr) CollectPairTables(*p, &own_tables);
    }
    next[s]->set_cleanup(
        [db = db_, own_tables, parent = prev[s], dropper]() {
          for (const std::string& t : own_tables) (void)db->DropTable(t);
          // `parent` and `dropper` release with this closure, cascading
          // the chain in order.
          (void)parent;
          (void)dropper;
        });
    handles_[s]->Swap(next[s]);
  }

  ApplyStats stats;
  stats.generation = gen;
  stats.applied_ops = batch.ops.size();
  stats.structural_pairs = dirty.structural.size();
  stats.cache_only_pairs = dirty.cache_only.size();
  stats.dirty = dirty;

  generation_.store(gen, std::memory_order_relaxed);
  uncompacted_generations_.fetch_add(1, std::memory_order_relaxed);
  batches_applied_.fetch_add(1, std::memory_order_relaxed);
  ops_applied_.fetch_add(batch.ops.size(), std::memory_order_relaxed);
  pairs_restaged_total_.fetch_add(dirty.structural.size(),
                                  std::memory_order_relaxed);
  cache_only_pairs_total_.fetch_add(dirty.cache_only.size(),
                                    std::memory_order_relaxed);
  stats.apply_seconds = watch.ElapsedSeconds();
  {
    std::lock_guard<std::mutex> lock(status_mu_);
    for (const TypePair& p : dirty.structural) pending_pairs_.insert(p);
    last_apply_seconds_ = stats.apply_seconds;
  }
  if (invalidate_) invalidate_(stats.dirty);
  return stats;
}

Result<CompactionStats> MutationEngine::CompactNow() {
  std::lock_guard<std::mutex> lock(apply_mu_);
  return CompactLocked();
}

Result<CompactionStats> MutationEngine::CompactLocked() {
  CompactionStats stats;
  const uint64_t pending =
      uncompacted_generations_.load(std::memory_order_relaxed);
  if (pending == 0) return stats;  // Nothing accumulated; zero stats.

  Stopwatch watch;
  compacting_.store(true, std::memory_order_relaxed);
  const uint64_t round =
      compaction_round_.load(std::memory_order_relaxed) + 1;
  const std::string base_ns = "c" + std::to_string(round) + ".";
  const size_t nshards = handles_.size();

  std::vector<std::shared_ptr<core::TopologyStore>> prev(nshards);
  for (size_t s = 0; s < nshards; ++s) prev[s] = handles_[s]->Snapshot();

  // Fold the live COW data tables once (they are shared across shards):
  // copy each overridden table to a self-contained "c<round>." version so
  // the m-generation copies can unwind with their chain.
  std::unordered_map<std::string, std::string> overrides;
  std::vector<std::string> folded_data_tables;
  auto fail = [&](const Status& status) -> Result<CompactionStats> {
    for (const std::string& t : folded_data_tables) (void)db_->DropTable(t);
    compacting_.store(false, std::memory_order_relaxed);
    return status;
  };
  for (const auto& [base, versioned] : prev[0]->data_table_overrides()) {
    const std::string folded = base_ns + base;
    auto copied = CopyTable(db_, versioned, folded);
    if (!copied.ok()) return fail(copied.status());
    overrides[base] = folded;
    folded_data_tables.push_back(folded);
    ++stats.tables_copied;
    std::this_thread::sleep_for(options_.compaction_pair_pause);
  }
  std::shared_ptr<void> dropper(
      nullptr, [db = db_, tables = folded_data_tables](void*) {
        for (const std::string& t : tables) (void)db->DropTable(t);
      });
  std::shared_ptr<const graph::DataGraphView> view;
  if (!overrides.empty()) {
    view = std::make_shared<const graph::DataGraphView>(*db_, overrides);
  }

  // Roll shard by shard: fold every live pair's tables into the compacted
  // namespace, rebuild slices, swap — with a pause between pair folds so
  // interactive traffic on this core never sees a long stall.
  for (size_t s = 0; s < nshards; ++s) {
    const std::string ns =
        nshards == 1 ? base_ns : storage::ShardNamespace(base_ns, s);
    auto next = std::make_shared<core::TopologyStore>();
    next->adopt_catalog(prev[s]->shared_catalog());
    for (const auto& [base, folded] : overrides) {
      next->set_data_table_override(base, folded);
    }
    next->set_data_view(view);
    std::vector<std::string> own_tables;
    auto fold_table = [&](const std::string& src,
                          const std::string& dst) -> Status {
      auto copied = CopyTable(db_, src, dst);
      TSB_RETURN_IF_ERROR(copied.status());
      own_tables.push_back(dst);
      ++stats.tables_copied;
      return Status::OK();
    };
    for (const auto& [key, data] : prev[s]->pairs()) {
      core::PairTopologyData copy = data;
      copy.table_namespace = ns;
      copy.alltops_table = ns + "AllTops_" + copy.pair_name;
      Status folded = fold_table(data.alltops_table, copy.alltops_table);
      if (!folded.ok()) return fail(folded);
      if (!data.pairclasses_table.empty()) {
        copy.pairclasses_table = ns + "PairClasses_" + copy.pair_name;
        folded = fold_table(data.pairclasses_table, copy.pairclasses_table);
        if (!folded.ok()) return fail(folded);
      }
      if (!data.lefttops_table.empty()) {
        copy.lefttops_table = ns + "LeftTops_" + copy.pair_name;
        folded = fold_table(data.lefttops_table, copy.lefttops_table);
        if (!folded.ok()) return fail(folded);
      }
      if (!data.excptops_table.empty()) {
        copy.excptops_table = ns + "ExcpTops_" + copy.pair_name;
        folded = fold_table(data.excptops_table, copy.excptops_table);
        if (!folded.ok()) return fail(folded);
      }
      copy.alltops_blocks = nullptr;
      copy.lefttops_blocks = nullptr;
      auto added = next->AddPair(std::move(copy));
      if (!added.ok()) return fail(added.status());
      columnar::AttachSlices(
          *db_, next->catalog(), added.value(),
          next->ResolveDataTable(db_->entity_set(key.first).table_name),
          next->ResolveDataTable(db_->entity_set(key.second).table_name));
      ++stats.pairs_folded;
      std::this_thread::sleep_for(options_.compaction_pair_pause);
    }
    // A compacted store has NO parent pointer: when the retired overlay
    // chain's snapshots drain, the whole chain (and its m-generation
    // tables) unwinds.
    next->set_cleanup([db = db_, own_tables, dropper]() {
      for (const std::string& t : own_tables) (void)db->DropTable(t);
      (void)dropper;
    });
    handles_[s]->Swap(next);
  }

  stats.round = round;
  stats.generations_folded = pending;
  stats.fold_seconds = watch.ElapsedSeconds();
  compaction_round_.store(round, std::memory_order_relaxed);
  uncompacted_generations_.fetch_sub(pending, std::memory_order_relaxed);
  pairs_folded_total_.fetch_add(stats.pairs_folded, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(status_mu_);
    pending_pairs_.clear();
    last_fold_ = stats;
  }
  compacting_.store(false, std::memory_order_relaxed);
  return stats;
}

void MutationEngine::StartCompaction() {
  std::lock_guard<std::mutex> lock(cv_mu_);
  if (!stop_compactor_) return;  // Already running.
  stop_compactor_ = false;
  compactor_ = std::thread([this] { CompactionLoop(); });
}

void MutationEngine::StopCompaction() {
  {
    std::lock_guard<std::mutex> lock(cv_mu_);
    if (stop_compactor_) return;
    stop_compactor_ = true;
  }
  cv_.notify_all();
  if (compactor_.joinable()) compactor_.join();
}

void MutationEngine::CompactionLoop() {
  while (true) {
    {
      std::unique_lock<std::mutex> lock(cv_mu_);
      cv_.wait_for(lock, options_.compaction_poll,
                   [this] { return stop_compactor_; });
      if (stop_compactor_) return;
    }
    if (uncompacted_generations_.load(std::memory_order_relaxed) >=
        options_.compaction_min_generations) {
      auto folded = CompactNow();
      (void)folded;  // Fold failures leave the overlay chain serving.
    }
  }
}

std::string MutationEngine::StatusString() const {
  std::ostringstream os;
  os << "generation: " << generation_.load(std::memory_order_relaxed) << "\n"
     << "uncompacted_generations: "
     << uncompacted_generations_.load(std::memory_order_relaxed) << "\n"
     << "batches_applied: "
     << batches_applied_.load(std::memory_order_relaxed) << "\n"
     << "ops_applied: " << ops_applied_.load(std::memory_order_relaxed)
     << "\n"
     << "pairs_restaged_total: "
     << pairs_restaged_total_.load(std::memory_order_relaxed) << "\n"
     << "compaction_rounds: "
     << compaction_round_.load(std::memory_order_relaxed) << "\n"
     << "compaction_running: "
     << (compacting_.load(std::memory_order_relaxed) ? 1 : 0) << "\n"
     << "shards: " << handles_.size() << "\n";
  if (log_ != nullptr && log_->is_open()) {
    os << "wal_path: " << log_->path() << "\n"
       << "wal_appended_records: " << log_->appended_records() << "\n"
       << "wal_appended_bytes: " << log_->appended_bytes() << "\n";
  }
  std::lock_guard<std::mutex> lock(status_mu_);
  os << "pending_pairs: " << pending_pairs_.size();
  for (const TypePair& p : pending_pairs_) {
    os << "\n  " << db_->entity_set(p.first).name << "_"
       << db_->entity_set(p.second).name;
  }
  os << "\n"
     << "last_apply_seconds: " << last_apply_seconds_ << "\n"
     << "last_fold: round=" << last_fold_.round
     << " generations=" << last_fold_.generations_folded
     << " pairs=" << last_fold_.pairs_folded
     << " tables=" << last_fold_.tables_copied
     << " seconds=" << last_fold_.fold_seconds << "\n";
  return os.str();
}

void MutationEngine::Collect(obs::MetricsSink* sink) const {
  const obs::MetricsSink::Labels no_labels;
  sink->Counter("tsb_mutation_batches_applied_total",
                "Mutation batches applied without a full rebuild", no_labels,
                static_cast<double>(
                    batches_applied_.load(std::memory_order_relaxed)));
  sink->Counter("tsb_mutation_ops_applied_total",
                "Individual mutations applied", no_labels,
                static_cast<double>(
                    ops_applied_.load(std::memory_order_relaxed)));
  sink->Counter("tsb_mutation_pairs_restaged_total",
                "Dirty entity pairs re-staged into overlay epochs",
                no_labels,
                static_cast<double>(
                    pairs_restaged_total_.load(std::memory_order_relaxed)));
  sink->Counter("tsb_mutation_cache_only_pairs_total",
                "Pairs needing only cache eviction (no re-stage)", no_labels,
                static_cast<double>(
                    cache_only_pairs_total_.load(std::memory_order_relaxed)));
  sink->Counter("tsb_mutation_compaction_rounds_total",
                "Background compaction folds completed", no_labels,
                static_cast<double>(
                    compaction_round_.load(std::memory_order_relaxed)));
  sink->Counter("tsb_mutation_pairs_folded_total",
                "Pair table sets folded into compacted epochs", no_labels,
                static_cast<double>(
                    pairs_folded_total_.load(std::memory_order_relaxed)));
  sink->Gauge("tsb_mutation_generation",
              "Current mutation generation (0 = base epoch)", no_labels,
              static_cast<double>(
                  generation_.load(std::memory_order_relaxed)));
  sink->Gauge("tsb_mutation_uncompacted_generations",
              "Overlay generations awaiting compaction", no_labels,
              static_cast<double>(
                  uncompacted_generations_.load(std::memory_order_relaxed)));
  sink->Gauge("tsb_mutation_compaction_running",
              "1 while a fold is in progress", no_labels,
              compacting_.load(std::memory_order_relaxed) ? 1.0 : 0.0);
  {
    std::lock_guard<std::mutex> lock(status_mu_);
    sink->Gauge("tsb_mutation_pending_pairs",
                "Distinct pairs dirtied since the last fold", no_labels,
                static_cast<double>(pending_pairs_.size()));
  }
  if (log_ != nullptr && log_->is_open()) {
    sink->Counter("tsb_mutation_wal_records_total",
                  "Mutation batches appended to the delta log", no_labels,
                  static_cast<double>(log_->appended_records()));
    sink->Counter("tsb_mutation_wal_bytes_total",
                  "Bytes appended to the delta log", no_labels,
                  static_cast<double>(log_->appended_bytes()));
  }
}

}  // namespace mutation
}  // namespace tsb
