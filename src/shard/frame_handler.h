#ifndef TSB_SHARD_FRAME_HANDLER_H_
#define TSB_SHARD_FRAME_HANDLER_H_

#include <functional>
#include <memory>
#include <string>

#include "common/result.h"
#include "core/store.h"
#include "engine/engine.h"
#include "mutation/mutation_engine.h"
#include "obs/admin.h"
#include "obs/slow_log.h"
#include "obs/trace.h"
#include "storage/catalog.h"

namespace tsb {

namespace service {
class ServiceMetrics;
}  // namespace service

namespace shard {

/// Optional observability hooks of a serving shard. All pointers are
/// non-owning and may be null individually; the referenced objects must
/// outlive every handler copy. With `admin` set the handler also answers
/// kAdminRequest frames (the topctl pull channel).
struct ShardObservability {
  service::ServiceMetrics* metrics = nullptr;  // Per-frame request metrics.
  obs::Tracer* tracer = nullptr;     // Records shard-side trace fragments.
  obs::SlowQueryLog* slow_log = nullptr;
  const obs::AdminState* admin = nullptr;
};

/// The server side of the shard wire protocol, independent of how the
/// request frame arrived: decodes one request frame against the local
/// catalog, evaluates it on this shard's engine (2-query sub-queries) or
/// store snapshot (triple-collect scans), and encodes the response frame.
///
/// This is the single dispatch implementation behind both transports —
/// LoopbackTransport calls it in-process, net::ShardServer calls it per
/// received socket frame — so the byte-identity guarantees proven on the
/// loopback path carry over to the cross-process path by construction.
class ShardFrameHandler {
 public:
  /// Provider of the store snapshot triple-collect scans run against —
  /// indirected so the handler follows live epoch swaps of its shard.
  using SnapshotFn = std::function<std::shared_ptr<core::TopologyStore>()>;

  /// Provider of the serving stamp ("r<replica>:e<epoch>", see
  /// wire::MakeServingStamp) written into every query response —
  /// indirected so the epoch component follows live swaps. Null means
  /// responses carry no stamp (a non-replica-aware server).
  using StampFn = std::function<std::string()>;

  /// Applies one mutation batch to this shard's store (the server wires it
  /// at MutationEngine::ApplyLogged). Unset means kMutationRequest frames
  /// answer kFailedPrecondition — a read-only server.
  using MutationApplyFn = std::function<Result<mutation::ApplyStats>(
      const mutation::MutationBatch&)>;

  /// `db` and `engine` must outlive the handler; `snapshot` (and `stamp`,
  /// when set) must be safe to call from any thread.
  ShardFrameHandler(storage::Catalog* db, const engine::Engine* engine,
                    SnapshotFn snapshot, StampFn stamp = nullptr);

  /// Attaches observability hooks (see ShardObservability). Handlers are
  /// frequently copied (loopback channels); copies share the referenced
  /// objects.
  void set_observability(ShardObservability observability) {
    observability_ = observability;
  }

  /// Enables the v5 mutation channel (see MutationApplyFn). Must be safe
  /// to call from any transport thread.
  void set_mutation_apply(MutationApplyFn apply) {
    mutation_apply_ = std::move(apply);
  }

  /// Synchronous request handling. Engine-level failures come back as an
  /// encoded response carrying a WireError (the request reached the shard
  /// and was understood); only transport-level problems — an undecodable
  /// or unexpected frame — surface as a Status.
  Result<std::string> Handle(const std::string& request) const;

  /// The socket-serving variant: never fails. Transport-level problems are
  /// encoded as a kQueryResponse frame carrying the error, so a remote
  /// caller always gets *some* frame back instead of a silent hang until
  /// its deadline. (A caller that expected a different response kind fails
  /// its decode and treats the shard as failed — the same degradation.)
  std::string HandleOrEncodeError(const std::string& request) const;

  /// Thread safety: Handle is safe from any number of threads (the engine
  /// is concurrency-safe and the snapshot provider pins per-call).
 private:
  storage::Catalog* db_;
  const engine::Engine* engine_;
  SnapshotFn snapshot_;
  StampFn stamp_;
  MutationApplyFn mutation_apply_;
  ShardObservability observability_;
};

}  // namespace shard
}  // namespace tsb

#endif  // TSB_SHARD_FRAME_HANDLER_H_
