#include "shard/sharded_store.h"

#include <utility>

#include "common/logging.h"

namespace tsb {
namespace shard {

ShardedTopologyStore::ShardedTopologyStore(
    std::vector<std::shared_ptr<core::TopologyStore>> shards) {
  TSB_CHECK(!shards.empty()) << "a sharded store needs at least one shard";
  handles_.reserve(shards.size());
  for (std::shared_ptr<core::TopologyStore>& shard : shards) {
    TSB_CHECK(shard != nullptr);
    handles_.push_back(
        std::make_shared<core::StoreHandle>(std::move(shard)));
  }
}

ShardedTopologyStore::ShardedTopologyStore(size_t num_shards)
    : ShardedTopologyStore([num_shards]() {
        TSB_CHECK_GE(num_shards, 1u);
        std::vector<std::shared_ptr<core::TopologyStore>> shards;
        shards.reserve(num_shards);
        for (size_t i = 0; i < num_shards; ++i) {
          shards.push_back(std::make_shared<core::TopologyStore>());
        }
        return shards;
      }()) {}

std::vector<std::shared_ptr<core::TopologyStore>>
ShardedTopologyStore::SnapshotAll() const {
  std::vector<std::shared_ptr<core::TopologyStore>> snapshots;
  snapshots.reserve(handles_.size());
  for (const std::shared_ptr<core::StoreHandle>& handle : handles_) {
    snapshots.push_back(handle->Snapshot());
  }
  return snapshots;
}

Status ShardedTopologyStore::Build(core::TopologyBuilder* builder,
                                   const core::BuildConfig& config,
                                   service::ThreadPool* pool) {
  std::vector<core::TopologyStore*> raw;
  std::vector<std::shared_ptr<core::TopologyStore>> pinned = SnapshotAll();
  raw.reserve(pinned.size());
  for (const std::shared_ptr<core::TopologyStore>& shard : pinned) {
    raw.push_back(shard.get());
  }
  return builder->BuildAllPairs(config, raw, pool);
}

std::vector<uint64_t> ShardAllTopsRowCounts(
    const storage::Catalog& db,
    const std::vector<const core::TopologyStore*>& stores) {
  std::vector<uint64_t> rows;
  rows.reserve(stores.size());
  for (const core::TopologyStore* store : stores) {
    uint64_t shard_rows = 0;
    for (const auto& [key, pair] : store->pairs()) {
      const storage::Table* table = db.FindTable(pair.alltops_table);
      if (table != nullptr) shard_rows += table->num_rows();
    }
    rows.push_back(shard_rows);
  }
  return rows;
}

double ShardRowSkew(const std::vector<uint64_t>& rows) {
  if (rows.empty()) return 0.0;
  uint64_t total = 0;
  uint64_t max = 0;
  for (uint64_t r : rows) {
    total += r;
    if (r > max) max = r;
  }
  if (total == 0) return 0.0;
  return static_cast<double>(max) /
         (static_cast<double>(total) / static_cast<double>(rows.size()));
}

std::string ShardedTopologyStore::EpochStamp() const {
  std::string stamp = "s" + std::to_string(handles_.size()) + "[";
  for (size_t i = 0; i < handles_.size(); ++i) {
    if (i > 0) stamp += ",";
    stamp += std::to_string(handles_[i]->epoch());
  }
  stamp += "]";
  return stamp;
}

}  // namespace shard
}  // namespace tsb
