#include "shard/sharded_store.h"

#include <utility>

#include "common/logging.h"

namespace tsb {
namespace shard {

ShardedTopologyStore::ShardedTopologyStore(
    std::vector<std::shared_ptr<core::TopologyStore>> shards) {
  TSB_CHECK(!shards.empty()) << "a sharded store needs at least one shard";
  handles_.reserve(shards.size());
  for (std::shared_ptr<core::TopologyStore>& shard : shards) {
    TSB_CHECK(shard != nullptr);
    handles_.push_back(
        std::make_shared<core::StoreHandle>(std::move(shard)));
  }
}

ShardedTopologyStore::ShardedTopologyStore(size_t num_shards)
    : ShardedTopologyStore([num_shards]() {
        TSB_CHECK_GE(num_shards, 1u);
        std::vector<std::shared_ptr<core::TopologyStore>> shards;
        shards.reserve(num_shards);
        for (size_t i = 0; i < num_shards; ++i) {
          shards.push_back(std::make_shared<core::TopologyStore>());
        }
        return shards;
      }()) {}

std::vector<std::shared_ptr<core::TopologyStore>>
ShardedTopologyStore::SnapshotAll() const {
  std::vector<std::shared_ptr<core::TopologyStore>> snapshots;
  snapshots.reserve(handles_.size());
  for (const std::shared_ptr<core::StoreHandle>& handle : handles_) {
    snapshots.push_back(handle->Snapshot());
  }
  return snapshots;
}

Status ShardedTopologyStore::Build(core::TopologyBuilder* builder,
                                   const core::BuildConfig& config,
                                   service::ThreadPool* pool) {
  std::vector<core::TopologyStore*> raw;
  std::vector<std::shared_ptr<core::TopologyStore>> pinned = SnapshotAll();
  raw.reserve(pinned.size());
  for (const std::shared_ptr<core::TopologyStore>& shard : pinned) {
    raw.push_back(shard.get());
  }
  return builder->BuildAllPairs(config, raw, pool);
}

std::string ShardedTopologyStore::EpochStamp() const {
  std::string stamp = "s" + std::to_string(handles_.size()) + "[";
  for (size_t i = 0; i < handles_.size(); ++i) {
    if (i > 0) stamp += ",";
    stamp += std::to_string(handles_[i]->epoch());
  }
  stamp += "]";
  return stamp;
}

}  // namespace shard
}  // namespace tsb
