#ifndef TSB_SHARD_SHARDED_STORE_H_
#define TSB_SHARD_SHARDED_STORE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/builder.h"
#include "core/store.h"
#include "service/thread_pool.h"
#include "storage/catalog.h"

namespace tsb {
namespace shard {

/// N independent TopologyStore instances holding a hash partition of the
/// precomputed pair topologies — the multi-store substrate the ROADMAP
/// names as the step toward multi-node scale.
///
/// Partitioning unit: the canonical *entity* pair. Every AllTops (and
/// derived LeftTops) row (E1, E2, TID) lives on exactly the shard
/// core::ShardOfEntityPair(E1, E2, N) names. Everything ranking and online
/// verification depend on is replicated on every shard, so a shard answers
/// a sub-query exactly like the whole store would over its slice:
///
///   - the topology catalog: each shard interns every topology in the same
///     first-encounter order, so the N catalogs are identical to an
///     unsharded build's catalog and TIDs are globally consistent;
///   - per-pair frequency maps (and class instance counts): global counts,
///     so scores — and therefore ranks — never depend on which shard
///     computes them;
///   - PairClasses and the pruner's ExcpTops: the online pruned check runs
///     against the shared (unsharded) data graph and must consult the
///     complete exception set.
///
/// A query therefore scatters over the shards owning its rows, each shard
/// returns a locally-ranked partial, and a k-way merge reconstructs the
/// global ranking byte-identically (see ScatterGatherExecutor).
///
/// Each shard sits behind its own core::StoreHandle, so a live rebuild can
/// roll shards independently: readers pin per-shard snapshots, and a swap
/// of shard i never disturbs in-flight sub-queries on shard j.
class ShardedTopologyStore {
 public:
  /// Wraps `shards` (typically fresh empty stores to be built into, or the
  /// output of a sharded TopologyBuilder::BuildAllPairs).
  explicit ShardedTopologyStore(
      std::vector<std::shared_ptr<core::TopologyStore>> shards);

  /// Convenience: `num_shards` fresh empty stores.
  explicit ShardedTopologyStore(size_t num_shards);

  ShardedTopologyStore(const ShardedTopologyStore&) = delete;
  ShardedTopologyStore& operator=(const ShardedTopologyStore&) = delete;

  size_t num_shards() const { return handles_.size(); }

  /// The partitioning function (delegates to core::ShardOfEntityPair).
  static size_t OwnerShard(int64_t e1, int64_t e2, size_t num_shards) {
    return core::ShardOfEntityPair(e1, e2, num_shards);
  }

  /// Shard i's epoch handle (shared with the per-shard engines, so swaps
  /// propagate to query execution).
  const std::shared_ptr<core::StoreHandle>& handle(size_t shard) const {
    return handles_[shard];
  }

  /// Current snapshot of shard i.
  std::shared_ptr<core::TopologyStore> Snapshot(size_t shard) const {
    return handles_[shard]->Snapshot();
  }

  /// One consistent-read set: the current snapshot of every shard.
  std::vector<std::shared_ptr<core::TopologyStore>> SnapshotAll() const;

  /// The primary (shard 0) snapshot: the catalog replica that 3-queries
  /// intern new triple topologies into and that TopInfo exports read.
  std::shared_ptr<core::TopologyStore> Primary() const {
    return handles_[0]->Snapshot();
  }

  /// Builds all pairs into the current shard stores with the shard-aware
  /// TopologyBuilder overload; tables land under
  /// storage::ShardNamespace(config.table_namespace, i) per shard.
  Status Build(core::TopologyBuilder* builder,
               const core::BuildConfig& config,
               service::ThreadPool* pool = nullptr);

  /// Per-shard epoch swap: publishes `next` as shard i and returns the
  /// retired store (alive until its last snapshot releases).
  std::shared_ptr<core::TopologyStore> SwapShard(
      size_t shard, std::shared_ptr<core::TopologyStore> next) {
    return handles_[shard]->Swap(next);
  }

  /// Compact per-shard epoch stamp, e.g. "s2[0,0]" for 2 fresh shards —
  /// the shard-aware component of the service's cache fingerprints. Any
  /// shard rolling forward changes the stamp, so post-swap lookups can
  /// never hit a retired epoch's cached result.
  std::string EpochStamp() const;

 private:
  std::vector<std::shared_ptr<core::StoreHandle>> handles_;
};

/// AllTops rows per shard store — the partition-skew observable the
/// service metrics and RebuildStats report (first half of the ROADMAP
/// shard-rebalancing item). Tables absent from `db` count zero.
std::vector<uint64_t> ShardAllTopsRowCounts(
    const storage::Catalog& db,
    const std::vector<const core::TopologyStore*>& stores);

/// Skew factor of a per-shard row-count vector: max/mean. 1.0 is
/// perfectly balanced; 0 when the vector is empty or all-zero. The one
/// definition both RebuildStats::ShardSkew and the metrics snapshot use.
double ShardRowSkew(const std::vector<uint64_t>& rows);

}  // namespace shard
}  // namespace tsb

#endif  // TSB_SHARD_SHARDED_STORE_H_
