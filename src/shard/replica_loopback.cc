#include "shard/replica_loopback.h"

#include <chrono>
#include <thread>
#include <utility>

#include "common/logging.h"
#include "wire/message.h"

namespace tsb {
namespace shard {

LoopbackReplicaChannel::LoopbackReplicaChannel(ShardFrameHandler handler,
                                               std::string label)
    : handler_(std::move(handler)), label_(std::move(label)) {}

void LoopbackReplicaChannel::SetDown(bool down) {
  std::lock_guard<std::mutex> lock(mu_);
  down_ = down;
}

void LoopbackReplicaChannel::InjectFailures(uint64_t count) {
  std::lock_guard<std::mutex> lock(mu_);
  fail_next_ += count;
}

void LoopbackReplicaChannel::SetDelay(double seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  delay_seconds_ = seconds;
}

void LoopbackReplicaChannel::SetStallEvery(uint64_t nth, double seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  stall_every_ = nth;
  stall_seconds_ = seconds;
}

uint64_t LoopbackReplicaChannel::round_trips() const {
  std::lock_guard<std::mutex> lock(mu_);
  return round_trips_;
}

Result<std::string> LoopbackReplicaChannel::RoundTrip(
    const std::string& request, const net::Deadline& deadline,
    net::RoundTripTelemetry* telemetry) {
  double delay = 0.0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++round_trips_;
    if (fail_next_ > 0) {
      --fail_next_;
      return Status::Internal(label_ + ": injected failure");
    }
    if (down_) return Status::Internal(label_ + ": replica down");
    delay = delay_seconds_;
    if (stall_every_ > 0 && round_trips_ % stall_every_ == 0) {
      delay += stall_seconds_;
    }
  }
  if (delay > 0.0) {
    const auto wake =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(delay));
    if (deadline.has_value() && *deadline < wake) {
      // The socket analogue: the read blocks until the deadline cuts it.
      std::this_thread::sleep_until(*deadline);
      return Status::ResourceExhausted(label_ +
                                       ": deadline during injected delay");
    }
    std::this_thread::sleep_until(wake);
  }
  if (telemetry != nullptr) telemetry->bytes_sent += request.size();
  std::string response = handler_.HandleOrEncodeError(request);
  if (telemetry != nullptr) telemetry->bytes_received += response.size();
  return response;
}

LoopbackReplicaGrid MakeLoopbackReplicaGrid(
    storage::Catalog* db, const ShardedTopologyStore* store,
    const std::vector<const engine::Engine*>& engines, size_t replicas) {
  TSB_CHECK_EQ(engines.size(), store->num_shards());
  TSB_CHECK_GE(replicas, 1u);
  LoopbackReplicaGrid grid;
  grid.channels.resize(store->num_shards());
  grid.raw.resize(store->num_shards());
  for (size_t s = 0; s < store->num_shards(); ++s) {
    std::shared_ptr<core::StoreHandle> handle = store->handle(s);
    for (size_t r = 0; r < replicas; ++r) {
      ShardFrameHandler handler(
          db, engines[s], [handle]() { return handle->Snapshot(); },
          [handle, r]() {
            return wire::MakeServingStamp(r, handle->epoch());
          });
      auto channel = std::make_unique<LoopbackReplicaChannel>(
          std::move(handler),
          "s" + std::to_string(s) + "r" + std::to_string(r));
      grid.raw[s].push_back(channel.get());
      grid.channels[s].push_back(std::move(channel));
    }
  }
  return grid;
}

}  // namespace shard
}  // namespace tsb
