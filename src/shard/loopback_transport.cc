#include "shard/loopback_transport.h"

#include <utility>

#include "common/logging.h"
#include "engine/nquery.h"
#include "wire/codec.h"

namespace tsb {
namespace shard {

LoopbackTransport::LoopbackTransport(
    storage::Catalog* db, const ShardedTopologyStore* store,
    std::vector<const engine::Engine*> engines, service::ThreadPool* pool)
    : db_(db), store_(store), engines_(std::move(engines)), pool_(pool) {
  TSB_CHECK(db_ != nullptr);
  TSB_CHECK(store_ != nullptr);
  TSB_CHECK(pool_ != nullptr);
}

Result<std::string> LoopbackTransport::Handle(
    size_t shard, const std::string& request) const {
  if (shard >= engines_.size()) {
    return Status::InvalidArgument("no shard " + std::to_string(shard));
  }
  TSB_ASSIGN_OR_RETURN(wire::MessageKind kind,
                       wire::PeekMessageKind(request));
  switch (kind) {
    case wire::MessageKind::kQueryRequest: {
      TSB_ASSIGN_OR_RETURN(wire::WireRequest decoded,
                           wire::DecodeQueryRequest(request, *db_));
      wire::WireResponse response;
      response.request_id = decoded.id;
      Result<engine::QueryResult> result = engines_[shard]->Execute(
          decoded.query, decoded.method, decoded.options);
      if (result.ok()) {
        response.result = std::move(*result);
        response.service_seconds = response.result.stats.seconds;
      } else {
        // Engine-level failures are a *response* (the request reached the
        // shard and was understood); only transport-level problems surface
        // as a Send error.
        response.error = wire::WireErrorFromStatus(result.status());
      }
      std::string encoded;
      wire::EncodeQueryResponse(response, &encoded);
      return encoded;
    }
    case wire::MessageKind::kTripleCollectRequest: {
      TSB_ASSIGN_OR_RETURN(engine::TripleSelection selection,
                           wire::DecodeTripleCollectRequest(request, *db_));
      engine::TripleRelatedSets related = engine::CollectTripleRelated(
          *db_, *store_->Snapshot(shard), selection);
      std::string encoded;
      wire::EncodeTripleCollectResponse(related, &encoded);
      return encoded;
    }
    default:
      return Status::InvalidArgument(
          "loopback transport: unexpected message kind");
  }
}

std::future<Result<std::string>> LoopbackTransport::Send(
    size_t shard, std::string request) {
  const LoopbackTransport* self = this;
  auto task = [self, shard, request = std::move(request)]() {
    return self->Handle(shard, request);
  };
  std::future<Result<std::string>> future = pool_->Submit(task);
  if (!future.valid()) {
    // Scatter lane already shut down: answer inline so the caller's query
    // still completes (same fallback the pre-wire executor used).
    std::promise<Result<std::string>> ready;
    ready.set_value(task());
    future = ready.get_future();
  }
  return future;
}

}  // namespace shard
}  // namespace tsb
