#include "shard/loopback_transport.h"

#include <chrono>
#include <utility>

#include "common/logging.h"

namespace tsb {
namespace shard {

LoopbackTransport::LoopbackTransport(
    storage::Catalog* db, const ShardedTopologyStore* store,
    std::vector<const engine::Engine*> engines, service::ThreadPool* pool,
    service::TransportMetrics* metrics)
    : pool_(pool), metrics_(metrics) {
  TSB_CHECK(db != nullptr);
  TSB_CHECK(store != nullptr);
  TSB_CHECK(pool_ != nullptr);
  handlers_.reserve(engines.size());
  for (size_t i = 0; i < engines.size(); ++i) {
    handlers_.emplace_back(db, engines[i],
                           [store, i]() { return store->Snapshot(i); });
  }
}

Result<std::string> LoopbackTransport::Handle(
    size_t shard, const std::string& request) const {
  if (shard >= handlers_.size()) {
    return Status::InvalidArgument("no shard " + std::to_string(shard));
  }
  return handlers_[shard].Handle(request);
}

std::future<Result<std::string>> LoopbackTransport::Send(
    size_t shard, std::string request) {
  const LoopbackTransport* self = this;
  const auto start = std::chrono::steady_clock::now();
  auto task = [self, shard, start,
               request = std::move(request)]() -> Result<std::string> {
    Result<std::string> response = self->Handle(shard, request);
    if (self->metrics_ != nullptr && shard < self->handlers_.size()) {
      const double rtt =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      self->metrics_->RecordRoundTrip(
          shard, request.size(), response.ok() ? response->size() : 0, rtt,
          response.ok());
    }
    return response;
  };
  std::future<Result<std::string>> future = pool_->Submit(task);
  if (!future.valid()) {
    // Scatter lane already shut down: answer inline so the caller's query
    // still completes (same fallback the pre-wire executor used).
    std::promise<Result<std::string>> ready;
    ready.set_value(task());
    future = ready.get_future();
  }
  return future;
}

}  // namespace shard
}  // namespace tsb
