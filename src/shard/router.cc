#include "shard/router.h"

namespace tsb {
namespace shard {

std::vector<size_t> ShardRouter::ShardsWithRows(
    const storage::Catalog& db,
    const std::vector<std::shared_ptr<core::TopologyStore>>& snapshots,
    storage::EntityTypeId t1, storage::EntityTypeId t2) {
  std::vector<size_t> shards;
  for (size_t i = 0; i < snapshots.size(); ++i) {
    const core::PairTopologyData* pair = snapshots[i]->FindPair(t1, t2);
    if (pair == nullptr) continue;
    const storage::Table* alltops = db.FindTable(pair->alltops_table);
    if (alltops != nullptr && alltops->num_rows() > 0) shards.push_back(i);
  }
  return shards;
}

ShardRoute ShardRouter::Route(
    const storage::Catalog& db,
    const std::vector<std::shared_ptr<core::TopologyStore>>& snapshots,
    storage::EntityTypeId t1, storage::EntityTypeId t2,
    engine::MethodKind method) const {
  ShardRoute route;
  std::vector<size_t> with_rows = ShardsWithRows(db, snapshots, t1, t2);

  // The SQL baseline reads base data plus replicated metadata only — any
  // shard's answer is the global one, so never scatter it.
  if (method == engine::MethodKind::kSql) {
    route.shards = {with_rows.empty() ? size_t{0} : with_rows.front()};
    route.designated = route.shards.front();
    return route;
  }

  if (with_rows.empty()) {
    // No rows anywhere (or pair unbuilt — the engine surfaces that error).
    // One shard still answers: pruned topologies verify against the shared
    // data graph, and resolution errors must come back to the caller.
    route.shards = {0};
    route.designated = 0;
    return route;
  }
  route.shards = std::move(with_rows);
  route.designated = route.shards.front();
  return route;
}

}  // namespace shard
}  // namespace tsb
