#include "shard/frame_handler.h"

#include <memory>
#include <utility>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "engine/nquery.h"
#include "obs/cost.h"
#include "service/metrics.h"
#include "service/request_parser.h"
#include "wire/codec.h"
#include "wire/message.h"

namespace tsb {
namespace shard {

ShardFrameHandler::ShardFrameHandler(storage::Catalog* db,
                                     const engine::Engine* engine,
                                     SnapshotFn snapshot, StampFn stamp)
    : db_(db),
      engine_(engine),
      snapshot_(std::move(snapshot)),
      stamp_(std::move(stamp)) {
  TSB_CHECK(db_ != nullptr);
  TSB_CHECK(engine_ != nullptr);
  TSB_CHECK(snapshot_ != nullptr);
}

Result<std::string> ShardFrameHandler::Handle(
    const std::string& request) const {
  TSB_ASSIGN_OR_RETURN(wire::MessageKind kind,
                       wire::PeekMessageKind(request));
  switch (kind) {
    case wire::MessageKind::kQueryRequest: {
      TSB_ASSIGN_OR_RETURN(wire::WireRequest decoded,
                           wire::DecodeQueryRequest(request, *db_));
      wire::WireResponse response;
      response.request_id = decoded.id;
      if (stamp_ != nullptr) response.serving_stamp = stamp_();
      const double start_unix = obs::UnixSeconds();
      Stopwatch watch;
      Result<engine::QueryResult> result =
          engine_->Execute(decoded.query, decoded.method, decoded.options);
      const double seconds = watch.ElapsedSeconds();
      if (result.ok()) {
        response.result = std::move(*result);
        response.service_seconds = response.result.stats.seconds;
        if (obs::CostTracker::enabled()) {
          // Bill the decoded request frame to this sub-query: the engine
          // section cannot see wire work that happened before it started.
          response.result.stats.bytes_deserialized += request.size();
        }
      } else {
        // Engine-level failures are a *response* (the request reached the
        // shard and was understood); only transport-level problems surface
        // as a Status.
        response.error = wire::WireErrorFromStatus(result.status());
      }
      if (decoded.trace.active()) {
        // One span per shard-side execution, parented under the sender's
        // rpc span and piggybacked on the response so the frontend can
        // absorb it into its assembled trace.
        obs::Span span;
        span.span_id = obs::NewSpanId();
        span.parent_span_id = decoded.trace.parent_span_id;
        span.name = "shard.exec";
        span.start_unix_seconds = start_unix;
        span.duration_seconds = seconds;
        span.cpu_ns =
            response.error.ok() ? response.result.stats.cpu_ns : 0;
        span.tags = "method=";
        span.tags += engine::MethodKindToString(decoded.method);
        if (response.error.ok()) {
          span.tags += "," + wire::ExecStatsTraceTags(response.result.stats);
        } else {
          span.tags += ",error=";
          span.tags += wire::WireErrorCodeToString(response.error.code);
        }
        if (!response.serving_stamp.empty()) {
          span.tags += ",stamp=" + response.serving_stamp;
        }
        if (observability_.tracer != nullptr) {
          // Keep a local copy so this shard's admin channel can show its
          // own fragment of the distributed trace.
          auto fragment = std::make_shared<obs::QueryTrace>(
              decoded.trace.trace_id, "shard.handle",
              decoded.trace.parent_span_id);
          fragment->AddSpanWithId(span);
          fragment->Finish(seconds);
          observability_.tracer->Record(fragment);
        }
        response.spans.push_back(std::move(span));
      }
      if (observability_.metrics != nullptr) {
        observability_.metrics->RecordRequest(
            service::ServiceMetrics::SlotOf(decoded.method), seconds,
            /*cache_hit=*/false, response.error.ok());
        if (response.error.ok()) {
          obs::CostCounters cost;
          cost.cpu_ns = response.result.stats.cpu_ns;
          cost.bytes_deserialized = response.result.stats.bytes_deserialized;
          cost.catalog_interns = response.result.stats.catalog_interns;
          cost.heap_bytes = response.result.stats.heap_bytes;
          observability_.metrics->RecordCost(
              service::ServiceMetrics::SlotOf(decoded.method), cost);
        }
      }
      if (observability_.slow_log != nullptr &&
          observability_.slow_log->enabled() &&
          seconds >= observability_.slow_log->threshold_seconds()) {
        obs::SlowQueryRecord record;
        record.unix_seconds = obs::UnixSeconds();
        record.service_seconds = seconds;
        service::ParsedRequest parsed;
        parsed.query = decoded.query;
        parsed.method = decoded.method;
        parsed.options = decoded.options;
        Result<std::string> line = service::RequestParser::Format(parsed);
        record.request = line.ok()
                             ? std::move(*line)
                             : decoded.query.entity_set1 + " / " +
                                   decoded.query.entity_set2;
        record.method = engine::MethodKindToString(decoded.method);
        record.ok = response.error.ok();
        if (record.ok) {
          record.plan = response.result.stats.plan;
          record.rows_scanned = response.result.stats.rows_scanned;
          record.rows_out = response.result.stats.rows_out;
          record.blocks_total = response.result.stats.blocks_total;
          record.blocks_skipped = response.result.stats.blocks_skipped;
          record.cpu_ns = response.result.stats.cpu_ns;
          record.bytes_deserialized =
              response.result.stats.bytes_deserialized;
          record.heap_bytes = response.result.stats.heap_bytes;
        }
        record.trace_id = decoded.trace.trace_id;
        if (!response.spans.empty()) {
          record.span_tree = obs::FormatSpanTree(response.spans);
        }
        observability_.slow_log->Record(std::move(record));
      }
      std::string encoded;
      wire::EncodeQueryResponse(response, &encoded);
      return encoded;
    }
    case wire::MessageKind::kTripleCollectRequest: {
      TSB_ASSIGN_OR_RETURN(engine::TripleSelection selection,
                           wire::DecodeTripleCollectRequest(request, *db_));
      Stopwatch watch;
      engine::TripleRelatedSets related =
          engine::CollectTripleRelated(*db_, *snapshot_(), selection);
      if (observability_.metrics != nullptr) {
        observability_.metrics->RecordRequest(
            service::ServiceMetrics::kTripleSlot, watch.ElapsedSeconds(),
            /*cache_hit=*/false, /*ok=*/true);
      }
      std::string encoded;
      wire::EncodeTripleCollectResponse(related, &encoded);
      return encoded;
    }
    case wire::MessageKind::kAdminRequest: {
      if (observability_.admin == nullptr) {
        return Status::InvalidArgument(
            "shard frame handler: admin channel not enabled");
      }
      return obs::HandleAdminFrame(*observability_.admin, request);
    }
    case wire::MessageKind::kMutationRequest: {
      TSB_ASSIGN_OR_RETURN(wire::MutationWireRequest decoded,
                           wire::DecodeMutationRequest(request));
      wire::MutationWireResponse response;
      response.request_id = decoded.id;
      if (mutation_apply_ == nullptr) {
        response.error =
            wire::WireError{wire::WireErrorCode::kFailedPrecondition,
                            "this server does not accept mutations"};
      } else {
        Result<mutation::ApplyStats> applied = mutation_apply_(decoded.batch);
        if (applied.ok()) {
          response.applied_ops = applied.value().applied_ops;
          response.dirty_pairs = applied.value().dirty.total();
          response.apply_seconds = applied.value().apply_seconds;
        } else {
          response.error = wire::WireErrorFromStatus(applied.status());
        }
      }
      std::string encoded;
      wire::EncodeMutationResponse(response, &encoded);
      return encoded;
    }
    default:
      return Status::InvalidArgument(
          "shard frame handler: unexpected message kind");
  }
}

std::string ShardFrameHandler::HandleOrEncodeError(
    const std::string& request) const {
  Result<std::string> response = Handle(request);
  if (response.ok()) return std::move(*response);
  wire::WireResponse error;
  if (stamp_ != nullptr) error.serving_stamp = stamp_();
  error.error = wire::WireErrorFromStatus(response.status());
  std::string encoded;
  wire::EncodeQueryResponse(error, &encoded);
  return encoded;
}

}  // namespace shard
}  // namespace tsb
