#include "shard/frame_handler.h"

#include <utility>

#include "common/logging.h"
#include "engine/nquery.h"
#include "wire/codec.h"
#include "wire/message.h"

namespace tsb {
namespace shard {

ShardFrameHandler::ShardFrameHandler(storage::Catalog* db,
                                     const engine::Engine* engine,
                                     SnapshotFn snapshot, StampFn stamp)
    : db_(db),
      engine_(engine),
      snapshot_(std::move(snapshot)),
      stamp_(std::move(stamp)) {
  TSB_CHECK(db_ != nullptr);
  TSB_CHECK(engine_ != nullptr);
  TSB_CHECK(snapshot_ != nullptr);
}

Result<std::string> ShardFrameHandler::Handle(
    const std::string& request) const {
  TSB_ASSIGN_OR_RETURN(wire::MessageKind kind,
                       wire::PeekMessageKind(request));
  switch (kind) {
    case wire::MessageKind::kQueryRequest: {
      TSB_ASSIGN_OR_RETURN(wire::WireRequest decoded,
                           wire::DecodeQueryRequest(request, *db_));
      wire::WireResponse response;
      response.request_id = decoded.id;
      if (stamp_ != nullptr) response.serving_stamp = stamp_();
      Result<engine::QueryResult> result =
          engine_->Execute(decoded.query, decoded.method, decoded.options);
      if (result.ok()) {
        response.result = std::move(*result);
        response.service_seconds = response.result.stats.seconds;
      } else {
        // Engine-level failures are a *response* (the request reached the
        // shard and was understood); only transport-level problems surface
        // as a Status.
        response.error = wire::WireErrorFromStatus(result.status());
      }
      std::string encoded;
      wire::EncodeQueryResponse(response, &encoded);
      return encoded;
    }
    case wire::MessageKind::kTripleCollectRequest: {
      TSB_ASSIGN_OR_RETURN(engine::TripleSelection selection,
                           wire::DecodeTripleCollectRequest(request, *db_));
      engine::TripleRelatedSets related =
          engine::CollectTripleRelated(*db_, *snapshot_(), selection);
      std::string encoded;
      wire::EncodeTripleCollectResponse(related, &encoded);
      return encoded;
    }
    default:
      return Status::InvalidArgument(
          "shard frame handler: unexpected message kind");
  }
}

std::string ShardFrameHandler::HandleOrEncodeError(
    const std::string& request) const {
  Result<std::string> response = Handle(request);
  if (response.ok()) return std::move(*response);
  wire::WireResponse error;
  if (stamp_ != nullptr) error.serving_stamp = stamp_();
  error.error = wire::WireErrorFromStatus(response.status());
  std::string encoded;
  wire::EncodeQueryResponse(error, &encoded);
  return encoded;
}

}  // namespace shard
}  // namespace tsb
