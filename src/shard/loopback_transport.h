#ifndef TSB_SHARD_LOOPBACK_TRANSPORT_H_
#define TSB_SHARD_LOOPBACK_TRANSPORT_H_

#include <string>
#include <vector>

#include "engine/engine.h"
#include "service/metrics.h"
#include "service/thread_pool.h"
#include "shard/frame_handler.h"
#include "shard/sharded_store.h"
#include "wire/transport.h"

namespace tsb {
namespace shard {

/// In-process wire::ShardTransport over the executor's per-shard engines:
/// each shard's frames go through a ShardFrameHandler (the same dispatch
/// implementation net::ShardServer runs behind a socket), so loopback and
/// cross-process execution differ only in how the bytes ship. Requests
/// ride `pool` (the executor's dedicated scatter lane) unless the pool is
/// shutting down, in which case they evaluate inline on the sending
/// thread so in-flight queries still complete.
///
/// This is deliberately the full serialize → dispatch → deserialize path —
/// a socket transport (net/socket_transport.h) replaces only the byte
/// shipping, and the byte-identity tests already cover the rest.
class LoopbackTransport : public wire::ShardTransport {
 public:
  /// `metrics` (optional) receives per-shard round-trip telemetry — the
  /// same service::TransportMetrics a socket transport records into, so
  /// dashboards stay comparable across transports.
  LoopbackTransport(storage::Catalog* db, const ShardedTopologyStore* store,
                    std::vector<const engine::Engine*> engines,
                    service::ThreadPool* pool,
                    service::TransportMetrics* metrics = nullptr);

  size_t num_shards() const override { return handlers_.size(); }

  std::future<Result<std::string>> Send(size_t shard,
                                        std::string request) override;

  /// Synchronous request handling (the "server side" of the loopback).
  Result<std::string> Handle(size_t shard, const std::string& request) const;

  /// Shard i's frame handler — the object a net::ShardServer would serve;
  /// tests and in-process shard servers reuse it directly.
  const ShardFrameHandler& handler(size_t shard) const {
    return handlers_[shard];
  }

 private:
  std::vector<ShardFrameHandler> handlers_;
  service::ThreadPool* pool_;
  service::TransportMetrics* metrics_;
};

}  // namespace shard
}  // namespace tsb

#endif  // TSB_SHARD_LOOPBACK_TRANSPORT_H_
