#ifndef TSB_SHARD_LOOPBACK_TRANSPORT_H_
#define TSB_SHARD_LOOPBACK_TRANSPORT_H_

#include <string>
#include <vector>

#include "engine/engine.h"
#include "service/thread_pool.h"
#include "shard/sharded_store.h"
#include "wire/transport.h"

namespace tsb {
namespace shard {

/// In-process wire::ShardTransport over the executor's per-shard engines:
/// decodes the request frame against the shared catalog, evaluates on the
/// addressed shard (2-query sub-queries on its Engine, triple-collect
/// scans on its store snapshot), and encodes the response frame back.
/// Requests ride `pool` (the executor's dedicated scatter lane) unless the
/// pool is shutting down, in which case they evaluate inline on the
/// sending thread so in-flight queries still complete.
///
/// This is deliberately the full serialize → dispatch → deserialize path —
/// the next transport (a socket to a shard process) replaces only the
/// byte shipping, and the byte-identity tests already cover the rest.
class LoopbackTransport : public wire::ShardTransport {
 public:
  LoopbackTransport(storage::Catalog* db, const ShardedTopologyStore* store,
                    std::vector<const engine::Engine*> engines,
                    service::ThreadPool* pool);

  size_t num_shards() const override { return engines_.size(); }

  std::future<Result<std::string>> Send(size_t shard,
                                        std::string request) override;

  /// Synchronous request handling (the "server side" of the loopback).
  Result<std::string> Handle(size_t shard, const std::string& request) const;

 private:
  storage::Catalog* db_;
  const ShardedTopologyStore* store_;
  std::vector<const engine::Engine*> engines_;
  service::ThreadPool* pool_;
};

}  // namespace shard
}  // namespace tsb

#endif  // TSB_SHARD_LOOPBACK_TRANSPORT_H_
