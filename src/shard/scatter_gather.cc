#include "shard/scatter_gather.h"

#include <algorithm>
#include <chrono>
#include <future>
#include <limits>
#include <queue>
#include <thread>
#include <unordered_set>
#include <utility>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "obs/cost.h"
#include "wire/codec.h"

namespace tsb {
namespace shard {

namespace {

size_t ResolveScatterThreads(size_t requested, size_t num_shards) {
  if (requested > 0) return requested;
  size_t hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 4;
  return std::max<size_t>(1, std::min(num_shards, hw));
}

}  // namespace

std::vector<engine::ResultEntry> MergeRankedPartials(
    const std::vector<std::vector<engine::ResultEntry>>& partials,
    size_t limit) {
  // Cursor into one partial; ordering is the global result order with the
  // partial index as the final (duplicate-resolving) tie-break.
  struct Cursor {
    const std::vector<engine::ResultEntry>* list;
    size_t pos;
    size_t origin;
  };
  auto after = [](const Cursor& a, const Cursor& b) {
    const engine::ResultEntry& x = (*a.list)[a.pos];
    const engine::ResultEntry& y = (*b.list)[b.pos];
    if (x.score != y.score) return x.score < y.score;
    if (x.tid != y.tid) return x.tid > y.tid;
    return a.origin > b.origin;
  };
  std::priority_queue<Cursor, std::vector<Cursor>, decltype(after)> heap(
      after);
  for (size_t i = 0; i < partials.size(); ++i) {
    if (!partials[i].empty()) heap.push({&partials[i], 0, i});
  }

  std::vector<engine::ResultEntry> merged;
  // Duplicates (the same topology witnessed on several shards) normally
  // carry identical (score, tid) keys and pop back-to-back; the seen-set
  // keeps the collapse correct even if scores diverge (a query scattering
  // across a mid-roll epoch boundary after a rebuild that changed build
  // options) — the first, highest-ranked occurrence wins.
  std::unordered_set<core::Tid> seen;
  while (!heap.empty() && merged.size() < limit) {
    Cursor top = heap.top();
    heap.pop();
    const engine::ResultEntry& entry = (*top.list)[top.pos];
    if (seen.insert(entry.tid).second) merged.push_back(entry);
    if (++top.pos < top.list->size()) heap.push(top);
  }
  return merged;
}

ScatterGatherExecutor::ScatterGatherExecutor(
    storage::Catalog* db, std::shared_ptr<ShardedTopologyStore> store,
    const graph::SchemaGraph* schema, const graph::DataGraphView* view,
    core::DomainKnowledge knowledge, engine::SqlBaselineOptions sql_options,
    ScatterGatherConfig config)
    : db_(db),
      store_(std::move(store)),
      schema_(schema),
      view_(view),
      config_(config),
      scatter_pool_(ResolveScatterThreads(config.num_scatter_threads,
                                          store_->num_shards())),
      transport_metrics_(store_->num_shards()) {
  TSB_CHECK(db_ != nullptr);
  TSB_CHECK(store_ != nullptr);
  engines_.reserve(store_->num_shards());
  for (size_t i = 0; i < store_->num_shards(); ++i) {
    const std::shared_ptr<core::StoreHandle>& handle = store_->handle(i);
    engines_.push_back(std::make_unique<engine::Engine>(
        db_, handle, schema_, view_,
        core::ScoreModel(&handle->Snapshot()->catalog(), knowledge),
        sql_options));
  }
  std::vector<const engine::Engine*> engine_ptrs;
  engine_ptrs.reserve(engines_.size());
  for (const std::unique_ptr<engine::Engine>& e : engines_) {
    engine_ptrs.push_back(e.get());
  }
  loopback_ = std::make_unique<LoopbackTransport>(
      db_, store_.get(), std::move(engine_ptrs), &scatter_pool_,
      &transport_metrics_);
  transport_ = loopback_.get();
}

ScatterGatherExecutor::~ScatterGatherExecutor() { scatter_pool_.Shutdown(); }

ScatterGatherExecutor::GatherDeadline
ScatterGatherExecutor::StartGatherDeadline() const {
  if (config_.subquery_timeout_seconds <= 0.0) return std::nullopt;
  return std::chrono::steady_clock::now() +
         std::chrono::duration_cast<std::chrono::steady_clock::duration>(
             std::chrono::duration<double>(
                 config_.subquery_timeout_seconds));
}

Result<std::string> ScatterGatherExecutor::AwaitFrame(
    std::future<Result<std::string>>* future, const GatherDeadline& deadline,
    bool* timed_out) const {
  *timed_out = false;
  if (deadline.has_value() &&
      future->wait_until(*deadline) != std::future_status::ready) {
    *timed_out = true;
    // Abandon: the transport task owns its data and will complete into
    // the shared state nobody reads.
    return Status::ResourceExhausted(
        "shard sub-query exceeded deadline of " +
        std::to_string(config_.subquery_timeout_seconds) + "s");
  }
  return future->get();
}

Result<engine::QueryResult> ScatterGatherExecutor::Execute(
    const engine::TopologyQuery& query, engine::MethodKind method,
    const engine::ExecOptions& options,
    const std::shared_ptr<obs::QueryTrace>& trace) const {
  Stopwatch watch;
  const bool traced = trace != nullptr;
  const double start_unix = traced ? obs::UnixSeconds() : 0.0;
  const storage::EntitySetDef* es1 = db_->FindEntitySet(query.entity_set1);
  const storage::EntitySetDef* es2 = db_->FindEntitySet(query.entity_set2);
  if (es1 == nullptr) {
    return Status::NotFound("unknown entity set '" + query.entity_set1 +
                            "'");
  }
  if (es2 == nullptr) {
    return Status::NotFound("unknown entity set '" + query.entity_set2 +
                            "'");
  }

  std::vector<std::shared_ptr<core::TopologyStore>> snapshots =
      store_->SnapshotAll();
  ShardRoute route =
      router_.Route(*db_, snapshots, es1->id, es2->id, method);

  if (route.single_shard()) {
    // Degenerate scatter: the owning shard computes the global answer
    // directly (the designated role implies full pruned checks).
    Result<engine::QueryResult> result =
        engines_[route.designated]->Execute(query, method, options);
    if (traced) {
      std::string tags = "shard=" + std::to_string(route.designated);
      if (result.ok()) {
        tags += "," + wire::ExecStatsTraceTags(result->stats);
      } else {
        tags += ",ok=0,error=" +
                obs::TagValueSafe(result.status().message());
      }
      trace->AddSpan("designated.exec", trace->root_span_id(), start_unix,
                     watch.ElapsedSeconds(), std::move(tags),
                     result.ok() ? result->stats.cpu_ns : 0);
    }
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.queries;
      ++stats_.single_shard_queries;
      ++stats_.subqueries;
      if (result.ok()) stats_.subquery_seconds += result->stats.seconds;
    }
    if (result.ok()) {
      result->stats.plan = "scatter[1/" + std::to_string(num_shards()) +
                           " shard] " + result->stats.plan;
      result->stats.seconds = watch.ElapsedSeconds();
    }
    return result;
  }

  // Scatter: the designated shard runs on this thread (guaranteed
  // progress); every other shard's sub-query crosses the transport seam
  // as an encoded wire frame and rides the dedicated scatter lane.
  // Non-designated shards skip the pruned online checks — those verify
  // against the shared data graph and replicated exception tables, so the
  // designated shard's verdicts already cover the whole store.
  struct SubQuery {
    size_t shard;
    uint64_t rpc_span_id;
    std::future<Result<std::string>> future;
  };
  std::vector<SubQuery> scattered;
  scattered.reserve(route.shards.size() - 1);
  const GatherDeadline deadline = StartGatherDeadline();
  // The scatter span id is allocated before fan-out so every rpc span —
  // and through the sub-request's trace context, every shard-side span —
  // can parent under it before the span itself is recorded.
  const uint64_t scatter_span_id = traced ? obs::NewSpanId() : 0;
  uint64_t bytes_sent = 0;
  for (size_t shard : route.shards) {
    if (shard == route.designated) continue;
    wire::WireRequest sub;
    sub.id = shard;  // Correlation only; the gather indexes by slot.
    sub.query = query;
    sub.method = method;
    sub.options = options;
    sub.options.skip_pruned_checks = true;
    uint64_t rpc_span_id = 0;
    if (traced) {
      rpc_span_id = obs::NewSpanId();
      sub.trace = trace->ContextUnder(rpc_span_id);
    }
    std::string encoded;
    wire::EncodeQueryRequest(sub, &encoded);
    bytes_sent += encoded.size();
    scattered.push_back({shard, rpc_span_id,
                         transport_->SendTraced(shard, std::move(encoded),
                                                trace, rpc_span_id)});
  }
  const double designated_start_unix = traced ? obs::UnixSeconds() : 0.0;
  Stopwatch designated_watch;
  Result<engine::QueryResult> designated =
      engines_[route.designated]->Execute(query, method, options);
  if (traced) {
    std::string tags = "shard=" + std::to_string(route.designated);
    if (designated.ok()) {
      tags += "," + wire::ExecStatsTraceTags(designated->stats);
    } else {
      tags += ",ok=0,error=" +
              obs::TagValueSafe(designated.status().message());
    }
    trace->AddSpan("designated.exec", scatter_span_id,
                   designated_start_unix, designated_watch.ElapsedSeconds(),
                   std::move(tags),
                   designated.ok() ? designated->stats.cpu_ns : 0);
  }

  // Gather every partial (drain even after an error so no future leaks).
  std::vector<std::vector<engine::ResultEntry>> partials;
  partials.reserve(route.shards.size());
  engine::ExecStats total;
  Status first_error = designated.ok() ? Status::OK() : designated.status();
  double subquery_seconds = 0.0;
  std::string designated_plan;
  uint64_t bytes_received = 0;
  uint64_t failed = 0;
  uint64_t timed_out = 0;
  size_t lost_shards = 0;
  if (designated.ok()) {
    total += designated->stats;
    subquery_seconds += designated->stats.seconds;
    designated_plan = std::move(designated->stats.plan);
    partials.push_back(std::move(designated->entries));
  }
  for (SubQuery& sub : scattered) {
    bool sub_timed_out = false;
    Result<std::string> frame =
        AwaitFrame(&sub.future, deadline, &sub_timed_out);
    Result<engine::QueryResult> partial =
        frame.ok() ? [&]() -> Result<engine::QueryResult> {
          bytes_received += frame->size();
          TSB_ASSIGN_OR_RETURN(wire::WireResponse response,
                               wire::DecodeQueryResponse(*frame));
          // Shard-side spans piggybacked on the response join this
          // frontend's trace (they already parent under the rpc span).
          if (traced) trace->Absorb(std::move(response.spans));
          if (!response.error.ok()) {
            return wire::StatusFromWireError(response.error);
          }
          return std::move(response.result);
        }()
                   : Result<engine::QueryResult>(frame.status());
    if (traced) {
      // Duration is gather-observed: from fan-out to the moment this
      // slot's frame was consumed (includes any wait behind earlier
      // slots — the latency the merge actually paid).
      obs::Span rpc;
      rpc.span_id = sub.rpc_span_id;
      rpc.parent_span_id = scatter_span_id;
      rpc.name = "rpc";
      rpc.start_unix_seconds = designated_start_unix;
      rpc.duration_seconds = watch.ElapsedSeconds();
      rpc.tags = "shard=" + std::to_string(sub.shard) +
                 (partial.ok() ? ",ok=1" : ",ok=0") +
                 (sub_timed_out ? ",timeout=1" : "");
      trace->AddSpanWithId(std::move(rpc));
    }
    if (!partial.ok()) {
      if (sub_timed_out) ++timed_out;
      ++failed;
      ++lost_shards;
      if (!config_.tolerate_shard_failures && first_error.ok()) {
        first_error = partial.status();
      }
      continue;
    }
    total += partial->stats;
    // The router paid to deserialize this shard's response frame; bill it
    // to the query alongside the shard-side charges the stats carry.
    if (obs::CostTracker::enabled()) {
      total.bytes_deserialized += frame->size();
    }
    subquery_seconds += partial->stats.seconds;
    partials.push_back(std::move(partial->entries));
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.transport_subqueries += scattered.size();
    stats_.transport_bytes_sent += bytes_sent;
    stats_.transport_bytes_received += bytes_received;
    stats_.failed_subqueries += failed;
    stats_.timed_out_subqueries += timed_out;
  }
  if (!first_error.ok()) return first_error;

  Stopwatch merge_watch;
  const double merge_start_unix = traced ? obs::UnixSeconds() : 0.0;
  const size_t limit =
      engine::MethodIsTopK(method) ? query.k : std::numeric_limits<size_t>::max();
  engine::QueryResult result;
  result.entries = MergeRankedPartials(partials, limit);
  result.partial = lost_shards > 0;
  const double merge_seconds = merge_watch.ElapsedSeconds();
  if (traced) {
    trace->AddSpan("merge", scatter_span_id, merge_start_unix,
                   merge_seconds,
                   "partials=" + std::to_string(partials.size()) +
                       ",entries=" + std::to_string(result.entries.size()));
    obs::Span scatter;
    scatter.span_id = scatter_span_id;
    scatter.parent_span_id = trace->root_span_id();
    scatter.name = "scatter";
    scatter.start_unix_seconds = start_unix;
    scatter.duration_seconds = watch.ElapsedSeconds();
    scatter.tags = "shards=" + std::to_string(route.shards.size()) +
                   ",designated=" + std::to_string(route.designated) +
                   ",lost=" + std::to_string(lost_shards);
    trace->AddSpanWithId(std::move(scatter));
  }

  result.stats = total;
  result.stats.seconds = watch.ElapsedSeconds();
  result.stats.plan =
      "scatter[" + std::to_string(route.shards.size() - lost_shards) + "/" +
      std::to_string(num_shards()) + " shards, designated s" +
      std::to_string(route.designated) +
      (result.partial ? ", PARTIAL" : "") + "] merge(k-way heap) | " +
      designated_plan;

  std::lock_guard<std::mutex> lock(stats_mu_);
  ++stats_.queries;
  stats_.subqueries += route.shards.size();
  stats_.subquery_seconds += subquery_seconds;
  stats_.merge_seconds += merge_seconds;
  if (result.partial) ++stats_.degraded_queries;
  return result;
}

Result<engine::TripleQueryResult> ScatterGatherExecutor::ExecuteTriple(
    const engine::TripleQuery& query) const {
  TSB_ASSIGN_OR_RETURN(engine::TripleSelection selection,
                       engine::ResolveTripleSelection(db_, query));
  std::vector<std::shared_ptr<core::TopologyStore>> snapshots =
      store_->SnapshotAll();

  // Scatter the AllTops scan phase over the transport: every shard
  // contributes its slice of each slot pair's relation. Shard 0 scans on
  // this thread (guaranteed progress; it is also the catalog the finish
  // phase interns into).
  std::string encoded_collect;
  if (snapshots.size() > 1) {
    wire::EncodeTripleCollectRequest(selection, &encoded_collect);
  }
  struct SubScan {
    size_t shard;
    std::future<Result<std::string>> future;
  };
  std::vector<SubScan> scans;
  scans.reserve(snapshots.size() > 0 ? snapshots.size() - 1 : 0);
  const GatherDeadline deadline = StartGatherDeadline();
  uint64_t bytes_sent = 0;
  for (size_t i = 1; i < snapshots.size(); ++i) {
    bytes_sent += encoded_collect.size();
    scans.push_back({i, transport_->Send(i, encoded_collect)});
  }
  engine::TripleRelatedSets related =
      engine::CollectTripleRelated(*db_, *snapshots[0], selection);

  Status first_error = Status::OK();
  uint64_t bytes_received = 0;
  uint64_t failed = 0;
  uint64_t timed_out = 0;
  size_t lost_shards = 0;
  for (SubScan& scan : scans) {
    bool scan_timed_out = false;
    Result<std::string> frame =
        AwaitFrame(&scan.future, deadline, &scan_timed_out);
    Result<engine::TripleRelatedSets> partial =
        frame.ok() ? [&]() -> Result<engine::TripleRelatedSets> {
          bytes_received += frame->size();
          return wire::DecodeTripleCollectResponse(*frame);
        }()
                   : Result<engine::TripleRelatedSets>(frame.status());
    if (!partial.ok()) {
      if (scan_timed_out) ++timed_out;
      ++failed;
      ++lost_shards;
      if (!config_.tolerate_shard_failures && first_error.ok()) {
        first_error = partial.status();
      }
      continue;
    }
    for (int p = 0; p < 3; ++p) {
      related[p].insert((*partial)[p].begin(), (*partial)[p].end());
    }
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.transport_subqueries += scans.size();
    stats_.transport_bytes_sent += bytes_sent;
    stats_.transport_bytes_received += bytes_received;
    stats_.failed_subqueries += failed;
    stats_.timed_out_subqueries += timed_out;
    if (lost_shards > 0 && config_.tolerate_shard_failures) {
      ++stats_.degraded_queries;
    }
  }
  if (!first_error.ok()) return first_error;

  // Join + witness-union phase runs once; new triple topologies intern
  // into the primary shard's thread-safe catalog (the same first-encounter
  // order a single-store execution would produce).
  Result<engine::TripleQueryResult> result = engine::FinishTripleQuery(
      db_, snapshots[0].get(), *schema_, *view_, query, selection, related);
  if (result.ok() && lost_shards > 0) result->partial = true;
  return result;
}

void ScatterGatherExecutor::PrepareIndexes(const std::string& entity_set1,
                                           const std::string& entity_set2) {
  for (const std::unique_ptr<engine::Engine>& shard_engine : engines_) {
    shard_engine->PrepareIndexes(entity_set1, entity_set2);
  }
}

ScatterStats ScatterGatherExecutor::GetScatterStats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

}  // namespace shard
}  // namespace tsb
