#include "shard/scatter_gather.h"

#include <algorithm>
#include <future>
#include <limits>
#include <queue>
#include <thread>
#include <unordered_set>
#include <utility>

#include "common/logging.h"
#include "common/stopwatch.h"

namespace tsb {
namespace shard {

namespace {

size_t ResolveScatterThreads(size_t requested, size_t num_shards) {
  if (requested > 0) return requested;
  size_t hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 4;
  return std::max<size_t>(1, std::min(num_shards, hw));
}

}  // namespace

std::vector<engine::ResultEntry> MergeRankedPartials(
    const std::vector<std::vector<engine::ResultEntry>>& partials,
    size_t limit) {
  // Cursor into one partial; ordering is the global result order with the
  // partial index as the final (duplicate-resolving) tie-break.
  struct Cursor {
    const std::vector<engine::ResultEntry>* list;
    size_t pos;
    size_t origin;
  };
  auto after = [](const Cursor& a, const Cursor& b) {
    const engine::ResultEntry& x = (*a.list)[a.pos];
    const engine::ResultEntry& y = (*b.list)[b.pos];
    if (x.score != y.score) return x.score < y.score;
    if (x.tid != y.tid) return x.tid > y.tid;
    return a.origin > b.origin;
  };
  std::priority_queue<Cursor, std::vector<Cursor>, decltype(after)> heap(
      after);
  for (size_t i = 0; i < partials.size(); ++i) {
    if (!partials[i].empty()) heap.push({&partials[i], 0, i});
  }

  std::vector<engine::ResultEntry> merged;
  // Duplicates (the same topology witnessed on several shards) normally
  // carry identical (score, tid) keys and pop back-to-back; the seen-set
  // keeps the collapse correct even if scores diverge (a query scattering
  // across a mid-roll epoch boundary after a rebuild that changed build
  // options) — the first, highest-ranked occurrence wins.
  std::unordered_set<core::Tid> seen;
  while (!heap.empty() && merged.size() < limit) {
    Cursor top = heap.top();
    heap.pop();
    const engine::ResultEntry& entry = (*top.list)[top.pos];
    if (seen.insert(entry.tid).second) merged.push_back(entry);
    if (++top.pos < top.list->size()) heap.push(top);
  }
  return merged;
}

ScatterGatherExecutor::ScatterGatherExecutor(
    storage::Catalog* db, std::shared_ptr<ShardedTopologyStore> store,
    const graph::SchemaGraph* schema, const graph::DataGraphView* view,
    core::DomainKnowledge knowledge, engine::SqlBaselineOptions sql_options,
    ScatterGatherConfig config)
    : db_(db),
      store_(std::move(store)),
      schema_(schema),
      view_(view),
      scatter_pool_(ResolveScatterThreads(config.num_scatter_threads,
                                          store_->num_shards())) {
  TSB_CHECK(db_ != nullptr);
  TSB_CHECK(store_ != nullptr);
  engines_.reserve(store_->num_shards());
  for (size_t i = 0; i < store_->num_shards(); ++i) {
    const std::shared_ptr<core::StoreHandle>& handle = store_->handle(i);
    engines_.push_back(std::make_unique<engine::Engine>(
        db_, handle, schema_, view_,
        core::ScoreModel(&handle->Snapshot()->catalog(), knowledge),
        sql_options));
  }
}

ScatterGatherExecutor::~ScatterGatherExecutor() { scatter_pool_.Shutdown(); }

Result<engine::QueryResult> ScatterGatherExecutor::Execute(
    const engine::TopologyQuery& query, engine::MethodKind method,
    const engine::ExecOptions& options) const {
  Stopwatch watch;
  const storage::EntitySetDef* es1 = db_->FindEntitySet(query.entity_set1);
  const storage::EntitySetDef* es2 = db_->FindEntitySet(query.entity_set2);
  if (es1 == nullptr) {
    return Status::NotFound("unknown entity set '" + query.entity_set1 +
                            "'");
  }
  if (es2 == nullptr) {
    return Status::NotFound("unknown entity set '" + query.entity_set2 +
                            "'");
  }

  std::vector<std::shared_ptr<core::TopologyStore>> snapshots =
      store_->SnapshotAll();
  ShardRoute route =
      router_.Route(*db_, snapshots, es1->id, es2->id, method);

  if (route.single_shard()) {
    // Degenerate scatter: the owning shard computes the global answer
    // directly (the designated role implies full pruned checks).
    Result<engine::QueryResult> result =
        engines_[route.designated]->Execute(query, method, options);
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.queries;
      ++stats_.single_shard_queries;
      ++stats_.subqueries;
      if (result.ok()) stats_.subquery_seconds += result->stats.seconds;
    }
    if (result.ok()) {
      result->stats.plan = "scatter[1/" + std::to_string(num_shards()) +
                           " shard] " + result->stats.plan;
      result->stats.seconds = watch.ElapsedSeconds();
    }
    return result;
  }

  // Scatter: the designated shard runs on this thread (guaranteed
  // progress), the rest ride the dedicated scatter lane. Non-designated
  // shards skip the pruned online checks — those verify against the
  // shared data graph and replicated exception tables, so the designated
  // shard's verdicts already cover the whole store.
  struct SubQuery {
    size_t shard;
    std::future<Result<engine::QueryResult>> future;
  };
  std::vector<SubQuery> scattered;
  scattered.reserve(route.shards.size() - 1);
  for (size_t shard : route.shards) {
    if (shard == route.designated) continue;
    engine::ExecOptions sub_options = options;
    sub_options.skip_pruned_checks = true;
    const engine::Engine* shard_engine = engines_[shard].get();
    std::future<Result<engine::QueryResult>> future = scatter_pool_.Submit(
        [shard_engine, query, method, sub_options]() {
          return shard_engine->Execute(query, method, sub_options);
        });
    if (!future.valid()) {
      // Executor shutting down; evaluate inline so the query still
      // completes correctly.
      std::promise<Result<engine::QueryResult>> ready;
      ready.set_value(shard_engine->Execute(query, method, sub_options));
      future = ready.get_future();
    }
    scattered.push_back({shard, std::move(future)});
  }
  Result<engine::QueryResult> designated =
      engines_[route.designated]->Execute(query, method, options);

  // Gather every partial (drain even after an error so no future leaks).
  std::vector<std::vector<engine::ResultEntry>> partials;
  partials.reserve(route.shards.size());
  engine::ExecStats total;
  Status first_error = designated.ok() ? Status::OK() : designated.status();
  double subquery_seconds = 0.0;
  std::string designated_plan;
  if (designated.ok()) {
    total += designated->stats;
    subquery_seconds += designated->stats.seconds;
    designated_plan = std::move(designated->stats.plan);
    partials.push_back(std::move(designated->entries));
  }
  for (SubQuery& sub : scattered) {
    Result<engine::QueryResult> partial = sub.future.get();
    if (!partial.ok()) {
      if (first_error.ok()) first_error = partial.status();
      continue;
    }
    total += partial->stats;
    subquery_seconds += partial->stats.seconds;
    partials.push_back(std::move(partial->entries));
  }
  if (!first_error.ok()) return first_error;

  Stopwatch merge_watch;
  const size_t limit =
      engine::MethodIsTopK(method) ? query.k : std::numeric_limits<size_t>::max();
  engine::QueryResult result;
  result.entries = MergeRankedPartials(partials, limit);
  const double merge_seconds = merge_watch.ElapsedSeconds();

  result.stats = total;
  result.stats.seconds = watch.ElapsedSeconds();
  result.stats.plan =
      "scatter[" + std::to_string(route.shards.size()) + "/" +
      std::to_string(num_shards()) + " shards, designated s" +
      std::to_string(route.designated) + "] merge(k-way heap) | " +
      designated_plan;

  std::lock_guard<std::mutex> lock(stats_mu_);
  ++stats_.queries;
  stats_.subqueries += route.shards.size();
  stats_.subquery_seconds += subquery_seconds;
  stats_.merge_seconds += merge_seconds;
  return result;
}

Result<engine::TripleQueryResult> ScatterGatherExecutor::ExecuteTriple(
    const engine::TripleQuery& query) const {
  TSB_ASSIGN_OR_RETURN(engine::TripleSelection selection,
                       engine::ResolveTripleSelection(db_, query));
  std::vector<std::shared_ptr<core::TopologyStore>> snapshots =
      store_->SnapshotAll();

  // Scatter the AllTops scan phase: every shard contributes its slice of
  // each slot pair's relation. Shard 0 scans on this thread.
  std::vector<std::future<engine::TripleRelatedSets>> futures;
  futures.reserve(snapshots.size());
  for (size_t i = 1; i < snapshots.size(); ++i) {
    std::shared_ptr<core::TopologyStore> snapshot = snapshots[i];
    const storage::Catalog* db = db_;
    const engine::TripleSelection* sel = &selection;
    std::future<engine::TripleRelatedSets> future = scatter_pool_.Submit(
        [db, snapshot, sel]() {
          return engine::CollectTripleRelated(*db, *snapshot, *sel);
        });
    if (!future.valid()) {
      std::promise<engine::TripleRelatedSets> ready;
      ready.set_value(engine::CollectTripleRelated(*db_, *snapshot,
                                                   selection));
      future = ready.get_future();
    }
    futures.push_back(std::move(future));
  }
  engine::TripleRelatedSets related =
      engine::CollectTripleRelated(*db_, *snapshots[0], selection);
  for (std::future<engine::TripleRelatedSets>& future : futures) {
    engine::TripleRelatedSets partial = future.get();
    for (int p = 0; p < 3; ++p) {
      related[p].insert(partial[p].begin(), partial[p].end());
    }
  }

  // Join + witness-union phase runs once; new triple topologies intern
  // into the primary shard's thread-safe catalog (the same first-encounter
  // order a single-store execution would produce).
  return engine::FinishTripleQuery(db_, snapshots[0].get(), *schema_, *view_,
                                   query, selection, related);
}

void ScatterGatherExecutor::PrepareIndexes(const std::string& entity_set1,
                                           const std::string& entity_set2) {
  for (const std::unique_ptr<engine::Engine>& shard_engine : engines_) {
    shard_engine->PrepareIndexes(entity_set1, entity_set2);
  }
}

ScatterStats ScatterGatherExecutor::GetScatterStats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

}  // namespace shard
}  // namespace tsb
