#ifndef TSB_SHARD_SCATTER_GATHER_H_
#define TSB_SHARD_SCATTER_GATHER_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/scorer.h"
#include "engine/engine.h"
#include "engine/nquery.h"
#include "engine/query.h"
#include "service/thread_pool.h"
#include "shard/router.h"
#include "shard/sharded_store.h"

namespace tsb {
namespace shard {

/// Merges locally-ranked partial results into the global ranking: a k-way
/// heap merge on (score desc, tid asc) with duplicate TIDs collapsed.
/// Every partial must be sorted in that order (the engine's global result
/// order). In steady state a TID appearing in several partials carries the
/// same score in each (shards rank with replicated global frequency maps),
/// so ties beyond (score, tid) cannot occur across distinct entries and
/// the merged order — hence the byte identity with the single-store
/// engine — is fully determined. Should scores ever diverge (a query
/// scattering across a mid-roll epoch boundary after a rebuild that
/// *changed* build options), the TID-keyed collapse still emits each
/// topology once, keeping its highest-ranked occurrence. `limit` caps the
/// merged size (the query's k; SIZE_MAX for non-top-k methods).
///
/// Why the union of per-shard top-k lists suffices for a global top-k: a
/// shard's qualifying set is a subset of the global one, so any entry of
/// the global top-k outranks all but < k entries on whichever shard holds
/// one of its witness rows — it is therefore inside that shard's top-k.
std::vector<engine::ResultEntry> MergeRankedPartials(
    const std::vector<std::vector<engine::ResultEntry>>& partials,
    size_t limit);

/// Cumulative scatter telemetry (for the scaling bench and ops visibility).
struct ScatterStats {
  uint64_t queries = 0;              // Scatter-gather executions.
  uint64_t single_shard_queries = 0; // Routed to exactly one shard.
  uint64_t subqueries = 0;           // Per-shard sub-queries issued.
  double subquery_seconds = 0.0;     // Summed engine time across shards.
  double merge_seconds = 0.0;        // Time in MergeRankedPartials.
};

struct ScatterGatherConfig {
  /// Dedicated sub-query workers; 0 means min(num_shards,
  /// hardware_concurrency). This lane is intentionally *not* the service's
  /// request pool: an outer query blocks on its sub-queries, and blocking
  /// pool tasks on tasks queued behind them in the same pool deadlocks
  /// once every worker holds an outer query. A separate lane (same
  /// service::ThreadPool class) keeps the wait-for graph acyclic.
  size_t num_scatter_threads = 0;
};

/// Fans a query out over the shards that own its rows, runs each sub-query
/// against a per-shard Engine pinned to that shard's snapshot, and merges
/// the ranked partials into the global result — byte-identical to a
/// single-store engine for every method:
///
///   - each shard ranks its slice with replicated global scores, so
///     partial rankings agree on every common entry;
///   - the designated shard alone runs shard-independent work (pruned
///     online checks; the whole SQL baseline), so that work is paid once;
///   - the k-way merge (MergeRankedPartials) reassembles the global order.
///
/// 3-queries scatter their AllTops scan phase (CollectTripleRelated) and
/// union the per-shard relations; the join/witness-union phase then runs
/// once, interning new triple topologies into the primary shard's
/// thread-safe catalog.
///
/// Thread safety: Execute/ExecuteTriple are safe from any number of
/// threads; per-shard engines are concurrency-safe and sub-queries ride a
/// dedicated scatter pool.
class ScatterGatherExecutor {
 public:
  ScatterGatherExecutor(storage::Catalog* db,
                        std::shared_ptr<ShardedTopologyStore> store,
                        const graph::SchemaGraph* schema,
                        const graph::DataGraphView* view,
                        core::DomainKnowledge knowledge,
                        engine::SqlBaselineOptions sql_options =
                            engine::SqlBaselineOptions{},
                        ScatterGatherConfig config = ScatterGatherConfig{});
  ~ScatterGatherExecutor();

  ScatterGatherExecutor(const ScatterGatherExecutor&) = delete;
  ScatterGatherExecutor& operator=(const ScatterGatherExecutor&) = delete;

  /// Scatter-gather evaluation of a 2-query. Result entries are
  /// byte-identical to single-store Engine::Execute; stats are summed over
  /// the sub-queries (plus wall-clock seconds and a scatter plan line).
  Result<engine::QueryResult> Execute(
      const engine::TopologyQuery& query, engine::MethodKind method,
      const engine::ExecOptions& options = engine::ExecOptions{}) const;

  /// Scatter-gather evaluation of a 3-query (see class comment).
  Result<engine::TripleQueryResult> ExecuteTriple(
      const engine::TripleQuery& query) const;

  /// Pre-builds the hash indexes every shard's plans use for this pair.
  void PrepareIndexes(const std::string& entity_set1,
                      const std::string& entity_set2);

  ShardedTopologyStore* mutable_store() { return store_.get(); }
  const ShardedTopologyStore& store() const { return *store_; }
  size_t num_shards() const { return store_->num_shards(); }
  const graph::SchemaGraph* schema() const { return schema_; }
  const graph::DataGraphView* view() const { return view_; }
  /// Shard i's engine (its snapshot read path follows shard i's handle).
  const engine::Engine& shard_engine(size_t shard) const {
    return *engines_[shard];
  }

  ScatterStats GetScatterStats() const;

 private:
  storage::Catalog* db_;
  std::shared_ptr<ShardedTopologyStore> store_;
  const graph::SchemaGraph* schema_;
  const graph::DataGraphView* view_;
  ShardRouter router_;
  std::vector<std::unique_ptr<engine::Engine>> engines_;
  /// Dedicated sub-query lane (see ScatterGatherConfig).
  mutable service::ThreadPool scatter_pool_;

  mutable std::mutex stats_mu_;
  mutable ScatterStats stats_;
};

}  // namespace shard
}  // namespace tsb

#endif  // TSB_SHARD_SCATTER_GATHER_H_
