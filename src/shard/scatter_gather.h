#ifndef TSB_SHARD_SCATTER_GATHER_H_
#define TSB_SHARD_SCATTER_GATHER_H_

#include <chrono>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/scorer.h"
#include "engine/engine.h"
#include "engine/nquery.h"
#include "engine/query.h"
#include "obs/trace.h"
#include "service/thread_pool.h"
#include "shard/loopback_transport.h"
#include "shard/router.h"
#include "shard/sharded_store.h"
#include "wire/transport.h"

namespace tsb {
namespace shard {

/// Merges locally-ranked partial results into the global ranking: a k-way
/// heap merge on (score desc, tid asc) with duplicate TIDs collapsed.
/// Every partial must be sorted in that order (the engine's global result
/// order). In steady state a TID appearing in several partials carries the
/// same score in each (shards rank with replicated global frequency maps),
/// so ties beyond (score, tid) cannot occur across distinct entries and
/// the merged order — hence the byte identity with the single-store
/// engine — is fully determined. Should scores ever diverge (a query
/// scattering across a mid-roll epoch boundary after a rebuild that
/// *changed* build options), the TID-keyed collapse still emits each
/// topology once, keeping its highest-ranked occurrence. `limit` caps the
/// merged size (the query's k; SIZE_MAX for non-top-k methods).
///
/// Why the union of per-shard top-k lists suffices for a global top-k: a
/// shard's qualifying set is a subset of the global one, so any entry of
/// the global top-k outranks all but < k entries on whichever shard holds
/// one of its witness rows — it is therefore inside that shard's top-k.
std::vector<engine::ResultEntry> MergeRankedPartials(
    const std::vector<std::vector<engine::ResultEntry>>& partials,
    size_t limit);

/// Cumulative scatter telemetry (for the scaling bench and ops visibility).
struct ScatterStats {
  uint64_t queries = 0;              // Scatter-gather executions.
  uint64_t single_shard_queries = 0; // Routed to exactly one shard.
  uint64_t subqueries = 0;           // Per-shard sub-queries issued.
  double subquery_seconds = 0.0;     // Summed engine time across shards.
  double merge_seconds = 0.0;        // Time in MergeRankedPartials.
  /// Wire-transport telemetry: sub-queries that crossed the transport seam
  /// as encoded frames, and the frame bytes both ways.
  uint64_t transport_subqueries = 0;
  uint64_t transport_bytes_sent = 0;
  uint64_t transport_bytes_received = 0;
  /// Degradation: shards that failed / exceeded the sub-query timeout, and
  /// queries answered with partial=true because of it.
  uint64_t failed_subqueries = 0;
  uint64_t timed_out_subqueries = 0;
  uint64_t degraded_queries = 0;
};

struct ScatterGatherConfig {
  /// Dedicated sub-query workers; 0 means min(num_shards,
  /// hardware_concurrency). This lane is intentionally *not* the service's
  /// request pool: an outer query blocks on its sub-queries, and blocking
  /// pool tasks on tasks queued behind them in the same pool deadlocks
  /// once every worker holds an outer query. A separate lane (same
  /// service::ThreadPool class) keeps the wait-for graph acyclic.
  size_t num_scatter_threads = 0;
  /// Per-shard sub-query deadline in seconds; 0 waits indefinitely. A
  /// sub-query still pending at the deadline counts as a failed shard.
  double subquery_timeout_seconds = 0.0;
  /// When true (default), a failed or timed-out non-designated shard
  /// degrades the answer — the merge runs over the shards that responded
  /// and the result carries partial=true — instead of failing the query.
  /// The designated shard always runs inline and its failure is fatal (it
  /// alone carries the shard-independent pruned checks).
  bool tolerate_shard_failures = true;
};

/// Fans a query out over the shards that own its rows, runs each sub-query
/// against a per-shard Engine pinned to that shard's snapshot, and merges
/// the ranked partials into the global result — byte-identical to a
/// single-store engine for every method:
///
///   - each shard ranks its slice with replicated global scores, so
///     partial rankings agree on every common entry;
///   - the designated shard alone runs shard-independent work (pruned
///     online checks; the whole SQL baseline), so that work is paid once;
///   - the k-way merge (MergeRankedPartials) reassembles the global order.
///
/// 3-queries scatter their AllTops scan phase (CollectTripleRelated) and
/// union the per-shard relations; the join/witness-union phase then runs
/// once, interning new triple topologies into the primary shard's
/// thread-safe catalog.
///
/// Transport seam: every non-designated sub-query (and every triple scan
/// slice) travels as an encoded wire frame through a wire::ShardTransport
/// — by default the in-process LoopbackTransport over this executor's own
/// engines, so the serialize → dispatch → deserialize path is exercised
/// (and byte-identity-tested) before a socket transport ever exists. A
/// shard that fails or misses the sub-query deadline degrades the answer
/// (partial=true) instead of failing it when tolerate_shard_failures is
/// set.
///
/// Thread safety: Execute/ExecuteTriple are safe from any number of
/// threads; per-shard engines are concurrency-safe and sub-queries ride a
/// dedicated scatter pool.
class ScatterGatherExecutor {
 public:
  ScatterGatherExecutor(storage::Catalog* db,
                        std::shared_ptr<ShardedTopologyStore> store,
                        const graph::SchemaGraph* schema,
                        const graph::DataGraphView* view,
                        core::DomainKnowledge knowledge,
                        engine::SqlBaselineOptions sql_options =
                            engine::SqlBaselineOptions{},
                        ScatterGatherConfig config = ScatterGatherConfig{});
  ~ScatterGatherExecutor();

  ScatterGatherExecutor(const ScatterGatherExecutor&) = delete;
  ScatterGatherExecutor& operator=(const ScatterGatherExecutor&) = delete;

  /// Scatter-gather evaluation of a 2-query. Result entries are
  /// byte-identical to single-store Engine::Execute; stats are summed over
  /// the sub-queries (plus wall-clock seconds and a scatter plan line).
  ///
  /// With `trace` set the execution records its span tree into it —
  /// scatter fan-out, one rpc span per remote sub-query (the sub-request
  /// carries the rpc span as its trace parent, so shard-side spans
  /// piggybacked on the response nest under it), the designated shard's
  /// inline execution, and the k-way merge. Tracing never changes the
  /// result bytes.
  Result<engine::QueryResult> Execute(
      const engine::TopologyQuery& query, engine::MethodKind method,
      const engine::ExecOptions& options = engine::ExecOptions{},
      const std::shared_ptr<obs::QueryTrace>& trace = nullptr) const;

  /// Scatter-gather evaluation of a 3-query (see class comment).
  Result<engine::TripleQueryResult> ExecuteTriple(
      const engine::TripleQuery& query) const;

  /// Pre-builds the hash indexes every shard's plans use for this pair.
  void PrepareIndexes(const std::string& entity_set1,
                      const std::string& entity_set2);

  ShardedTopologyStore* mutable_store() { return store_.get(); }
  const ShardedTopologyStore& store() const { return *store_; }
  size_t num_shards() const { return store_->num_shards(); }
  const graph::SchemaGraph* schema() const { return schema_; }
  const graph::DataGraphView* view() const { return view_; }
  /// Shard i's engine (its snapshot read path follows shard i's handle).
  const engine::Engine& shard_engine(size_t shard) const {
    return *engines_[shard];
  }

  /// Overrides the sub-query transport (tests inject failing/slow
  /// wrappers; net::SocketTransport routes sub-queries to shard server
  /// processes). Non-owning; the transport must outlive the executor.
  /// Pass nullptr to restore the built-in loopback. Not safe to call
  /// concurrently with queries.
  void set_transport(wire::ShardTransport* transport) {
    transport_ = transport != nullptr ? transport : loopback_.get();
  }
  wire::ShardTransport* transport() const { return transport_; }
  const LoopbackTransport& loopback() const { return *loopback_; }
  LoopbackTransport* mutable_loopback() { return loopback_.get(); }

  /// Per-shard transport telemetry (bytes, RTT p50/p95, reconnects). The
  /// built-in loopback records into it; hand it to an injected
  /// net::SocketTransport so a transport swap keeps one telemetry stream.
  service::TransportMetrics* transport_metrics() const {
    return &transport_metrics_;
  }
  service::TransportMetricsSnapshot GetTransportMetrics() const {
    return transport_metrics_.Snapshot();
  }

  ScatterStats GetScatterStats() const;

 private:
  /// One absolute sub-query deadline per query, fixed at scatter time so
  /// every shard gets the same wall-clock budget (waiting per-future with
  /// a relative timeout would grant shard i an extra i × timeout of
  /// grace). Unset when no timeout is configured.
  using GatherDeadline =
      std::optional<std::chrono::steady_clock::time_point>;
  GatherDeadline StartGatherDeadline() const;

  /// Waits for one transport response until `deadline`. On timeout
  /// returns an error and sets *timed_out (the abandoned future stays
  /// valid — the transport task owns its data).
  Result<std::string> AwaitFrame(std::future<Result<std::string>>* future,
                                 const GatherDeadline& deadline,
                                 bool* timed_out) const;

  storage::Catalog* db_;
  std::shared_ptr<ShardedTopologyStore> store_;
  const graph::SchemaGraph* schema_;
  const graph::DataGraphView* view_;
  ScatterGatherConfig config_;
  ShardRouter router_;
  std::vector<std::unique_ptr<engine::Engine>> engines_;
  /// Dedicated sub-query lane (see ScatterGatherConfig).
  mutable service::ThreadPool scatter_pool_;
  /// Shared per-shard transport telemetry (loopback records into it; an
  /// injected socket transport should too — see transport_metrics()).
  mutable service::TransportMetrics transport_metrics_;
  /// Default in-process transport over engines_; transport_ points at it
  /// unless a test (or the socket seam) overrides.
  std::unique_ptr<LoopbackTransport> loopback_;
  wire::ShardTransport* transport_ = nullptr;

  mutable std::mutex stats_mu_;
  mutable ScatterStats stats_;
};

}  // namespace shard
}  // namespace tsb

#endif  // TSB_SHARD_SCATTER_GATHER_H_
