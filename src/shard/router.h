#ifndef TSB_SHARD_ROUTER_H_
#define TSB_SHARD_ROUTER_H_

#include <memory>
#include <vector>

#include "core/store.h"
#include "engine/query.h"
#include "storage/catalog.h"

namespace tsb {
namespace shard {

/// Where a query's sub-queries go. `shards` is ascending and never empty;
/// `designated` (always a member of `shards`) is the one shard that also
/// runs the shard-independent work — the online existence checks for
/// pruned topologies, and the whole query for methods that never read the
/// partitioned tables (the SQL baseline evaluates from base data alone, so
/// one shard's answer is the global answer).
struct ShardRoute {
  std::vector<size_t> shards;
  size_t designated = 0;

  bool single_shard() const { return shards.size() == 1; }
};

/// Maps a query's entity-pair set to the owning shards. With entity-pair
/// hash partitioning every shard registers every entity-type pair, but a
/// given *query pair*'s rows live only on shards whose slice is non-empty;
/// routing skips shards that cannot contribute (empty slice for the pair).
/// Degenerate layouts fall out naturally: a pair whose rows all hash to
/// one shard gets a single-shard route (no scatter, no merge), and a pair
/// with no rows anywhere routes to the lowest shard so the query still
/// resolves (and still reports pruned topologies, whose verification never
/// touches the partitioned tables).
class ShardRouter {
 public:
  /// Route a 2-query on entity types (t1, t2) against one consistent
  /// snapshot set. `snapshots` must have one entry per shard.
  ShardRoute Route(
      const storage::Catalog& db,
      const std::vector<std::shared_ptr<core::TopologyStore>>& snapshots,
      storage::EntityTypeId t1, storage::EntityTypeId t2,
      engine::MethodKind method) const;

  /// Shards whose slice of the pair is non-empty (ascending). Empty when
  /// no shard holds rows (or no shard built the pair).
  static std::vector<size_t> ShardsWithRows(
      const storage::Catalog& db,
      const std::vector<std::shared_ptr<core::TopologyStore>>& snapshots,
      storage::EntityTypeId t1, storage::EntityTypeId t2);
};

}  // namespace shard
}  // namespace tsb

#endif  // TSB_SHARD_ROUTER_H_
