#ifndef TSB_SHARD_REPLICA_LOOPBACK_H_
#define TSB_SHARD_REPLICA_LOOPBACK_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "replica/replica_set.h"
#include "shard/frame_handler.h"
#include "shard/sharded_store.h"

namespace tsb {
namespace shard {

/// In-process replica::ReplicaChannel over a ShardFrameHandler — the
/// loopback replica mode. One instance stands in for one shard-server
/// process, with the faults a real process exhibits made injectable:
///
///   - SetDown(true): every round-trip fails (a SIGKILLed server);
///   - InjectFailures(n): the next n round-trips fail (transient errors);
///   - SetDelay(s): round-trips stall s seconds first (a slow replica; a
///     stall past the deadline fails with kResourceExhausted, exactly
///     like a socket read timing out);
///   - SetStallEvery(n, s): every n-th round-trip on this channel stalls
///     s seconds (an intermittent tail — GC pause, page-cache miss. The
///     stall tracks the channel's own traffic, so EWMA routing cannot
///     simply route around it the way it sidelines a permanently slow
///     replica; this is the tail hedged reads exist to cut).
///
/// Responses carry the same serving stamp a real shard_server writes, so
/// epoch quarantine is testable in-process too.
class LoopbackReplicaChannel : public replica::ReplicaChannel {
 public:
  /// `handler` must outlive-by-copy (it is copied in); `label` names the
  /// channel in errors, e.g. "s1r0".
  LoopbackReplicaChannel(ShardFrameHandler handler, std::string label);

  Result<std::string> RoundTrip(const std::string& request,
                                const net::Deadline& deadline,
                                net::RoundTripTelemetry* telemetry) override;

  std::string Describe() const override { return "loopback:" + label_; }

  /// Fault injection (safe from any thread).
  void SetDown(bool down);
  void InjectFailures(uint64_t count);
  void SetDelay(double seconds);
  void SetStallEvery(uint64_t nth, double seconds);

  uint64_t round_trips() const;

 private:
  ShardFrameHandler handler_;
  std::string label_;

  mutable std::mutex mu_;
  bool down_ = false;
  uint64_t fail_next_ = 0;
  double delay_seconds_ = 0.0;
  uint64_t stall_every_ = 0;
  double stall_seconds_ = 0.0;
  uint64_t round_trips_ = 0;
};

/// An N-shards × R-replicas loopback grid over one sharded precompute:
/// replica r of shard s gets its own ShardFrameHandler (own stamp fn with
/// replica id r, shared StoreHandle so epoch swaps reach every replica)
/// and its own fault-injection switchboard. `channels` moves into a
/// ReplicaSetTransport; `raw[s][r]` keeps the injection handles (non-
/// owning — valid for the transport's lifetime).
struct LoopbackReplicaGrid {
  std::vector<std::vector<std::unique_ptr<replica::ReplicaChannel>>>
      channels;
  std::vector<std::vector<LoopbackReplicaChannel*>> raw;
};

/// `engines[s]` is shard s's engine (as for LoopbackTransport); every
/// replica of a shard shares the shard's engine and store handle — the
/// in-process analogue of R processes that built identical shards.
LoopbackReplicaGrid MakeLoopbackReplicaGrid(
    storage::Catalog* db, const ShardedTopologyStore* store,
    const std::vector<const engine::Engine*>& engines, size_t replicas);

}  // namespace shard
}  // namespace tsb

#endif  // TSB_SHARD_REPLICA_LOOPBACK_H_
