#include "core/store.h"

#include <algorithm>

#include "common/hash.h"
#include "common/logging.h"
#include "graph/canonical.h"

namespace tsb {
namespace core {

size_t ShardOfEntityPair(int64_t e1, int64_t e2, size_t num_shards) {
  if (num_shards <= 1) return 0;
  const uint64_t lo = static_cast<uint64_t>(std::min(e1, e2));
  const uint64_t hi = static_cast<uint64_t>(std::max(e1, e2));
  uint64_t mixed = HashCombine(HashCombine(0x7370616972ULL, lo), hi);
  return static_cast<size_t>(mixed % num_shards);
}

std::vector<Tid> PairTopologyData::ObservedTids() const {
  std::vector<Tid> tids;
  tids.reserve(freq.size());
  for (const auto& [tid, _] : freq) tids.push_back(tid);
  std::sort(tids.begin(), tids.end());
  return tids;
}

std::vector<Tid> PairTopologyData::UnprunedTids() const {
  std::vector<Tid> tids = ObservedTids();
  if (!pruned) return tids;
  std::vector<Tid> out;
  out.reserve(tids.size());
  for (Tid tid : tids) {
    if (!IsPruned(tid)) out.push_back(tid);
  }
  return out;
}

bool PairTopologyData::IsPruned(Tid tid) const {
  return pruned && pruned_class_of_tid.count(tid) > 0;
}

TopologyStore::~TopologyStore() {
  if (cleanup_) cleanup_();
}

void TopologyStore::adopt_catalog(std::shared_ptr<TopologyCatalog> catalog) {
  TSB_CHECK(catalog != nullptr);
  TSB_CHECK(pairs_.empty())
      << "adopt_catalog must run before any pair is registered";
  catalog_ = std::move(catalog);
}

std::pair<storage::EntityTypeId, storage::EntityTypeId>
TopologyStore::NormalizePair(storage::EntityTypeId a,
                             storage::EntityTypeId b) {
  return a <= b ? std::make_pair(a, b) : std::make_pair(b, a);
}

Result<PairTopologyData*> TopologyStore::AddPair(PairTopologyData data) {
  auto key = NormalizePair(data.t1, data.t2);
  if (data.t1 != key.first || data.t2 != key.second) {
    return Status::InvalidArgument(
        "pair data must be registered in canonical order");
  }
  auto [it, inserted] = pairs_.emplace(key, std::move(data));
  if (!inserted) {
    return Status::AlreadyExists("pair already built: " +
                                 it->second.pair_name);
  }
  return &it->second;
}

PairTopologyData* TopologyStore::FindPair(storage::EntityTypeId a,
                                          storage::EntityTypeId b) {
  auto it = pairs_.find(NormalizePair(a, b));
  return it == pairs_.end() ? nullptr : &it->second;
}

const PairTopologyData* TopologyStore::FindPair(
    storage::EntityTypeId a, storage::EntityTypeId b) const {
  auto it = pairs_.find(NormalizePair(a, b));
  return it == pairs_.end() ? nullptr : &it->second;
}

std::vector<std::string> TopologyStore::PrecomputeTableNames() const {
  std::vector<std::string> names;
  for (const auto& [key, pair] : pairs_) {
    names.push_back(pair.alltops_table);
    names.push_back(pair.pairclasses_table);
    if (pair.pruned) {
      names.push_back(pair.lefttops_table);
      names.push_back(pair.excptops_table);
    }
  }
  return names;
}

void TopologyStore::ExportTopInfoTable(storage::Catalog* db,
                                       const graph::SchemaGraph& schema) const {
  const std::string name = "TopInfo";
  if (db->FindTable(name) != nullptr) {
    TSB_CHECK(db->DropTable(name).ok());
  }
  storage::TableSchema table_schema({
      {"TID", storage::ColumnType::kInt64},
      {"NUM_NODES", storage::ColumnType::kInt64},
      {"NUM_EDGES", storage::ColumnType::kInt64},
      {"NUM_CLASSES", storage::ColumnType::kInt64},
      {"IS_PATH", storage::ColumnType::kInt64},
      {"DIGEST", storage::ColumnType::kString},
      {"DETAILS", storage::ColumnType::kString},
  });
  auto table_or = db->CreateTable(name, std::move(table_schema));
  TSB_CHECK(table_or.ok()) << table_or.status();
  storage::Table* table = table_or.value();
  for (const TopologyInfo& info : catalog_->infos()) {
    table->AppendRowOrDie({
        storage::Value(info.tid),
        storage::Value(static_cast<int64_t>(info.graph.num_nodes())),
        storage::Value(static_cast<int64_t>(info.graph.num_edges())),
        storage::Value(static_cast<int64_t>(info.num_classes)),
        storage::Value(static_cast<int64_t>(info.is_path ? 1 : 0)),
        storage::Value(graph::CodeDigest(info.code)),
        storage::Value(catalog_->Describe(info.tid, schema)),
    });
  }
}

StoreHandle::StoreHandle(std::shared_ptr<TopologyStore> initial)
    : current_(std::move(initial)) {
  TSB_CHECK(current_ != nullptr);
}

std::shared_ptr<TopologyStore> StoreHandle::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_;
}

std::pair<std::shared_ptr<TopologyStore>, uint64_t>
StoreHandle::SnapshotWithEpoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {current_, epoch_.load(std::memory_order_relaxed)};
}

std::shared_ptr<TopologyStore> StoreHandle::Swap(
    std::shared_ptr<TopologyStore> next) {
  TSB_CHECK(next != nullptr);
  std::lock_guard<std::mutex> lock(mu_);
  std::shared_ptr<TopologyStore> old = std::move(current_);
  current_ = std::move(next);
  epoch_.fetch_add(1, std::memory_order_acq_rel);
  return old;
}

}  // namespace core
}  // namespace tsb
