#include "core/pair_topologies.h"

#include <algorithm>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "common/logging.h"
#include "graph/canonical.h"

namespace tsb {
namespace core {
namespace {

/// Unions the chosen paths into an instance-level labeled graph.
void BuildUnionGraph(const graph::DataGraphView& view,
                     const std::vector<const graph::PathInstance*>& chosen,
                     graph::LabeledGraph* out,
                     std::vector<graph::EntityId>* node_ids) {
  std::unordered_map<graph::EntityId, graph::LabeledGraph::NodeId> node_of;
  std::unordered_set<int64_t> edge_seen;
  for (const graph::PathInstance* path : chosen) {
    for (graph::EntityId id : path->nodes) {
      if (node_of.count(id) > 0) continue;
      graph::LabeledGraph::NodeId nid = out->AddNode(view.NodeType(id));
      node_of.emplace(id, nid);
      node_ids->push_back(id);
    }
    for (size_t i = 0; i < path->edge_ids.size(); ++i) {
      if (!edge_seen.insert(path->edge_ids[i]).second) continue;
      out->AddEdge(node_of[path->nodes[i]], node_of[path->nodes[i + 1]],
                   path->steps[i].rel);
    }
  }
  // Distinct relationship rows with identical endpoints and type carry no
  // extra information for topology identity.
  out->DedupeParallelEdges();
}

}  // namespace

std::vector<ComputedTopology> UnionTopologies(
    const graph::DataGraphView& view,
    const std::vector<std::vector<graph::PathInstance>>& class_reps,
    const std::vector<std::string>& class_keys, const UnionLimits& limits,
    bool* truncated) {
  std::vector<ComputedTopology> out;
  if (class_reps.empty()) return out;
  const size_t s = class_reps.size();
  TSB_CHECK_EQ(class_keys.size(), s);
  for (const auto& reps : class_reps) {
    TSB_CHECK(!reps.empty()) << "empty path equivalence class";
  }

  std::unordered_set<std::string> seen;
  // Mixed-radix odometer over one representative per class. With a single
  // class every choice yields the same (path) topology, so one combination
  // suffices.
  std::vector<size_t> choice(s, 0);
  size_t combos = 0;
  for (;;) {
    if (combos >= limits.max_union_combinations) {
      if (truncated != nullptr) *truncated = true;
      break;
    }
    ++combos;
    std::vector<const graph::PathInstance*> chosen;
    chosen.reserve(s);
    for (size_t c = 0; c < s; ++c) chosen.push_back(&class_reps[c][choice[c]]);

    ComputedTopology topo;
    topo.num_classes = s;
    topo.class_keys = class_keys;
    BuildUnionGraph(view, chosen, &topo.witness, &topo.witness_ids);
    topo.code = graph::CanonicalCode(topo.witness);
    if (seen.insert(topo.code).second) {
      topo.graph = graph::CanonicalForm(topo.witness);
      out.push_back(std::move(topo));
    }

    if (s == 1) break;  // All single-class choices are isomorphic.
    // Advance the odometer.
    size_t c = 0;
    for (; c < s; ++c) {
      if (++choice[c] < class_reps[c].size()) break;
      choice[c] = 0;
    }
    if (c == s) break;
  }
  return out;
}

SourceSweep SweepFromSource(const graph::DataGraphView& view,
                            const graph::SchemaGraph& schema,
                            graph::EntityId a,
                            storage::EntityTypeId partner_type,
                            bool self_pair, const SweepLimits& limits) {
  SourceSweep sweep;
  if (!view.HasNode(a)) return sweep;

  graph::PathInstance current;
  current.nodes.push_back(a);
  size_t paths_recorded = 0;

  std::function<void()> dfs = [&]() {
    if (sweep.source_truncated) return;
    graph::EntityId at = current.nodes.back();
    if (at != a && view.NodeType(at) == partner_type &&
        !current.steps.empty() && (!self_pair || at > a)) {
      if (paths_recorded >= limits.max_paths_per_source) {
        sweep.source_truncated = true;
        return;
      }
      ++paths_recorded;
      std::string key = schema.PathClassKey(current.ToSchemaPath(view));
      std::vector<graph::PathInstance>& reps = sweep.by_dest[at][key];
      if (reps.size() >= limits.max_class_representatives) {
        sweep.reps_truncated = true;
      } else {
        reps.push_back(current);
      }
    }
    if (current.steps.size() == limits.max_path_length) return;
    for (const graph::AdjEntry& adj : view.Neighbors(at)) {
      if (std::find(current.nodes.begin(), current.nodes.end(),
                    adj.neighbor) != current.nodes.end()) {
        continue;  // Simple paths only.
      }
      current.nodes.push_back(adj.neighbor);
      current.edge_ids.push_back(adj.edge_id);
      current.steps.push_back(graph::SchemaStep{adj.rel, adj.forward});
      dfs();
      current.nodes.pop_back();
      current.edge_ids.pop_back();
      current.steps.pop_back();
      if (sweep.source_truncated) return;
    }
  };
  dfs();
  return sweep;
}

PairComputation ComputePairTopologies(const graph::DataGraphView& view,
                                      const graph::SchemaGraph& schema,
                                      graph::EntityId a, graph::EntityId b,
                                      const PairComputeLimits& limits) {
  PairComputation result;
  bool path_truncated = false;
  std::vector<graph::PathInstance> paths = graph::EnumeratePathsBetween(
      view, a, b, limits.max_path_length, limits.path_cap, &path_truncated);
  if (path_truncated) result.truncated = true;

  for (graph::PathInstance& p : paths) {
    std::string key = schema.PathClassKey(p.ToSchemaPath(view));
    std::vector<graph::PathInstance>& reps = result.classes[key];
    if (reps.size() >= limits.union_limits.max_class_representatives) {
      result.truncated = true;
      continue;
    }
    reps.push_back(std::move(p));
  }
  if (result.classes.empty()) return result;

  std::vector<std::vector<graph::PathInstance>> class_reps;
  std::vector<std::string> class_keys;
  class_reps.reserve(result.classes.size());
  for (const auto& [key, reps] : result.classes) {
    class_keys.push_back(key);
    class_reps.push_back(reps);
  }

  bool union_truncated = false;
  result.topologies = UnionTopologies(view, class_reps, class_keys,
                                      limits.union_limits, &union_truncated);
  if (union_truncated) result.truncated = true;
  return result;
}

}  // namespace core
}  // namespace tsb
