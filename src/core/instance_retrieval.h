#ifndef TSB_CORE_INSTANCE_RETRIEVAL_H_
#define TSB_CORE_INSTANCE_RETRIEVAL_H_

#include <vector>

#include "core/pair_topologies.h"
#include "core/store.h"
#include "graph/data_graph.h"
#include "graph/schema_graph.h"
#include "storage/catalog.h"

namespace tsb {
namespace core {

/// One instance-level result for a topology: the concrete subgraph (with
/// entity ids) adhering to the topology, for a specific entity pair.
struct TopologyInstance {
  graph::EntityId a = 0;
  graph::EntityId b = 0;
  graph::LabeledGraph subgraph;              // Node labels = entity types.
  std::vector<graph::EntityId> node_ids;     // Node index -> entity id.
};

struct RetrievalLimits {
  size_t max_pairs = SIZE_MAX;                // Pairs materialized.
  size_t max_instances_per_pair = SIZE_MAX;   // Witnesses per pair.
  UnionLimits union_limits;                   // Re-computation caps.
  size_t path_cap = SIZE_MAX;
};

/// Retrieves instance-level results adhering to topology `tid` for the
/// entity-set pair (Section 6.2.4: "the cost of retrieving the instances of
/// a given topology"). Pairs come from the AllTops table; each pair's
/// witness subgraphs are recomputed from the base data and filtered to the
/// requested topology.
std::vector<TopologyInstance> RetrieveInstances(
    const storage::Catalog& db, const TopologyStore& store,
    const graph::SchemaGraph& schema, const graph::DataGraphView& view,
    storage::EntityTypeId t1, storage::EntityTypeId t2, Tid tid,
    const RetrievalLimits& limits = RetrievalLimits{});

}  // namespace core
}  // namespace tsb

#endif  // TSB_CORE_INSTANCE_RETRIEVAL_H_
