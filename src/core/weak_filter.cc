#include "core/weak_filter.h"

#include "graph/isomorphism.h"

namespace tsb {
namespace core {
namespace {

bool IsWeak(const TopologyInfo& info, const DomainKnowledge& knowledge) {
  for (const graph::LabeledGraph& motif : knowledge.weak_motifs) {
    if (graph::IsSubgraphIsomorphic(motif, info.graph)) return true;
  }
  return false;
}

}  // namespace

std::unordered_set<Tid> FindWeakTopologies(const TopologyCatalog& catalog,
                                           const PairTopologyData& pair,
                                           const DomainKnowledge& knowledge) {
  std::unordered_set<Tid> weak;
  for (const auto& [tid, freq] : pair.freq) {
    if (IsWeak(catalog.Get(tid), knowledge)) weak.insert(tid);
  }
  return weak;
}

WeakFilterStats AnalyzeWeakTopologies(const TopologyCatalog& catalog,
                                      const PairTopologyData& pair,
                                      const DomainKnowledge& knowledge) {
  WeakFilterStats stats;
  for (const auto& [tid, freq] : pair.freq) {
    ++stats.total_topologies;
    stats.total_pairs += freq;
    if (IsWeak(catalog.Get(tid), knowledge)) {
      ++stats.weak_topologies;
      stats.weak_pairs += freq;
    }
  }
  return stats;
}

}  // namespace core
}  // namespace tsb
