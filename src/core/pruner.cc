#include "core/pruner.h"

#include <unordered_map>
#include <unordered_set>

#include "columnar/blocks.h"
#include "common/logging.h"

namespace tsb {
namespace core {

Result<PruneStats> PruneFrequentTopologies(storage::Catalog* db,
                                           TopologyStore* store,
                                           storage::EntityTypeId t1,
                                           storage::EntityTypeId t2,
                                           const PruneConfig& config) {
  PairTopologyData* pair = store->FindPair(t1, t2);
  if (pair == nullptr) {
    return Status::NotFound("pair not built; run TopologyBuilder first");
  }
  if (pair->pruned) {
    return Status::FailedPrecondition("pair already pruned");
  }

  const TopologyCatalog& catalog = store->catalog();

  // Select prunable topologies: path-shaped and more frequent than the
  // threshold. Their class id is recovered through the class registry.
  std::unordered_map<Tid, uint32_t> tid_to_class;
  for (const ClassInfo& cls : pair->classes) {
    if (cls.path_tid != kNoTid) tid_to_class.emplace(cls.path_tid, cls.id);
  }
  std::unordered_set<Tid> pruned;
  for (const auto& [tid, freq] : pair->freq) {
    if (freq <= config.frequency_threshold) continue;
    if (!catalog.Get(tid).is_path) continue;
    auto it = tid_to_class.find(tid);
    if (it == tid_to_class.end()) continue;  // Path not of this pair's l-set.
    pruned.insert(tid);
  }

  // LeftTops: AllTops rows whose TID survived.
  const storage::Table& alltops = *db->GetTable(pair->alltops_table);
  pair->lefttops_table =
      pair->table_namespace + "LeftTops_" + pair->pair_name;
  pair->excptops_table =
      pair->table_namespace + "ExcpTops_" + pair->pair_name;
  storage::TableSchema row_schema({{"E1", storage::ColumnType::kInt64},
                                   {"E2", storage::ColumnType::kInt64},
                                   {"TID", storage::ColumnType::kInt64}});
  storage::Table* lefttops;
  storage::Table* excptops;
  {
    auto t = db->CreateTable(pair->lefttops_table, row_schema);
    TSB_RETURN_IF_ERROR(t.status());
    lefttops = t.value();
  }
  {
    auto t = db->CreateTable(pair->excptops_table, row_schema);
    TSB_RETURN_IF_ERROR(t.status());
    excptops = t.value();
  }

  PruneStats stats;
  stats.alltops_rows = alltops.num_rows();
  const auto& e1 = alltops.column(0).ints();
  const auto& e2 = alltops.column(1).ints();
  const auto& tid_col = alltops.column(2).ints();
  for (size_t i = 0; i < alltops.num_rows(); ++i) {
    if (pruned.count(tid_col[i]) > 0) continue;
    lefttops->AppendRowOrDie({storage::Value(e1[i]), storage::Value(e2[i]),
                              storage::Value(tid_col[i])});
  }
  stats.lefttops_rows = lefttops->num_rows();

  // ExcpTops: pairs whose class set contains a pruned topology's class but
  // who are related by more complex topologies (they appear in PairClasses,
  // which only records multi-class pairs). Keyed by the pruned TID so the
  // online check can filter per topology.
  std::unordered_map<uint32_t, Tid> class_to_pruned_tid;
  for (Tid tid : pruned) class_to_pruned_tid[tid_to_class[tid]] = tid;
  const storage::Table& pairclasses = *db->GetTable(pair->pairclasses_table);
  const auto& ce1 = pairclasses.column(0).ints();
  const auto& ce2 = pairclasses.column(1).ints();
  const auto& cid_col = pairclasses.column(2).ints();
  for (size_t i = 0; i < pairclasses.num_rows(); ++i) {
    auto it = class_to_pruned_tid.find(static_cast<uint32_t>(cid_col[i]));
    if (it == class_to_pruned_tid.end()) continue;
    excptops->AppendRowOrDie({storage::Value(ce1[i]), storage::Value(ce2[i]),
                              storage::Value(it->second)});
  }
  stats.excptops_rows = excptops->num_rows();
  stats.pruned_topologies = pruned.size();

  pair->pruned = true;
  pair->prune_threshold = config.frequency_threshold;
  for (Tid tid : pruned) {
    pair->pruned_tids.push_back(tid);
    pair->pruned_class_of_tid.emplace(tid, tid_to_class[tid]);
  }
  std::sort(pair->pruned_tids.begin(), pair->pruned_tids.end());
  columnar::AttachSlices(
      *db, catalog, pair,
      store->ResolveDataTable(db->entity_set(pair->t1).table_name),
      store->ResolveDataTable(db->entity_set(pair->t2).table_name));
  return stats;
}

}  // namespace core
}  // namespace tsb
