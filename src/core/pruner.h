#ifndef TSB_CORE_PRUNER_H_
#define TSB_CORE_PRUNER_H_

#include "common/result.h"
#include "common/status.h"
#include "core/store.h"
#include "storage/catalog.h"

namespace tsb {
namespace core {

/// Pruning policy (Section 4.2.2): every *path-shaped* topology whose
/// frequency exceeds the threshold is pruned. The paper observes (Figure 12)
/// that frequent topologies are structurally simple; restricting pruning to
/// path shapes makes the online re-check a single schema-path sweep, which
/// is exactly the cheap "lower sub-query" of SQL1.
struct PruneConfig {
  size_t frequency_threshold = 0;
};

struct PruneStats {
  size_t pruned_topologies = 0;
  size_t alltops_rows = 0;
  size_t lefttops_rows = 0;
  size_t excptops_rows = 0;
};

/// The Topology Pruning module of Figure 10: derives LeftTops_<pair> (the
/// surviving AllTops rows) and ExcpTops_<pair> (pairs that satisfy a pruned
/// topology's path condition but are related through a more complex
/// topology, so the online check must not report them). Records the pruned
/// TIDs and their classes in the pair data.
Result<PruneStats> PruneFrequentTopologies(storage::Catalog* db,
                                           TopologyStore* store,
                                           storage::EntityTypeId t1,
                                           storage::EntityTypeId t2,
                                           const PruneConfig& config);

}  // namespace core
}  // namespace tsb

#endif  // TSB_CORE_PRUNER_H_
