#ifndef TSB_CORE_STORE_H_
#define TSB_CORE_STORE_H_

#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/topology.h"
#include "graph/schema_graph.h"
#include "storage/catalog.h"

namespace tsb {
namespace core {

/// One path equivalence class between an entity-set pair.
struct ClassInfo {
  uint32_t id = 0;
  std::string key;               // SchemaGraph::PathClassKey bytes.
  graph::SchemaPath path;        // Canonical-direction representative.
  Tid path_tid = kNoTid;         // TID of the single-class path topology,
                                 // assigned when first observed.
  size_t instance_pairs = 0;     // Pairs having this class.
};

/// Per-entity-set-pair precomputation artifacts: the AllTops table, the
/// class registry, topology frequencies, and (after pruning) the
/// LeftTops/ExcpTops tables of Fast-Top.
struct PairTopologyData {
  storage::EntityTypeId t1 = 0;  // Canonical order: t1 <= t2.
  storage::EntityTypeId t2 = 0;
  std::string pair_name;         // E.g. "Protein_DNA".
  size_t max_path_length = 0;    // The l this pair was built with.
  /// Build caps, kept so online verification replays the same limits.
  size_t build_max_class_representatives = 0;
  size_t build_max_union_combinations = 0;

  std::string alltops_table;     // (E1, E2, TID)
  std::string pairclasses_table; // (E1, E2, CID), only pairs with >= 2
                                 // classes (exception bookkeeping).

  std::vector<ClassInfo> classes;
  std::unordered_map<std::string, uint32_t> class_by_key;

  /// freq(es1, es2, T): number of entity pairs related by T (Section 4.2.1).
  std::unordered_map<Tid, size_t> freq;
  size_t num_related_pairs = 0;

  /// Build-time truncation counters (Section 6.2.3's intrinsic complexity).
  size_t truncated_pairs = 0;
  size_t truncated_representatives = 0;

  /// Pruning artifacts (empty until PruneFrequentTopologies runs).
  bool pruned = false;
  size_t prune_threshold = 0;
  std::string lefttops_table;    // (E1, E2, TID)
  std::string excptops_table;    // (E1, E2, TID)
  std::vector<Tid> pruned_tids;
  std::unordered_map<Tid, uint32_t> pruned_class_of_tid;

  /// All observed TIDs, ascending (freq keys, materialized for iteration).
  std::vector<Tid> ObservedTids() const;
  /// TIDs surviving pruning (all observed when not pruned).
  std::vector<Tid> UnprunedTids() const;
  bool IsPruned(Tid tid) const;
};

/// Owns the topology catalog and the per-pair precomputation registry; the
/// hub object produced by TopologyBuilder and consumed by the query engine.
class TopologyStore {
 public:
  TopologyCatalog* mutable_catalog() { return &catalog_; }
  const TopologyCatalog& catalog() const { return catalog_; }

  /// Canonical unordered-pair key.
  static std::pair<storage::EntityTypeId, storage::EntityTypeId>
  NormalizePair(storage::EntityTypeId a, storage::EntityTypeId b);

  /// Registers a freshly built pair; aborts on duplicates.
  PairTopologyData* AddPair(PairTopologyData data);

  /// Lookup in either order; nullptr if the pair was never built.
  PairTopologyData* FindPair(storage::EntityTypeId a,
                             storage::EntityTypeId b);
  const PairTopologyData* FindPair(storage::EntityTypeId a,
                                   storage::EntityTypeId b) const;

  const std::map<std::pair<storage::EntityTypeId, storage::EntityTypeId>,
                 PairTopologyData>&
  pairs() const {
    return pairs_;
  }

  /// Writes/refreshes the global TopInfo table (TID, NUM_NODES, NUM_EDGES,
  /// NUM_CLASSES, IS_PATH, DIGEST, DETAILS) in `db`.
  void ExportTopInfoTable(storage::Catalog* db,
                          const graph::SchemaGraph& schema) const;

 private:
  TopologyCatalog catalog_;
  std::map<std::pair<storage::EntityTypeId, storage::EntityTypeId>,
           PairTopologyData>
      pairs_;
};

}  // namespace core
}  // namespace tsb

#endif  // TSB_CORE_STORE_H_
