#ifndef TSB_CORE_STORE_H_
#define TSB_CORE_STORE_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/result.h"
#include "core/topology.h"
#include "graph/schema_graph.h"
#include "storage/catalog.h"

namespace tsb {
namespace columnar {
struct ColumnarSlice;
}  // namespace columnar
namespace graph {
class DataGraphView;
}  // namespace graph
namespace core {

/// One path equivalence class between an entity-set pair.
struct ClassInfo {
  uint32_t id = 0;
  std::string key;               // SchemaGraph::PathClassKey bytes.
  graph::SchemaPath path;        // Canonical-direction representative.
  Tid path_tid = kNoTid;         // TID of the single-class path topology,
                                 // assigned when first observed.
  size_t instance_pairs = 0;     // Pairs having this class.
};

/// Per-entity-set-pair precomputation artifacts: the AllTops table, the
/// class registry, topology frequencies, and (after pruning) the
/// LeftTops/ExcpTops tables of Fast-Top.
struct PairTopologyData {
  storage::EntityTypeId t1 = 0;  // Canonical order: t1 <= t2.
  storage::EntityTypeId t2 = 0;
  std::string pair_name;         // E.g. "Protein_DNA".
  size_t max_path_length = 0;    // The l this pair was built with.
  /// Build caps, kept so online verification replays the same limits.
  size_t build_max_class_representatives = 0;
  size_t build_max_union_combinations = 0;

  /// Namespace prefixed to every precompute table of this pair (from
  /// BuildConfig::table_namespace). Live rebuilds stage each epoch under a
  /// distinct namespace so old and new tables coexist in storage::Catalog
  /// until the old epoch's last reader releases it.
  std::string table_namespace;

  std::string alltops_table;     // (E1, E2, TID)
  std::string pairclasses_table; // (E1, E2, CID), only pairs with >= 2
                                 // classes (exception bookkeeping).

  std::vector<ClassInfo> classes;
  std::unordered_map<std::string, uint32_t> class_by_key;

  /// freq(es1, es2, T): number of entity pairs related by T (Section 4.2.1).
  std::unordered_map<Tid, size_t> freq;
  size_t num_related_pairs = 0;

  /// Build-time truncation counters (Section 6.2.3's intrinsic complexity).
  size_t truncated_pairs = 0;
  size_t truncated_representatives = 0;

  /// Pruning artifacts (empty until PruneFrequentTopologies runs).
  bool pruned = false;
  size_t prune_threshold = 0;
  std::string lefttops_table;    // (E1, E2, TID)
  std::string excptops_table;    // (E1, E2, TID)
  std::vector<Tid> pruned_tids;
  std::unordered_map<Tid, uint32_t> pruned_class_of_tid;

  /// Immutable columnar mirrors of the tops tables (columnar::BuildSlice),
  /// attached at builder commit / prune / snapshot load and carried by the
  /// epoch machinery like every other precompute artifact. Null means the
  /// mirror is unavailable and queries stay on the row path.
  std::shared_ptr<const columnar::ColumnarSlice> alltops_blocks;
  std::shared_ptr<const columnar::ColumnarSlice> lefttops_blocks;

  /// All observed TIDs, ascending (freq keys, materialized for iteration).
  std::vector<Tid> ObservedTids() const;
  /// TIDs surviving pruning (all observed when not pruned).
  std::vector<Tid> UnprunedTids() const;
  bool IsPruned(Tid tid) const;
};

/// Owning shard of a canonical entity pair under `num_shards` hash shards —
/// THE partitioning function of the sharded topology store. Builder commit
/// routing, the shard router, and the equivalence tests must all agree on
/// it. Orientation-insensitive: (a, b) and (b, a) land on the same shard
/// (self-pair AllTops rows may be swept in either direction). Stable across
/// platforms (pure 64-bit arithmetic, no size_t/std::hash dependence).
size_t ShardOfEntityPair(int64_t e1, int64_t e2, size_t num_shards);

/// Owns the topology catalog and the per-pair precomputation registry; the
/// hub object produced by TopologyBuilder and consumed by the query engine.
///
/// Thread safety: the catalog is internally synchronized (3-queries intern
/// while 2-queries read). The pair registry is not — it is written during
/// the single-threaded build commit and must be immutable once the store
/// serves queries; a live rebuild therefore stages a fresh store and swaps
/// it in through a StoreHandle rather than mutating this one.
class TopologyStore {
 public:
  TopologyStore() = default;
  ~TopologyStore();

  TopologyStore(const TopologyStore&) = delete;
  TopologyStore& operator=(const TopologyStore&) = delete;

  TopologyCatalog* mutable_catalog() { return catalog_.get(); }
  const TopologyCatalog& catalog() const { return *catalog_; }

  /// The catalog as a shareable handle. A mutation overlay store adopts
  /// the base epoch's catalog (adopt_catalog) instead of interning from
  /// scratch, so TIDs stay stable across incremental swaps — the invariant
  /// that keeps overlay reads byte-identical to a from-scratch rebuild.
  const std::shared_ptr<TopologyCatalog>& shared_catalog() const {
    return catalog_;
  }
  /// Replaces this store's catalog with a shared one. Only valid while the
  /// store is still private (no pairs registered, not yet published).
  void adopt_catalog(std::shared_ptr<TopologyCatalog> catalog);

  /// Canonical unordered-pair key.
  static std::pair<storage::EntityTypeId, storage::EntityTypeId>
  NormalizePair(storage::EntityTypeId a, storage::EntityTypeId b);

  /// Registers a freshly built pair. Fails with AlreadyExists on duplicates
  /// and InvalidArgument when the data is not in canonical (t1 <= t2)
  /// order, so a failed build attempt is recoverable by the caller.
  Result<PairTopologyData*> AddPair(PairTopologyData data);

  /// Lookup in either order; nullptr if the pair was never built.
  PairTopologyData* FindPair(storage::EntityTypeId a,
                             storage::EntityTypeId b);
  const PairTopologyData* FindPair(storage::EntityTypeId a,
                                   storage::EntityTypeId b) const;

  const std::map<std::pair<storage::EntityTypeId, storage::EntityTypeId>,
                 PairTopologyData>&
  pairs() const {
    return pairs_;
  }

  /// Names of every precompute table this store registered in the storage
  /// catalog (AllTops/PairClasses and, when pruned, LeftTops/ExcpTops).
  std::vector<std::string> PrecomputeTableNames() const;

  /// Copy-on-write redirection for base data tables. A mutation batch never
  /// edits an entity/relationship table in place (snapshots of the old
  /// epoch keep reading it); it writes a versioned copy and records
  /// `original table name -> versioned name` here. Query resolution and
  /// slice building go through ResolveDataTable so reads against this store
  /// see the mutated data while retired epochs keep the original.
  void set_data_table_override(const std::string& base_table,
                               const std::string& versioned_table) {
    data_table_overrides_[base_table] = versioned_table;
  }
  const std::string& ResolveDataTable(const std::string& base_table) const {
    auto it = data_table_overrides_.find(base_table);
    return it == data_table_overrides_.end() ? base_table : it->second;
  }
  const std::unordered_map<std::string, std::string>& data_table_overrides()
      const {
    return data_table_overrides_;
  }

  /// Graph view matching this store's data-table overrides. Null for base
  /// epochs (the engine falls back to its own view built from the original
  /// tables); set on mutation overlay stores so path verification and
  /// 3-queries traverse the mutated graph.
  const std::shared_ptr<const graph::DataGraphView>& data_view() const {
    return data_view_;
  }
  void set_data_view(std::shared_ptr<const graph::DataGraphView> view) {
    data_view_ = std::move(view);
  }

  /// Hook run by the destructor. The service points a retired epoch's hook
  /// at dropping its precompute tables, so they disappear exactly when the
  /// last snapshot referencing them is released (the captured catalog must
  /// outlive the store). Mutation overlay stores set their own hook at
  /// composition time (dropping restaged tables and chaining to the store
  /// they overlaid); has_cleanup lets the rebuild path respect that.
  void set_cleanup(std::function<void()> cleanup) {
    cleanup_ = std::move(cleanup);
  }
  bool has_cleanup() const { return static_cast<bool>(cleanup_); }

  /// Chains `extra` after any existing hook instead of replacing it — how
  /// Rebuild retires a store that is a mutation overlay: the overlay's own
  /// hook (restaged tables + chain to the base) runs first, then the
  /// rebuild's epoch-table drop.
  void add_cleanup(std::function<void()> extra) {
    if (!cleanup_) {
      cleanup_ = std::move(extra);
      return;
    }
    cleanup_ = [first = std::move(cleanup_), extra = std::move(extra)]() {
      first();
      extra();
    };
  }

  /// Writes/refreshes the global TopInfo table (TID, NUM_NODES, NUM_EDGES,
  /// NUM_CLASSES, IS_PATH, DIGEST, DETAILS) in `db`.
  void ExportTopInfoTable(storage::Catalog* db,
                          const graph::SchemaGraph& schema) const;

 private:
  std::shared_ptr<TopologyCatalog> catalog_ =
      std::make_shared<TopologyCatalog>();
  std::map<std::pair<storage::EntityTypeId, storage::EntityTypeId>,
           PairTopologyData>
      pairs_;
  std::unordered_map<std::string, std::string> data_table_overrides_;
  std::shared_ptr<const graph::DataGraphView> data_view_;
  std::function<void()> cleanup_;
};

/// Epoch-style holder of the live TopologyStore — the snapshot read path
/// that lets a rebuild happen behind live traffic. Readers (Engine, the
/// service's 3-query path) take a shared_ptr snapshot per operation and
/// keep using it for the operation's duration; a rebuild stages a complete
/// replacement store and Swap()s it in, after which new operations see the
/// new epoch while in-flight ones finish consistently on the old.
class StoreHandle {
 public:
  explicit StoreHandle(std::shared_ptr<TopologyStore> initial);

  /// The current epoch's store.
  std::shared_ptr<TopologyStore> Snapshot() const;

  /// Store and epoch counter read atomically together.
  std::pair<std::shared_ptr<TopologyStore>, uint64_t> SnapshotWithEpoch()
      const;

  /// Monotonic swap counter (0 until the first Swap). Cheap to poll:
  /// readers use it to detect that a cached per-epoch state is stale.
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  /// Publishes `next` and returns the retired store (whose tables stay
  /// alive until every outstanding snapshot releases it).
  std::shared_ptr<TopologyStore> Swap(std::shared_ptr<TopologyStore> next);

 private:
  mutable std::mutex mu_;
  std::shared_ptr<TopologyStore> current_;
  std::atomic<uint64_t> epoch_{0};
};

}  // namespace core
}  // namespace tsb

#endif  // TSB_CORE_STORE_H_
