#ifndef TSB_CORE_TOPOLOGY_H_
#define TSB_CORE_TOPOLOGY_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/labeled_graph.h"
#include "graph/schema_graph.h"

namespace tsb {
namespace core {

/// Topology identifier (the TID of the paper's TopInfo / AllTops tables).
using Tid = int64_t;
constexpr Tid kNoTid = -1;

/// Everything known about one topology: its canonical schema-level graph
/// and derived structural facts. Topologies are identified purely by the
/// isomorphism class of their graph (Definition 2 uses [G] with no marked
/// terminals), so the canonical code is the identity.
struct TopologyInfo {
  Tid tid = kNoTid;
  graph::LabeledGraph graph;  // Canonical form.
  std::string code;           // CanonicalCode(graph).
  size_t num_classes = 0;     // Path classes unioned when first observed.
  bool is_path = false;       // Path-shaped (only these are prunable).
  /// Path-class keys of the union that first produced this topology. The
  /// SQL baseline anchors its per-topology existence query on one of these
  /// (the structure-specific join the paper issues per candidate).
  ///
  /// Unlike every other field, class_keys keeps accumulating after
  /// publication (the same topology can arise from different class sets).
  /// Concurrent readers must go through TopologyCatalog::ClassKeysOf; the
  /// reference returned by Get only covers the immutable fields.
  std::vector<std::string> class_keys;
};

/// True if `g` is a connected simple path: exactly two endpoints of degree
/// 1, all other nodes of degree 2, and no cycles.
bool IsPathShaped(const graph::LabeledGraph& g);

/// For a path-shaped graph, recovers the schema path (in the canonical
/// class direction). Returns nullopt for non-paths or when an edge label is
/// not consistent with the schema's endpoint types.
std::optional<graph::SchemaPath> ExtractSchemaPath(
    const graph::LabeledGraph& g, const graph::SchemaGraph& schema);

/// Interns topologies by canonical code and assigns stable TIDs (dense,
/// starting at 1). The in-memory backing of the paper's TopInfo table.
///
/// Thread safety: Intern/InternWithCode/FindByCode/Get/size/ClassKeysOf/
/// Describe are safe to call concurrently from any mix of threads (the
/// intern map is mutex-guarded and entries live in a deque, so published
/// TopologyInfo references never relocate). This is what lets 3-queries
/// intern new topologies while 2-query readers traverse the catalog, and
/// lets the parallel build commit without quiescing the service. infos()
/// is the one exception: it exposes the underlying container for offline
/// iteration (export, persistence) and must not race with interning.
class TopologyCatalog {
 public:
  /// Returns the TID for `g`, interning it if unseen. `num_classes` records
  /// how many path equivalence classes were unioned (kept from the first
  /// observation).
  Tid Intern(const graph::LabeledGraph& g, size_t num_classes);

  /// Interning by precomputed code; `g` must match the code. `class_keys`
  /// (optional) records the constituent path classes of the first
  /// observation; on re-observation, unseen keys are appended in order.
  Tid InternWithCode(const graph::LabeledGraph& g, std::string code,
                     size_t num_classes,
                     std::vector<std::string> class_keys = {});

  std::optional<Tid> FindByCode(const std::string& code) const;

  /// The reference stays valid for the catalog's lifetime; its immutable
  /// fields (tid, graph, code, num_classes, is_path) may be read without
  /// synchronization. For class_keys use ClassKeysOf.
  const TopologyInfo& Get(Tid tid) const;

  /// Snapshot copy of the (concurrently growing) class-key list of `tid`.
  std::vector<std::string> ClassKeysOf(Tid tid) const;

  size_t size() const;

  /// Offline-only iteration (see class comment).
  const std::deque<TopologyInfo>& infos() const { return infos_; }

  /// Human-readable structure, e.g. "[P]-(encodes)-[D], [P]-(uni_encodes)-[U]".
  std::string Describe(Tid tid, const graph::SchemaGraph& schema) const;

 private:
  const TopologyInfo& GetLocked(Tid tid) const;

  /// Guards by_code_, growth of infos_, and every class_keys vector.
  mutable std::shared_mutex mu_;
  /// Deque, not vector: published entries must not relocate while readers
  /// hold references across interning.
  std::deque<TopologyInfo> infos_;
  std::unordered_map<std::string, Tid> by_code_;
};

}  // namespace core
}  // namespace tsb

#endif  // TSB_CORE_TOPOLOGY_H_
