#ifndef TSB_CORE_PERSISTENCE_H_
#define TSB_CORE_PERSISTENCE_H_

#include <string>

#include "common/status.h"
#include "core/store.h"
#include "storage/catalog.h"

namespace tsb {
namespace core {

/// Persistence of the offline precomputation. The paper's workflow
/// (Section 3.2) computes AllTops in bulk "every few weeks"; persisting the
/// artifacts makes that offline/online split real across process runs: run
/// TopologyBuilder + PruneFrequentTopologies once, save, and serve queries
/// from a fresh process after LoadTopologyArtifacts.
///
/// Layout under `dir` (created if missing):
///   topologies.csv            one row per interned topology (graph
///                             serialized as labels + edge list; binary
///                             class keys hex-encoded)
///   pairs.csv                 one row per built entity-set pair
///   classes_<pair>.csv        the pair's path-class registry
///   freq_<pair>.csv           topology frequencies
///   table_<name>.csv          AllTops / PairClasses / LeftTops / ExcpTops
///
/// Base entity/relationship tables are NOT persisted (they are the input
/// database); loading requires a catalog already holding them, and the
/// loaded artifacts reference entities by the same global ids.
Status SaveTopologyArtifacts(const storage::Catalog& db,
                             const TopologyStore& store,
                             const std::string& dir);

/// Restores topologies, pair registries and precomputed tables into `db`
/// and `store`. `store` must be empty; table names must not collide.
Status LoadTopologyArtifacts(storage::Catalog* db, TopologyStore* store,
                             const std::string& dir);

}  // namespace core
}  // namespace tsb

#endif  // TSB_CORE_PERSISTENCE_H_
