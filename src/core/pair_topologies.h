#ifndef TSB_CORE_PAIR_TOPOLOGIES_H_
#define TSB_CORE_PAIR_TOPOLOGIES_H_

#include <map>
#include <string>
#include <vector>

#include "graph/data_graph.h"
#include "graph/path_enum.h"
#include "graph/schema_graph.h"

namespace tsb {
namespace core {

/// A topology computed for a concrete pair of entities, together with one
/// witness (the instance-level union subgraph that produced it).
struct ComputedTopology {
  std::string code;                  // Canonical code (schema level).
  graph::LabeledGraph graph;         // Canonical schema-level form.
  graph::LabeledGraph witness;       // Instance graph (node labels = types).
  std::vector<graph::EntityId> witness_ids;  // Node index -> entity id.
  size_t num_classes = 0;            // s = |l-PathEC(a, b)|.
  std::vector<std::string> class_keys;       // Constituent path classes.
};

/// Resource limits for the union-combination enumeration. Definition 2
/// unions one representative per path class over *all* choices of
/// representatives; weak relationships can have thousands of instances per
/// class (Section 6.2.3), so production builds cap both the representatives
/// retained per class and the total combinations explored.
struct UnionLimits {
  size_t max_class_representatives = 32;
  size_t max_union_combinations = 4096;
};

/// Computes the distinct topologies obtainable by unioning one
/// representative per class (classes given as representative lists, one
/// entry per equivalence class, with `class_keys` aligned). Deduplicates by
/// canonical code; sets `*truncated` if a cap fired.
std::vector<ComputedTopology> UnionTopologies(
    const graph::DataGraphView& view,
    const std::vector<std::vector<graph::PathInstance>>& class_reps,
    const std::vector<std::string>& class_keys, const UnionLimits& limits,
    bool* truncated);

/// Everything the library can say about one entity pair: its path classes
/// and its topology set. This is the pair-at-a-time (online) evaluation
/// path, used by the SQL baseline, topology verification, and instance
/// retrieval; the offline TopologyBuilder computes the same result in bulk.
struct PairComputation {
  /// Class key -> representatives (capped).
  std::map<std::string, std::vector<graph::PathInstance>> classes;
  std::vector<ComputedTopology> topologies;
  bool truncated = false;
};

struct PairComputeLimits {
  size_t max_path_length = 3;  // l
  size_t path_cap = SIZE_MAX;  // Cap on enumerated paths for the pair.
  UnionLimits union_limits;
};

/// Computes l-PathEC(a, b) and l-Top(a, b) from scratch (Definitions 1-3).
PairComputation ComputePairTopologies(const graph::DataGraphView& view,
                                      const graph::SchemaGraph& schema,
                                      graph::EntityId a, graph::EntityId b,
                                      const PairComputeLimits& limits);

/// All simple paths of length <= l from one source entity to entities of
/// `partner_type`, grouped by destination and path class. This is the unit
/// of work of the offline Topology Computation sweep (Section 4.1); the SQL
/// baseline reuses it verbatim so that online checks replay exactly the
/// offline semantics (including caps).
struct SourceSweep {
  /// destination -> class key -> representatives (capped).
  std::map<graph::EntityId,
           std::map<std::string, std::vector<graph::PathInstance>>>
      by_dest;
  bool source_truncated = false;  // max_paths_per_source fired.
  bool reps_truncated = false;    // max_class_representatives fired.
};

struct SweepLimits {
  size_t max_path_length = 3;
  size_t max_class_representatives = 32;
  size_t max_paths_per_source = SIZE_MAX;
};

/// When `self_pair` is true only destinations with id > a are recorded
/// (each unordered pair is swept exactly once, from its smaller endpoint).
SourceSweep SweepFromSource(const graph::DataGraphView& view,
                            const graph::SchemaGraph& schema,
                            graph::EntityId a,
                            storage::EntityTypeId partner_type,
                            bool self_pair, const SweepLimits& limits);

}  // namespace core
}  // namespace tsb

#endif  // TSB_CORE_PAIR_TOPOLOGIES_H_
