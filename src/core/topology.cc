#include "core/topology.h"

#include <algorithm>
#include <mutex>

#include "common/logging.h"
#include "common/str_util.h"
#include "graph/canonical.h"
#include "obs/cost.h"

namespace tsb {
namespace core {

bool IsPathShaped(const graph::LabeledGraph& g) {
  const size_t n = g.num_nodes();
  if (n < 2) return false;
  if (g.num_edges() != n - 1) return false;  // Tree edge count.
  if (!g.IsConnected()) return false;
  size_t degree_one = 0;
  for (size_t v = 0; v < n; ++v) {
    size_t d = g.Degree(static_cast<graph::LabeledGraph::NodeId>(v));
    if (d == 1) {
      ++degree_one;
    } else if (d != 2) {
      return false;
    }
  }
  return degree_one == 2;
}

std::optional<graph::SchemaPath> ExtractSchemaPath(
    const graph::LabeledGraph& g, const graph::SchemaGraph& schema) {
  if (!IsPathShaped(g)) return std::nullopt;
  using NodeId = graph::LabeledGraph::NodeId;
  const size_t n = g.num_nodes();
  // Find an endpoint to start the walk.
  NodeId start = 0;
  for (NodeId v = 0; v < n; ++v) {
    if (g.Degree(v) == 1) {
      start = v;
      break;
    }
  }
  graph::SchemaPath path;
  path.node_types.push_back(g.node_label(start));
  NodeId prev = start;
  NodeId at = start;
  for (size_t step = 0; step + 1 < n; ++step) {
    // Move to the neighbor that is not where we came from.
    NodeId next = at;
    uint32_t edge_label = 0;
    for (const auto& [nbr, el] : g.Neighbors(at)) {
      if (step == 0 || nbr != prev) {
        next = nbr;
        edge_label = el;
        break;
      }
    }
    TSB_CHECK_NE(next, at);
    storage::EntityTypeId from_type = g.node_label(at);
    storage::EntityTypeId to_type = g.node_label(next);
    storage::RelTypeId rel = edge_label;
    bool forward;
    if (schema.rel_from(rel) == from_type && schema.rel_to(rel) == to_type) {
      forward = true;
    } else if (schema.rel_from(rel) == to_type &&
               schema.rel_to(rel) == from_type) {
      forward = false;
    } else {
      return std::nullopt;  // Edge label inconsistent with the schema.
    }
    path.steps.push_back(graph::SchemaStep{rel, forward});
    path.node_types.push_back(to_type);
    prev = at;
    at = next;
  }
  // Normalize to the canonical class direction: the one with the smaller
  // label sequence (matching SchemaGraph::PathClassKey).
  graph::SchemaPath reversed = path.Reversed();
  auto seq = [](const graph::SchemaPath& p) {
    std::vector<uint32_t> s;
    for (size_t i = 0; i < p.steps.size(); ++i) {
      s.push_back(p.node_types[i]);
      s.push_back(p.steps[i].rel);
    }
    s.push_back(p.node_types.back());
    return s;
  };
  if (seq(reversed) < seq(path)) return reversed;
  return path;
}

Tid TopologyCatalog::Intern(const graph::LabeledGraph& g, size_t num_classes) {
  return InternWithCode(g, graph::CanonicalCode(g), num_classes);
}

Tid TopologyCatalog::InternWithCode(const graph::LabeledGraph& g,
                                    std::string code, size_t num_classes,
                                    std::vector<std::string> class_keys) {
  obs::CostTracker::ChargeCatalogInterns(1);
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = by_code_.find(code);
  if (it != by_code_.end()) {
    // The same topology can arise from different class sets (graph identity
    // carries no terminal marking); accumulate every observed constituent
    // class so structure-anchored checks stay complete.
    TopologyInfo& existing = infos_[static_cast<size_t>(it->second) - 1];
    for (std::string& key : class_keys) {
      if (std::find(existing.class_keys.begin(), existing.class_keys.end(),
                    key) == existing.class_keys.end()) {
        existing.class_keys.push_back(std::move(key));
      }
    }
    return it->second;
  }
  Tid tid = static_cast<Tid>(infos_.size()) + 1;
  TopologyInfo info;
  info.tid = tid;
  info.graph = graph::CanonicalForm(g);
  info.code = code;
  info.num_classes = num_classes;
  info.is_path = IsPathShaped(info.graph);
  info.class_keys = std::move(class_keys);
  by_code_.emplace(std::move(code), tid);
  infos_.push_back(std::move(info));
  return tid;
}

std::optional<Tid> TopologyCatalog::FindByCode(const std::string& code) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = by_code_.find(code);
  if (it == by_code_.end()) return std::nullopt;
  return it->second;
}

const TopologyInfo& TopologyCatalog::GetLocked(Tid tid) const {
  TSB_CHECK(tid >= 1 && static_cast<size_t>(tid) <= infos_.size())
      << "unknown TID " << tid;
  return infos_[static_cast<size_t>(tid) - 1];
}

const TopologyInfo& TopologyCatalog::Get(Tid tid) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return GetLocked(tid);
}

std::vector<std::string> TopologyCatalog::ClassKeysOf(Tid tid) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return GetLocked(tid).class_keys;
}

size_t TopologyCatalog::size() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return infos_.size();
}

std::string TopologyCatalog::Describe(Tid tid,
                                      const graph::SchemaGraph& schema) const {
  const TopologyInfo& info = Get(tid);
  const graph::LabeledGraph& g = info.graph;
  std::vector<std::string> parts;
  for (const graph::LabeledGraph::Edge& e : g.edges()) {
    parts.push_back(StrFormat(
        "%s%u-(%s)-%s%u", schema.entity_name(g.node_label(e.u)).c_str(), e.u,
        schema.rel_name(e.label).c_str(),
        schema.entity_name(g.node_label(e.v)).c_str(), e.v));
  }
  return StrJoin(parts, ", ");
}

}  // namespace core
}  // namespace tsb
