#ifndef TSB_CORE_SCORER_H_
#define TSB_CORE_SCORER_H_

#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/store.h"
#include "core/topology.h"
#include "graph/labeled_graph.h"

namespace tsb {
namespace core {

/// The three ranking schemes of Section 6.1.
enum class RankScheme {
  kFreq,    // Higher score for more frequent topologies.
  kRare,    // Higher score for rarer topologies.
  kDomain,  // Biological-significance heuristic (stand-in for the paper's
            // domain expert; see DomainKnowledge).
};

const char* RankSchemeToString(RankScheme scheme);

/// Declarative encoding of the expert heuristics the paper articulates:
/// interactions are interesting (Section 6.2.1, Figure 16), complexity from
/// multiple path classes is informative (Definition 2's motivation), and
/// weak-relationship motifs destroy significance (Section 6.2.3,
/// Appendix B). Populated by the biozon module; core supplies the scoring
/// mechanism only.
struct DomainKnowledge {
  /// Relationship types whose presence is rewarded per edge.
  std::vector<uint32_t> interesting_rel_types;
  double interesting_edge_bonus = 2.0;

  /// Bonus per path class beyond the first (union complexity).
  double class_bonus = 1.0;

  /// Motifs (small labeled graphs) whose containment is penalized, e.g.
  /// P-D-P, P-U-P, F-W-F chains (Table 4 of the paper).
  std::vector<graph::LabeledGraph> weak_motifs;
  double weak_motif_penalty = 3.0;
};

/// Computes topology scores per ranking scheme. Scores are deterministic;
/// ties are broken by ascending TID everywhere.
class ScoreModel {
 public:
  ScoreModel(const TopologyCatalog* catalog, DomainKnowledge knowledge);

  /// Copy/move transfer the memoized scores; hand-written because the
  /// cache's mutex is neither copyable nor movable.
  ScoreModel(const ScoreModel& other);
  ScoreModel(ScoreModel&& other) noexcept;
  ScoreModel& operator=(const ScoreModel&) = delete;
  ScoreModel& operator=(ScoreModel&&) = delete;

  /// Score of `tid` for a pair under `scheme`. Frequency-based schemes use
  /// the pair's freq map; Domain uses only the topology structure.
  double Score(RankScheme scheme, Tid tid,
               const PairTopologyData& pair) const;

  /// All observed TIDs of the pair ranked by (score desc, tid asc).
  std::vector<std::pair<Tid, double>> RankedTids(
      RankScheme scheme, const PairTopologyData& pair) const;

  const DomainKnowledge& knowledge() const { return knowledge_; }

 private:
  double DomainScore(Tid tid) const;

  const TopologyCatalog* catalog_;
  DomainKnowledge knowledge_;
  /// Memoized domain scores; reader-writer guarded so concurrent query
  /// threads share one model without serializing on cache hits (the hot
  /// path of Domain-scheme scoring).
  mutable std::shared_mutex domain_mu_;
  mutable std::unordered_map<Tid, double> domain_cache_;
};

}  // namespace core
}  // namespace tsb

#endif  // TSB_CORE_SCORER_H_
