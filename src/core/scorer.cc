#include "core/scorer.h"

#include <algorithm>

#include "common/logging.h"
#include "graph/isomorphism.h"

namespace tsb {
namespace core {

const char* RankSchemeToString(RankScheme scheme) {
  switch (scheme) {
    case RankScheme::kFreq:
      return "Freq";
    case RankScheme::kRare:
      return "Rare";
    case RankScheme::kDomain:
      return "Domain";
  }
  return "?";
}

ScoreModel::ScoreModel(const TopologyCatalog* catalog,
                       DomainKnowledge knowledge)
    : catalog_(catalog), knowledge_(std::move(knowledge)) {}

ScoreModel::ScoreModel(const ScoreModel& other)
    : catalog_(other.catalog_), knowledge_(other.knowledge_) {
  std::shared_lock<std::shared_mutex> lock(other.domain_mu_);
  domain_cache_ = other.domain_cache_;
}

ScoreModel::ScoreModel(ScoreModel&& other) noexcept
    : catalog_(other.catalog_), knowledge_(std::move(other.knowledge_)) {
  std::unique_lock<std::shared_mutex> lock(other.domain_mu_);
  domain_cache_ = std::move(other.domain_cache_);
}

double ScoreModel::Score(RankScheme scheme, Tid tid,
                         const PairTopologyData& pair) const {
  switch (scheme) {
    case RankScheme::kFreq: {
      auto it = pair.freq.find(tid);
      return it == pair.freq.end() ? 0.0 : static_cast<double>(it->second);
    }
    case RankScheme::kRare: {
      auto it = pair.freq.find(tid);
      if (it == pair.freq.end() || it->second == 0) return 0.0;
      return 1.0 / static_cast<double>(it->second);
    }
    case RankScheme::kDomain:
      return DomainScore(tid);
  }
  return 0.0;
}

double ScoreModel::DomainScore(Tid tid) const {
  {
    std::shared_lock<std::shared_mutex> lock(domain_mu_);
    auto cached = domain_cache_.find(tid);
    if (cached != domain_cache_.end()) return cached->second;
  }

  const TopologyInfo& info = catalog_->Get(tid);
  double score = 1.0;
  // Reward interesting relationship types per edge.
  for (const graph::LabeledGraph::Edge& e : info.graph.edges()) {
    for (uint32_t rel : knowledge_.interesting_rel_types) {
      if (e.label == rel) {
        score += knowledge_.interesting_edge_bonus;
        break;
      }
    }
  }
  // Reward union complexity.
  if (info.num_classes > 1) {
    score +=
        knowledge_.class_bonus * static_cast<double>(info.num_classes - 1);
  }
  // Penalize contained weak motifs.
  for (const graph::LabeledGraph& motif : knowledge_.weak_motifs) {
    if (graph::IsSubgraphIsomorphic(motif, info.graph)) {
      score -= knowledge_.weak_motif_penalty;
    }
  }
  std::unique_lock<std::shared_mutex> lock(domain_mu_);
  domain_cache_.emplace(tid, score);
  return score;
}

std::vector<std::pair<Tid, double>> ScoreModel::RankedTids(
    RankScheme scheme, const PairTopologyData& pair) const {
  std::vector<std::pair<Tid, double>> ranked;
  ranked.reserve(pair.freq.size());
  for (Tid tid : pair.ObservedTids()) {
    ranked.emplace_back(tid, Score(scheme, tid, pair));
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  return ranked;
}

}  // namespace core
}  // namespace tsb
