#ifndef TSB_CORE_BUILDER_H_
#define TSB_CORE_BUILDER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "core/pair_topologies.h"
#include "core/store.h"
#include "graph/data_graph.h"
#include "graph/schema_graph.h"
#include "service/thread_pool.h"
#include "storage/catalog.h"

namespace tsb {
namespace core {

/// Offline topology-computation configuration (Section 4.1).
struct BuildConfig {
  /// The l of l-topologies: instance paths of length <= l are considered.
  size_t max_path_length = 3;
  /// Representatives retained per (pair, class); further instances only
  /// bump counters. Definition 2 needs one per class, but all *choices* of
  /// representatives; the cap bounds that product (see UnionLimits).
  size_t max_class_representatives = 32;
  /// Union combinations explored per pair.
  size_t max_union_combinations = 4096;
  /// Cap on simple paths enumerated per source entity (weak-relationship
  /// hubs; Section 6.2.3).
  size_t max_paths_per_source = SIZE_MAX;
  /// Prefix for every precompute table name this build creates (AllTops_*,
  /// PairClasses_*, and the pruner's LeftTops_*/ExcpTops_*). Live rebuilds
  /// stage each epoch under a distinct namespace (e.g. "e1.") so old and
  /// new tables coexist until the old epoch drains.
  std::string table_namespace;
};

/// InvalidArgument for configurations that would silently produce empty
/// pairs (zero path length or zero representative/union caps).
Status ValidateBuildConfig(const BuildConfig& config);

/// The privately staged result of one pair's sweep — everything BuildPair
/// used to write into shared state, buffered instead. Topologies are kept
/// in first-encounter order and addressed by a pair-local TID (the vector
/// index); the commit step interns them into the shared catalog and remaps
/// local to global ids. Staging touches no shared mutable state, so many
/// pairs stage concurrently.
struct PairBuildStaging {
  /// Pair metadata, class registry, and truncation counters; freq and
  /// ClassInfo::path_tid stay in local TID space until commit.
  PairTopologyData data;

  struct StagedTopology {
    graph::LabeledGraph graph;
    std::string code;
    size_t num_classes = 0;
    /// Constituent class keys, merged across local re-observations exactly
    /// like TopologyCatalog::InternWithCode merges them (unseen keys
    /// appended in order), so staged+committed equals direct interning.
    std::vector<std::string> class_keys;
    size_t frequency = 0;  // Staged AllTops rows carrying this topology.
  };
  std::vector<StagedTopology> topologies;  // Index == local TID.
  std::unordered_map<std::string, size_t> local_by_code;

  struct Row {
    int64_t e1 = 0;
    int64_t e2 = 0;
    int64_t v = 0;  // Local TID (AllTops) or class id (PairClasses).
  };
  std::vector<Row> alltops_rows;
  std::vector<Row> pairclasses_rows;

  /// Per class id: local TID of its single-class path topology (kNoTid
  /// when unobserved); remapped into ClassInfo::path_tid at commit.
  std::vector<Tid> class_path_local_tid;
};

/// Computes the AllTops and PairClasses tables for entity-set pairs: the
/// Topology Computation module of Figure 10. For each source entity it
/// enumerates all simple paths of length <= l to entities of the partner
/// type, groups them into path equivalence classes per destination
/// (Definition 1), unions one representative per class over all choices
/// (Definition 2), interns the resulting canonical graphs, and appends
/// (E1, E2, TID) rows.
///
/// The build is a staged pipeline: StagePair is a pure function of the
/// data graph (no shared-state writes, safe to fan out over a thread
/// pool), and CommitStaged interns staged topologies in deterministic
/// order, remaps local to global TIDs, and registers the tables. Because
/// commits always happen in canonical pair order, a parallel BuildAllPairs
/// produces a store byte-identical (TIDs, class ids, table contents,
/// frequency maps) to the sequential build.
class TopologyBuilder {
 public:
  TopologyBuilder(storage::Catalog* db, const graph::SchemaGraph* schema,
                  const graph::DataGraphView* view)
      : db_(db), schema_(schema), view_(view) {}

  /// Stage step: sweeps one entity-set pair (order-insensitive) into a
  /// private staging buffer. Reads only the immutable data-graph and
  /// schema views — safe to run concurrently for different pairs.
  Result<PairBuildStaging> StagePair(storage::EntityTypeId ta,
                                     storage::EntityTypeId tb,
                                     const BuildConfig& config) const;

  /// Commit step: interns staged topologies (first-encounter order),
  /// remaps local TIDs, creates and fills the pair's tables in the storage
  /// catalog, and registers the pair in `store`. Single-threaded by
  /// contract; callers serialize commits (canonical pair order for
  /// determinism). Fails without side effects if the pair already exists;
  /// created tables are dropped again on downstream failure.
  Status CommitStaged(PairBuildStaging staging, TopologyStore* store);

  /// Stage + commit of one pair. Fails if the pair was already built.
  Status BuildPair(storage::EntityTypeId ta, storage::EntityTypeId tb,
                   const BuildConfig& config, TopologyStore* store);

  /// Sharded stage + commit of one pair: one staged sweep, split with
  /// SplitStagingForShards, one commit per shard (see the sharded
  /// BuildAllPairs for the replication contract).
  Status BuildPair(storage::EntityTypeId ta, storage::EntityTypeId tb,
                   const BuildConfig& config,
                   const std::vector<TopologyStore*>& shards);

  /// Builds every unordered pair of entity types that the schema connects
  /// with at least one path of length <= l. With a pool, stage steps fan
  /// out over its workers while this thread commits results in canonical
  /// pair order; without one (or with a single-threaded pool) the build
  /// runs sequentially. Both paths produce byte-identical stores.
  Status BuildAllPairs(const BuildConfig& config, TopologyStore* store,
                       service::ThreadPool* pool = nullptr);

  /// Shard-aware overload: stages each pair exactly once, splits the staged
  /// result with SplitStagingForShards, and routes each slice's
  /// CommitStaged to its owning shard store (slice i's AllTops rows are the
  /// rows ShardOfEntityPair assigns to shard i). Every shard interns every
  /// topology in the same first-encounter order, so the N shard catalogs
  /// are identical to each other and to an unsharded build's catalog —
  /// TIDs are globally consistent, and per-shard freq maps stay *global*
  /// (scores must not depend on which shard scores them). Tables land
  /// under storage::ShardNamespace(config.table_namespace, i).
  Status BuildAllPairs(const BuildConfig& config,
                       const std::vector<TopologyStore*>& shards,
                       service::ThreadPool* pool = nullptr);

 private:
  /// Splits `staging` with SplitStagingForShards and commits slice i to
  /// shards[i]; the shared commit step of the sharded build flavors.
  Status CommitStagingToShards(PairBuildStaging staging,
                               const std::vector<TopologyStore*>& shards);

  /// Shared staged pipeline of the two BuildAllPairs flavors: enumerates
  /// buildable pairs (skipping ones `built` says exist), stages over the
  /// pool (windowed), and hands each staging to `commit` in canonical pair
  /// order on this thread.
  Status StageAndCommitAll(
      const BuildConfig& config, service::ThreadPool* pool,
      const std::function<bool(storage::EntityTypeId, storage::EntityTypeId)>&
          built,
      const std::function<Status(PairBuildStaging)>& commit);

  storage::Catalog* db_;
  const graph::SchemaGraph* schema_;
  const graph::DataGraphView* view_;
};

/// Splits one pair's staging into `num_shards` per-shard slices. AllTops
/// rows are partitioned by ShardOfEntityPair; everything rankings and
/// online checks depend on is *replicated* so every shard answers exactly
/// like the whole store would:
///   - the staged topology list (slice catalogs intern all of it, keeping
///     TID assignment identical across shards),
///   - per-topology frequencies (committed freq maps stay global),
///   - the class registry with global instance_pairs / num_related_pairs,
///   - PairClasses rows (so per-shard pruning derives the *complete*
///     exception table — the online pruned check consults it against the
///     shared data graph, which is not sharded).
/// Slice i's tables are renamed under ShardNamespace(base namespace, i).
std::vector<PairBuildStaging> SplitStagingForShards(
    const PairBuildStaging& staging, size_t num_shards);

}  // namespace core
}  // namespace tsb

#endif  // TSB_CORE_BUILDER_H_
