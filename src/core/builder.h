#ifndef TSB_CORE_BUILDER_H_
#define TSB_CORE_BUILDER_H_

#include <string>

#include "common/status.h"
#include "core/pair_topologies.h"
#include "core/store.h"
#include "graph/data_graph.h"
#include "graph/schema_graph.h"
#include "storage/catalog.h"

namespace tsb {
namespace core {

/// Offline topology-computation configuration (Section 4.1).
struct BuildConfig {
  /// The l of l-topologies: instance paths of length <= l are considered.
  size_t max_path_length = 3;
  /// Representatives retained per (pair, class); further instances only
  /// bump counters. Definition 2 needs one per class, but all *choices* of
  /// representatives; the cap bounds that product (see UnionLimits).
  size_t max_class_representatives = 32;
  /// Union combinations explored per pair.
  size_t max_union_combinations = 4096;
  /// Cap on simple paths enumerated per source entity (weak-relationship
  /// hubs; Section 6.2.3).
  size_t max_paths_per_source = SIZE_MAX;
};

/// Computes the AllTops and PairClasses tables for entity-set pairs: the
/// Topology Computation module of Figure 10. For each source entity it
/// enumerates all simple paths of length <= l to entities of the partner
/// type, groups them into path equivalence classes per destination
/// (Definition 1), unions one representative per class over all choices
/// (Definition 2), interns the resulting canonical graphs, and appends
/// (E1, E2, TID) rows.
class TopologyBuilder {
 public:
  TopologyBuilder(storage::Catalog* db, const graph::SchemaGraph* schema,
                  const graph::DataGraphView* view)
      : db_(db), schema_(schema), view_(view) {}

  /// Builds one entity-set pair (order-insensitive); registers the result
  /// in `store`. Fails if the pair was already built.
  Status BuildPair(storage::EntityTypeId ta, storage::EntityTypeId tb,
                   const BuildConfig& config, TopologyStore* store);

  /// Convenience: builds every unordered pair of entity types that the
  /// schema connects with at least one path of length <= l.
  Status BuildAllPairs(const BuildConfig& config, TopologyStore* store);

 private:
  storage::Catalog* db_;
  const graph::SchemaGraph* schema_;
  const graph::DataGraphView* view_;
};

}  // namespace core
}  // namespace tsb

#endif  // TSB_CORE_BUILDER_H_
