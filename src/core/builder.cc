#include "core/builder.h"

#include <algorithm>
#include <deque>
#include <future>
#include <map>
#include <utility>

#include "columnar/blocks.h"
#include "common/logging.h"
#include "common/str_util.h"
#include "graph/canonical.h"
#include "graph/path_enum.h"

namespace tsb {
namespace core {
namespace {

using graph::EntityId;
using graph::PathInstance;

}  // namespace

Status ValidateBuildConfig(const BuildConfig& config) {
  if (config.max_path_length == 0) {
    return Status::InvalidArgument(
        "BuildConfig.max_path_length must be >= 1 (no path fits length 0)");
  }
  if (config.max_class_representatives == 0) {
    return Status::InvalidArgument(
        "BuildConfig.max_class_representatives must be >= 1 (Definition 2 "
        "needs one representative per class)");
  }
  if (config.max_union_combinations == 0) {
    return Status::InvalidArgument(
        "BuildConfig.max_union_combinations must be >= 1 (no union would "
        "ever be explored)");
  }
  if (config.max_paths_per_source == 0) {
    return Status::InvalidArgument(
        "BuildConfig.max_paths_per_source must be >= 1 (every sweep would "
        "be empty)");
  }
  return Status::OK();
}

Result<PairBuildStaging> TopologyBuilder::StagePair(
    storage::EntityTypeId ta, storage::EntityTypeId tb,
    const BuildConfig& config) const {
  TSB_RETURN_IF_ERROR(ValidateBuildConfig(config));
  auto [t1, t2] = TopologyStore::NormalizePair(ta, tb);

  PairBuildStaging staging;
  PairTopologyData& data = staging.data;
  data.t1 = t1;
  data.t2 = t2;
  data.pair_name =
      schema_->entity_name(t1) + "_" + schema_->entity_name(t2);
  data.max_path_length = config.max_path_length;
  data.build_max_class_representatives = config.max_class_representatives;
  data.build_max_union_combinations = config.max_union_combinations;
  data.table_namespace = config.table_namespace;
  data.alltops_table = config.table_namespace + "AllTops_" + data.pair_name;
  data.pairclasses_table =
      config.table_namespace + "PairClasses_" + data.pair_name;

  // Registers (or fetches) a class id from an instance's schema path.
  auto class_id_for = [&](const PathInstance& p) -> uint32_t {
    graph::SchemaPath sp = p.ToSchemaPath(*view_);
    std::string key = schema_->PathClassKey(sp);
    auto it = data.class_by_key.find(key);
    if (it != data.class_by_key.end()) return it->second;
    uint32_t id = static_cast<uint32_t>(data.classes.size());
    ClassInfo info;
    info.id = id;
    info.key = key;
    // Store the canonical-direction representative (the smaller label
    // sequence, matching ExtractSchemaPath and PathClassKey).
    graph::SchemaPath rev = sp.Reversed();
    auto seq = [](const graph::SchemaPath& q) {
      std::vector<uint32_t> s;
      for (size_t i = 0; i < q.steps.size(); ++i) {
        s.push_back(q.node_types[i]);
        s.push_back(q.steps[i].rel);
      }
      s.push_back(q.node_types.back());
      return s;
    };
    info.path = seq(rev) < seq(sp) ? rev : sp;
    data.classes.push_back(std::move(info));
    data.class_by_key.emplace(std::move(key), id);
    staging.class_path_local_tid.push_back(kNoTid);
    return id;
  };

  // Stages one observation of a topology, merging class keys on local
  // re-observation exactly like the catalog's intern merge path.
  auto stage_topology = [&](ComputedTopology& topo, size_t s) -> size_t {
    auto it = staging.local_by_code.find(topo.code);
    if (it != staging.local_by_code.end()) {
      PairBuildStaging::StagedTopology& existing =
          staging.topologies[it->second];
      for (std::string& key : topo.class_keys) {
        if (std::find(existing.class_keys.begin(), existing.class_keys.end(),
                      key) == existing.class_keys.end()) {
          existing.class_keys.push_back(std::move(key));
        }
      }
      return it->second;
    }
    size_t local = staging.topologies.size();
    PairBuildStaging::StagedTopology staged;
    staged.graph = std::move(topo.graph);
    staged.code = topo.code;
    staged.num_classes = s;
    staged.class_keys = std::move(topo.class_keys);
    staging.topologies.push_back(std::move(staged));
    staging.local_by_code.emplace(std::move(topo.code), local);
    return local;
  };

  const bool self_pair = (t1 == t2);

  SweepLimits sweep_limits;
  sweep_limits.max_path_length = config.max_path_length;
  sweep_limits.max_class_representatives = config.max_class_representatives;
  sweep_limits.max_paths_per_source = config.max_paths_per_source;

  for (EntityId a : view_->EntitiesOfType(t1)) {
    // Enumerate all simple paths from `a` of length <= l ending at type t2,
    // grouped by destination and path class. Paths may pass through
    // t2-typed nodes and keep extending; every prefix landing on a t2 node
    // is recorded.
    SourceSweep sweep =
        SweepFromSource(*view_, *schema_, a, t2, self_pair, sweep_limits);
    if (sweep.source_truncated) ++data.truncated_pairs;
    if (sweep.reps_truncated) ++data.truncated_representatives;

    // Fold each destination into topologies and AllTops rows.
    for (auto& [b, reps_by_key] : sweep.by_dest) {
      std::vector<std::vector<PathInstance>> class_reps;
      std::vector<std::string> class_keys;
      std::vector<uint32_t> class_ids;
      class_reps.reserve(reps_by_key.size());
      for (auto& [key, reps] : reps_by_key) {
        class_ids.push_back(class_id_for(reps.front()));
        class_keys.push_back(key);
        class_reps.push_back(std::move(reps));
      }
      const size_t s = class_reps.size();

      UnionLimits limits;
      limits.max_class_representatives = config.max_class_representatives;
      limits.max_union_combinations = config.max_union_combinations;
      bool union_truncated = false;
      std::vector<ComputedTopology> topologies = UnionTopologies(
          *view_, class_reps, class_keys, limits, &union_truncated);
      if (union_truncated) ++data.truncated_pairs;

      for (ComputedTopology& topo : topologies) {
        size_t local = stage_topology(topo, s);
        staging.alltops_rows.push_back(
            {a, b, static_cast<int64_t>(local)});
        ++staging.topologies[local].frequency;
        // Single-class pairs define the path topology of their class.
        if (s == 1 &&
            staging.class_path_local_tid[class_ids[0]] == kNoTid) {
          staging.class_path_local_tid[class_ids[0]] =
              static_cast<Tid>(local);
        }
      }
      // Exception bookkeeping: remember the class memberships of pairs
      // related by more than one class (Section 4.2.2).
      if (s > 1) {
        for (uint32_t cid : class_ids) {
          staging.pairclasses_rows.push_back(
              {a, b, static_cast<int64_t>(cid)});
          ++data.classes[cid].instance_pairs;
        }
      } else {
        ++data.classes[class_ids[0]].instance_pairs;
      }
      ++data.num_related_pairs;
    }
  }

  // Classes observed only inside multi-class pairs keep path_tid == kNoTid:
  // their path topology is never an observed topology (no pair is related
  // by it alone), so it must not appear in TopInfo — and it can never be
  // pruned, so no lookup needs the TID.

  return staging;
}

Status TopologyBuilder::CommitStaged(PairBuildStaging staging,
                                     TopologyStore* store) {
  PairTopologyData& data = staging.data;
  if (store->FindPair(data.t1, data.t2) != nullptr) {
    return Status::AlreadyExists("pair already built");
  }

  storage::TableSchema alltops_schema({{"E1", storage::ColumnType::kInt64},
                                       {"E2", storage::ColumnType::kInt64},
                                       {"TID", storage::ColumnType::kInt64}});
  storage::TableSchema classes_schema({{"E1", storage::ColumnType::kInt64},
                                       {"E2", storage::ColumnType::kInt64},
                                       {"CID", storage::ColumnType::kInt64}});
  storage::Table* alltops;
  storage::Table* pairclasses;
  {
    auto t = db_->CreateTable(data.alltops_table, std::move(alltops_schema));
    TSB_RETURN_IF_ERROR(t.status());
    alltops = t.value();
  }
  {
    auto t =
        db_->CreateTable(data.pairclasses_table, std::move(classes_schema));
    if (!t.ok()) {
      (void)db_->DropTable(data.alltops_table);
      return t.status();
    }
    pairclasses = t.value();
  }

  // Intern staged topologies in first-encounter order — the exact order a
  // sequential build would have hit the catalog — and remap local TIDs.
  TopologyCatalog* catalog = store->mutable_catalog();
  std::vector<Tid> global_tid(staging.topologies.size(), kNoTid);
  for (size_t local = 0; local < staging.topologies.size(); ++local) {
    PairBuildStaging::StagedTopology& staged = staging.topologies[local];
    global_tid[local] =
        catalog->InternWithCode(staged.graph, std::move(staged.code),
                                staged.num_classes,
                                std::move(staged.class_keys));
    data.freq.emplace(global_tid[local], staged.frequency);
  }
  for (size_t c = 0; c < staging.class_path_local_tid.size(); ++c) {
    Tid local = staging.class_path_local_tid[c];
    if (local != kNoTid) {
      data.classes[c].path_tid = global_tid[static_cast<size_t>(local)];
    }
  }

  for (const PairBuildStaging::Row& row : staging.alltops_rows) {
    alltops->AppendRowOrDie(
        {storage::Value(row.e1), storage::Value(row.e2),
         storage::Value(global_tid[static_cast<size_t>(row.v)])});
  }
  for (const PairBuildStaging::Row& row : staging.pairclasses_rows) {
    pairclasses->AppendRowOrDie({storage::Value(row.e1),
                                 storage::Value(row.e2),
                                 storage::Value(row.v)});
  }

  Result<PairTopologyData*> added = store->AddPair(std::move(data));
  if (!added.ok()) {
    (void)db_->DropTable(alltops->name());
    (void)db_->DropTable(pairclasses->name());
    return added.status();
  }
  PairTopologyData* pair = added.value();
  columnar::AttachSlices(
      *db_, store->catalog(), pair,
      store->ResolveDataTable(db_->entity_set(pair->t1).table_name),
      store->ResolveDataTable(db_->entity_set(pair->t2).table_name));
  return Status::OK();
}

Status TopologyBuilder::BuildPair(storage::EntityTypeId ta,
                                  storage::EntityTypeId tb,
                                  const BuildConfig& config,
                                  TopologyStore* store) {
  TSB_RETURN_IF_ERROR(ValidateBuildConfig(config));
  auto [t1, t2] = TopologyStore::NormalizePair(ta, tb);
  if (store->FindPair(t1, t2) != nullptr) {
    return Status::AlreadyExists("pair already built");
  }
  TSB_ASSIGN_OR_RETURN(PairBuildStaging staging, StagePair(ta, tb, config));
  return CommitStaged(std::move(staging), store);
}

namespace {

Status ValidateShards(const std::vector<TopologyStore*>& shards) {
  if (shards.empty()) {
    return Status::InvalidArgument("sharded build needs at least one shard");
  }
  for (TopologyStore* shard : shards) {
    if (shard == nullptr) {
      return Status::InvalidArgument("sharded build got a null shard store");
    }
  }
  return Status::OK();
}

}  // namespace

Status TopologyBuilder::CommitStagingToShards(
    PairBuildStaging staging, const std::vector<TopologyStore*>& shards) {
  std::vector<PairBuildStaging> slices =
      SplitStagingForShards(staging, shards.size());
  for (size_t i = 0; i < shards.size(); ++i) {
    TSB_RETURN_IF_ERROR(CommitStaged(std::move(slices[i]), shards[i]));
  }
  return Status::OK();
}

Status TopologyBuilder::BuildPair(storage::EntityTypeId ta,
                                  storage::EntityTypeId tb,
                                  const BuildConfig& config,
                                  const std::vector<TopologyStore*>& shards) {
  TSB_RETURN_IF_ERROR(ValidateBuildConfig(config));
  TSB_RETURN_IF_ERROR(ValidateShards(shards));
  auto [t1, t2] = TopologyStore::NormalizePair(ta, tb);
  if (shards[0]->FindPair(t1, t2) != nullptr) {
    return Status::AlreadyExists("pair already built");
  }
  TSB_ASSIGN_OR_RETURN(PairBuildStaging staging, StagePair(ta, tb, config));
  return CommitStagingToShards(std::move(staging), shards);
}

Status TopologyBuilder::StageAndCommitAll(
    const BuildConfig& config, service::ThreadPool* pool,
    const std::function<bool(storage::EntityTypeId, storage::EntityTypeId)>&
        built,
    const std::function<Status(PairBuildStaging)>& commit) {
  TSB_RETURN_IF_ERROR(ValidateBuildConfig(config));

  // Canonical pair order: commits (and hence TID assignment) follow it in
  // both the sequential and the parallel path.
  std::vector<std::pair<storage::EntityTypeId, storage::EntityTypeId>> todo;
  const size_t n = schema_->num_entity_types();
  for (storage::EntityTypeId t1 = 0; t1 < n; ++t1) {
    for (storage::EntityTypeId t2 = t1; t2 < n; ++t2) {
      if (schema_->EnumeratePaths(t1, t2, config.max_path_length).empty()) {
        continue;
      }
      if (built(t1, t2)) continue;
      todo.emplace_back(t1, t2);
    }
  }

  if (pool == nullptr || pool->num_threads() <= 1 || todo.size() <= 1) {
    for (const auto& [t1, t2] : todo) {
      TSB_ASSIGN_OR_RETURN(PairBuildStaging staging,
                           StagePair(t1, t2, config));
      TSB_RETURN_IF_ERROR(commit(std::move(staging)));
    }
    return Status::OK();
  }

  // Fan the pure stage steps out over the pool; commit in canonical order
  // on this thread as each stage completes. Submission is windowed (a
  // couple of pairs per worker ahead of the commit cursor) so completed
  // out-of-order stagings never pile up: peak staging memory is O(window),
  // not O(all pairs).
  const size_t window = std::max<size_t>(2 * pool->num_threads(), 2);
  auto submit_stage = [&](size_t index) {
    auto [t1, t2] = todo[index];
    std::future<Result<PairBuildStaging>> future = pool->Submit(
        [this, t1, t2, config]() { return StagePair(t1, t2, config); });
    if (!future.valid()) {
      // Pool shut down under us: stage inline so the build still finishes.
      std::promise<Result<PairBuildStaging>> ready;
      ready.set_value(StagePair(t1, t2, config));
      future = ready.get_future();
    }
    return future;
  };

  std::deque<std::future<Result<PairBuildStaging>>> in_flight;
  size_t next = 0;
  Status status = Status::OK();
  while (next < todo.size() || !in_flight.empty()) {
    while (next < todo.size() && in_flight.size() < window) {
      in_flight.push_back(submit_stage(next++));
    }
    Result<PairBuildStaging> staged =
        in_flight.front().get();  // Drain even on error.
    in_flight.pop_front();
    if (!status.ok()) continue;
    if (!staged.ok()) {
      status = staged.status();
      continue;
    }
    status = commit(std::move(staged).value());
  }
  return status;
}

Status TopologyBuilder::BuildAllPairs(const BuildConfig& config,
                                      TopologyStore* store,
                                      service::ThreadPool* pool) {
  return StageAndCommitAll(
      config, pool,
      [store](storage::EntityTypeId t1, storage::EntityTypeId t2) {
        return store->FindPair(t1, t2) != nullptr;
      },
      [this, store](PairBuildStaging staging) {
        return CommitStaged(std::move(staging), store);
      });
}

Status TopologyBuilder::BuildAllPairs(const BuildConfig& config,
                                      const std::vector<TopologyStore*>& shards,
                                      service::ThreadPool* pool) {
  TSB_RETURN_IF_ERROR(ValidateShards(shards));
  return StageAndCommitAll(
      config, pool,
      // Shards are always built in lockstep; shard 0 is the bellwether.
      [&shards](storage::EntityTypeId t1, storage::EntityTypeId t2) {
        return shards[0]->FindPair(t1, t2) != nullptr;
      },
      [this, &shards](PairBuildStaging staging) {
        return CommitStagingToShards(std::move(staging), shards);
      });
}

std::vector<PairBuildStaging> SplitStagingForShards(
    const PairBuildStaging& staging, size_t num_shards) {
  TSB_CHECK_GE(num_shards, 1u);
  // One row-less template per shard: replicate the pair metadata, global
  // freq counters, the full topology list, class registry, and PairClasses
  // rows, and re-namespace the tables. The AllTops rows — the dominant
  // structure — are partitioned below in a single pass, never copied
  // wholesale.
  PairBuildStaging replicated = staging;
  replicated.alltops_rows.clear();

  std::vector<PairBuildStaging> slices;
  slices.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    PairBuildStaging slice = replicated;
    PairTopologyData& data = slice.data;
    data.table_namespace =
        storage::ShardNamespace(staging.data.table_namespace, i);
    data.alltops_table = data.table_namespace + "AllTops_" + data.pair_name;
    data.pairclasses_table =
        data.table_namespace + "PairClasses_" + data.pair_name;
    slices.push_back(std::move(slice));
  }
  for (const PairBuildStaging::Row& row : staging.alltops_rows) {
    slices[ShardOfEntityPair(row.e1, row.e2, num_shards)]
        .alltops_rows.push_back(row);
  }
  return slices;
}

}  // namespace core
}  // namespace tsb
