#include "core/builder.h"

#include <algorithm>
#include <map>

#include "common/logging.h"
#include "common/str_util.h"
#include "graph/canonical.h"
#include "graph/path_enum.h"

namespace tsb {
namespace core {
namespace {

using graph::EntityId;
using graph::PathInstance;

}  // namespace

Status TopologyBuilder::BuildPair(storage::EntityTypeId ta,
                                  storage::EntityTypeId tb,
                                  const BuildConfig& config,
                                  TopologyStore* store) {
  auto [t1, t2] = TopologyStore::NormalizePair(ta, tb);
  if (store->FindPair(t1, t2) != nullptr) {
    return Status::AlreadyExists("pair already built");
  }

  PairTopologyData data;
  data.t1 = t1;
  data.t2 = t2;
  data.pair_name =
      schema_->entity_name(t1) + "_" + schema_->entity_name(t2);
  data.max_path_length = config.max_path_length;
  data.build_max_class_representatives = config.max_class_representatives;
  data.build_max_union_combinations = config.max_union_combinations;
  data.alltops_table = "AllTops_" + data.pair_name;
  data.pairclasses_table = "PairClasses_" + data.pair_name;

  storage::TableSchema alltops_schema({{"E1", storage::ColumnType::kInt64},
                                       {"E2", storage::ColumnType::kInt64},
                                       {"TID", storage::ColumnType::kInt64}});
  storage::TableSchema classes_schema({{"E1", storage::ColumnType::kInt64},
                                       {"E2", storage::ColumnType::kInt64},
                                       {"CID", storage::ColumnType::kInt64}});
  storage::Table* alltops;
  storage::Table* pairclasses;
  {
    auto t = db_->CreateTable(data.alltops_table, std::move(alltops_schema));
    TSB_RETURN_IF_ERROR(t.status());
    alltops = t.value();
  }
  {
    auto t =
        db_->CreateTable(data.pairclasses_table, std::move(classes_schema));
    TSB_RETURN_IF_ERROR(t.status());
    pairclasses = t.value();
  }

  TopologyCatalog* catalog = store->mutable_catalog();

  // Registers (or fetches) a class id from an instance's schema path.
  auto class_id_for = [&](const PathInstance& p) -> uint32_t {
    graph::SchemaPath sp = p.ToSchemaPath(*view_);
    std::string key = schema_->PathClassKey(sp);
    auto it = data.class_by_key.find(key);
    if (it != data.class_by_key.end()) return it->second;
    uint32_t id = static_cast<uint32_t>(data.classes.size());
    ClassInfo info;
    info.id = id;
    info.key = key;
    // Store the canonical-direction representative (the smaller label
    // sequence, matching ExtractSchemaPath and PathClassKey).
    graph::SchemaPath rev = sp.Reversed();
    auto seq = [](const graph::SchemaPath& q) {
      std::vector<uint32_t> s;
      for (size_t i = 0; i < q.steps.size(); ++i) {
        s.push_back(q.node_types[i]);
        s.push_back(q.steps[i].rel);
      }
      s.push_back(q.node_types.back());
      return s;
    };
    info.path = seq(rev) < seq(sp) ? rev : sp;
    data.classes.push_back(std::move(info));
    data.class_by_key.emplace(std::move(key), id);
    return id;
  };

  const bool self_pair = (t1 == t2);

  SweepLimits sweep_limits;
  sweep_limits.max_path_length = config.max_path_length;
  sweep_limits.max_class_representatives = config.max_class_representatives;
  sweep_limits.max_paths_per_source = config.max_paths_per_source;

  for (EntityId a : view_->EntitiesOfType(t1)) {
    // Enumerate all simple paths from `a` of length <= l ending at type t2,
    // grouped by destination and path class. Paths may pass through
    // t2-typed nodes and keep extending; every prefix landing on a t2 node
    // is recorded.
    SourceSweep sweep =
        SweepFromSource(*view_, *schema_, a, t2, self_pair, sweep_limits);
    if (sweep.source_truncated) ++data.truncated_pairs;
    if (sweep.reps_truncated) ++data.truncated_representatives;

    // Fold each destination into topologies and AllTops rows.
    for (auto& [b, reps_by_key] : sweep.by_dest) {
      std::vector<std::vector<PathInstance>> class_reps;
      std::vector<std::string> class_keys;
      std::vector<uint32_t> class_ids;
      class_reps.reserve(reps_by_key.size());
      for (auto& [key, reps] : reps_by_key) {
        class_ids.push_back(class_id_for(reps.front()));
        class_keys.push_back(key);
        class_reps.push_back(std::move(reps));
      }
      const size_t s = class_reps.size();

      UnionLimits limits;
      limits.max_class_representatives = config.max_class_representatives;
      limits.max_union_combinations = config.max_union_combinations;
      bool union_truncated = false;
      std::vector<ComputedTopology> topologies = UnionTopologies(
          *view_, class_reps, class_keys, limits, &union_truncated);
      if (union_truncated) ++data.truncated_pairs;

      for (const ComputedTopology& topo : topologies) {
        Tid tid = catalog->InternWithCode(topo.graph, topo.code, s,
                                          topo.class_keys);
        alltops->AppendRowOrDie({storage::Value(a), storage::Value(b),
                                 storage::Value(tid)});
        auto [it, inserted] = data.freq.emplace(tid, 1);
        if (!inserted) ++it->second;
        // Single-class pairs define the path topology of their class.
        if (s == 1) {
          ClassInfo& cls = data.classes[class_ids[0]];
          if (cls.path_tid == kNoTid) cls.path_tid = tid;
        }
      }
      // Exception bookkeeping: remember the class memberships of pairs
      // related by more than one class (Section 4.2.2).
      if (s > 1) {
        for (uint32_t cid : class_ids) {
          pairclasses->AppendRowOrDie(
              {storage::Value(a), storage::Value(b),
               storage::Value(static_cast<int64_t>(cid))});
          ++data.classes[cid].instance_pairs;
        }
      } else {
        ++data.classes[class_ids[0]].instance_pairs;
      }
      ++data.num_related_pairs;
    }
  }

  // Classes observed only inside multi-class pairs keep path_tid == kNoTid:
  // their path topology is never an observed topology (no pair is related
  // by it alone), so it must not appear in TopInfo — and it can never be
  // pruned, so no lookup needs the TID.

  store->AddPair(std::move(data));
  return Status::OK();
}

Status TopologyBuilder::BuildAllPairs(const BuildConfig& config,
                                      TopologyStore* store) {
  const size_t n = schema_->num_entity_types();
  for (storage::EntityTypeId t1 = 0; t1 < n; ++t1) {
    for (storage::EntityTypeId t2 = t1; t2 < n; ++t2) {
      if (schema_->EnumeratePaths(t1, t2, config.max_path_length).empty()) {
        continue;
      }
      if (store->FindPair(t1, t2) != nullptr) continue;
      TSB_RETURN_IF_ERROR(BuildPair(t1, t2, config, store));
    }
  }
  return Status::OK();
}

}  // namespace core
}  // namespace tsb
