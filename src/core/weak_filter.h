#ifndef TSB_CORE_WEAK_FILTER_H_
#define TSB_CORE_WEAK_FILTER_H_

#include <unordered_set>

#include "core/scorer.h"
#include "core/store.h"
#include "core/topology.h"

namespace tsb {
namespace core {

/// Section 6.2.3's proposed solution to weak-relationship dilution: "use
/// domain knowledge to prune such weak topologies". A topology is *weak*
/// if it contains any of the domain knowledge's weak motifs (the repeated
/// indirect relationships of Appendix B / Table 4: P-D-P, P-U-P, D-U-D,
/// F-W-F, ...) as a subgraph.

/// TIDs observed for `pair` whose topology contains a weak motif.
std::unordered_set<Tid> FindWeakTopologies(const TopologyCatalog& catalog,
                                           const PairTopologyData& pair,
                                           const DomainKnowledge& knowledge);

/// Summary of what weak-topology filtering would remove for a pair.
struct WeakFilterStats {
  size_t weak_topologies = 0;   // Distinct weak TIDs.
  size_t total_topologies = 0;  // Observed TIDs.
  size_t weak_pairs = 0;        // Sum of weak TIDs' frequencies.
  size_t total_pairs = 0;       // Sum of all frequencies.
};

WeakFilterStats AnalyzeWeakTopologies(const TopologyCatalog& catalog,
                                      const PairTopologyData& pair,
                                      const DomainKnowledge& knowledge);

}  // namespace core
}  // namespace tsb

#endif  // TSB_CORE_WEAK_FILTER_H_
