#include "core/persistence.h"

#include <charconv>
#include <filesystem>
#include <fstream>

#include "columnar/blocks.h"
#include "common/str_util.h"
#include "graph/canonical.h"
#include "storage/csv.h"

namespace tsb {
namespace core {
namespace {

namespace fs = std::filesystem;
using storage::ColumnType;
using storage::TableSchema;
using storage::Value;

TableSchema TopologiesSchema() {
  return TableSchema({{"TID", ColumnType::kInt64},
                      {"NUM_CLASSES", ColumnType::kInt64},
                      {"NODES", ColumnType::kString},
                      {"EDGES", ColumnType::kString},
                      {"CLASS_KEYS", ColumnType::kString}});
}

TableSchema PairsSchema() {
  return TableSchema({{"T1", ColumnType::kInt64},
                      {"T2", ColumnType::kInt64},
                      {"PAIR_NAME", ColumnType::kString},
                      {"MAX_PATH_LENGTH", ColumnType::kInt64},
                      {"BUILD_MAX_REPS", ColumnType::kInt64},
                      {"BUILD_MAX_COMBOS", ColumnType::kInt64},
                      {"NUM_RELATED_PAIRS", ColumnType::kInt64},
                      {"TRUNCATED_PAIRS", ColumnType::kInt64},
                      {"TRUNCATED_REPS", ColumnType::kInt64},
                      {"PRUNED", ColumnType::kInt64},
                      {"PRUNE_THRESHOLD", ColumnType::kInt64},
                      {"PRUNED_TIDS", ColumnType::kString},
                      {"TABLE_NS", ColumnType::kString}});
}

/// Snapshots written before table namespaces existed lack the TABLE_NS
/// column; they load with an empty namespace.
TableSchema LegacyPairsSchema() {
  std::vector<storage::ColumnDef> columns = PairsSchema().columns();
  columns.pop_back();
  return TableSchema(std::move(columns));
}

TableSchema ClassesSchema() {
  return TableSchema({{"ID", ColumnType::kInt64},
                      {"KEY_HEX", ColumnType::kString},
                      {"NODE_TYPES", ColumnType::kString},
                      {"STEPS", ColumnType::kString},
                      {"PATH_TID", ColumnType::kInt64},
                      {"INSTANCE_PAIRS", ColumnType::kInt64}});
}

TableSchema FreqSchema() {
  return TableSchema(
      {{"TID", ColumnType::kInt64}, {"FREQ", ColumnType::kInt64}});
}

TableSchema RowsSchema(const std::string& third) {
  return TableSchema({{"E1", ColumnType::kInt64},
                      {"E2", ColumnType::kInt64},
                      {third, ColumnType::kInt64}});
}

std::string SerializeGraph(const graph::LabeledGraph& g, bool edges) {
  std::vector<std::string> parts;
  if (!edges) {
    for (uint32_t l : g.node_labels()) parts.push_back(std::to_string(l));
    return StrJoin(parts, " ");
  }
  for (const graph::LabeledGraph::Edge& e : g.edges()) {
    parts.push_back(StrFormat("%u-%u-%u", e.u, e.v, e.label));
  }
  return StrJoin(parts, ";");
}

bool ParseUint32(const std::string& s, uint32_t* out) {
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), *out);
  return ec == std::errc() && ptr == s.data() + s.size();
}

Result<graph::LabeledGraph> ParseGraph(const std::string& nodes,
                                       const std::string& edges) {
  graph::LabeledGraph g;
  if (!nodes.empty()) {
    for (const std::string& piece : StrSplit(nodes, ' ')) {
      uint32_t label = 0;
      if (!ParseUint32(piece, &label)) {
        return Status::InvalidArgument("bad node label '" + piece + "'");
      }
      g.AddNode(label);
    }
  }
  if (!edges.empty()) {
    for (const std::string& piece : StrSplit(edges, ';')) {
      std::vector<std::string> fields = StrSplit(piece, '-');
      uint32_t u = 0;
      uint32_t v = 0;
      uint32_t label = 0;
      if (fields.size() != 3 || !ParseUint32(fields[0], &u) ||
          !ParseUint32(fields[1], &v) || !ParseUint32(fields[2], &label) ||
          u >= g.num_nodes() || v >= g.num_nodes()) {
        return Status::InvalidArgument("bad edge '" + piece + "'");
      }
      g.AddEdge(u, v, label);
    }
  }
  return g;
}

Status WriteCsvFile(const storage::Table& table, const fs::path& path) {
  std::ofstream os(path);
  if (!os) {
    return Status::Internal("cannot open '" + path.string() +
                            "' for writing");
  }
  storage::WriteTableCsv(table, os);
  if (!os.good()) return Status::Internal("write failed: " + path.string());
  return Status::OK();
}

Result<storage::Table*> ReadCsvFile(storage::Catalog* db,
                                    const std::string& name,
                                    const TableSchema& schema,
                                    const fs::path& path) {
  std::ifstream is(path);
  if (!is) {
    return Status::NotFound("cannot open '" + path.string() + "'");
  }
  return storage::ReadTableCsv(db, name, schema, is);
}

/// A scratch catalog keeps serialization staging tables out of `db`.
Status StageAndWrite(const TableSchema& schema,
                     const std::function<void(storage::Table*)>& fill,
                     const fs::path& path) {
  storage::Catalog scratch;
  TSB_ASSIGN_OR_RETURN(storage::Table * table,
                       scratch.CreateTable("staging", schema));
  fill(table);
  return WriteCsvFile(*table, path);
}

}  // namespace

Status SaveTopologyArtifacts(const storage::Catalog& db,
                             const TopologyStore& store,
                             const std::string& dir) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::Internal("cannot create directory '" + dir + "'");
  }
  const fs::path root(dir);

  // Topologies, in TID order so loading re-interns to identical ids.
  TSB_RETURN_IF_ERROR(StageAndWrite(
      TopologiesSchema(),
      [&store](storage::Table* table) {
        for (const TopologyInfo& info : store.catalog().infos()) {
          std::vector<std::string> keys;
          for (const std::string& key : info.class_keys) {
            keys.push_back(HexEncode(key));
          }
          table->AppendRowOrDie(
              {Value(info.tid),
               Value(static_cast<int64_t>(info.num_classes)),
               Value(SerializeGraph(info.graph, /*edges=*/false)),
               Value(SerializeGraph(info.graph, /*edges=*/true)),
               Value(StrJoin(keys, ";"))});
        }
      },
      root / "topologies.csv"));

  // Pair registry.
  TSB_RETURN_IF_ERROR(StageAndWrite(
      PairsSchema(),
      [&store](storage::Table* table) {
        for (const auto& [key, pair] : store.pairs()) {
          std::vector<std::string> pruned_tids;
          for (Tid tid : pair.pruned_tids) {
            pruned_tids.push_back(std::to_string(tid));
          }
          table->AppendRowOrDie(
              {Value(static_cast<int64_t>(pair.t1)),
               Value(static_cast<int64_t>(pair.t2)), Value(pair.pair_name),
               Value(static_cast<int64_t>(pair.max_path_length)),
               Value(static_cast<int64_t>(
                   pair.build_max_class_representatives)),
               Value(static_cast<int64_t>(pair.build_max_union_combinations)),
               Value(static_cast<int64_t>(pair.num_related_pairs)),
               Value(static_cast<int64_t>(pair.truncated_pairs)),
               Value(static_cast<int64_t>(pair.truncated_representatives)),
               Value(static_cast<int64_t>(pair.pruned ? 1 : 0)),
               Value(static_cast<int64_t>(pair.prune_threshold)),
               Value(StrJoin(pruned_tids, ";")),
               Value(pair.table_namespace)});
        }
      },
      root / "pairs.csv"));

  for (const auto& [key, pair] : store.pairs()) {
    // Class registry.
    TSB_RETURN_IF_ERROR(StageAndWrite(
        ClassesSchema(),
        [&pair](storage::Table* table) {
          for (const ClassInfo& cls : pair.classes) {
            std::vector<std::string> types;
            for (storage::EntityTypeId t : cls.path.node_types) {
              types.push_back(std::to_string(t));
            }
            std::vector<std::string> steps;
            for (const graph::SchemaStep& step : cls.path.steps) {
              steps.push_back(StrFormat("%u:%c", step.rel,
                                        step.forward ? 'f' : 'b'));
            }
            table->AppendRowOrDie(
                {Value(static_cast<int64_t>(cls.id)),
                 Value(HexEncode(cls.key)), Value(StrJoin(types, " ")),
                 Value(StrJoin(steps, ";")), Value(cls.path_tid),
                 Value(static_cast<int64_t>(cls.instance_pairs))});
          }
        },
        root / ("classes_" + pair.pair_name + ".csv")));

    // Frequencies (sorted for determinism).
    TSB_RETURN_IF_ERROR(StageAndWrite(
        FreqSchema(),
        [&pair](storage::Table* table) {
          for (Tid tid : pair.ObservedTids()) {
            table->AppendRowOrDie(
                {Value(tid),
                 Value(static_cast<int64_t>(pair.freq.at(tid)))});
          }
        },
        root / ("freq_" + pair.pair_name + ".csv")));

    // Precomputed tables.
    std::vector<std::string> tables = {pair.alltops_table,
                                       pair.pairclasses_table};
    if (pair.pruned) {
      tables.push_back(pair.lefttops_table);
      tables.push_back(pair.excptops_table);
    }
    for (const std::string& name : tables) {
      const storage::Table* table = db.FindTable(name);
      if (table == nullptr) {
        return Status::NotFound("precomputed table '" + name +
                                "' missing from catalog");
      }
      TSB_RETURN_IF_ERROR(
          WriteCsvFile(*table, root / ("table_" + name + ".csv")));
    }
  }
  return Status::OK();
}

Status LoadTopologyArtifacts(storage::Catalog* db, TopologyStore* store,
                             const std::string& dir) {
  if (store->catalog().size() != 0 || !store->pairs().empty()) {
    return Status::FailedPrecondition("target store is not empty");
  }
  const fs::path root(dir);
  storage::Catalog scratch;

  // Topologies.
  {
    TSB_ASSIGN_OR_RETURN(storage::Table * table,
                         ReadCsvFile(&scratch, "topologies",
                                     TopologiesSchema(),
                                     root / "topologies.csv"));
    for (size_t i = 0; i < table->num_rows(); ++i) {
      Tid expected = table->GetInt64(i, 0);
      TSB_ASSIGN_OR_RETURN(graph::LabeledGraph g,
                           ParseGraph(table->GetString(i, 2),
                                      table->GetString(i, 3)));
      std::vector<std::string> class_keys;
      const std::string& keys_field = table->GetString(i, 4);
      if (!keys_field.empty()) {
        for (const std::string& hex : StrSplit(keys_field, ';')) {
          std::string key;
          if (!HexDecode(hex, &key)) {
            return Status::InvalidArgument("bad class key hex");
          }
          class_keys.push_back(std::move(key));
        }
      }
      Tid tid = store->mutable_catalog()->Intern(
          g, static_cast<size_t>(table->GetInt64(i, 1)));
      if (tid != expected) {
        return Status::Internal(StrFormat(
            "TID mismatch on load: got %lld, expected %lld",
            static_cast<long long>(tid), static_cast<long long>(expected)));
      }
      // Re-attach the class keys via a second intern call (merge path).
      store->mutable_catalog()->InternWithCode(
          g, store->catalog().Get(tid).code,
          static_cast<size_t>(table->GetInt64(i, 1)), std::move(class_keys));
    }
  }

  // Pairs. Current snapshots carry TABLE_NS; pre-namespace ones fall back
  // to the legacy 12-column layout (empty namespace).
  bool has_table_ns = true;
  Result<storage::Table*> pairs_or =
      ReadCsvFile(&scratch, "pairs", PairsSchema(), root / "pairs.csv");
  if (!pairs_or.ok()) {
    has_table_ns = false;
    pairs_or = ReadCsvFile(&scratch, "pairs_legacy", LegacyPairsSchema(),
                           root / "pairs.csv");
  }
  TSB_RETURN_IF_ERROR(pairs_or.status());
  storage::Table* pairs_table = pairs_or.value();
  for (size_t i = 0; i < pairs_table->num_rows(); ++i) {
    PairTopologyData pair;
    pair.t1 = static_cast<storage::EntityTypeId>(pairs_table->GetInt64(i, 0));
    pair.t2 = static_cast<storage::EntityTypeId>(pairs_table->GetInt64(i, 1));
    pair.pair_name = pairs_table->GetString(i, 2);
    pair.max_path_length =
        static_cast<size_t>(pairs_table->GetInt64(i, 3));
    pair.build_max_class_representatives =
        static_cast<size_t>(pairs_table->GetInt64(i, 4));
    pair.build_max_union_combinations =
        static_cast<size_t>(pairs_table->GetInt64(i, 5));
    pair.num_related_pairs =
        static_cast<size_t>(pairs_table->GetInt64(i, 6));
    pair.truncated_pairs = static_cast<size_t>(pairs_table->GetInt64(i, 7));
    pair.truncated_representatives =
        static_cast<size_t>(pairs_table->GetInt64(i, 8));
    pair.pruned = pairs_table->GetInt64(i, 9) != 0;
    pair.prune_threshold =
        static_cast<size_t>(pairs_table->GetInt64(i, 10));
    pair.table_namespace =
        has_table_ns ? pairs_table->GetString(i, 12) : "";
    pair.alltops_table =
        pair.table_namespace + "AllTops_" + pair.pair_name;
    pair.pairclasses_table =
        pair.table_namespace + "PairClasses_" + pair.pair_name;

    // Classes.
    TSB_ASSIGN_OR_RETURN(
        storage::Table * classes_table,
        ReadCsvFile(&scratch, "classes_" + pair.pair_name, ClassesSchema(),
                    root / ("classes_" + pair.pair_name + ".csv")));
    for (size_t c = 0; c < classes_table->num_rows(); ++c) {
      ClassInfo cls;
      cls.id = static_cast<uint32_t>(classes_table->GetInt64(c, 0));
      if (!HexDecode(classes_table->GetString(c, 1), &cls.key)) {
        return Status::InvalidArgument("bad class key hex");
      }
      for (const std::string& piece :
           StrSplit(classes_table->GetString(c, 2), ' ')) {
        uint32_t t = 0;
        if (!ParseUint32(piece, &t)) {
          return Status::InvalidArgument("bad node type '" + piece + "'");
        }
        cls.path.node_types.push_back(t);
      }
      const std::string& steps_field = classes_table->GetString(c, 3);
      if (!steps_field.empty()) {
        for (const std::string& piece : StrSplit(steps_field, ';')) {
          std::vector<std::string> kv = StrSplit(piece, ':');
          uint32_t rel = 0;
          if (kv.size() != 2 || !ParseUint32(kv[0], &rel) ||
              (kv[1] != "f" && kv[1] != "b")) {
            return Status::InvalidArgument("bad step '" + piece + "'");
          }
          cls.path.steps.push_back(graph::SchemaStep{rel, kv[1] == "f"});
        }
      }
      cls.path_tid = classes_table->GetInt64(c, 4);
      cls.instance_pairs =
          static_cast<size_t>(classes_table->GetInt64(c, 5));
      pair.class_by_key.emplace(cls.key, cls.id);
      pair.classes.push_back(std::move(cls));
    }

    // Frequencies.
    TSB_ASSIGN_OR_RETURN(
        storage::Table * freq_table,
        ReadCsvFile(&scratch, "freq_" + pair.pair_name, FreqSchema(),
                    root / ("freq_" + pair.pair_name + ".csv")));
    for (size_t f = 0; f < freq_table->num_rows(); ++f) {
      pair.freq.emplace(freq_table->GetInt64(f, 0),
                        static_cast<size_t>(freq_table->GetInt64(f, 1)));
    }

    // Pruned TIDs (classes recover the TID -> class map).
    const std::string& pruned_field = pairs_table->GetString(i, 11);
    if (!pruned_field.empty()) {
      std::unordered_map<Tid, uint32_t> tid_to_class;
      for (const ClassInfo& cls : pair.classes) {
        if (cls.path_tid != kNoTid) tid_to_class.emplace(cls.path_tid, cls.id);
      }
      for (const std::string& piece : StrSplit(pruned_field, ';')) {
        Tid tid = 0;
        auto [ptr, parse_ec] =
            std::from_chars(piece.data(), piece.data() + piece.size(), tid);
        if (parse_ec != std::errc() || ptr != piece.data() + piece.size()) {
          return Status::InvalidArgument("bad pruned TID '" + piece + "'");
        }
        auto it = tid_to_class.find(tid);
        if (it == tid_to_class.end()) {
          return Status::InvalidArgument(
              "pruned TID has no class in the registry");
        }
        pair.pruned_tids.push_back(tid);
        pair.pruned_class_of_tid.emplace(tid, it->second);
      }
    }

    // Precomputed tables into the real catalog.
    std::vector<std::pair<std::string, std::string>> tables = {
        {pair.alltops_table, "TID"}, {pair.pairclasses_table, "CID"}};
    if (pair.pruned) {
      pair.lefttops_table =
          pair.table_namespace + "LeftTops_" + pair.pair_name;
      pair.excptops_table =
          pair.table_namespace + "ExcpTops_" + pair.pair_name;
      tables.push_back({pair.lefttops_table, "TID"});
      tables.push_back({pair.excptops_table, "TID"});
    }
    for (const auto& [name, third] : tables) {
      TSB_RETURN_IF_ERROR(ReadCsvFile(db, name, RowsSchema(third),
                                      root / ("table_" + name + ".csv"))
                              .status());
    }
    Result<PairTopologyData*> added = store->AddPair(std::move(pair));
    TSB_RETURN_IF_ERROR(added.status());
    columnar::AttachSlices(*db, store->catalog(), added.value());
  }
  return Status::OK();
}

}  // namespace core
}  // namespace tsb
