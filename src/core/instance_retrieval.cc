#include "core/instance_retrieval.h"

#include "common/logging.h"

namespace tsb {
namespace core {

std::vector<TopologyInstance> RetrieveInstances(
    const storage::Catalog& db, const TopologyStore& store,
    const graph::SchemaGraph& schema, const graph::DataGraphView& view,
    storage::EntityTypeId t1, storage::EntityTypeId t2, Tid tid,
    const RetrievalLimits& limits) {
  std::vector<TopologyInstance> out;
  const PairTopologyData* pair = store.FindPair(t1, t2);
  if (pair == nullptr) return out;
  const std::string& target_code = store.catalog().Get(tid).code;

  const storage::Table& alltops = *db.GetTable(pair->alltops_table);
  const auto& e1 = alltops.column(0).ints();
  const auto& e2 = alltops.column(1).ints();
  const auto& tids = alltops.column(2).ints();

  PairComputeLimits compute_limits;
  compute_limits.max_path_length = pair->max_path_length;
  compute_limits.union_limits = limits.union_limits;
  compute_limits.path_cap = limits.path_cap;

  size_t pairs_done = 0;
  for (size_t i = 0; i < alltops.num_rows(); ++i) {
    if (tids[i] != tid) continue;
    if (pairs_done >= limits.max_pairs) break;
    ++pairs_done;

    // Recompute this pair's topology set from the base data and keep the
    // witnesses whose canonical code matches the requested topology. With
    // the same limits as the offline build, the target is always found.
    PairComputation computed =
        ComputePairTopologies(view, schema, e1[i], e2[i], compute_limits);
    size_t emitted = 0;
    for (ComputedTopology& topo : computed.topologies) {
      if (topo.code != target_code) continue;
      if (emitted >= limits.max_instances_per_pair) break;
      ++emitted;
      TopologyInstance instance;
      instance.a = e1[i];
      instance.b = e2[i];
      instance.subgraph = std::move(topo.witness);
      instance.node_ids = std::move(topo.witness_ids);
      out.push_back(std::move(instance));
    }
  }
  return out;
}

}  // namespace core
}  // namespace tsb
