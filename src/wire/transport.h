#ifndef TSB_WIRE_TRANSPORT_H_
#define TSB_WIRE_TRANSPORT_H_

#include <future>
#include <memory>
#include <string>

#include "common/result.h"

namespace tsb {

namespace obs {
class QueryTrace;
}  // namespace obs

namespace wire {

/// The process-boundary seam of the sharded executor: sub-queries travel
/// to a shard as one encoded request frame (wire/codec.h) and come back as
/// one encoded response frame, even in-process. ScatterGatherExecutor
/// speaks only this interface for its fan-out, so swapping the in-process
/// LoopbackTransport (shard/loopback_transport.h) for a socket transport
/// changes no executor code — the serialization cost is already paid and
/// tested for byte-identity.
///
/// Contract:
///  - `request` is a kQueryRequest or kTripleCollectRequest frame; the
///    returned future resolves to the matching response frame, or to a
///    Status when the shard could not answer at all (decode failure,
///    shard down, executor shutting down). Implementations must not
///    block Send itself on the shard's work.
///  - The future must become ready eventually even on failure — callers
///    enforce deadlines with wait_for and may abandon the future, so the
///    implementation's task must own its data (no dangling captures).
///  - Thread safety: Send may be called from any thread concurrently.
class ShardTransport {
 public:
  virtual ~ShardTransport() = default;

  virtual size_t num_shards() const = 0;

  /// Dispatches one encoded request frame to `shard`.
  virtual std::future<Result<std::string>> Send(size_t shard,
                                                std::string request) = 0;

  /// Traced dispatch: implementations that make routing decisions of
  /// their own (replica selection, hedging, failover) record one span per
  /// attempt into `trace`, parented under `parent_span_id`. The default
  /// forwards to Send — a transport with nothing to add needs no change.
  /// `trace` may outlive the query; implementations hold the shared_ptr
  /// from their attempt tasks.
  virtual std::future<Result<std::string>> SendTraced(
      size_t shard, std::string request,
      const std::shared_ptr<obs::QueryTrace>& trace,
      uint64_t parent_span_id) {
    (void)trace;
    (void)parent_span_id;
    return Send(shard, std::move(request));
  }
};

}  // namespace wire
}  // namespace tsb

#endif  // TSB_WIRE_TRANSPORT_H_
