#include "wire/codec.h"

#include <algorithm>
#include <vector>

#include "common/binary_io.h"
#include "engine/result_io.h"
#include "storage/predicate.h"

namespace tsb {
namespace wire {

namespace {

constexpr char kMagic0 = 'T';
constexpr char kMagic1 = 'W';
constexpr size_t kHeaderBytes = kFrameHeaderBytes;
static_assert(kFrameHeaderBytes == 2 + 1 + 1 + 4,
              "magic, version, kind, len");

/// Appends a frame header and returns the frame's start offset, so
/// frames can be encoded back-to-back into one send buffer; EndFrame
/// patches the length field relative to that offset.
size_t BeginFrame(MessageKind kind, std::string* out) {
  const size_t start = out->size();
  out->push_back(kMagic0);
  out->push_back(kMagic1);
  PutU8(out, kWireVersion);
  PutU8(out, static_cast<uint8_t>(kind));
  PutU32(out, 0);  // Payload length, patched by EndFrame.
  return start;
}

void EndFrame(size_t start, std::string* out) {
  const uint32_t payload =
      static_cast<uint32_t>(out->size() - start - kHeaderBytes);
  for (int i = 0; i < 4; ++i) {
    (*out)[start + kHeaderBytes - 4 + i] =
        static_cast<char>((payload >> (8 * i)) & 0xff);
  }
}

/// Validates the header and hands back the payload slice. The caller
/// holds the complete message, so kIncomplete is truncation (malformed),
/// and trailing bytes beyond the framed length are rejected too.
/// `version` (optional) receives the frame's header version so decoders
/// can branch on which tail fields the payload carries.
Result<std::string_view> OpenFrame(std::string_view frame,
                                   MessageKind expected,
                                   uint8_t* version = nullptr) {
  FrameHeader header;
  const FrameError error =
      InspectFrame(frame, /*max_payload_bytes=*/frame.size(), &header);
  if (error != FrameError::kOk) return FrameErrorToStatus(error);
  if (header.kind != expected) {
    return Status::InvalidArgument(
        "wire frame: kind " +
        std::to_string(static_cast<uint8_t>(header.kind)) + ", expected " +
        std::to_string(static_cast<uint8_t>(expected)));
  }
  if (frame.size() != header.frame_bytes) {
    return Status::InvalidArgument(
        "wire frame: payload length mismatch (header says " +
        std::to_string(header.payload_bytes) + ", got " +
        std::to_string(frame.size() - kHeaderBytes) + ")");
  }
  if (version != nullptr) *version = header.version;
  return frame.substr(kHeaderBytes);
}

void EncodePredicateField(const storage::PredicateRef& pred,
                          std::string* out) {
  if (pred == nullptr) {
    PutBool(out, false);
    return;
  }
  PutBool(out, true);
  pred->EncodeWire(out);
}

Result<storage::PredicateRef> DecodePredicateField(
    const storage::Catalog& db, const std::string& entity_set,
    BinaryReader* in) {
  if (!in->Bool()) return storage::PredicateRef(nullptr);
  const storage::EntitySetDef* def = db.FindEntitySet(entity_set);
  if (def == nullptr) {
    return Status::NotFound("unknown entity set '" + entity_set + "'");
  }
  const storage::Table* table = db.FindTable(def->table_name);
  if (table == nullptr) {
    return Status::Internal("entity set '" + entity_set +
                            "' has no backing table");
  }
  return storage::DecodePredicate(table->schema(), in);
}

}  // namespace

const char* FrameErrorToString(FrameError error) {
  switch (error) {
    case FrameError::kOk:
      return "ok";
    case FrameError::kIncomplete:
      return "incomplete";
    case FrameError::kMalformedFrame:
      return "malformed frame";
    case FrameError::kUnsupportedVersion:
      return "unsupported version";
  }
  return "unknown";
}

FrameError InspectFrame(std::string_view buffer, size_t max_payload_bytes,
                        FrameHeader* header) {
  // Validate strictly byte-by-byte so a prefix that can still grow into a
  // valid frame is kIncomplete, and one that cannot is rejected at the
  // first offending byte — a reader never waits for more bytes of a frame
  // that is already hopeless.
  if (!buffer.empty() && buffer[0] != kMagic0) {
    return FrameError::kMalformedFrame;
  }
  if (buffer.size() >= 2 && buffer[1] != kMagic1) {
    return FrameError::kMalformedFrame;
  }
  if (buffer.size() >= 3 &&
      (static_cast<uint8_t>(buffer[2]) < kMinWireVersion ||
       static_cast<uint8_t>(buffer[2]) > kWireVersion)) {
    return FrameError::kUnsupportedVersion;
  }
  if (buffer.size() >= 4 &&
      static_cast<uint8_t>(buffer[3]) >
          static_cast<uint8_t>(MessageKind::kMutationResponse)) {
    return FrameError::kMalformedFrame;
  }
  if (buffer.size() < kFrameHeaderBytes) return FrameError::kIncomplete;

  uint32_t length = 0;
  for (int i = 0; i < 4; ++i) {
    length |= static_cast<uint32_t>(static_cast<uint8_t>(buffer[4 + i]))
              << (8 * i);
  }
  if (length > max_payload_bytes) return FrameError::kMalformedFrame;
  if (header != nullptr) {
    header->version = static_cast<uint8_t>(buffer[2]);
    header->kind = static_cast<MessageKind>(static_cast<uint8_t>(buffer[3]));
    header->payload_bytes = length;
    header->frame_bytes = kFrameHeaderBytes + length;
  }
  if (buffer.size() < kFrameHeaderBytes + length) {
    return FrameError::kIncomplete;
  }
  return FrameError::kOk;
}

Status FrameErrorToStatus(FrameError error) {
  switch (error) {
    case FrameError::kOk:
      return Status::OK();
    case FrameError::kIncomplete:
      return Status::InvalidArgument("wire frame: truncated");
    case FrameError::kMalformedFrame:
      return Status::InvalidArgument(
          "wire frame: malformed (bad magic, unknown kind, or oversized "
          "length)");
    case FrameError::kUnsupportedVersion:
      return Status::Unimplemented("wire frame: unsupported version");
  }
  return Status::Internal("wire frame: unknown frame error");
}

Result<MessageKind> PeekMessageKind(std::string_view frame) {
  FrameHeader header;
  const FrameError error = InspectFrame(frame, frame.size(), &header);
  if (error != FrameError::kOk) return FrameErrorToStatus(error);
  return header.kind;
}

void EncodeQueryRequest(const WireRequest& request, std::string* out) {
  const size_t frame = BeginFrame(MessageKind::kQueryRequest, out);
  PutU64(out, request.id);
  PutU8(out, static_cast<uint8_t>(request.priority));
  PutF64(out, request.deadline_seconds);

  PutString(out, request.query.entity_set1);
  EncodePredicateField(request.query.pred1, out);
  PutString(out, request.query.entity_set2);
  EncodePredicateField(request.query.pred2, out);
  PutU8(out, static_cast<uint8_t>(request.query.scheme));
  PutU64(out, request.query.k);
  PutBool(out, request.query.exclude_weak);

  PutU8(out, static_cast<uint8_t>(request.method));

  PutU32(out, static_cast<uint32_t>(request.options.dgj_algs.size()));
  for (engine::DgjAlg alg : request.options.dgj_algs) {
    PutU8(out, static_cast<uint8_t>(alg));
  }
  PutU32(out, static_cast<uint32_t>(request.options.et_side_order.size()));
  for (size_t side : request.options.et_side_order) {
    PutU64(out, side);
  }
  PutBool(out, request.options.skip_pruned_checks);
  PutBool(out, request.options.use_columnar);
  // v4 tail: trace context.
  PutU64(out, request.trace.trace_id);
  PutU64(out, request.trace.parent_span_id);
  PutBool(out, request.trace.sampled);
  EndFrame(frame, out);
}

Result<WireRequest> DecodeQueryRequest(std::string_view frame,
                                       const storage::Catalog& db) {
  uint8_t version = kWireVersion;
  TSB_ASSIGN_OR_RETURN(
      std::string_view payload,
      OpenFrame(frame, MessageKind::kQueryRequest, &version));
  BinaryReader in(payload);
  WireRequest request;
  request.id = in.U64();
  const uint8_t priority = in.U8();
  if (priority >= kNumPriorities) {
    return Status::InvalidArgument("wire request: bad priority " +
                                   std::to_string(priority));
  }
  request.priority = static_cast<Priority>(priority);
  request.deadline_seconds = in.F64();

  request.query.entity_set1 = in.String();
  TSB_ASSIGN_OR_RETURN(
      request.query.pred1,
      DecodePredicateField(db, request.query.entity_set1, &in));
  request.query.entity_set2 = in.String();
  TSB_ASSIGN_OR_RETURN(
      request.query.pred2,
      DecodePredicateField(db, request.query.entity_set2, &in));
  const uint8_t scheme = in.U8();
  if (scheme > static_cast<uint8_t>(core::RankScheme::kDomain)) {
    return Status::InvalidArgument("wire request: bad rank scheme " +
                                   std::to_string(scheme));
  }
  request.query.scheme = static_cast<core::RankScheme>(scheme);
  request.query.k = in.U64();
  request.query.exclude_weak = in.Bool();

  const uint8_t method = in.U8();
  if (method > static_cast<uint8_t>(engine::MethodKind::kFastTopKOpt)) {
    return Status::InvalidArgument("wire request: bad method " +
                                   std::to_string(method));
  }
  request.method = static_cast<engine::MethodKind>(method);

  const uint32_t num_algs = in.U32();
  for (uint32_t i = 0; i < num_algs && in.ok(); ++i) {
    const uint8_t alg = in.U8();
    if (alg > static_cast<uint8_t>(engine::DgjAlg::kHdgj)) {
      return Status::InvalidArgument("wire request: bad DGJ algorithm");
    }
    request.options.dgj_algs.push_back(static_cast<engine::DgjAlg>(alg));
  }
  // et_side_order defaults to {0, 1}; replace it with the wire image.
  // Strictly validated (two sides, values 0/1): the engine CHECK-fails on
  // anything else, and a decode error must never become a process abort.
  const uint32_t num_sides = in.U32();
  if (num_sides != 2) {
    return Status::InvalidArgument(
        "wire request: et_side_order must have exactly 2 entries, got " +
        std::to_string(num_sides));
  }
  request.options.et_side_order.clear();
  for (uint32_t i = 0; i < num_sides && in.ok(); ++i) {
    const uint64_t side = in.U64();
    if (side > 1) {
      return Status::InvalidArgument("wire request: bad ET side " +
                                     std::to_string(side));
    }
    request.options.et_side_order.push_back(static_cast<size_t>(side));
  }
  request.options.skip_pruned_checks = in.Bool();
  request.options.use_columnar = in.Bool();
  if (version >= 4) {
    request.trace.trace_id = in.U64();
    request.trace.parent_span_id = in.U64();
    request.trace.sampled = in.Bool();
  }
  if (!in.AtEnd()) return in.status("query request payload");
  return request;
}

void EncodeQueryResponse(const WireResponse& response, std::string* out) {
  const size_t frame = BeginFrame(MessageKind::kQueryResponse, out);
  PutU64(out, response.request_id);
  PutString(out, response.serving_stamp);
  PutU8(out, static_cast<uint8_t>(response.error.code));
  PutString(out, response.error.message);
  engine::EncodeQueryResult(response.result, out);
  PutBool(out, response.from_cache);
  PutF64(out, response.service_seconds);
  // v4 tail: piggybacked responder spans (v6 span records carry cpu_ns).
  obs::EncodeSpans(response.spans, out);
  // v6 tail: the result's resource bill. Encoded after the span list so a
  // v5 payload is a strict prefix of a v6 one (minus per-span cpu).
  PutU64(out, response.result.stats.cpu_ns);
  PutU64(out, response.result.stats.bytes_deserialized);
  PutU64(out, response.result.stats.catalog_interns);
  PutU64(out, response.result.stats.heap_bytes);
  EndFrame(frame, out);
}

Result<WireResponse> DecodeQueryResponse(std::string_view frame) {
  uint8_t version = kWireVersion;
  TSB_ASSIGN_OR_RETURN(
      std::string_view payload,
      OpenFrame(frame, MessageKind::kQueryResponse, &version));
  BinaryReader in(payload);
  WireResponse response;
  response.request_id = in.U64();
  response.serving_stamp = in.String();
  const uint8_t code = in.U8();
  if (code > static_cast<uint8_t>(WireErrorCode::kInternal)) {
    return Status::InvalidArgument("wire response: bad error code " +
                                   std::to_string(code));
  }
  response.error.code = static_cast<WireErrorCode>(code);
  response.error.message = in.String();
  TSB_ASSIGN_OR_RETURN(response.result, engine::DecodeQueryResult(&in));
  response.from_cache = in.Bool();
  response.service_seconds = in.F64();
  if (version >= 4) {
    TSB_RETURN_IF_ERROR(
        obs::DecodeSpans(&in, &response.spans, /*with_cpu=*/version >= 6));
  }
  if (version >= 6) {
    response.result.stats.cpu_ns = in.U64();
    response.result.stats.bytes_deserialized = in.U64();
    response.result.stats.catalog_interns = in.U64();
    response.result.stats.heap_bytes = in.U64();
  }
  if (!in.AtEnd()) return in.status("query response payload");
  return response;
}

Result<std::string> PeekResponseStamp(std::string_view frame) {
  TSB_ASSIGN_OR_RETURN(std::string_view payload,
                       OpenFrame(frame, MessageKind::kQueryResponse));
  BinaryReader in(payload);
  in.U64();  // request_id
  std::string stamp = in.String();
  if (!in.ok()) return in.status("query response stamp");
  return stamp;
}

void EncodeTripleCollectRequest(const engine::TripleSelection& selection,
                                std::string* out) {
  const size_t frame = BeginFrame(MessageKind::kTripleCollectRequest, out);
  for (int s = 0; s < 3; ++s) {
    const engine::TripleSelection::Slot& slot = selection.slots[s];
    PutString(out, slot.def != nullptr ? slot.def->name : std::string());
    // Canonical order: the selection set is unordered in memory.
    std::vector<int64_t> ids(slot.selected.begin(), slot.selected.end());
    std::sort(ids.begin(), ids.end());
    PutU32(out, static_cast<uint32_t>(ids.size()));
    for (int64_t id : ids) PutI64(out, id);
  }
  for (int p = 0; p < 3; ++p) {
    PutU8(out, static_cast<uint8_t>(selection.slot_pairs[p].lo));
    PutU8(out, static_cast<uint8_t>(selection.slot_pairs[p].hi));
  }
  EndFrame(frame, out);
}

Result<engine::TripleSelection> DecodeTripleCollectRequest(
    std::string_view frame, const storage::Catalog& db) {
  TSB_ASSIGN_OR_RETURN(
      std::string_view payload,
      OpenFrame(frame, MessageKind::kTripleCollectRequest));
  BinaryReader in(payload);
  engine::TripleSelection selection;
  for (int s = 0; s < 3; ++s) {
    const std::string name = in.String();
    if (!in.ok()) return in.status("triple-collect slot");
    const storage::EntitySetDef* def = db.FindEntitySet(name);
    if (def == nullptr) {
      return Status::NotFound("unknown entity set '" + name + "'");
    }
    selection.slots[s].def = def;
    const uint32_t n = in.U32();
    for (uint32_t i = 0; i < n && in.ok(); ++i) {
      selection.slots[s].selected.insert(in.I64());
    }
  }
  for (int p = 0; p < 3; ++p) {
    const uint8_t lo = in.U8();
    const uint8_t hi = in.U8();
    if (lo > 2 || hi > 2) {
      return Status::InvalidArgument("triple-collect: bad slot pair");
    }
    selection.slot_pairs[p].lo = lo;
    selection.slot_pairs[p].hi = hi;
  }
  if (!in.AtEnd()) return in.status("triple-collect request payload");
  return selection;
}

void EncodeTripleCollectResponse(const engine::TripleRelatedSets& related,
                                 std::string* out) {
  const size_t frame = BeginFrame(MessageKind::kTripleCollectResponse, out);
  engine::EncodeTripleRelatedSets(related, out);
  EndFrame(frame, out);
}

Result<engine::TripleRelatedSets> DecodeTripleCollectResponse(
    std::string_view frame) {
  TSB_ASSIGN_OR_RETURN(
      std::string_view payload,
      OpenFrame(frame, MessageKind::kTripleCollectResponse));
  BinaryReader in(payload);
  TSB_ASSIGN_OR_RETURN(engine::TripleRelatedSets related,
                       engine::DecodeTripleRelatedSets(&in));
  if (!in.AtEnd()) return in.status("triple-collect response payload");
  return related;
}

void EncodeAdminRequest(const AdminRequest& request, std::string* out) {
  const size_t frame = BeginFrame(MessageKind::kAdminRequest, out);
  PutU8(out, static_cast<uint8_t>(request.command));
  EndFrame(frame, out);
}

Result<AdminRequest> DecodeAdminRequest(std::string_view frame) {
  TSB_ASSIGN_OR_RETURN(std::string_view payload,
                       OpenFrame(frame, MessageKind::kAdminRequest));
  BinaryReader in(payload);
  AdminRequest request;
  const uint8_t command = in.U8();
  if (!in.ok()) return in.status("admin request payload");
  if (command > kMaxAdminCommand) {
    return Status::InvalidArgument("admin request: bad command " +
                                   std::to_string(command));
  }
  request.command = static_cast<AdminCommand>(command);
  if (!in.AtEnd()) return in.status("admin request payload");
  return request;
}

void EncodeAdminResponse(const AdminResponse& response, std::string* out) {
  const size_t frame = BeginFrame(MessageKind::kAdminResponse, out);
  PutU8(out, static_cast<uint8_t>(response.error.code));
  PutString(out, response.error.message);
  PutString(out, response.body);
  EndFrame(frame, out);
}

Result<AdminResponse> DecodeAdminResponse(std::string_view frame) {
  TSB_ASSIGN_OR_RETURN(std::string_view payload,
                       OpenFrame(frame, MessageKind::kAdminResponse));
  BinaryReader in(payload);
  AdminResponse response;
  const uint8_t code = in.U8();
  if (code > static_cast<uint8_t>(WireErrorCode::kInternal)) {
    return Status::InvalidArgument("admin response: bad error code " +
                                   std::to_string(code));
  }
  response.error.code = static_cast<WireErrorCode>(code);
  response.error.message = in.String();
  response.body = in.String();
  if (!in.AtEnd()) return in.status("admin response payload");
  return response;
}

void EncodeMutationRequest(const MutationWireRequest& request,
                           std::string* out) {
  const size_t frame = BeginFrame(MessageKind::kMutationRequest, out);
  PutU64(out, request.id);
  std::string batch;
  mutation::EncodeMutationBatch(request.batch, &batch);
  PutString(out, batch);
  EndFrame(frame, out);
}

Result<MutationWireRequest> DecodeMutationRequest(std::string_view frame) {
  TSB_ASSIGN_OR_RETURN(std::string_view payload,
                       OpenFrame(frame, MessageKind::kMutationRequest));
  BinaryReader in(payload);
  MutationWireRequest request;
  request.id = in.U64();
  const std::string batch = in.String();
  if (!in.ok()) return in.status("mutation request payload");
  TSB_ASSIGN_OR_RETURN(request.batch, mutation::DecodeMutationBatch(batch));
  if (!in.AtEnd()) return in.status("mutation request payload");
  return request;
}

void EncodeMutationResponse(const MutationWireResponse& response,
                            std::string* out) {
  const size_t frame = BeginFrame(MessageKind::kMutationResponse, out);
  PutU64(out, response.request_id);
  PutU8(out, static_cast<uint8_t>(response.error.code));
  PutString(out, response.error.message);
  PutU64(out, response.applied_ops);
  PutU64(out, response.dirty_pairs);
  PutF64(out, response.apply_seconds);
  EndFrame(frame, out);
}

Result<MutationWireResponse> DecodeMutationResponse(std::string_view frame) {
  TSB_ASSIGN_OR_RETURN(std::string_view payload,
                       OpenFrame(frame, MessageKind::kMutationResponse));
  BinaryReader in(payload);
  MutationWireResponse response;
  response.request_id = in.U64();
  const uint8_t code = in.U8();
  if (!in.ok()) return in.status("mutation response payload");
  if (code > static_cast<uint8_t>(WireErrorCode::kInternal)) {
    return Status::InvalidArgument("mutation response: bad error code " +
                                   std::to_string(code));
  }
  response.error.code = static_cast<WireErrorCode>(code);
  response.error.message = in.String();
  response.applied_ops = in.U64();
  response.dirty_pairs = in.U64();
  response.apply_seconds = in.F64();
  if (!in.AtEnd()) return in.status("mutation response payload");
  return response;
}

}  // namespace wire
}  // namespace tsb
