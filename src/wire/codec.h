#ifndef TSB_WIRE_CODEC_H_
#define TSB_WIRE_CODEC_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "engine/nquery.h"
#include "storage/catalog.h"
#include "wire/message.h"

namespace tsb {
namespace wire {

/// The compact binary codec: every message is one length-prefixed frame
///
///   [ 'T' 'W' | version u8 | kind u8 | payload length u32 LE | payload ]
///
/// and every number in the payload is a fixed-width little-endian bit
/// pattern (common/binary_io.h), so encode → decode → encode is
/// byte-identical — including double scores and ExecStats timings.
/// Decoders reject bad magic, unknown versions/kinds, length mismatches,
/// and trailing payload bytes.
///
/// Requests carry predicates as structural trees
/// (storage::DecodePredicate), re-resolved against the decoding side's
/// catalog — the seam that lets a sub-query cross a process boundary to a
/// shard holding its own replica of the schema.
///
/// The human-readable twin of this codec is the RequestParser text grammar
/// (service/request_parser.h): RequestParser::Format renders a parsed
/// request back to its canonical line.

/// Binary message kinds (the `kind` header byte). Distinct from the
/// streaming FrameKind of wire/message.h: these name what a frame's
/// payload *is*, FrameKind names a frame's role in a response stream.
enum class MessageKind : uint8_t {
  kQueryRequest = 0,
  kQueryResponse = 1,
  kTripleCollectRequest = 2,
  kTripleCollectResponse = 3,
};

/// Validates the frame header and returns the message kind without
/// decoding the payload (transport dispatch).
Result<MessageKind> PeekMessageKind(std::string_view frame);

/// --- 2-query evaluation calls ---------------------------------------------

void EncodeQueryRequest(const WireRequest& request, std::string* out);
Result<WireRequest> DecodeQueryRequest(std::string_view frame,
                                       const storage::Catalog& db);

void EncodeQueryResponse(const WireResponse& response, std::string* out);
Result<WireResponse> DecodeQueryResponse(std::string_view frame);

/// --- 3-query scatter phase -------------------------------------------------
///
/// A sharded 3-query resolves its slot selections once, then asks every
/// shard for its slice of the related-pair relation. The request encodes
/// the *resolved* selection (entity-set names, selected ids, slot-pair
/// orientation), so the shard side does no predicate evaluation of its
/// own; the response is the shard's TripleRelatedSets slice.

void EncodeTripleCollectRequest(const engine::TripleSelection& selection,
                                std::string* out);
Result<engine::TripleSelection> DecodeTripleCollectRequest(
    std::string_view frame, const storage::Catalog& db);

void EncodeTripleCollectResponse(const engine::TripleRelatedSets& related,
                                 std::string* out);
Result<engine::TripleRelatedSets> DecodeTripleCollectResponse(
    std::string_view frame);

}  // namespace wire
}  // namespace tsb

#endif  // TSB_WIRE_CODEC_H_
