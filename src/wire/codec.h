#ifndef TSB_WIRE_CODEC_H_
#define TSB_WIRE_CODEC_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "engine/nquery.h"
#include "storage/catalog.h"
#include "wire/message.h"

namespace tsb {
namespace wire {

/// The compact binary codec: every message is one length-prefixed frame
///
///   [ 'T' 'W' | version u8 | kind u8 | payload length u32 LE | payload ]
///
/// and every number in the payload is a fixed-width little-endian bit
/// pattern (common/binary_io.h), so encode → decode → encode is
/// byte-identical — including double scores and ExecStats timings.
/// Decoders reject bad magic, unknown versions/kinds, length mismatches,
/// and trailing payload bytes.
///
/// Encoders always emit kWireVersion; decoders accept every version in
/// [kMinWireVersion, kWireVersion]. Fields added by a newer version sit at
/// the payload tail, so an older payload simply ends before them and the
/// decoder fills the defaults (empty trace context, no spans).
///
/// Requests carry predicates as structural trees
/// (storage::DecodePredicate), re-resolved against the decoding side's
/// catalog — the seam that lets a sub-query cross a process boundary to a
/// shard holding its own replica of the schema.
///
/// The human-readable twin of this codec is the RequestParser text grammar
/// (service/request_parser.h): RequestParser::Format renders a parsed
/// request back to its canonical line.

/// Binary message kinds (the `kind` header byte). Distinct from the
/// streaming FrameKind of wire/message.h: these name what a frame's
/// payload *is*, FrameKind names a frame's role in a response stream.
enum class MessageKind : uint8_t {
  kQueryRequest = 0,
  kQueryResponse = 1,
  kTripleCollectRequest = 2,
  kTripleCollectResponse = 3,
  kAdminRequest = 4,
  kAdminResponse = 5,
  kMutationRequest = 6,
  kMutationResponse = 7,
};

/// Bytes of every frame header: magic 'T' 'W', version u8, kind u8,
/// payload length u32 LE.
inline constexpr size_t kFrameHeaderBytes = 8;

/// Default per-frame payload cap. Far above any real frame (the largest
/// responses are full AllTops scans of one pair), yet small enough that a
/// corrupted or hostile length field cannot make a receiver allocate
/// gigabytes before noticing.
inline constexpr size_t kDefaultMaxFramePayload = 64u << 20;  // 64 MiB.

/// Typed outcome of validating a (possibly still-arriving) frame header —
/// the contract a streaming receiver dispatches on without string-matching
/// Status messages.
enum class FrameError : uint8_t {
  kOk = 0,
  /// Every byte seen so far is consistent with a valid frame, but the
  /// frame is not complete yet. A stream reader keeps reading; a decoder
  /// holding the whole message treats this as malformed (truncated).
  kIncomplete = 1,
  /// Bad magic, unknown kind, or a length field beyond the cap — the
  /// bytes can never become a valid frame; a connection carrying them is
  /// poisoned and must be closed.
  kMalformedFrame = 2,
  /// Valid magic but a version this build does not speak. Distinct from
  /// malformed so a mixed-version deployment can answer "upgrade me"
  /// instead of "you sent garbage".
  kUnsupportedVersion = 3,
};

const char* FrameErrorToString(FrameError error);

/// The decoded fixed-size header of one frame.
struct FrameHeader {
  uint8_t version = 0;
  MessageKind kind = MessageKind::kQueryRequest;
  size_t payload_bytes = 0;
  size_t frame_bytes = 0;  // kFrameHeaderBytes + payload_bytes.
};

/// Validates as much of a frame as `buffer` holds, never reading past it:
/// returns kOk when `buffer` starts with one complete valid frame,
/// kIncomplete when more bytes are needed (streaming reads), and a typed
/// error otherwise. `header` (optional) is filled whenever at least the
/// full header was seen and passed validation — including the kIncomplete
/// case, so a socket reader can size its payload read. `max_payload_bytes`
/// caps the length field (kMalformedFrame beyond it).
FrameError InspectFrame(std::string_view buffer, size_t max_payload_bytes,
                        FrameHeader* header);

/// The Status rendering of a frame-level error: kUnsupportedVersion maps
/// to kUnimplemented, everything else to kInvalidArgument, so callers that
/// only speak Status still distinguish "upgrade needed" from "garbage".
Status FrameErrorToStatus(FrameError error);

/// Validates the frame header and returns the message kind without
/// decoding the payload (transport dispatch). The frame must be complete.
Result<MessageKind> PeekMessageKind(std::string_view frame);

/// --- 2-query evaluation calls ---------------------------------------------

void EncodeQueryRequest(const WireRequest& request, std::string* out);
Result<WireRequest> DecodeQueryRequest(std::string_view frame,
                                       const storage::Catalog& db);

void EncodeQueryResponse(const WireResponse& response, std::string* out);
Result<WireResponse> DecodeQueryResponse(std::string_view frame);

/// Reads only the serving stamp of an encoded kQueryResponse frame
/// (placed right after the request id for exactly this purpose), without
/// decoding the result payload — the replica layer's cheap path to
/// replica provenance and shard epoch. Non-query-response frames (e.g.
/// triple-collect responses) fail the frame-kind check.
Result<std::string> PeekResponseStamp(std::string_view frame);

/// --- 3-query scatter phase -------------------------------------------------
///
/// A sharded 3-query resolves its slot selections once, then asks every
/// shard for its slice of the related-pair relation. The request encodes
/// the *resolved* selection (entity-set names, selected ids, slot-pair
/// orientation), so the shard side does no predicate evaluation of its
/// own; the response is the shard's TripleRelatedSets slice.

void EncodeTripleCollectRequest(const engine::TripleSelection& selection,
                                std::string* out);
Result<engine::TripleSelection> DecodeTripleCollectRequest(
    std::string_view frame, const storage::Catalog& db);

void EncodeTripleCollectResponse(const engine::TripleRelatedSets& related,
                                 std::string* out);
Result<engine::TripleRelatedSets> DecodeTripleCollectResponse(
    std::string_view frame);

/// --- Admin channel ---------------------------------------------------------

void EncodeAdminRequest(const AdminRequest& request, std::string* out);
Result<AdminRequest> DecodeAdminRequest(std::string_view frame);

void EncodeAdminResponse(const AdminResponse& response, std::string* out);
Result<AdminResponse> DecodeAdminResponse(std::string_view frame);

/// --- Mutation channel (v5) --------------------------------------------------
///
/// The batch payload rides as one nested MutationBatch encoding
/// (mutation/mutation.h), so the WAL record body and the wire body share
/// one format.

void EncodeMutationRequest(const MutationWireRequest& request,
                           std::string* out);
Result<MutationWireRequest> DecodeMutationRequest(std::string_view frame);

void EncodeMutationResponse(const MutationWireResponse& response,
                            std::string* out);
Result<MutationWireResponse> DecodeMutationResponse(std::string_view frame);

}  // namespace wire
}  // namespace tsb

#endif  // TSB_WIRE_CODEC_H_
