#ifndef TSB_WIRE_MESSAGE_H_
#define TSB_WIRE_MESSAGE_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/nquery.h"
#include "engine/query.h"
#include "mutation/mutation.h"
#include "obs/trace.h"

namespace tsb {
namespace wire {

/// The versioned wire protocol of the topology service: typed request /
/// response messages with two codecs (the RequestParser text grammar for
/// humans, a length-prefixed binary framing for machines — see
/// wire/codec.h), an admission class per request, and a streaming frame
/// model so batch clients pipeline responses as they complete.
///
/// Version history (kWireVersion in every binary frame header):
///   1 — initial: query request/response, triple-collect request/response,
///       stream-end frames; structural predicate trees; Priority +
///       deadline admission fields.
///   2 — query responses carry a serving stamp ("r<replica>:e<epoch>")
///       directly after the request id, so a replica-aware sender can read
///       replica provenance and shard epoch without decoding the result
///       payload (wire::PeekResponseStamp) — the signal the replica health
///       tracker's epoch quarantine runs on.
///   3 — query requests carry ExecOptions::use_columnar (columnar block-scan
///       gate) and ExecStats gained blocks_total/blocks_skipped counters, so
///       zone-map effectiveness is observable across the wire.
///   4 — distributed tracing + admin channel: query requests carry a
///       TraceContext (trace id, parent span id, sampled flag) appended at
///       the payload tail; query responses piggyback the responder's span
///       list after service_seconds, so a frontend assembles one
///       cross-process trace per sampled query. New kAdminRequest /
///       kAdminResponse frames let tools/topctl pull metrics, traces, and
///       slow-query records from a live server. v3 frames still decode
///       (empty trace context, no spans): trace fields sit at the payload
///       tail, so a v3 payload simply ends before them.
///   5 — incremental updates: new kMutationRequest / kMutationResponse
///       frames carry a MutationBatch to a serving process and return the
///       apply outcome (TopologyService::ApplyMutations / the shard
///       servers' mutation hook), so the data graph mutates in place
///       without a full rebuild. New AdminCommand::kCompaction pulls the
///       mutation engine's delta/overlay/compaction status. Query frames
///       are unchanged from v4.
///   6 — cost accounting: every encoded span carries its thread-CPU bill
///       (cpu_ns after duration in the span record), and query responses
///       append the result's resource counters (cpu_ns,
///       bytes_deserialized, catalog_interns, heap_bytes — 4×u64) at the
///       payload tail after the span list, so the shard-side bill merges
///       into the router's ExecStats. New AdminCommand::kCostSnapshot
///       streams an obs::FleetSnapshot (mergeable histograms + cost
///       counters + top-cost queries) for `topctl top`. Query requests
///       are unchanged from v4; v5 and older frames still decode (spans
///       without cpu, zero cost counters).

inline constexpr uint8_t kWireVersion = 6;

/// Oldest version this build still decodes. Encoders always emit
/// kWireVersion; decoders branch on the received header version.
inline constexpr uint8_t kMinWireVersion = 3;

/// Admission class of a request. Interactive top-k lookups and batch
/// SQL-baseline scans differ by orders of magnitude in cost (the paper's
/// Table 2); the service keeps one queue per class and always drains
/// interactive work first, so a batch flood adds at most one
/// already-executing batch query of delay to an interactive request.
enum class Priority : uint8_t {
  kInteractive = 0,
  kBatch = 1,
};

inline constexpr size_t kNumPriorities = 2;

const char* PriorityToString(Priority priority);

/// Stable wire-level error codes — coarser than tsb::Status (clients
/// dispatch on these without string matching), with admission outcomes
/// (kOverloaded / kDeadlineExceeded / kCancelled) that Status does not
/// distinguish.
enum class WireErrorCode : uint8_t {
  kOk = 0,
  kInvalidRequest = 1,    // Malformed or unresolvable request.
  kNotFound = 2,          // Unknown entity set / method target.
  kFailedPrecondition = 3,
  kOverloaded = 4,        // Class admission queue full.
  kDeadlineExceeded = 5,  // Shed: deadline expired while queued.
  kCancelled = 6,         // Stream cancelled before execution.
  kShuttingDown = 7,      // Service stopped accepting work.
  kUnavailable = 8,       // Shard transport failure (no degraded answer).
  kInternal = 9,
};

const char* WireErrorCodeToString(WireErrorCode code);

struct WireError {
  WireErrorCode code = WireErrorCode::kOk;
  std::string message;

  bool ok() const { return code == WireErrorCode::kOk; }
};

/// Best-effort mapping for errors that bubble up as Status (engine
/// failures, parse errors). Admission paths construct their WireError
/// directly with the precise code.
WireErrorCode WireErrorCodeFromStatus(const Status& status);
WireError WireErrorFromStatus(const Status& status);

/// Inverse mapping, for adapters that surface wire frames through the
/// legacy Result<QueryResult> API.
Status StatusFromWireError(const WireError& error);

/// One request on the wire: a 2-query evaluation call plus the envelope
/// fields the serving layer dispatches on. `id` is caller-chosen and
/// echoed verbatim in the response frame, so a client multiplexing many
/// requests over one stream can correlate out-of-order completions.
struct WireRequest {
  uint64_t id = 0;
  Priority priority = Priority::kInteractive;
  /// Admission deadline in seconds, measured from submission; 0 disables.
  /// A request still queued when its deadline expires is shed with
  /// kDeadlineExceeded instead of executing late.
  double deadline_seconds = 0.0;

  engine::TopologyQuery query;
  engine::MethodKind method = engine::MethodKind::kFastTopKEt;
  engine::ExecOptions options;

  /// Distributed-tracing context (v4+). Inactive for untraced traffic and
  /// for every frame decoded from a v3 peer.
  obs::TraceContext trace;
};

/// One response on the wire. `error.ok()` selects between the result
/// payload and the error; `request_id` echoes the request.
struct WireResponse {
  uint64_t request_id = 0;
  /// Who served this response: "r<replica>:e<epoch>" (replica id + the
  /// serving shard's store epoch), or empty when the responder is not
  /// replica-aware. Placed right after the id on the wire so the sender's
  /// replica layer reads it without decoding the result payload.
  std::string serving_stamp;
  WireError error;
  engine::QueryResult result;
  bool from_cache = false;
  double service_seconds = 0.0;

  /// Spans the responder recorded while serving a traced request (v4+),
  /// piggybacked so the requesting frontend absorbs them into its own
  /// trace. Empty for untraced traffic and v3 frames.
  std::vector<obs::Span> spans;
};

/// Renders one execution's ExecStats as span tags for the tracing layer:
/// "path=columnar|row" (from the plan's columnar marker), rows scanned /
/// emitted, and block skip counts when the columnar path ran.
std::string ExecStatsTraceTags(const engine::ExecStats& stats);

/// Builds the canonical serving stamp, e.g. "r1:e3".
std::string MakeServingStamp(uint64_t replica_id, uint64_t epoch);

/// Parses a canonical serving stamp; false when `stamp` is empty or not in
/// the "r<replica>:e<epoch>" form.
bool ParseServingStamp(const std::string& stamp, uint64_t* replica_id,
                       uint64_t* epoch);

/// --- Admin channel (v4) ----------------------------------------------------
///
/// The out-of-band observability pull: tools/topctl sends one
/// kAdminRequest frame to a live server and gets the requested snapshot
/// back as an opaque text body (Prometheus exposition, JSON, rendered
/// traces, or the slow-query log).

enum class AdminCommand : uint8_t {
  kPing = 0,               // Body "pong" — liveness probe.
  kMetricsPrometheus = 1,  // Prometheus text exposition.
  kMetricsJson = 2,        // JSON dump of the same samples.
  kMetricsText = 3,        // Human tables (the ToString renderings).
  kTraces = 4,             // Recent sampled traces as span trees.
  kSlowQueries = 5,        // Recent slow-query records.
  kCompaction = 6,         // Mutation engine status (v5+): generation,
                           // pending pairs, last fold, WAL counters.
  kCostSnapshot = 7,       // Binary obs::FleetSnapshot (v6+): mergeable
                           // histograms + cost counters for `topctl top`.
};

inline constexpr uint8_t kMaxAdminCommand =
    static_cast<uint8_t>(AdminCommand::kCostSnapshot);

const char* AdminCommandToString(AdminCommand command);

/// Parses a topctl-style command name ("metrics", "metrics-json",
/// "metrics-text", "traces", "slowlog", "ping"); false on unknown names.
bool ParseAdminCommand(const std::string& name, AdminCommand* command);

struct AdminRequest {
  AdminCommand command = AdminCommand::kPing;
};

struct AdminResponse {
  WireError error;
  std::string body;
};

/// --- Mutation channel (v5) -------------------------------------------------
///
/// The incremental write path on the wire: a client (or the service's
/// scatter layer) sends one batch of graph mutations to a serving process,
/// which applies it through its MutationEngine — WAL append, overlay
/// re-stage of the dirtied pairs, store swap — and answers with the apply
/// outcome. `id` is caller-chosen and echoed like a query request's.

struct MutationWireRequest {
  uint64_t id = 0;
  mutation::MutationBatch batch;
};

struct MutationWireResponse {
  uint64_t request_id = 0;
  WireError error;
  uint64_t applied_ops = 0;   // Ops applied (0 on error).
  uint64_t dirty_pairs = 0;   // structural + cache-only pairs invalidated.
  double apply_seconds = 0.0;
};

enum class FrameKind : uint8_t {
  /// One completed response (terminal for its request).
  kResponse = 0,
  /// Terminal stream frame: every request of the stream has been answered
  /// (or shed). Delivered exactly once per stream, last.
  kStreamEnd = 1,
};

/// The unit a StreamSink receives. Single submissions deliver exactly one
/// kResponse frame with stream_id 0; a stream delivers one kResponse per
/// request in completion order, then one kStreamEnd.
struct WireFrame {
  FrameKind kind = FrameKind::kResponse;
  uint64_t stream_id = 0;
  WireResponse response;  // Valid when kind == kResponse.
};

/// Receiver side of the streaming service API. The service serializes
/// OnFrame calls per sink (never concurrent for one stream) and guarantees
/// the sink sees every admitted request's terminal frame before Shutdown()
/// returns — a sink may therefore outlive the service. OnFrame runs on a
/// worker thread: keep it light and never call blocking service methods
/// from it.
class StreamSink {
 public:
  virtual ~StreamSink() = default;
  virtual void OnFrame(const WireFrame& frame) = 0;
};

/// A sink that buffers frames and lets a test or adapter block until the
/// stream completes — the convenience implementation used by the legacy
/// batch adapters and throughout the tests.
class CollectingSink : public StreamSink {
 public:
  void OnFrame(const WireFrame& frame) override {
    std::lock_guard<std::mutex> lock(mu_);
    frames_.push_back(frame);
    if (frame.kind == FrameKind::kStreamEnd) ++ends_;
    cv_.notify_all();
  }

  /// Blocks until a kStreamEnd frame arrives.
  void WaitForEnd() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this]() { return ends_ > 0; });
  }

  /// Blocks until at least `n` frames (of any kind) arrived.
  void WaitForFrames(size_t n) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this, n]() { return frames_.size() >= n; });
  }

  std::vector<WireFrame> Frames() const {
    std::lock_guard<std::mutex> lock(mu_);
    return frames_;
  }

  size_t EndCount() const {
    std::lock_guard<std::mutex> lock(mu_);
    return ends_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<WireFrame> frames_;
  size_t ends_ = 0;
};

}  // namespace wire
}  // namespace tsb

#endif  // TSB_WIRE_MESSAGE_H_
