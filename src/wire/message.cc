#include "wire/message.h"

#include <cerrno>
#include <cstdlib>

namespace tsb {
namespace wire {

std::string ExecStatsTraceTags(const engine::ExecStats& stats) {
  const bool columnar = stats.plan.find("columnar") != std::string::npos;
  std::string tags = columnar ? "path=columnar" : "path=row";
  tags += ",rows_scanned=" + std::to_string(stats.rows_scanned);
  tags += ",rows_out=" + std::to_string(stats.rows_out);
  if (stats.blocks_total > 0) {
    tags += ",blocks=" + std::to_string(stats.blocks_skipped) + "/" +
            std::to_string(stats.blocks_total);
  }
  tags += ",cpu_us=" + std::to_string(stats.cpu_ns / 1000);
  if (stats.bytes_deserialized > 0) {
    tags += ",deser_bytes=" + std::to_string(stats.bytes_deserialized);
  }
  if (stats.catalog_interns > 0) {
    tags += ",interns=" + std::to_string(stats.catalog_interns);
  }
  if (stats.heap_bytes > 0) {
    tags += ",heap_bytes=" + std::to_string(stats.heap_bytes);
  }
  return tags;
}

std::string MakeServingStamp(uint64_t replica_id, uint64_t epoch) {
  return "r" + std::to_string(replica_id) + ":e" + std::to_string(epoch);
}

bool ParseServingStamp(const std::string& stamp, uint64_t* replica_id,
                       uint64_t* epoch) {
  if (stamp.size() < 4 || stamp[0] != 'r') return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long replica = std::strtoull(stamp.c_str() + 1, &end, 10);
  if (errno != 0 || end == stamp.c_str() + 1 || end[0] != ':' ||
      end[1] != 'e') {
    return false;
  }
  const char* epoch_begin = end + 2;
  errno = 0;
  const unsigned long long parsed_epoch = std::strtoull(epoch_begin, &end, 10);
  if (errno != 0 || end == epoch_begin || *end != '\0') return false;
  *replica_id = replica;
  *epoch = parsed_epoch;
  return true;
}

const char* PriorityToString(Priority priority) {
  switch (priority) {
    case Priority::kInteractive:
      return "interactive";
    case Priority::kBatch:
      return "batch";
  }
  return "unknown";
}

const char* AdminCommandToString(AdminCommand command) {
  switch (command) {
    case AdminCommand::kPing:
      return "ping";
    case AdminCommand::kMetricsPrometheus:
      return "metrics";
    case AdminCommand::kMetricsJson:
      return "metrics-json";
    case AdminCommand::kMetricsText:
      return "metrics-text";
    case AdminCommand::kTraces:
      return "traces";
    case AdminCommand::kSlowQueries:
      return "slowlog";
    case AdminCommand::kCompaction:
      return "compaction";
    case AdminCommand::kCostSnapshot:
      return "cost-snapshot";
  }
  return "unknown";
}

bool ParseAdminCommand(const std::string& name, AdminCommand* command) {
  for (uint8_t c = 0; c <= kMaxAdminCommand; ++c) {
    const AdminCommand candidate = static_cast<AdminCommand>(c);
    if (name == AdminCommandToString(candidate)) {
      *command = candidate;
      return true;
    }
  }
  return false;
}

const char* WireErrorCodeToString(WireErrorCode code) {
  switch (code) {
    case WireErrorCode::kOk:
      return "OK";
    case WireErrorCode::kInvalidRequest:
      return "INVALID_REQUEST";
    case WireErrorCode::kNotFound:
      return "NOT_FOUND";
    case WireErrorCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case WireErrorCode::kOverloaded:
      return "OVERLOADED";
    case WireErrorCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case WireErrorCode::kCancelled:
      return "CANCELLED";
    case WireErrorCode::kShuttingDown:
      return "SHUTTING_DOWN";
    case WireErrorCode::kUnavailable:
      return "UNAVAILABLE";
    case WireErrorCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

WireErrorCode WireErrorCodeFromStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      return WireErrorCode::kOk;
    case StatusCode::kInvalidArgument:
    case StatusCode::kOutOfRange:
      return WireErrorCode::kInvalidRequest;
    case StatusCode::kNotFound:
      return WireErrorCode::kNotFound;
    case StatusCode::kFailedPrecondition:
    case StatusCode::kAlreadyExists:
      return WireErrorCode::kFailedPrecondition;
    case StatusCode::kResourceExhausted:
      return WireErrorCode::kOverloaded;
    case StatusCode::kInternal:
    case StatusCode::kUnimplemented:
      return WireErrorCode::kInternal;
  }
  return WireErrorCode::kInternal;
}

WireError WireErrorFromStatus(const Status& status) {
  return WireError{WireErrorCodeFromStatus(status), status.message()};
}

Status StatusFromWireError(const WireError& error) {
  switch (error.code) {
    case WireErrorCode::kOk:
      return Status::OK();
    case WireErrorCode::kInvalidRequest:
      return Status::InvalidArgument(error.message);
    case WireErrorCode::kNotFound:
      return Status::NotFound(error.message);
    case WireErrorCode::kFailedPrecondition:
    case WireErrorCode::kCancelled:
    case WireErrorCode::kShuttingDown:
      return Status::FailedPrecondition(error.message);
    case WireErrorCode::kOverloaded:
    case WireErrorCode::kDeadlineExceeded:
      return Status::ResourceExhausted(error.message);
    case WireErrorCode::kUnavailable:
    case WireErrorCode::kInternal:
      return Status::Internal(error.message);
  }
  return Status::Internal(error.message);
}

}  // namespace wire
}  // namespace tsb
