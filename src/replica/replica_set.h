#ifndef TSB_REPLICA_REPLICA_SET_H_
#define TSB_REPLICA_REPLICA_SET_H_

#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "net/endpoint_client.h"
#include "obs/trace.h"
#include "replica/health.h"
#include "service/metrics.h"
#include "service/thread_pool.h"
#include "wire/transport.h"

namespace tsb {
namespace replica {

/// One replica's synchronous frame channel: request frame in, response
/// frame out, under an absolute deadline. The replica-set transport is
/// written against this seam so the failover/hedging machinery is
/// identical over real sockets (SocketReplicaChannel) and the in-process
/// fault-injection channel tests use (shard::LoopbackReplicaChannel).
class ReplicaChannel {
 public:
  virtual ~ReplicaChannel() = default;

  /// One round-trip. `telemetry` (optional) receives byte counts and
  /// reconnect events. Must be safe to call from any thread.
  virtual Result<std::string> RoundTrip(
      const std::string& request, const net::Deadline& deadline,
      net::RoundTripTelemetry* telemetry) = 0;

  /// Where this channel points, for logs ("unix:/tmp/... " or a label).
  virtual std::string Describe() const = 0;
};

/// ReplicaChannel over one net::EndpointClient — pooled connections,
/// reconnect backoff, and the stale-conn retry all apply per replica.
class SocketReplicaChannel : public ReplicaChannel {
 public:
  explicit SocketReplicaChannel(
      net::ShardEndpoint endpoint,
      net::EndpointClientConfig config = net::EndpointClientConfig{})
      : client_(std::move(endpoint), config) {}

  Result<std::string> RoundTrip(const std::string& request,
                                const net::Deadline& deadline,
                                net::RoundTripTelemetry* telemetry) override {
    return client_.RoundTrip(request, deadline, telemetry);
  }

  std::string Describe() const override {
    return client_.endpoint().ToString();
  }

  net::EndpointClient& client() { return client_; }

 private:
  net::EndpointClient client_;
};

struct ReplicaSetConfig {
  /// End-to-end deadline of one logical Send, covering every attempt
  /// (primary, hedge, failovers) under it. Must stay finite — see
  /// SocketTransportConfig::request_timeout_seconds for why.
  double request_timeout_seconds = 30.0;

  /// Hedged reads: when the primary attempt has not answered within the
  /// hedge delay, fire the same request at the next-best replica; first
  /// answer wins, the loser completes and is discarded. The delay is
  /// max(floor, factor × shard RTT p95), or `default` until the shard has
  /// `min_samples` completed attempts to estimate a p95 from.
  bool hedge_enabled = true;
  double hedge_delay_floor_seconds = 0.002;
  double hedge_delay_default_seconds = 0.050;
  double hedge_delay_factor = 2.0;
  uint64_t hedge_min_samples = 32;

  /// Coordinator threads (one logical in-flight Send each); 0 means
  /// min(2 × shards, 16) — mirroring SocketTransportConfig::io_threads.
  size_t coordinator_threads = 0;
  /// Attempt threads (one per in-flight physical round-trip; a logical
  /// Send can hold several at once while hedging); 0 means
  /// min(2 × total replicas, 32).
  size_t attempt_threads = 0;

  HealthConfig health;
};

/// wire::ShardTransport over an N-shards × R-replicas endpoint grid: the
/// replica-aware layer between the scatter-gather executor and the
/// sockets. Every shard's replicas are byte-identical by construction
/// (deterministic builds — see README "Replication"), so any of them can
/// serve any sub-query and the work here is pure routing:
///
///  - Load routing: each sub-query goes to the replica with the best
///    (health tier, outstanding requests, RTT EWMA) — the least-loaded
///    healthy replica, with ejected/quarantined ones ordered last but
///    never unreachable.
///  - Hedged reads: a primary that dawdles past the p95-derived hedge
///    delay gets a second copy fired at the next replica; first answer
///    wins, the loser is discarded (its attempt still completes and
///    settles its own accounting).
///  - Failover: a failed attempt moves to the next untried replica
///    immediately. Only when *every* replica of a shard has failed does
///    the future resolve to a Status — which the executor degrades to
///    partial=true. A single killed process is therefore invisible in
///    results: zero-partial fan-out.
///  - Health: outcomes and serving stamps feed the ReplicaHealthTracker;
///    suspect and ejected replicas are probed by live traffic (the probe
///    is just a routed request, so a recovered replica reinstates itself
///    and a dead one walks the ladder to ejection), and
///    stamps lagging the shard's epoch high-water mark quarantine the
///    replica until it catches up.
///
/// From the executor's point of view this is exactly a SocketTransport:
/// Send never blocks, the future always becomes ready, failures come back
/// as Status. Swapping R=1 SocketTransport for R>1 ReplicaSetTransport
/// changes no executor code.
class ReplicaSetTransport : public wire::ShardTransport {
 public:
  /// `channels[s]` are shard s's replicas, best-effort identical content;
  /// every shard needs ≥ 1. `transport_metrics` (optional, non-owning)
  /// receives the per-shard logical view (one row per Send, as with
  /// SocketTransport) — pass the executor's transport_metrics() so
  /// dashboards stay comparable across transports; per-replica telemetry
  /// lives in replica_metrics().
  ReplicaSetTransport(
      std::vector<std::vector<std::unique_ptr<ReplicaChannel>>> channels,
      ReplicaSetConfig config = ReplicaSetConfig{},
      service::TransportMetrics* transport_metrics = nullptr);
  ~ReplicaSetTransport();

  ReplicaSetTransport(const ReplicaSetTransport&) = delete;
  ReplicaSetTransport& operator=(const ReplicaSetTransport&) = delete;

  size_t num_shards() const override { return channels_.size(); }
  size_t num_replicas(size_t shard) const {
    return channels_[shard].size();
  }

  std::future<Result<std::string>> Send(size_t shard,
                                        std::string request) override;

  /// Traced Send: every physical attempt under this logical request —
  /// primary, piggybacked probe, hedge, failovers — records a
  /// "replica.attempt" span into `trace` under `parent_span_id`, tagged
  /// with the replica and what kind of attempt it was. Spans settle from
  /// the attempt tasks themselves, so a hedge loser that finishes after
  /// the logical request is still traced.
  std::future<Result<std::string>> SendTraced(
      size_t shard, std::string request,
      const std::shared_ptr<obs::QueryTrace>& trace,
      uint64_t parent_span_id) override;

  /// Synchronous logical round-trip (what Send runs on a coordinator
  /// thread): routing, hedging, and failover included.
  Result<std::string> RoundTrip(size_t shard, const std::string& request);

  service::ReplicaMetrics& replica_metrics() { return replica_metrics_; }
  const service::ReplicaMetrics& replica_metrics() const {
    return replica_metrics_;
  }
  ReplicaHealthTracker& health() { return tracker_; }
  const ReplicaHealthTracker& health() const { return tracker_; }

  ReplicaChannel& channel(size_t shard, size_t rep) {
    return *channels_[shard][rep];
  }

  /// The hedge delay currently in effect for `shard` (tests, dashboards).
  double HedgeDelaySeconds(size_t shard) const;

 private:
  struct SendState;  // Shared coordinator/attempt rendezvous.

  Result<std::string> RoundTripFrom(
      size_t shard, const std::string& request,
      std::chrono::steady_clock::time_point start,
      const std::shared_ptr<obs::QueryTrace>& trace = nullptr,
      uint64_t parent_span_id = 0);

  /// Best untried replica by (tier, outstanding, RTT EWMA); returns false
  /// when every replica was tried.
  bool PickReplica(size_t shard, const std::vector<bool>& tried,
                   std::chrono::steady_clock::time_point now,
                   size_t* out) const;

  /// Submits one physical attempt; false if the attempt pool is gone.
  bool LaunchAttempt(size_t shard, size_t rep,
                     const std::shared_ptr<SendState>& state, bool is_probe,
                     bool is_hedge, bool is_failover,
                     const net::Deadline& deadline);

  std::vector<std::vector<std::unique_ptr<ReplicaChannel>>> channels_;
  ReplicaSetConfig config_;
  service::TransportMetrics* transport_metrics_;
  service::ReplicaMetrics replica_metrics_;
  ReplicaHealthTracker tracker_;
  // Pools last: destroyed first, so in-flight tasks never outlive the
  // members they reference. Attempts never submit to pools and
  // coordinators wait on a condition variable, not on pool futures of
  // their own pool — the wait-for graph stays acyclic.
  service::ThreadPool attempt_pool_;
  service::ThreadPool coordinator_pool_;
};

}  // namespace replica
}  // namespace tsb

#endif  // TSB_REPLICA_REPLICA_SET_H_
