#ifndef TSB_REPLICA_HEALTH_H_
#define TSB_REPLICA_HEALTH_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "service/metrics.h"

namespace tsb {
namespace replica {

/// Health of one replica, as judged by the sending side.
///
///   kHealthy ──failure──▶ kSuspect ──failures ≥ threshold──▶ kEjected
///      ▲                     │ success                          │
///      └─────────────────────┴── success (reinstatement) ◀──────┘
///
/// kQuarantined is orthogonal to the failure ladder: a replica whose
/// serving stamp carries an older epoch than the newest this shard has
/// served (it lags a live rebuild). It answers correctly for its epoch —
/// the ranked merge tolerates mixed epochs mid-roll — but routing prefers
/// caught-up siblings; the quarantine clears by itself the moment the
/// replica serves the current epoch.
enum class ReplicaHealth {
  kHealthy,
  kSuspect,      // At least one recent failure; still routable.
  kEjected,      // Hit the failure threshold; probed, not routed.
  kQuarantined,  // Alive but serving a stale epoch.
};

const char* ReplicaHealthToString(ReplicaHealth health);

struct HealthConfig {
  /// Consecutive failures that move a replica suspect → ejected.
  uint64_t failures_to_eject = 3;
  /// Suspect and ejected replicas receive one probe request per interval.
  /// A probe that answers reinstates the replica; one that fails advances
  /// the failure count. Probes are what move the ladder at all: load
  /// routing stops picking a replica after its first failure, so without
  /// them a half-dead replica would sit in suspect forever.
  double probe_interval_seconds = 0.25;
};

/// Routing tiers, lower is better. The router sorts candidates by
/// (tier, outstanding, rtt_ewma) and walks the list on failover — an
/// ejected or quarantined replica is last-resort, never unreachable, so a
/// shard only degrades to partial when every replica actually failed.
enum RankTier {
  kTierHealthy = 0,
  kTierSuspect = 1,
  kTierEjectedProbeDue = 2,  // Ejected, and a probe is due — try it.
  kTierQuarantined = 3,
  kTierEjected = 4,
};

/// Tracks per-(shard, replica) health and per-shard epoch high-water
/// marks. Pure bookkeeping — it never talks to sockets; the transport
/// feeds it attempt outcomes and serving stamps and reads ranks back.
///
/// Thread safety: all methods are safe from any thread (one tracker-wide
/// mutex; every operation is O(1) field work).
class ReplicaHealthTracker {
 public:
  using TimePoint = std::chrono::steady_clock::time_point;

  /// `metrics` (optional, non-owning) receives transition counts
  /// (ejections, reinstatements, quarantines).
  explicit ReplicaHealthTracker(std::vector<size_t> replicas_per_shard,
                                HealthConfig config = HealthConfig{},
                                service::ReplicaMetrics* metrics = nullptr);

  size_t num_shards() const { return shards_.size(); }
  size_t num_replicas(size_t shard) const {
    return shards_[shard].replicas.size();
  }

  /// A response arrived from (shard, replica) carrying `epoch` in its
  /// serving stamp. Clears the failure ladder (reinstating ejected
  /// replicas), then applies epoch quarantine: an epoch behind the
  /// shard's high-water mark quarantines the replica; catching up heals
  /// it.
  void OnSuccess(size_t shard, size_t replica, uint64_t epoch,
                 TimePoint now);

  /// An attempt to (shard, replica) produced no response.
  void OnFailure(size_t shard, size_t replica, TimePoint now);

  /// Claims the due probe of a suspect or ejected replica: returns true
  /// at most once per probe interval (concurrent senders race for it;
  /// losers route normally), and pushes the next probe out so one
  /// straggler can't be flooded. False when the replica is neither
  /// suspect nor ejected.
  bool StartProbe(size_t shard, size_t replica, TimePoint now);

  /// Routing tier of (shard, replica) at `now` (see RankTier).
  int Rank(size_t shard, size_t replica, TimePoint now) const;

  ReplicaHealth state(size_t shard, size_t replica) const;
  uint64_t consecutive_failures(size_t shard, size_t replica) const;
  /// Newest epoch any replica of `shard` has served.
  uint64_t shard_epoch(size_t shard) const;
  /// Newest epoch this replica itself has served.
  uint64_t replica_epoch(size_t shard, size_t replica) const;

 private:
  struct ReplicaState {
    ReplicaHealth health = ReplicaHealth::kHealthy;
    uint64_t consecutive_failures = 0;
    uint64_t last_epoch = 0;
    bool epoch_seen = false;  // last_epoch is meaningful.
    TimePoint next_probe{};
  };

  struct ShardState {
    std::vector<ReplicaState> replicas;
    uint64_t max_epoch = 0;
    bool epoch_seen = false;
  };

  void CheckIndex(size_t shard, size_t replica) const;

  HealthConfig config_;
  service::ReplicaMetrics* metrics_;
  mutable std::mutex mu_;
  std::vector<ShardState> shards_;
};

}  // namespace replica
}  // namespace tsb

#endif  // TSB_REPLICA_HEALTH_H_
