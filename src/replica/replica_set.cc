#include "replica/replica_set.h"

#include <algorithm>
#include <condition_variable>
#include <mutex>
#include <utility>

#include "common/logging.h"
#include "wire/codec.h"
#include "wire/message.h"

namespace tsb {
namespace replica {

namespace {

std::chrono::steady_clock::duration Secs(double seconds) {
  return std::chrono::duration_cast<std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(seconds));
}

size_t ResolveCoordinatorThreads(size_t requested, size_t num_shards) {
  if (requested > 0) return requested;
  return std::max<size_t>(2, std::min<size_t>(2 * num_shards, 16));
}

size_t ResolveAttemptThreads(size_t requested, size_t total_replicas) {
  if (requested > 0) return requested;
  return std::max<size_t>(2, std::min<size_t>(2 * total_replicas, 32));
}

std::vector<size_t> ReplicaCounts(
    const std::vector<std::vector<std::unique_ptr<ReplicaChannel>>>&
        channels) {
  std::vector<size_t> counts;
  counts.reserve(channels.size());
  for (const auto& shard : channels) counts.push_back(shard.size());
  return counts;
}

size_t TotalReplicas(const std::vector<size_t>& counts) {
  size_t total = 0;
  for (size_t c : counts) total += c;
  return total;
}

}  // namespace

/// The rendezvous between one logical Send's coordinator and its physical
/// attempts. Attempts own a shared_ptr, so the state (and the request
/// bytes inside it) outlives a coordinator that returned on deadline
/// while a loser attempt was still on the wire.
struct ReplicaSetTransport::SendState {
  std::mutex mu;
  std::condition_variable cv;
  std::string request;

  bool done = false;  // winner_frame holds the answer.
  std::string winner_frame;
  size_t winner_replica = 0;
  bool winner_was_hedge = false;

  size_t launched = 0;
  size_t finished = 0;
  Status last_error = Status::OK();

  // Wire bytes over all attempts (for the logical TransportMetrics row).
  uint64_t bytes_sent = 0;
  uint64_t bytes_received = 0;

  // Tracing sink (null for untraced traffic). QueryTrace is internally
  // synchronized and attempts hold the shared_ptr, so a hedge loser that
  // settles after the logical request still records its span safely.
  std::shared_ptr<obs::QueryTrace> trace;
  uint64_t parent_span_id = 0;
};

ReplicaSetTransport::ReplicaSetTransport(
    std::vector<std::vector<std::unique_ptr<ReplicaChannel>>> channels,
    ReplicaSetConfig config, service::TransportMetrics* transport_metrics)
    : channels_(std::move(channels)),
      config_(config),
      transport_metrics_(transport_metrics),
      replica_metrics_(ReplicaCounts(channels_)),
      tracker_(ReplicaCounts(channels_), config.health, &replica_metrics_),
      attempt_pool_(ResolveAttemptThreads(
          config.attempt_threads, TotalReplicas(ReplicaCounts(channels_)))),
      coordinator_pool_(ResolveCoordinatorThreads(config.coordinator_threads,
                                                  channels_.size())) {
  TSB_CHECK(!channels_.empty());
  for (const auto& shard : channels_) TSB_CHECK(!shard.empty());
  if (transport_metrics_ != nullptr) {
    TSB_CHECK_GE(transport_metrics_->num_shards(), channels_.size());
  }
}

ReplicaSetTransport::~ReplicaSetTransport() {
  // Coordinators first (they may still launch attempts), then attempts.
  coordinator_pool_.Shutdown();
  attempt_pool_.Shutdown();
}

double ReplicaSetTransport::HedgeDelaySeconds(size_t shard) const {
  const double p95 =
      replica_metrics_.ShardRttP95(shard, config_.hedge_min_samples);
  if (p95 <= 0.0) return config_.hedge_delay_default_seconds;
  return std::max(config_.hedge_delay_floor_seconds,
                  config_.hedge_delay_factor * p95);
}

bool ReplicaSetTransport::PickReplica(
    size_t shard, const std::vector<bool>& tried,
    std::chrono::steady_clock::time_point now, size_t* out) const {
  bool found = false;
  int best_tier = 0;
  uint64_t best_outstanding = 0;
  double best_ewma = 0.0;
  for (size_t rep = 0; rep < channels_[shard].size(); ++rep) {
    if (tried[rep]) continue;
    const int tier = tracker_.Rank(shard, rep, now);
    const uint64_t outstanding = replica_metrics_.Outstanding(shard, rep);
    const double ewma = replica_metrics_.RttEwma(shard, rep);
    const bool better =
        !found || tier < best_tier ||
        (tier == best_tier &&
         (outstanding < best_outstanding ||
          (outstanding == best_outstanding && ewma < best_ewma)));
    if (better) {
      found = true;
      best_tier = tier;
      best_outstanding = outstanding;
      best_ewma = ewma;
      *out = rep;
    }
  }
  return found;
}

bool ReplicaSetTransport::LaunchAttempt(
    size_t shard, size_t rep, const std::shared_ptr<SendState>& state,
    bool is_probe, bool is_hedge, bool is_failover,
    const net::Deadline& deadline) {
  {
    std::lock_guard<std::mutex> lock(state->mu);
    ++state->launched;
  }
  auto task = [this, shard, rep, state, is_probe, is_hedge, is_failover,
               deadline]() {
    // Attempt/outcome pairing lives inside the task: the gauges settle
    // even when the logical request already finished (hedge loser) or its
    // caller abandoned the future (cancellation-safe accounting).
    replica_metrics_.RecordAttempt(shard, rep, is_probe, is_hedge);
    const double start_unix =
        state->trace != nullptr ? obs::UnixSeconds() : 0.0;
    const auto attempt_start = std::chrono::steady_clock::now();
    net::RoundTripTelemetry telemetry;
    Result<std::string> response =
        channels_[shard][rep]->RoundTrip(state->request, deadline,
                                         &telemetry);
    const auto now = std::chrono::steady_clock::now();
    const double rtt =
        std::chrono::duration<double>(now - attempt_start).count();
    replica_metrics_.RecordOutcome(shard, rep, rtt, response.ok());
    if (state->trace != nullptr) {
      std::string tags = "shard=" + std::to_string(shard) +
                         ",replica=" + std::to_string(rep) +
                         (response.ok() ? ",ok=1" : ",ok=0");
      if (is_hedge) tags += ",hedge=1";
      if (is_probe) tags += ",probe=1";
      if (is_failover) tags += ",failover=1";
      state->trace->AddSpan("replica.attempt", state->parent_span_id,
                            start_unix, rtt, std::move(tags));
    }
    if (transport_metrics_ != nullptr) {
      for (uint64_t i = 0; i < telemetry.reconnects; ++i) {
        transport_metrics_->RecordReconnect(shard);
      }
    }
    if (response.ok()) {
      uint64_t replica_id = 0;
      uint64_t epoch = 0;
      Result<std::string> stamp = wire::PeekResponseStamp(*response);
      if (stamp.ok() &&
          wire::ParseServingStamp(*stamp, &replica_id, &epoch)) {
        tracker_.OnSuccess(shard, rep, epoch, now);
      } else {
        // Unstamped response (a non-replica-aware server): clears the
        // failure ladder without moving the epoch high-water mark.
        tracker_.OnSuccess(shard, rep, tracker_.shard_epoch(shard), now);
      }
    } else {
      tracker_.OnFailure(shard, rep, now);
    }
    {
      std::lock_guard<std::mutex> lock(state->mu);
      ++state->finished;
      state->bytes_sent += telemetry.bytes_sent;
      state->bytes_received += telemetry.bytes_received;
      if (response.ok() && !state->done) {
        state->done = true;
        state->winner_frame = std::move(*response);
        state->winner_replica = rep;
        state->winner_was_hedge = is_hedge;
      } else if (!response.ok()) {
        state->last_error = response.status();
      }
      // Else: a losing success — discarded (replicas are identical, the
      // winner's frame already carries the same answer).
    }
    state->cv.notify_all();
  };
  std::future<void> future = attempt_pool_.Submit(std::move(task));
  if (!future.valid()) {
    std::lock_guard<std::mutex> lock(state->mu);
    --state->launched;
    return false;
  }
  return true;
}

Result<std::string> ReplicaSetTransport::RoundTrip(
    size_t shard, const std::string& request) {
  return RoundTripFrom(shard, request, std::chrono::steady_clock::now());
}

Result<std::string> ReplicaSetTransport::RoundTripFrom(
    size_t shard, const std::string& request,
    std::chrono::steady_clock::time_point start,
    const std::shared_ptr<obs::QueryTrace>& trace,
    uint64_t parent_span_id) {
  if (shard >= channels_.size()) {
    return Status::InvalidArgument("no shard " + std::to_string(shard));
  }
  const size_t num_replicas = channels_[shard].size();
  // One absolute deadline covers every attempt beneath this Send —
  // primary, probe, hedge, and failovers all charge the same budget.
  net::Deadline deadline;
  if (config_.request_timeout_seconds > 0.0) {
    deadline = start + Secs(config_.request_timeout_seconds);
  }

  auto state = std::make_shared<SendState>();
  state->request = request;
  state->trace = trace;
  state->parent_span_id = parent_span_id;
  std::vector<bool> tried(num_replicas, false);
  const auto untried_left = [&tried]() {
    for (bool t : tried) {
      if (!t) return true;
    }
    return false;
  };

  auto now = std::chrono::steady_clock::now();
  size_t primary = 0;
  TSB_CHECK(PickReplica(shard, tried, now, &primary));
  tried[primary] = true;
  if (!LaunchAttempt(shard, primary, state,
                     tracker_.StartProbe(shard, primary, now),
                     /*is_hedge=*/false, /*is_failover=*/false, deadline)) {
    return Status::FailedPrecondition("replica transport shutting down");
  }
  // Piggyback at most one recovery probe: a suspect or ejected sibling
  // whose probe interval elapsed gets the same request — live traffic is
  // the probe stream, and since replicas are identical a probe that
  // answers first simply wins.
  for (size_t rep = 0; rep < num_replicas; ++rep) {
    if (tried[rep]) continue;
    const ReplicaHealth sibling = tracker_.state(shard, rep);
    if ((sibling == ReplicaHealth::kEjected ||
         sibling == ReplicaHealth::kSuspect) &&
        tracker_.StartProbe(shard, rep, now)) {
      tried[rep] = true;
      LaunchAttempt(shard, rep, state, /*is_probe=*/true,
                    /*is_hedge=*/false, /*is_failover=*/false, deadline);
      break;
    }
  }

  const auto hedge_at = start + Secs(HedgeDelaySeconds(shard));
  bool hedged = false;
  Result<std::string> result = Status::Internal("unreachable");

  std::unique_lock<std::mutex> lock(state->mu);
  while (true) {
    if (state->done) {
      result = std::move(state->winner_frame);
      if (state->winner_was_hedge) {
        replica_metrics_.RecordHedgeWin(shard, state->winner_replica);
      }
      break;
    }
    now = std::chrono::steady_clock::now();
    if (net::DeadlineExpired(deadline)) {
      result = Status::ResourceExhausted(
          "shard " + std::to_string(shard) +
          ": replica-set deadline expired");
      break;
    }
    if (state->finished == state->launched) {
      // Every launched attempt failed: fail over to the next untried
      // replica, or surface the last failure once the set is exhausted.
      lock.unlock();
      size_t next = 0;
      if (PickReplica(shard, tried, now, &next)) {
        tried[next] = true;
        replica_metrics_.RecordFailover(shard);
        const bool launched =
            LaunchAttempt(shard, next, state,
                          tracker_.StartProbe(shard, next, now),
                          /*is_hedge=*/false, /*is_failover=*/true,
                          deadline);
        lock.lock();
        if (launched) continue;
        result = Status::FailedPrecondition(
            "replica transport shutting down");
        break;
      }
      replica_metrics_.RecordExhausted(shard);
      lock.lock();
      result = state->last_error.ok()
                   ? Status::Internal("shard " + std::to_string(shard) +
                                      ": all replicas failed")
                   : state->last_error;
      break;
    }
    const bool can_hedge =
        config_.hedge_enabled && !hedged && untried_left();
    if (can_hedge && now >= hedge_at) {
      // The primary is past the hedge delay: fire the same request at the
      // next-best replica. First answer wins; the loser completes on the
      // attempt pool and is discarded.
      hedged = true;
      lock.unlock();
      size_t next = 0;
      if (PickReplica(shard, tried, now, &next)) {
        tried[next] = true;
        replica_metrics_.RecordHedgeLaunched(shard);
        LaunchAttempt(shard, next, state,
                      tracker_.StartProbe(shard, next, now),
                      /*is_hedge=*/true, /*is_failover=*/false, deadline);
      }
      lock.lock();
      continue;
    }
    auto wait_until = now + std::chrono::seconds(1);
    if (deadline.has_value() && *deadline < wait_until) {
      wait_until = *deadline;
    }
    if (can_hedge && hedge_at < wait_until) wait_until = hedge_at;
    state->cv.wait_until(lock, wait_until);
  }
  const uint64_t bytes_sent = state->bytes_sent;
  const uint64_t bytes_received = state->bytes_received;
  lock.unlock();

  if (transport_metrics_ != nullptr) {
    // The logical per-shard row: one round-trip per Send, as with
    // SocketTransport, so R=1 and R>1 dashboards stay comparable.
    // (Bytes of attempts still in flight land in later rows.)
    const double rtt = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start)
                           .count();
    transport_metrics_->RecordRoundTrip(shard, bytes_sent, bytes_received,
                                        rtt, result.ok());
  }
  return result;
}

std::future<Result<std::string>> ReplicaSetTransport::Send(
    size_t shard, std::string request) {
  return SendTraced(shard, std::move(request), nullptr, 0);
}

std::future<Result<std::string>> ReplicaSetTransport::SendTraced(
    size_t shard, std::string request,
    const std::shared_ptr<obs::QueryTrace>& trace,
    uint64_t parent_span_id) {
  const auto start = std::chrono::steady_clock::now();
  auto task = [this, shard, start, trace, parent_span_id,
               request = std::move(request)]() -> Result<std::string> {
    return RoundTripFrom(shard, request, start, trace, parent_span_id);
  };
  std::future<Result<std::string>> future =
      coordinator_pool_.Submit(std::move(task));
  if (!future.valid()) {
    std::promise<Result<std::string>> ready;
    ready.set_value(
        Status::FailedPrecondition("replica transport shutting down"));
    future = ready.get_future();
  }
  return future;
}

}  // namespace replica
}  // namespace tsb
