#include "replica/health.h"

#include "common/logging.h"

namespace tsb {
namespace replica {

const char* ReplicaHealthToString(ReplicaHealth health) {
  switch (health) {
    case ReplicaHealth::kHealthy:
      return "healthy";
    case ReplicaHealth::kSuspect:
      return "suspect";
    case ReplicaHealth::kEjected:
      return "ejected";
    case ReplicaHealth::kQuarantined:
      return "quarantined";
  }
  return "unknown";
}

ReplicaHealthTracker::ReplicaHealthTracker(
    std::vector<size_t> replicas_per_shard, HealthConfig config,
    service::ReplicaMetrics* metrics)
    : config_(config), metrics_(metrics),
      shards_(replicas_per_shard.size()) {
  TSB_CHECK_GE(config_.failures_to_eject, 1u);
  for (size_t s = 0; s < replicas_per_shard.size(); ++s) {
    TSB_CHECK_GE(replicas_per_shard[s], 1u);
    shards_[s].replicas.resize(replicas_per_shard[s]);
  }
}

void ReplicaHealthTracker::CheckIndex(size_t shard, size_t replica) const {
  TSB_CHECK_LT(shard, shards_.size());
  TSB_CHECK_LT(replica, shards_[shard].replicas.size());
}

void ReplicaHealthTracker::OnSuccess(size_t shard, size_t replica,
                                     uint64_t epoch, TimePoint now) {
  (void)now;
  CheckIndex(shard, replica);
  std::lock_guard<std::mutex> lock(mu_);
  ShardState& s = shards_[shard];
  ReplicaState& r = s.replicas[replica];
  r.consecutive_failures = 0;
  if (r.health == ReplicaHealth::kEjected ||
      r.health == ReplicaHealth::kQuarantined) {
    if (metrics_ != nullptr) metrics_->RecordReinstatement(shard, replica);
  }
  r.health = ReplicaHealth::kHealthy;
  // Epoch bookkeeping after the ladder reset, so a reinstated replica
  // that is *also* stale lands in quarantine, not healthy.
  r.last_epoch = epoch;
  r.epoch_seen = true;
  if (!s.epoch_seen || epoch > s.max_epoch) {
    s.max_epoch = epoch;
    s.epoch_seen = true;
  }
  if (epoch < s.max_epoch) {
    r.health = ReplicaHealth::kQuarantined;
    if (metrics_ != nullptr) metrics_->RecordQuarantine(shard, replica);
  }
}

void ReplicaHealthTracker::OnFailure(size_t shard, size_t replica,
                                     TimePoint now) {
  CheckIndex(shard, replica);
  std::lock_guard<std::mutex> lock(mu_);
  ReplicaState& r = shards_[shard].replicas[replica];
  ++r.consecutive_failures;
  if (r.health == ReplicaHealth::kHealthy) {
    r.health = ReplicaHealth::kSuspect;
  }
  // Every failure pushes the probe out one interval. Load routing stops
  // picking a replica after its first failure (healthier siblings always
  // rank ahead), so without probe traffic the ladder would freeze at
  // suspect — probes are what move it, to recovery or to ejection.
  r.next_probe =
      now + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(config_.probe_interval_seconds));
  if (r.consecutive_failures >= config_.failures_to_eject &&
      r.health != ReplicaHealth::kEjected) {
    r.health = ReplicaHealth::kEjected;
    if (metrics_ != nullptr) metrics_->RecordEjection(shard, replica);
  }
}

bool ReplicaHealthTracker::StartProbe(size_t shard, size_t replica,
                                      TimePoint now) {
  CheckIndex(shard, replica);
  std::lock_guard<std::mutex> lock(mu_);
  ReplicaState& r = shards_[shard].replicas[replica];
  if (r.health != ReplicaHealth::kEjected &&
      r.health != ReplicaHealth::kSuspect) {
    return false;
  }
  if (now < r.next_probe) return false;
  r.next_probe =
      now + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(config_.probe_interval_seconds));
  return true;
}

int ReplicaHealthTracker::Rank(size_t shard, size_t replica,
                               TimePoint now) const {
  CheckIndex(shard, replica);
  std::lock_guard<std::mutex> lock(mu_);
  const ReplicaState& r = shards_[shard].replicas[replica];
  switch (r.health) {
    case ReplicaHealth::kHealthy:
      return kTierHealthy;
    case ReplicaHealth::kSuspect:
      return kTierSuspect;
    case ReplicaHealth::kQuarantined:
      return kTierQuarantined;
    case ReplicaHealth::kEjected:
      return now >= r.next_probe ? kTierEjectedProbeDue : kTierEjected;
  }
  return kTierEjected;
}

ReplicaHealth ReplicaHealthTracker::state(size_t shard,
                                          size_t replica) const {
  CheckIndex(shard, replica);
  std::lock_guard<std::mutex> lock(mu_);
  return shards_[shard].replicas[replica].health;
}

uint64_t ReplicaHealthTracker::consecutive_failures(size_t shard,
                                                    size_t replica) const {
  CheckIndex(shard, replica);
  std::lock_guard<std::mutex> lock(mu_);
  return shards_[shard].replicas[replica].consecutive_failures;
}

uint64_t ReplicaHealthTracker::shard_epoch(size_t shard) const {
  TSB_CHECK_LT(shard, shards_.size());
  std::lock_guard<std::mutex> lock(mu_);
  return shards_[shard].max_epoch;
}

uint64_t ReplicaHealthTracker::replica_epoch(size_t shard,
                                             size_t replica) const {
  CheckIndex(shard, replica);
  std::lock_guard<std::mutex> lock(mu_);
  return shards_[shard].replicas[replica].last_epoch;
}

}  // namespace replica
}  // namespace tsb
