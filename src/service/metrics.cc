#include "service/metrics.h"

#include <algorithm>
#include <cstdio>

#include "common/logging.h"
#include "shard/sharded_store.h"

namespace tsb {
namespace service {

namespace {

/// The registry-facing view of a LatencyHistogram (cumulative buckets).
obs::HistogramValue HistValue(const obs::LatencyHistogram& hist) {
  obs::HistogramValue value;
  value.count = hist.count();
  value.sum = hist.sum();
  value.buckets = hist.CumulativeBuckets();
  return value;
}

}  // namespace

void LatencyReservoir::Record(double seconds) {
  ++count_;
  sum_ += seconds;
  max_ = std::max(max_, seconds);
  if (sample_.size() < kCapacity) {
    sample_.push_back(seconds);
    return;
  }
  // Algorithm-R style replacement with a deterministic slot draw: the
  // multiplicative hash spreads the counter uniformly over [0, count_).
  uint64_t draw = (count_ * 0x9e3779b97f4a7c15ULL) >> 11;
  uint64_t pos = draw % count_;
  if (pos < kCapacity) sample_[pos] = seconds;
}

LatencyReservoir::Summary LatencyReservoir::Summarize() const {
  Summary s;
  s.count = count_;
  if (count_ == 0) return s;
  s.mean = sum_ / static_cast<double>(count_);
  s.max = max_;
  std::vector<double> sorted = sample_;
  std::sort(sorted.begin(), sorted.end());
  auto percentile = [&sorted](double p) {
    size_t idx = static_cast<size_t>(p * static_cast<double>(sorted.size()));
    return sorted[std::min(idx, sorted.size() - 1)];
  };
  s.p50 = percentile(0.50);
  s.p95 = percentile(0.95);
  s.p99 = percentile(0.99);
  return s;
}

void LatencyReservoir::Reset() {
  sample_.clear();
  count_ = 0;
  sum_ = 0.0;
  max_ = 0.0;
}

std::string ServiceMetrics::SlotName(size_t slot) {
  if (slot == kTripleSlot) return "Triple";
  return engine::MethodKindToString(static_cast<engine::MethodKind>(slot));
}

void ServiceMetrics::RecordRequest(size_t slot, double seconds,
                                   bool cache_hit, bool ok) {
  TSB_CHECK_LT(slot, kNumSlots);
  Slot& s = slots_[slot];
  std::lock_guard<std::mutex> lock(s.mu);
  ++s.requests;
  if (cache_hit) ++s.cache_hits;
  if (!ok) ++s.errors;
  s.latency.Record(seconds);
  s.latency_hist.Record(seconds);
}

void ServiceMetrics::RecordCost(size_t slot, const obs::CostCounters& cost) {
  TSB_CHECK_LT(slot, kNumSlots);
  Slot& s = slots_[slot];
  std::lock_guard<std::mutex> lock(s.mu);
  s.cost += cost;
}

void ServiceMetrics::RecordRejected(size_t cls) {
  {
    std::lock_guard<std::mutex> lock(rejected_mu_);
    ++rejected_;
  }
  TSB_CHECK_LT(cls, kNumClasses);
  std::lock_guard<std::mutex> lock(classes_[cls].mu);
  ++classes_[cls].rejected;
}

void ServiceMetrics::RecordAdmitted(size_t cls) {
  TSB_CHECK_LT(cls, kNumClasses);
  std::lock_guard<std::mutex> lock(classes_[cls].mu);
  ++classes_[cls].admitted;
}

void ServiceMetrics::RecordDeadlineShed(size_t cls) {
  TSB_CHECK_LT(cls, kNumClasses);
  std::lock_guard<std::mutex> lock(classes_[cls].mu);
  ++classes_[cls].deadline_shed;
}

void ServiceMetrics::RecordCancelled(size_t cls) {
  TSB_CHECK_LT(cls, kNumClasses);
  std::lock_guard<std::mutex> lock(classes_[cls].mu);
  ++classes_[cls].cancelled;
}

void ServiceMetrics::RecordClassLatency(size_t cls, double seconds) {
  TSB_CHECK_LT(cls, kNumClasses);
  std::lock_guard<std::mutex> lock(classes_[cls].mu);
  classes_[cls].latency.Record(seconds);
  classes_[cls].latency_hist.Record(seconds);
}

void ServiceMetrics::RecordScanStats(uint64_t rows_scanned,
                                     uint64_t blocks_total,
                                     uint64_t blocks_skipped) {
  std::lock_guard<std::mutex> lock(scan_mu_);
  scan_rows_scanned_ += rows_scanned;
  scan_blocks_total_ += blocks_total;
  scan_blocks_skipped_ += blocks_skipped;
}

void ServiceMetrics::SetShardRows(std::vector<uint64_t> rows) {
  std::lock_guard<std::mutex> lock(shard_mu_);
  shard_rows_ = std::move(rows);
}

void ServiceMetrics::Reset() {
  for (Slot& s : slots_) {
    std::lock_guard<std::mutex> lock(s.mu);
    s.requests = 0;
    s.cache_hits = 0;
    s.errors = 0;
    s.latency.Reset();
    s.latency_hist.Reset();
    s.cost = obs::CostCounters{};
  }
  for (ClassSlot& c : classes_) {
    std::lock_guard<std::mutex> lock(c.mu);
    c.admitted = 0;
    c.rejected = 0;
    c.deadline_shed = 0;
    c.cancelled = 0;
    c.latency.Reset();
    c.latency_hist.Reset();
  }
  {
    std::lock_guard<std::mutex> lock(shard_mu_);
    shard_rows_.clear();
  }
  {
    std::lock_guard<std::mutex> lock(scan_mu_);
    scan_rows_scanned_ = 0;
    scan_blocks_total_ = 0;
    scan_blocks_skipped_ = 0;
  }
  std::lock_guard<std::mutex> lock(rejected_mu_);
  rejected_ = 0;
}

MetricsSnapshot ServiceMetrics::Snapshot() const {
  MetricsSnapshot snap;
  for (size_t slot = 0; slot < kNumSlots; ++slot) {
    const Slot& s = slots_[slot];
    std::lock_guard<std::mutex> lock(s.mu);
    if (s.requests == 0) continue;
    MethodStatsSnapshot row;
    row.method = SlotName(slot);
    row.requests = s.requests;
    row.cache_hits = s.cache_hits;
    row.errors = s.errors;
    row.latency = s.latency.Summarize();
    row.latency_hist = s.latency_hist;
    row.cost = s.cost;
    snap.total_requests += row.requests;
    snap.total_cache_hits += row.cache_hits;
    snap.total_errors += row.errors;
    snap.methods.push_back(std::move(row));
  }
  static const char* kClassNames[kNumClasses] = {"interactive", "batch"};
  for (size_t cls = 0; cls < kNumClasses; ++cls) {
    const ClassSlot& c = classes_[cls];
    std::lock_guard<std::mutex> lock(c.mu);
    PriorityClassSnapshot row;
    row.name = kClassNames[cls];
    row.admitted = c.admitted;
    row.rejected = c.rejected;
    row.deadline_shed = c.deadline_shed;
    row.cancelled = c.cancelled;
    row.latency = c.latency.Summarize();
    row.latency_hist = c.latency_hist;
    snap.classes.push_back(std::move(row));
  }
  {
    std::lock_guard<std::mutex> lock(shard_mu_);
    snap.shard_rows = shard_rows_;
  }
  snap.shard_skew = shard::ShardRowSkew(snap.shard_rows);
  {
    std::lock_guard<std::mutex> lock(scan_mu_);
    snap.scan_rows_scanned = scan_rows_scanned_;
    snap.scan_blocks_total = scan_blocks_total_;
    snap.scan_blocks_skipped = scan_blocks_skipped_;
  }
  std::lock_guard<std::mutex> lock(rejected_mu_);
  snap.total_rejected = rejected_;
  return snap;
}

std::string MetricsSnapshot::ToString() const {
  std::string out =
      "method              requests   hits  errors    p50(ms)    p95(ms)"
      "    p99(ms)\n";
  char line[200];
  for (const MethodStatsSnapshot& row : methods) {
    std::snprintf(line, sizeof(line),
                  "%-18s %9llu %6llu %7llu %10.3f %10.3f %10.3f\n",
                  row.method.c_str(),
                  static_cast<unsigned long long>(row.requests),
                  static_cast<unsigned long long>(row.cache_hits),
                  static_cast<unsigned long long>(row.errors),
                  row.latency.p50 * 1e3, row.latency.p95 * 1e3,
                  row.latency.p99 * 1e3);
    out += line;
  }
  for (const PriorityClassSnapshot& row : classes) {
    if (row.admitted == 0 && row.rejected == 0 && row.deadline_shed == 0 &&
        row.cancelled == 0) {
      continue;
    }
    std::snprintf(line, sizeof(line),
                  "class %-12s %9llu admitted %6llu rejected %5llu shed "
                  "%5llu cancelled  p95 %8.3fms  p99 %8.3fms\n",
                  row.name.c_str(),
                  static_cast<unsigned long long>(row.admitted),
                  static_cast<unsigned long long>(row.rejected),
                  static_cast<unsigned long long>(row.deadline_shed),
                  static_cast<unsigned long long>(row.cancelled),
                  row.latency.p95 * 1e3, row.latency.p99 * 1e3);
    out += line;
  }
  if (!shard_rows.empty()) {
    out += "shard rows:";
    for (size_t i = 0; i < shard_rows.size(); ++i) {
      std::snprintf(line, sizeof(line), " s%zu=%llu", i,
                    static_cast<unsigned long long>(shard_rows[i]));
      out += line;
    }
    std::snprintf(line, sizeof(line), "  skew(max/mean)=%.2f\n", shard_skew);
    out += line;
  }
  if (scan_rows_scanned > 0 || scan_blocks_total > 0) {
    const double skip_pct =
        scan_blocks_total == 0
            ? 0.0
            : 100.0 * static_cast<double>(scan_blocks_skipped) /
                  static_cast<double>(scan_blocks_total);
    std::snprintf(line, sizeof(line),
                  "scan: %llu rows, %llu blocks, %llu skipped (%.1f%%)\n",
                  static_cast<unsigned long long>(scan_rows_scanned),
                  static_cast<unsigned long long>(scan_blocks_total),
                  static_cast<unsigned long long>(scan_blocks_skipped),
                  skip_pct);
    out += line;
  }
  std::snprintf(line, sizeof(line),
                "total: %llu requests, %llu cache hits, %llu errors, "
                "%llu rejected\n",
                static_cast<unsigned long long>(total_requests),
                static_cast<unsigned long long>(total_cache_hits),
                static_cast<unsigned long long>(total_errors),
                static_cast<unsigned long long>(total_rejected));
  out += line;
  return out;
}

TransportMetrics::TransportMetrics(size_t num_shards)
    : num_shards_(num_shards),
      shards_(std::make_unique<ShardSlot[]>(num_shards)) {}

void TransportMetrics::RecordRoundTrip(size_t shard, uint64_t bytes_sent,
                                       uint64_t bytes_received,
                                       double rtt_seconds, bool ok) {
  TSB_CHECK_LT(shard, num_shards_);
  ShardSlot& s = shards_[shard];
  std::lock_guard<std::mutex> lock(s.mu);
  ++s.requests;
  if (!ok) ++s.failures;
  s.bytes_sent += bytes_sent;
  s.bytes_received += bytes_received;
  s.rtt.Record(rtt_seconds);
  s.rtt_hist.Record(rtt_seconds);
}

void TransportMetrics::RecordReconnect(size_t shard) {
  TSB_CHECK_LT(shard, num_shards_);
  ShardSlot& s = shards_[shard];
  std::lock_guard<std::mutex> lock(s.mu);
  ++s.reconnects;
}

TransportMetricsSnapshot TransportMetrics::Snapshot() const {
  TransportMetricsSnapshot snap;
  snap.shards.reserve(num_shards_);
  for (size_t i = 0; i < num_shards_; ++i) {
    const ShardSlot& s = shards_[i];
    std::lock_guard<std::mutex> lock(s.mu);
    TransportShardSnapshot row;
    row.requests = s.requests;
    row.failures = s.failures;
    row.bytes_sent = s.bytes_sent;
    row.bytes_received = s.bytes_received;
    row.reconnects = s.reconnects;
    row.rtt = s.rtt.Summarize();
    row.rtt_hist = s.rtt_hist;
    snap.total.requests += row.requests;
    snap.total.failures += row.failures;
    snap.total.bytes_sent += row.bytes_sent;
    snap.total.bytes_received += row.bytes_received;
    snap.total.reconnects += row.reconnects;
    snap.shards.push_back(std::move(row));
  }
  return snap;
}

void TransportMetrics::Reset() {
  for (size_t i = 0; i < num_shards_; ++i) {
    ShardSlot& s = shards_[i];
    std::lock_guard<std::mutex> lock(s.mu);
    s.requests = 0;
    s.failures = 0;
    s.bytes_sent = 0;
    s.bytes_received = 0;
    s.reconnects = 0;
    s.rtt.Reset();
    s.rtt_hist.Reset();
  }
}

std::string TransportMetricsSnapshot::ToString() const {
  std::string out =
      "shard   requests  failed  reconn      sent B      recv B  "
      "rtt p50(ms)  rtt p95(ms)  rtt p99(ms)\n";
  char line[200];
  for (size_t i = 0; i < shards.size(); ++i) {
    const TransportShardSnapshot& row = shards[i];
    if (row.requests == 0 && row.reconnects == 0) continue;
    std::snprintf(
        line, sizeof(line),
        "s%-5zu %9llu %7llu %7llu %11llu %11llu %12.3f %12.3f %12.3f\n",
        i, static_cast<unsigned long long>(row.requests),
        static_cast<unsigned long long>(row.failures),
        static_cast<unsigned long long>(row.reconnects),
        static_cast<unsigned long long>(row.bytes_sent),
        static_cast<unsigned long long>(row.bytes_received),
        row.rtt.p50 * 1e3, row.rtt.p95 * 1e3, row.rtt.p99 * 1e3);
    out += line;
  }
  std::snprintf(line, sizeof(line),
                "total: %llu round-trips, %llu failed, %llu reconnects, "
                "%llu B out, %llu B in\n",
                static_cast<unsigned long long>(total.requests),
                static_cast<unsigned long long>(total.failures),
                static_cast<unsigned long long>(total.reconnects),
                static_cast<unsigned long long>(total.bytes_sent),
                static_cast<unsigned long long>(total.bytes_received));
  out += line;
  return out;
}

ReplicaMetrics::ReplicaMetrics(std::vector<size_t> replicas_per_shard)
    : shards_(replicas_per_shard.size()) {
  for (size_t s = 0; s < replicas_per_shard.size(); ++s) {
    TSB_CHECK_GE(replicas_per_shard[s], 1u);
    shards_[s].replicas.reserve(replicas_per_shard[s]);
    for (size_t r = 0; r < replicas_per_shard[s]; ++r) {
      shards_[s].replicas.push_back(std::make_unique<ReplicaSlot>());
    }
  }
}

void ReplicaMetrics::RecordAttempt(size_t shard, size_t replica,
                                   bool is_probe, bool is_hedge) {
  TSB_CHECK_LT(shard, shards_.size());
  TSB_CHECK_LT(replica, shards_[shard].replicas.size());
  ReplicaSlot& r = *shards_[shard].replicas[replica];
  r.outstanding.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(r.mu);
  ++r.attempts;
  if (is_probe) ++r.probes;
  if (is_hedge) ++r.hedge_attempts;
}

void ReplicaMetrics::RecordOutcome(size_t shard, size_t replica,
                                   double rtt_seconds, bool ok) {
  TSB_CHECK_LT(shard, shards_.size());
  TSB_CHECK_LT(replica, shards_[shard].replicas.size());
  ReplicaSlot& r = *shards_[shard].replicas[replica];
  r.outstanding.fetch_sub(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(r.mu);
    if (!ok) ++r.failures;
    // Failures feed the EWMA too: a replica timing out at the deadline
    // must look slow to the router, not untouched.
    r.rtt_ewma = r.rtt_ewma == 0.0
                     ? rtt_seconds
                     : kEwmaAlpha * rtt_seconds +
                           (1.0 - kEwmaAlpha) * r.rtt_ewma;
    r.rtt.Record(rtt_seconds);
    r.rtt_hist.Record(rtt_seconds);
  }
  ShardSlot& s = shards_[shard];
  std::lock_guard<std::mutex> lock(s.mu);
  ++s.shard_attempts;
  if (ok) s.shard_rtt.Record(rtt_seconds);
}

void ReplicaMetrics::RecordHedgeWin(size_t shard, size_t replica) {
  TSB_CHECK_LT(shard, shards_.size());
  TSB_CHECK_LT(replica, shards_[shard].replicas.size());
  ReplicaSlot& r = *shards_[shard].replicas[replica];
  std::lock_guard<std::mutex> lock(r.mu);
  ++r.hedge_wins;
}

void ReplicaMetrics::RecordHedgeLaunched(size_t shard) {
  TSB_CHECK_LT(shard, shards_.size());
  std::lock_guard<std::mutex> lock(shards_[shard].mu);
  ++shards_[shard].hedges_launched;
}

void ReplicaMetrics::RecordFailover(size_t shard) {
  TSB_CHECK_LT(shard, shards_.size());
  std::lock_guard<std::mutex> lock(shards_[shard].mu);
  ++shards_[shard].failovers;
}

void ReplicaMetrics::RecordExhausted(size_t shard) {
  TSB_CHECK_LT(shard, shards_.size());
  std::lock_guard<std::mutex> lock(shards_[shard].mu);
  ++shards_[shard].exhausted;
}

void ReplicaMetrics::RecordEjection(size_t shard, size_t replica) {
  TSB_CHECK_LT(shard, shards_.size());
  TSB_CHECK_LT(replica, shards_[shard].replicas.size());
  ReplicaSlot& r = *shards_[shard].replicas[replica];
  std::lock_guard<std::mutex> lock(r.mu);
  ++r.ejections;
}

void ReplicaMetrics::RecordReinstatement(size_t shard, size_t replica) {
  TSB_CHECK_LT(shard, shards_.size());
  TSB_CHECK_LT(replica, shards_[shard].replicas.size());
  ReplicaSlot& r = *shards_[shard].replicas[replica];
  std::lock_guard<std::mutex> lock(r.mu);
  ++r.reinstatements;
}

void ReplicaMetrics::RecordQuarantine(size_t shard, size_t replica) {
  TSB_CHECK_LT(shard, shards_.size());
  TSB_CHECK_LT(replica, shards_[shard].replicas.size());
  ReplicaSlot& r = *shards_[shard].replicas[replica];
  std::lock_guard<std::mutex> lock(r.mu);
  ++r.quarantines;
}

uint64_t ReplicaMetrics::Outstanding(size_t shard, size_t replica) const {
  TSB_CHECK_LT(shard, shards_.size());
  TSB_CHECK_LT(replica, shards_[shard].replicas.size());
  return shards_[shard].replicas[replica]->outstanding.load(
      std::memory_order_relaxed);
}

double ReplicaMetrics::RttEwma(size_t shard, size_t replica) const {
  TSB_CHECK_LT(shard, shards_.size());
  TSB_CHECK_LT(replica, shards_[shard].replicas.size());
  const ReplicaSlot& r = *shards_[shard].replicas[replica];
  std::lock_guard<std::mutex> lock(r.mu);
  return r.rtt_ewma;
}

double ReplicaMetrics::ShardRttP95(size_t shard,
                                   uint64_t min_samples) const {
  TSB_CHECK_LT(shard, shards_.size());
  const ShardSlot& s = shards_[shard];
  std::lock_guard<std::mutex> lock(s.mu);
  if (s.shard_attempts < min_samples) return 0.0;
  return s.shard_rtt.Summarize().p95;
}

ReplicaMetricsSnapshot ReplicaMetrics::Snapshot() const {
  ReplicaMetricsSnapshot snap;
  snap.shards.reserve(shards_.size());
  for (const ShardSlot& s : shards_) {
    ReplicaShardSnapshot shard_row;
    {
      std::lock_guard<std::mutex> lock(s.mu);
      shard_row.hedges_launched = s.hedges_launched;
      shard_row.failovers = s.failovers;
      shard_row.exhausted = s.exhausted;
    }
    shard_row.replicas.reserve(s.replicas.size());
    for (const std::unique_ptr<ReplicaSlot>& slot : s.replicas) {
      const ReplicaSlot& r = *slot;
      std::lock_guard<std::mutex> lock(r.mu);
      ReplicaSnapshot row;
      row.attempts = r.attempts;
      row.failures = r.failures;
      row.probes = r.probes;
      row.hedge_attempts = r.hedge_attempts;
      row.hedge_wins = r.hedge_wins;
      row.ejections = r.ejections;
      row.reinstatements = r.reinstatements;
      row.quarantines = r.quarantines;
      row.outstanding = r.outstanding.load(std::memory_order_relaxed);
      row.rtt_ewma = r.rtt_ewma;
      row.rtt = r.rtt.Summarize();
      row.rtt_hist = r.rtt_hist;
      shard_row.replicas.push_back(std::move(row));
    }
    snap.shards.push_back(std::move(shard_row));
  }
  return snap;
}

void ReplicaMetrics::Reset() {
  for (ShardSlot& s : shards_) {
    {
      std::lock_guard<std::mutex> lock(s.mu);
      s.hedges_launched = 0;
      s.failovers = 0;
      s.exhausted = 0;
      s.shard_rtt.Reset();
      s.shard_attempts = 0;
    }
    for (std::unique_ptr<ReplicaSlot>& slot : s.replicas) {
      ReplicaSlot& r = *slot;
      std::lock_guard<std::mutex> lock(r.mu);
      r.attempts = 0;
      r.failures = 0;
      r.probes = 0;
      r.hedge_attempts = 0;
      r.hedge_wins = 0;
      r.ejections = 0;
      r.reinstatements = 0;
      r.quarantines = 0;
      r.rtt_ewma = 0.0;
      r.rtt.Reset();
      r.rtt_hist.Reset();
      // outstanding is owned by in-flight attempts; leave the gauge alone.
    }
  }
}

std::string ReplicaMetricsSnapshot::ToString() const {
  std::string out =
      "shard rep  attempts  failed  probes  hedged  h-wins  eject  "
      "outst  ewma(ms)  rtt p95(ms)  rtt p99(ms)\n";
  char line[220];
  for (size_t s = 0; s < shards.size(); ++s) {
    const ReplicaShardSnapshot& shard_row = shards[s];
    for (size_t r = 0; r < shard_row.replicas.size(); ++r) {
      const ReplicaSnapshot& row = shard_row.replicas[r];
      if (row.attempts == 0) continue;
      std::snprintf(
          line, sizeof(line),
          "s%-4zu r%-3zu %8llu %7llu %7llu %7llu %7llu %6llu %6llu "
          "%9.3f %12.3f %12.3f\n",
          s, r, static_cast<unsigned long long>(row.attempts),
          static_cast<unsigned long long>(row.failures),
          static_cast<unsigned long long>(row.probes),
          static_cast<unsigned long long>(row.hedge_attempts),
          static_cast<unsigned long long>(row.hedge_wins),
          static_cast<unsigned long long>(row.ejections),
          static_cast<unsigned long long>(row.outstanding),
          row.rtt_ewma * 1e3, row.rtt.p95 * 1e3, row.rtt.p99 * 1e3);
      out += line;
    }
    if (shard_row.hedges_launched != 0 || shard_row.failovers != 0 ||
        shard_row.exhausted != 0) {
      std::snprintf(line, sizeof(line),
                    "s%-4zu hedges=%llu failovers=%llu exhausted=%llu\n", s,
                    static_cast<unsigned long long>(shard_row.hedges_launched),
                    static_cast<unsigned long long>(shard_row.failovers),
                    static_cast<unsigned long long>(shard_row.exhausted));
      out += line;
    }
  }
  return out;
}

/// --- obs::MetricsSource exports --------------------------------------------
///
/// The registry collectors walk the same Snapshot() state the ToString
/// views render, so the Prometheus/JSON exports and the human tables can
/// never disagree.

void ServiceMetrics::Collect(obs::MetricsSink* sink) const {
  const MetricsSnapshot snap = Snapshot();
  using Labels = obs::MetricsSink::Labels;
  for (const MethodStatsSnapshot& row : snap.methods) {
    const Labels labels = {{"method", row.method}};
    sink->Counter("tsb_service_requests_total", "Admitted requests",
                  labels, static_cast<double>(row.requests));
    sink->Counter("tsb_service_cache_hits_total", "Cache hits", labels,
                  static_cast<double>(row.cache_hits));
    sink->Counter("tsb_service_errors_total", "Engine failures", labels,
                  static_cast<double>(row.errors));
    sink->Summary("tsb_service_latency_seconds",
                  "End-to-end service latency", labels,
                  row.latency.ToSummaryValue());
    sink->Histogram("tsb_service_latency_hist_seconds",
                    "End-to-end service latency (mergeable buckets)",
                    labels, HistValue(row.latency_hist));
    sink->Counter("tsb_service_cpu_seconds_total",
                  "Thread CPU burned executing this method", labels,
                  static_cast<double>(row.cost.cpu_ns) / 1e9);
    sink->Counter("tsb_service_deserialized_bytes_total",
                  "Bytes decoded from storage and the wire", labels,
                  static_cast<double>(row.cost.bytes_deserialized));
    sink->Counter("tsb_service_catalog_interns_total",
                  "Catalog symbol interns", labels,
                  static_cast<double>(row.cost.catalog_interns));
    sink->Counter("tsb_service_heap_bytes_total",
                  "Bytes reserved in engine scratch buffers", labels,
                  static_cast<double>(row.cost.heap_bytes));
  }
  for (const PriorityClassSnapshot& row : snap.classes) {
    const Labels labels = {{"class", row.name}};
    sink->Counter("tsb_service_admitted_total",
                  "Requests entering the class queue", labels,
                  static_cast<double>(row.admitted));
    sink->Counter("tsb_service_rejected_total",
                  "Requests bounced at the class bound", labels,
                  static_cast<double>(row.rejected));
    sink->Counter("tsb_service_deadline_shed_total",
                  "Requests shed after deadline expiry", labels,
                  static_cast<double>(row.deadline_shed));
    sink->Counter("tsb_service_cancelled_total",
                  "Requests cancelled before execution", labels,
                  static_cast<double>(row.cancelled));
    sink->Summary("tsb_service_class_latency_seconds",
                  "End-to-end latency per admission class", labels,
                  row.latency.ToSummaryValue());
    sink->Histogram("tsb_service_class_latency_hist_seconds",
                    "Per-class latency (mergeable buckets)", labels,
                    HistValue(row.latency_hist));
  }
  for (size_t s = 0; s < snap.shard_rows.size(); ++s) {
    sink->Gauge("tsb_service_shard_rows", "AllTops rows per shard",
                {{"shard", std::to_string(s)}},
                static_cast<double>(snap.shard_rows[s]));
  }
  if (!snap.shard_rows.empty()) {
    sink->Gauge("tsb_service_shard_skew", "Shard row skew (max/mean)", {},
                snap.shard_skew);
  }
  sink->Counter("tsb_service_scan_rows_total", "Rows scanned by executed "
                "queries", {}, static_cast<double>(snap.scan_rows_scanned));
  sink->Counter("tsb_service_scan_blocks_total",
                "Columnar blocks considered", {},
                static_cast<double>(snap.scan_blocks_total));
  sink->Counter("tsb_service_scan_blocks_skipped_total",
                "Columnar blocks skipped by zone maps", {},
                static_cast<double>(snap.scan_blocks_skipped));
}

void TransportMetrics::Collect(obs::MetricsSink* sink) const {
  const TransportMetricsSnapshot snap = Snapshot();
  using Labels = obs::MetricsSink::Labels;
  for (size_t s = 0; s < snap.shards.size(); ++s) {
    const TransportShardSnapshot& row = snap.shards[s];
    if (row.requests == 0 && row.reconnects == 0) continue;
    const Labels labels = {{"shard", std::to_string(s)}};
    sink->Counter("tsb_transport_requests_total",
                  "Sub-query round-trips attempted", labels,
                  static_cast<double>(row.requests));
    sink->Counter("tsb_transport_failures_total",
                  "Round-trips without a response", labels,
                  static_cast<double>(row.failures));
    sink->Counter("tsb_transport_bytes_sent_total",
                  "Encoded request bytes sent", labels,
                  static_cast<double>(row.bytes_sent));
    sink->Counter("tsb_transport_bytes_received_total",
                  "Encoded response bytes received", labels,
                  static_cast<double>(row.bytes_received));
    sink->Counter("tsb_transport_reconnects_total",
                  "Successful dials after a failure", labels,
                  static_cast<double>(row.reconnects));
    sink->Summary("tsb_transport_rtt_seconds",
                  "Send-to-response round-trip time", labels,
                  row.rtt.ToSummaryValue());
    sink->Histogram("tsb_transport_rtt_hist_seconds",
                    "Round-trip time (mergeable buckets)", labels,
                    HistValue(row.rtt_hist));
  }
}

void ReplicaMetrics::Collect(obs::MetricsSink* sink) const {
  const ReplicaMetricsSnapshot snap = Snapshot();
  using Labels = obs::MetricsSink::Labels;
  for (size_t s = 0; s < snap.shards.size(); ++s) {
    const ReplicaShardSnapshot& shard_row = snap.shards[s];
    const std::string shard_label = std::to_string(s);
    for (size_t r = 0; r < shard_row.replicas.size(); ++r) {
      const ReplicaSnapshot& row = shard_row.replicas[r];
      if (row.attempts == 0) continue;
      const Labels labels = {{"shard", shard_label},
                             {"replica", std::to_string(r)}};
      sink->Counter("tsb_replica_attempts_total",
                    "Round-trip attempts routed to this replica", labels,
                    static_cast<double>(row.attempts));
      sink->Counter("tsb_replica_failures_total",
                    "Attempts without a response", labels,
                    static_cast<double>(row.failures));
      sink->Counter("tsb_replica_probes_total",
                    "Attempts sent as ejection probes", labels,
                    static_cast<double>(row.probes));
      sink->Counter("tsb_replica_hedge_attempts_total",
                    "Attempts fired as the hedge copy", labels,
                    static_cast<double>(row.hedge_attempts));
      sink->Counter("tsb_replica_hedge_wins_total",
                    "Hedge copies answering first", labels,
                    static_cast<double>(row.hedge_wins));
      sink->Counter("tsb_replica_ejections_total",
                    "Health-ladder ejections", labels,
                    static_cast<double>(row.ejections));
      sink->Counter("tsb_replica_reinstatements_total",
                    "Recoveries back to healthy", labels,
                    static_cast<double>(row.reinstatements));
      sink->Counter("tsb_replica_quarantines_total",
                    "Stale-epoch quarantine entries", labels,
                    static_cast<double>(row.quarantines));
      sink->Gauge("tsb_replica_outstanding", "In-flight attempts right now",
                  labels, static_cast<double>(row.outstanding));
      sink->Gauge("tsb_replica_rtt_ewma_seconds",
                  "Load-routing RTT EWMA", labels, row.rtt_ewma);
      sink->Summary("tsb_replica_rtt_seconds", "Attempt round-trip time",
                    labels, row.rtt.ToSummaryValue());
      sink->Histogram("tsb_replica_rtt_hist_seconds",
                      "Attempt round-trip time (mergeable buckets)",
                      labels, HistValue(row.rtt_hist));
    }
    const Labels labels = {{"shard", shard_label}};
    if (shard_row.hedges_launched != 0 || shard_row.failovers != 0 ||
        shard_row.exhausted != 0) {
      sink->Counter("tsb_replica_hedges_launched_total",
                    "Sends that fired a hedge copy", labels,
                    static_cast<double>(shard_row.hedges_launched));
      sink->Counter("tsb_replica_failovers_total",
                    "Attempts retried on a sibling replica", labels,
                    static_cast<double>(shard_row.failovers));
      sink->Counter("tsb_replica_exhausted_total",
                    "Sends that failed on every replica", labels,
                    static_cast<double>(shard_row.exhausted));
    }
  }
}

obs::FleetSnapshot BuildFleetSnapshot(const MetricsSnapshot& service,
                                      const ReplicaMetricsSnapshot* replicas,
                                      const obs::SlowQueryLog* slow_log) {
  obs::FleetSnapshot snap;
  snap.processes = 1;
  for (const MethodStatsSnapshot& row : service.methods) {
    obs::FleetMethodStats method;
    method.method = row.method;
    method.requests = row.requests;
    method.cache_hits = row.cache_hits;
    method.errors = row.errors;
    method.latency = row.latency_hist;
    method.cost = row.cost;
    snap.methods.push_back(std::move(method));
  }
  snap.total_requests = service.total_requests;
  snap.total_cache_hits = service.total_cache_hits;
  snap.total_errors = service.total_errors;
  snap.total_rejected = service.total_rejected;
  snap.scan_rows = service.scan_rows_scanned;
  snap.scan_blocks_total = service.scan_blocks_total;
  snap.scan_blocks_skipped = service.scan_blocks_skipped;
  snap.shard_rows = service.shard_rows;
  if (replicas != nullptr) {
    for (const ReplicaShardSnapshot& shard : replicas->shards) {
      snap.hedges_launched += shard.hedges_launched;
      snap.failovers += shard.failovers;
      snap.exhausted += shard.exhausted;
    }
  }
  if (slow_log != nullptr) {
    for (const obs::SlowQueryRecord& record : slow_log->Recent()) {
      const uint64_t bytes =
          record.bytes_deserialized + record.heap_bytes;
      if (record.cpu_ns == 0 && bytes == 0) continue;
      obs::FleetTopQuery query;
      query.request = record.request;
      query.method = record.method;
      query.service_seconds = record.service_seconds;
      query.cpu_ns = record.cpu_ns;
      query.bytes = bytes;
      snap.top_queries.push_back(std::move(query));
    }
  }
  snap.Normalize();
  return snap;
}

}  // namespace service
}  // namespace tsb
