#include "service/thread_pool.h"

#include <algorithm>

#include "common/logging.h"

namespace tsb {
namespace service {

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads = std::max<size_t>(1, num_threads);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
  started_ = workers_.size();
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this]() { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::Shutdown() {
  std::unique_lock<std::mutex> lock(mu_);
  stopping_ = true;
  cv_.notify_all();
  if (!workers_.empty()) {
    // First caller: take ownership of the threads and join them outside
    // the lock. Later callers find workers_ empty and wait below, so a
    // concurrent Shutdown (e.g. explicit call racing the destructor)
    // neither double-joins nor returns before the pool is quiesced.
    std::vector<std::thread> workers = std::move(workers_);
    workers_.clear();
    lock.unlock();
    for (std::thread& worker : workers) worker.join();
    lock.lock();
    joined_ = true;
    cv_.notify_all();
    return;
  }
  cv_.wait(lock, [this]() { return joined_; });
}

size_t ThreadPool::QueueDepth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

}  // namespace service
}  // namespace tsb
